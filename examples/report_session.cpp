// Decision-support session example (the paper's OLAP motivation).
//
// An analyst session runs several long TPC-H queries over a generated
// warehouse. Midway through paging a large report the database server
// crashes; Phoenix recovers the session and the report continues from the
// exact row where it stopped. Compare the two repositioning strategies with
//   ./build/examples/report_session --reposition=client   (paper Figure 3)
//   ./build/examples/report_session --reposition=server   (paper Figure 4)

#include <cstdio>
#include <cstring>
#include <memory>
#include <thread>

#include "common/clock.h"
#include "engine/server.h"
#include "odbc/driver_manager.h"
#include "odbc/native_driver.h"
#include "phoenix/phoenix_driver.h"
#include "tpc/tpch.h"
#include "wire/in_process.h"

using phoenix::common::Row;

int main(int argc, char** argv) {
  std::string reposition = "server";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--reposition=", 13) == 0) {
      reposition = argv[i] + 13;
    }
  }

  std::system("rm -rf /tmp/phx_report_session");
  phoenix::engine::ServerOptions options;
  options.db.data_dir = "/tmp/phx_report_session";
  auto server = phoenix::engine::SimulatedServer::Start(options);
  if (!server.ok()) return 1;

  std::printf("loading TPC-H warehouse (SF 0.01)...\n");
  phoenix::tpc::TpchConfig config;
  config.scale_factor = 0.01;
  phoenix::tpc::TpchGenerator generator(config);
  if (!generator.Load(server->get()).ok()) return 1;

  phoenix::odbc::DriverManager dm;
  auto native = std::make_shared<phoenix::odbc::NativeDriver>(
      "native", [&](const phoenix::odbc::ConnectionString&) {
        return std::make_shared<phoenix::wire::InProcessTransport>(
            server->get(), phoenix::wire::NetworkModel{200, 12'500'000});
      });
  dm.RegisterDriver(native).ok();
  dm.RegisterDriver(
        std::make_shared<phoenix::phx::PhoenixDriver>("phoenix", native))
      .ok();

  auto conn = dm.Connect("DRIVER=phoenix;UID=analyst;PHOENIX_REPOSITION=" +
                         reposition);
  if (!conn.ok()) return 1;
  auto stmt = conn.value()->CreateStatement();
  if (!stmt.ok()) return 1;

  // A short dashboard of summary queries first.
  for (int q : {1, 6, 14}) {
    phoenix::common::Stopwatch watch;
    auto st = stmt.value()->ExecDirect(phoenix::tpc::TpchQuery(q, 0.01));
    if (!st.ok()) {
      std::fprintf(stderr, "Q%d: %s\n", q, st.ToString().c_str());
      return 1;
    }
    Row row;
    int rows = 0;
    while (stmt.value()->Fetch(&row).value()) ++rows;
    std::printf("Q%02d: %d rows in %.3f s\n", q, rows,
                watch.ElapsedSeconds());
    stmt.value()->CloseCursor().ok();
  }

  // Now the big report: the paper's Q11 with the full result, paged slowly.
  std::printf("\nrunning the stock-identification report (Q11)...\n");
  if (!stmt.value()->ExecDirect(phoenix::tpc::TpchQuery(11, 0.0)).ok()) {
    return 1;
  }

  Row row;
  int paged = 0;
  long long last_part = -1;
  while (true) {
    auto more = stmt.value()->Fetch(&row);
    if (!more.ok()) {
      std::fprintf(stderr, "fetch: %s\n",
                   more.status().ToString().c_str());
      return 1;
    }
    if (!*more) break;
    ++paged;
    if (last_part >= 0 && row[0].AsInt() == last_part) {
      std::fprintf(stderr, "DUPLICATE ROW DELIVERED — bug!\n");
      return 1;
    }
    last_part = row[0].AsInt();

    if (paged == 25) {
      std::printf("page 1 done (25 rows). The server crashes here...\n");
      server->get()->Crash();
      std::thread([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(500));
        server->get()->Restart().ok();
      }).detach();
    }
  }

  auto* phoenix_conn =
      static_cast<phoenix::phx::PhoenixConnection*>(conn.value().get());
  std::printf(
      "report finished: %d rows, zero duplicates, zero gaps.\n"
      "recovery (%s repositioning): virtual session %.3f s, SQL state "
      "%.3f s\n",
      paged, reposition.c_str(),
      phoenix_conn->last_recovery().virtual_session_seconds,
      phoenix_conn->last_recovery().sql_state_seconds);
  return 0;
}
