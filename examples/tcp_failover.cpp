// Failover over a real TCP socket.
//
// The previous examples use the in-process transport; this one hosts the
// server behind a loopback TCP endpoint (frame protocol, dead sockets on
// crash) so the client-side stack — native TCP driver wrapped by Phoenix —
// experiences genuine connection resets, reconnect races, and socket
// re-establishment, exactly as it would against a remote machine.

#include <cstdio>
#include <memory>
#include <thread>

#include "engine/server.h"
#include "odbc/driver_manager.h"
#include "odbc/native_driver.h"
#include "phoenix/phoenix_driver.h"
#include "wire/tcp.h"

using phoenix::common::Row;

int main() {
  std::system("rm -rf /tmp/phx_tcp_failover");
  phoenix::engine::ServerOptions options;
  options.db.data_dir = "/tmp/phx_tcp_failover";
  auto server = phoenix::engine::SimulatedServer::Start(options);
  if (!server.ok()) return 1;

  auto host = phoenix::wire::TcpServerHost::Start(server->get(), 0);
  if (!host.ok()) {
    std::fprintf(stderr, "tcp host: %s\n",
                 host.status().ToString().c_str());
    return 1;
  }
  uint16_t port = host.value()->port();
  std::printf("database server listening on 127.0.0.1:%u\n", port);

  phoenix::odbc::DriverManager dm;
  auto native = std::make_shared<phoenix::odbc::NativeDriver>(
      "native", [port](const phoenix::odbc::ConnectionString&) {
        return std::make_shared<phoenix::wire::TcpClientTransport>(
            "127.0.0.1", port);
      });
  dm.RegisterDriver(native).ok();
  dm.RegisterDriver(
        std::make_shared<phoenix::phx::PhoenixDriver>("phoenix", native))
      .ok();

  // Seed data over TCP with the native driver.
  {
    auto setup = dm.Connect("DRIVER=native;UID=loader");
    if (!setup.ok()) return 1;
    auto stmt = setup.value()->CreateStatement();
    if (!stmt.ok()) return 1;
    stmt.value()
        ->ExecDirect("CREATE TABLE events (seq INTEGER PRIMARY KEY, "
                     "payload VARCHAR)")
        .ok();
    for (int i = 1; i <= 120; ++i) {
      stmt.value()
          ->ExecDirect("INSERT INTO events VALUES (" + std::to_string(i) +
                       ", 'event-" + std::to_string(i) + "')")
          .ok();
    }
  }

  auto conn = dm.Connect(
      "DRIVER=phoenix;UID=consumer;PHOENIX_REPOSITION=server;"
      "PHOENIX_RETRY_MS=25;PHOENIX_DEADLINE_MS=10000");
  if (!conn.ok()) return 1;
  auto stmt = conn.value()->CreateStatement();
  if (!stmt.ok()) return 1;
  if (!stmt.value()
           ->ExecDirect("SELECT seq, payload FROM events ORDER BY seq")
           .ok()) {
    return 1;
  }

  Row row;
  int consumed = 0;
  for (; consumed < 40; ++consumed) {
    if (!stmt.value()->Fetch(&row).value()) return 1;
  }
  std::printf("consumed %d events over TCP; killing the server...\n",
              consumed);

  server->get()->Crash();  // TCP connections drop with it
  std::thread restarter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(700));
    server->get()->Restart().ok();
    std::printf("(server back up; sockets must be re-established)\n");
  });

  while (true) {
    auto more = stmt.value()->Fetch(&row);
    if (!more.ok()) {
      std::fprintf(stderr, "fetch: %s\n",
                   more.status().ToString().c_str());
      restarter.join();
      return 1;
    }
    if (!*more) break;
    ++consumed;
  }
  restarter.join();

  std::printf(
      "consumed all %d events exactly once across a real socket failure "
      "(last payload: %s)\n",
      consumed, row[1].AsString().c_str());
  host.value()->Stop();
  return 0;
}
