// OLTP order-entry example (the paper's Section 4 motivation).
//
// Runs a burst of TPC-C transactions through three configurations —
// native ODBC, Phoenix, and Phoenix with the client result cache — and
// prints the throughput of each, demonstrating (a) that the workload code
// is byte-identical across all three (transparency) and (b) that client
// caching removes Phoenix's server-side materialization cost for small
// OLTP result sets.
//
// A crash is injected mid-run in the Phoenix configurations: transactions
// in flight abort (a normal event the client retries); the session itself
// survives.

#include <cstdio>
#include <memory>
#include <thread>

#include "common/clock.h"
#include "engine/server.h"
#include "odbc/driver_manager.h"
#include "odbc/native_driver.h"
#include "phoenix/phoenix_driver.h"
#include "tpc/tpcc.h"
#include "wire/in_process.h"

namespace {

struct RunResult {
  double txns_per_second = 0;
  uint64_t aborts = 0;
};

RunResult RunBurst(phoenix::odbc::DriverManager& dm,
                   phoenix::engine::SimulatedServer* server,
                   const phoenix::tpc::TpccConfig& config,
                   const std::string& conn_str, int txns, bool crash) {
  RunResult result;
  auto conn = dm.Connect(conn_str);
  if (!conn.ok()) {
    std::fprintf(stderr, "connect: %s\n",
                 conn.status().ToString().c_str());
    return result;
  }
  phoenix::tpc::TpccClient client(conn.value().get(), config, /*seed=*/7);

  std::thread crasher;
  if (crash) {
    crasher = std::thread([server] {
      std::this_thread::sleep_for(std::chrono::milliseconds(300));
      server->Crash();
      std::this_thread::sleep_for(std::chrono::milliseconds(150));
      server->Restart().ok();
    });
  }

  phoenix::common::Stopwatch watch;
  for (int i = 0; i < txns; ++i) {
    auto st = client.RunOne();
    if (!st.ok()) {
      std::fprintf(stderr, "transaction failed hard: %s\n",
                   st.ToString().c_str());
      break;
    }
  }
  double elapsed = watch.ElapsedSeconds();
  if (crasher.joinable()) crasher.join();

  uint64_t aborts = 0;
  for (uint64_t a : client.stats().aborted) aborts += a;
  result.txns_per_second =
      static_cast<double>(client.stats().TotalCommitted()) / elapsed;
  result.aborts = aborts;
  return result;
}

}  // namespace

int main() {
  std::system("rm -rf /tmp/phx_oltp_example");
  phoenix::engine::ServerOptions options;
  options.db.data_dir = "/tmp/phx_oltp_example";
  options.db.lock_timeout = std::chrono::milliseconds(250);
  auto server = phoenix::engine::SimulatedServer::Start(options);
  if (!server.ok()) return 1;

  std::printf("loading TPC-C database (1 warehouse)...\n");
  phoenix::tpc::TpccConfig config;
  config.warehouses = 1;
  phoenix::tpc::TpccGenerator generator(config);
  if (!generator.Load(server->get()).ok()) return 1;

  phoenix::odbc::DriverManager dm;
  auto native = std::make_shared<phoenix::odbc::NativeDriver>(
      "native", [&](const phoenix::odbc::ConnectionString&) {
        return std::make_shared<phoenix::wire::InProcessTransport>(
            server->get(), phoenix::wire::NetworkModel{200, 12'500'000});
      });
  dm.RegisterDriver(native).ok();
  dm.RegisterDriver(
        std::make_shared<phoenix::phx::PhoenixDriver>("phoenix", native))
      .ok();

  constexpr int kTxns = 400;
  struct Config {
    const char* label;
    const char* conn_str;
    bool crash;
  } configs[] = {
      {"native ODBC (no crash protection)   ", "DRIVER=native;UID=app",
       false},
      {"Phoenix/ODBC (persist, crash midway)",
       "DRIVER=phoenix;UID=app;PHOENIX_RETRY_MS=10", true},
      {"Phoenix + client cache (crash midway)",
       "DRIVER=phoenix;UID=app;PHOENIX_CACHE=262144;PHOENIX_RETRY_MS=10",
       true},
  };

  std::printf("\nrunning %d transactions per configuration...\n\n", kTxns);
  double native_rate = 0;
  for (const Config& c : configs) {
    RunResult result =
        RunBurst(dm, server->get(), config, c.conn_str, kTxns, c.crash);
    if (native_rate == 0) native_rate = result.txns_per_second;
    std::printf("%s  %7.0f txn/s  (%.2fx native)  aborts retried: %llu\n",
                c.label, result.txns_per_second,
                result.txns_per_second / native_rate,
                static_cast<unsigned long long>(result.aborts));
  }

  std::printf(
      "\nThe cached configuration matches native throughput while still "
      "masking the crash — the paper's Table 4 result in miniature.\n");
  return 0;
}
