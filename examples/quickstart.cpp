// Quickstart: the whole Phoenix/ODBC value proposition in ~100 lines.
//
// 1. Start a database server (in-process simulator with a LAN-like network
//    model) and register the native + Phoenix drivers.
// 2. Create a table and run a query through the PHOENIX driver — the same
//    ODBC-style API an application would use with the native driver.
// 3. Crash the server in the middle of fetching the result.
// 4. Keep fetching: Phoenix reconnects, restores the session, repositions
//    the result set, and delivery continues — the application never sees
//    the outage.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>
#include <memory>
#include <thread>

#include "engine/server.h"
#include "odbc/driver_manager.h"
#include "odbc/native_driver.h"
#include "phoenix/phoenix_driver.h"
#include "wire/in_process.h"

using phoenix::common::Row;
using phoenix::engine::ServerOptions;
using phoenix::engine::SimulatedServer;

int main() {
  // --- 1. Server + drivers -------------------------------------------------
  std::system("rm -rf /tmp/phx_quickstart");
  ServerOptions options;
  options.db.data_dir = "/tmp/phx_quickstart";
  auto server = SimulatedServer::Start(options);
  if (!server.ok()) {
    std::fprintf(stderr, "server: %s\n", server.status().ToString().c_str());
    return 1;
  }

  phoenix::odbc::DriverManager dm;
  auto native = std::make_shared<phoenix::odbc::NativeDriver>(
      "native", [&](const phoenix::odbc::ConnectionString&) {
        // ~0.2 ms RTT, 100 Mbit/s — the paper's LAN.
        return std::make_shared<phoenix::wire::InProcessTransport>(
            server->get(),
            phoenix::wire::NetworkModel{200, 12'500'000});
      });
  dm.RegisterDriver(native).ok();
  dm.RegisterDriver(
        std::make_shared<phoenix::phx::PhoenixDriver>("phoenix", native))
      .ok();

  // --- 2. Create data and query it through Phoenix ------------------------
  auto conn = dm.Connect("DRIVER=phoenix;UID=demo;PHOENIX_REPOSITION=server");
  if (!conn.ok()) {
    std::fprintf(stderr, "connect: %s\n", conn.status().ToString().c_str());
    return 1;
  }
  auto stmt_result = conn.value()->CreateStatement();
  if (!stmt_result.ok()) return 1;
  auto& stmt = *stmt_result.value();

  stmt.ExecDirect("CREATE TABLE readings (id INTEGER PRIMARY KEY, "
                  "sensor VARCHAR, celsius DOUBLE)")
      .ok();
  for (int i = 1; i <= 200; ++i) {
    std::string sql = "INSERT INTO readings VALUES (" + std::to_string(i) +
                      ", 'sensor-" + std::to_string(i % 4) + "', " +
                      std::to_string(15.0 + i * 0.1) + ")";
    if (!stmt.ExecDirect(sql).ok()) return 1;
  }

  auto query = stmt.ExecDirect(
      "SELECT id, sensor, celsius FROM readings WHERE celsius > 20.0 "
      "ORDER BY id");
  if (!query.ok()) {
    std::fprintf(stderr, "query: %s\n", query.ToString().c_str());
    return 1;
  }
  std::printf("query open; result set persisted server-side as a table\n");

  // --- 3. Fetch half, then CRASH the server --------------------------------
  Row row;
  int fetched = 0;
  for (; fetched < 50; ++fetched) {
    auto more = stmt.Fetch(&row);
    if (!more.ok() || !*more) return 1;
  }
  std::printf("fetched %d rows; last id=%lld — crashing the server NOW\n",
              fetched, static_cast<long long>(row[0].AsInt()));

  server->get()->Crash();
  std::thread restarter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    server->get()->Restart().ok();
    std::printf("(server restarted; database recovery ran)\n");
  });

  // --- 4. Keep fetching: the outage is masked ------------------------------
  while (true) {
    auto more = stmt.Fetch(&row);
    if (!more.ok()) {
      std::fprintf(stderr, "fetch: %s\n", more.status().ToString().c_str());
      restarter.join();
      return 1;
    }
    if (!*more) break;
    ++fetched;
  }
  restarter.join();

  auto* phoenix_conn =
      static_cast<phoenix::phx::PhoenixConnection*>(conn.value().get());
  std::printf(
      "delivered %d rows total across the crash — %llu recovery "
      "(virtual session %.3f s, SQL state %.3f s). The application never "
      "saw an error.\n",
      fetched,
      static_cast<unsigned long long>(phoenix_conn->recovery_count()),
      phoenix_conn->last_recovery().virtual_session_seconds,
      phoenix_conn->last_recovery().sql_state_seconds);
  return 0;
}
