file(REMOVE_RECURSE
  "CMakeFiles/odbc_test.dir/odbc_test.cc.o"
  "CMakeFiles/odbc_test.dir/odbc_test.cc.o.d"
  "odbc_test"
  "odbc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odbc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
