# Empty compiler generated dependencies file for crash_property_test.
# This may be replaced when dependencies are built.
