file(REMOVE_RECURSE
  "CMakeFiles/crash_property_test.dir/crash_property_test.cc.o"
  "CMakeFiles/crash_property_test.dir/crash_property_test.cc.o.d"
  "crash_property_test"
  "crash_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crash_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
