file(REMOVE_RECURSE
  "CMakeFiles/phoenix_recovery_test.dir/phoenix_recovery_test.cc.o"
  "CMakeFiles/phoenix_recovery_test.dir/phoenix_recovery_test.cc.o.d"
  "phoenix_recovery_test"
  "phoenix_recovery_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phoenix_recovery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
