# Empty dependencies file for phoenix_recovery_test.
# This may be replaced when dependencies are built.
