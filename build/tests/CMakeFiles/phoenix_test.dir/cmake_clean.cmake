file(REMOVE_RECURSE
  "CMakeFiles/phoenix_test.dir/phoenix_test.cc.o"
  "CMakeFiles/phoenix_test.dir/phoenix_test.cc.o.d"
  "phoenix_test"
  "phoenix_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phoenix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
