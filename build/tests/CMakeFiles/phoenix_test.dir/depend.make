# Empty dependencies file for phoenix_test.
# This may be replaced when dependencies are built.
