file(REMOVE_RECURSE
  "CMakeFiles/phoenix_cache_test.dir/phoenix_cache_test.cc.o"
  "CMakeFiles/phoenix_cache_test.dir/phoenix_cache_test.cc.o.d"
  "phoenix_cache_test"
  "phoenix_cache_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phoenix_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
