# Empty dependencies file for phoenix_cache_test.
# This may be replaced when dependencies are built.
