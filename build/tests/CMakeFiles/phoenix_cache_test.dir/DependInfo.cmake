
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/phoenix_cache_test.cc" "tests/CMakeFiles/phoenix_cache_test.dir/phoenix_cache_test.cc.o" "gcc" "tests/CMakeFiles/phoenix_cache_test.dir/phoenix_cache_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/phoenix/CMakeFiles/phx_phoenix.dir/DependInfo.cmake"
  "/root/repo/build/src/tpc/CMakeFiles/phx_tpc.dir/DependInfo.cmake"
  "/root/repo/build/src/odbc/CMakeFiles/phx_odbc.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/phx_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/phx_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/phx_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/phx_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
