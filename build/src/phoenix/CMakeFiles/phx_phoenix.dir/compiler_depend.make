# Empty compiler generated dependencies file for phx_phoenix.
# This may be replaced when dependencies are built.
