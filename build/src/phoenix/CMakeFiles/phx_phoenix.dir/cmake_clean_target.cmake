file(REMOVE_RECURSE
  "libphx_phoenix.a"
)
