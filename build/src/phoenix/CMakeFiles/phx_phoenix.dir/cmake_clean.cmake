file(REMOVE_RECURSE
  "CMakeFiles/phx_phoenix.dir/classifier.cc.o"
  "CMakeFiles/phx_phoenix.dir/classifier.cc.o.d"
  "CMakeFiles/phx_phoenix.dir/phoenix_driver.cc.o"
  "CMakeFiles/phx_phoenix.dir/phoenix_driver.cc.o.d"
  "libphx_phoenix.a"
  "libphx_phoenix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phx_phoenix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
