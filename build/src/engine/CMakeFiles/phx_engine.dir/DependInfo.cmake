
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/bound_expr.cc" "src/engine/CMakeFiles/phx_engine.dir/bound_expr.cc.o" "gcc" "src/engine/CMakeFiles/phx_engine.dir/bound_expr.cc.o.d"
  "/root/repo/src/engine/catalog.cc" "src/engine/CMakeFiles/phx_engine.dir/catalog.cc.o" "gcc" "src/engine/CMakeFiles/phx_engine.dir/catalog.cc.o.d"
  "/root/repo/src/engine/checkpoint.cc" "src/engine/CMakeFiles/phx_engine.dir/checkpoint.cc.o" "gcc" "src/engine/CMakeFiles/phx_engine.dir/checkpoint.cc.o.d"
  "/root/repo/src/engine/database.cc" "src/engine/CMakeFiles/phx_engine.dir/database.cc.o" "gcc" "src/engine/CMakeFiles/phx_engine.dir/database.cc.o.d"
  "/root/repo/src/engine/executor.cc" "src/engine/CMakeFiles/phx_engine.dir/executor.cc.o" "gcc" "src/engine/CMakeFiles/phx_engine.dir/executor.cc.o.d"
  "/root/repo/src/engine/key_encoding.cc" "src/engine/CMakeFiles/phx_engine.dir/key_encoding.cc.o" "gcc" "src/engine/CMakeFiles/phx_engine.dir/key_encoding.cc.o.d"
  "/root/repo/src/engine/lock_manager.cc" "src/engine/CMakeFiles/phx_engine.dir/lock_manager.cc.o" "gcc" "src/engine/CMakeFiles/phx_engine.dir/lock_manager.cc.o.d"
  "/root/repo/src/engine/operators.cc" "src/engine/CMakeFiles/phx_engine.dir/operators.cc.o" "gcc" "src/engine/CMakeFiles/phx_engine.dir/operators.cc.o.d"
  "/root/repo/src/engine/planner.cc" "src/engine/CMakeFiles/phx_engine.dir/planner.cc.o" "gcc" "src/engine/CMakeFiles/phx_engine.dir/planner.cc.o.d"
  "/root/repo/src/engine/server.cc" "src/engine/CMakeFiles/phx_engine.dir/server.cc.o" "gcc" "src/engine/CMakeFiles/phx_engine.dir/server.cc.o.d"
  "/root/repo/src/engine/session.cc" "src/engine/CMakeFiles/phx_engine.dir/session.cc.o" "gcc" "src/engine/CMakeFiles/phx_engine.dir/session.cc.o.d"
  "/root/repo/src/engine/table.cc" "src/engine/CMakeFiles/phx_engine.dir/table.cc.o" "gcc" "src/engine/CMakeFiles/phx_engine.dir/table.cc.o.d"
  "/root/repo/src/engine/wal.cc" "src/engine/CMakeFiles/phx_engine.dir/wal.cc.o" "gcc" "src/engine/CMakeFiles/phx_engine.dir/wal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/phx_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/phx_sql.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
