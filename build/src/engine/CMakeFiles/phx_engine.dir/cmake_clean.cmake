file(REMOVE_RECURSE
  "CMakeFiles/phx_engine.dir/bound_expr.cc.o"
  "CMakeFiles/phx_engine.dir/bound_expr.cc.o.d"
  "CMakeFiles/phx_engine.dir/catalog.cc.o"
  "CMakeFiles/phx_engine.dir/catalog.cc.o.d"
  "CMakeFiles/phx_engine.dir/checkpoint.cc.o"
  "CMakeFiles/phx_engine.dir/checkpoint.cc.o.d"
  "CMakeFiles/phx_engine.dir/database.cc.o"
  "CMakeFiles/phx_engine.dir/database.cc.o.d"
  "CMakeFiles/phx_engine.dir/executor.cc.o"
  "CMakeFiles/phx_engine.dir/executor.cc.o.d"
  "CMakeFiles/phx_engine.dir/key_encoding.cc.o"
  "CMakeFiles/phx_engine.dir/key_encoding.cc.o.d"
  "CMakeFiles/phx_engine.dir/lock_manager.cc.o"
  "CMakeFiles/phx_engine.dir/lock_manager.cc.o.d"
  "CMakeFiles/phx_engine.dir/operators.cc.o"
  "CMakeFiles/phx_engine.dir/operators.cc.o.d"
  "CMakeFiles/phx_engine.dir/planner.cc.o"
  "CMakeFiles/phx_engine.dir/planner.cc.o.d"
  "CMakeFiles/phx_engine.dir/server.cc.o"
  "CMakeFiles/phx_engine.dir/server.cc.o.d"
  "CMakeFiles/phx_engine.dir/session.cc.o"
  "CMakeFiles/phx_engine.dir/session.cc.o.d"
  "CMakeFiles/phx_engine.dir/table.cc.o"
  "CMakeFiles/phx_engine.dir/table.cc.o.d"
  "CMakeFiles/phx_engine.dir/wal.cc.o"
  "CMakeFiles/phx_engine.dir/wal.cc.o.d"
  "libphx_engine.a"
  "libphx_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phx_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
