file(REMOVE_RECURSE
  "libphx_engine.a"
)
