# Empty compiler generated dependencies file for phx_tpc.
# This may be replaced when dependencies are built.
