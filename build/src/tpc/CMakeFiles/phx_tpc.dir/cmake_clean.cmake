file(REMOVE_RECURSE
  "CMakeFiles/phx_tpc.dir/tpcc.cc.o"
  "CMakeFiles/phx_tpc.dir/tpcc.cc.o.d"
  "CMakeFiles/phx_tpc.dir/tpch.cc.o"
  "CMakeFiles/phx_tpc.dir/tpch.cc.o.d"
  "libphx_tpc.a"
  "libphx_tpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phx_tpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
