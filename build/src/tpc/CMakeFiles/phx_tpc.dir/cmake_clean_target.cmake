file(REMOVE_RECURSE
  "libphx_tpc.a"
)
