file(REMOVE_RECURSE
  "CMakeFiles/phx_common.dir/bytes.cc.o"
  "CMakeFiles/phx_common.dir/bytes.cc.o.d"
  "CMakeFiles/phx_common.dir/crc32.cc.o"
  "CMakeFiles/phx_common.dir/crc32.cc.o.d"
  "CMakeFiles/phx_common.dir/rng.cc.o"
  "CMakeFiles/phx_common.dir/rng.cc.o.d"
  "CMakeFiles/phx_common.dir/schema.cc.o"
  "CMakeFiles/phx_common.dir/schema.cc.o.d"
  "CMakeFiles/phx_common.dir/status.cc.o"
  "CMakeFiles/phx_common.dir/status.cc.o.d"
  "CMakeFiles/phx_common.dir/strings.cc.o"
  "CMakeFiles/phx_common.dir/strings.cc.o.d"
  "CMakeFiles/phx_common.dir/value.cc.o"
  "CMakeFiles/phx_common.dir/value.cc.o.d"
  "libphx_common.a"
  "libphx_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phx_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
