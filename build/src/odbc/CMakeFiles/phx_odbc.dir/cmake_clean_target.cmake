file(REMOVE_RECURSE
  "libphx_odbc.a"
)
