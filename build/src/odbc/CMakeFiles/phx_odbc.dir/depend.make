# Empty dependencies file for phx_odbc.
# This may be replaced when dependencies are built.
