file(REMOVE_RECURSE
  "CMakeFiles/phx_odbc.dir/capi.cc.o"
  "CMakeFiles/phx_odbc.dir/capi.cc.o.d"
  "CMakeFiles/phx_odbc.dir/connection_string.cc.o"
  "CMakeFiles/phx_odbc.dir/connection_string.cc.o.d"
  "CMakeFiles/phx_odbc.dir/driver_manager.cc.o"
  "CMakeFiles/phx_odbc.dir/driver_manager.cc.o.d"
  "CMakeFiles/phx_odbc.dir/native_driver.cc.o"
  "CMakeFiles/phx_odbc.dir/native_driver.cc.o.d"
  "libphx_odbc.a"
  "libphx_odbc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phx_odbc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
