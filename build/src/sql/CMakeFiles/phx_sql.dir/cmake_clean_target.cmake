file(REMOVE_RECURSE
  "libphx_sql.a"
)
