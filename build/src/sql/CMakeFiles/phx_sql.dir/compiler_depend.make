# Empty compiler generated dependencies file for phx_sql.
# This may be replaced when dependencies are built.
