file(REMOVE_RECURSE
  "CMakeFiles/phx_sql.dir/ast.cc.o"
  "CMakeFiles/phx_sql.dir/ast.cc.o.d"
  "CMakeFiles/phx_sql.dir/lexer.cc.o"
  "CMakeFiles/phx_sql.dir/lexer.cc.o.d"
  "CMakeFiles/phx_sql.dir/parser.cc.o"
  "CMakeFiles/phx_sql.dir/parser.cc.o.d"
  "libphx_sql.a"
  "libphx_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phx_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
