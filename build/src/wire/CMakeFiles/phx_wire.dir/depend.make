# Empty dependencies file for phx_wire.
# This may be replaced when dependencies are built.
