file(REMOVE_RECURSE
  "CMakeFiles/phx_wire.dir/endpoint.cc.o"
  "CMakeFiles/phx_wire.dir/endpoint.cc.o.d"
  "CMakeFiles/phx_wire.dir/in_process.cc.o"
  "CMakeFiles/phx_wire.dir/in_process.cc.o.d"
  "CMakeFiles/phx_wire.dir/messages.cc.o"
  "CMakeFiles/phx_wire.dir/messages.cc.o.d"
  "CMakeFiles/phx_wire.dir/tcp.cc.o"
  "CMakeFiles/phx_wire.dir/tcp.cc.o.d"
  "libphx_wire.a"
  "libphx_wire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phx_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
