
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wire/endpoint.cc" "src/wire/CMakeFiles/phx_wire.dir/endpoint.cc.o" "gcc" "src/wire/CMakeFiles/phx_wire.dir/endpoint.cc.o.d"
  "/root/repo/src/wire/in_process.cc" "src/wire/CMakeFiles/phx_wire.dir/in_process.cc.o" "gcc" "src/wire/CMakeFiles/phx_wire.dir/in_process.cc.o.d"
  "/root/repo/src/wire/messages.cc" "src/wire/CMakeFiles/phx_wire.dir/messages.cc.o" "gcc" "src/wire/CMakeFiles/phx_wire.dir/messages.cc.o.d"
  "/root/repo/src/wire/tcp.cc" "src/wire/CMakeFiles/phx_wire.dir/tcp.cc.o" "gcc" "src/wire/CMakeFiles/phx_wire.dir/tcp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/phx_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/phx_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/phx_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
