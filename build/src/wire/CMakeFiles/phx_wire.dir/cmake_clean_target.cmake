file(REMOVE_RECURSE
  "libphx_wire.a"
)
