# Empty dependencies file for bench_tpch_power.
# This may be replaced when dependencies are built.
