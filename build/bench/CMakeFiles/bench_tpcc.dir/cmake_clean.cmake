file(REMOVE_RECURSE
  "CMakeFiles/bench_tpcc.dir/bench_tpcc.cc.o"
  "CMakeFiles/bench_tpcc.dir/bench_tpcc.cc.o.d"
  "CMakeFiles/bench_tpcc.dir/bench_util.cc.o"
  "CMakeFiles/bench_tpcc.dir/bench_util.cc.o.d"
  "bench_tpcc"
  "bench_tpcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tpcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
