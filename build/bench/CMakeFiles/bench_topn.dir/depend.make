# Empty dependencies file for bench_topn.
# This may be replaced when dependencies are built.
