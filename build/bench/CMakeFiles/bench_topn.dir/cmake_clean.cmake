file(REMOVE_RECURSE
  "CMakeFiles/bench_topn.dir/bench_topn.cc.o"
  "CMakeFiles/bench_topn.dir/bench_topn.cc.o.d"
  "CMakeFiles/bench_topn.dir/bench_util.cc.o"
  "CMakeFiles/bench_topn.dir/bench_util.cc.o.d"
  "bench_topn"
  "bench_topn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_topn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
