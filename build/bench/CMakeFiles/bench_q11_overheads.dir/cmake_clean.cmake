file(REMOVE_RECURSE
  "CMakeFiles/bench_q11_overheads.dir/bench_q11_overheads.cc.o"
  "CMakeFiles/bench_q11_overheads.dir/bench_q11_overheads.cc.o.d"
  "CMakeFiles/bench_q11_overheads.dir/bench_util.cc.o"
  "CMakeFiles/bench_q11_overheads.dir/bench_util.cc.o.d"
  "bench_q11_overheads"
  "bench_q11_overheads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_q11_overheads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
