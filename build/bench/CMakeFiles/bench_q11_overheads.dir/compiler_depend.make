# Empty compiler generated dependencies file for bench_q11_overheads.
# This may be replaced when dependencies are built.
