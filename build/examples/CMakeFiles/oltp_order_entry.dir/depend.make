# Empty dependencies file for oltp_order_entry.
# This may be replaced when dependencies are built.
