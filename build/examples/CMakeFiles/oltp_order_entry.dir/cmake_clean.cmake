file(REMOVE_RECURSE
  "CMakeFiles/oltp_order_entry.dir/oltp_order_entry.cpp.o"
  "CMakeFiles/oltp_order_entry.dir/oltp_order_entry.cpp.o.d"
  "oltp_order_entry"
  "oltp_order_entry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oltp_order_entry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
