# Empty compiler generated dependencies file for report_session.
# This may be replaced when dependencies are built.
