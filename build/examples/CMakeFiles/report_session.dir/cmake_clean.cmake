file(REMOVE_RECURSE
  "CMakeFiles/report_session.dir/report_session.cpp.o"
  "CMakeFiles/report_session.dir/report_session.cpp.o.d"
  "report_session"
  "report_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/report_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
