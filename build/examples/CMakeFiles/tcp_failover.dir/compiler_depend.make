# Empty compiler generated dependencies file for tcp_failover.
# This may be replaced when dependencies are built.
