file(REMOVE_RECURSE
  "CMakeFiles/tcp_failover.dir/tcp_failover.cpp.o"
  "CMakeFiles/tcp_failover.dir/tcp_failover.cpp.o.d"
  "tcp_failover"
  "tcp_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
