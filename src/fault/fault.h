#ifndef PHOENIX_FAULT_FAULT_H_
#define PHOENIX_FAULT_FAULT_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace phoenix::fault {

/// What an armed fault does when its point fires.
enum class FaultMode : uint8_t {
  kError,    // return an injected error Status
  kCrash,    // kill the server (signalled to the registered crash handler)
  kDelay,    // sleep delay_micros, then continue normally
  kHang,     // sleep a long time (preempted only by a roundtrip deadline)
  kDrop,     // drop the connection between request and response
  kTorn,     // write a prefix of the payload, then fail (torn write)
  kCorrupt,  // flip a byte of the payload and continue (silent corruption)
};

const char* FaultModeName(FaultMode mode);

/// One armed rule: fires at a named point, with optional probability,
/// skip-count, and fire budget. All randomness is drawn from a per-rule
/// deterministic Rng, so a (spec, seed) pair reproduces a run exactly.
struct FaultRule {
  std::string point;
  FaultMode mode = FaultMode::kError;
  /// Probability a matching hit fires, in [0,1]. Draws come from the rule's
  /// own Rng stream (seeded from `seed`), independent of workload threads.
  double probability = 1.0;
  /// Ignore the first N hits of this point before fire evaluation begins.
  uint64_t skip_first = 0;
  /// Total fires allowed; 0 means unlimited.
  uint64_t max_fires = 1;
  /// Sleep for kDelay; for kHang, 0 means "effectively forever" (30s).
  uint64_t delay_micros = 0;
  /// Status code returned for kError (and kDrop at non-transport points).
  common::StatusCode error_code = common::StatusCode::kServerDown;
  uint64_t seed = 1;
};

/// The concrete action a fault point must carry out, resolved by Evaluate.
struct FaultAction {
  FaultMode mode = FaultMode::kError;
  common::Status error;      // pre-built status for error-like modes
  uint64_t torn_bytes = 0;   // kTorn: payload prefix length to write
  uint64_t corrupt_offset = 0;  // kCorrupt: payload byte index to flip
  uint64_t delay_micros = 0;    // kDelay/kHang: how long to sleep
};

struct FaultPointInfo {
  const char* name;
  const char* description;
};

/// All named fault points threaded through the stack, for --list-fault-points
/// and spec validation. Arming an unknown point is an error (catches typos).
const std::vector<FaultPointInfo>& FaultPointCatalog();

/// Publishes a per-roundtrip deadline for the current thread. Injected sleeps
/// (FaultInjector::SleepMicros) and the in-process transport's model sleep
/// truncate at the innermost active deadline, turning a hang into kTimeout.
class ScopedDeadline {
 public:
  explicit ScopedDeadline(std::chrono::steady_clock::time_point deadline);
  ~ScopedDeadline();
  ScopedDeadline(const ScopedDeadline&) = delete;
  ScopedDeadline& operator=(const ScopedDeadline&) = delete;

  /// The innermost deadline on this thread, if one is active.
  static std::optional<std::chrono::steady_clock::time_point> Current();

 private:
  std::optional<std::chrono::steady_clock::time_point> previous_;
};

/// Process-wide deterministic fault injector. Disabled (and nearly free: one
/// relaxed atomic load per point) until a rule is armed via Arm/ArmSpec or
/// the PHOENIX_FAULTS environment variable.
///
/// Spec grammar — rules separated by '|' (';' belongs to connection
/// strings): `point=mode[:k=v,...]` with params
///   p=<0..1>      fire probability            (default 1.0)
///   after=<n>     skip the first n hits       (default 0)
///   count=<n>     fire budget, 0 = unlimited  (default 1)
///   delay_ms=<n>, delay_us=<n>   sleep for delay/hang
///   code=<Name>   error code: ServerDown, ConnectionFailed, Timeout,
///                 IoError, Aborted             (default ServerDown)
///   seed=<n>      per-rule rng seed override
/// Example: "wal.fsync=error:code=IoError,count=2|tcp.recv=hang:delay_ms=500"
class FaultInjector {
 public:
  /// The process-wide injector; reads PHOENIX_FAULTS / PHOENIX_FAULT_SEED on
  /// first use.
  static FaultInjector& Global();

  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Arms one rule programmatically. Unknown point names abort arming in
  /// ArmSpec but are accepted here (tests may use private points).
  void Arm(FaultRule rule);

  /// Parses and arms a '|'-separated spec. `seed` perturbs every rule's rng
  /// stream (rule seed = hash(seed, rule index) unless seed= given).
  common::Status ArmSpec(const std::string& spec, uint64_t seed);

  /// ArmSpec, but a no-op if (spec, seed) is identical to the last applied
  /// pair — connection strings re-present their faults on every Phoenix
  /// reconnect and must not reset fire counters mid-run.
  common::Status ArmSpecOnce(const std::string& spec, uint64_t seed);

  /// Disarms everything, wakes all injected sleepers, clears the ArmSpecOnce
  /// memo. Fire counts are preserved (tests read them after Clear).
  void Clear();

  /// Registers the callback kCrash fires (normally a ChaosController that
  /// crashes+restarts the server on its own thread). Pass nullptr to drop.
  void SetCrashHandler(std::function<void()> handler);

  /// Invokes the registered crash handler, if any, holding the injector
  /// mutex (so SetCrashHandler(nullptr) synchronizes with in-flight calls).
  /// Handlers must therefore only signal a controller thread: neither crash
  /// the server inline (dispatch holds locks) nor call back into the
  /// injector.
  void RequestCrash();

  /// Core: does an armed rule fire at `point` for this hit? `io_len` sizes
  /// torn/corrupt offsets for byte-oriented points. Returns the action to
  /// carry out, or nullopt. kCrash actions have already signalled the crash
  /// handler when this returns.
  std::optional<FaultAction> Evaluate(const char* point, uint64_t io_len = 0);

  /// Convenience for control-path points: Evaluate + perform sleeps inline.
  /// Returns OK when nothing fired (or a delay completed); an error Status
  /// for error-like modes (kTorn/kCorrupt degrade to IoError here — the
  /// point has no payload to tear). A hang truncated by a ScopedDeadline
  /// returns kTimeout.
  common::Status Inject(const char* point);

  /// Times this rule's point has fired since process start (survives Clear).
  uint64_t fires(const std::string& point) const;

  /// Interruptible sleep used by every injected delay/hang. Returns true if
  /// the full duration elapsed (or Clear() woke it early); false iff it was
  /// truncated by the calling thread's ScopedDeadline — the caller should
  /// then report kTimeout.
  bool SleepMicros(uint64_t micros);

 private:
  FaultInjector();

  mutable std::mutex mu_;
  std::atomic<bool> enabled_{false};
  struct ArmedRule {
    FaultRule rule;
    common::Rng rng;
    uint64_t hits = 0;
    uint64_t fired = 0;
  };
  std::vector<ArmedRule> rules_;
  std::map<std::string, uint64_t> fire_counts_;
  std::function<void()> crash_handler_;
  std::string last_spec_;
  uint64_t last_spec_seed_ = 0;
  bool spec_applied_ = false;

  // Sleeper wakeup: Clear() bumps the generation and notifies.
  std::mutex sleep_mu_;
  std::condition_variable sleep_cv_;
  uint64_t sleep_generation_ = 0;
};

}  // namespace phoenix::fault

/// Drop-in fault point for Status-returning control paths:
///   PHX_FAULT_POINT("checkpoint.write");
/// expands to "if an error fault fires here, return it". Delays/hangs sleep
/// inline; a deadline-truncated hang returns Status::Timeout.
#define PHX_FAULT_POINT(point_name)                                         \
  do {                                                                      \
    auto& phx_fault_injector_ = ::phoenix::fault::FaultInjector::Global();  \
    if (phx_fault_injector_.enabled()) {                                    \
      ::phoenix::common::Status phx_fault_status_ =                         \
          phx_fault_injector_.Inject(point_name);                           \
      if (!phx_fault_status_.ok()) return phx_fault_status_;                \
    }                                                                       \
  } while (0)

#endif  // PHOENIX_FAULT_FAULT_H_
