#ifndef PHOENIX_FAULT_CHAOS_H_
#define PHOENIX_FAULT_CHAOS_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "engine/server.h"
#include "fault/fault.h"

namespace phoenix::fault {

/// Executes kCrash faults out of line. Fault points fire while the dispatch
/// path holds per-session locks, and SimulatedServer::Crash() drains those
/// same locks — crashing inline would deadlock. The controller owns a thread
/// that performs crash → pause → restart whenever a crash fault signals it.
///
/// Header-only so phx_fault does not depend on phx_engine (the library sits
/// below the engine; only chaos users pull both in).
class ChaosController {
 public:
  ChaosController(engine::SimulatedServer* server,
                  std::chrono::milliseconds restart_delay)
      : server_(server), restart_delay_(restart_delay) {
    thread_ = std::thread([this] { Run(); });
    FaultInjector::Global().SetCrashHandler([this] { RequestCrash(); });
  }

  ~ChaosController() {
    FaultInjector::Global().SetCrashHandler(nullptr);
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

  ChaosController(const ChaosController&) = delete;
  ChaosController& operator=(const ChaosController&) = delete;

  /// Queues one crash/restart cycle; callable from any thread (including a
  /// dispatch thread holding session locks).
  void RequestCrash() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++pending_;
    }
    cv_.notify_all();
  }

  uint64_t crashes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return crashes_;
  }

 private:
  void Run() {
    std::unique_lock<std::mutex> lock(mu_);
    while (true) {
      cv_.wait(lock, [&] { return stop_ || pending_ > 0; });
      if (pending_ == 0 && stop_) return;
      --pending_;
      lock.unlock();
      server_->Crash();
      std::this_thread::sleep_for(restart_delay_);
      server_->Restart().ok();
      lock.lock();
      ++crashes_;
    }
  }

  engine::SimulatedServer* server_;
  std::chrono::milliseconds restart_delay_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  uint64_t pending_ = 0;
  uint64_t crashes_ = 0;
  std::thread thread_;
};

/// Named chaos schedules for the soak harness. Each mode exercises one
/// failure family; rule seeds derive from `seed` so a (mode, seed) pair is
/// fully deterministic.
///
/// Fault placement is deliberate about exactly-once semantics:
///  - error/crash fire *before* execution (server.execute.pre), the window
///    where blind retry is safe and where Phoenix's status table must
///    disambiguate commits;
///  - hang/drop fire on the *response* path (post-execution), the ambiguous
///    window where the client cannot know if the statement ran — the
///    transport poisons itself and full recovery must consult the status
///    table;
///  - torn tears the WAL append under commit and signals a crash, exercising
///    tail repair + replay.
inline std::vector<FaultRule> MakeChaosSchedule(const std::string& mode,
                                                uint64_t seed) {
  common::Rng rng(seed * 0x9e3779b97f4a7c15ULL + 17);
  auto rule = [&](const char* point, FaultMode m, double p, uint64_t count,
                  uint64_t delay_ms) {
    FaultRule r;
    r.point = point;
    r.mode = m;
    r.probability = p;
    r.max_fires = count;
    r.delay_micros = delay_ms * 1000;
    r.seed = rng.Next64();
    return r;
  };
  std::vector<FaultRule> rules;
  if (mode == "error") {
    rules.push_back(rule("server.execute.pre", FaultMode::kError, 0.15, 6, 0));
    rules.push_back(rule("server.connect", FaultMode::kError, 0.05, 2, 0));
  } else if (mode == "crash") {
    rules.push_back(rule("server.execute.pre", FaultMode::kCrash, 0.06, 3, 0));
  } else if (mode == "hang") {
    rules.push_back(
        rule("inproc.response", FaultMode::kHang, 0.08, 3, 300));
  } else if (mode == "torn") {
    rules.push_back(rule("wal.append", FaultMode::kTorn, 0.08, 3, 0));
  } else if (mode == "drop") {
    rules.push_back(rule("inproc.response", FaultMode::kDrop, 0.08, 4, 0));
    rules.push_back(rule("inproc.request", FaultMode::kDrop, 0.05, 2, 0));
  } else {  // "mixed": a little of everything, for the soak bench
    rules.push_back(rule("server.execute.pre", FaultMode::kError, 0.08, 4, 0));
    rules.push_back(rule("server.execute.pre", FaultMode::kCrash, 0.03, 2, 0));
    rules.push_back(rule("inproc.response", FaultMode::kDrop, 0.05, 3, 0));
    rules.push_back(
        rule("inproc.response", FaultMode::kHang, 0.04, 2, 200));
    rules.push_back(rule("wal.append", FaultMode::kTorn, 0.04, 2, 0));
  }
  return rules;
}

}  // namespace phoenix::fault

#endif  // PHOENIX_FAULT_CHAOS_H_
