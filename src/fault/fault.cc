#include "fault/fault.h"

#include <cstdlib>

#include "obs/metrics.h"

namespace phoenix::fault {

using common::Status;
using common::StatusCode;

const char* FaultModeName(FaultMode mode) {
  switch (mode) {
    case FaultMode::kError:
      return "error";
    case FaultMode::kCrash:
      return "crash";
    case FaultMode::kDelay:
      return "delay";
    case FaultMode::kHang:
      return "hang";
    case FaultMode::kDrop:
      return "drop";
    case FaultMode::kTorn:
      return "torn";
    case FaultMode::kCorrupt:
      return "corrupt";
  }
  return "unknown";
}

const std::vector<FaultPointInfo>& FaultPointCatalog() {
  static const std::vector<FaultPointInfo> kCatalog = {
      {"wal.append", "WAL batch append (torn = partial record write)"},
      {"wal.fsync", "WAL durability fsync (error = commit not durable)"},
      {"wal.group_force",
       "group-commit leader force (error/crash = every queued commit fails, "
       "nothing written)"},
      {"checkpoint.write", "checkpoint commit-point write (manifest/legacy)"},
      {"checkpoint.segment_write",
       "incremental checkpoint per-table segment write (before the manifest "
       "commit point)"},
      {"checkpoint.ddl_window",
       "checkpoint holding the DDL fence, between the write-quiescence "
       "check and the snapshot"},
      {"server.connect", "server-side session establishment"},
      {"server.execute.pre", "dispatch before the statement runs"},
      {"server.execute.post", "dispatch after the statement ran"},
      {"server.commit.pre_status",
       "execute of a statement touching the Phoenix status table"},
      {"server.bundle", "dispatch of a statement-pipeline bundle"},
      {"server.fetch", "dispatch of a cursor fetch"},
      {"inproc.request", "in-process transport, request in flight"},
      {"inproc.response", "in-process transport, response in flight"},
      {"tcp.send", "TCP client request send (torn = partial frame)"},
      {"tcp.recv", "TCP client response receive"},
      {"tcp.server.send", "TCP server response send (drop = close first)"},
      {"repl.ship",
       "primary serving a replication fetch (torn = partial chunk, corrupt = "
       "flipped byte in the shipped copy)"},
      {"repl.apply", "standby applier, before applying a fetched batch"},
      {"repl.promote", "standby promotion request"},
  };
  return kCatalog;
}

namespace {

bool KnownPoint(const std::string& name) {
  for (const FaultPointInfo& info : FaultPointCatalog()) {
    if (name == info.name) return true;
  }
  return false;
}

thread_local std::optional<std::chrono::steady_clock::time_point>
    g_thread_deadline;

common::Status MakeFaultError(StatusCode code, const std::string& point) {
  std::string msg = "injected fault at " + point;
  switch (code) {
    case StatusCode::kConnectionFailed:
      return Status::ConnectionFailed(std::move(msg));
    case StatusCode::kTimeout:
      return Status::Timeout(std::move(msg));
    case StatusCode::kIoError:
      return Status::IoError(std::move(msg));
    case StatusCode::kAborted:
      return Status::Aborted(std::move(msg));
    case StatusCode::kServerDown:
    default:
      return Status::ServerDown(std::move(msg));
  }
}

bool ParseErrorCode(const std::string& name, StatusCode* out) {
  if (name == "ServerDown") {
    *out = StatusCode::kServerDown;
  } else if (name == "ConnectionFailed") {
    *out = StatusCode::kConnectionFailed;
  } else if (name == "Timeout") {
    *out = StatusCode::kTimeout;
  } else if (name == "IoError") {
    *out = StatusCode::kIoError;
  } else if (name == "Aborted") {
    *out = StatusCode::kAborted;
  } else {
    return false;
  }
  return true;
}

bool ParseMode(const std::string& name, FaultMode* out) {
  if (name == "error") {
    *out = FaultMode::kError;
  } else if (name == "crash") {
    *out = FaultMode::kCrash;
  } else if (name == "delay") {
    *out = FaultMode::kDelay;
  } else if (name == "hang") {
    *out = FaultMode::kHang;
  } else if (name == "drop") {
    *out = FaultMode::kDrop;
  } else if (name == "torn") {
    *out = FaultMode::kTorn;
  } else if (name == "corrupt") {
    *out = FaultMode::kCorrupt;
  } else {
    return false;
  }
  return true;
}

std::vector<std::string> Split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find(sep, start);
    if (end == std::string::npos) end = text.size();
    parts.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return parts;
}

/// Mixes a spec-wide seed with the rule index into a per-rule stream.
uint64_t RuleSeed(uint64_t spec_seed, size_t index) {
  uint64_t z = spec_seed + 0x9e3779b97f4a7c15ULL * (index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  return z ^ (z >> 27);
}

}  // namespace

ScopedDeadline::ScopedDeadline(std::chrono::steady_clock::time_point deadline)
    : previous_(g_thread_deadline) {
  // Nested scopes keep the tighter constraint.
  if (!previous_.has_value() || deadline < *previous_) {
    g_thread_deadline = deadline;
  }
}

ScopedDeadline::~ScopedDeadline() { g_thread_deadline = previous_; }

std::optional<std::chrono::steady_clock::time_point> ScopedDeadline::Current() {
  return g_thread_deadline;
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

FaultInjector::FaultInjector() {
  const char* spec = std::getenv("PHOENIX_FAULTS");
  if (spec != nullptr && spec[0] != '\0') {
    const char* seed_env = std::getenv("PHOENIX_FAULT_SEED");
    uint64_t seed = seed_env != nullptr
                        ? static_cast<uint64_t>(std::atoll(seed_env))
                        : 1;
    ArmSpec(spec, seed).ok();
  }
}

void FaultInjector::Arm(FaultRule rule) {
  std::lock_guard<std::mutex> lock(mu_);
  ArmedRule armed;
  armed.rng.Reseed(rule.seed);
  armed.rule = std::move(rule);
  rules_.push_back(std::move(armed));
  enabled_.store(true, std::memory_order_relaxed);
}

Status FaultInjector::ArmSpec(const std::string& spec, uint64_t seed) {
  std::vector<FaultRule> parsed;
  size_t index = 0;
  for (const std::string& rule_text : Split(spec, '|')) {
    if (rule_text.empty()) continue;
    size_t eq = rule_text.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("fault rule missing '=': " + rule_text);
    }
    FaultRule rule;
    rule.point = rule_text.substr(0, eq);
    if (!KnownPoint(rule.point)) {
      return Status::InvalidArgument("unknown fault point: " + rule.point);
    }
    std::string rest = rule_text.substr(eq + 1);
    std::string mode_name = rest;
    std::string params;
    size_t colon = rest.find(':');
    if (colon != std::string::npos) {
      mode_name = rest.substr(0, colon);
      params = rest.substr(colon + 1);
    }
    if (!ParseMode(mode_name, &rule.mode)) {
      return Status::InvalidArgument("unknown fault mode: " + mode_name);
    }
    rule.seed = RuleSeed(seed, index);
    for (const std::string& kv : Split(params, ',')) {
      if (kv.empty()) continue;
      size_t kv_eq = kv.find('=');
      if (kv_eq == std::string::npos) {
        return Status::InvalidArgument("fault param missing '=': " + kv);
      }
      std::string key = kv.substr(0, kv_eq);
      std::string value = kv.substr(kv_eq + 1);
      if (key == "p") {
        rule.probability = std::atof(value.c_str());
      } else if (key == "after") {
        rule.skip_first = static_cast<uint64_t>(std::atoll(value.c_str()));
      } else if (key == "count") {
        rule.max_fires = static_cast<uint64_t>(std::atoll(value.c_str()));
      } else if (key == "delay_ms") {
        rule.delay_micros =
            static_cast<uint64_t>(std::atoll(value.c_str())) * 1000;
      } else if (key == "delay_us") {
        rule.delay_micros = static_cast<uint64_t>(std::atoll(value.c_str()));
      } else if (key == "code") {
        if (!ParseErrorCode(value, &rule.error_code)) {
          return Status::InvalidArgument("unknown fault error code: " + value);
        }
      } else if (key == "seed") {
        rule.seed = static_cast<uint64_t>(std::atoll(value.c_str()));
      } else {
        return Status::InvalidArgument("unknown fault param: " + key);
      }
    }
    parsed.push_back(std::move(rule));
    ++index;
  }
  for (FaultRule& rule : parsed) {
    Arm(std::move(rule));
  }
  return Status::OK();
}

Status FaultInjector::ArmSpecOnce(const std::string& spec, uint64_t seed) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (spec_applied_ && last_spec_ == spec && last_spec_seed_ == seed) {
      return Status::OK();
    }
  }
  PHX_RETURN_IF_ERROR(ArmSpec(spec, seed));
  std::lock_guard<std::mutex> lock(mu_);
  spec_applied_ = true;
  last_spec_ = spec;
  last_spec_seed_ = seed;
  return Status::OK();
}

void FaultInjector::Clear() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    rules_.clear();
    spec_applied_ = false;
    last_spec_.clear();
    last_spec_seed_ = 0;
    enabled_.store(false, std::memory_order_relaxed);
  }
  // Wake every injected sleeper so hung requests drain promptly.
  {
    std::lock_guard<std::mutex> lock(sleep_mu_);
    ++sleep_generation_;
  }
  sleep_cv_.notify_all();
}

void FaultInjector::SetCrashHandler(std::function<void()> handler) {
  std::lock_guard<std::mutex> lock(mu_);
  crash_handler_ = std::move(handler);
}

void FaultInjector::RequestCrash() {
  // Invoked under mu_ so SetCrashHandler(nullptr) in a controller's
  // destructor cannot return while the handler is mid-call (lifetime
  // safety). Handlers therefore must not call back into the injector.
  std::lock_guard<std::mutex> lock(mu_);
  if (crash_handler_) crash_handler_();
}

std::optional<FaultAction> FaultInjector::Evaluate(const char* point,
                                                   uint64_t io_len) {
  FaultAction action;
  bool fired = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (ArmedRule& armed : rules_) {
      if (armed.rule.point != point) continue;
      ++armed.hits;
      if (armed.hits <= armed.rule.skip_first) continue;
      if (armed.rule.max_fires != 0 && armed.fired >= armed.rule.max_fires) {
        continue;
      }
      if (armed.rule.probability < 1.0 &&
          armed.rng.NextDouble() >= armed.rule.probability) {
        continue;
      }
      ++armed.fired;
      ++fire_counts_[armed.rule.point];
      action.mode = armed.rule.mode;
      action.delay_micros = armed.rule.delay_micros;
      if (action.mode == FaultMode::kHang && action.delay_micros == 0) {
        action.delay_micros = 30'000'000;  // "forever" at test scale
      }
      if (io_len > 0) {
        action.torn_bytes = static_cast<uint64_t>(
            armed.rng.Uniform(0, static_cast<int64_t>(io_len) - 1));
        action.corrupt_offset = static_cast<uint64_t>(
            armed.rng.Uniform(0, static_cast<int64_t>(io_len) - 1));
      }
      switch (action.mode) {
        case FaultMode::kError:
          action.error = MakeFaultError(armed.rule.error_code, point);
          break;
        case FaultMode::kCrash:
          action.error =
              Status::ServerDown("injected crash at " + std::string(point));
          break;
        case FaultMode::kDrop:
          action.error = Status::ConnectionFailed(
              "injected connection drop at " + std::string(point));
          break;
        case FaultMode::kTorn:
        case FaultMode::kCorrupt:
          action.error =
              Status::IoError("injected " +
                              std::string(FaultModeName(action.mode)) +
                              " write at " + std::string(point));
          break;
        default:
          break;
      }
      fired = true;
      break;
    }
  }
  if (!fired) return std::nullopt;
  if (obs::Enabled()) {
    obs::Registry::Global()
        .counter("fault.fired." + std::string(point))
        ->Add(1);
  }
  if (action.mode == FaultMode::kCrash) RequestCrash();
  return action;
}

Status FaultInjector::Inject(const char* point) {
  std::optional<FaultAction> action = Evaluate(point);
  if (!action.has_value()) return Status::OK();
  switch (action->mode) {
    case FaultMode::kDelay:
    case FaultMode::kHang:
      if (!SleepMicros(action->delay_micros)) {
        return Status::Timeout("roundtrip deadline exceeded during injected " +
                               std::string(FaultModeName(action->mode)) +
                               " at " + point);
      }
      return Status::OK();
    case FaultMode::kCrash:
      // The crash handler has been signalled; the site reports the server
      // went down under it.
      return action->error;
    default:
      return action->error;
  }
}

uint64_t FaultInjector::fires(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = fire_counts_.find(point);
  return it == fire_counts_.end() ? 0 : it->second;
}

bool FaultInjector::SleepMicros(uint64_t micros) {
  auto now = std::chrono::steady_clock::now();
  auto wake = now + std::chrono::microseconds(micros);
  std::optional<std::chrono::steady_clock::time_point> deadline =
      ScopedDeadline::Current();
  bool truncated = false;
  if (deadline.has_value() && *deadline < wake) {
    wake = *deadline;
    truncated = true;
  }
  std::unique_lock<std::mutex> lock(sleep_mu_);
  uint64_t generation = sleep_generation_;
  sleep_cv_.wait_until(lock, wake, [&] {
    return sleep_generation_ != generation;
  });
  if (sleep_generation_ != generation) return true;  // woken by Clear()
  return !truncated;
}

}  // namespace phoenix::fault
