#ifndef PHOENIX_ENGINE_GROUP_COMMIT_H_
#define PHOENIX_ENGINE_GROUP_COMMIT_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "engine/wal.h"

namespace phoenix::engine {

/// Amortizes WAL forces across concurrent committers (group commit).
///
/// Protocol: every committer enqueues its serialized redo batch and blocks.
/// The first enqueuer to find no leader active becomes the leader: it drains
/// the whole queue, optionally lingers up to `max_wait` for late arrivals,
/// writes every pending batch with a single WalWriter::AppendBatches call
/// (one write(2), at most one fsync), then wakes each follower with the
/// shared outcome. Committers that arrive while a leader is forcing wait and
/// form the next group — so under load the group grows to whatever
/// accumulates during one force, with no configured delay (`max_wait` = 0
/// preserves the single-committer latency profile exactly).
///
/// Failure contract: the group force is all-or-nothing. On any append/fsync
/// error the leader repairs the WAL tail (truncating whatever prefix of the
/// group reached the file) BEFORE waking the group, so a commit that is
/// reported failed — and whose transaction the caller then rolls back — can
/// never be replayed as committed after a crash. If even the repair fails
/// (fail-stop disk), the torn mark persists and the next append retries it.
///
/// Checkpoint interaction: ExclusiveWalLock() blocks the leader (and the
/// serialized escape-hatch path) for the duration, so Database::Checkpoint
/// can hold the commit path across snapshot + WAL truncate.
class GroupCommitCoordinator {
 public:
  GroupCommitCoordinator() = default;
  GroupCommitCoordinator(const GroupCommitCoordinator&) = delete;
  GroupCommitCoordinator& operator=(const GroupCommitCoordinator&) = delete;

  /// Must be called once, after `wal` is open and before the first Commit.
  /// `enabled` = false reproduces the pre-coordinator serialized path: one
  /// mutex-guarded AppendBatch (and one force) per commit.
  void Configure(WalWriter* wal, bool enabled,
                 std::chrono::microseconds max_wait) {
    wal_ = wal;
    enabled_ = enabled;
    max_wait_ = max_wait;
  }

  bool enabled() const { return enabled_; }

  /// Makes one commit batch durable; blocks until the force that covers it
  /// completes (or fails). Thread-safe; callers own `records` for the call.
  common::Status Commit(const std::vector<WalRecord>& records);

  /// Excludes every WAL append (group or serialized) while held. Lock order:
  /// callers must not hold it while calling Commit on the same thread.
  std::unique_lock<std::mutex> ExclusiveWalLock() {
    return std::unique_lock<std::mutex>(wal_mu_);
  }

  // --- Introspection (tests/benches; independent of obs being enabled) ----

  /// Commit batches made durable (or failed) through the coordinator.
  uint64_t commits() const { return commits_.load(std::memory_order_relaxed); }
  /// Physical WAL forces issued; commits() - forces() = forces saved.
  uint64_t forces() const { return forces_.load(std::memory_order_relaxed); }

 private:
  struct Waiter {
    explicit Waiter(const std::vector<WalRecord>* r) : records(r) {}
    const std::vector<WalRecord>* records;
    common::Status status;
    bool done = false;
  };

  /// Leader body: force `group` as one append, repairing the tail on error.
  common::Status ForceGroup(const std::vector<Waiter*>& group);

  WalWriter* wal_ = nullptr;
  bool enabled_ = true;
  std::chrono::microseconds max_wait_{0};

  /// Guards queue_ / leader_active_; cv_ wakes followers and lingering
  /// leaders.
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Waiter*> queue_;
  bool leader_active_ = false;

  /// Serializes physical WAL writes; Checkpoint takes it to fence truncate.
  std::mutex wal_mu_;

  std::atomic<uint64_t> commits_{0};
  std::atomic<uint64_t> forces_{0};
};

}  // namespace phoenix::engine

#endif  // PHOENIX_ENGINE_GROUP_COMMIT_H_
