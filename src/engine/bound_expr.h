#ifndef PHOENIX_ENGINE_BOUND_EXPR_H_
#define PHOENIX_ENGINE_BOUND_EXPR_H_

#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "sql/ast.h"

namespace phoenix::engine {

class RowSource;

/// Deferred uncorrelated subquery: planned eagerly (name resolution, locks)
/// but executed lazily on first evaluation, so a compile-only probe such as
/// Phoenix's `WHERE 0=1` trick never pays for subquery execution.
struct SubqueryRuntime {
  std::unique_ptr<RowSource> plan;
  bool scalar_evaluated = false;
  common::Value scalar_value;  // scalar subquery cache

  bool set_evaluated = false;
  /// IN-subquery membership cache, keyed by Value hash.
  std::vector<common::Value> set_values;
  bool set_has_null = false;

  common::Status EvaluateScalar();
  common::Status EvaluateSet();
};

/// Expression with column references resolved to input-row slot indexes.
/// Produced by the Binder (planner.h); evaluated per row by Eval().
struct BoundExpr {
  enum class Kind : uint8_t {
    kConst,
    kSlot,       // input row column
    kUnary,
    kBinary,
    kFunction,   // scalar function (aggregates never reach Eval; the
                 // aggregate operator computes them and exposes slots)
    kCase,
    kBetween,
    kInList,
    kInSubquery,
    kLike,
    kIsNull,
    kSubquery,   // scalar subquery
  };

  Kind kind = Kind::kConst;
  common::Value constant;  // kConst
  int slot = -1;           // kSlot

  sql::UnaryOp unary_op = sql::UnaryOp::kNegate;
  sql::BinaryOp binary_op = sql::BinaryOp::kAdd;
  std::string function_name;  // kFunction (upper-case)
  bool negated = false;
  bool has_else = false;

  std::vector<std::unique_ptr<BoundExpr>> children;
  std::shared_ptr<SubqueryRuntime> subquery;  // kSubquery / kInSubquery

  /// Static type, used by Phoenix's metadata probe to build result tables
  /// without executing anything.
  common::ValueType type = common::ValueType::kNull;
};

using BoundExprPtr = std::unique_ptr<BoundExpr>;

/// Evaluates against an input row. SQL three-valued logic: comparisons with
/// NULL yield NULL; AND/OR use Kleene semantics; invalid arithmetic
/// (division by zero, type mismatch that survived binding) yields NULL.
common::Value EvalBound(const BoundExpr& expr, const common::Row& row);

/// Convenience for filters: true iff EvalBound yields boolean TRUE.
bool EvalPredicate(const BoundExpr& expr, const common::Row& row);

/// One aggregate computed by the aggregate operator.
struct AggregateSpec {
  enum class Func : uint8_t { kSum, kCount, kCountStar, kAvg, kMin, kMax };
  Func func = Func::kCountStar;
  bool distinct = false;
  BoundExprPtr arg;  // null for COUNT(*)
  common::ValueType result_type = common::ValueType::kInt;
};

/// Streaming accumulator for one aggregate within one group.
class AggregateAccumulator {
 public:
  explicit AggregateAccumulator(const AggregateSpec* spec) : spec_(spec) {}

  void Add(const common::Row& row);
  common::Value Finish() const;

 private:
  const AggregateSpec* spec_;
  int64_t count_ = 0;
  double sum_double_ = 0.0;
  int64_t sum_int_ = 0;
  bool saw_double_ = false;
  bool has_value_ = false;
  common::Value extreme_;  // MIN/MAX
  std::unordered_set<size_t> distinct_hashes_;
  std::vector<common::Value> distinct_values_;  // hash-collision safety
};

}  // namespace phoenix::engine

#endif  // PHOENIX_ENGINE_BOUND_EXPR_H_
