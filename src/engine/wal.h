#ifndef PHOENIX_ENGINE_WAL_H_
#define PHOENIX_ENGINE_WAL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/schema.h"
#include "common/status.h"
#include "common/value.h"
#include "engine/catalog.h"

namespace phoenix::engine {

/// Redo-only logical WAL. A transaction's records are buffered in memory and
/// written (followed by kCommit) atomically at commit time; recovery replays
/// only transactions whose kCommit made it to disk. This gives the durability
/// split the paper relies on: committed persistent tables survive a crash,
/// everything else does not.
enum class WalRecordType : uint8_t {
  kBegin = 1,
  kCommit = 2,
  kAbort = 3,
  kCreateTable = 4,
  kDropTable = 5,
  kInsert = 6,
  kBulkInsert = 7,
  kDelete = 8,
  kUpdate = 9,
  kCreateProcedure = 10,
  kDropProcedure = 11,
  /// Server-epoch stamp (repl fencing). Stands alone outside transaction
  /// framing; recovery takes the max over all stamps. `value` = epoch.
  kEpoch = 12,
  /// Replication stream position, appended inside an applied transaction's
  /// commit batch on a standby so the applied-LSN is durable atomically with
  /// the data it covers. `value` = primary stream offset past this txn.
  kReplLsn = 13,
  /// Terminates a *prepared* (not yet decided) cross-shard transaction's
  /// batch instead of kCommit. `table_name` carries the global transaction
  /// id the coordinator decision log is keyed by. Recovery treats a prepared
  /// transaction as committed iff the coordinator's decision resolver says
  /// so (presumed abort otherwise).
  kPrepare = 14,
};

struct WalRecord {
  WalRecordType type = WalRecordType::kBegin;
  TxnId txn = 0;

  std::string table_name;                // create/drop/insert/delete/update;
                                         // procedure name for proc records
  common::Schema schema;                 // kCreateTable
  std::vector<std::string> primary_key;  // kCreateTable
  common::Row row;                       // kInsert / kDelete / kUpdate (old)
  common::Row new_row;                   // kUpdate (new)
  std::vector<common::Row> rows;         // kBulkInsert
  std::vector<sql::ProcedureParam> proc_params;  // kCreateProcedure
  std::string proc_body;                         // kCreateProcedure
  uint64_t value = 0;                            // kEpoch / kReplLsn

  std::vector<uint8_t> Serialize() const;
  static common::Result<WalRecord> Deserialize(const uint8_t* data,
                                               size_t size);
};

/// How hard the WAL pushes committed bytes toward stable storage.
///
/// The crash model in this repo is *process-survives* (Crash() wipes engine
/// memory, not the OS page cache), so kFlush — a write(2) into the page
/// cache — is already "durable" with respect to simulated crashes. kSync
/// adds fdatasync(2) for real process-kill scenarios.
enum class WalSyncMode : uint8_t { kNone, kFlush, kSync };

/// Observes durable WAL appends. Invoked by the group-commit leader (under
/// its serialization) immediately after good_offset_ advances, with exactly
/// the bytes that became durable — the replication shipper hooks in here so
/// only fsynced prefixes ever ship. Must be fast and must not call back into
/// the WAL.
using WalAppendObserver =
    std::function<void(const uint8_t* data, size_t size)>;

/// Appends framed records ([len][crc32][payload]) to the log file.
/// Thread safety: callers serialize appends through the group-commit
/// coordinator (GroupCommitCoordinator), which elects one writing leader at
/// a time; bytes_written() may be read concurrently.
class WalWriter {
 public:
  WalWriter() = default;
  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  common::Status Open(const std::string& path, WalSyncMode sync_mode);
  bool is_open() const { return fd_ >= 0; }

  /// Writes all records in one write(2) call, then applies the sync mode —
  /// this is the commit's atomic unit.
  common::Status AppendBatch(const std::vector<WalRecord>& records);

  /// Group commit: writes several commit batches with ONE write(2) and ONE
  /// sync. All-or-nothing from the caller's point of view — on any error the
  /// whole group counts as failed and the tail is marked for repair, even if
  /// some batches' frames fully reached the file.
  common::Status AppendBatches(
      const std::vector<const std::vector<WalRecord>*>& batches);

  /// Truncates a failed append's leftover bytes off the file now (no-op when
  /// the tail is clean). The commit path calls this BEFORE acknowledging a
  /// commit failure, so a rolled-back transaction can never be replayed as
  /// committed by a recovery that runs before the next append.
  common::Status RepairTail();

  /// Truncates the log (after a successful checkpoint).
  common::Status Truncate();

  /// Installs (or clears, with nullptr) the durable-append observer. Set
  /// before concurrent traffic starts; the callback runs on the appending
  /// leader's thread.
  void set_append_observer(WalAppendObserver observer) {
    append_observer_ = std::move(observer);
  }

  common::Status Close();

  /// Total bytes appended since Open (benchmark reporting; safe to read
  /// concurrently with a leader appending).
  uint64_t bytes_written() const {
    return bytes_written_.load(std::memory_order_relaxed);
  }

  /// Size of the durable, replayable log: the end offset of the last fully
  /// appended batch, including any tail that predates this Open (unlike
  /// bytes_written(), which counts appends since Open only). This is the
  /// redo-tail length the background checkpoint trigger budgets against;
  /// safe to read concurrently with a leader appending.
  uint64_t durable_size() const {
    return good_offset_.load(std::memory_order_relaxed);
  }

 private:
  int fd_ = -1;
  WalSyncMode sync_mode_ = WalSyncMode::kFlush;
  std::string path_;
  std::atomic<uint64_t> bytes_written_{0};
  /// End of the last fully appended (and synced, in kSync mode) batch. When
  /// an append fails partway — torn write, write error, fsync error — the
  /// bytes past this offset belong to a commit that was rolled back; the
  /// next append truncates back here first so they can never be replayed.
  /// Atomic only for durable_size() readers; all writes happen under the
  /// group-commit leader / checkpoint WAL-fence serialization.
  std::atomic<uint64_t> good_offset_{0};
  bool tail_torn_ = false;
  WalAppendObserver append_observer_;
};

/// Reads every intact record from a WAL file. Stops cleanly (no error) at a
/// torn or truncated tail — that is the expected post-crash state.
common::Result<std::vector<WalRecord>> ReadWalFile(const std::string& path);

}  // namespace phoenix::engine

#endif  // PHOENIX_ENGINE_WAL_H_
