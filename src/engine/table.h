#ifndef PHOENIX_ENGINE_TABLE_H_
#define PHOENIX_ENGINE_TABLE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/schema.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/value.h"
#include "engine/ids.h"
#include "engine/snapshot.h"

namespace phoenix::engine {

/// Identifies a row slot within a table for the lifetime of the table. A
/// slot is a primary-key lineage: delete + re-insert of the same key reuses
/// the slot, so old snapshots keep finding the key's prior versions through
/// the PK index.
using RowId = uint64_t;

/// In-memory versioned heap table with an optional primary-key index.
///
/// Storage is a slot vector where each slot holds a singly-linked version
/// chain, newest first. A version carries [begin_ts, end_ts) commit
/// timestamps plus the creating/deleting transaction ids while those stamps
/// are pending:
///
///   begin_ts == 0                  pending insert (creator = writer txn)
///   begin_ts == kBaseTs            base version (recovery / bulk load)
///   begin_ts == cts                committed at cts
///   end_ts == kMaxTs               live (no deleter)
///   end_ts == 0 && deleter != 0    pending delete
///   end_ts == cts                  deleted at cts
///
/// Writers install pending versions under their X/IX locks; Commit stamps
/// them with the commit timestamp (StampCommit) and prunes what fell below
/// the GC watermark (PruneSlot); Rollback pops them (RollbackSlot). Readers
/// never take lock-manager locks: the *Visible methods evaluate a Snapshot
/// against the chains under the short physical latch.
///
/// The unversioned-looking mutators (Insert/InsertBulk/Delete/Undelete/
/// Update) are "base ops": single-version committed-at-kBaseTs operations
/// used by WAL replay, checkpoint load, and direct-table tests — recovery is
/// single-threaded and rebuilds base versions only.
///
/// Thread safety: all methods that touch slots_/pk_index_ take latch_
/// internally unless suffixed *Locked (callers pass the latch explicitly) or
/// documented otherwise. Long-term isolation comes from the lock manager
/// (writers) and snapshots (readers), not from the latch.
class Table {
 public:
  /// Commit timestamp of base versions. The TransactionManager's clock
  /// starts here so every snapshot sees recovered state.
  static constexpr uint64_t kBaseTs = 1;
  /// end_ts of a live version.
  static constexpr uint64_t kMaxTs = ~uint64_t{0};

  Table(std::string name, common::Schema schema,
        std::vector<std::string> primary_key, bool temporary);

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const std::string& name() const { return name_; }
  const common::Schema& schema() const { return schema_; }
  const std::vector<std::string>& primary_key() const { return primary_key_; }
  bool temporary() const { return temporary_; }
  bool has_primary_key() const { return !pk_column_indexes_.empty(); }

  /// Number of rows live in the writer view (latest version, pending
  /// included for inserts / excluded for deletes).
  size_t live_row_count() const {
    common::MutexLock latch(&latch_);
    return live_count_;
  }
  /// Number of slots, including dead ones; scan bound.
  size_t slot_count() const {
    common::MutexLock latch(&latch_);
    return slots_.size();
  }

  // --- Base ops (WAL replay, checkpoint load, single-threaded tests) ------

  /// Validates the row against the schema and primary key, then installs a
  /// committed base version (begin_ts = kBaseTs).
  common::Result<RowId> Insert(common::Row row);

  /// Installs many base rows (validation included); used by bulk load, WAL
  /// replay and recovery. Stops at the first bad row.
  common::Status InsertBulk(std::vector<common::Row> rows);

  /// Ends the head version at kBaseTs (contents are kept so Undelete can
  /// restore it). Returns NotFound if not live.
  common::Status Delete(RowId id);

  /// Revives a base-deleted head version in place (rollback of base
  /// Delete in tests). The slot must be dead and its primary key free.
  common::Status Undelete(RowId id);

  /// Replaces the head version's contents in place (maintains the PK
  /// index; supports key-moving updates). WAL replay only — concurrent
  /// execution uses UpdateVersion.
  common::Status Update(RowId id, common::Row new_row);

  // --- Versioned ops (normal execution; writer holds X/IX locks) ----------

  /// Installs a pending insert version for `txn`. If the PK already names a
  /// slot, the new version chains onto that slot (key lineage); a live head
  /// is a constraint violation.
  common::Result<RowId> InsertVersion(common::Row row, TxnId txn);

  /// Marks the head version pending-deleted by `txn`.
  common::Status DeleteVersion(RowId id, TxnId txn);

  /// Installs a pending version with new contents on top of the current
  /// head and marks the old head pending-deleted — both stamped at commit.
  /// The new row must keep the slot's primary key (Database splits
  /// key-moving updates into DeleteVersion + InsertVersion).
  common::Status UpdateVersion(RowId id, common::Row new_row, TxnId txn);

  /// Stamps every version of the slot pending under `txn` with commit
  /// timestamp `cts`. Idempotent.
  void StampCommit(RowId id, TxnId txn, uint64_t cts);

  /// Reverts the slot's versions pending under `txn`: pops pending-insert
  /// heads, clears pending-delete marks. Idempotent.
  void RollbackSlot(RowId id, TxnId txn);

  struct PruneStats {
    size_t freed = 0;         // versions reclaimed
    size_t chain_length = 0;  // chain length before pruning
  };

  /// Frees versions of the slot no snapshot at or above `watermark` can
  /// see: everything older than the newest version committed at or before
  /// the watermark, plus that version itself if it was deleted at or before
  /// the watermark. Erases the PK entry when the chain empties.
  PruneStats PruneSlot(RowId id, uint64_t watermark);

  // --- Writer view (caller holds the slot's X lock or the table X lock) ---

  /// True if the slot's newest version is live in the writer view.
  bool IsLive(RowId id) const PHX_NO_THREAD_SAFETY_ANALYSIS {
    return id < slots_.size() && slots_[id].head != nullptr &&
           slots_[id].head->end_ts == kMaxTs;
  }

  /// Returns the newest version's row; caller must ensure IsLive.
  const common::Row& GetRow(RowId id) const PHX_NO_THREAD_SAFETY_ANALYSIS {
    return slots_[id].head->row;
  }

  /// Primary-key point lookup in the writer view. NotFound if the key's
  /// head version is not live.
  common::Result<RowId> LookupPk(const common::Row& key_values) const;

  /// Range scan over a leading prefix of the primary key (the engine's
  /// stand-in for a B-tree index range): RowIds of writer-view-live rows
  /// whose first prefix_values.size() PK columns equal the given values, in
  /// PK order. Prefix size must be in [1, pk arity].
  common::Result<std::vector<RowId>> ScanPkPrefix(
      const std::vector<common::Value>& prefix_values) const;

  // --- Snapshot reads (no lock-manager traffic; latch taken inside) -------

  /// Reads the slot's version visible to `snap` into *out. Returns false if
  /// no version is visible.
  bool ReadVisible(RowId id, const Snapshot& snap, common::Row* out) const;

  /// PK point lookup as of `snap`. Returns false if the key has no visible
  /// version.
  bool LookupPkVisible(const common::Row& key_values, const Snapshot& snap,
                       common::Row* out) const;

  /// PK prefix range as of `snap`: copies of every visible matching row in
  /// PK order.
  common::Result<std::vector<common::Row>> ScanPkPrefixVisible(
      const std::vector<common::Value>& prefix_values,
      const Snapshot& snap) const;

  /// Batched snapshot scan: appends up to `max_rows` visible rows starting
  /// at slot *cursor, advancing *cursor past the slots examined. Returns
  /// false when the scan is exhausted. One latch acquisition per batch.
  bool ScanVisibleBatch(RowId* cursor, const Snapshot& snap, size_t max_rows,
                        std::vector<common::Row>* out) const;

  /// Copies all rows visible to `snap` (checkpointing, full
  /// materialization). With Snapshot::kReadLatest this is the newest
  /// committed state.
  std::vector<common::Row> SnapshotRowsAsOf(const Snapshot& snap) const;

  /// Newest committed state — base-op era alias used by checkpoint tests.
  std::vector<common::Row> SnapshotRows() const {
    return SnapshotRowsAsOf(Snapshot{Snapshot::kReadLatest, 0});
  }

  // --- Maintenance / introspection ---------------------------------------

  /// Encodes the PK columns of a full row into an index key. Pure.
  std::string EncodePkFromRow(const common::Row& row) const;

  /// Column indexes (into the schema) of the primary key, in PK order.
  const std::vector<int>& pk_column_indexes() const {
    return pk_column_indexes_;
  }

  /// Removes all rows and versions (WAL replay of DROP+CREATE, tests).
  void Clear();

  /// Approximate bytes consumed by all versions (benchmark reporting).
  size_t ApproxLiveBytes() const;

  /// CRC32 over the serialized newest-committed rows in slot order. Two
  /// tables with identical content AND identical slot layout produce the
  /// same digest, which is exactly the property the parallel-replay
  /// determinism tests assert (replay must reproduce slot assignment, not
  /// just row sets).
  uint32_t ContentDigest() const;

  /// CRC32 over the serialized newest-committed rows in slot order, slot ids
  /// excluded. Rolled-back inserts leave permanent holes in the slot vector,
  /// so a warm standby — which only ever sees committed work — legitimately
  /// assigns different slot ids than a primary that processed aborts; this is
  /// the layout-insensitive equivalence the replication tests assert.
  uint32_t LogicalDigest() const;

  /// Total versions across all chains (GC tests and the chain-length
  /// metric).
  size_t TotalVersionCount() const;

  /// Short-duration physical latch guarding the slot vector, version
  /// chains, and PK index. Every accessor here latches internally; exposed
  /// for multi-step read-check-act sequences in Database.
  common::Mutex& latch() const PHX_RETURN_CAPABILITY(latch_) {
    return latch_;
  }

 private:
  struct RowVersion {
    common::Row row;
    uint64_t begin_ts = 0;           // 0 = pending (creator set)
    uint64_t end_ts = kMaxTs;        // kMaxTs = live; 0 = pending delete
    TxnId creator = 0;
    TxnId deleter = 0;
    std::unique_ptr<RowVersion> older;
  };

  struct RowSlot {
    std::unique_ptr<RowVersion> head;
  };

  /// True if the newest version is live in the writer view.
  static bool HeadLive(const RowSlot& slot) {
    return slot.head != nullptr && slot.head->end_ts == kMaxTs;
  }

  static bool VersionVisible(const RowVersion& v, const Snapshot& snap);
  /// Newest version of the chain visible to `snap`, or nullptr.
  static const RowVersion* FindVisible(const RowSlot& slot,
                                       const Snapshot& snap);

  common::Status CheckPkUniqueLocked(const common::Row& row,
                                     RowId* reusable_slot) const
      PHX_REQUIRES(latch_);
  common::Result<RowId> InsertLocked(common::Row row, TxnId txn,
                                     uint64_t begin_ts) PHX_REQUIRES(latch_);

  std::string name_;
  common::Schema schema_;
  std::vector<std::string> primary_key_;
  std::vector<int> pk_column_indexes_;
  bool temporary_;

  mutable common::Mutex latch_;
  std::vector<RowSlot> slots_ PHX_GUARDED_BY(latch_);
  size_t live_count_ PHX_GUARDED_BY(latch_) = 0;
  /// PK index: order-preserving encoded key -> slot (see key_encoding.h).
  /// Ordered so PK-prefix ranges are map ranges. Present iff
  /// has_primary_key(). An entry persists while its slot's chain holds any
  /// version (liveness is a property of the head version, not of entry
  /// presence).
  std::map<std::string, RowId> pk_index_ PHX_GUARDED_BY(latch_);
};

using TablePtr = std::shared_ptr<Table>;

}  // namespace phoenix::engine

#endif  // PHOENIX_ENGINE_TABLE_H_
