#ifndef PHOENIX_ENGINE_TABLE_H_
#define PHOENIX_ENGINE_TABLE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/schema.h"
#include "common/status.h"
#include "common/value.h"

namespace phoenix::engine {

/// Identifies a row within a table for the lifetime of the table (slots are
/// never reused; deletes tombstone).
using RowId = uint64_t;

/// In-memory heap table with an optional primary-key hash index.
///
/// Storage is an append-only slot vector: DELETE tombstones the slot, UPDATE
/// mutates in place. Slot ids are stable, which lets lazy cursors resume a
/// scan by index and lets the lock manager name rows as (table, RowId).
///
/// Thread safety: none here. Callers synchronize through the lock manager
/// (multi-granularity S/X locking) — see LockManager. Recovery and bulk load
/// run single-threaded.
class Table {
 public:
  Table(std::string name, common::Schema schema,
        std::vector<std::string> primary_key, bool temporary);

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const std::string& name() const { return name_; }
  const common::Schema& schema() const { return schema_; }
  const std::vector<std::string>& primary_key() const { return primary_key_; }
  bool temporary() const { return temporary_; }
  bool has_primary_key() const { return !pk_column_indexes_.empty(); }

  /// Number of live (non-tombstoned) rows.
  size_t live_row_count() const { return live_count_; }
  /// Number of slots, including tombstones; scan bound.
  size_t slot_count() const { return slots_.size(); }

  /// Validates the row against the schema and primary key, then appends.
  common::Result<RowId> Insert(common::Row row);

  /// Appends many rows (validation included); used by bulk load, WAL replay
  /// and INSERT ... SELECT. Stops at the first bad row.
  common::Status InsertBulk(std::vector<common::Row> rows);

  /// Tombstones a row (contents are kept so the transaction layer can
  /// restore it in place on rollback). Returns NotFound if already deleted.
  common::Status Delete(RowId id);

  /// Restores a tombstoned row in place (rollback of Delete). The slot must
  /// be dead and its primary key free.
  common::Status Undelete(RowId id);

  /// Replaces a row's contents (maintains the PK index).
  common::Status Update(RowId id, common::Row new_row);

  /// True if the slot holds a live row.
  bool IsLive(RowId id) const {
    return id < slots_.size() && slots_[id].live;
  }

  /// Returns the row at `id`; caller must ensure IsLive.
  const common::Row& GetRow(RowId id) const { return slots_[id].row; }

  /// Primary-key point lookup. Returns NotFound if absent.
  common::Result<RowId> LookupPk(const common::Row& key_values) const;

  /// Range scan over a leading prefix of the primary key (the engine's
  /// stand-in for a B-tree index range): returns the RowIds of all live
  /// rows whose first prefix_values.size() PK columns equal the given
  /// values, in PK order. prefix size must be in [1, pk arity].
  common::Result<std::vector<RowId>> ScanPkPrefix(
      const std::vector<common::Value>& prefix_values) const;

  /// Encodes the PK columns of a full row into an index key.
  std::string EncodePkFromRow(const common::Row& row) const;

  /// Column indexes (into the schema) of the primary key, in PK order.
  const std::vector<int>& pk_column_indexes() const {
    return pk_column_indexes_;
  }

  /// Copies all live rows out (checkpointing, full materialization).
  std::vector<common::Row> SnapshotRows() const;

  /// Removes all rows (used by WAL replay of DROP+CREATE sequences and
  /// tests). Keeps the schema.
  void Clear();

  /// Approximate bytes consumed by live rows (benchmark reporting).
  size_t ApproxLiveBytes() const;

  /// Short-duration physical latch guarding slot-vector structure. Writers
  /// (insert/delete/update) and PK point readers take it; full scans do not
  /// need it because their table-S lock excludes all writers.
  std::mutex& latch() const { return latch_; }

 private:
  struct RowSlot {
    common::Row row;
    bool live = true;
  };

  common::Status CheckPkUnique(const common::Row& row) const;

  std::string name_;
  common::Schema schema_;
  std::vector<std::string> primary_key_;
  std::vector<int> pk_column_indexes_;
  bool temporary_;

  mutable std::mutex latch_;
  std::vector<RowSlot> slots_;
  size_t live_count_ = 0;
  /// PK index: order-preserving encoded key -> slot (see key_encoding.h).
  /// Ordered so PK-prefix ranges are map ranges. Present iff
  /// has_primary_key().
  std::map<std::string, RowId> pk_index_;
};

using TablePtr = std::shared_ptr<Table>;

}  // namespace phoenix::engine

#endif  // PHOENIX_ENGINE_TABLE_H_
