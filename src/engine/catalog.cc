#include "engine/catalog.h"

#include "common/strings.h"

namespace phoenix::engine {

using common::Result;
using common::Status;

std::string Catalog::Key(const std::string& name) {
  return common::ToLower(name);
}

Result<TablePtr> Catalog::CreateTable(const std::string& name,
                                      const common::Schema& schema,
                                      const std::vector<std::string>& pk,
                                      bool temporary,
                                      SessionId owner_session) {
  if (schema.num_columns() == 0) {
    return Status::InvalidArgument("table '" + name + "' has no columns");
  }
  for (const std::string& col : pk) {
    if (schema.FindColumn(col) < 0) {
      return Status::InvalidArgument("primary key column '" + col +
                                     "' not in table '" + name + "'");
    }
  }
  std::string key = Key(name);
  if (temporary) {
    if (owner_session == 0) {
      return Status::InvalidArgument("temp table requires a session");
    }
    auto& session_map = temps_[owner_session];
    if (session_map.count(key)) {
      return Status::AlreadyExists("temp table '" + name + "' exists");
    }
    auto table = std::make_shared<Table>(name, schema, pk, true);
    session_map.emplace(std::move(key), table);
    return table;
  }
  if (persistent_.count(key)) {
    return Status::AlreadyExists("table '" + name + "' exists");
  }
  auto table = std::make_shared<Table>(name, schema, pk, false);
  persistent_.emplace(std::move(key), table);
  return table;
}

Result<TablePtr> Catalog::Resolve(const std::string& name,
                                  SessionId session) const {
  std::string key = Key(name);
  auto sess_it = temps_.find(session);
  if (sess_it != temps_.end()) {
    auto it = sess_it->second.find(key);
    if (it != sess_it->second.end()) return it->second;
  }
  auto it = persistent_.find(key);
  if (it != persistent_.end()) return it->second;
  return Status::NotFound("table '" + name + "' does not exist");
}

Status Catalog::DropTable(const std::string& name, SessionId session) {
  std::string key = Key(name);
  auto sess_it = temps_.find(session);
  if (sess_it != temps_.end() && sess_it->second.erase(key) > 0) {
    return Status::OK();
  }
  if (persistent_.erase(key) > 0) return Status::OK();
  return Status::NotFound("table '" + name + "' does not exist");
}

Status Catalog::AdoptTable(TablePtr table, SessionId owner_session) {
  std::string key = Key(table->name());
  if (table->temporary()) {
    auto& session_map = temps_[owner_session];
    if (session_map.count(key)) {
      return Status::AlreadyExists("temp table '" + table->name() +
                                   "' exists");
    }
    session_map.emplace(std::move(key), std::move(table));
    return Status::OK();
  }
  if (persistent_.count(key)) {
    return Status::AlreadyExists("table '" + table->name() + "' exists");
  }
  persistent_.emplace(std::move(key), std::move(table));
  return Status::OK();
}

void Catalog::DropSessionTempTables(SessionId session) {
  temps_.erase(session);
}

std::vector<TablePtr> Catalog::PersistentTables() const {
  std::vector<TablePtr> out;
  out.reserve(persistent_.size());
  for (const auto& [key, table] : persistent_) out.push_back(table);
  return out;
}

Status Catalog::CreateProcedure(StoredProcedure proc) {
  std::string key = Key(proc.name);
  if (procedures_.count(key)) {
    return Status::AlreadyExists("procedure '" + proc.name + "' exists");
  }
  procedures_.emplace(std::move(key), std::move(proc));
  return Status::OK();
}

Result<StoredProcedure> Catalog::GetProcedure(const std::string& name) const {
  auto it = procedures_.find(Key(name));
  if (it == procedures_.end()) {
    return Status::NotFound("procedure '" + name + "' does not exist");
  }
  return it->second;
}

Status Catalog::DropProcedure(const std::string& name) {
  if (procedures_.erase(Key(name)) > 0) return Status::OK();
  return Status::NotFound("procedure '" + name + "' does not exist");
}

std::vector<StoredProcedure> Catalog::AllProcedures() const {
  std::vector<StoredProcedure> out;
  out.reserve(procedures_.size());
  for (const auto& [key, proc] : procedures_) out.push_back(proc);
  return out;
}

void Catalog::Clear() {
  persistent_.clear();
  temps_.clear();
  procedures_.clear();
}

}  // namespace phoenix::engine
