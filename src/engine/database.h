#ifndef PHOENIX_ENGINE_DATABASE_H_
#define PHOENIX_ENGINE_DATABASE_H_

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "engine/catalog.h"
#include "engine/checkpoint.h"
#include "engine/group_commit.h"
#include "engine/lock_manager.h"
#include "engine/snapshot.h"
#include "engine/table.h"
#include "engine/transaction.h"
#include "engine/wal.h"

namespace phoenix::engine {

struct DatabaseOptions {
  /// Directory for wal.log and checkpoint.phx. Created if missing.
  std::string data_dir;
  WalSyncMode sync_mode = WalSyncMode::kFlush;
  /// Lock wait budget before a transaction is told to abort (deadlock
  /// resolution by timeout).
  std::chrono::milliseconds lock_timeout{500};
  /// Group commit: concurrent committers share one WAL force. 1 = on,
  /// 0 = serialized escape hatch (one force per commit, the pre-coordinator
  /// path), -1 = from PHOENIX_GROUP_COMMIT (default on).
  int group_commit = -1;
  /// Max time (µs) a leader lingers for more committers before forcing;
  /// 0 keeps today's latency profile (the leader forces immediately and the
  /// group is whatever accumulated during the previous force). -1 = from
  /// PHOENIX_GROUP_COMMIT_US (default 0).
  int64_t group_commit_wait_us = -1;
  /// MVCC snapshot reads: 1 = readers use pinned-snapshot version-chain
  /// reads with no lock-manager traffic (the default), 0 = legacy locking
  /// read path (S/IS locks, statement-end ReleaseShared) for A/B benching,
  /// -1 = from PHOENIX_MVCC (default on).
  int mvcc = -1;
  /// WAL-replay parallelism during Recover(): N >= 1 replays per-table
  /// record queues on up to N workers (1 = partitioned path on one thread —
  /// same result, used by the determinism tests), 0 = the serial legacy
  /// record-by-record loop, -1 = from PHOENIX_RECOVERY_THREADS (default
  /// min(hardware_concurrency, 8)).
  int recovery_threads = -1;
  /// Checkpoint format: 1 = multi-generation manifest + per-table segments,
  /// rewriting only tables dirtied since the previous checkpoint (the
  /// default), 0 = legacy full single-file rewrite, -1 = from
  /// PHOENIX_CHECKPOINT_INCREMENTAL (default on). Either format loads.
  int incremental_checkpoints = -1;
  /// Background checkpoint trigger: when > 0, a checkpointer thread fires
  /// Checkpoint() whenever the durable WAL tail reaches this many bytes
  /// (bounding replay work at the next crash). 0 = no background
  /// checkpoints (today's explicit-only behavior), -1 = from
  /// PHOENIX_CHECKPOINT_WAL_BYTES (default 0).
  int64_t checkpoint_wal_bytes = -1;
  /// Cross-shard commit resolver consulted by Recover() for transactions
  /// whose WAL batch ends in kPrepare instead of kCommit: returns true iff
  /// the coordinator durably decided commit for this global txn id
  /// (presumed abort otherwise). Unset = every dangling prepare aborts,
  /// which is exactly right for unsharded databases that never prepare.
  std::function<bool(const std::string&)> prepared_resolver;
};

/// What the server tells a client about table churn since the client's
/// last-seen clock: every persistent table whose last committed change has
/// cts > `since`, plus the stable clock the report is current through
/// (piggybacked on every wire response — the client result cache's
/// invalidation feed).
struct InvalidationDigest {
  uint64_t stable_ts = 0;
  std::vector<std::pair<std::string, uint64_t>> changed;
};

/// The storage/transaction half of the engine: catalog, versioned tables,
/// write locks, snapshots, WAL, checkpointing and crash recovery. SQL
/// execution sits on top (executor.h); sessions and cursors on top of that
/// (session.h).
///
/// Concurrency model (DESIGN.md §15): writers follow strict 2PL through the
/// LockManager (X/IX; write-write conflicts abort by lock timeout); readers
/// take no lock-manager locks at all — each statement (or explicit
/// transaction) pins a Snapshot and reads the version chains as of that
/// timestamp. Commit stamps the transaction's versions with a commit
/// timestamp under the publish lock, then prunes its own write set below
/// the GC watermark (commit-piggybacked GC — no background thread).
///
/// Durability contract (what Phoenix depends on):
///  * persistent-table changes of committed transactions survive
///    CrashVolatile() + Recover();
///  * temp tables, uncommitted changes, and all transaction/lock/version
///    state do not (recovery rebuilds single base versions).
class Database {
 public:
  static common::Result<std::unique_ptr<Database>> Open(
      const DatabaseOptions& options);
  ~Database();

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // --- Transactions ------------------------------------------------------

  Transaction* Begin(SessionId session);
  common::Status Commit(Transaction* txn);
  common::Status Rollback(Transaction* txn);

  // --- Cross-shard two-phase commit (coordinator-driven) ------------------

  /// Phase one: makes the transaction's redo durable, terminated by a
  /// kPrepare record carrying `gtid` instead of kCommit. The transaction
  /// keeps its X locks and its versions stay unpublished — invisible to
  /// every reader — until the coordinator decides. On append failure the
  /// transaction is rolled back (presumed abort) and the error returned.
  common::Status Prepare(Transaction* txn, const std::string& gtid);
  /// Phase two, commit side: appends the kCommit terminator for the
  /// prepared transaction and publishes it. kNotFound when `gtid` is not
  /// prepared here — after a shard crash the prepare is resolved by
  /// Recover() instead, so coordinators treat kNotFound as already-settled.
  common::Status CommitPrepared(const std::string& gtid);
  /// Phase two, abort side. Appends kAbort best-effort and rolls back.
  common::Status RollbackPrepared(const std::string& gtid);

  /// The transaction's read snapshot, pinned on first use. Under MVCC this
  /// registers the timestamp with the GC watermark (statement-scoped for
  /// auto-commit statements — each gets its own transaction — and
  /// transaction-scoped inside explicit transactions). Under PHOENIX_MVCC=0
  /// it is an unpinned read-latest snapshot; isolation comes from the
  /// caller's S/IS locks.
  SnapshotPtr ReadSnapshot(Transaction* txn);

  /// True when snapshot reads are enabled (PHOENIX_MVCC != 0).
  bool mvcc_enabled() const { return mvcc_; }

  // --- DDL (transactional, logged for persistent objects) ---------------

  common::Status CreateTable(Transaction* txn, const std::string& name,
                             const common::Schema& schema,
                             const std::vector<std::string>& primary_key,
                             bool temporary, bool if_not_exists,
                             SessionId session);
  common::Status DropTable(Transaction* txn, const std::string& name,
                           bool if_exists, SessionId session);
  common::Status CreateProcedure(Transaction* txn, StoredProcedure proc);
  common::Status DropProcedure(Transaction* txn, const std::string& name,
                               bool if_exists);
  common::Result<TablePtr> ResolveTable(const std::string& name,
                                        SessionId session);
  common::Result<StoredProcedure> GetProcedure(const std::string& name);

  // --- DML (acquire write locks, install versions, log, register undo) ---

  common::Status InsertRow(Transaction* txn, const TablePtr& table,
                           common::Row row);
  common::Status InsertBulk(Transaction* txn, const TablePtr& table,
                            std::vector<common::Row> rows);
  common::Status DeleteRow(Transaction* txn, const TablePtr& table, RowId id);
  common::Status UpdateRow(Transaction* txn, const TablePtr& table, RowId id,
                           common::Row new_row);

  // --- Read locking helpers (legacy PHOENIX_MVCC=0 path only) ------------

  /// Shared lock on the whole table (scans).
  common::Status LockTableShared(Transaction* txn, const TablePtr& table);
  /// Intention-shared + shared row lock (PK point reads).
  common::Status LockRowShared(Transaction* txn, const TablePtr& table,
                               const std::string& row_key);
  /// Exclusive lock on the whole table (scan-based writes).
  common::Status LockTableExclusive(Transaction* txn, const TablePtr& table);
  /// Drops the transaction's S/IS locks at statement end (READ COMMITTED).
  /// No-op under MVCC (readers hold no locks to drop).
  void ReleaseSharedLocks(Transaction* txn) {
    locks_.ReleaseShared(txn->id());
  }
  /// Intention-exclusive + exclusive row lock (PK point writes); taken
  /// before the row is located so no legacy reader observes a half-done
  /// change.
  common::Status LockRowExclusive(Transaction* txn, const TablePtr& table,
                                  const std::string& row_key);

  /// Index-range access: locks (S or X) and returns copies of every live
  /// row whose leading PK columns equal `prefix` — the row-level-locking
  /// path for district-scoped TPC-C statements. Rows inserted concurrently
  /// after the scan are not covered (READ COMMITTED allows phantoms).
  /// Snapshot readers use Table::ScanPkPrefixVisible instead.
  common::Result<std::vector<std::pair<RowId, common::Row>>>
  LockAndCollectPkPrefix(Transaction* txn, const TablePtr& table,
                         const std::vector<common::Value>& prefix,
                         bool exclusive);

  // --- Durability --------------------------------------------------------

  /// Snapshot + WAL truncate. Requires write quiescence (no active writer
  /// transactions; returns Aborted otherwise — the background trigger
  /// retries with jittered backoff); snapshot readers may keep running —
  /// the checkpoint image is the newest committed state, which cannot
  /// change while the Begin freeze + WAL fence hold commits out. In
  /// incremental mode only tables dirtied since the previous checkpoint
  /// get new segment files; clean tables carry forward by reference.
  common::Status Checkpoint();

  /// Simulates a server crash: wipes all in-memory state (catalog, tables,
  /// locks, active transactions). Durable files are untouched.
  void CrashVolatile();

  /// Rebuilds state from checkpoint + WAL. Idempotent from a wiped state.
  common::Status Recover();

  /// True between CrashVolatile() and the end of Recover() — the window in
  /// which a sharded server reports this shard as unavailable.
  bool is_down() const { return down_.load(std::memory_order_acquire); }

  // --- Replication + epoch fencing (DESIGN.md §18) ------------------------

  /// Current server epoch (monotonic across restarts; starts at 1). Bumped
  /// by promotion, persisted in data_dir/epoch and stamped into the WAL.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// True once a strictly newer epoch has been observed anywhere in the
  /// cluster: this server is a stale ex-primary and must reject writes.
  bool fenced() const {
    return fence_epoch_.load(std::memory_order_acquire) >
           epoch_.load(std::memory_order_acquire);
  }

  /// Records an epoch seen on the wire (connect/ping/fetch handshake). If it
  /// is newer than ours the fence is persisted durably — from then on every
  /// commit with redo and every connect is rejected with kStaleEpoch, even
  /// across restarts. Fencing-by-first-contact: the first post-promotion
  /// client that reaches a restarted old primary disarms it for good.
  common::Status NoteObservedEpoch(uint64_t observed);

  /// Promotion: epoch becomes max(own, fence, at_least) + 1, persisted and
  /// stamped into the WAL before returning. Returns the new epoch.
  common::Result<uint64_t> BumpEpoch(uint64_t at_least);

  /// Stream offset (primary ship-LSN coordinates) covered by the last
  /// replicated transaction durably applied here; recovered from kReplLsn
  /// WAL records and the epoch-state file across restarts.
  uint64_t replicated_lsn() const {
    return replicated_lsn_.load(std::memory_order_acquire);
  }

  /// Installs the durable-WAL-append observer (the replication shipper).
  void SetWalAppendObserver(WalAppendObserver observer) {
    wal_.set_append_observer(std::move(observer));
  }

  /// One shipped transaction: its full WAL framing (kBegin..ops..kCommit)
  /// plus the primary stream offset just past its commit frame.
  struct ReplicatedTxn {
    std::vector<WalRecord> records;
    uint64_t end_lsn = 0;
  };

  /// Standby apply path: makes each transaction durable in the local WAL
  /// (with a kReplLsn stamp inside its commit batch, so the applied-LSN is
  /// atomic with the data), then replays the ops through the partitioned
  /// replay path and publishes invalidation. Transactions must arrive in
  /// primary commit order.
  common::Status ApplyReplicated(std::vector<ReplicatedTxn> txns);

  // --- Introspection ------------------------------------------------------

  Catalog& catalog() { return catalog_; }
  common::Mutex& catalog_mu() PHX_RETURN_CAPABILITY(catalog_mu_) {
    return catalog_mu_;
  }
  LockManager& locks() { return locks_; }
  std::chrono::milliseconds lock_timeout() const {
    return options_.lock_timeout;
  }
  size_t ActiveTransactionCount() const { return txns_.ActiveCount(); }
  uint64_t wal_bytes_written() const { return wal_.bytes_written(); }
  /// Durable WAL tail length — what the next recovery would replay and what
  /// the background checkpoint trigger budgets against.
  uint64_t wal_durable_bytes() const { return wal_.durable_size(); }
  /// Generation of the newest durable checkpoint (0 = none yet). Legacy
  /// single-file checkpoints count generations too.
  uint64_t checkpoint_generation() const {
    return checkpoint_generation_.load(std::memory_order_relaxed);
  }
  /// Background-trigger activity (tests + benches).
  uint64_t auto_checkpoint_count() const {
    return auto_checkpoints_.load(std::memory_order_relaxed);
  }
  uint64_t auto_checkpoint_retries() const {
    return auto_checkpoint_retries_.load(std::memory_order_relaxed);
  }
  int recovery_threads() const { return recovery_threads_; }
  /// Bench/test hook: change replay parallelism between recoveries of the
  /// same instance. Call only while quiesced (no concurrent Recover).
  void set_recovery_threads(int threads) {
    recovery_threads_ = threads < 0 ? 0 : threads;
  }
  bool incremental_checkpoints_enabled() const { return incremental_; }
  /// Group-commit force/commit counts (bench + test introspection).
  const GroupCommitCoordinator& group_commit() const { return group_commit_; }
  /// MVCC clock / GC watermark (tests + benches).
  uint64_t CurrentTs() const { return txns_.CurrentTs(); }
  uint64_t GcLowWatermark() const { return txns_.LowWatermark(); }

  // --- Result-cache invalidation plane ------------------------------------

  /// Digest of tables changed since `since`, current through the returned
  /// stable_ts. Ordering is the soundness argument: the stable clock is
  /// computed FIRST (under publish_mu, so every commit with cts <= stable_ts
  /// has already bumped its counters), THEN the counters are read — a bump
  /// racing in from a still-in-flight commit (cts > stable_ts) can only add
  /// a conservative entry, never hide a change at or below the clock.
  InvalidationDigest CollectInvalidation(uint64_t since) const;

  /// Highest fully-published commit timestamp (see
  /// TransactionManager::StableTs).
  uint64_t StableTs() const { return txns_.StableTs(); }

  /// Drops all temp tables owned by a session (disconnect or crash).
  void DropSessionState(SessionId session);

  static std::string RowLockKey(const Table& table, const common::Row& row,
                                RowId id);

 private:
  explicit Database(const DatabaseOptions& options) : options_(options) {}

  std::string WalPath() const { return options_.data_dir + "/wal.log"; }
  std::string CheckpointPath() const {
    return options_.data_dir + "/checkpoint.phx";
  }
  std::string EpochPath() const { return options_.data_dir + "/epoch"; }

  /// Loads epoch/fence/replicated-LSN from the epoch-state file (no-op when
  /// absent) and persists it back (tmp + rename). Caller holds epoch_mu_.
  void LoadEpochState();
  common::Status PersistEpochState();

  common::Status ApplyWalRecord(const WalRecord& record);

  /// Replays the flattened committed-op sequence. threads == 0 runs the
  /// serial legacy loop; threads >= 1 partitions records into per-table
  /// queues (per-table order = commit order restricted to that table) and
  /// flushes them on up to `threads` workers, applying DDL records serially
  /// as barriers between flushes. Caller holds catalog_mu_.
  common::Status ReplayCommitted(const std::vector<const WalRecord*>& ops,
                                 size_t threads)
      PHX_REQUIRES(catalog_mu_);

  /// Marks every persistent table named by the txn's redo records dirty for
  /// the next incremental checkpoint. Called on the commit path after the
  /// WAL append succeeded, before the transaction finishes (so checkpoint
  /// quiescence cannot slip between durability and the marks).
  void MarkDirtyFromRedo(const Transaction& txn);

  /// Background checkpointer body: fires Checkpoint() whenever the durable
  /// WAL tail reaches checkpoint_wal_bytes_, retrying missed-quiescence
  /// aborts with decorrelated-jitter backoff.
  void CheckpointerLoop();
  /// Commit-path nudge: wakes the checkpointer when the tail crossed the
  /// budget (cheap check, no syscall).
  void MaybeKickCheckpointer();

  /// Unlinks seg_*.phxseg files in data_dir not referenced by
  /// last_manifest_ (called after the manifest rename commits a
  /// generation). Caller holds ckpt_mu_.
  void CleanStaleSegments() PHX_REQUIRES(ckpt_mu_);

  /// Stamps the txn's pending versions with a fresh commit timestamp
  /// (atomically vs. snapshot pinning), then prunes its write-set slots
  /// below the GC watermark.
  void PublishCommit(Transaction* txn);

  DatabaseOptions options_;
  bool mvcc_ = true;
  Catalog catalog_;
  common::Mutex catalog_mu_;
  /// DDL ↔ checkpoint fence. DDL mutates the catalog eagerly (before
  /// commit), so unlike DML — whose versions stay unstamped and invisible
  /// until commit — an uncommitted CREATE/DROP would be captured by (or
  /// missing from) a concurrent checkpoint image. Every DDL statement holds
  /// this mutex across its catalog mutation; Checkpoint() holds it across
  /// its whole quiescence-check → snapshot → WAL-truncate window, so DDL
  /// from an already-active transaction blocks until the image is durable
  /// and then lands in the post-truncate log. Ordered before catalog_mu_.
  common::Mutex ddl_fence_;
  LockManager locks_;
  TransactionManager txns_;
  /// Per-table invalidation counters: lowercased persistent-table name →
  /// commit timestamp of the last committed change (DML or DDL). Bumped in
  /// PublishCommit between version stamping and EndPublish so StableTs()
  /// bounds them; wiped on crash (clients cannot outlive a crash — every
  /// session dies — and the clock itself survives, staying monotonic).
  /// Bounded by the application's table namespace: driver-internal artifact
  /// tables (uniquely named phoenix_rs_* result sets, phoenix_status) are
  /// filtered out at RecordWrite, so the per-query churn they generate never
  /// lands here or in connect-time full-history digests.
  mutable common::Mutex table_versions_mu_;
  std::unordered_map<std::string, uint64_t> table_versions_
      PHX_GUARDED_BY(table_versions_mu_);
  /// Tables (lowercased) with durably committed changes since the last
  /// checkpoint — the incremental checkpointer's work list. Unlike
  /// table_versions_ this is fed from redo records directly (MarkDirty-
  /// FromRedo), so driver-internal artifact tables — filtered out of
  /// RecordWrite/table_versions_ but persistent and checkpointed — are
  /// tracked too. Wiped by CrashVolatile and rebuilt by Recover from the
  /// replayed WAL tail (everything in the tail postdates the checkpoint,
  /// so every replayed table is dirty).
  std::unordered_set<std::string> dirty_tables_
      PHX_GUARDED_BY(table_versions_mu_);
  /// Serializes Checkpoint() and Recover() (manual, background, and
  /// restart paths) and guards the manifest bookkeeping below. Always
  /// ordered before the checkpoint fences and catalog_mu_.
  common::Mutex ckpt_mu_;
  /// The durable checkpoint's manifest (empty when none / legacy format):
  /// what the next incremental checkpoint carries clean tables forward
  /// from.
  CheckpointManifest last_manifest_ PHX_GUARDED_BY(ckpt_mu_);
  std::atomic<uint64_t> checkpoint_generation_{0};
  std::atomic<uint64_t> auto_checkpoints_{0};
  std::atomic<uint64_t> auto_checkpoint_retries_{0};
  /// True between CrashVolatile() and the end of Recover(). The background
  /// checkpointer must not checkpoint a wiped catalog (it would truncate
  /// the WAL and lose everything): set BEFORE the wipe, checked by
  /// Checkpoint() under catalog_mu_ — the same mutex the wipe runs under —
  /// so a checkpoint that passed the check snapshots pre-crash state, which
  /// is still a correct image.
  std::atomic<bool> down_{false};
  /// Epoch state (see DESIGN.md §18). epoch_ and fence_epoch_ are atomics
  /// for lock-free reads on the commit path; mutations serialize on
  /// epoch_mu_ so the persisted file never goes backwards.
  common::Mutex epoch_mu_;
  /// Prepared-but-undecided cross-shard transactions: gtid → txn. Entries
  /// live from a successful Prepare until CommitPrepared/RollbackPrepared;
  /// a crash wipes the map (the WAL kPrepare terminator + the coordinator
  /// resolver re-decide them during Recover).
  common::Mutex prepared_mu_;
  std::unordered_map<std::string, Transaction*> prepared_
      PHX_GUARDED_BY(prepared_mu_);
  std::atomic<uint64_t> epoch_{1};
  std::atomic<uint64_t> fence_epoch_{0};
  std::atomic<uint64_t> replicated_lsn_{0};
  int recovery_threads_ = 0;
  bool incremental_ = true;
  int64_t checkpoint_wal_bytes_ = 0;
  /// Background checkpointer thread (started by Open when the WAL-bytes
  /// trigger is armed; joined by the destructor before the WAL closes).
  std::thread checkpointer_;
  common::Mutex bg_mu_;
  common::CondVar bg_cv_;
  bool bg_stop_ PHX_GUARDED_BY(bg_mu_) = false;
  bool bg_kick_ PHX_GUARDED_BY(bg_mu_) = false;
  WalWriter wal_;
  /// Commit-time WAL appends go through the group-commit coordinator: one
  /// leader forces all concurrently queued commit batches with a single
  /// write + sync. Checkpoint takes its exclusive WAL lock to fence truncate
  /// against appends.
  GroupCommitCoordinator group_commit_;
};

}  // namespace phoenix::engine

#endif  // PHOENIX_ENGINE_DATABASE_H_
