#ifndef PHOENIX_ENGINE_DATABASE_H_
#define PHOENIX_ENGINE_DATABASE_H_

#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/catalog.h"
#include "engine/lock_manager.h"
#include "engine/table.h"
#include "engine/transaction.h"
#include "engine/wal.h"

namespace phoenix::engine {

struct DatabaseOptions {
  /// Directory for wal.log and checkpoint.phx. Created if missing.
  std::string data_dir;
  WalSyncMode sync_mode = WalSyncMode::kFlush;
  /// Lock wait budget before a transaction is told to abort (deadlock
  /// resolution by timeout).
  std::chrono::milliseconds lock_timeout{500};
};

/// The storage/transaction half of the engine: catalog, tables, locks, WAL,
/// checkpointing and crash recovery. SQL execution sits on top (executor.h);
/// sessions and cursors on top of that (session.h).
///
/// Durability contract (what Phoenix depends on):
///  * persistent-table changes of committed transactions survive
///    CrashVolatile() + Recover();
///  * temp tables, uncommitted changes, and all transaction/lock state do
///    not.
class Database {
 public:
  static common::Result<std::unique_ptr<Database>> Open(
      const DatabaseOptions& options);
  ~Database();

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // --- Transactions ------------------------------------------------------

  Transaction* Begin(SessionId session);
  common::Status Commit(Transaction* txn);
  common::Status Rollback(Transaction* txn);

  // --- DDL (transactional, logged for persistent objects) ---------------

  common::Status CreateTable(Transaction* txn, const std::string& name,
                             const common::Schema& schema,
                             const std::vector<std::string>& primary_key,
                             bool temporary, bool if_not_exists,
                             SessionId session);
  common::Status DropTable(Transaction* txn, const std::string& name,
                           bool if_exists, SessionId session);
  common::Status CreateProcedure(Transaction* txn, StoredProcedure proc);
  common::Status DropProcedure(Transaction* txn, const std::string& name,
                               bool if_exists);
  common::Result<TablePtr> ResolveTable(const std::string& name,
                                        SessionId session);
  common::Result<StoredProcedure> GetProcedure(const std::string& name);

  // --- DML (acquire locks, apply, log, register undo) -------------------

  common::Status InsertRow(Transaction* txn, const TablePtr& table,
                           common::Row row);
  common::Status InsertBulk(Transaction* txn, const TablePtr& table,
                            std::vector<common::Row> rows);
  common::Status DeleteRow(Transaction* txn, const TablePtr& table, RowId id);
  common::Status UpdateRow(Transaction* txn, const TablePtr& table, RowId id,
                           common::Row new_row);

  // --- Read locking helpers (strict 2PL; released at commit/abort) ------

  /// Shared lock on the whole table (scans).
  common::Status LockTableShared(Transaction* txn, const TablePtr& table);
  /// Intention-shared + shared row lock (PK point reads).
  common::Status LockRowShared(Transaction* txn, const TablePtr& table,
                               const std::string& row_key);
  /// Exclusive lock on the whole table (scan-based writes).
  common::Status LockTableExclusive(Transaction* txn, const TablePtr& table);
  /// Drops the transaction's S/IS locks at statement end (READ COMMITTED).
  void ReleaseSharedLocks(Transaction* txn) {
    locks_.ReleaseShared(txn->id());
  }
  /// Intention-exclusive + exclusive row lock (PK point writes); taken
  /// before the row is located so no reader observes a half-done change.
  common::Status LockRowExclusive(Transaction* txn, const TablePtr& table,
                                  const std::string& row_key);

  /// Index-range access: locks (S or X) and returns copies of every live
  /// row whose leading PK columns equal `prefix` — the row-level-locking
  /// path for district-scoped TPC-C statements. Rows inserted concurrently
  /// after the scan are not covered (READ COMMITTED allows phantoms).
  common::Result<std::vector<std::pair<RowId, common::Row>>>
  LockAndCollectPkPrefix(Transaction* txn, const TablePtr& table,
                         const std::vector<common::Value>& prefix,
                         bool exclusive);

  // --- Durability --------------------------------------------------------

  /// Snapshot + WAL truncate. Requires quiescence (no active transactions).
  common::Status Checkpoint();

  /// Simulates a server crash: wipes all in-memory state (catalog, tables,
  /// locks, active transactions). Durable files are untouched.
  void CrashVolatile();

  /// Rebuilds state from checkpoint + WAL. Idempotent from a wiped state.
  common::Status Recover();

  // --- Introspection ------------------------------------------------------

  Catalog& catalog() { return catalog_; }
  std::mutex& catalog_mu() { return catalog_mu_; }
  LockManager& locks() { return locks_; }
  std::chrono::milliseconds lock_timeout() const {
    return options_.lock_timeout;
  }
  size_t ActiveTransactionCount() const { return txns_.ActiveCount(); }
  uint64_t wal_bytes_written() const { return wal_.bytes_written(); }

  /// Drops all temp tables owned by a session (disconnect or crash).
  void DropSessionState(SessionId session);

  static std::string RowLockKey(const Table& table, const common::Row& row,
                                RowId id);

 private:
  explicit Database(const DatabaseOptions& options) : options_(options) {}

  std::string WalPath() const { return options_.data_dir + "/wal.log"; }
  std::string CheckpointPath() const {
    return options_.data_dir + "/checkpoint.phx";
  }

  common::Status ApplyWalRecord(const WalRecord& record);

  DatabaseOptions options_;
  Catalog catalog_;
  std::mutex catalog_mu_;
  LockManager locks_;
  TransactionManager txns_;
  WalWriter wal_;
  /// Serializes commit-time WAL appends (group commit unit).
  std::mutex commit_mu_;
};

}  // namespace phoenix::engine

#endif  // PHOENIX_ENGINE_DATABASE_H_
