#ifndef PHOENIX_ENGINE_DATABASE_H_
#define PHOENIX_ENGINE_DATABASE_H_

#include <chrono>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "engine/catalog.h"
#include "engine/group_commit.h"
#include "engine/lock_manager.h"
#include "engine/snapshot.h"
#include "engine/table.h"
#include "engine/transaction.h"
#include "engine/wal.h"

namespace phoenix::engine {

struct DatabaseOptions {
  /// Directory for wal.log and checkpoint.phx. Created if missing.
  std::string data_dir;
  WalSyncMode sync_mode = WalSyncMode::kFlush;
  /// Lock wait budget before a transaction is told to abort (deadlock
  /// resolution by timeout).
  std::chrono::milliseconds lock_timeout{500};
  /// Group commit: concurrent committers share one WAL force. 1 = on,
  /// 0 = serialized escape hatch (one force per commit, the pre-coordinator
  /// path), -1 = from PHOENIX_GROUP_COMMIT (default on).
  int group_commit = -1;
  /// Max time (µs) a leader lingers for more committers before forcing;
  /// 0 keeps today's latency profile (the leader forces immediately and the
  /// group is whatever accumulated during the previous force). -1 = from
  /// PHOENIX_GROUP_COMMIT_US (default 0).
  int64_t group_commit_wait_us = -1;
  /// MVCC snapshot reads: 1 = readers use pinned-snapshot version-chain
  /// reads with no lock-manager traffic (the default), 0 = legacy locking
  /// read path (S/IS locks, statement-end ReleaseShared) for A/B benching,
  /// -1 = from PHOENIX_MVCC (default on).
  int mvcc = -1;
};

/// What the server tells a client about table churn since the client's
/// last-seen clock: every persistent table whose last committed change has
/// cts > `since`, plus the stable clock the report is current through
/// (piggybacked on every wire response — the client result cache's
/// invalidation feed).
struct InvalidationDigest {
  uint64_t stable_ts = 0;
  std::vector<std::pair<std::string, uint64_t>> changed;
};

/// The storage/transaction half of the engine: catalog, versioned tables,
/// write locks, snapshots, WAL, checkpointing and crash recovery. SQL
/// execution sits on top (executor.h); sessions and cursors on top of that
/// (session.h).
///
/// Concurrency model (DESIGN.md §15): writers follow strict 2PL through the
/// LockManager (X/IX; write-write conflicts abort by lock timeout); readers
/// take no lock-manager locks at all — each statement (or explicit
/// transaction) pins a Snapshot and reads the version chains as of that
/// timestamp. Commit stamps the transaction's versions with a commit
/// timestamp under the publish lock, then prunes its own write set below
/// the GC watermark (commit-piggybacked GC — no background thread).
///
/// Durability contract (what Phoenix depends on):
///  * persistent-table changes of committed transactions survive
///    CrashVolatile() + Recover();
///  * temp tables, uncommitted changes, and all transaction/lock/version
///    state do not (recovery rebuilds single base versions).
class Database {
 public:
  static common::Result<std::unique_ptr<Database>> Open(
      const DatabaseOptions& options);
  ~Database();

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // --- Transactions ------------------------------------------------------

  Transaction* Begin(SessionId session);
  common::Status Commit(Transaction* txn);
  common::Status Rollback(Transaction* txn);

  /// The transaction's read snapshot, pinned on first use. Under MVCC this
  /// registers the timestamp with the GC watermark (statement-scoped for
  /// auto-commit statements — each gets its own transaction — and
  /// transaction-scoped inside explicit transactions). Under PHOENIX_MVCC=0
  /// it is an unpinned read-latest snapshot; isolation comes from the
  /// caller's S/IS locks.
  SnapshotPtr ReadSnapshot(Transaction* txn);

  /// True when snapshot reads are enabled (PHOENIX_MVCC != 0).
  bool mvcc_enabled() const { return mvcc_; }

  // --- DDL (transactional, logged for persistent objects) ---------------

  common::Status CreateTable(Transaction* txn, const std::string& name,
                             const common::Schema& schema,
                             const std::vector<std::string>& primary_key,
                             bool temporary, bool if_not_exists,
                             SessionId session);
  common::Status DropTable(Transaction* txn, const std::string& name,
                           bool if_exists, SessionId session);
  common::Status CreateProcedure(Transaction* txn, StoredProcedure proc);
  common::Status DropProcedure(Transaction* txn, const std::string& name,
                               bool if_exists);
  common::Result<TablePtr> ResolveTable(const std::string& name,
                                        SessionId session);
  common::Result<StoredProcedure> GetProcedure(const std::string& name);

  // --- DML (acquire write locks, install versions, log, register undo) ---

  common::Status InsertRow(Transaction* txn, const TablePtr& table,
                           common::Row row);
  common::Status InsertBulk(Transaction* txn, const TablePtr& table,
                            std::vector<common::Row> rows);
  common::Status DeleteRow(Transaction* txn, const TablePtr& table, RowId id);
  common::Status UpdateRow(Transaction* txn, const TablePtr& table, RowId id,
                           common::Row new_row);

  // --- Read locking helpers (legacy PHOENIX_MVCC=0 path only) ------------

  /// Shared lock on the whole table (scans).
  common::Status LockTableShared(Transaction* txn, const TablePtr& table);
  /// Intention-shared + shared row lock (PK point reads).
  common::Status LockRowShared(Transaction* txn, const TablePtr& table,
                               const std::string& row_key);
  /// Exclusive lock on the whole table (scan-based writes).
  common::Status LockTableExclusive(Transaction* txn, const TablePtr& table);
  /// Drops the transaction's S/IS locks at statement end (READ COMMITTED).
  /// No-op under MVCC (readers hold no locks to drop).
  void ReleaseSharedLocks(Transaction* txn) {
    locks_.ReleaseShared(txn->id());
  }
  /// Intention-exclusive + exclusive row lock (PK point writes); taken
  /// before the row is located so no legacy reader observes a half-done
  /// change.
  common::Status LockRowExclusive(Transaction* txn, const TablePtr& table,
                                  const std::string& row_key);

  /// Index-range access: locks (S or X) and returns copies of every live
  /// row whose leading PK columns equal `prefix` — the row-level-locking
  /// path for district-scoped TPC-C statements. Rows inserted concurrently
  /// after the scan are not covered (READ COMMITTED allows phantoms).
  /// Snapshot readers use Table::ScanPkPrefixVisible instead.
  common::Result<std::vector<std::pair<RowId, common::Row>>>
  LockAndCollectPkPrefix(Transaction* txn, const TablePtr& table,
                         const std::vector<common::Value>& prefix,
                         bool exclusive);

  // --- Durability --------------------------------------------------------

  /// Snapshot + WAL truncate. Requires write quiescence (no active writer
  /// transactions); snapshot readers may keep running — the checkpoint
  /// image is the newest committed state, which cannot change while the
  /// Begin freeze + WAL fence hold commits out.
  common::Status Checkpoint();

  /// Simulates a server crash: wipes all in-memory state (catalog, tables,
  /// locks, active transactions). Durable files are untouched.
  void CrashVolatile();

  /// Rebuilds state from checkpoint + WAL. Idempotent from a wiped state.
  common::Status Recover();

  // --- Introspection ------------------------------------------------------

  Catalog& catalog() { return catalog_; }
  common::Mutex& catalog_mu() PHX_RETURN_CAPABILITY(catalog_mu_) {
    return catalog_mu_;
  }
  LockManager& locks() { return locks_; }
  std::chrono::milliseconds lock_timeout() const {
    return options_.lock_timeout;
  }
  size_t ActiveTransactionCount() const { return txns_.ActiveCount(); }
  uint64_t wal_bytes_written() const { return wal_.bytes_written(); }
  /// Group-commit force/commit counts (bench + test introspection).
  const GroupCommitCoordinator& group_commit() const { return group_commit_; }
  /// MVCC clock / GC watermark (tests + benches).
  uint64_t CurrentTs() const { return txns_.CurrentTs(); }
  uint64_t GcLowWatermark() const { return txns_.LowWatermark(); }

  // --- Result-cache invalidation plane ------------------------------------

  /// Digest of tables changed since `since`, current through the returned
  /// stable_ts. Ordering is the soundness argument: the stable clock is
  /// computed FIRST (under publish_mu, so every commit with cts <= stable_ts
  /// has already bumped its counters), THEN the counters are read — a bump
  /// racing in from a still-in-flight commit (cts > stable_ts) can only add
  /// a conservative entry, never hide a change at or below the clock.
  InvalidationDigest CollectInvalidation(uint64_t since) const;

  /// Highest fully-published commit timestamp (see
  /// TransactionManager::StableTs).
  uint64_t StableTs() const { return txns_.StableTs(); }

  /// Drops all temp tables owned by a session (disconnect or crash).
  void DropSessionState(SessionId session);

  static std::string RowLockKey(const Table& table, const common::Row& row,
                                RowId id);

 private:
  explicit Database(const DatabaseOptions& options) : options_(options) {}

  std::string WalPath() const { return options_.data_dir + "/wal.log"; }
  std::string CheckpointPath() const {
    return options_.data_dir + "/checkpoint.phx";
  }

  common::Status ApplyWalRecord(const WalRecord& record);

  /// Stamps the txn's pending versions with a fresh commit timestamp
  /// (atomically vs. snapshot pinning), then prunes its write-set slots
  /// below the GC watermark.
  void PublishCommit(Transaction* txn);

  DatabaseOptions options_;
  bool mvcc_ = true;
  Catalog catalog_;
  common::Mutex catalog_mu_;
  /// DDL ↔ checkpoint fence. DDL mutates the catalog eagerly (before
  /// commit), so unlike DML — whose versions stay unstamped and invisible
  /// until commit — an uncommitted CREATE/DROP would be captured by (or
  /// missing from) a concurrent checkpoint image. Every DDL statement holds
  /// this mutex across its catalog mutation; Checkpoint() holds it across
  /// its whole quiescence-check → snapshot → WAL-truncate window, so DDL
  /// from an already-active transaction blocks until the image is durable
  /// and then lands in the post-truncate log. Ordered before catalog_mu_.
  common::Mutex ddl_fence_;
  LockManager locks_;
  TransactionManager txns_;
  /// Per-table invalidation counters: lowercased persistent-table name →
  /// commit timestamp of the last committed change (DML or DDL). Bumped in
  /// PublishCommit between version stamping and EndPublish so StableTs()
  /// bounds them; wiped on crash (clients cannot outlive a crash — every
  /// session dies — and the clock itself survives, staying monotonic).
  /// Bounded by the application's table namespace: driver-internal artifact
  /// tables (uniquely named phoenix_rs_* result sets, phoenix_status) are
  /// filtered out at RecordWrite, so the per-query churn they generate never
  /// lands here or in connect-time full-history digests.
  mutable common::Mutex table_versions_mu_;
  std::unordered_map<std::string, uint64_t> table_versions_
      PHX_GUARDED_BY(table_versions_mu_);
  WalWriter wal_;
  /// Commit-time WAL appends go through the group-commit coordinator: one
  /// leader forces all concurrently queued commit batches with a single
  /// write + sync. Checkpoint takes its exclusive WAL lock to fence truncate
  /// against appends.
  GroupCommitCoordinator group_commit_;
};

}  // namespace phoenix::engine

#endif  // PHOENIX_ENGINE_DATABASE_H_
