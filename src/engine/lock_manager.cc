#include "engine/lock_manager.h"

#include <algorithm>

#include "common/clock.h"
#include "obs/metrics.h"

namespace phoenix::engine {

using common::Status;

const char* LockModeName(LockMode mode) {
  switch (mode) {
    case LockMode::kIS: return "IS";
    case LockMode::kIX: return "IX";
    case LockMode::kS: return "S";
    case LockMode::kX: return "X";
  }
  return "?";
}

bool LockModesCompatible(LockMode held, LockMode requested) {
  switch (held) {
    case LockMode::kIS:
      return requested != LockMode::kX;
    case LockMode::kIX:
      return requested == LockMode::kIS || requested == LockMode::kIX;
    case LockMode::kS:
      return requested == LockMode::kIS || requested == LockMode::kS;
    case LockMode::kX:
      return false;
  }
  return false;
}

namespace {

/// Strength order for upgrade decisions: IS < IX < S < X is not a chain (IX
/// and S are incomparable), so we rank by what a mode dominates.
int ModeRank(LockMode m) {
  switch (m) {
    case LockMode::kIS: return 0;
    case LockMode::kIX: return 1;
    case LockMode::kS: return 1;
    case LockMode::kX: return 2;
  }
  return 0;
}

/// Least mode at least as strong as both (IX ∨ S = X, per Gray's lattice).
LockMode ModeJoin(LockMode a, LockMode b) {
  if (a == b) return a;
  if (a == LockMode::kX || b == LockMode::kX) return LockMode::kX;
  if ((a == LockMode::kIX && b == LockMode::kS) ||
      (a == LockMode::kS && b == LockMode::kIX)) {
    return LockMode::kX;  // SIX collapsed to X (no SIX mode in this engine)
  }
  return ModeRank(a) >= ModeRank(b) ? a : b;
}

/// Records time spent blocked in Acquire. wait_start_nanos == 0 means the
/// lock was granted without waiting — nothing to record.
void RecordLockWait(int64_t wait_start_nanos) {
  if (wait_start_nanos == 0 || !obs::Enabled()) return;
  static obs::Histogram* const wait_hist =
      obs::Registry::Global().histogram("engine.lock.wait");
  wait_hist->Record(
      static_cast<uint64_t>(common::NowNanos() - wait_start_nanos));
}

}  // namespace

bool LockManager::CanGrantLocked(const LockState& state, TxnId txn,
                                 LockMode mode) const {
  for (const auto& [holder, held] : state.holders) {
    if (holder == txn) continue;  // self-conflict never blocks
    if (!LockModesCompatible(held, mode)) return false;
  }
  return true;
}

Status LockManager::Acquire(TxnId txn, const std::string& resource,
                            LockMode mode,
                            std::chrono::milliseconds timeout) {
  common::MutexLock lock(&mu_);
  auto deadline = std::chrono::steady_clock::now() + timeout;
  int64_t wait_start = 0;

  // The map entry must be re-fetched on every iteration: ReleaseAll/Reset
  // erase entries whose holder set drains, which would invalidate any
  // reference held across the wait.
  while (true) {
    LockState& state = locks_[resource];
    auto self = state.holders.find(txn);
    LockMode target = mode;
    bool was_held = self != state.holders.end();
    if (was_held) {
      target = ModeJoin(self->second, mode);
      if (target == self->second) {  // strong enough
        RecordLockWait(wait_start);
        return Status::OK();
      }
    }
    if (CanGrantLocked(state, txn, target)) {
      state.holders[txn] = target;
      if (!was_held) txn_resources_[txn].push_back(resource);
      RecordLockWait(wait_start);
      return Status::OK();
    }
    if (wait_start == 0) wait_start = common::NowNanos();
    if (cv_.WaitUntil(mu_, deadline) == std::cv_status::timeout) {
      LockState& final_state = locks_[resource];
      auto final_self = final_state.holders.find(txn);
      LockMode final_target = mode;
      bool final_held = final_self != final_state.holders.end();
      if (final_held) {
        final_target = ModeJoin(final_self->second, mode);
        if (final_target == final_self->second) {
          RecordLockWait(wait_start);
          return Status::OK();
        }
      }
      if (CanGrantLocked(final_state, txn, final_target)) {
        final_state.holders[txn] = final_target;
        if (!final_held) txn_resources_[txn].push_back(resource);
        RecordLockWait(wait_start);
        return Status::OK();
      }
      RecordLockWait(wait_start);
      if (obs::Enabled()) {
        static obs::Counter* const timeouts =
            obs::Registry::Global().counter("engine.lock.timeouts");
        timeouts->Add(1);
      }
      // Lock-wait timeout is the deadlock-resolution mechanism; surface it
      // as a transaction abort (a statement-level error the application
      // retries), NOT as a connection failure.
      return Status::Aborted("lock wait timeout on " + resource + " (" +
                             LockModeName(final_target) + ") for txn " +
                             std::to_string(txn) +
                             " — transaction aborted (deadlock victim)");
    }
  }
}

void LockManager::ReleaseAll(TxnId txn) {
  common::MutexLock lock(&mu_);
  auto it = txn_resources_.find(txn);
  if (it == txn_resources_.end()) return;
  for (const std::string& resource : it->second) {
    auto lit = locks_.find(resource);
    if (lit == locks_.end()) continue;
    lit->second.holders.erase(txn);
    if (lit->second.holders.empty()) locks_.erase(lit);
  }
  txn_resources_.erase(it);
  cv_.NotifyAll();
}

void LockManager::ReleaseShared(TxnId txn) {
  common::MutexLock lock(&mu_);
  auto it = txn_resources_.find(txn);
  if (it == txn_resources_.end()) return;
  std::vector<std::string> kept;
  kept.reserve(it->second.size());
  for (const std::string& resource : it->second) {
    auto lit = locks_.find(resource);
    if (lit == locks_.end()) continue;
    auto holder = lit->second.holders.find(txn);
    if (holder == lit->second.holders.end()) continue;
    if (holder->second == LockMode::kS || holder->second == LockMode::kIS) {
      lit->second.holders.erase(holder);
      if (lit->second.holders.empty()) locks_.erase(lit);
    } else {
      kept.push_back(resource);
    }
  }
  if (kept.empty()) {
    txn_resources_.erase(it);
  } else {
    it->second = std::move(kept);
  }
  cv_.NotifyAll();
}

void LockManager::Reset() {
  common::MutexLock lock(&mu_);
  locks_.clear();
  txn_resources_.clear();
  cv_.NotifyAll();
}

size_t LockManager::LockedResourceCount() const {
  common::MutexLock lock(&mu_);
  return locks_.size();
}

std::string LockManager::TableResource(const std::string& table_key) {
  return "t:" + table_key;
}

std::string LockManager::RowResource(const std::string& table_key,
                                     uint64_t row) {
  return "r:" + table_key + "#" + std::to_string(row);
}

}  // namespace phoenix::engine
