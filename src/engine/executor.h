#ifndef PHOENIX_ENGINE_EXECUTOR_H_
#define PHOENIX_ENGINE_EXECUTOR_H_

#include <memory>
#include <string>

#include "common/schema.h"
#include "common/status.h"
#include "engine/database.h"
#include "engine/planner.h"
#include "engine/row_source.h"
#include "sql/ast.h"

namespace phoenix::engine {

/// Outcome of executing one statement.
struct ExecResult {
  /// Non-null for result-producing statements (SELECT, EXEC of a query
  /// procedure): a forward-only cursor plus its metadata.
  RowSourcePtr cursor;
  common::Schema schema;
  /// True when the cursor streams lazily (cost ∝ rows pulled).
  bool lazy = false;
  /// Rows affected for INSERT/UPDATE/DELETE; -1 for queries/DDL.
  int64_t rows_affected = -1;

  bool is_query() const { return cursor != nullptr; }
};

/// Executes parsed statements against a Database within a transaction.
/// BEGIN/COMMIT/ROLLBACK are *not* handled here — the session layer owns
/// transaction boundaries.
class Executor {
 public:
  explicit Executor(Database* db) : db_(db) {}

  common::Result<ExecResult> Execute(Transaction* txn, SessionId session,
                                     const sql::Statement& stmt,
                                     const ParamMap* params);

 private:
  common::Result<ExecResult> ExecuteSelect(Transaction* txn,
                                           SessionId session,
                                           const sql::SelectStmt& stmt,
                                           const ParamMap* params);
  common::Result<ExecResult> ExecuteInsert(Transaction* txn,
                                           SessionId session,
                                           const sql::InsertStmt& stmt,
                                           const ParamMap* params);
  common::Result<ExecResult> ExecuteUpdate(Transaction* txn,
                                           SessionId session,
                                           const sql::UpdateStmt& stmt,
                                           const ParamMap* params);
  common::Result<ExecResult> ExecuteDelete(Transaction* txn,
                                           SessionId session,
                                           const sql::DeleteStmt& stmt,
                                           const ParamMap* params);
  common::Result<ExecResult> ExecuteExec(Transaction* txn, SessionId session,
                                         const sql::ExecStmt& stmt,
                                         const ParamMap* params);

  Database* db_;
};

}  // namespace phoenix::engine

#endif  // PHOENIX_ENGINE_EXECUTOR_H_
