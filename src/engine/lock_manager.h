#ifndef PHOENIX_ENGINE_LOCK_MANAGER_H_
#define PHOENIX_ENGINE_LOCK_MANAGER_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "engine/ids.h"

namespace phoenix::engine {

/// Multi-granularity lock modes. Tables take IS/IX/S/X; rows take S/X under
/// the table's intention lock.
enum class LockMode : uint8_t { kIS, kIX, kS, kX };

const char* LockModeName(LockMode mode);

/// True if a holder in `held` permits a new request in `requested`.
bool LockModesCompatible(LockMode held, LockMode requested);

/// Strict two-phase locking for writers: transactions acquire X/IX locks
/// during execution and release everything at commit/abort via ReleaseAll.
/// Under MVCC (the default) readers never enter the lock manager — S/IS
/// acquisition and ReleaseShared are exercised only by the PHOENIX_MVCC=0
/// legacy read path.
///
/// Deadlocks are resolved by wait timeout: a request that cannot be granted
/// within `timeout` returns kAborted, and the caller aborts the transaction
/// (TPC-C clients retry, which is the paper's "transaction failure is a
/// normal event" model).
class LockManager {
 public:
  LockManager() = default;
  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// Acquires (or upgrades to) `mode` on `resource` for `txn`. Re-acquiring
  /// an equal or weaker mode is a no-op.
  common::Status Acquire(TxnId txn, const std::string& resource,
                         LockMode mode, std::chrono::milliseconds timeout);

  /// Releases every lock held by `txn` and wakes waiters.
  void ReleaseAll(TxnId txn);

  /// Releases only the S/IS locks held by `txn` (X/IX stay until commit).
  /// This implements READ COMMITTED isolation — read locks last for the
  /// statement, write locks for the transaction — which is the default of
  /// the paper's SQL Server 7.0.
  void ReleaseShared(TxnId txn);

  /// Drops all lock state (server crash simulation — locks are volatile).
  void Reset();

  /// Number of distinct resources currently locked (tests/metrics).
  size_t LockedResourceCount() const;

  /// Resource naming helpers so all call sites agree.
  static std::string TableResource(const std::string& table_key);
  static std::string RowResource(const std::string& table_key, uint64_t row);

 private:
  struct LockState {
    /// txn -> strongest mode held.
    std::map<TxnId, LockMode> holders;
  };

  bool CanGrantLocked(const LockState& state, TxnId txn, LockMode mode) const
      PHX_REQUIRES(mu_);

  mutable common::Mutex mu_;
  common::CondVar cv_;
  std::unordered_map<std::string, LockState> locks_ PHX_GUARDED_BY(mu_);
  /// txn -> resources it holds (for ReleaseAll).
  std::unordered_map<TxnId, std::vector<std::string>> txn_resources_
      PHX_GUARDED_BY(mu_);
};

}  // namespace phoenix::engine

#endif  // PHOENIX_ENGINE_LOCK_MANAGER_H_
