#include "engine/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/bytes.h"
#include "common/crc32.h"
#include "fault/fault.h"

namespace phoenix::engine {

using common::BinaryReader;
using common::BinaryWriter;
using common::Result;
using common::Status;

namespace {

constexpr uint32_t kCheckpointMagic = 0x50485843;  // "PHXC" — legacy
constexpr uint32_t kManifestMagic = 0x5048584D;    // "PHXM"
constexpr uint32_t kSegmentMagic = 0x50485853;     // "PHXS"
constexpr uint8_t kManifestVersion = 1;
constexpr uint8_t kSegmentVersion = 1;

Status WriteAll(int fd, const uint8_t* p, size_t n, const char* what) {
  size_t off = 0;
  while (off < n) {
    ssize_t r = ::write(fd, p + off, n - off);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string(what) + " write: " +
                             std::strerror(errno));
    }
    off += static_cast<size_t>(r);
  }
  return Status::OK();
}

/// body + CRC trailer -> fd at `path` (created/truncated), fdatasync'd.
Status WriteCrcFile(const std::string& path, const std::vector<uint8_t>& body,
                    const char* what) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("open '" + path + "': " + std::strerror(errno));
  }
  BinaryWriter trailer;
  trailer.PutU32(common::Crc32(body.data(), body.size()));
  Status st = WriteAll(fd, body.data(), body.size(), what);
  if (st.ok()) {
    st = WriteAll(fd, trailer.data().data(), trailer.data().size(), what);
  }
  if (st.ok() && ::fdatasync(fd) != 0) {
    st = Status::IoError(std::string(what) + " fdatasync: " +
                         std::strerror(errno));
  }
  ::close(fd);
  if (!st.ok()) ::unlink(path.c_str());
  return st;
}

/// Reads the whole file, verifies the CRC trailer, and returns the body
/// bytes. NotFound when the file is missing.
Result<std::vector<uint8_t>> ReadCrcFile(const std::string& path,
                                         const char* what) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound(std::string(what) + " '" + path + "' missing");
    }
    return Status::IoError("open '" + path + "': " + std::strerror(errno));
  }
  std::vector<uint8_t> content;
  uint8_t chunk[1 << 16];
  while (true) {
    ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::IoError(std::string(what) + " read: " +
                             std::strerror(errno));
    }
    if (n == 0) break;
    content.insert(content.end(), chunk, chunk + n);
  }
  ::close(fd);
  if (content.size() < 8) {
    return Status::IoError(std::string(what) + " file too short");
  }
  size_t body_size = content.size() - 4;
  BinaryReader crc_reader(content.data() + body_size, 4);
  uint32_t stored_crc = crc_reader.GetU32().value();
  if (common::Crc32(content.data(), body_size) != stored_crc) {
    return Status::IoError(std::string(what) + " CRC mismatch (corrupt file)");
  }
  content.resize(body_size);
  return content;
}

void PutTableSnapshot(BinaryWriter* w,
                      const CheckpointData::TableSnapshot& table) {
  w->PutString(table.name);
  w->PutSchema(table.schema);
  w->PutU32(static_cast<uint32_t>(table.primary_key.size()));
  for (const std::string& col : table.primary_key) w->PutString(col);
  w->PutU32(static_cast<uint32_t>(table.rows.size()));
  for (const common::Row& row : table.rows) w->PutRow(row);
}

Result<CheckpointData::TableSnapshot> GetTableSnapshot(BinaryReader* r) {
  CheckpointData::TableSnapshot table;
  PHX_ASSIGN_OR_RETURN(table.name, r->GetString());
  PHX_ASSIGN_OR_RETURN(table.schema, r->GetSchema());
  PHX_ASSIGN_OR_RETURN(uint32_t num_pk, r->GetU32());
  for (uint32_t k = 0; k < num_pk; ++k) {
    PHX_ASSIGN_OR_RETURN(std::string col, r->GetString());
    table.primary_key.push_back(std::move(col));
  }
  PHX_ASSIGN_OR_RETURN(uint32_t num_rows, r->GetU32());
  // Each serialized row costs at least 4 bytes; a larger count is a corrupt
  // frame, not a huge allocation.
  if (num_rows > r->remaining() / 4) {
    return Status::IoError("segment row count " + std::to_string(num_rows) +
                           " exceeds file size");
  }
  table.rows.reserve(num_rows);
  for (uint32_t k = 0; k < num_rows; ++k) {
    PHX_ASSIGN_OR_RETURN(common::Row row, r->GetRow());
    table.rows.push_back(std::move(row));
  }
  return table;
}

void PutProcedures(BinaryWriter* w,
                   const std::vector<StoredProcedure>& procedures) {
  w->PutU32(static_cast<uint32_t>(procedures.size()));
  for (const auto& proc : procedures) {
    w->PutString(proc.name);
    w->PutU32(static_cast<uint32_t>(proc.params.size()));
    for (const auto& p : proc.params) {
      w->PutString(p.name);
      w->PutU8(static_cast<uint8_t>(p.type));
    }
    w->PutString(proc.body_sql);
  }
}

Result<std::vector<StoredProcedure>> GetProcedures(BinaryReader* r) {
  std::vector<StoredProcedure> procedures;
  PHX_ASSIGN_OR_RETURN(uint32_t num_procs, r->GetU32());
  for (uint32_t i = 0; i < num_procs; ++i) {
    StoredProcedure proc;
    PHX_ASSIGN_OR_RETURN(proc.name, r->GetString());
    PHX_ASSIGN_OR_RETURN(uint32_t num_params, r->GetU32());
    for (uint32_t k = 0; k < num_params; ++k) {
      sql::ProcedureParam p;
      PHX_ASSIGN_OR_RETURN(p.name, r->GetString());
      PHX_ASSIGN_OR_RETURN(uint8_t t, r->GetU8());
      p.type = static_cast<common::ValueType>(t);
      proc.params.push_back(std::move(p));
    }
    PHX_ASSIGN_OR_RETURN(proc.body_sql, r->GetString());
    procedures.push_back(std::move(proc));
  }
  return procedures;
}

/// Atomic replace: write to path+".tmp" with CRC trailer, fdatasync, rename.
Status WriteCrcFileAtomic(const std::string& path,
                          const std::vector<uint8_t>& body, const char* what) {
  std::string tmp_path = path + ".tmp";
  PHX_RETURN_IF_ERROR(WriteCrcFile(tmp_path, body, what));
  if (::rename(tmp_path.c_str(), path.c_str()) != 0) {
    ::unlink(tmp_path.c_str());
    return Status::IoError(std::string(what) + " rename: " +
                           std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace

Status WriteCheckpoint(const std::string& path, const CheckpointData& data) {
  // Failing here is harmless by design (the tmp+rename below is atomic and
  // the WAL is only truncated after success), which the fault tests assert.
  PHX_FAULT_POINT("checkpoint.write");
  BinaryWriter w;
  w.PutU32(kCheckpointMagic);
  w.PutU32(static_cast<uint32_t>(data.tables.size()));
  for (const auto& table : data.tables) PutTableSnapshot(&w, table);
  PutProcedures(&w, data.procedures);
  return WriteCrcFileAtomic(path, w.data(), "checkpoint");
}

Result<CheckpointData> ReadCheckpoint(const std::string& path) {
  auto body = ReadCrcFile(path, "checkpoint");
  if (!body.ok()) {
    if (body.status().code() == common::StatusCode::kNotFound) {
      return CheckpointData{};  // fresh database
    }
    return body.status();
  }
  CheckpointData data;
  BinaryReader r(body->data(), body->size());
  PHX_ASSIGN_OR_RETURN(uint32_t magic, r.GetU32());
  if (magic != kCheckpointMagic) {
    return Status::IoError("bad checkpoint magic");
  }
  PHX_ASSIGN_OR_RETURN(uint32_t num_tables, r.GetU32());
  for (uint32_t i = 0; i < num_tables; ++i) {
    PHX_ASSIGN_OR_RETURN(CheckpointData::TableSnapshot table,
                         GetTableSnapshot(&r));
    data.tables.push_back(std::move(table));
  }
  PHX_ASSIGN_OR_RETURN(data.procedures, GetProcedures(&r));
  return data;
}

Status WriteTableSegment(const std::string& path,
                         const CheckpointData::TableSnapshot& table,
                         uint32_t* crc_out) {
  // Failing a segment aborts the checkpoint before the manifest commit
  // point; the previous generation stays intact (the new-gen file name can
  // never collide with a referenced segment).
  PHX_FAULT_POINT("checkpoint.segment_write");
  BinaryWriter w;
  w.PutU32(kSegmentMagic);
  w.PutU8(kSegmentVersion);
  PutTableSnapshot(&w, table);
  *crc_out = common::Crc32(w.data().data(), w.data().size());
  return WriteCrcFile(path, w.data(), "checkpoint segment");
}

Result<CheckpointData::TableSnapshot> ReadTableSegment(
    const std::string& path, uint32_t expected_crc) {
  PHX_ASSIGN_OR_RETURN(std::vector<uint8_t> body,
                       ReadCrcFile(path, "checkpoint segment"));
  if (common::Crc32(body.data(), body.size()) != expected_crc) {
    return Status::IoError("segment '" + path +
                           "' does not match its manifest CRC");
  }
  BinaryReader r(body.data(), body.size());
  PHX_ASSIGN_OR_RETURN(uint32_t magic, r.GetU32());
  if (magic != kSegmentMagic) {
    return Status::IoError("bad segment magic in '" + path + "'");
  }
  PHX_ASSIGN_OR_RETURN(uint8_t version, r.GetU8());
  if (version != kSegmentVersion) {
    return Status::IoError("unsupported segment version " +
                           std::to_string(version));
  }
  return GetTableSnapshot(&r);
}

Status WriteManifest(const std::string& path,
                     const CheckpointManifest& manifest) {
  // The manifest rename is the whole checkpoint's commit point, so it keeps
  // the legacy fault point: failing it must leave the previous generation
  // loadable, which the recovery tests assert.
  PHX_FAULT_POINT("checkpoint.write");
  BinaryWriter w;
  w.PutU32(kManifestMagic);
  w.PutU8(kManifestVersion);
  w.PutU64(manifest.generation);
  w.PutU32(static_cast<uint32_t>(manifest.segments.size()));
  for (const SegmentRef& seg : manifest.segments) {
    w.PutString(seg.table);
    w.PutString(seg.file);
    w.PutU32(seg.crc);
    w.PutU64(seg.generation);
    w.PutU64(seg.row_count);
  }
  PutProcedures(&w, manifest.procedures);
  return WriteCrcFileAtomic(path, w.data(), "checkpoint manifest");
}

Result<LoadedCheckpoint> ReadCheckpointAny(const std::string& path) {
  LoadedCheckpoint loaded;
  auto body = ReadCrcFile(path, "checkpoint");
  if (!body.ok()) {
    if (body.status().code() == common::StatusCode::kNotFound) {
      return loaded;  // fresh database
    }
    return body.status();
  }
  BinaryReader r(body->data(), body->size());
  PHX_ASSIGN_OR_RETURN(uint32_t magic, r.GetU32());
  if (magic == kCheckpointMagic) {
    // Legacy single-file image: re-parse through the legacy reader (it
    // re-reads the file; checkpoints load once per recovery, so the double
    // read is noise next to the row parse).
    PHX_ASSIGN_OR_RETURN(loaded.full, ReadCheckpoint(path));
    return loaded;
  }
  if (magic != kManifestMagic) {
    return Status::IoError("bad checkpoint magic");
  }
  PHX_ASSIGN_OR_RETURN(uint8_t version, r.GetU8());
  if (version != kManifestVersion) {
    return Status::IoError("unsupported manifest version " +
                           std::to_string(version));
  }
  loaded.is_manifest = true;
  PHX_ASSIGN_OR_RETURN(loaded.manifest.generation, r.GetU64());
  PHX_ASSIGN_OR_RETURN(uint32_t num_segments, r.GetU32());
  for (uint32_t i = 0; i < num_segments; ++i) {
    SegmentRef seg;
    PHX_ASSIGN_OR_RETURN(seg.table, r.GetString());
    PHX_ASSIGN_OR_RETURN(seg.file, r.GetString());
    PHX_ASSIGN_OR_RETURN(seg.crc, r.GetU32());
    PHX_ASSIGN_OR_RETURN(seg.generation, r.GetU64());
    PHX_ASSIGN_OR_RETURN(seg.row_count, r.GetU64());
    loaded.manifest.segments.push_back(std::move(seg));
  }
  PHX_ASSIGN_OR_RETURN(loaded.manifest.procedures, GetProcedures(&r));
  return loaded;
}

}  // namespace phoenix::engine
