#include "engine/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/bytes.h"
#include "common/crc32.h"
#include "fault/fault.h"

namespace phoenix::engine {

using common::BinaryReader;
using common::BinaryWriter;
using common::Result;
using common::Status;

namespace {

constexpr uint32_t kCheckpointMagic = 0x50485843;  // "PHXC"

}  // namespace

Status WriteCheckpoint(const std::string& path, const CheckpointData& data) {
  // Failing here is harmless by design (the tmp+rename below is atomic and
  // the WAL is only truncated after success), which the fault tests assert.
  PHX_FAULT_POINT("checkpoint.write");
  BinaryWriter w;
  w.PutU32(kCheckpointMagic);
  w.PutU32(static_cast<uint32_t>(data.tables.size()));
  for (const auto& table : data.tables) {
    w.PutString(table.name);
    w.PutSchema(table.schema);
    w.PutU32(static_cast<uint32_t>(table.primary_key.size()));
    for (const std::string& col : table.primary_key) w.PutString(col);
    w.PutU32(static_cast<uint32_t>(table.rows.size()));
    for (const common::Row& row : table.rows) w.PutRow(row);
  }
  w.PutU32(static_cast<uint32_t>(data.procedures.size()));
  for (const auto& proc : data.procedures) {
    w.PutString(proc.name);
    w.PutU32(static_cast<uint32_t>(proc.params.size()));
    for (const auto& p : proc.params) {
      w.PutString(p.name);
      w.PutU8(static_cast<uint8_t>(p.type));
    }
    w.PutString(proc.body_sql);
  }
  const std::vector<uint8_t>& body = w.data();
  uint32_t crc = common::Crc32(body.data(), body.size());

  std::string tmp_path = path + ".tmp";
  int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("open '" + tmp_path +
                           "': " + std::strerror(errno));
  }
  BinaryWriter trailer;
  trailer.PutU32(crc);
  auto write_all = [&](const uint8_t* p, size_t n) -> Status {
    size_t off = 0;
    while (off < n) {
      ssize_t r = ::write(fd, p + off, n - off);
      if (r < 0) {
        if (errno == EINTR) continue;
        return Status::IoError("checkpoint write: " +
                               std::string(std::strerror(errno)));
      }
      off += static_cast<size_t>(r);
    }
    return Status::OK();
  };
  Status st = write_all(body.data(), body.size());
  if (st.ok()) st = write_all(trailer.data().data(), trailer.data().size());
  if (st.ok() && ::fdatasync(fd) != 0) {
    st = Status::IoError("checkpoint fdatasync: " +
                         std::string(std::strerror(errno)));
  }
  ::close(fd);
  if (!st.ok()) {
    ::unlink(tmp_path.c_str());
    return st;
  }
  if (::rename(tmp_path.c_str(), path.c_str()) != 0) {
    return Status::IoError("checkpoint rename: " +
                           std::string(std::strerror(errno)));
  }
  return Status::OK();
}

Result<CheckpointData> ReadCheckpoint(const std::string& path) {
  CheckpointData data;
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return data;  // fresh database
    return Status::IoError("open '" + path + "': " + std::strerror(errno));
  }
  std::vector<uint8_t> content;
  uint8_t chunk[1 << 16];
  while (true) {
    ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::IoError("read checkpoint: " +
                             std::string(std::strerror(errno)));
    }
    if (n == 0) break;
    content.insert(content.end(), chunk, chunk + n);
  }
  ::close(fd);

  if (content.size() < 8) {
    return Status::IoError("checkpoint file too short");
  }
  size_t body_size = content.size() - 4;
  BinaryReader crc_reader(content.data() + body_size, 4);
  uint32_t stored_crc = crc_reader.GetU32().value();
  if (common::Crc32(content.data(), body_size) != stored_crc) {
    return Status::IoError("checkpoint CRC mismatch (corrupt file)");
  }

  BinaryReader r(content.data(), body_size);
  PHX_ASSIGN_OR_RETURN(uint32_t magic, r.GetU32());
  if (magic != kCheckpointMagic) {
    return Status::IoError("bad checkpoint magic");
  }
  PHX_ASSIGN_OR_RETURN(uint32_t num_tables, r.GetU32());
  for (uint32_t i = 0; i < num_tables; ++i) {
    CheckpointData::TableSnapshot table;
    PHX_ASSIGN_OR_RETURN(table.name, r.GetString());
    PHX_ASSIGN_OR_RETURN(table.schema, r.GetSchema());
    PHX_ASSIGN_OR_RETURN(uint32_t num_pk, r.GetU32());
    for (uint32_t k = 0; k < num_pk; ++k) {
      PHX_ASSIGN_OR_RETURN(std::string col, r.GetString());
      table.primary_key.push_back(std::move(col));
    }
    PHX_ASSIGN_OR_RETURN(uint32_t num_rows, r.GetU32());
    table.rows.reserve(num_rows);
    for (uint32_t k = 0; k < num_rows; ++k) {
      PHX_ASSIGN_OR_RETURN(common::Row row, r.GetRow());
      table.rows.push_back(std::move(row));
    }
    data.tables.push_back(std::move(table));
  }
  PHX_ASSIGN_OR_RETURN(uint32_t num_procs, r.GetU32());
  for (uint32_t i = 0; i < num_procs; ++i) {
    StoredProcedure proc;
    PHX_ASSIGN_OR_RETURN(proc.name, r.GetString());
    PHX_ASSIGN_OR_RETURN(uint32_t num_params, r.GetU32());
    for (uint32_t k = 0; k < num_params; ++k) {
      sql::ProcedureParam p;
      PHX_ASSIGN_OR_RETURN(p.name, r.GetString());
      PHX_ASSIGN_OR_RETURN(uint8_t t, r.GetU8());
      p.type = static_cast<common::ValueType>(t);
      proc.params.push_back(std::move(p));
    }
    PHX_ASSIGN_OR_RETURN(proc.body_sql, r.GetString());
    data.procedures.push_back(std::move(proc));
  }
  return data;
}

}  // namespace phoenix::engine
