#ifndef PHOENIX_ENGINE_SHARD_ROUTER_H_
#define PHOENIX_ENGINE_SHARD_ROUTER_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "sql/ast.h"

namespace phoenix::engine {

/// How a table's rows are placed across engine shards.
enum class ShardTableClass : uint8_t {
  /// Hash-partitioned on key_columns (declared SHARD KEY, else the PK).
  kHash,
  /// Full copy on every shard: reads serve locally, writes broadcast.
  kReplicated,
  /// Whole table lives on one shard (no PK and no SHARD KEY — the engine
  /// cannot route individual rows, so the table is pinned by name hash).
  kPinned,
};

struct ShardTableInfo {
  ShardTableClass cls = ShardTableClass::kHash;
  std::vector<std::string> key_columns;  // lowercased, kHash only
  std::vector<std::string> columns;      // lowercased, declaration order
  int pinned_shard = 0;                  // kPinned only
};

/// What the coordinator should do with one statement.
struct RouteDecision {
  enum class Kind : uint8_t {
    /// Forward verbatim to `shard` — the fast path (all five TPC-C bodies
    /// take it under warehouse partitioning).
    kSingleShard,
    /// SELECT over every shard; merge per `aggs`/`order_by`/`top_n`.
    kFanoutRead,
    /// UPDATE/DELETE whose key is unbound (or whose table is replicated):
    /// run on every shard inside one global transaction.
    kBroadcastWrite,
    /// DDL that must exist on every shard.
    kBroadcastDdl,
    /// Multi-row INSERT whose rows land on different shards: run
    /// `per_shard_sql` inside one global transaction.
    kScatterInsert,
    /// INSERT INTO t SELECT ...: the coordinator evaluates the SELECT
    /// (routing it recursively) and re-inserts the rows by key.
    kInsertSelect,
  };

  /// Per-item combine rule for fanout aggregates without GROUP BY.
  enum class Agg : uint8_t { kCount, kSum, kMin, kMax };

  Kind kind = Kind::kSingleShard;
  int shard = 0;  // kSingleShard

  // kFanoutRead
  std::vector<Agg> aggs;  // one per select item; empty = plain row merge
  std::vector<std::pair<std::string, bool>> order_by;  // column name, asc
  int64_t top_n = -1;

  // kScatterInsert
  std::vector<std::pair<int, std::string>> per_shard_sql;
};

/// Table-placement registry + statement routing analysis for the scatter-
/// gather coordinator. Pure analysis: no execution, no engine references.
/// Thread safe (one router is shared by every coordinator session).
class ShardRouter {
 public:
  explicit ShardRouter(int shard_count) : shard_count_(shard_count) {}

  int shard_count() const { return shard_count_; }

  /// Stable hash partitioning: crc32 of the order-preserving key encoding,
  /// mod shards — INSERT literals and WHERE literals hash identically
  /// because the encoding already canonicalizes numeric kinds (INT 3 and
  /// DOUBLE 3.0 encode the same). Shared with the TPC-C partitioned loader.
  static int ShardForKey(const std::vector<common::Value>& key, int shards);
  /// Placement for tables routed by name (pinned tables).
  static int ShardForName(const std::string& name, int shards);

  /// Registers a table from its CREATE statement (SHARD KEY / REPLICATED /
  /// PK default / pinned fallback) and persists the sidecar.
  void RegisterCreate(const sql::CreateTableStmt& stmt);
  void Unregister(const std::string& table);
  bool Lookup(const std::string& table, ShardTableInfo* out) const;

  /// Routes one statement. `temp_tables` is the session's live CREATE TEMP
  /// set (temp tables are pinned to shard 0, the session's home shard);
  /// `params` resolves @name placeholders in key predicates (may be null).
  /// Statements the coordinator cannot decompose (cross-shard joins,
  /// DISTINCT/GROUP BY fanouts, EXEC of user procedures, subqueries over
  /// partitioned tables) return kUnsupported.
  common::Result<RouteDecision> Route(
      const sql::Statement& stmt, const std::set<std::string>& temp_tables,
      const std::map<std::string, common::Value>* params) const;

  /// Routes a SELECT (exposed for INSERT..SELECT mediation).
  common::Result<RouteDecision> RouteSelect(
      const sql::SelectStmt& stmt, const std::set<std::string>& temp_tables,
      const std::map<std::string, common::Value>* params) const;

  /// Sidecar persistence (data_dir/shard_keys): placement must survive a
  /// full server restart or recovery replays/loads would re-route rows.
  common::Status SaveTo(const std::string& path) const;
  common::Status LoadFrom(const std::string& path);
  void set_sidecar_path(const std::string& path) {
    std::lock_guard<std::mutex> lock(mu_);
    sidecar_path_ = path;
  }

 private:
  void PersistLocked() const;

  int shard_count_;
  mutable std::mutex mu_;
  std::map<std::string, ShardTableInfo> tables_;  // lowercased name
  std::string sidecar_path_;
};

}  // namespace phoenix::engine

#endif  // PHOENIX_ENGINE_SHARD_ROUTER_H_
