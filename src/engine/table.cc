#include "engine/table.h"

#include "common/bytes.h"
#include "common/crc32.h"
#include "engine/key_encoding.h"
#include "obs/metrics.h"

namespace phoenix::engine {

using common::Result;
using common::Row;
using common::Status;

namespace {

obs::Counter* VersionsInstalledCounter() {
  static obs::Counter* const c =
      obs::Registry::Global().counter("engine.mvcc.versions_installed");
  return c;
}

}  // namespace

Table::Table(std::string name, common::Schema schema,
             std::vector<std::string> primary_key, bool temporary)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      primary_key_(std::move(primary_key)),
      temporary_(temporary) {
  for (const std::string& col : primary_key_) {
    int idx = schema_.FindColumn(col);
    // A bad PK column is a caller bug; Catalog validates before constructing.
    if (idx >= 0) pk_column_indexes_.push_back(idx);
  }
}

std::string Table::EncodePkFromRow(const Row& row) const {
  std::string out;
  for (int idx : pk_column_indexes_) {
    AppendOrderedKey(row[static_cast<size_t>(idx)], &out);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Visibility
// ---------------------------------------------------------------------------

bool Table::VersionVisible(const RowVersion& v, const Snapshot& snap) {
  const bool created =
      (snap.txn != 0 && v.creator == snap.txn && v.begin_ts == 0) ||
      (v.begin_ts != 0 && v.begin_ts <= snap.ts);
  if (!created) return false;
  const bool deleted =
      (snap.txn != 0 && v.deleter == snap.txn && v.end_ts == 0) ||
      (v.end_ts != 0 && v.end_ts != kMaxTs && v.end_ts <= snap.ts);
  return !deleted;
}

const Table::RowVersion* Table::FindVisible(const RowSlot& slot,
                                            const Snapshot& snap) {
  for (const RowVersion* v = slot.head.get(); v != nullptr;
       v = v->older.get()) {
    if (VersionVisible(*v, snap)) return v;
    // Chains are newest-first: once a version's creation is visible, older
    // versions are shadowed — but a visible-created yet deleted version
    // still shadows nothing only if the delete predates the snapshot, so
    // keep walking; chains are short (bounded by GC).
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Insert paths
// ---------------------------------------------------------------------------

Status Table::CheckPkUniqueLocked(const Row& row, RowId* reusable_slot) const {
  *reusable_slot = static_cast<RowId>(-1);
  if (!has_primary_key()) return Status::OK();
  std::string key = EncodePkFromRow(row);
  auto it = pk_index_.find(key);
  if (it == pk_index_.end()) return Status::OK();
  if (HeadLive(slots_[it->second])) {
    return Status::ConstraintViolation("duplicate primary key in table '" +
                                       name_ + "'");
  }
  // The key names a dead lineage: the insert reuses its slot so snapshot
  // readers keep finding the older versions through the index.
  *reusable_slot = it->second;
  return Status::OK();
}

Result<RowId> Table::InsertLocked(Row row, TxnId txn, uint64_t begin_ts) {
  PHX_RETURN_IF_ERROR(schema_.ValidateRow(row));
  RowId reuse;
  PHX_RETURN_IF_ERROR(CheckPkUniqueLocked(row, &reuse));

  auto version = std::make_unique<RowVersion>();
  version->row = std::move(row);
  version->begin_ts = begin_ts;
  version->creator = txn;

  RowId id;
  if (reuse != static_cast<RowId>(-1)) {
    id = reuse;
    version->older = std::move(slots_[id].head);
    slots_[id].head = std::move(version);
  } else {
    id = slots_.size();
    if (has_primary_key()) {
      pk_index_.emplace(EncodePkFromRow(version->row), id);
    }
    slots_.push_back(RowSlot{std::move(version)});
  }
  ++live_count_;
  VersionsInstalledCounter()->Add(1);
  return id;
}

Result<RowId> Table::Insert(Row row) {
  common::MutexLock latch(&latch_);
  return InsertLocked(std::move(row), /*txn=*/0, kBaseTs);
}

Status Table::InsertBulk(std::vector<Row> rows) {
  common::MutexLock latch(&latch_);
  for (Row& row : rows) {
    PHX_ASSIGN_OR_RETURN([[maybe_unused]] RowId id,
                         InsertLocked(std::move(row), /*txn=*/0, kBaseTs));
  }
  return Status::OK();
}

Result<RowId> Table::InsertVersion(Row row, TxnId txn) {
  common::MutexLock latch(&latch_);
  return InsertLocked(std::move(row), txn, /*begin_ts=*/0);
}

// ---------------------------------------------------------------------------
// Delete / update paths
// ---------------------------------------------------------------------------

Status Table::Delete(RowId id) {
  common::MutexLock latch(&latch_);
  if (id >= slots_.size() || !HeadLive(slots_[id])) {
    return Status::NotFound("row " + std::to_string(id) + " not live in '" +
                            name_ + "'");
  }
  slots_[id].head->end_ts = kBaseTs;
  --live_count_;
  return Status::OK();
}

Status Table::Undelete(RowId id) {
  common::MutexLock latch(&latch_);
  if (id >= slots_.size() || slots_[id].head == nullptr ||
      HeadLive(slots_[id])) {
    return Status::InvalidArgument("slot " + std::to_string(id) +
                                   " is not a tombstone in '" + name_ + "'");
  }
  if (has_primary_key()) {
    std::string key = EncodePkFromRow(slots_[id].head->row);
    auto it = pk_index_.find(key);
    if (it != pk_index_.end() && it->second != id) {
      if (HeadLive(slots_[it->second])) {
        return Status::ConstraintViolation("duplicate primary key in table '" +
                                           name_ + "'");
      }
      // Even a dead lineage owns its index entry: snapshot readers reach its
      // committed versions through it, so repointing here would orphan them.
      return Status::ConstraintViolation(
          "primary key lineage for slot " + std::to_string(id) +
          " lives in another slot of table '" + name_ + "'");
    }
    pk_index_[key] = id;
  }
  slots_[id].head->end_ts = kMaxTs;
  slots_[id].head->deleter = 0;
  ++live_count_;
  return Status::OK();
}

Status Table::DeleteVersion(RowId id, TxnId txn) {
  common::MutexLock latch(&latch_);
  if (id >= slots_.size() || !HeadLive(slots_[id])) {
    return Status::NotFound("row " + std::to_string(id) + " not live in '" +
                            name_ + "'");
  }
  slots_[id].head->end_ts = 0;
  slots_[id].head->deleter = txn;
  --live_count_;
  return Status::OK();
}

Status Table::Update(RowId id, Row new_row) {
  common::MutexLock latch(&latch_);
  if (id >= slots_.size() || !HeadLive(slots_[id])) {
    return Status::NotFound("row " + std::to_string(id) + " not live in '" +
                            name_ + "'");
  }
  PHX_RETURN_IF_ERROR(schema_.ValidateRow(new_row));
  RowVersion& head = *slots_[id].head;
  if (has_primary_key()) {
    std::string old_key = EncodePkFromRow(head.row);
    std::string new_key = EncodePkFromRow(new_row);
    if (old_key != new_key) {
      auto it = pk_index_.find(new_key);
      if (it != pk_index_.end() && HeadLive(slots_[it->second])) {
        return Status::ConstraintViolation(
            "update would duplicate primary key in '" + name_ + "'");
      }
      if (auto old_it = pk_index_.find(old_key);
          old_it != pk_index_.end() && old_it->second == id) {
        pk_index_.erase(old_it);
      }
      pk_index_[new_key] = id;
    }
  }
  head.row = std::move(new_row);
  return Status::OK();
}

Status Table::UpdateVersion(RowId id, Row new_row, TxnId txn) {
  common::MutexLock latch(&latch_);
  if (id >= slots_.size() || !HeadLive(slots_[id])) {
    return Status::NotFound("row " + std::to_string(id) + " not live in '" +
                            name_ + "'");
  }
  PHX_RETURN_IF_ERROR(schema_.ValidateRow(new_row));

  auto version = std::make_unique<RowVersion>();
  version->row = std::move(new_row);
  version->begin_ts = 0;
  version->creator = txn;

  RowVersion& old_head = *slots_[id].head;
  old_head.end_ts = 0;
  old_head.deleter = txn;

  version->older = std::move(slots_[id].head);
  slots_[id].head = std::move(version);
  VersionsInstalledCounter()->Add(1);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Commit / rollback / GC
// ---------------------------------------------------------------------------

void Table::StampCommit(RowId id, TxnId txn, uint64_t cts) {
  common::MutexLock latch(&latch_);
  if (id >= slots_.size()) return;
  for (RowVersion* v = slots_[id].head.get(); v != nullptr;
       v = v->older.get()) {
    if (v->creator == txn && v->begin_ts == 0) v->begin_ts = cts;
    if (v->deleter == txn && v->end_ts == 0) v->end_ts = cts;
  }
}

void Table::RollbackSlot(RowId id, TxnId txn) {
  common::MutexLock latch(&latch_);
  if (id >= slots_.size()) return;
  RowSlot& slot = slots_[id];
  const bool was_live = HeadLive(slot);

  // Pop this transaction's pending-insert versions off the head.
  std::string freed_key;
  while (slot.head != nullptr && slot.head->creator == txn &&
         slot.head->begin_ts == 0) {
    if (has_primary_key()) freed_key = EncodePkFromRow(slot.head->row);
    slot.head = std::move(slot.head->older);
  }
  // Clear this transaction's pending-delete marks on surviving versions.
  for (RowVersion* v = slot.head.get(); v != nullptr; v = v->older.get()) {
    if (v->deleter == txn && v->end_ts == 0) {
      v->end_ts = kMaxTs;
      v->deleter = 0;
    }
  }

  if (slot.head == nullptr && !freed_key.empty()) {
    auto it = pk_index_.find(freed_key);
    if (it != pk_index_.end() && it->second == id) pk_index_.erase(it);
  }
  const bool is_live = HeadLive(slot);
  if (was_live && !is_live) --live_count_;
  if (!was_live && is_live) ++live_count_;
}

Table::PruneStats Table::PruneSlot(RowId id, uint64_t watermark) {
  common::MutexLock latch(&latch_);
  PruneStats stats;
  if (id >= slots_.size()) return stats;
  RowSlot& slot = slots_[id];
  for (const RowVersion* v = slot.head.get(); v != nullptr;
       v = v->older.get()) {
    ++stats.chain_length;
  }

  // Find the newest version committed at or before the watermark: it is the
  // version every snapshot at >= watermark resolves to (or skips, if also
  // deleted by then); everything older is unreachable.
  std::unique_ptr<RowVersion>* link = &slot.head;
  while (*link != nullptr &&
         !((*link)->begin_ts != 0 && (*link)->begin_ts <= watermark)) {
    link = &(*link)->older;
  }
  if (*link == nullptr) return stats;

  RowVersion& anchor = **link;
  const bool anchor_dead =
      anchor.end_ts != 0 && anchor.end_ts != kMaxTs &&
      anchor.end_ts <= watermark;
  std::unique_ptr<RowVersion> freed;
  if (anchor_dead) {
    freed = std::move(*link);  // frees the anchor and everything older
  } else {
    freed = std::move(anchor.older);
  }
  for (const RowVersion* v = freed.get(); v != nullptr; v = v->older.get()) {
    ++stats.freed;
  }
  if (stats.freed > 0 && slot.head == nullptr && has_primary_key() &&
      freed != nullptr) {
    auto it = pk_index_.find(EncodePkFromRow(freed->row));
    if (it != pk_index_.end() && it->second == id) pk_index_.erase(it);
  }
  return stats;
}

// ---------------------------------------------------------------------------
// Writer-view reads
// ---------------------------------------------------------------------------

Result<RowId> Table::LookupPk(const Row& key_values) const
    PHX_NO_THREAD_SAFETY_ANALYSIS {
  if (!has_primary_key()) {
    return Status::InvalidArgument("table '" + name_ + "' has no primary key");
  }
  std::string key = EncodeOrderedKey(key_values);
  auto it = pk_index_.find(key);
  if (it == pk_index_.end() || !HeadLive(slots_[it->second])) {
    return Status::NotFound("primary key not found in '" + name_ + "'");
  }
  return it->second;
}

Result<std::vector<RowId>> Table::ScanPkPrefix(
    const std::vector<common::Value>& prefix_values) const
    PHX_NO_THREAD_SAFETY_ANALYSIS {
  if (!has_primary_key()) {
    return Status::InvalidArgument("table '" + name_ + "' has no primary key");
  }
  if (prefix_values.empty() ||
      prefix_values.size() > pk_column_indexes_.size()) {
    return Status::InvalidArgument("bad PK prefix length");
  }
  std::string prefix = EncodeOrderedKey(prefix_values);
  std::vector<RowId> out;
  for (auto it = pk_index_.lower_bound(prefix); it != pk_index_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    if (HeadLive(slots_[it->second])) out.push_back(it->second);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Snapshot reads
// ---------------------------------------------------------------------------

bool Table::ReadVisible(RowId id, const Snapshot& snap, Row* out) const {
  common::MutexLock latch(&latch_);
  if (id >= slots_.size()) return false;
  const RowVersion* v = FindVisible(slots_[id], snap);
  if (v == nullptr) return false;
  *out = v->row;
  return true;
}

bool Table::LookupPkVisible(const Row& key_values, const Snapshot& snap,
                            Row* out) const {
  if (!has_primary_key()) return false;
  std::string key = EncodeOrderedKey(key_values);
  common::MutexLock latch(&latch_);
  auto it = pk_index_.find(key);
  if (it == pk_index_.end()) return false;
  const RowVersion* v = FindVisible(slots_[it->second], snap);
  if (v == nullptr) return false;
  *out = v->row;
  return true;
}

Result<std::vector<Row>> Table::ScanPkPrefixVisible(
    const std::vector<common::Value>& prefix_values,
    const Snapshot& snap) const {
  if (!has_primary_key()) {
    return Status::InvalidArgument("table '" + name_ + "' has no primary key");
  }
  if (prefix_values.empty() ||
      prefix_values.size() > pk_column_indexes_.size()) {
    return Status::InvalidArgument("bad PK prefix length");
  }
  std::string prefix = EncodeOrderedKey(prefix_values);
  std::vector<Row> out;
  common::MutexLock latch(&latch_);
  for (auto it = pk_index_.lower_bound(prefix); it != pk_index_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    const RowVersion* v = FindVisible(slots_[it->second], snap);
    if (v != nullptr) out.push_back(v->row);
  }
  return out;
}

bool Table::ScanVisibleBatch(RowId* cursor, const Snapshot& snap,
                             size_t max_rows,
                             std::vector<Row>* out) const {
  common::MutexLock latch(&latch_);
  RowId id = *cursor;
  size_t produced = 0;
  while (id < slots_.size() && produced < max_rows) {
    const RowVersion* v = FindVisible(slots_[id], snap);
    if (v != nullptr) {
      out->push_back(v->row);
      ++produced;
    }
    ++id;
  }
  *cursor = id;
  return id < slots_.size();
}

std::vector<Row> Table::SnapshotRowsAsOf(const Snapshot& snap) const {
  common::MutexLock latch(&latch_);
  std::vector<Row> out;
  out.reserve(live_count_);
  for (const RowSlot& slot : slots_) {
    const RowVersion* v = FindVisible(slot, snap);
    if (v != nullptr) out.push_back(v->row);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Maintenance
// ---------------------------------------------------------------------------

void Table::Clear() {
  common::MutexLock latch(&latch_);
  // Chains are freed iteratively to avoid deep recursive unique_ptr
  // destruction on long version chains.
  for (RowSlot& slot : slots_) {
    while (slot.head != nullptr) slot.head = std::move(slot.head->older);
  }
  slots_.clear();
  pk_index_.clear();
  live_count_ = 0;
}

size_t Table::ApproxLiveBytes() const {
  common::MutexLock latch(&latch_);
  size_t total = 0;
  for (const RowSlot& slot : slots_) {
    for (const RowVersion* v = slot.head.get(); v != nullptr;
         v = v->older.get()) {
      total += sizeof(RowVersion);
      for (const common::Value& val : v->row) {
        total += sizeof(common::Value);
        if (val.type() == common::ValueType::kString) {
          total += val.AsString().size();
        }
      }
    }
  }
  return total;
}

uint32_t Table::ContentDigest() const {
  common::MutexLock latch(&latch_);
  const Snapshot latest{Snapshot::kReadLatest, 0};
  common::BinaryWriter w;
  for (RowId id = 0; id < slots_.size(); ++id) {
    const RowVersion* v = FindVisible(slots_[id], latest);
    if (v == nullptr) continue;
    w.PutU64(id);
    w.PutRow(v->row);
  }
  return common::Crc32(w.data().data(), w.data().size());
}

uint32_t Table::LogicalDigest() const {
  common::MutexLock latch(&latch_);
  const Snapshot latest{Snapshot::kReadLatest, 0};
  common::BinaryWriter w;
  for (RowId id = 0; id < slots_.size(); ++id) {
    const RowVersion* v = FindVisible(slots_[id], latest);
    if (v == nullptr) continue;
    w.PutRow(v->row);
  }
  return common::Crc32(w.data().data(), w.data().size());
}

size_t Table::TotalVersionCount() const {
  common::MutexLock latch(&latch_);
  size_t total = 0;
  for (const RowSlot& slot : slots_) {
    for (const RowVersion* v = slot.head.get(); v != nullptr;
         v = v->older.get()) {
      ++total;
    }
  }
  return total;
}

}  // namespace phoenix::engine
