#include "engine/table.h"

#include "engine/key_encoding.h"

namespace phoenix::engine {

using common::Result;
using common::Row;
using common::Status;

Table::Table(std::string name, common::Schema schema,
             std::vector<std::string> primary_key, bool temporary)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      primary_key_(std::move(primary_key)),
      temporary_(temporary) {
  for (const std::string& col : primary_key_) {
    int idx = schema_.FindColumn(col);
    // A bad PK column is a caller bug; Catalog validates before constructing.
    if (idx >= 0) pk_column_indexes_.push_back(idx);
  }
}

std::string Table::EncodePkFromRow(const Row& row) const {
  std::string out;
  for (int idx : pk_column_indexes_) {
    AppendOrderedKey(row[static_cast<size_t>(idx)], &out);
  }
  return out;
}

Status Table::CheckPkUnique(const Row& row) const {
  if (!has_primary_key()) return Status::OK();
  std::string key = EncodePkFromRow(row);
  if (pk_index_.find(key) != pk_index_.end()) {
    return Status::ConstraintViolation("duplicate primary key in table '" +
                                       name_ + "'");
  }
  return Status::OK();
}

Result<RowId> Table::Insert(Row row) {
  PHX_RETURN_IF_ERROR(schema_.ValidateRow(row));
  PHX_RETURN_IF_ERROR(CheckPkUnique(row));
  RowId id = slots_.size();
  if (has_primary_key()) {
    pk_index_.emplace(EncodePkFromRow(row), id);
  }
  slots_.push_back(RowSlot{std::move(row), true});
  ++live_count_;
  return id;
}

Status Table::InsertBulk(std::vector<Row> rows) {
  for (Row& row : rows) {
    PHX_ASSIGN_OR_RETURN([[maybe_unused]] RowId id, Insert(std::move(row)));
  }
  return Status::OK();
}

Status Table::Delete(RowId id) {
  if (!IsLive(id)) {
    return Status::NotFound("row " + std::to_string(id) + " not live in '" +
                            name_ + "'");
  }
  if (has_primary_key()) {
    pk_index_.erase(EncodePkFromRow(slots_[id].row));
  }
  slots_[id].live = false;
  --live_count_;
  return Status::OK();
}

Status Table::Undelete(RowId id) {
  if (id >= slots_.size() || slots_[id].live) {
    return Status::InvalidArgument("slot " + std::to_string(id) +
                                   " is not a tombstone in '" + name_ + "'");
  }
  PHX_RETURN_IF_ERROR(CheckPkUnique(slots_[id].row));
  if (has_primary_key()) {
    pk_index_.emplace(EncodePkFromRow(slots_[id].row), id);
  }
  slots_[id].live = true;
  ++live_count_;
  return Status::OK();
}

Status Table::Update(RowId id, Row new_row) {
  if (!IsLive(id)) {
    return Status::NotFound("row " + std::to_string(id) + " not live in '" +
                            name_ + "'");
  }
  PHX_RETURN_IF_ERROR(schema_.ValidateRow(new_row));
  if (has_primary_key()) {
    std::string old_key = EncodePkFromRow(slots_[id].row);
    std::string new_key = EncodePkFromRow(new_row);
    if (old_key != new_key) {
      auto it = pk_index_.find(new_key);
      if (it != pk_index_.end()) {
        return Status::ConstraintViolation(
            "update would duplicate primary key in '" + name_ + "'");
      }
      pk_index_.erase(old_key);
      pk_index_.emplace(std::move(new_key), id);
    }
  }
  slots_[id].row = std::move(new_row);
  return Status::OK();
}

Result<RowId> Table::LookupPk(const Row& key_values) const {
  if (!has_primary_key()) {
    return Status::InvalidArgument("table '" + name_ + "' has no primary key");
  }
  std::string key = EncodeOrderedKey(key_values);
  auto it = pk_index_.find(key);
  if (it == pk_index_.end()) {
    return Status::NotFound("primary key not found in '" + name_ + "'");
  }
  return it->second;
}

Result<std::vector<RowId>> Table::ScanPkPrefix(
    const std::vector<common::Value>& prefix_values) const {
  if (!has_primary_key()) {
    return Status::InvalidArgument("table '" + name_ + "' has no primary key");
  }
  if (prefix_values.empty() ||
      prefix_values.size() > pk_column_indexes_.size()) {
    return Status::InvalidArgument("bad PK prefix length");
  }
  std::string prefix = EncodeOrderedKey(prefix_values);
  std::vector<RowId> out;
  for (auto it = pk_index_.lower_bound(prefix); it != pk_index_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.push_back(it->second);
  }
  return out;
}

std::vector<Row> Table::SnapshotRows() const {
  std::vector<Row> out;
  out.reserve(live_count_);
  for (const RowSlot& slot : slots_) {
    if (slot.live) out.push_back(slot.row);
  }
  return out;
}

void Table::Clear() {
  slots_.clear();
  pk_index_.clear();
  live_count_ = 0;
}

size_t Table::ApproxLiveBytes() const {
  size_t total = 0;
  for (const RowSlot& slot : slots_) {
    if (!slot.live) continue;
    total += sizeof(RowSlot);
    for (const common::Value& v : slot.row) {
      total += sizeof(common::Value);
      if (v.type() == common::ValueType::kString) total += v.AsString().size();
    }
  }
  return total;
}

}  // namespace phoenix::engine
