#include "engine/bound_expr.h"

#include <cmath>

#include "common/strings.h"
#include "engine/row_source.h"

namespace phoenix::engine {

using common::Row;
using common::Status;
using common::Value;
using common::ValueType;

Status SubqueryRuntime::EvaluateScalar() {
  if (scalar_evaluated) return Status::OK();
  if (plan == nullptr) return Status::Internal("subquery already consumed");
  PHX_ASSIGN_OR_RETURN(std::vector<Row> rows, DrainRowSource(plan.get()));
  plan.reset();
  if (rows.empty()) {
    scalar_value = Value::Null();
  } else if (rows.size() > 1) {
    return Status::InvalidArgument("scalar subquery returned " +
                                   std::to_string(rows.size()) + " rows");
  } else if (rows[0].empty()) {
    return Status::InvalidArgument("scalar subquery returned no columns");
  } else {
    scalar_value = rows[0][0];
  }
  scalar_evaluated = true;
  return Status::OK();
}

Status SubqueryRuntime::EvaluateSet() {
  if (set_evaluated) return Status::OK();
  if (plan == nullptr) return Status::Internal("subquery already consumed");
  PHX_ASSIGN_OR_RETURN(std::vector<Row> rows, DrainRowSource(plan.get()));
  plan.reset();
  for (Row& row : rows) {
    if (row.empty()) continue;
    if (row[0].is_null()) {
      set_has_null = true;
    } else {
      set_values.push_back(std::move(row[0]));
    }
  }
  set_evaluated = true;
  return Status::OK();
}

namespace {

bool IsNumericType(ValueType t) {
  return t == ValueType::kInt || t == ValueType::kDouble ||
         t == ValueType::kDate || t == ValueType::kBool;
}

Value EvalBinary(const BoundExpr& expr, const Row& row) {
  using sql::BinaryOp;
  const BinaryOp op = expr.binary_op;

  // Kleene AND/OR evaluate lazily.
  if (op == BinaryOp::kAnd || op == BinaryOp::kOr) {
    Value lhs = EvalBound(*expr.children[0], row);
    bool lhs_true = !lhs.is_null() && lhs.type() == ValueType::kBool &&
                    lhs.AsBool();
    bool lhs_false = !lhs.is_null() && lhs.type() == ValueType::kBool &&
                     !lhs.AsBool();
    if (op == BinaryOp::kAnd && lhs_false) return Value::Bool(false);
    if (op == BinaryOp::kOr && lhs_true) return Value::Bool(true);
    Value rhs = EvalBound(*expr.children[1], row);
    bool rhs_true = !rhs.is_null() && rhs.type() == ValueType::kBool &&
                    rhs.AsBool();
    bool rhs_false = !rhs.is_null() && rhs.type() == ValueType::kBool &&
                     !rhs.AsBool();
    if (op == BinaryOp::kAnd) {
      if (rhs_false) return Value::Bool(false);
      if (lhs_true && rhs_true) return Value::Bool(true);
      return Value::Null();  // unknown
    }
    if (rhs_true) return Value::Bool(true);
    if (lhs_false && rhs_false) return Value::Bool(false);
    return Value::Null();
  }

  Value lhs = EvalBound(*expr.children[0], row);
  Value rhs = EvalBound(*expr.children[1], row);

  // Comparisons: NULL operand -> NULL.
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe: {
      if (lhs.is_null() || rhs.is_null()) return Value::Null();
      int cmp = lhs.Compare(rhs);
      switch (op) {
        case BinaryOp::kEq: return Value::Bool(cmp == 0);
        case BinaryOp::kNe: return Value::Bool(cmp != 0);
        case BinaryOp::kLt: return Value::Bool(cmp < 0);
        case BinaryOp::kLe: return Value::Bool(cmp <= 0);
        case BinaryOp::kGt: return Value::Bool(cmp > 0);
        default: return Value::Bool(cmp >= 0);
      }
    }
    default:
      break;
  }

  if (lhs.is_null() || rhs.is_null()) return Value::Null();

  if (op == BinaryOp::kConcat) {
    if (lhs.type() == ValueType::kString && rhs.type() == ValueType::kString) {
      return Value::String(lhs.AsString() + rhs.AsString());
    }
    return Value::String(lhs.ToDisplayString() + rhs.ToDisplayString());
  }

  if (!IsNumericType(lhs.type()) || !IsNumericType(rhs.type())) {
    return Value::Null();  // arithmetic on strings — binder rejects; be safe
  }

  // Date arithmetic: DATE +/- INT days, DATE - DATE.
  if (lhs.type() == ValueType::kDate || rhs.type() == ValueType::kDate) {
    if (op == sql::BinaryOp::kAdd && lhs.type() == ValueType::kDate &&
        rhs.type() == ValueType::kInt) {
      return Value::Date(lhs.AsDate() + rhs.AsInt());
    }
    if (op == sql::BinaryOp::kSub && lhs.type() == ValueType::kDate) {
      if (rhs.type() == ValueType::kInt) {
        return Value::Date(lhs.AsDate() - rhs.AsInt());
      }
      if (rhs.type() == ValueType::kDate) {
        return Value::Int(lhs.AsDate() - rhs.AsDate());
      }
    }
    return Value::Null();
  }

  bool both_int =
      lhs.type() == ValueType::kInt && rhs.type() == ValueType::kInt;
  switch (op) {
    case BinaryOp::kAdd:
      if (both_int) return Value::Int(lhs.AsInt() + rhs.AsInt());
      return Value::Double(lhs.AsDouble() + rhs.AsDouble());
    case BinaryOp::kSub:
      if (both_int) return Value::Int(lhs.AsInt() - rhs.AsInt());
      return Value::Double(lhs.AsDouble() - rhs.AsDouble());
    case BinaryOp::kMul:
      if (both_int) return Value::Int(lhs.AsInt() * rhs.AsInt());
      return Value::Double(lhs.AsDouble() * rhs.AsDouble());
    case BinaryOp::kDiv: {
      // Division always yields DOUBLE (avoids silent integer truncation in
      // benchmark arithmetic).
      double denom = rhs.AsDouble();
      if (denom == 0.0) return Value::Null();
      return Value::Double(lhs.AsDouble() / denom);
    }
    case BinaryOp::kMod: {
      if (!both_int || rhs.AsInt() == 0) return Value::Null();
      return Value::Int(lhs.AsInt() % rhs.AsInt());
    }
    default:
      return Value::Null();
  }
}

Value EvalFunction(const BoundExpr& expr, const Row& row) {
  const std::string& fn = expr.function_name;
  auto arg = [&](size_t i) { return EvalBound(*expr.children[i], row); };

  if (fn == "ABS") {
    Value v = arg(0);
    if (v.is_null()) return v;
    if (v.type() == ValueType::kInt) return Value::Int(std::abs(v.AsInt()));
    return Value::Double(std::fabs(v.AsDouble()));
  }
  if (fn == "ROUND") {
    Value v = arg(0);
    if (v.is_null()) return v;
    int64_t digits = 0;
    if (expr.children.size() > 1) {
      Value d = arg(1);
      if (!d.is_null() && d.type() == ValueType::kInt) digits = d.AsInt();
    }
    double scale = std::pow(10.0, static_cast<double>(digits));
    return Value::Double(std::round(v.AsDouble() * scale) / scale);
  }
  if (fn == "UPPER" || fn == "LOWER") {
    Value v = arg(0);
    if (v.is_null() || v.type() != ValueType::kString) return Value::Null();
    return Value::String(fn == "UPPER" ? common::ToUpper(v.AsString())
                                       : common::ToLower(v.AsString()));
  }
  if (fn == "LENGTH" || fn == "LEN") {
    Value v = arg(0);
    if (v.is_null() || v.type() != ValueType::kString) return Value::Null();
    return Value::Int(static_cast<int64_t>(v.AsString().size()));
  }
  if (fn == "SUBSTRING" || fn == "SUBSTR") {
    Value s = arg(0);
    if (s.is_null() || s.type() != ValueType::kString ||
        expr.children.size() < 3) {
      return Value::Null();
    }
    Value start = arg(1);
    Value len = arg(2);
    if (start.is_null() || len.is_null()) return Value::Null();
    int64_t begin = std::max<int64_t>(start.AsInt() - 1, 0);  // SQL 1-based
    int64_t count = std::max<int64_t>(len.AsInt(), 0);
    const std::string& text = s.AsString();
    if (begin >= static_cast<int64_t>(text.size())) return Value::String("");
    return Value::String(text.substr(static_cast<size_t>(begin),
                                     static_cast<size_t>(count)));
  }
  if (fn == "YEAR" || fn == "MONTH" || fn == "DAY") {
    Value v = arg(0);
    if (v.is_null() || v.type() != ValueType::kDate) return Value::Null();
    int y, m, d;
    common::CivilFromDays(v.AsDate(), &y, &m, &d);
    if (fn == "YEAR") return Value::Int(y);
    if (fn == "MONTH") return Value::Int(m);
    return Value::Int(d);
  }
  if (fn == "COALESCE") {
    for (const auto& child : expr.children) {
      Value v = EvalBound(*child, row);
      if (!v.is_null()) return v;
    }
    return Value::Null();
  }
  return Value::Null();  // unknown scalar function — binder rejects earlier
}

}  // namespace

Value EvalBound(const BoundExpr& expr, const Row& row) {
  switch (expr.kind) {
    case BoundExpr::Kind::kConst:
      return expr.constant;
    case BoundExpr::Kind::kSlot:
      return row[static_cast<size_t>(expr.slot)];
    case BoundExpr::Kind::kUnary: {
      Value v = EvalBound(*expr.children[0], row);
      if (v.is_null()) return v;
      if (expr.unary_op == sql::UnaryOp::kNegate) {
        if (v.type() == ValueType::kInt) return Value::Int(-v.AsInt());
        if (v.type() == ValueType::kDouble) return Value::Double(-v.AsDouble());
        return Value::Null();
      }
      // NOT
      if (v.type() != ValueType::kBool) return Value::Null();
      return Value::Bool(!v.AsBool());
    }
    case BoundExpr::Kind::kBinary:
      return EvalBinary(expr, row);
    case BoundExpr::Kind::kFunction:
      return EvalFunction(expr, row);
    case BoundExpr::Kind::kCase: {
      size_t pairs = (expr.children.size() - (expr.has_else ? 1 : 0)) / 2;
      for (size_t i = 0; i < pairs; ++i) {
        Value cond = EvalBound(*expr.children[2 * i], row);
        if (!cond.is_null() && cond.type() == ValueType::kBool &&
            cond.AsBool()) {
          return EvalBound(*expr.children[2 * i + 1], row);
        }
      }
      if (expr.has_else) return EvalBound(*expr.children.back(), row);
      return Value::Null();
    }
    case BoundExpr::Kind::kBetween: {
      Value v = EvalBound(*expr.children[0], row);
      Value lo = EvalBound(*expr.children[1], row);
      Value hi = EvalBound(*expr.children[2], row);
      if (v.is_null() || lo.is_null() || hi.is_null()) return Value::Null();
      bool within = v.Compare(lo) >= 0 && v.Compare(hi) <= 0;
      return Value::Bool(expr.negated ? !within : within);
    }
    case BoundExpr::Kind::kInList: {
      Value v = EvalBound(*expr.children[0], row);
      if (v.is_null()) return Value::Null();
      bool saw_null = false;
      for (size_t i = 1; i < expr.children.size(); ++i) {
        Value item = EvalBound(*expr.children[i], row);
        if (item.is_null()) {
          saw_null = true;
          continue;
        }
        if (v.Compare(item) == 0) {
          return Value::Bool(!expr.negated);
        }
      }
      if (saw_null) return Value::Null();  // NOT IN with NULL is unknown
      return Value::Bool(expr.negated);
    }
    case BoundExpr::Kind::kInSubquery: {
      Value v = EvalBound(*expr.children[0], row);
      if (v.is_null()) return Value::Null();
      if (!expr.subquery->set_evaluated) {
        if (!expr.subquery->EvaluateSet().ok()) return Value::Null();
      }
      for (const Value& item : expr.subquery->set_values) {
        if (v.Compare(item) == 0) return Value::Bool(!expr.negated);
      }
      if (expr.subquery->set_has_null) return Value::Null();
      return Value::Bool(expr.negated);
    }
    case BoundExpr::Kind::kLike: {
      Value v = EvalBound(*expr.children[0], row);
      Value pattern = EvalBound(*expr.children[1], row);
      if (v.is_null() || pattern.is_null()) return Value::Null();
      if (v.type() != ValueType::kString ||
          pattern.type() != ValueType::kString) {
        return Value::Null();
      }
      bool match = common::SqlLikeMatch(v.AsString(), pattern.AsString());
      return Value::Bool(expr.negated ? !match : match);
    }
    case BoundExpr::Kind::kIsNull: {
      Value v = EvalBound(*expr.children[0], row);
      return Value::Bool(expr.negated ? !v.is_null() : v.is_null());
    }
    case BoundExpr::Kind::kSubquery: {
      if (!expr.subquery->scalar_evaluated) {
        if (!expr.subquery->EvaluateScalar().ok()) return Value::Null();
      }
      return expr.subquery->scalar_value;
    }
  }
  return Value::Null();
}

bool EvalPredicate(const BoundExpr& expr, const Row& row) {
  Value v = EvalBound(expr, row);
  return !v.is_null() && v.type() == ValueType::kBool && v.AsBool();
}

// ---------------------------------------------------------------------------
// Aggregates
// ---------------------------------------------------------------------------

void AggregateAccumulator::Add(const Row& row) {
  if (spec_->func == AggregateSpec::Func::kCountStar) {
    ++count_;
    return;
  }
  Value v = EvalBound(*spec_->arg, row);
  if (v.is_null()) return;  // SQL aggregates skip NULLs

  if (spec_->distinct) {
    size_t h = v.Hash();
    if (distinct_hashes_.count(h)) {
      // Hash hit — confirm with value comparison (collision safety).
      bool found = false;
      for (const Value& seen : distinct_values_) {
        if (seen.Compare(v) == 0) {
          found = true;
          break;
        }
      }
      if (found) return;
    }
    distinct_hashes_.insert(h);
    distinct_values_.push_back(v);
  }

  switch (spec_->func) {
    case AggregateSpec::Func::kCount:
      ++count_;
      break;
    case AggregateSpec::Func::kSum:
    case AggregateSpec::Func::kAvg:
      ++count_;
      if (v.type() == ValueType::kInt) {
        sum_int_ += v.AsInt();
      } else {
        saw_double_ = true;
        sum_double_ += v.AsDouble();
      }
      break;
    case AggregateSpec::Func::kMin:
      if (!has_value_ || v.Compare(extreme_) < 0) extreme_ = v;
      has_value_ = true;
      break;
    case AggregateSpec::Func::kMax:
      if (!has_value_ || v.Compare(extreme_) > 0) extreme_ = v;
      has_value_ = true;
      break;
    case AggregateSpec::Func::kCountStar:
      break;
  }
}

Value AggregateAccumulator::Finish() const {
  switch (spec_->func) {
    case AggregateSpec::Func::kCountStar:
    case AggregateSpec::Func::kCount:
      return Value::Int(count_);
    case AggregateSpec::Func::kSum:
      if (count_ == 0) return Value::Null();
      if (saw_double_) {
        return Value::Double(sum_double_ + static_cast<double>(sum_int_));
      }
      return Value::Int(sum_int_);
    case AggregateSpec::Func::kAvg: {
      if (count_ == 0) return Value::Null();
      double total = sum_double_ + static_cast<double>(sum_int_);
      return Value::Double(total / static_cast<double>(count_));
    }
    case AggregateSpec::Func::kMin:
    case AggregateSpec::Func::kMax:
      return has_value_ ? extreme_ : Value::Null();
  }
  return Value::Null();
}

}  // namespace phoenix::engine
