#ifndef PHOENIX_ENGINE_OPERATORS_H_
#define PHOENIX_ENGINE_OPERATORS_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/bound_expr.h"
#include "engine/row_source.h"
#include "engine/snapshot.h"
#include "engine/table.h"

namespace phoenix::engine {

/// Full scan of the rows visible to `snapshot`. Rows are read in short
/// latched batches (Table::ScanVisibleBatch), so the scan never blocks a
/// writer for more than one batch refill and holds no lock-manager locks.
/// Holding the SnapshotPtr pins the snapshot's timestamp against version GC
/// for the life of the cursor. Under the legacy locking path the snapshot is
/// read-latest and the caller's table-S lock provides the stability.
class ScanOp : public RowSource {
 public:
  ScanOp(TablePtr table, SnapshotPtr snapshot)
      : table_(std::move(table)), snapshot_(std::move(snapshot)) {}
  common::Result<bool> Next(common::Row* out) override;
  size_t width() const override { return table_->schema().num_columns(); }

 private:
  static constexpr size_t kBatchRows = 64;

  TablePtr table_;
  SnapshotPtr snapshot_;
  RowId cursor_ = 0;
  bool exhausted_ = false;
  std::vector<common::Row> buffer_;
  size_t buffer_pos_ = 0;
};

/// Emits a fixed set of rows (PK point lookups, VALUES, probe results).
class MaterializedOp : public RowSource {
 public:
  MaterializedOp(std::vector<common::Row> rows, size_t width)
      : rows_(std::move(rows)), width_(width) {}
  common::Result<bool> Next(common::Row* out) override;
  size_t width() const override { return width_; }

 private:
  std::vector<common::Row> rows_;
  size_t width_;
  size_t next_ = 0;
};

/// Produces nothing; stands in for a plan whose WHERE is constant-false
/// (Phoenix's compile-only metadata probe).
class EmptyOp : public RowSource {
 public:
  explicit EmptyOp(size_t width) : width_(width) {}
  common::Result<bool> Next(common::Row*) override { return false; }
  size_t width() const override { return width_; }

 private:
  size_t width_;
};

class FilterOp : public RowSource {
 public:
  FilterOp(RowSourcePtr child, BoundExprPtr predicate)
      : child_(std::move(child)), predicate_(std::move(predicate)) {}
  common::Result<bool> Next(common::Row* out) override;
  size_t width() const override { return child_->width(); }

 private:
  RowSourcePtr child_;
  BoundExprPtr predicate_;
};

class ProjectOp : public RowSource {
 public:
  ProjectOp(RowSourcePtr child, std::vector<BoundExprPtr> exprs)
      : child_(std::move(child)), exprs_(std::move(exprs)) {}
  common::Result<bool> Next(common::Row* out) override;
  size_t width() const override { return exprs_.size(); }

 private:
  RowSourcePtr child_;
  std::vector<BoundExprPtr> exprs_;
  common::Row scratch_;
};

class LimitOp : public RowSource {
 public:
  LimitOp(RowSourcePtr child, int64_t limit)
      : child_(std::move(child)), remaining_(limit) {}
  common::Result<bool> Next(common::Row* out) override;
  size_t width() const override { return child_->width(); }

 private:
  RowSourcePtr child_;
  int64_t remaining_;
};

/// Inner join, right side materialized. Optional residual condition is
/// evaluated over the concatenated row (left columns then right columns).
class NestedLoopJoinOp : public RowSource {
 public:
  NestedLoopJoinOp(RowSourcePtr left, RowSourcePtr right,
                   BoundExprPtr condition)
      : left_(std::move(left)),
        right_(std::move(right)),
        condition_(std::move(condition)),
        width_(left_->width() + right_->width()) {}
  common::Result<bool> Next(common::Row* out) override;
  size_t width() const override { return width_; }

 private:
  RowSourcePtr left_;
  RowSourcePtr right_;
  BoundExprPtr condition_;
  size_t width_;

  bool built_ = false;
  std::vector<common::Row> right_rows_;
  common::Row current_left_;
  bool have_left_ = false;
  size_t right_pos_ = 0;
};

/// Equi hash join (inner). Build side = right. Keys must be equal-length
/// expression lists over the respective inputs.
class HashJoinOp : public RowSource {
 public:
  HashJoinOp(RowSourcePtr left, RowSourcePtr right,
             std::vector<BoundExprPtr> left_keys,
             std::vector<BoundExprPtr> right_keys, BoundExprPtr residual)
      : left_(std::move(left)),
        right_(std::move(right)),
        left_keys_(std::move(left_keys)),
        right_keys_(std::move(right_keys)),
        residual_(std::move(residual)),
        width_(left_->width() + right_->width()) {}
  common::Result<bool> Next(common::Row* out) override;
  size_t width() const override { return width_; }

 private:
  common::Status Build();
  static std::string KeyOf(const std::vector<BoundExprPtr>& keys,
                           const common::Row& row, bool* has_null);

  RowSourcePtr left_;
  RowSourcePtr right_;
  std::vector<BoundExprPtr> left_keys_;
  std::vector<BoundExprPtr> right_keys_;
  BoundExprPtr residual_;
  size_t width_;

  bool built_ = false;
  std::unordered_map<std::string, std::vector<common::Row>> hash_table_;
  common::Row current_left_;
  const std::vector<common::Row>* matches_ = nullptr;
  size_t match_pos_ = 0;
};

/// Hash aggregation. Output row layout: [group exprs..., aggregates...].
/// With no GROUP BY, produces exactly one row (SQL scalar-aggregate rule).
class HashAggregateOp : public RowSource {
 public:
  HashAggregateOp(RowSourcePtr child, std::vector<BoundExprPtr> group_exprs,
                  std::vector<AggregateSpec> aggregates)
      : child_(std::move(child)),
        group_exprs_(std::move(group_exprs)),
        aggregates_(std::move(aggregates)) {}
  common::Result<bool> Next(common::Row* out) override;
  size_t width() const override {
    return group_exprs_.size() + aggregates_.size();
  }

 private:
  common::Status BuildGroups();

  RowSourcePtr child_;
  std::vector<BoundExprPtr> group_exprs_;
  std::vector<AggregateSpec> aggregates_;

  bool built_ = false;
  std::vector<common::Row> results_;
  size_t next_ = 0;
};

struct SortKey {
  BoundExprPtr expr;
  bool ascending = true;
};

class SortOp : public RowSource {
 public:
  SortOp(RowSourcePtr child, std::vector<SortKey> keys)
      : child_(std::move(child)), keys_(std::move(keys)) {}
  common::Result<bool> Next(common::Row* out) override;
  size_t width() const override { return child_->width(); }

 private:
  RowSourcePtr child_;
  std::vector<SortKey> keys_;
  bool built_ = false;
  std::vector<common::Row> rows_;
  size_t next_ = 0;
};

/// Hash-based DISTINCT preserving first-seen order.
class DistinctOp : public RowSource {
 public:
  explicit DistinctOp(RowSourcePtr child) : child_(std::move(child)) {}
  common::Result<bool> Next(common::Row* out) override;
  size_t width() const override { return child_->width(); }

 private:
  RowSourcePtr child_;
  std::unordered_map<std::string, bool> seen_;
};

}  // namespace phoenix::engine

#endif  // PHOENIX_ENGINE_OPERATORS_H_
