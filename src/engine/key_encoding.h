#ifndef PHOENIX_ENGINE_KEY_ENCODING_H_
#define PHOENIX_ENGINE_KEY_ENCODING_H_

#include <string>

#include "common/value.h"

namespace phoenix::engine {

/// Order-preserving key encoding for primary-key indexes: for two rows a, b
/// encoded column by column, memcmp(enc(a), enc(b)) sorts exactly like
/// column-wise Value::Compare. This is what makes PK *prefix* range scans a
/// simple map range — the engine's substitute for B-tree index ranges, used
/// by TPC-C's district-scoped statements so they take row locks instead of
/// table locks.
///
/// Layout per value: 1 type-order tag byte, then
///   NULL            -> nothing (tag alone; NULLs sort first)
///   BOOL            -> 1 byte
///   INT/DATE/DOUBLE -> 8 bytes, big-endian, sign-adjusted (numeric kinds
///                      share one tag so INT 3 == DOUBLE 3.0, matching
///                      SqlEquals; DATE keeps its own tag)
///   STRING          -> bytes with 0x00 -> 0x00 0xFF escaping, terminated
///                      by 0x00 0x01 (preserves order, self-delimiting)
void AppendOrderedKey(const common::Value& value, std::string* out);

/// Encodes a sequence of values (the PK columns, in PK order).
template <typename Iterable>
std::string EncodeOrderedKey(const Iterable& values) {
  std::string out;
  for (const common::Value& v : values) AppendOrderedKey(v, &out);
  return out;
}

}  // namespace phoenix::engine

#endif  // PHOENIX_ENGINE_KEY_ENCODING_H_
