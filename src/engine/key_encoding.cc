#include "engine/key_encoding.h"

#include <cstring>

namespace phoenix::engine {

using common::Value;
using common::ValueType;

namespace {

/// Type-order tags. NULL sorts first (matching Value::Compare); all numeric
/// kinds share one tag so cross-type numeric equality (SqlEquals) maps to
/// byte equality.
constexpr char kTagNull = 0x01;
constexpr char kTagNumeric = 0x02;
constexpr char kTagString = 0x03;

void AppendBigEndian(uint64_t bits, std::string* out) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    out->push_back(static_cast<char>((bits >> shift) & 0xff));
  }
}

/// Doubles ordered by value: flip all bits for negatives, flip the sign bit
/// for positives (the classic IEEE-754 total-order trick).
uint64_t OrderedDoubleBits(double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  if (bits & 0x8000000000000000ULL) {
    return ~bits;
  }
  return bits | 0x8000000000000000ULL;
}

}  // namespace

void AppendOrderedKey(const Value& value, std::string* out) {
  switch (value.type()) {
    case ValueType::kNull:
      out->push_back(kTagNull);
      return;
    case ValueType::kBool:
    case ValueType::kInt:
    case ValueType::kDate:
    case ValueType::kDouble: {
      out->push_back(kTagNumeric);
      // All numerics encode through the double total-order so INT 3,
      // DOUBLE 3.0 and DATE 3 compare/equate consistently with
      // Value::Compare. (Integers above 2^53 lose distinctness under this
      // scheme; primary keys in this engine stay far below that, and the
      // paper's workloads use small keys.)
      AppendBigEndian(OrderedDoubleBits(value.AsDouble()), out);
      return;
    }
    case ValueType::kString: {
      out->push_back(kTagString);
      for (char c : value.AsString()) {
        if (c == '\0') {
          out->push_back('\0');
          out->push_back('\xff');
        } else {
          out->push_back(c);
        }
      }
      out->push_back('\0');
      out->push_back('\x01');
      return;
    }
  }
}

}  // namespace phoenix::engine
