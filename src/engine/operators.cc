#include "engine/operators.h"

#include <algorithm>

#include "common/bytes.h"
#include "obs/metrics.h"

namespace phoenix::engine {

using common::Result;
using common::Row;
using common::Status;
using common::Value;

// Counts a produced row on the named per-operator counter. The registry
// lookup resolves once per call site; Add() is a relaxed shard increment and
// a no-op while obs is disabled.
#define PHX_COUNT_ROW(metric_name)                          \
  do {                                                      \
    if (::phoenix::obs::Enabled()) {                        \
      static ::phoenix::obs::Counter* const phx_row_count = \
          ::phoenix::obs::Registry::Global().counter(metric_name); \
      phx_row_count->Add(1);                                \
    }                                                       \
  } while (0)

Result<std::vector<Row>> DrainRowSource(RowSource* source) {
  std::vector<Row> out;
  Row row;
  while (true) {
    PHX_ASSIGN_OR_RETURN(bool more, source->Next(&row));
    if (!more) break;
    out.push_back(std::move(row));
    row.clear();
  }
  return out;
}

Result<bool> ScanOp::Next(Row* out) {
  while (buffer_pos_ >= buffer_.size()) {
    if (exhausted_) return false;
    buffer_.clear();
    buffer_pos_ = 0;
    exhausted_ =
        !table_->ScanVisibleBatch(&cursor_, *snapshot_, kBatchRows, &buffer_);
  }
  *out = std::move(buffer_[buffer_pos_++]);
  PHX_COUNT_ROW("engine.rows.scan");
  return true;
}

Result<bool> MaterializedOp::Next(Row* out) {
  if (next_ >= rows_.size()) return false;
  *out = std::move(rows_[next_++]);
  PHX_COUNT_ROW("engine.rows.materialized");
  return true;
}

Result<bool> FilterOp::Next(Row* out) {
  while (true) {
    PHX_ASSIGN_OR_RETURN(bool more, child_->Next(out));
    if (!more) return false;
    if (EvalPredicate(*predicate_, *out)) {
      PHX_COUNT_ROW("engine.rows.filter");
      return true;
    }
  }
}

Result<bool> ProjectOp::Next(Row* out) {
  PHX_ASSIGN_OR_RETURN(bool more, child_->Next(&scratch_));
  if (!more) return false;
  out->clear();
  out->reserve(exprs_.size());
  for (const BoundExprPtr& e : exprs_) {
    out->push_back(EvalBound(*e, scratch_));
  }
  PHX_COUNT_ROW("engine.rows.project");
  return true;
}

Result<bool> LimitOp::Next(Row* out) {
  if (remaining_ <= 0) return false;
  PHX_ASSIGN_OR_RETURN(bool more, child_->Next(out));
  if (!more) return false;
  --remaining_;
  PHX_COUNT_ROW("engine.rows.limit");
  return true;
}

Result<bool> NestedLoopJoinOp::Next(Row* out) {
  if (!built_) {
    PHX_ASSIGN_OR_RETURN(right_rows_, DrainRowSource(right_.get()));
    built_ = true;
  }
  while (true) {
    if (!have_left_) {
      PHX_ASSIGN_OR_RETURN(bool more, left_->Next(&current_left_));
      if (!more) return false;
      have_left_ = true;
      right_pos_ = 0;
    }
    while (right_pos_ < right_rows_.size()) {
      const Row& right_row = right_rows_[right_pos_++];
      out->clear();
      out->reserve(width_);
      out->insert(out->end(), current_left_.begin(), current_left_.end());
      out->insert(out->end(), right_row.begin(), right_row.end());
      if (condition_ == nullptr || EvalPredicate(*condition_, *out)) {
        PHX_COUNT_ROW("engine.rows.join.nl");
        return true;
      }
    }
    have_left_ = false;
  }
}

std::string HashJoinOp::KeyOf(const std::vector<BoundExprPtr>& keys,
                              const Row& row, bool* has_null) {
  common::BinaryWriter w;
  *has_null = false;
  for (const BoundExprPtr& key : keys) {
    Value v = EvalBound(*key, row);
    if (v.is_null()) {
      *has_null = true;
      return std::string();
    }
    // Normalize numerics so INT 3 joins DOUBLE 3.0 (SqlEquals semantics).
    if (v.type() == common::ValueType::kInt ||
        v.type() == common::ValueType::kBool) {
      v = Value::Double(v.AsDouble());
    }
    w.PutValue(v);
  }
  const auto& bytes = w.data();
  return std::string(reinterpret_cast<const char*>(bytes.data()),
                     bytes.size());
}

Status HashJoinOp::Build() {
  Row row;
  while (true) {
    PHX_ASSIGN_OR_RETURN(bool more, right_->Next(&row));
    if (!more) break;
    bool has_null = false;
    std::string key = KeyOf(right_keys_, row, &has_null);
    if (has_null) continue;  // NULL keys never join
    hash_table_[std::move(key)].push_back(std::move(row));
    row.clear();
  }
  built_ = true;
  return Status::OK();
}

Result<bool> HashJoinOp::Next(Row* out) {
  if (!built_) PHX_RETURN_IF_ERROR(Build());
  while (true) {
    if (matches_ != nullptr) {
      while (match_pos_ < matches_->size()) {
        const Row& right_row = (*matches_)[match_pos_++];
        out->clear();
        out->reserve(width_);
        out->insert(out->end(), current_left_.begin(), current_left_.end());
        out->insert(out->end(), right_row.begin(), right_row.end());
        if (residual_ == nullptr || EvalPredicate(*residual_, *out)) {
          PHX_COUNT_ROW("engine.rows.join.hash");
          return true;
        }
      }
      matches_ = nullptr;
    }
    PHX_ASSIGN_OR_RETURN(bool more, left_->Next(&current_left_));
    if (!more) return false;
    bool has_null = false;
    std::string key = KeyOf(left_keys_, current_left_, &has_null);
    if (has_null) continue;
    auto it = hash_table_.find(key);
    if (it == hash_table_.end()) continue;
    matches_ = &it->second;
    match_pos_ = 0;
  }
}

Status HashAggregateOp::BuildGroups() {
  struct GroupState {
    Row key_values;
    std::vector<AggregateAccumulator> accumulators;
  };
  std::unordered_map<std::string, GroupState> groups;
  // Preserve first-seen group order for deterministic output.
  std::vector<std::string> order;

  Row row;
  while (true) {
    PHX_ASSIGN_OR_RETURN(bool more, child_->Next(&row));
    if (!more) break;
    common::BinaryWriter w;
    Row key_values;
    key_values.reserve(group_exprs_.size());
    for (const BoundExprPtr& g : group_exprs_) {
      Value v = EvalBound(*g, row);
      w.PutValue(v);
      key_values.push_back(std::move(v));
    }
    const auto& bytes = w.data();
    std::string key(reinterpret_cast<const char*>(bytes.data()),
                    bytes.size());
    auto it = groups.find(key);
    if (it == groups.end()) {
      GroupState state;
      state.key_values = std::move(key_values);
      state.accumulators.reserve(aggregates_.size());
      for (const AggregateSpec& spec : aggregates_) {
        state.accumulators.emplace_back(&spec);
      }
      it = groups.emplace(key, std::move(state)).first;
      order.push_back(key);
    }
    for (AggregateAccumulator& acc : it->second.accumulators) {
      acc.Add(row);
    }
  }

  if (groups.empty() && group_exprs_.empty()) {
    // Scalar aggregate over an empty input: one row of "empty" aggregates.
    Row result;
    result.reserve(aggregates_.size());
    for (const AggregateSpec& spec : aggregates_) {
      AggregateAccumulator acc(&spec);
      result.push_back(acc.Finish());
    }
    results_.push_back(std::move(result));
  } else {
    results_.reserve(groups.size());
    for (const std::string& key : order) {
      GroupState& state = groups.at(key);
      Row result = std::move(state.key_values);
      for (const AggregateAccumulator& acc : state.accumulators) {
        result.push_back(acc.Finish());
      }
      results_.push_back(std::move(result));
    }
  }
  built_ = true;
  return Status::OK();
}

Result<bool> HashAggregateOp::Next(Row* out) {
  if (!built_) PHX_RETURN_IF_ERROR(BuildGroups());
  if (next_ >= results_.size()) return false;
  *out = std::move(results_[next_++]);
  PHX_COUNT_ROW("engine.rows.agg");
  return true;
}

Result<bool> SortOp::Next(Row* out) {
  if (!built_) {
    PHX_ASSIGN_OR_RETURN(rows_, DrainRowSource(child_.get()));
    std::stable_sort(rows_.begin(), rows_.end(),
                     [this](const Row& a, const Row& b) {
                       for (const SortKey& key : keys_) {
                         Value va = EvalBound(*key.expr, a);
                         Value vb = EvalBound(*key.expr, b);
                         int cmp = va.Compare(vb);
                         if (cmp != 0) {
                           return key.ascending ? cmp < 0 : cmp > 0;
                         }
                       }
                       return false;
                     });
    built_ = true;
  }
  if (next_ >= rows_.size()) return false;
  *out = std::move(rows_[next_++]);
  PHX_COUNT_ROW("engine.rows.sort");
  return true;
}

Result<bool> DistinctOp::Next(Row* out) {
  while (true) {
    PHX_ASSIGN_OR_RETURN(bool more, child_->Next(out));
    if (!more) return false;
    common::BinaryWriter w;
    w.PutRow(*out);
    const auto& bytes = w.data();
    std::string key(reinterpret_cast<const char*>(bytes.data()),
                    bytes.size());
    if (seen_.emplace(std::move(key), true).second) {
      PHX_COUNT_ROW("engine.rows.distinct");
      return true;
    }
  }
}

}  // namespace phoenix::engine
