#include "engine/coordinator.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <fstream>
#include <limits>

#include "common/strings.h"
#include "obs/metrics.h"
#include "sql/parser.h"

namespace phoenix::engine {

using common::Result;
using common::Row;
using common::Schema;
using common::Status;
using common::Value;

namespace {

int PopCount(uint64_t mask) {
  int n = 0;
  while (mask != 0) {
    n += static_cast<int>(mask & 1);
    mask >>= 1;
  }
  return n;
}

/// Strips the per-engine result-cache metadata: at PHOENIX_SHARDS > 1 there
/// is no global invalidation clock (each shard has its own commit-timestamp
/// domain), so the coordinator never vouches for cacheability — the client
/// result cache stays dark, like it does under PHOENIX_MVCC=0.
void Scrub(StatementOutcome* out, uint64_t mask) {
  out->cacheable = false;
  out->snapshot_ts = 0;
  out->read_tables.clear();
  out->write_tables.clear();
  out->shard_mask = mask;
}

std::string ShardDownMessage(int shard) {
  return "shard " + std::to_string(shard) + " unavailable";
}

}  // namespace

// ---------------------------------------------------------------------------
// DecisionLog
// ---------------------------------------------------------------------------

DecisionLog::~DecisionLog() {
  if (fd_ >= 0) ::close(fd_);
}

Status DecisionLog::Open(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  committed_.clear();
  {
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
      if (line.size() > 2 && line[0] == 'C' && line[1] == ' ') {
        committed_.insert(line.substr(2));
      }
    }
  }
  if (fd_ >= 0) ::close(fd_);
  fd_ = ::open(path.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
  if (fd_ < 0) {
    return Status::IoError("cannot open decision log: " + path);
  }
  return Status::OK();
}

Status DecisionLog::LogCommit(const std::string& gtid) {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return Status::IoError("decision log not open");
  if (committed_.count(gtid) > 0) return Status::OK();
  std::string line = "C " + gtid + "\n";
  const char* data = line.data();
  size_t left = line.size();
  while (left > 0) {
    ssize_t n = ::write(fd_, data, left);
    if (n < 0) return Status::IoError("decision log write failed");
    data += n;
    left -= static_cast<size_t>(n);
  }
  if (::fsync(fd_) != 0) {
    return Status::IoError("decision log fsync failed");
  }
  committed_.insert(gtid);
  return Status::OK();
}

bool DecisionLog::IsCommitted(const std::string& gtid) const {
  std::lock_guard<std::mutex> lock(mu_);
  return committed_.count(gtid) > 0;
}

// ---------------------------------------------------------------------------
// CoordinatorSession
// ---------------------------------------------------------------------------

CoordinatorSession::CoordinatorSession(SessionId id,
                                       std::vector<Database*> shards,
                                       ShardRouter* router,
                                       DecisionLog* decisions,
                                       std::string gtid_prefix,
                                       size_t send_buffer_bytes)
    : id_(id),
      dbs_(std::move(shards)),
      router_(router),
      decisions_(decisions),
      gtid_prefix_(std::move(gtid_prefix)),
      send_buffer_bytes_(send_buffer_bytes) {
  inner_.resize(dbs_.size());
  began_.assign(dbs_.size(), 0);
  wrote_.assign(dbs_.size(), 0);
}

CoordinatorSession::~CoordinatorSession() {
  if (abandoned_) return;
  // Inner sessions roll back their open transactions and drop their temp
  // state per shard as they destruct. Shards that crashed already had their
  // inner session abandoned in OnShardCrash, so no dangling pointers here.
  cursors_.clear();
  inner_.clear();
}

void CoordinatorSession::Abandon() {
  for (auto& s : inner_) {
    if (s != nullptr) s->Abandon();
  }
  inner_.clear();
  cursors_.clear();
  in_txn_ = false;
  lost_shard_ = -1;
  abandoned_ = true;
}

void CoordinatorSession::OnShardCrash(int shard) {
  if (shard < 0 || shard >= shard_count()) return;
  if (static_cast<size_t>(shard) < inner_.size() &&
      inner_[shard] != nullptr) {
    inner_[shard]->Abandon();
    inner_[shard].reset();
  }
  for (auto& [id, cc] : cursors_) {
    // Passthrough cursors on the crashed shard died with its volatile
    // state. Tombstone them (don't erase): fetches must keep answering
    // kShardUnavailable — a recoverable signal the Phoenix driver masks by
    // reinstalling the statement — instead of a terminal NotFound.
    // Materialized (merged) cursors survive: their rows are already here.
    if (!cc.merged && cc.shard == shard) cc.lost = true;
  }
  if (in_txn_ && began_[shard]) lost_shard_ = shard;
  began_[shard] = 0;
  wrote_[shard] = 0;
}

Result<Session*> CoordinatorSession::ShardSession(int shard) {
  if (dbs_[shard]->is_down()) {
    return Status::ShardUnavailable(ShardDownMessage(shard));
  }
  if (inner_[shard] == nullptr) {
    inner_[shard] =
        std::make_unique<Session>(id_, dbs_[shard], send_buffer_bytes_);
  }
  return inner_[shard].get();
}

Status CoordinatorSession::EnsureBegan(int shard) {
  if (!in_txn_ || began_[shard]) return Status::OK();
  PHX_ASSIGN_OR_RETURN(Session * s, ShardSession(shard));
  auto res = s->Execute("BEGIN TRANSACTION");
  if (!res.ok()) return res.status();
  began_[shard] = 1;
  return Status::OK();
}

std::string CoordinatorSession::NextGtid() {
  // The server's prefix already carries its start instant and this session's
  // id — appending a per-session counter makes the gtid globally unique
  // across sessions AND server restarts (the decision log is append-only).
  return gtid_prefix_ + std::to_string(++gtid_seq_);
}

Status CoordinatorSession::CheckTxnPoisoned() {
  if (!in_txn_ || lost_shard_ < 0) return Status::OK();
  int lost = lost_shard_;
  RollbackAll();
  return Status::ShardUnavailable(ShardDownMessage(lost));
}

void CoordinatorSession::AbortGlobalTxn() { RollbackAll().ok(); }

Status CoordinatorSession::RollbackAll() {
  for (int i = 0; i < shard_count(); ++i) {
    if (!began_[i]) continue;
    if (inner_[i] != nullptr && !dbs_[i]->is_down()) {
      inner_[i]->Execute("ROLLBACK");  // idempotent; best effort
    }
    began_[i] = 0;
    wrote_[i] = 0;
  }
  in_txn_ = false;
  lost_shard_ = -1;
  return Status::OK();
}

Status CoordinatorSession::CommitAll() {
  if (lost_shard_ >= 0) {
    int lost = lost_shard_;
    RollbackAll();
    return Status::ShardUnavailable(ShardDownMessage(lost));
  }
  std::vector<int> writers, readers;
  for (int i = 0; i < shard_count(); ++i) {
    if (!began_[i]) continue;
    (wrote_[i] ? writers : readers).push_back(i);
  }
  auto clear = [this] {
    std::fill(began_.begin(), began_.end(), 0);
    std::fill(wrote_.begin(), wrote_.end(), 0);
    in_txn_ = false;
    lost_shard_ = -1;
  };

  if (writers.size() <= 1) {
    // Single-writer (or read-only) transaction: a plain per-shard COMMIT is
    // atomic — only one shard's WAL carries redo.
    Status st;
    if (!writers.empty()) {
      auto s = ShardSession(writers[0]);
      if (!s.ok()) {
        st = s.status();
      } else {
        auto res = (*s)->Execute("COMMIT");
        if (!res.ok()) st = res.status();
      }
    }
    for (int r : readers) {
      if (inner_[r] == nullptr || dbs_[r]->is_down()) continue;
      inner_[r]->Execute(st.ok() ? "COMMIT" : "ROLLBACK");
    }
    clear();
    return st;
  }

  // Two or more writers: prepare everywhere, then durably record the commit
  // decision at the coordinator, then commit each shard. A shard that dies
  // between decision and CommitPrepared settles during its Recover() via
  // the prepared_resolver consulting this decision log.
  std::string gtid = NextGtid();
  std::vector<int> prepared;
  for (int w : writers) {
    auto s = ShardSession(w);
    Status st = s.ok() ? (*s)->PrepareTxn(gtid) : s.status();
    if (!st.ok()) {
      for (int p : prepared) dbs_[p]->RollbackPrepared(gtid).ok();
      for (int i : writers) {
        bool was_prepared =
            std::find(prepared.begin(), prepared.end(), i) != prepared.end();
        if (i == w || was_prepared) continue;
        if (inner_[i] != nullptr && !dbs_[i]->is_down()) {
          inner_[i]->Execute("ROLLBACK");
        }
      }
      for (int r : readers) {
        if (inner_[r] != nullptr && !dbs_[r]->is_down()) {
          inner_[r]->Execute("ROLLBACK");
        }
      }
      clear();
      return st;
    }
    prepared.push_back(w);
  }

  Status decision = decisions_->LogCommit(gtid);
  if (!decision.ok()) {
    // No durable decision -> presumed abort everywhere.
    for (int p : prepared) dbs_[p]->RollbackPrepared(gtid).ok();
    for (int r : readers) {
      if (inner_[r] != nullptr && !dbs_[r]->is_down()) {
        inner_[r]->Execute("ROLLBACK");
      }
    }
    clear();
    return decision;
  }
  static obs::Counter* two_pc =
      obs::Registry::Global().counter("phx.shard.2pc.commits");
  two_pc->Add();

  for (int w : writers) {
    if (dbs_[w]->is_down()) continue;  // Recover() settles from the log
    // kNotFound = already settled (e.g. the shard recovered in between);
    // the decision is durable, so any other failure also resolves forward.
    dbs_[w]->CommitPrepared(gtid).ok();
  }
  for (int r : readers) {
    if (inner_[r] == nullptr || dbs_[r]->is_down()) continue;
    inner_[r]->Execute("COMMIT");
  }
  clear();
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

Result<StatementOutcome> CoordinatorSession::Execute(const std::string& sql,
                                                     const ParamMap* params) {
  PHX_RETURN_IF_ERROR(CheckTxnPoisoned());
  PHX_ASSIGN_OR_RETURN(std::vector<sql::StatementPtr> statements,
                       sql::ParseScript(sql));
  if (statements.empty()) {
    return Status::InvalidArgument("empty SQL request");
  }

  // Fast path: a script of plain DML/SELECT (plus balanced BEGIN..COMMIT)
  // whose statements all route to one shard forwards verbatim — the inner
  // engine session handles transactions, cursors and bundle semantics
  // exactly as the unsharded server would.
  if (!in_txn_) {
    int target = -1;
    int depth = 0;
    bool forwardable = true;
    for (const auto& stmt : statements) {
      switch (stmt->kind()) {
        case sql::StatementKind::kBegin:
          if (depth != 0) forwardable = false;
          ++depth;
          break;
        case sql::StatementKind::kCommit:
        case sql::StatementKind::kRollback:
          if (depth == 0) forwardable = false;
          --depth;
          break;
        case sql::StatementKind::kSelect:
        case sql::StatementKind::kInsert:
        case sql::StatementKind::kUpdate:
        case sql::StatementKind::kDelete: {
          auto route = router_->Route(*stmt, temp_tables_, params);
          if (!route.ok() ||
              route->kind != RouteDecision::Kind::kSingleShard ||
              (target >= 0 && route->shard != target)) {
            forwardable = false;
          } else {
            target = route->shard;
          }
          break;
        }
        default:
          forwardable = false;  // DDL/EXEC: per-statement path below
          break;
      }
      if (!forwardable) break;
    }
    if (forwardable && depth == 0 && target >= 0) {
      PHX_ASSIGN_OR_RETURN(Session * s, ShardSession(target));
      auto res = s->Execute(sql, params);
      if (!res.ok()) return res.status();
      StatementOutcome out = std::move(res).value();
      if (s->in_transaction()) {
        // Defensive: adopt an unexpectedly open inner transaction so the
        // coordinator's view never diverges from the shard's.
        in_txn_ = true;
        began_[target] = 1;
        wrote_[target] = 1;
      }
      if (out.is_query) {
        CursorId cid = next_cursor_++;
        CoordCursor cc;
        cc.merged = false;
        cc.shard = target;
        cc.inner = out.cursor;
        cc.schema = out.schema;
        cursors_.emplace(cid, std::move(cc));
        out.cursor = cid;
      }
      uint64_t mask = uint64_t{1} << target;
      Scrub(&out, mask);
      static obs::Histogram* fanout =
          obs::Registry::Global().histogram("phx.shard.fanout");
      fanout->Record(1);
      obs::Registry::Global()
          .counter("engine.shard." + std::to_string(target) + ".statements")
          ->Add();
      return out;
    }
  }

  StatementOutcome last;
  uint64_t mask_acc = 0;
  const std::string* verbatim = statements.size() == 1 ? &sql : nullptr;
  for (const auto& stmt : statements) {
    PHX_ASSIGN_OR_RETURN(last, ExecuteOne(*stmt, verbatim, params));
    mask_acc |= last.shard_mask;
  }
  last.shard_mask = mask_acc;
  return last;
}

Result<StatementOutcome> CoordinatorSession::ExecuteOne(
    const sql::Statement& stmt, const std::string* verbatim,
    const ParamMap* params) {
  PHX_RETURN_IF_ERROR(CheckTxnPoisoned());
  StatementOutcome out;

  switch (stmt.kind()) {
    case sql::StatementKind::kBegin:
      if (in_txn_) {
        return Status::InvalidArgument("transaction already in progress");
      }
      // Shard transactions begin lazily on first touch.
      in_txn_ = true;
      return out;

    case sql::StatementKind::kCommit:
      if (!in_txn_) {
        return Status::InvalidArgument("COMMIT with no open transaction");
      }
      PHX_RETURN_IF_ERROR(CommitAll());
      return out;

    case sql::StatementKind::kRollback:
      if (!in_txn_) return out;  // idempotent, like the engine
      PHX_RETURN_IF_ERROR(RollbackAll());
      return out;

    case sql::StatementKind::kExec: {
      const auto& exec = static_cast<const sql::ExecStmt&>(stmt);
      if (common::EqualsIgnoreCase(exec.procedure_name,
                                   "sys_advance_cursor")) {
        if (exec.arguments.size() != 2 ||
            exec.arguments[0]->kind != sql::ExprKind::kLiteral ||
            exec.arguments[1]->kind != sql::ExprKind::kLiteral) {
          return Status::InvalidArgument(
              "usage: EXEC sys_advance_cursor <cursor_id>, <count>");
        }
        CursorId cursor =
            static_cast<CursorId>(exec.arguments[0]->literal.AsInt());
        uint64_t count =
            static_cast<uint64_t>(exec.arguments[1]->literal.AsInt());
        PHX_ASSIGN_OR_RETURN(uint64_t skipped, AdvanceCursor(cursor, count));
        out.rows_affected = static_cast<int64_t>(skipped);
        auto it = cursors_.find(cursor);
        if (it != cursors_.end() && !it->second.merged) {
          out.shard_mask = uint64_t{1} << it->second.shard;
        }
        return out;
      }
      if (common::EqualsIgnoreCase(exec.procedure_name, "sys_shard_ping")) {
        // Scoped-recovery probe: succeeds iff the named shard serves.
        if (exec.arguments.size() != 1 ||
            exec.arguments[0]->kind != sql::ExprKind::kLiteral) {
          return Status::InvalidArgument(
              "usage: EXEC sys_shard_ping <shard>");
        }
        int shard = static_cast<int>(exec.arguments[0]->literal.AsInt());
        if (shard < 0 || shard >= shard_count()) {
          return Status::InvalidArgument("shard index out of range");
        }
        if (dbs_[shard]->is_down()) {
          return Status::ShardUnavailable(ShardDownMessage(shard));
        }
        out.rows_affected = 0;
        out.shard_mask = uint64_t{1} << shard;
        return out;
      }
      break;  // user procedure: routed below (and rejected there)
    }

    default:
      break;
  }

  PHX_ASSIGN_OR_RETURN(RouteDecision d,
                       router_->Route(stmt, temp_tables_, params));

  Result<StatementOutcome> res = [&]() -> Result<StatementOutcome> {
    switch (d.kind) {
      case RouteDecision::Kind::kSingleShard:
        return ExecSingle(d.shard, stmt, verbatim, params);
      case RouteDecision::Kind::kFanoutRead:
        return ExecFanout(static_cast<const sql::SelectStmt&>(stmt), d,
                          params);
      case RouteDecision::Kind::kBroadcastWrite:
        return ExecBroadcast(stmt, /*ddl=*/false, params);
      case RouteDecision::Kind::kBroadcastDdl:
        return ExecBroadcast(stmt, /*ddl=*/true, params);
      case RouteDecision::Kind::kScatterInsert:
        return ExecScatter(d);
      case RouteDecision::Kind::kInsertSelect:
        return ExecInsertSelect(static_cast<const sql::InsertStmt&>(stmt),
                                params);
    }
    return Status::Internal("unhandled route kind");
  }();
  if (!res.ok()) return res.status();

  NoteDdl(stmt);

  static obs::Histogram* fanout =
      obs::Registry::Global().histogram("phx.shard.fanout");
  fanout->Record(static_cast<uint64_t>(PopCount(res->shard_mask)));
  for (int i = 0; i < shard_count(); ++i) {
    if ((res->shard_mask >> i) & 1) {
      obs::Registry::Global()
          .counter("engine.shard." + std::to_string(i) + ".statements")
          ->Add();
    }
  }
  return res;
}

void CoordinatorSession::NoteDdl(const sql::Statement& stmt) {
  switch (stmt.kind()) {
    case sql::StatementKind::kCreateTable: {
      const auto& ct = static_cast<const sql::CreateTableStmt&>(stmt);
      if (ct.temporary) {
        temp_tables_.insert(common::ToLower(ct.table_name));
      } else {
        router_->RegisterCreate(ct);
      }
      break;
    }
    case sql::StatementKind::kDropTable: {
      const auto& dt = static_cast<const sql::DropTableStmt&>(stmt);
      std::string lower = common::ToLower(dt.table_name);
      if (temp_tables_.erase(lower) == 0) router_->Unregister(lower);
      break;
    }
    default:
      break;
  }
}

Result<StatementOutcome> CoordinatorSession::ExecSingle(
    int shard, const sql::Statement& stmt, const std::string* verbatim,
    const ParamMap* params) {
  auto session = ShardSession(shard);
  Status pre = session.ok() ? EnsureBegan(shard) : session.status();
  if (!pre.ok()) {
    if (in_txn_) AbortGlobalTxn();
    return pre;
  }
  std::string sql = verbatim != nullptr ? *verbatim : stmt.ToSql();
  auto res = (*session)->Execute(sql, params);
  if (!res.ok()) {
    // The inner engine aborted its local transaction on statement failure;
    // mirror that globally (a transaction is all-shards-or-nothing).
    if (in_txn_) AbortGlobalTxn();
    return res.status();
  }
  StatementOutcome out = std::move(res).value();
  if (in_txn_ && stmt.kind() != sql::StatementKind::kSelect) {
    wrote_[shard] = 1;
  }
  if (out.is_query) {
    CursorId cid = next_cursor_++;
    CoordCursor cc;
    cc.merged = false;
    cc.shard = shard;
    cc.inner = out.cursor;
    cc.schema = out.schema;
    cursors_.emplace(cid, std::move(cc));
    out.cursor = cid;
  }
  Scrub(&out, uint64_t{1} << shard);
  return out;
}

Result<std::vector<Row>> CoordinatorSession::CollectShardRows(
    int shard, const std::string& sql, const ParamMap* params,
    Schema* schema) {
  auto session = ShardSession(shard);
  Status pre = session.ok() ? EnsureBegan(shard) : session.status();
  if (!pre.ok()) return pre;
  auto res = (*session)->Execute(sql, params);
  if (!res.ok()) return res.status();
  StatementOutcome out = std::move(res).value();
  if (!out.is_query) {
    return Status::Internal("expected a query while gathering shard rows");
  }
  if (schema != nullptr) *schema = out.schema;
  std::vector<Row> rows;
  for (;;) {
    auto fetched =
        (*session)->Fetch(out.cursor, std::numeric_limits<size_t>::max());
    if (!fetched.ok()) return fetched.status();
    for (Row& r : fetched->rows) rows.push_back(std::move(r));
    if (fetched->done) break;
  }
  (*session)->CloseCursor(out.cursor).ok();
  return rows;
}

Status CoordinatorSession::FanoutCollect(const sql::SelectStmt& stmt,
                                         const RouteDecision& d,
                                         const ParamMap* params,
                                         Schema* schema,
                                         std::vector<Row>* rows) {
  // Partial fan-out answers are never served: every shard must be up.
  for (int i = 0; i < shard_count(); ++i) {
    if (dbs_[i]->is_down()) {
      return Status::ShardUnavailable(ShardDownMessage(i));
    }
  }
  std::string sql = stmt.ToSql();
  std::vector<std::vector<Row>> per_shard(shard_count());
  for (int i = 0; i < shard_count(); ++i) {
    Schema shard_schema;
    auto collected = CollectShardRows(i, sql, params, &shard_schema);
    if (!collected.ok()) {
      if (in_txn_) AbortGlobalTxn();
      return collected.status();
    }
    per_shard[i] = std::move(collected).value();
    if (i == 0 && schema != nullptr) *schema = std::move(shard_schema);
  }

  if (!d.aggs.empty()) {
    // Each shard returned one partial row; combine column-wise.
    Row acc;
    for (int i = 0; i < shard_count(); ++i) {
      if (per_shard[i].size() != 1) {
        return Status::Internal("fan-out aggregate returned != 1 row");
      }
      Row& r = per_shard[i][0];
      if (acc.empty()) {
        acc = std::move(r);
        continue;
      }
      for (size_t j = 0; j < d.aggs.size() && j < acc.size(); ++j) {
        const Value& v = r[j];
        if (v.is_null()) continue;
        if (acc[j].is_null()) {
          acc[j] = v;
          continue;
        }
        switch (d.aggs[j]) {
          case RouteDecision::Agg::kCount:
          case RouteDecision::Agg::kSum:
            if (acc[j].type() == common::ValueType::kInt &&
                v.type() == common::ValueType::kInt) {
              acc[j] = Value::Int(acc[j].AsInt() + v.AsInt());
            } else {
              acc[j] = Value::Double(acc[j].AsDouble() + v.AsDouble());
            }
            break;
          case RouteDecision::Agg::kMin:
            if (v.Compare(acc[j]) < 0) acc[j] = v;
            break;
          case RouteDecision::Agg::kMax:
            if (v.Compare(acc[j]) > 0) acc[j] = v;
            break;
        }
      }
    }
    rows->clear();
    rows->push_back(std::move(acc));
    return Status::OK();
  }

  // Deterministic merge: shard-index concatenation, then a stable sort on
  // the ORDER BY keys (stability makes shard index the tiebreak), then TOP.
  rows->clear();
  for (auto& shard_rows : per_shard) {
    for (Row& r : shard_rows) rows->push_back(std::move(r));
  }
  if (!d.order_by.empty()) {
    std::vector<std::pair<int, bool>> keys;
    for (const auto& [name, asc] : d.order_by) {
      int idx = schema != nullptr ? schema->FindColumn(name) : -1;
      if (idx < 0) {
        return Status::Unsupported(
            "fan-out ORDER BY column not in the output: " + name);
      }
      keys.emplace_back(idx, asc);
    }
    std::stable_sort(rows->begin(), rows->end(),
                     [&keys](const Row& a, const Row& b) {
                       for (const auto& [idx, asc] : keys) {
                         int c = a[idx].Compare(b[idx]);
                         if (c != 0) return asc ? c < 0 : c > 0;
                       }
                       return false;
                     });
  }
  if (d.top_n >= 0 &&
      rows->size() > static_cast<size_t>(d.top_n)) {
    rows->resize(static_cast<size_t>(d.top_n));
  }
  return Status::OK();
}

Result<StatementOutcome> CoordinatorSession::ExecFanout(
    const sql::SelectStmt& stmt, const RouteDecision& d,
    const ParamMap* params) {
  Schema schema;
  std::vector<Row> merged;
  PHX_RETURN_IF_ERROR(FanoutCollect(stmt, d, params, &schema, &merged));

  CursorId cid = next_cursor_++;
  CoordCursor cc;
  cc.merged = true;
  cc.schema = schema;
  for (Row& r : merged) cc.rows.push_back(std::move(r));
  cursors_.emplace(cid, std::move(cc));

  StatementOutcome out;
  out.is_query = true;
  out.cursor = cid;
  out.schema = std::move(schema);
  out.lazy = false;
  uint64_t mask =
      shard_count() >= 64 ? ~uint64_t{0} : (uint64_t{1} << shard_count()) - 1;
  Scrub(&out, mask);
  return out;
}

Result<StatementOutcome> CoordinatorSession::ExecBroadcast(
    const sql::Statement& stmt, bool ddl, const ParamMap* params) {
  for (int i = 0; i < shard_count(); ++i) {
    if (dbs_[i]->is_down()) {
      return Status::ShardUnavailable(ShardDownMessage(i));
    }
  }
  std::string sql = stmt.ToSql();
  uint64_t mask =
      shard_count() >= 64 ? ~uint64_t{0} : (uint64_t{1} << shard_count()) - 1;

  if (ddl && !in_txn_) {
    // DDL autocommits per shard. A mid-broadcast failure leaves earlier
    // shards applied — IF NOT EXISTS / IF EXISTS retries converge.
    StatementOutcome out;
    for (int i = 0; i < shard_count(); ++i) {
      PHX_ASSIGN_OR_RETURN(Session * s, ShardSession(i));
      auto res = s->Execute(sql, params);
      if (!res.ok()) return res.status();
      out = std::move(res).value();
    }
    Scrub(&out, mask);
    return out;
  }

  bool self_txn = !in_txn_;
  if (self_txn) in_txn_ = true;
  // Sum rows_affected for hash-partitioned targets (each shard changed its
  // own rows); replicated targets report one copy's count.
  bool sum_rows = false;
  {
    std::string table;
    switch (stmt.kind()) {
      case sql::StatementKind::kUpdate:
        table = static_cast<const sql::UpdateStmt&>(stmt).table_name;
        break;
      case sql::StatementKind::kDelete:
        table = static_cast<const sql::DeleteStmt&>(stmt).table_name;
        break;
      default:
        break;
    }
    ShardTableInfo info;
    if (!table.empty() && router_->Lookup(table, &info)) {
      sum_rows = info.cls == ShardTableClass::kHash;
    }
  }

  StatementOutcome out;
  int64_t total_rows = 0;
  for (int i = 0; i < shard_count(); ++i) {
    auto session = ShardSession(i);
    Status pre = session.ok() ? EnsureBegan(i) : session.status();
    if (!pre.ok()) {
      AbortGlobalTxn();
      return pre;
    }
    auto res = (*session)->Execute(sql, params);
    if (!res.ok()) {
      AbortGlobalTxn();
      return res.status();
    }
    wrote_[i] = 1;
    out = std::move(res).value();
    if (out.rows_affected > 0) total_rows += out.rows_affected;
  }
  if (out.rows_affected >= 0 && sum_rows) out.rows_affected = total_rows;
  if (self_txn) PHX_RETURN_IF_ERROR(CommitAll());
  Scrub(&out, mask);
  return out;
}

Result<StatementOutcome> CoordinatorSession::ExecScatter(
    const RouteDecision& d) {
  bool self_txn = !in_txn_;
  if (self_txn) in_txn_ = true;
  StatementOutcome out;
  int64_t total_rows = 0;
  uint64_t mask = 0;
  for (const auto& [shard, sql] : d.per_shard_sql) {
    auto session = ShardSession(shard);
    Status pre = session.ok() ? EnsureBegan(shard) : session.status();
    if (!pre.ok()) {
      AbortGlobalTxn();
      return pre;
    }
    auto res = (*session)->Execute(sql);
    if (!res.ok()) {
      AbortGlobalTxn();
      return res.status();
    }
    wrote_[shard] = 1;
    mask |= uint64_t{1} << shard;
    out = std::move(res).value();
    if (out.rows_affected > 0) total_rows += out.rows_affected;
  }
  if (out.rows_affected >= 0) out.rows_affected = total_rows;
  if (self_txn) PHX_RETURN_IF_ERROR(CommitAll());
  Scrub(&out, mask);
  return out;
}

Result<StatementOutcome> CoordinatorSession::ExecInsertSelect(
    const sql::InsertStmt& stmt, const ParamMap* params) {
  PHX_ASSIGN_OR_RETURN(RouteDecision src,
                       router_->RouteSelect(*stmt.select, temp_tables_,
                                            params));
  bool self_txn = !in_txn_;
  if (self_txn) in_txn_ = true;
  auto fail = [&](Status st) -> Result<StatementOutcome> {
    AbortGlobalTxn();
    return st;
  };

  // 1. Materialize the source rows (inside the global transaction).
  Schema schema;
  std::vector<Row> rows;
  uint64_t mask = 0;
  if (src.kind == RouteDecision::Kind::kSingleShard) {
    auto collected =
        CollectShardRows(src.shard, stmt.select->ToSql(), params, &schema);
    if (!collected.ok()) return fail(collected.status());
    rows = std::move(collected).value();
    mask |= uint64_t{1} << src.shard;
  } else if (src.kind == RouteDecision::Kind::kFanoutRead) {
    Status st = FanoutCollect(*stmt.select, src, params, &schema, &rows);
    if (!st.ok()) {
      // FanoutCollect aborted the transaction on execution errors already;
      // make sure self-wrap state never leaks on routing-level errors.
      if (in_txn_) AbortGlobalTxn();
      return st;
    }
    mask |= shard_count() >= 64 ? ~uint64_t{0}
                                : (uint64_t{1} << shard_count()) - 1;
  } else {
    return fail(Status::Unsupported("INSERT source select not routable"));
  }

  // 2. Partition the rows by the target table's placement rule.
  std::string lower = common::ToLower(stmt.table_name);
  ShardTableInfo info;
  bool registered = router_->Lookup(lower, &info);
  bool is_temp = temp_tables_.count(lower) > 0;

  std::vector<std::vector<const Row*>> dest(shard_count());
  if (is_temp || !registered ||
      info.cls == ShardTableClass::kPinned) {
    int target = (is_temp || !registered) ? 0 : info.pinned_shard;
    for (const Row& r : rows) dest[target].push_back(&r);
  } else if (info.cls == ShardTableClass::kReplicated) {
    for (int i = 0; i < shard_count(); ++i) {
      for (const Row& r : rows) dest[i].push_back(&r);
    }
  } else {
    std::vector<std::string> cols;
    if (!stmt.columns.empty()) {
      for (const auto& c : stmt.columns) cols.push_back(common::ToLower(c));
    } else {
      cols = info.columns;
    }
    std::vector<int> key_pos;
    for (const auto& key_col : info.key_columns) {
      int pos = -1;
      for (size_t i = 0; i < cols.size(); ++i) {
        if (cols[i] == key_col) {
          pos = static_cast<int>(i);
          break;
        }
      }
      if (pos < 0) {
        return fail(Status::Unsupported(
            "INSERT..SELECT into hash table omits shard key column '" +
            key_col + "'"));
      }
      key_pos.push_back(pos);
    }
    for (const Row& r : rows) {
      std::vector<Value> key;
      for (int pos : key_pos) {
        if (pos >= static_cast<int>(r.size())) {
          return fail(Status::InvalidArgument(
              "INSERT..SELECT row narrower than the shard key"));
        }
        key.push_back(r[pos]);
      }
      dest[ShardRouter::ShardForKey(key, shard_count())].push_back(&r);
    }
  }

  // 3. Re-insert per shard as literal VALUES (Value::ToSqlLiteral
  // round-trips every supported type).
  int64_t inserted = 0;
  for (int i = 0; i < shard_count(); ++i) {
    if (dest[i].empty()) continue;
    std::string sql = "INSERT INTO " + stmt.table_name;
    if (!stmt.columns.empty()) {
      sql += " (";
      for (size_t c = 0; c < stmt.columns.size(); ++c) {
        if (c > 0) sql += ", ";
        sql += stmt.columns[c];
      }
      sql += ")";
    }
    sql += " VALUES ";
    for (size_t r = 0; r < dest[i].size(); ++r) {
      if (r > 0) sql += ", ";
      sql += "(";
      const Row& row = *dest[i][r];
      for (size_t c = 0; c < row.size(); ++c) {
        if (c > 0) sql += ", ";
        sql += row[c].ToSqlLiteral();
      }
      sql += ")";
    }
    auto session = ShardSession(i);
    Status pre = session.ok() ? EnsureBegan(i) : session.status();
    if (!pre.ok()) return fail(pre);
    auto res = (*session)->Execute(sql);
    if (!res.ok()) return fail(res.status());
    wrote_[i] = 1;
    mask |= uint64_t{1} << i;
    if (res->rows_affected > 0) inserted += res->rows_affected;
  }

  if (self_txn) PHX_RETURN_IF_ERROR(CommitAll());
  StatementOutcome out;
  out.rows_affected = inserted;
  Scrub(&out, mask);
  return out;
}

// ---------------------------------------------------------------------------
// Bundles
// ---------------------------------------------------------------------------

Result<std::vector<BundleOutcome>> CoordinatorSession::ExecuteBundle(
    const std::vector<std::string>& statements) {
  PHX_RETURN_IF_ERROR(CheckTxnPoisoned());
  if (statements.empty()) {
    return Status::InvalidArgument("empty statement bundle");
  }
  std::vector<std::vector<sql::StatementPtr>> parsed;
  parsed.reserve(statements.size());
  bool plain_dml_only = true;
  bool has_modification = false;
  for (const std::string& sql : statements) {
    PHX_ASSIGN_OR_RETURN(std::vector<sql::StatementPtr> stmts,
                         sql::ParseScript(sql));
    if (stmts.empty()) {
      return Status::InvalidArgument("empty SQL request in bundle");
    }
    for (const sql::StatementPtr& stmt : stmts) {
      switch (stmt->kind()) {
        case sql::StatementKind::kInsert:
        case sql::StatementKind::kUpdate:
        case sql::StatementKind::kDelete:
          has_modification = true;
          break;
        case sql::StatementKind::kSelect:
        case sql::StatementKind::kExec:
          break;
        default:
          plain_dml_only = false;
          break;
      }
    }
    parsed.push_back(std::move(stmts));
  }

  // Fast path: every statement in the bundle routes to one shard (txn
  // control balanced within the bundle is fine — the shard session manages
  // it). The whole bundle forwards, preserving the engine's exactly-once
  // wrap semantics unchanged — all five TPC-C bodies take this path under
  // warehouse partitioning.
  if (!in_txn_) {
    int target = -1;
    int depth = 0;
    bool forwardable = true;
    for (const auto& entry : parsed) {
      for (const auto& stmt : entry) {
        switch (stmt->kind()) {
          case sql::StatementKind::kBegin:
            if (depth != 0) forwardable = false;
            ++depth;
            break;
          case sql::StatementKind::kCommit:
          case sql::StatementKind::kRollback:
            if (depth == 0) forwardable = false;
            --depth;
            break;
          case sql::StatementKind::kSelect:
          case sql::StatementKind::kInsert:
          case sql::StatementKind::kUpdate:
          case sql::StatementKind::kDelete: {
            auto route = router_->Route(*stmt, temp_tables_, nullptr);
            if (!route.ok() ||
                route->kind != RouteDecision::Kind::kSingleShard ||
                (target >= 0 && route->shard != target)) {
              forwardable = false;
            } else {
              target = route->shard;
            }
            break;
          }
          default:
            forwardable = false;
            break;
        }
        if (!forwardable) break;
      }
      if (!forwardable) break;
    }
    if (forwardable && depth == 0 && target >= 0) {
      PHX_ASSIGN_OR_RETURN(Session * s, ShardSession(target));
      auto res = s->ExecuteBundle(statements);
      if (!res.ok()) return res.status();
      std::vector<BundleOutcome> out = std::move(res).value();
      uint64_t mask = uint64_t{1} << target;
      for (BundleOutcome& item : out) {
        Scrub(&item.outcome, item.status.ok() ? mask : 0);
      }
      static obs::Histogram* fanout =
          obs::Registry::Global().histogram("phx.shard.fanout");
      fanout->Record(1);
      obs::Registry::Global()
          .counter("engine.shard." + std::to_string(target) + ".statements")
          ->Add(out.size());
      return out;
    }
  }

  // Coordinator-mediated bundle: same atomicity rule as the engine's, with
  // the wrap transaction spanning shards (committed via CommitAll — 2PC
  // when more than one shard wrote).
  bool wrapped = !in_txn_ && plain_dml_only && has_modification;
  if (wrapped) in_txn_ = true;

  std::vector<BundleOutcome> out;
  out.reserve(statements.size());
  for (const std::vector<sql::StatementPtr>& entry : parsed) {
    BundleOutcome item;
    for (const sql::StatementPtr& stmt : entry) {
      auto result = ExecuteOne(*stmt, nullptr, nullptr);
      if (!result.ok()) {
        item.status = result.status();
        break;
      }
      item.outcome = std::move(result).value();
    }
    if (item.status.ok() && item.outcome.is_query) {
      auto fetched =
          Fetch(item.outcome.cursor, std::numeric_limits<size_t>::max());
      if (fetched.ok()) {
        item.first = std::move(fetched).value();
        item.first.done = true;
        CloseCursor(item.outcome.cursor).ok();
      } else {
        item.status = fetched.status();
      }
    }
    if (!item.status.ok()) {
      if (wrapped) RollbackAll();
      out.push_back(std::move(item));
      return out;
    }
    out.push_back(std::move(item));
  }

  if (wrapped && in_txn_) {
    // The wrap-commit is the bundle's commit point; its failure is a
    // call-level error with nothing applied (all shards rolled back).
    PHX_RETURN_IF_ERROR(CommitAll());
  }
  return out;
}

// ---------------------------------------------------------------------------
// Cursors
// ---------------------------------------------------------------------------

Result<FetchOutcome> CoordinatorSession::Fetch(CursorId cursor,
                                               size_t max_rows) {
  auto it = cursors_.find(cursor);
  if (it == cursors_.end()) {
    return Status::NotFound("cursor " + std::to_string(cursor) +
                            " is not open");
  }
  CoordCursor& cc = it->second;
  if (cc.merged) {
    FetchOutcome out;
    while (out.rows.size() < max_rows && !cc.rows.empty()) {
      out.rows.push_back(std::move(cc.rows.front()));
      cc.rows.pop_front();
    }
    out.done = cc.rows.empty();
    return out;
  }
  if (cc.lost || dbs_[cc.shard]->is_down()) {
    return Status::ShardUnavailable(ShardDownMessage(cc.shard));
  }
  PHX_ASSIGN_OR_RETURN(Session * s, ShardSession(cc.shard));
  return s->Fetch(cc.inner, max_rows);
}

Result<uint64_t> CoordinatorSession::AdvanceCursor(CursorId cursor,
                                                   uint64_t n) {
  auto it = cursors_.find(cursor);
  if (it == cursors_.end()) {
    return Status::NotFound("cursor " + std::to_string(cursor) +
                            " is not open");
  }
  CoordCursor& cc = it->second;
  if (cc.merged) {
    uint64_t skipped = 0;
    while (skipped < n && !cc.rows.empty()) {
      cc.rows.pop_front();
      ++skipped;
    }
    return skipped;
  }
  if (cc.lost || dbs_[cc.shard]->is_down()) {
    return Status::ShardUnavailable(ShardDownMessage(cc.shard));
  }
  PHX_ASSIGN_OR_RETURN(Session * s, ShardSession(cc.shard));
  return s->AdvanceCursor(cc.inner, n);
}

Status CoordinatorSession::CloseCursor(CursorId cursor) {
  auto it = cursors_.find(cursor);
  if (it == cursors_.end()) {
    return Status::NotFound("cursor " + std::to_string(cursor) +
                            " is not open");
  }
  CoordCursor cc = std::move(it->second);
  cursors_.erase(it);
  if (!cc.merged && !cc.lost && inner_[cc.shard] != nullptr &&
      !dbs_[cc.shard]->is_down()) {
    inner_[cc.shard]->CloseCursor(cc.inner).ok();
  }
  return Status::OK();
}

}  // namespace phoenix::engine
