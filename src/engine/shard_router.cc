#include "engine/shard_router.h"

#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>

#include "common/crc32.h"
#include "common/strings.h"
#include "engine/key_encoding.h"

namespace phoenix::engine {

using common::Result;
using common::Status;
using common::Value;
using ParamMapT = std::map<std::string, common::Value>;

namespace {

/// Resolves an expression to a compile-time value when possible: literals,
/// negated numeric literals, and bound @params. Anything else is "unbound".
std::optional<Value> ExtractLiteral(const sql::Expr& e,
                                    const ParamMapT* params) {
  switch (e.kind) {
    case sql::ExprKind::kLiteral:
      return e.literal;
    case sql::ExprKind::kUnary: {
      if (e.unary_op != sql::UnaryOp::kNegate || e.children.size() != 1) {
        return std::nullopt;
      }
      auto inner = ExtractLiteral(*e.children[0], params);
      if (!inner) return std::nullopt;
      if (inner->type() == common::ValueType::kInt) {
        return Value::Int(-inner->AsInt());
      }
      if (inner->type() == common::ValueType::kDouble) {
        return Value::Double(-inner->AsDouble());
      }
      return std::nullopt;
    }
    case sql::ExprKind::kParam: {
      if (params == nullptr) return std::nullopt;
      auto it = params->find(e.param_name);
      if (it == params->end()) return std::nullopt;
      return it->second;
    }
    default:
      return std::nullopt;
  }
}

/// Splits an AND tree into its conjuncts (OR subtrees stay whole and simply
/// contribute no bindings — conservative, never misroutes).
void SplitConjuncts(const sql::Expr* e, std::vector<const sql::Expr*>* out) {
  if (e == nullptr) return;
  if (e->kind == sql::ExprKind::kBinary &&
      e->binary_op == sql::BinaryOp::kAnd && e->children.size() == 2) {
    SplitConjuncts(e->children[0].get(), out);
    SplitConjuncts(e->children[1].get(), out);
    return;
  }
  out->push_back(e);
}

/// Equality closure over WHERE/ON conjuncts: union-find of column names
/// (lowercased, qualifier-insensitive) joined by col = col, with col =
/// literal bindings propagated to the whole group. This is what lets the
/// TPC-C stock-level join (s_w_id = ol_w_id AND ol_w_id = ?) bind both
/// tables' shard keys from one literal.
class EqClosure {
 public:
  void AddConjunct(const sql::Expr& e, const ParamMapT* params) {
    if (e.kind != sql::ExprKind::kBinary ||
        e.binary_op != sql::BinaryOp::kEq || e.children.size() != 2) {
      return;
    }
    const sql::Expr& l = *e.children[0];
    const sql::Expr& r = *e.children[1];
    bool l_col = l.kind == sql::ExprKind::kColumnRef;
    bool r_col = r.kind == sql::ExprKind::kColumnRef;
    if (l_col && r_col) {
      Union(common::ToLower(l.column_name), common::ToLower(r.column_name));
      return;
    }
    if (l_col) {
      if (auto v = ExtractLiteral(r, params)) {
        Bind(common::ToLower(l.column_name), *v);
      }
      return;
    }
    if (r_col) {
      if (auto v = ExtractLiteral(l, params)) {
        Bind(common::ToLower(r.column_name), *v);
      }
    }
  }

  std::optional<Value> Bound(const std::string& lower_col) const {
    auto it = bindings_.find(Find(lower_col));
    if (it == bindings_.end()) return std::nullopt;
    return it->second;
  }

 private:
  std::string Find(const std::string& col) const {
    std::string cur = col;
    for (;;) {
      auto it = parent_.find(cur);
      if (it == parent_.end() || it->second == cur) return cur;
      cur = it->second;
    }
  }

  void Union(const std::string& a, const std::string& b) {
    std::string ra = Find(a), rb = Find(b);
    if (ra == rb) return;
    parent_[ra] = rb;
    auto it = bindings_.find(ra);
    if (it != bindings_.end()) {
      bindings_.emplace(rb, it->second);
      bindings_.erase(it);
    }
  }

  void Bind(const std::string& col, const Value& v) {
    bindings_.emplace(Find(col), v);
  }

  std::map<std::string, std::string> parent_;
  std::map<std::string, Value> bindings_;
};

void CollectJoinConditions(const sql::TableRef& ref, EqClosure* closure,
                           const ParamMapT* params) {
  if (ref.kind == sql::TableRef::Kind::kJoin) {
    if (ref.join_condition != nullptr) {
      std::vector<const sql::Expr*> conjuncts;
      SplitConjuncts(ref.join_condition.get(), &conjuncts);
      for (const sql::Expr* c : conjuncts) closure->AddConjunct(*c, params);
    }
    if (ref.left != nullptr) CollectJoinConditions(*ref.left, closure, params);
    if (ref.right != nullptr) {
      CollectJoinConditions(*ref.right, closure, params);
    }
  }
}

/// Collects every subquery SELECT reachable from an expression.
void CollectSubqueries(const sql::Expr& e,
                       std::vector<const sql::SelectStmt*>* out) {
  if (e.subquery != nullptr) out->push_back(e.subquery.get());
  for (const auto& child : e.children) {
    if (child != nullptr) CollectSubqueries(*child, out);
  }
}

/// Placement constraint of a (sub)query: runs anywhere (replicated/constant
/// inputs only), must run on one specific shard, or must fan out over one
/// unbound hash-partitioned table.
struct SelectConstraint {
  enum class Kind : uint8_t { kAny, kPinned, kFanout };
  Kind kind = Kind::kAny;
  int shard = 0;  // kPinned
};

bool IsSupportedAgg(const sql::Expr& e, RouteDecision::Agg* out) {
  if (e.kind != sql::ExprKind::kFunction || e.distinct) return false;
  if (e.function_name == "COUNT") {
    *out = RouteDecision::Agg::kCount;
    return true;
  }
  if (e.function_name == "SUM") {
    *out = RouteDecision::Agg::kSum;
    return true;
  }
  if (e.function_name == "MIN") {
    *out = RouteDecision::Agg::kMin;
    return true;
  }
  if (e.function_name == "MAX") {
    *out = RouteDecision::Agg::kMax;
    return true;
  }
  return false;  // AVG et al.: not decomposable without a rewrite
}

/// True if any aggregate function appears anywhere in the expression — used
/// to reject fan-out shapes like SUM(x)+1 or AVG(x) that a plain per-shard
/// row merge would silently evaluate wrong.
bool ContainsAggregate(const sql::Expr& e) {
  if (e.kind == sql::ExprKind::kFunction &&
      (e.function_name == "COUNT" || e.function_name == "SUM" ||
       e.function_name == "MIN" || e.function_name == "MAX" ||
       e.function_name == "AVG")) {
    return true;
  }
  for (const auto& child : e.children) {
    if (child != nullptr && ContainsAggregate(*child)) return true;
  }
  return false;
}

}  // namespace

int ShardRouter::ShardForKey(const std::vector<Value>& key, int shards) {
  std::string enc = EncodeOrderedKey(key);
  uint32_t h =
      common::Crc32(reinterpret_cast<const uint8_t*>(enc.data()), enc.size());
  return static_cast<int>(h % static_cast<uint32_t>(shards));
}

int ShardRouter::ShardForName(const std::string& name, int shards) {
  std::string lower = common::ToLower(name);
  uint32_t h = common::Crc32(reinterpret_cast<const uint8_t*>(lower.data()),
                             lower.size());
  return static_cast<int>(h % static_cast<uint32_t>(shards));
}

void ShardRouter::RegisterCreate(const sql::CreateTableStmt& stmt) {
  ShardTableInfo info;
  for (const auto& col : stmt.schema.columns()) {
    info.columns.push_back(common::ToLower(col.name));
  }
  if (stmt.replicated) {
    info.cls = ShardTableClass::kReplicated;
  } else if (!stmt.shard_key.empty() || !stmt.primary_key.empty()) {
    info.cls = ShardTableClass::kHash;
    const auto& key = stmt.shard_key.empty() ? stmt.primary_key
                                             : stmt.shard_key;
    for (const auto& col : key) {
      info.key_columns.push_back(common::ToLower(col));
    }
  } else {
    info.cls = ShardTableClass::kPinned;
    info.pinned_shard = ShardForName(stmt.table_name, shard_count_);
  }
  std::lock_guard<std::mutex> lock(mu_);
  tables_[common::ToLower(stmt.table_name)] = std::move(info);
  PersistLocked();
}

void ShardRouter::Unregister(const std::string& table) {
  std::lock_guard<std::mutex> lock(mu_);
  if (tables_.erase(common::ToLower(table)) > 0) PersistLocked();
}

bool ShardRouter::Lookup(const std::string& table, ShardTableInfo* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(common::ToLower(table));
  if (it == tables_.end()) return false;
  if (out != nullptr) *out = it->second;
  return true;
}

namespace {

/// Folds one placement into an accumulated constraint. Returns an error for
/// combinations the coordinator cannot execute (two different pinned shards,
/// fanout mixed with a pinned table, two fanout tables).
Status MergeConstraint(SelectConstraint* acc, const SelectConstraint& c) {
  if (c.kind == SelectConstraint::Kind::kAny) return Status::OK();
  if (acc->kind == SelectConstraint::Kind::kAny) {
    *acc = c;
    return Status::OK();
  }
  if (acc->kind == SelectConstraint::Kind::kPinned &&
      c.kind == SelectConstraint::Kind::kPinned) {
    if (acc->shard != c.shard) {
      return Status::Unsupported(
          "cross-shard join: tables resolve to different shards");
    }
    return Status::OK();
  }
  return Status::Unsupported(
      "cannot combine a fan-out table with other shard-pinned tables");
}

}  // namespace

/// Computes the placement constraint of a SELECT, recursing into derived
/// tables and subqueries. Defined as a member-like free function via a
/// helper so it can call Lookup.
common::Result<RouteDecision> ShardRouter::RouteSelect(
    const sql::SelectStmt& stmt, const std::set<std::string>& temp_tables,
    const ParamMapT* params) const {
  // Local recursive analysis (lambda so it can capture `this`).
  struct Analyzer {
    const ShardRouter* router;
    const std::set<std::string>& temp_tables;
    const ParamMapT* params;

    Result<SelectConstraint> Analyze(const sql::SelectStmt& s,
                                     bool is_inner) const {
      EqClosure closure;
      std::vector<const sql::Expr*> conjuncts;
      SplitConjuncts(s.where.get(), &conjuncts);
      for (const sql::Expr* c : conjuncts) closure.AddConjunct(*c, params);
      for (const auto& ref : s.from) {
        CollectJoinConditions(ref, &closure, params);
      }

      SelectConstraint acc;
      PHX_RETURN_IF_ERROR(FoldFromRefs(s.from, closure, &acc));

      // Subqueries in WHERE / items / HAVING constrain placement too: they
      // must be evaluable wherever the outer statement runs, so fan-out
      // subqueries are rejected and pinned ones merge like tables.
      std::vector<const sql::SelectStmt*> subs;
      if (s.where != nullptr) CollectSubqueries(*s.where, &subs);
      if (s.having != nullptr) CollectSubqueries(*s.having, &subs);
      for (const auto& item : s.items) {
        if (item.expr != nullptr) CollectSubqueries(*item.expr, &subs);
      }
      for (const sql::SelectStmt* sub : subs) {
        PHX_ASSIGN_OR_RETURN(SelectConstraint c, Analyze(*sub, true));
        if (c.kind == SelectConstraint::Kind::kFanout) {
          return Status::Unsupported(
              "subquery over an unbound hash-partitioned table");
        }
        PHX_RETURN_IF_ERROR(MergeConstraint(&acc, c));
      }

      if (acc.kind == SelectConstraint::Kind::kFanout && is_inner &&
          (s.distinct || !s.group_by.empty() || s.having != nullptr ||
           s.top_n >= 0)) {
        // A per-shard DISTINCT/GROUP BY/TOP inside a derived table would
        // compute shard-local answers to a global question.
        return Status::Unsupported(
            "derived table needs a fan-out but is not a plain projection");
      }
      return acc;
    }

    Status FoldFromRefs(const std::vector<sql::TableRef>& refs,
                        const EqClosure& closure,
                        SelectConstraint* acc) const {
      for (const auto& ref : refs) {
        PHX_RETURN_IF_ERROR(FoldRef(ref, closure, acc));
      }
      return Status::OK();
    }

    Status FoldRef(const sql::TableRef& ref, const EqClosure& closure,
                   SelectConstraint* acc) const {
      switch (ref.kind) {
        case sql::TableRef::Kind::kBaseTable: {
          PHX_ASSIGN_OR_RETURN(SelectConstraint c,
                               ClassifyTable(ref.table_name, closure));
          return MergeConstraint(acc, c);
        }
        case sql::TableRef::Kind::kDerived: {
          PHX_ASSIGN_OR_RETURN(SelectConstraint c,
                               Analyze(*ref.derived, true));
          return MergeConstraint(acc, c);
        }
        case sql::TableRef::Kind::kJoin: {
          PHX_RETURN_IF_ERROR(FoldRef(*ref.left, closure, acc));
          return FoldRef(*ref.right, closure, acc);
        }
      }
      return Status::OK();
    }

    Result<SelectConstraint> ClassifyTable(const std::string& name,
                                           const EqClosure& closure) const {
      SelectConstraint c;
      std::string lower = common::ToLower(name);
      if (temp_tables.count(lower) > 0) {
        c.kind = SelectConstraint::Kind::kPinned;
        c.shard = 0;  // temp tables live on the session's home shard
        return c;
      }
      ShardTableInfo info;
      if (!router->Lookup(lower, &info)) {
        // Unknown table: deterministically treat as home-shard so the
        // engine there produces the authoritative NotFound.
        c.kind = SelectConstraint::Kind::kPinned;
        c.shard = 0;
        return c;
      }
      switch (info.cls) {
        case ShardTableClass::kReplicated:
          c.kind = SelectConstraint::Kind::kAny;
          return c;
        case ShardTableClass::kPinned:
          c.kind = SelectConstraint::Kind::kPinned;
          c.shard = info.pinned_shard;
          return c;
        case ShardTableClass::kHash: {
          std::vector<Value> key;
          for (const auto& col : info.key_columns) {
            auto v = closure.Bound(col);
            if (!v) {
              c.kind = SelectConstraint::Kind::kFanout;
              return c;
            }
            key.push_back(*v);
          }
          c.kind = SelectConstraint::Kind::kPinned;
          c.shard = ShardForKey(key, router->shard_count_);
          return c;
        }
      }
      return c;
    }
  };

  Analyzer analyzer{this, temp_tables, params};
  PHX_ASSIGN_OR_RETURN(SelectConstraint c, analyzer.Analyze(stmt, false));

  RouteDecision d;
  if (c.kind != SelectConstraint::Kind::kFanout) {
    d.kind = RouteDecision::Kind::kSingleShard;
    d.shard = c.kind == SelectConstraint::Kind::kPinned ? c.shard : 0;
    return d;
  }

  // Fan-out read: the statement runs verbatim on every shard and the
  // coordinator merges. Only decomposable shapes qualify.
  if (stmt.distinct) {
    return Status::Unsupported("fan-out SELECT DISTINCT needs a global dedup");
  }
  if (!stmt.group_by.empty() || stmt.having != nullptr) {
    return Status::Unsupported("fan-out GROUP BY is not decomposable");
  }
  d.kind = RouteDecision::Kind::kFanoutRead;

  // All-aggregate item list -> combine one partial row per shard.
  bool any_agg = false;
  for (const auto& item : stmt.items) {
    RouteDecision::Agg agg;
    if (item.expr != nullptr && IsSupportedAgg(*item.expr, &agg)) {
      any_agg = true;
      d.aggs.push_back(agg);
    } else if (any_agg || !d.aggs.empty()) {
      return Status::Unsupported(
          "fan-out aggregates cannot mix with plain select items");
    }
  }
  if (any_agg && d.aggs.size() != stmt.items.size()) {
    return Status::Unsupported(
        "fan-out aggregates cannot mix with plain select items");
  }
  if (!any_agg) {
    // Check for non-decomposable aggregates hiding in the item list (AVG,
    // COUNT DISTINCT, SUM(x)+1): per-shard evaluation would be silently
    // wrong under a plain row merge.
    for (const auto& item : stmt.items) {
      if (item.expr != nullptr && ContainsAggregate(*item.expr)) {
        return Status::Unsupported(
            "fan-out aggregate shape not decomposable");
      }
    }
    for (const auto& ob : stmt.order_by) {
      if (ob.expr == nullptr || ob.expr->kind != sql::ExprKind::kColumnRef) {
        return Status::Unsupported(
            "fan-out ORDER BY must name output columns");
      }
      d.order_by.emplace_back(common::ToLower(ob.expr->column_name),
                              ob.ascending);
    }
    d.top_n = stmt.top_n;
  }
  return d;
}

common::Result<RouteDecision> ShardRouter::Route(
    const sql::Statement& stmt, const std::set<std::string>& temp_tables,
    const ParamMapT* params) const {
  RouteDecision d;
  switch (stmt.kind()) {
    case sql::StatementKind::kSelect:
      return RouteSelect(static_cast<const sql::SelectStmt&>(stmt),
                         temp_tables, params);

    case sql::StatementKind::kInsert: {
      const auto& ins = static_cast<const sql::InsertStmt&>(stmt);
      std::string lower = common::ToLower(ins.table_name);
      ShardTableInfo info;
      bool registered = Lookup(lower, &info);
      bool is_temp = temp_tables.count(lower) > 0;

      if (ins.select != nullptr) {
        // INSERT .. SELECT: forward whole when target and source provably
        // co-locate; otherwise the coordinator mediates row movement.
        PHX_ASSIGN_OR_RETURN(RouteDecision src,
                             RouteSelect(*ins.select, temp_tables, params));
        if (registered && info.cls == ShardTableClass::kPinned &&
            src.kind == RouteDecision::Kind::kSingleShard &&
            src.shard == info.pinned_shard) {
          d.kind = RouteDecision::Kind::kSingleShard;
          d.shard = info.pinned_shard;
          return d;
        }
        if ((is_temp || !registered) &&
            src.kind == RouteDecision::Kind::kSingleShard && src.shard == 0) {
          d.kind = RouteDecision::Kind::kSingleShard;
          d.shard = 0;
          return d;
        }
        d.kind = RouteDecision::Kind::kInsertSelect;
        return d;
      }

      if (is_temp || !registered) {
        d.kind = RouteDecision::Kind::kSingleShard;
        d.shard = 0;
        return d;
      }
      switch (info.cls) {
        case ShardTableClass::kPinned:
          d.kind = RouteDecision::Kind::kSingleShard;
          d.shard = info.pinned_shard;
          return d;
        case ShardTableClass::kReplicated:
          d.kind = RouteDecision::Kind::kBroadcastWrite;
          return d;
        case ShardTableClass::kHash:
          break;
      }

      // Hash target: resolve key column positions in the VALUES rows.
      std::vector<std::string> cols;
      if (!ins.columns.empty()) {
        for (const auto& ccol : ins.columns) {
          cols.push_back(common::ToLower(ccol));
        }
      } else {
        cols = info.columns;
      }
      std::vector<int> key_pos;
      for (const auto& key_col : info.key_columns) {
        int pos = -1;
        for (size_t i = 0; i < cols.size(); ++i) {
          if (cols[i] == key_col) {
            pos = static_cast<int>(i);
            break;
          }
        }
        if (pos < 0) {
          return Status::Unsupported(
              "INSERT into hash-partitioned table omits shard key column '" +
              key_col + "'");
        }
        key_pos.push_back(pos);
      }
      std::vector<int> row_shard(ins.rows.size(), 0);
      for (size_t r = 0; r < ins.rows.size(); ++r) {
        const auto& row = ins.rows[r];
        std::vector<Value> key;
        for (int pos : key_pos) {
          if (pos >= static_cast<int>(row.size())) {
            return Status::InvalidArgument(
                "INSERT row has fewer values than columns");
          }
          auto v = ExtractLiteral(*row[pos], params);
          if (!v) {
            return Status::Unsupported(
                "INSERT shard key value is not a literal");
          }
          key.push_back(*v);
        }
        row_shard[r] = ShardForKey(key, shard_count_);
      }
      bool all_same = true;
      for (int s : row_shard) {
        if (s != row_shard[0]) {
          all_same = false;
          break;
        }
      }
      if (all_same && !row_shard.empty()) {
        d.kind = RouteDecision::Kind::kSingleShard;
        d.shard = row_shard[0];
        return d;
      }
      // Scatter: rebuild one INSERT per destination shard. ToSql round-trips
      // each VALUES expression, so literals survive verbatim.
      std::map<int, std::string> per_shard;
      for (size_t r = 0; r < ins.rows.size(); ++r) {
        std::string& sql = per_shard[row_shard[r]];
        if (sql.empty()) {
          sql = "INSERT INTO " + ins.table_name;
          if (!ins.columns.empty()) {
            sql += " (";
            for (size_t i = 0; i < ins.columns.size(); ++i) {
              if (i > 0) sql += ", ";
              sql += ins.columns[i];
            }
            sql += ")";
          }
          sql += " VALUES ";
        } else {
          sql += ", ";
        }
        sql += "(";
        for (size_t i = 0; i < ins.rows[r].size(); ++i) {
          if (i > 0) sql += ", ";
          sql += ins.rows[r][i]->ToSql();
        }
        sql += ")";
      }
      d.kind = RouteDecision::Kind::kScatterInsert;
      for (auto& [s, sql] : per_shard) {
        d.per_shard_sql.emplace_back(s, std::move(sql));
      }
      return d;
    }

    case sql::StatementKind::kUpdate:
    case sql::StatementKind::kDelete: {
      std::string table;
      const sql::Expr* where = nullptr;
      std::vector<const sql::SelectStmt*> subs;
      if (stmt.kind() == sql::StatementKind::kUpdate) {
        const auto& up = static_cast<const sql::UpdateStmt&>(stmt);
        table = up.table_name;
        where = up.where.get();
        for (const auto& [col, expr] : up.assignments) {
          (void)col;
          if (expr != nullptr) CollectSubqueries(*expr, &subs);
        }
      } else {
        const auto& del = static_cast<const sql::DeleteStmt&>(stmt);
        table = del.table_name;
        where = del.where.get();
      }
      if (where != nullptr) CollectSubqueries(*where, &subs);

      std::string lower = common::ToLower(table);
      ShardTableInfo info;
      bool registered = Lookup(lower, &info);
      bool is_temp = temp_tables.count(lower) > 0;

      // Subqueries must be co-resident with the target: a broadcast write
      // would evaluate them against partial data on most shards.
      int required_shard = -1;
      for (const sql::SelectStmt* sub : subs) {
        PHX_ASSIGN_OR_RETURN(RouteDecision sd,
                             RouteSelect(*sub, temp_tables, params));
        if (sd.kind != RouteDecision::Kind::kSingleShard) {
          return Status::Unsupported(
              "write with a fan-out subquery is not decomposable");
        }
        if (required_shard >= 0 && required_shard != sd.shard) {
          return Status::Unsupported("cross-shard subqueries in one write");
        }
        required_shard = sd.shard;
      }

      if (is_temp || !registered) {
        d.kind = RouteDecision::Kind::kSingleShard;
        d.shard = 0;
      } else if (info.cls == ShardTableClass::kPinned) {
        d.kind = RouteDecision::Kind::kSingleShard;
        d.shard = info.pinned_shard;
      } else if (info.cls == ShardTableClass::kReplicated) {
        if (!subs.empty()) {
          return Status::Unsupported(
              "write to replicated table with subqueries");
        }
        d.kind = RouteDecision::Kind::kBroadcastWrite;
        return d;
      } else {
        EqClosure closure;
        std::vector<const sql::Expr*> conjuncts;
        SplitConjuncts(where, &conjuncts);
        for (const sql::Expr* c : conjuncts) closure.AddConjunct(*c, params);
        std::vector<Value> key;
        bool bound = true;
        for (const auto& col : info.key_columns) {
          auto v = closure.Bound(col);
          if (!v) {
            bound = false;
            break;
          }
          key.push_back(*v);
        }
        if (bound) {
          d.kind = RouteDecision::Kind::kSingleShard;
          d.shard = ShardForKey(key, shard_count_);
        } else {
          if (!subs.empty()) {
            return Status::Unsupported(
                "unbound write with subqueries is not decomposable");
          }
          // Unbound key: run everywhere — each shard only matches the rows
          // it owns, so the union is exactly the unsharded result.
          d.kind = RouteDecision::Kind::kBroadcastWrite;
          return d;
        }
      }
      if (required_shard >= 0 && required_shard != d.shard) {
        return Status::Unsupported(
            "write target and its subqueries resolve to different shards");
      }
      return d;
    }

    case sql::StatementKind::kCreateTable: {
      const auto& ct = static_cast<const sql::CreateTableStmt&>(stmt);
      if (ct.temporary) {
        d.kind = RouteDecision::Kind::kSingleShard;
        d.shard = 0;
        return d;
      }
      if (!ct.replicated && ct.shard_key.empty() && ct.primary_key.empty()) {
        // Pinned table: exists on exactly one shard.
        d.kind = RouteDecision::Kind::kSingleShard;
        d.shard = ShardForName(ct.table_name, shard_count_);
        return d;
      }
      d.kind = RouteDecision::Kind::kBroadcastDdl;
      return d;
    }

    case sql::StatementKind::kDropTable: {
      const auto& dt = static_cast<const sql::DropTableStmt&>(stmt);
      std::string lower = common::ToLower(dt.table_name);
      if (temp_tables.count(lower) > 0) {
        d.kind = RouteDecision::Kind::kSingleShard;
        d.shard = 0;
        return d;
      }
      ShardTableInfo info;
      if (Lookup(lower, &info) && info.cls == ShardTableClass::kPinned) {
        d.kind = RouteDecision::Kind::kSingleShard;
        d.shard = info.pinned_shard;
        return d;
      }
      if (!Lookup(lower, &info)) {
        d.kind = RouteDecision::Kind::kSingleShard;
        d.shard = 0;
        return d;
      }
      d.kind = RouteDecision::Kind::kBroadcastDdl;
      return d;
    }

    case sql::StatementKind::kCreateProcedure:
    case sql::StatementKind::kDropProcedure:
      d.kind = RouteDecision::Kind::kBroadcastDdl;
      return d;

    case sql::StatementKind::kExec:
      // sys_* procedures are intercepted by the coordinator before routing;
      // user procedure bodies are opaque here and could touch any shard.
      return Status::Unsupported(
          "EXEC of user procedures is not supported with PHOENIX_SHARDS > 1");

    case sql::StatementKind::kBegin:
    case sql::StatementKind::kCommit:
    case sql::StatementKind::kRollback:
      return Status::Internal(
          "transaction control must be handled by the coordinator");
  }
  return Status::Internal("unhandled statement kind in shard router");
}

// ---------------------------------------------------------------------------
// Sidecar persistence
// ---------------------------------------------------------------------------

namespace {

std::string JoinCsv(const std::vector<std::string>& v) {
  if (v.empty()) return "-";
  std::string out;
  for (size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out += ",";
    out += v[i];
  }
  return out;
}

std::vector<std::string> SplitCsv(const std::string& s) {
  std::vector<std::string> out;
  if (s == "-") return out;
  std::string cur;
  for (char c : s) {
    if (c == ',') {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

}  // namespace

void ShardRouter::PersistLocked() const {
  if (sidecar_path_.empty()) return;
  std::string tmp = sidecar_path_ + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return;
    for (const auto& [name, info] : tables_) {
      char cls = info.cls == ShardTableClass::kHash       ? 'h'
                 : info.cls == ShardTableClass::kReplicated ? 'r'
                                                            : 'p';
      out << cls << ' ' << name << ' ' << info.pinned_shard << ' '
          << JoinCsv(info.key_columns) << ' ' << JoinCsv(info.columns)
          << '\n';
    }
  }
  std::rename(tmp.c_str(), sidecar_path_.c_str());
}

common::Status ShardRouter::SaveTo(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  const_cast<ShardRouter*>(this)->sidecar_path_ = path;
  PersistLocked();
  return Status::OK();
}

common::Status ShardRouter::LoadFrom(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  sidecar_path_ = path;
  std::ifstream in(path);
  if (!in) return Status::OK();  // no sidecar yet: empty registry
  tables_.clear();
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    char cls;
    std::string name, keys, cols;
    int pinned;
    if (!(ls >> cls >> name >> pinned >> keys >> cols)) {
      return Status::IoError("malformed shard_keys sidecar line: " + line);
    }
    ShardTableInfo info;
    info.cls = cls == 'h'   ? ShardTableClass::kHash
               : cls == 'r' ? ShardTableClass::kReplicated
                            : ShardTableClass::kPinned;
    info.pinned_shard = pinned;
    info.key_columns = SplitCsv(keys);
    info.columns = SplitCsv(cols);
    tables_[name] = std::move(info);
  }
  return Status::OK();
}

}  // namespace phoenix::engine
