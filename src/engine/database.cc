#include "engine/database.h"

#include <chrono>

#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <unordered_map>

#include "common/bytes.h"
#include "common/strings.h"
#include "engine/checkpoint.h"
#include "fault/fault.h"
#include "obs/metrics.h"

namespace phoenix::engine {

using common::Result;
using common::Row;
using common::Status;

Result<std::unique_ptr<Database>> Database::Open(
    const DatabaseOptions& options) {
  if (options.data_dir.empty()) {
    return Status::InvalidArgument("DatabaseOptions.data_dir is required");
  }
  if (::mkdir(options.data_dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IoError("mkdir '" + options.data_dir +
                           "': " + std::strerror(errno));
  }
  std::unique_ptr<Database> db(new Database(options));
  bool mvcc = true;
  if (options.mvcc >= 0) {
    mvcc = options.mvcc != 0;
  } else if (const char* env = std::getenv("PHOENIX_MVCC")) {
    mvcc = std::string(env) != "0";
  }
  db->mvcc_ = mvcc;
  PHX_RETURN_IF_ERROR(db->Recover());
  PHX_RETURN_IF_ERROR(db->wal_.Open(db->WalPath(), options.sync_mode));
  bool group_commit = true;
  if (options.group_commit >= 0) {
    group_commit = options.group_commit != 0;
  } else if (const char* env = std::getenv("PHOENIX_GROUP_COMMIT")) {
    group_commit = std::string(env) != "0";
  }
  int64_t wait_us = 0;
  if (options.group_commit_wait_us >= 0) {
    wait_us = options.group_commit_wait_us;
  } else if (const char* env = std::getenv("PHOENIX_GROUP_COMMIT_US")) {
    wait_us = std::atoll(env);
    if (wait_us < 0) wait_us = 0;
  }
  db->group_commit_.Configure(&db->wal_, group_commit,
                              std::chrono::microseconds(wait_us));
  return db;
}

Database::~Database() { wal_.Close().ok(); }

Transaction* Database::Begin(SessionId session) {
  return txns_.Begin(session);
}

SnapshotPtr Database::ReadSnapshot(Transaction* txn) {
  if (txn->snapshot_ == nullptr) {
    if (mvcc_) {
      txn->snapshot_ = txns_.PinSnapshot(txn->id());
    } else {
      // Legacy locking mode: read the newest committed state (plus own
      // writes). The caller's S/IS locks provide stability, so the
      // timestamp needs no GC pin.
      txn->snapshot_ = std::make_shared<const Snapshot>(
          Snapshot{Snapshot::kReadLatest, txn->id()});
    }
  }
  return txn->snapshot_;
}

void Database::PublishCommit(Transaction* txn) {
  // DDL-only transactions carry no pending versions but still change what a
  // query against the touched tables returns, so they go through publication
  // for the invalidation-counter bump alone.
  const bool has_versions = !txn->version_writes_.empty();
  if (!has_versions && txn->write_tables().empty()) return;

  // Allocate the commit timestamp, stamp every pending version, then mark
  // the publication complete. The publish lock is held only for the O(1)
  // begin/end steps, so a large write set (bulk insert) stamps without
  // serializing other commits; torn-commit protection comes from snapshot
  // pinning waiting out in-flight publications at or below its timestamp
  // (TransactionManager::PinSnapshot).
  const uint64_t cts = txns_.BeginPublish();
  for (const auto& [table, id] : txn->version_writes_) {
    table->StampCommit(id, txn->id(), cts);
  }
  // Bump the per-table invalidation counters BEFORE EndPublish: StableTs()
  // treats every cts at or below min(inflight)-1 as fully published, so the
  // counters must be current by the time this cts leaves the in-flight set.
  // Concurrent publications can reach this point out of cts order — keep the
  // max, the counter is "last change at or after".
  if (!txn->write_tables().empty()) {
    common::MutexLock lock(&table_versions_mu_);
    for (const std::string& name : txn->write_tables()) {
      uint64_t& version = table_versions_[name];
      if (cts > version) version = cts;
    }
  }
  txns_.EndPublish(cts);
  if (!has_versions) return;

  // The transaction is done reading — drop its own snapshot pin before
  // computing the watermark so a read-then-write transaction does not block
  // pruning of the versions it just superseded. Cursors still draining this
  // snapshot keep it pinned through their own references.
  txn->snapshot_.reset();

  // Commit-piggybacked GC: prune only the slots this transaction touched
  // (it still holds their X locks, so no other writer is mid-flight there).
  const uint64_t watermark = txns_.LowWatermark();
  auto writes = txn->version_writes_;
  std::sort(writes.begin(), writes.end(),
            [](const auto& a, const auto& b) {
              return a.first.get() != b.first.get()
                         ? a.first.get() < b.first.get()
                         : a.second < b.second;
            });
  writes.erase(std::unique(writes.begin(), writes.end()), writes.end());

  size_t freed = 0;
  static obs::Histogram* const chain_hist =
      obs::Registry::Global().histogram("engine.mvcc.chain_length");
  for (const auto& [table, id] : writes) {
    Table::PruneStats stats = table->PruneSlot(id, watermark);
    freed += stats.freed;
    if (obs::Enabled()) chain_hist->Record(stats.chain_length);
  }
  if (freed > 0 && obs::Enabled()) {
    static obs::Counter* const gced =
        obs::Registry::Global().counter("engine.mvcc.versions_gced");
    gced->Add(freed);
    // Age of the GC horizon: how far the oldest pinned snapshot (or the
    // clock, if nothing is pinned) trails the current clock, in timestamp
    // ticks. Large values mean long-lived snapshots are holding versions.
    static obs::Histogram* const age_hist =
        obs::Registry::Global().histogram("engine.mvcc.snapshot_age_at_gc");
    age_hist->Record(txns_.CurrentTs() - watermark);
  }
}

InvalidationDigest Database::CollectInvalidation(uint64_t since) const {
  InvalidationDigest digest;
  // Stable clock FIRST, counters SECOND (see header comment for why this
  // order is what makes the digest sound).
  digest.stable_ts = txns_.StableTs();
  common::MutexLock lock(&table_versions_mu_);
  for (const auto& [name, cts] : table_versions_) {
    if (cts > since) digest.changed.emplace_back(name, cts);
  }
  return digest;
}

Status Database::Commit(Transaction* txn) {
  if (txn == nullptr || !txn->active()) {
    return Status::InvalidArgument("commit on non-active transaction");
  }
  Status wal_status = Status::OK();
  if (!txn->redo_.empty()) {
    std::vector<WalRecord> batch;
    batch.reserve(txn->redo_.size() + 2);
    WalRecord begin;
    begin.type = WalRecordType::kBegin;
    begin.txn = txn->id();
    batch.push_back(std::move(begin));
    for (const WalRecord& rec : txn->redo_) batch.push_back(rec);
    WalRecord commit;
    commit.type = WalRecordType::kCommit;
    commit.txn = txn->id();
    batch.push_back(std::move(commit));

    // Group commit: blocks until the leader's force that covers this batch
    // completes. On failure the coordinator has already truncated any bytes
    // the group left in the file, so rolling back below is final — the
    // transaction cannot reappear after a crash.
    wal_status = group_commit_.Commit(batch);
  }
  if (!wal_status.ok()) {
    // Could not make the transaction durable — abort it instead.
    Rollback(txn).ok();
    return wal_status;
  }
  // Durable (or nothing to log): make the versions visible, then GC. Must
  // precede lock release so no competing writer sees half-published state.
  PublishCommit(txn);
  txn->state_ = Transaction::State::kCommitted;
  std::unique_ptr<Transaction> owned = txns_.Finish(txn->id());
  locks_.ReleaseAll(txn->id());
  return Status::OK();
}

Status Database::Rollback(Transaction* txn) {
  if (txn == nullptr) {
    return Status::InvalidArgument("rollback on null transaction");
  }
  if (!txn->active()) {
    return Status::InvalidArgument("rollback on non-active transaction");
  }
  for (auto it = txn->undo_.rbegin(); it != txn->undo_.rend(); ++it) {
    (*it)(this);
  }
  txn->state_ = Transaction::State::kAborted;
  std::unique_ptr<Transaction> owned = txns_.Finish(txn->id());
  locks_.ReleaseAll(txn->id());
  return Status::OK();
}

// ---------------------------------------------------------------------------
// DDL
// ---------------------------------------------------------------------------

Status Database::CreateTable(Transaction* txn, const std::string& name,
                             const common::Schema& schema,
                             const std::vector<std::string>& primary_key,
                             bool temporary, bool if_not_exists,
                             SessionId session) {
  // The fence keeps this eager catalog mutation out of a concurrent
  // checkpoint's snapshot → truncate window (see ddl_fence_).
  common::MutexLock fence(&ddl_fence_);
  common::MutexLock lock(&catalog_mu_);
  if (if_not_exists) {
    auto existing = catalog_.Resolve(name, session);
    if (existing.ok()) return Status::OK();
  }
  PHX_ASSIGN_OR_RETURN(
      TablePtr table,
      catalog_.CreateTable(name, schema, primary_key, temporary, session));
  std::string table_name = table->name();
  txn->PushUndo([table_name, session](Database* db) {
    common::MutexLock lock(&db->catalog_mu_);
    db->catalog_.DropTable(table_name, session).ok();
  });
  if (!temporary) {
    txn->RecordWrite(common::ToLower(table_name));
    WalRecord rec;
    rec.type = WalRecordType::kCreateTable;
    rec.txn = txn->id();
    rec.table_name = table_name;
    rec.schema = schema;
    rec.primary_key = primary_key;
    txn->LogRedo(std::move(rec));
  }
  return Status::OK();
}

Status Database::DropTable(Transaction* txn, const std::string& name,
                           bool if_exists, SessionId session) {
  TablePtr table;
  {
    common::MutexLock lock(&catalog_mu_);
    auto resolved = catalog_.Resolve(name, session);
    if (!resolved.ok()) {
      if (if_exists) return Status::OK();
      return resolved.status();
    }
    table = std::move(resolved).value();
  }
  // Exclude all writers before the table disappears from the catalog.
  // Snapshot readers that already resolved the table keep reading their
  // version chains through the shared_ptr — MVCC makes DROP non-blocking
  // for them. The DDL fence (taken after the lock wait so a blocked DROP
  // cannot stall a checkpoint for the lock timeout) keeps the eager catalog
  // mutation out of a concurrent checkpoint window.
  PHX_RETURN_IF_ERROR(LockTableExclusive(txn, table));
  {
    common::MutexLock fence(&ddl_fence_);
    common::MutexLock lock(&catalog_mu_);
    PHX_RETURN_IF_ERROR(catalog_.DropTable(table->name(), session));
  }
  txn->PushUndo([table, session](Database* db) {
    common::MutexLock lock(&db->catalog_mu_);
    db->catalog_.AdoptTable(table, session).ok();
  });
  if (!table->temporary()) {
    txn->RecordWrite(common::ToLower(table->name()));
    WalRecord rec;
    rec.type = WalRecordType::kDropTable;
    rec.txn = txn->id();
    rec.table_name = table->name();
    txn->LogRedo(std::move(rec));
  }
  return Status::OK();
}

Status Database::CreateProcedure(Transaction* txn, StoredProcedure proc) {
  common::MutexLock fence(&ddl_fence_);
  common::MutexLock lock(&catalog_mu_);
  std::string name = proc.name;
  WalRecord rec;
  rec.type = WalRecordType::kCreateProcedure;
  rec.txn = txn->id();
  rec.table_name = proc.name;
  rec.proc_params = proc.params;
  rec.proc_body = proc.body_sql;
  PHX_RETURN_IF_ERROR(catalog_.CreateProcedure(std::move(proc)));
  txn->PushUndo([name](Database* db) {
    common::MutexLock lock(&db->catalog_mu_);
    db->catalog_.DropProcedure(name).ok();
  });
  txn->LogRedo(std::move(rec));
  return Status::OK();
}

Status Database::DropProcedure(Transaction* txn, const std::string& name,
                               bool if_exists) {
  common::MutexLock fence(&ddl_fence_);
  common::MutexLock lock(&catalog_mu_);
  auto proc = catalog_.GetProcedure(name);
  if (!proc.ok()) {
    if (if_exists) return Status::OK();
    return proc.status();
  }
  PHX_RETURN_IF_ERROR(catalog_.DropProcedure(name));
  StoredProcedure saved = std::move(proc).value();
  txn->PushUndo([saved](Database* db) {
    common::MutexLock lock(&db->catalog_mu_);
    db->catalog_.CreateProcedure(saved).ok();
  });
  WalRecord rec;
  rec.type = WalRecordType::kDropProcedure;
  rec.txn = txn->id();
  rec.table_name = name;
  txn->LogRedo(std::move(rec));
  return Status::OK();
}

Result<TablePtr> Database::ResolveTable(const std::string& name,
                                        SessionId session) {
  common::MutexLock lock(&catalog_mu_);
  return catalog_.Resolve(name, session);
}

Result<StoredProcedure> Database::GetProcedure(const std::string& name) {
  common::MutexLock lock(&catalog_mu_);
  return catalog_.GetProcedure(name);
}

// ---------------------------------------------------------------------------
// Locking helpers
// ---------------------------------------------------------------------------

namespace {

std::string TableKey(const Table& table) {
  return common::ToLower(table.name());
}

}  // namespace

std::string Database::RowLockKey(const Table& table, const Row& row,
                                 RowId id) {
  if (table.has_primary_key()) {
    // Key-based resource names are stable across delete/re-insert, so a
    // transaction that deletes and re-creates a key keeps it locked.
    return "k:" + TableKey(table) + ":" + table.EncodePkFromRow(row);
  }
  return LockManager::RowResource(TableKey(table), id);
}

Status Database::LockTableShared(Transaction* txn, const TablePtr& table) {
  return locks_.Acquire(txn->id(), LockManager::TableResource(TableKey(*table)),
                        LockMode::kS, options_.lock_timeout);
}

Status Database::LockTableExclusive(Transaction* txn, const TablePtr& table) {
  return locks_.Acquire(txn->id(), LockManager::TableResource(TableKey(*table)),
                        LockMode::kX, options_.lock_timeout);
}

Status Database::LockRowShared(Transaction* txn, const TablePtr& table,
                               const std::string& row_key) {
  PHX_RETURN_IF_ERROR(
      locks_.Acquire(txn->id(), LockManager::TableResource(TableKey(*table)),
                     LockMode::kIS, options_.lock_timeout));
  return locks_.Acquire(txn->id(), row_key, LockMode::kS,
                        options_.lock_timeout);
}

Status Database::LockRowExclusive(Transaction* txn, const TablePtr& table,
                                  const std::string& row_key) {
  PHX_RETURN_IF_ERROR(
      locks_.Acquire(txn->id(), LockManager::TableResource(TableKey(*table)),
                     LockMode::kIX, options_.lock_timeout));
  return locks_.Acquire(txn->id(), row_key, LockMode::kX,
                        options_.lock_timeout);
}

common::Result<std::vector<std::pair<RowId, Row>>>
Database::LockAndCollectPkPrefix(Transaction* txn, const TablePtr& table,
                                 const std::vector<common::Value>& prefix,
                                 bool exclusive) {
  const std::string table_key = TableKey(*table);
  PHX_RETURN_IF_ERROR(
      locks_.Acquire(txn->id(), LockManager::TableResource(table_key),
                     exclusive ? LockMode::kIX : LockMode::kIS,
                     options_.lock_timeout));

  // Pass 1: find candidates and their (stable, key-based) lock names.
  std::vector<std::pair<RowId, std::string>> candidates;
  {
    common::MutexLock latch(&table->latch());
    PHX_ASSIGN_OR_RETURN(std::vector<RowId> ids,
                         table->ScanPkPrefix(prefix));
    candidates.reserve(ids.size());
    for (RowId id : ids) {
      candidates.emplace_back(id, RowLockKey(*table, table->GetRow(id), id));
    }
  }
  // Pass 2: lock each candidate row.
  for (const auto& [id, key] : candidates) {
    PHX_RETURN_IF_ERROR(locks_.Acquire(txn->id(), key,
                                       exclusive ? LockMode::kX : LockMode::kS,
                                       options_.lock_timeout));
  }
  // Pass 3: re-read under the latch; drop rows deleted (or whose key moved)
  // between the scan and the lock.
  std::vector<std::pair<RowId, Row>> out;
  {
    common::MutexLock latch(&table->latch());
    for (const auto& [id, key] : candidates) {
      if (!table->IsLive(id)) continue;
      if (RowLockKey(*table, table->GetRow(id), id) != key) continue;
      out.emplace_back(id, table->GetRow(id));
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// DML — writers install pending versions under their X/IX locks; commit
// stamps them (PublishCommit), rollback pops them (Table::RollbackSlot).
// ---------------------------------------------------------------------------

Status Database::InsertRow(Transaction* txn, const TablePtr& table, Row row) {
  const std::string table_key = TableKey(*table);
  if (table->has_primary_key()) {
    PHX_RETURN_IF_ERROR(
        locks_.Acquire(txn->id(), LockManager::TableResource(table_key),
                       LockMode::kIX, options_.lock_timeout));
    // Lock the key before touching the table so no legacy reader can
    // observe the uncommitted row (snapshot readers skip it by visibility).
    PHX_RETURN_IF_ERROR(locks_.Acquire(txn->id(),
                                       RowLockKey(*table, row, 0),
                                       LockMode::kX, options_.lock_timeout));
  } else {
    PHX_RETURN_IF_ERROR(
        locks_.Acquire(txn->id(), LockManager::TableResource(table_key),
                       LockMode::kX, options_.lock_timeout));
  }

  Row logged_row = row;  // full row for redo
  PHX_ASSIGN_OR_RETURN(RowId id,
                       table->InsertVersion(std::move(row), txn->id()));
  txn->AddVersionWrite(table, id);
  const TxnId txn_id = txn->id();
  txn->PushUndo([table, id, txn_id](Database*) {
    table->RollbackSlot(id, txn_id);
  });
  if (!table->temporary()) {
    txn->RecordWrite(table_key);
    WalRecord rec;
    rec.type = WalRecordType::kInsert;
    rec.txn = txn->id();
    rec.table_name = table->name();
    rec.row = std::move(logged_row);
    txn->LogRedo(std::move(rec));
  }
  return Status::OK();
}

Status Database::InsertBulk(Transaction* txn, const TablePtr& table,
                            std::vector<Row> rows) {
  PHX_RETURN_IF_ERROR(LockTableExclusive(txn, table));
  std::vector<RowId> ids;
  ids.reserve(rows.size());
  std::vector<Row> logged = rows;
  for (Row& row : rows) {
    PHX_ASSIGN_OR_RETURN(RowId id,
                         table->InsertVersion(std::move(row), txn->id()));
    ids.push_back(id);
    txn->AddVersionWrite(table, id);
  }
  const TxnId txn_id = txn->id();
  txn->PushUndo([table, ids, txn_id](Database*) {
    for (auto it = ids.rbegin(); it != ids.rend(); ++it) {
      table->RollbackSlot(*it, txn_id);
    }
  });
  if (!table->temporary()) {
    txn->RecordWrite(TableKey(*table));
    WalRecord rec;
    rec.type = WalRecordType::kBulkInsert;
    rec.txn = txn->id();
    rec.table_name = table->name();
    rec.rows = std::move(logged);
    txn->LogRedo(std::move(rec));
  }
  return Status::OK();
}

Status Database::DeleteRow(Transaction* txn, const TablePtr& table, RowId id) {
  Row old_row;
  {
    common::MutexLock latch(&table->latch());
    if (!table->IsLive(id)) return Status::NotFound("row already deleted");
    old_row = table->GetRow(id);
  }
  const std::string table_key = TableKey(*table);
  if (table->has_primary_key()) {
    PHX_RETURN_IF_ERROR(
        locks_.Acquire(txn->id(), LockManager::TableResource(table_key),
                       LockMode::kIX, options_.lock_timeout));
    PHX_RETURN_IF_ERROR(locks_.Acquire(txn->id(),
                                       RowLockKey(*table, old_row, id),
                                       LockMode::kX, options_.lock_timeout));
  } else {
    PHX_RETURN_IF_ERROR(
        locks_.Acquire(txn->id(), LockManager::TableResource(table_key),
                       LockMode::kX, options_.lock_timeout));
  }
  {
    common::MutexLock latch(&table->latch());
    // Re-check after the lock wait — a competing txn may have deleted it.
    if (!table->IsLive(id)) return Status::NotFound("row deleted concurrently");
    old_row = table->GetRow(id);
  }
  PHX_RETURN_IF_ERROR(table->DeleteVersion(id, txn->id()));
  txn->AddVersionWrite(table, id);
  const TxnId txn_id = txn->id();
  txn->PushUndo([table, id, txn_id](Database*) {
    table->RollbackSlot(id, txn_id);
  });
  if (!table->temporary()) {
    txn->RecordWrite(table_key);
    WalRecord rec;
    rec.type = WalRecordType::kDelete;
    rec.txn = txn->id();
    rec.table_name = table->name();
    if (table->has_primary_key()) {
      // Log only the PK — replay locates the victim via the index.
      for (int idx : table->pk_column_indexes()) {
        rec.row.push_back(old_row[static_cast<size_t>(idx)]);
      }
    } else {
      rec.row = old_row;
    }
    txn->LogRedo(std::move(rec));
  }
  return Status::OK();
}

Status Database::UpdateRow(Transaction* txn, const TablePtr& table, RowId id,
                           Row new_row) {
  Row old_row;
  {
    common::MutexLock latch(&table->latch());
    if (!table->IsLive(id)) return Status::NotFound("row not live");
    old_row = table->GetRow(id);
  }
  const std::string table_key = TableKey(*table);
  if (table->has_primary_key()) {
    PHX_RETURN_IF_ERROR(
        locks_.Acquire(txn->id(), LockManager::TableResource(table_key),
                       LockMode::kIX, options_.lock_timeout));
    PHX_RETURN_IF_ERROR(locks_.Acquire(txn->id(),
                                       RowLockKey(*table, old_row, id),
                                       LockMode::kX, options_.lock_timeout));
    // If the update moves the PK, lock the new key too.
    std::string new_key = RowLockKey(*table, new_row, id);
    PHX_RETURN_IF_ERROR(locks_.Acquire(txn->id(), new_key, LockMode::kX,
                                       options_.lock_timeout));
  } else {
    PHX_RETURN_IF_ERROR(
        locks_.Acquire(txn->id(), LockManager::TableResource(table_key),
                       LockMode::kX, options_.lock_timeout));
  }

  Row logged_new = new_row;
  {
    common::MutexLock latch(&table->latch());
    if (!table->IsLive(id)) return Status::NotFound("row deleted concurrently");
    old_row = table->GetRow(id);
  }

  const TxnId txn_id = txn->id();
  const bool key_moved =
      table->has_primary_key() &&
      table->EncodePkFromRow(old_row) != table->EncodePkFromRow(new_row);
  if (!key_moved) {
    PHX_RETURN_IF_ERROR(
        table->UpdateVersion(id, std::move(new_row), txn->id()));
    txn->AddVersionWrite(table, id);
    txn->PushUndo([table, id, txn_id](Database*) {
      table->RollbackSlot(id, txn_id);
    });
  } else {
    // A key-moving update is a delete of the old lineage plus an insert
    // into the new key's lineage, so snapshot readers resolve both keys
    // correctly. Both slots roll back independently.
    PHX_RETURN_IF_ERROR(table->DeleteVersion(id, txn->id()));
    txn->AddVersionWrite(table, id);
    txn->PushUndo([table, id, txn_id](Database*) {
      table->RollbackSlot(id, txn_id);
    });
    PHX_ASSIGN_OR_RETURN(RowId new_id,
                         table->InsertVersion(std::move(new_row), txn->id()));
    txn->AddVersionWrite(table, new_id);
    txn->PushUndo([table, new_id, txn_id](Database*) {
      table->RollbackSlot(new_id, txn_id);
    });
  }
  if (!table->temporary()) {
    txn->RecordWrite(table_key);
    WalRecord rec;
    rec.type = WalRecordType::kUpdate;
    rec.txn = txn->id();
    rec.table_name = table->name();
    if (table->has_primary_key()) {
      for (int idx : table->pk_column_indexes()) {
        rec.row.push_back(old_row[static_cast<size_t>(idx)]);
      }
    } else {
      rec.row = old_row;
    }
    rec.new_row = std::move(logged_new);
    txn->LogRedo(std::move(rec));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Durability
// ---------------------------------------------------------------------------

Status Database::Checkpoint() {
  // The snapshot → truncate window must not lose a commit: freeze Begin()
  // first (no new transaction can start), take the coordinator's exclusive
  // WAL lock (no in-flight group force can race the truncate), take the DDL
  // fence, and verify write quiescence — no active transaction has written
  // anything. Active readers are harmless: the image below is the newest
  // committed state, and a reader that turns writer mid-window keeps its
  // versions unstamped (invisible to the image) until its commit, which
  // blocks on the WAL fence and lands in the post-truncate log. That
  // argument covers DML only — DDL mutates the catalog eagerly, before
  // commit — so the fence makes an already-active transaction's first DDL
  // statement wait out the whole window instead of leaking an uncommitted
  // CREATE into (or hiding an uncommitted DROP from) the durable image.
  TransactionManager::BeginFreeze freeze(&txns_);
  std::unique_lock<std::mutex> wal_exclusion = group_commit_.ExclusiveWalLock();
  common::MutexLock ddl_fence(&ddl_fence_);
  if (txns_.ActiveWriterCount() > 0) {
    return Status::Aborted("checkpoint requires write quiescence (" +
                           std::to_string(txns_.ActiveWriterCount()) +
                           " active writers)");
  }
  // Test hook: a delay armed here widens the quiescence-check → snapshot
  // window so races against it become deterministic.
  PHX_FAULT_POINT("checkpoint.ddl_window");
  const Snapshot committed{Snapshot::kReadLatest, 0};
  CheckpointData data;
  {
    common::MutexLock lock(&catalog_mu_);
    for (const TablePtr& table : catalog_.PersistentTables()) {
      CheckpointData::TableSnapshot snap;
      snap.name = table->name();
      snap.schema = table->schema();
      snap.primary_key = table->primary_key();
      snap.rows = table->SnapshotRowsAsOf(committed);
      data.tables.push_back(std::move(snap));
    }
    data.procedures = catalog_.AllProcedures();
  }
  PHX_RETURN_IF_ERROR(WriteCheckpoint(CheckpointPath(), data));
  return wal_.Truncate();
}

void Database::CrashVolatile() {
  txns_.AbandonAll();
  locks_.Reset();
  {
    // Safe to wipe: the crash kills every session, so no client connection
    // (and no client-side result cache keyed to this server's clock) can
    // survive into the recovered instance. The clock itself is not reset —
    // post-restart commits keep taking strictly larger timestamps.
    common::MutexLock lock(&table_versions_mu_);
    table_versions_.clear();
  }
  common::MutexLock lock(&catalog_mu_);
  catalog_.Clear();
}

Status Database::ApplyWalRecord(const WalRecord& record) {
  switch (record.type) {
    case WalRecordType::kCreateTable: {
      auto created = catalog_.CreateTable(record.table_name, record.schema,
                                          record.primary_key,
                                          /*temporary=*/false,
                                          /*owner_session=*/0);
      return created.ok() ? Status::OK() : created.status();
    }
    case WalRecordType::kDropTable:
      return catalog_.DropTable(record.table_name, /*session=*/0);
    case WalRecordType::kCreateProcedure: {
      StoredProcedure proc;
      proc.name = record.table_name;
      proc.params = record.proc_params;
      proc.body_sql = record.proc_body;
      return catalog_.CreateProcedure(std::move(proc));
    }
    case WalRecordType::kDropProcedure:
      return catalog_.DropProcedure(record.table_name);
    case WalRecordType::kInsert: {
      PHX_ASSIGN_OR_RETURN(TablePtr table,
                           catalog_.Resolve(record.table_name, 0));
      PHX_ASSIGN_OR_RETURN([[maybe_unused]] RowId id,
                           table->Insert(record.row));
      return Status::OK();
    }
    case WalRecordType::kBulkInsert: {
      PHX_ASSIGN_OR_RETURN(TablePtr table,
                           catalog_.Resolve(record.table_name, 0));
      return table->InsertBulk(record.rows);
    }
    case WalRecordType::kDelete: {
      PHX_ASSIGN_OR_RETURN(TablePtr table,
                           catalog_.Resolve(record.table_name, 0));
      if (table->has_primary_key()) {
        PHX_ASSIGN_OR_RETURN(RowId id, table->LookupPk(record.row));
        return table->Delete(id);
      }
      // No PK: find the first live row with equal content.
      for (RowId id = 0; id < table->slot_count(); ++id) {
        if (!table->IsLive(id)) continue;
        if (table->GetRow(id) == record.row) return table->Delete(id);
      }
      return Status::NotFound("replay delete: row not found in '" +
                              record.table_name + "'");
    }
    case WalRecordType::kUpdate: {
      PHX_ASSIGN_OR_RETURN(TablePtr table,
                           catalog_.Resolve(record.table_name, 0));
      if (table->has_primary_key()) {
        PHX_ASSIGN_OR_RETURN(RowId id, table->LookupPk(record.row));
        return table->Update(id, record.new_row);
      }
      for (RowId id = 0; id < table->slot_count(); ++id) {
        if (!table->IsLive(id)) continue;
        if (table->GetRow(id) == record.row) {
          return table->Update(id, record.new_row);
        }
      }
      return Status::NotFound("replay update: row not found in '" +
                              record.table_name + "'");
    }
    case WalRecordType::kBegin:
    case WalRecordType::kCommit:
    case WalRecordType::kAbort:
      return Status::OK();
  }
  return Status::Internal("unhandled WAL record type");
}

Status Database::Recover() {
  common::MutexLock lock(&catalog_mu_);
  catalog_.Clear();

  // 1. Load the last checkpoint. Rows become single base versions
  // (begin_ts = Table::kBaseTs), visible to every snapshot.
  PHX_ASSIGN_OR_RETURN(CheckpointData checkpoint,
                       ReadCheckpoint(CheckpointPath()));
  for (auto& table_snap : checkpoint.tables) {
    PHX_ASSIGN_OR_RETURN(
        TablePtr table,
        catalog_.CreateTable(table_snap.name, table_snap.schema,
                             table_snap.primary_key, /*temporary=*/false,
                             /*owner_session=*/0));
    PHX_RETURN_IF_ERROR(table->InsertBulk(std::move(table_snap.rows)));
  }
  for (auto& proc : checkpoint.procedures) {
    PHX_RETURN_IF_ERROR(catalog_.CreateProcedure(std::move(proc)));
  }

  // 2. Replay committed transactions from the WAL, in commit order, as base
  // ops — recovery is single-threaded and logical, and rebuilds exactly one
  // version per surviving row. Records are buffered per transaction and
  // applied when the commit record is seen; transactions without a commit
  // record (crash victims) are discarded.
  PHX_ASSIGN_OR_RETURN(std::vector<WalRecord> records, ReadWalFile(WalPath()));
  std::unordered_map<TxnId, std::vector<const WalRecord*>> pending;
  for (const WalRecord& rec : records) {
    switch (rec.type) {
      case WalRecordType::kBegin:
        pending[rec.txn];
        break;
      case WalRecordType::kCommit: {
        auto it = pending.find(rec.txn);
        if (it != pending.end()) {
          for (const WalRecord* op : it->second) {
            PHX_RETURN_IF_ERROR(ApplyWalRecord(*op));
          }
          pending.erase(it);
        }
        break;
      }
      case WalRecordType::kAbort:
        pending.erase(rec.txn);
        break;
      default:
        pending[rec.txn].push_back(&rec);
        break;
    }
  }
  return Status::OK();
}

void Database::DropSessionState(SessionId session) {
  common::MutexLock lock(&catalog_mu_);
  catalog_.DropSessionTempTables(session);
}

}  // namespace phoenix::engine
