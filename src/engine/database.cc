#include "engine/database.h"

#include <chrono>

#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "common/backoff.h"
#include "common/bytes.h"
#include "common/parallel.h"
#include "common/strings.h"
#include "engine/checkpoint.h"
#include "fault/fault.h"
#include "obs/metrics.h"

namespace phoenix::engine {

using common::Result;
using common::Row;
using common::Status;

namespace {

bool IsDdlRecord(WalRecordType type) {
  switch (type) {
    case WalRecordType::kCreateTable:
    case WalRecordType::kDropTable:
    case WalRecordType::kCreateProcedure:
    case WalRecordType::kDropProcedure:
      return true;
    default:
      return false;
  }
}

bool IsTableRecord(WalRecordType type) {
  switch (type) {
    case WalRecordType::kCreateTable:
    case WalRecordType::kDropTable:
    case WalRecordType::kInsert:
    case WalRecordType::kBulkInsert:
    case WalRecordType::kDelete:
    case WalRecordType::kUpdate:
      return true;
    default:
      return false;
  }
}

}  // namespace

Result<std::unique_ptr<Database>> Database::Open(
    const DatabaseOptions& options) {
  if (options.data_dir.empty()) {
    return Status::InvalidArgument("DatabaseOptions.data_dir is required");
  }
  if (::mkdir(options.data_dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IoError("mkdir '" + options.data_dir +
                           "': " + std::strerror(errno));
  }
  std::unique_ptr<Database> db(new Database(options));
  bool mvcc = true;
  if (options.mvcc >= 0) {
    mvcc = options.mvcc != 0;
  } else if (const char* env = std::getenv("PHOENIX_MVCC")) {
    mvcc = std::string(env) != "0";
  }
  db->mvcc_ = mvcc;
  // Recovery/checkpoint knobs resolve BEFORE Recover() so the very first
  // recovery already runs with the requested parallelism and format.
  int recovery_threads = -1;
  if (options.recovery_threads >= 0) {
    recovery_threads = options.recovery_threads;
  } else if (const char* env = std::getenv("PHOENIX_RECOVERY_THREADS")) {
    // Clamp-to-disabled rule: garbage, partial parses, and negatives all
    // mean "unset" (auto-sized), never a surprise serial run.
    recovery_threads =
        static_cast<int>(common::ParseNonNegativeKnob(env, -1));
  }
  if (recovery_threads < 0) {
    unsigned hw = std::thread::hardware_concurrency();
    recovery_threads = hw == 0 ? 1 : static_cast<int>(std::min(hw, 8u));
  }
  db->recovery_threads_ = recovery_threads;
  bool incremental = true;
  if (options.incremental_checkpoints >= 0) {
    incremental = options.incremental_checkpoints != 0;
  } else if (const char* env = std::getenv("PHOENIX_CHECKPOINT_INCREMENTAL")) {
    incremental = std::string(env) != "0";
  }
  db->incremental_ = incremental;
  int64_t checkpoint_wal_bytes = 0;
  if (options.checkpoint_wal_bytes >= 0) {
    checkpoint_wal_bytes = options.checkpoint_wal_bytes;
  } else if (const char* env = std::getenv("PHOENIX_CHECKPOINT_WAL_BYTES")) {
    // Clamp-to-disabled: garbage/negative values leave the trigger off.
    checkpoint_wal_bytes = common::ParseNonNegativeKnob(env, 0);
  }
  db->checkpoint_wal_bytes_ = checkpoint_wal_bytes;
  {
    // Epoch state loads BEFORE Recover so WAL kEpoch stamps can only raise
    // it further (recovered epoch = max(file, WAL)).
    common::MutexLock lock(&db->epoch_mu_);
    db->LoadEpochState();
  }
  PHX_RETURN_IF_ERROR(db->Recover());
  PHX_RETURN_IF_ERROR(db->wal_.Open(db->WalPath(), options.sync_mode));
  {
    common::MutexLock lock(&db->epoch_mu_);
    PHX_RETURN_IF_ERROR(db->PersistEpochState());
    // Re-stamp a non-initial epoch into the (possibly truncated) log so the
    // WAL alone carries the fencing history forward. Epoch 1 is implicit.
    if (db->epoch_.load(std::memory_order_relaxed) > 1) {
      WalRecord stamp;
      stamp.type = WalRecordType::kEpoch;
      stamp.value = db->epoch_.load(std::memory_order_relaxed);
      PHX_RETURN_IF_ERROR(db->wal_.AppendBatch({stamp}));
    }
  }
  bool group_commit = true;
  if (options.group_commit >= 0) {
    group_commit = options.group_commit != 0;
  } else if (const char* env = std::getenv("PHOENIX_GROUP_COMMIT")) {
    group_commit = std::string(env) != "0";
  }
  int64_t wait_us = 0;
  if (options.group_commit_wait_us >= 0) {
    wait_us = options.group_commit_wait_us;
  } else if (const char* env = std::getenv("PHOENIX_GROUP_COMMIT_US")) {
    // Clamp-to-disabled: garbage/negative values mean "no extra wait".
    wait_us = common::ParseNonNegativeKnob(env, 0);
  }
  db->group_commit_.Configure(&db->wal_, group_commit,
                              std::chrono::microseconds(wait_us));
  if (checkpoint_wal_bytes > 0) {
    // Started last: everything the loop touches is fully constructed, and a
    // failed Open never leaves a thread behind.
    Database* raw = db.get();
    db->checkpointer_ = std::thread([raw] { raw->CheckpointerLoop(); });
  }
  return db;
}

Database::~Database() {
  if (checkpointer_.joinable()) {
    {
      common::MutexLock lock(&bg_mu_);
      bg_stop_ = true;
    }
    bg_cv_.NotifyAll();
    checkpointer_.join();
  }
  wal_.Close().ok();
}

Transaction* Database::Begin(SessionId session) {
  return txns_.Begin(session);
}

SnapshotPtr Database::ReadSnapshot(Transaction* txn) {
  if (txn->snapshot_ == nullptr) {
    if (mvcc_) {
      txn->snapshot_ = txns_.PinSnapshot(txn->id());
    } else {
      // Legacy locking mode: read the newest committed state (plus own
      // writes). The caller's S/IS locks provide stability, so the
      // timestamp needs no GC pin.
      txn->snapshot_ = std::make_shared<const Snapshot>(
          Snapshot{Snapshot::kReadLatest, txn->id()});
    }
  }
  return txn->snapshot_;
}

void Database::PublishCommit(Transaction* txn) {
  // DDL-only transactions carry no pending versions but still change what a
  // query against the touched tables returns, so they go through publication
  // for the invalidation-counter bump alone.
  const bool has_versions = !txn->version_writes_.empty();
  if (!has_versions && txn->write_tables().empty()) return;

  // Allocate the commit timestamp, stamp every pending version, then mark
  // the publication complete. The publish lock is held only for the O(1)
  // begin/end steps, so a large write set (bulk insert) stamps without
  // serializing other commits; torn-commit protection comes from snapshot
  // pinning waiting out in-flight publications at or below its timestamp
  // (TransactionManager::PinSnapshot).
  const uint64_t cts = txns_.BeginPublish();
  for (const auto& [table, id] : txn->version_writes_) {
    table->StampCommit(id, txn->id(), cts);
  }
  // Bump the per-table invalidation counters BEFORE EndPublish: StableTs()
  // treats every cts at or below min(inflight)-1 as fully published, so the
  // counters must be current by the time this cts leaves the in-flight set.
  // Concurrent publications can reach this point out of cts order — keep the
  // max, the counter is "last change at or after".
  if (!txn->write_tables().empty()) {
    common::MutexLock lock(&table_versions_mu_);
    for (const std::string& name : txn->write_tables()) {
      uint64_t& version = table_versions_[name];
      if (cts > version) version = cts;
    }
  }
  txns_.EndPublish(cts);
  if (!has_versions) return;

  // The transaction is done reading — drop its own snapshot pin before
  // computing the watermark so a read-then-write transaction does not block
  // pruning of the versions it just superseded. Cursors still draining this
  // snapshot keep it pinned through their own references.
  txn->snapshot_.reset();

  // Commit-piggybacked GC: prune only the slots this transaction touched
  // (it still holds their X locks, so no other writer is mid-flight there).
  const uint64_t watermark = txns_.LowWatermark();
  auto writes = txn->version_writes_;
  std::sort(writes.begin(), writes.end(),
            [](const auto& a, const auto& b) {
              return a.first.get() != b.first.get()
                         ? a.first.get() < b.first.get()
                         : a.second < b.second;
            });
  writes.erase(std::unique(writes.begin(), writes.end()), writes.end());

  size_t freed = 0;
  static obs::Histogram* const chain_hist =
      obs::Registry::Global().histogram("engine.mvcc.chain_length");
  for (const auto& [table, id] : writes) {
    Table::PruneStats stats = table->PruneSlot(id, watermark);
    freed += stats.freed;
    if (obs::Enabled()) chain_hist->Record(stats.chain_length);
  }
  if (freed > 0 && obs::Enabled()) {
    static obs::Counter* const gced =
        obs::Registry::Global().counter("engine.mvcc.versions_gced");
    gced->Add(freed);
    // Age of the GC horizon: how far the oldest pinned snapshot (or the
    // clock, if nothing is pinned) trails the current clock, in timestamp
    // ticks. Large values mean long-lived snapshots are holding versions.
    static obs::Histogram* const age_hist =
        obs::Registry::Global().histogram("engine.mvcc.snapshot_age_at_gc");
    age_hist->Record(txns_.CurrentTs() - watermark);
  }
}

InvalidationDigest Database::CollectInvalidation(uint64_t since) const {
  InvalidationDigest digest;
  // Stable clock FIRST, counters SECOND (see header comment for why this
  // order is what makes the digest sound).
  digest.stable_ts = txns_.StableTs();
  common::MutexLock lock(&table_versions_mu_);
  for (const auto& [name, cts] : table_versions_) {
    if (cts > since) digest.changed.emplace_back(name, cts);
  }
  return digest;
}

Status Database::Commit(Transaction* txn) {
  if (txn == nullptr || !txn->active()) {
    return Status::InvalidArgument("commit on non-active transaction");
  }
  Status wal_status = Status::OK();
  if (!txn->redo_.empty() && fenced()) {
    // Fenced ex-primary: a newer epoch exists somewhere, so no write may
    // reach this WAL — reject BEFORE the append, not just at connect.
    Rollback(txn).ok();
    return Status::StaleEpoch(
        "write rejected: server epoch " + std::to_string(epoch()) +
        " fenced by observed epoch " +
        std::to_string(fence_epoch_.load(std::memory_order_acquire)));
  }
  if (!txn->redo_.empty()) {
    std::vector<WalRecord> batch;
    batch.reserve(txn->redo_.size() + 2);
    WalRecord begin;
    begin.type = WalRecordType::kBegin;
    begin.txn = txn->id();
    batch.push_back(std::move(begin));
    for (const WalRecord& rec : txn->redo_) batch.push_back(rec);
    WalRecord commit;
    commit.type = WalRecordType::kCommit;
    commit.txn = txn->id();
    batch.push_back(std::move(commit));

    // Group commit: blocks until the leader's force that covers this batch
    // completes. On failure the coordinator has already truncated any bytes
    // the group left in the file, so rolling back below is final — the
    // transaction cannot reappear after a crash.
    wal_status = group_commit_.Commit(batch);
  }
  if (!wal_status.ok()) {
    // Could not make the transaction durable — abort it instead.
    Rollback(txn).ok();
    return wal_status;
  }
  // Durable (or nothing to log): mark the touched tables dirty for the
  // incremental checkpointer (must happen before Finish — the transaction
  // still counts as an active writer, so checkpoint quiescence cannot slip
  // between the WAL append and these marks), then make the versions
  // visible, then GC. Publication must precede lock release so no competing
  // writer sees half-published state.
  MarkDirtyFromRedo(*txn);
  PublishCommit(txn);
  txn->state_ = Transaction::State::kCommitted;
  std::unique_ptr<Transaction> owned = txns_.Finish(txn->id());
  locks_.ReleaseAll(txn->id());
  MaybeKickCheckpointer();
  return Status::OK();
}

Status Database::Prepare(Transaction* txn, const std::string& gtid) {
  if (txn == nullptr || !txn->active()) {
    return Status::InvalidArgument("prepare on non-active transaction");
  }
  if (gtid.empty()) return Status::InvalidArgument("empty global txn id");
  if (!txn->redo_.empty() && fenced()) {
    Rollback(txn).ok();
    return Status::StaleEpoch(
        "prepare rejected: server epoch " + std::to_string(epoch()) +
        " fenced by observed epoch " +
        std::to_string(fence_epoch_.load(std::memory_order_acquire)));
  }
  if (!txn->redo_.empty()) {
    std::vector<WalRecord> batch;
    batch.reserve(txn->redo_.size() + 2);
    WalRecord begin;
    begin.type = WalRecordType::kBegin;
    begin.txn = txn->id();
    batch.push_back(std::move(begin));
    for (const WalRecord& rec : txn->redo_) batch.push_back(rec);
    WalRecord prepare;
    prepare.type = WalRecordType::kPrepare;
    prepare.txn = txn->id();
    prepare.table_name = gtid;
    batch.push_back(std::move(prepare));
    Status wal_status = group_commit_.Commit(batch);
    if (!wal_status.ok()) {
      // Presumed abort: an unprepared participant simply rolls back.
      Rollback(txn).ok();
      return wal_status;
    }
  }
  // The transaction stays active and locked, versions unpublished, until
  // the coordinator decides. Finish() is NOT called — it still counts as an
  // active writer, so checkpoints cannot truncate the WAL out from under an
  // undecided prepare.
  bool inserted = false;
  {
    common::MutexLock lock(&prepared_mu_);
    inserted = prepared_.emplace(gtid, txn).second;
  }
  if (!inserted) {
    Rollback(txn).ok();
    return Status::AlreadyExists("global txn id '" + gtid +
                                 "' already prepared");
  }
  return Status::OK();
}

Status Database::CommitPrepared(const std::string& gtid) {
  Transaction* txn = nullptr;
  {
    common::MutexLock lock(&prepared_mu_);
    auto it = prepared_.find(gtid);
    if (it == prepared_.end()) {
      return Status::NotFound("global txn id '" + gtid + "' is not prepared");
    }
    txn = it->second;
    prepared_.erase(it);
  }
  if (!txn->redo_.empty()) {
    WalRecord commit;
    commit.type = WalRecordType::kCommit;
    commit.txn = txn->id();
    std::vector<WalRecord> batch;
    batch.push_back(std::move(commit));
    Status wal_status = group_commit_.Commit(batch);
    if (!wal_status.ok()) {
      // The decision is already durable at the coordinator; leaving the
      // transaction prepared lets a later Recover() replay it from the
      // kPrepare batch + resolver. Re-register and surface the error.
      common::MutexLock lock(&prepared_mu_);
      prepared_.emplace(gtid, txn);
      return wal_status;
    }
  }
  MarkDirtyFromRedo(*txn);
  PublishCommit(txn);
  txn->state_ = Transaction::State::kCommitted;
  std::unique_ptr<Transaction> owned = txns_.Finish(txn->id());
  locks_.ReleaseAll(txn->id());
  MaybeKickCheckpointer();
  return Status::OK();
}

Status Database::RollbackPrepared(const std::string& gtid) {
  Transaction* txn = nullptr;
  {
    common::MutexLock lock(&prepared_mu_);
    auto it = prepared_.find(gtid);
    if (it == prepared_.end()) {
      return Status::NotFound("global txn id '" + gtid + "' is not prepared");
    }
    txn = it->second;
    prepared_.erase(it);
  }
  if (!txn->redo_.empty()) {
    // Best-effort abort marker: replay treats a prepare with no decision as
    // aborted anyway (presumed abort), the marker just spares the resolver
    // lookup.
    WalRecord abort;
    abort.type = WalRecordType::kAbort;
    abort.txn = txn->id();
    std::vector<WalRecord> batch;
    batch.push_back(std::move(abort));
    group_commit_.Commit(batch).ok();
  }
  return Rollback(txn);
}

void Database::MarkDirtyFromRedo(const Transaction& txn) {
  if (txn.redo_.empty()) return;
  common::MutexLock lock(&table_versions_mu_);
  for (const WalRecord& rec : txn.redo_) {
    switch (rec.type) {
      case WalRecordType::kCreateTable:
      case WalRecordType::kDropTable:
      case WalRecordType::kInsert:
      case WalRecordType::kBulkInsert:
      case WalRecordType::kDelete:
      case WalRecordType::kUpdate:
        dirty_tables_.insert(common::ToLower(rec.table_name));
        break;
      default:
        // Procedure records: procedures live inline in the manifest, which
        // every checkpoint rewrites, so they need no dirty tracking.
        break;
    }
  }
}

// ---------------------------------------------------------------------------
// Replication + epoch fencing (DESIGN.md §18)
// ---------------------------------------------------------------------------

void Database::LoadEpochState() {
  std::FILE* f = std::fopen(EpochPath().c_str(), "r");
  if (f == nullptr) return;  // fresh data dir — epoch 1, no fence
  unsigned long long epoch = 0, fence = 0, repl_lsn = 0;
  if (std::fscanf(f, "v1 %llu %llu %llu", &epoch, &fence, &repl_lsn) == 3) {
    if (epoch > epoch_.load(std::memory_order_relaxed)) {
      epoch_.store(epoch, std::memory_order_release);
    }
    if (fence > fence_epoch_.load(std::memory_order_relaxed)) {
      fence_epoch_.store(fence, std::memory_order_release);
    }
    if (repl_lsn > replicated_lsn_.load(std::memory_order_relaxed)) {
      replicated_lsn_.store(repl_lsn, std::memory_order_release);
    }
  }
  std::fclose(f);
}

Status Database::PersistEpochState() {
  const std::string tmp = EpochPath() + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("open '" + tmp + "': " + std::strerror(errno));
  }
  std::fprintf(
      f, "v1 %llu %llu %llu\n",
      static_cast<unsigned long long>(epoch_.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          fence_epoch_.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          replicated_lsn_.load(std::memory_order_relaxed)));
  std::fclose(f);
  if (std::rename(tmp.c_str(), EpochPath().c_str()) != 0) {
    return Status::IoError("rename '" + tmp + "': " + std::strerror(errno));
  }
  return Status::OK();
}

Status Database::NoteObservedEpoch(uint64_t observed) {
  if (observed <= fence_epoch_.load(std::memory_order_acquire)) {
    return Status::OK();
  }
  common::MutexLock lock(&epoch_mu_);
  if (observed <= fence_epoch_.load(std::memory_order_relaxed)) {
    return Status::OK();
  }
  fence_epoch_.store(observed, std::memory_order_release);
  // Persist before any caller acts on the fence: a fence that rejects a
  // connect must still reject after a restart.
  return PersistEpochState();
}

Result<uint64_t> Database::BumpEpoch(uint64_t at_least) {
  common::MutexLock lock(&epoch_mu_);
  uint64_t next = epoch_.load(std::memory_order_relaxed);
  next = std::max(next, fence_epoch_.load(std::memory_order_relaxed));
  next = std::max(next, at_least) + 1;
  epoch_.store(next, std::memory_order_release);
  PHX_RETURN_IF_ERROR(PersistEpochState());
  // Durable WAL stamp: recovery on this node can never come back below the
  // promoted epoch even if the epoch file is lost.
  WalRecord stamp;
  stamp.type = WalRecordType::kEpoch;
  stamp.value = next;
  PHX_RETURN_IF_ERROR(group_commit_.Commit({stamp}));
  return next;
}

Status Database::ApplyReplicated(std::vector<ReplicatedTxn> txns) {
  if (txns.empty()) return Status::OK();
  for (ReplicatedTxn& txn : txns) {
    if (txn.records.empty() ||
        txn.records.back().type != WalRecordType::kCommit) {
      return Status::InvalidArgument(
          "replicated transaction is not commit-terminated");
    }
    // The kReplLsn stamp rides inside the commit batch, so the applied-LSN
    // becomes durable atomically with the transaction it covers.
    WalRecord lsn;
    lsn.type = WalRecordType::kReplLsn;
    lsn.txn = txn.records.back().txn;
    lsn.value = txn.end_lsn;
    txn.records.insert(txn.records.end() - 1, std::move(lsn));
    PHX_RETURN_IF_ERROR(group_commit_.Commit(txn.records));
  }

  std::vector<const WalRecord*> ops;
  std::unordered_set<std::string> touched;
  for (const ReplicatedTxn& txn : txns) {
    for (const WalRecord& rec : txn.records) {
      switch (rec.type) {
        case WalRecordType::kBegin:
        case WalRecordType::kCommit:
        case WalRecordType::kAbort:
        case WalRecordType::kEpoch:
        case WalRecordType::kReplLsn:
        case WalRecordType::kPrepare:
          break;
        default:
          ops.push_back(&rec);
          if (IsTableRecord(rec.type)) {
            touched.insert(common::ToLower(rec.table_name));
          }
          break;
      }
    }
  }
  {
    common::MutexLock lock(&catalog_mu_);
    // Small batches are not worth the worker-pool round trip; the result is
    // byte-identical either way (PR-7 property).
    size_t threads =
        recovery_threads_ <= 0 || ops.size() < 64
            ? 0
            : static_cast<size_t>(recovery_threads_);
    PHX_RETURN_IF_ERROR(ReplayCommitted(ops, threads));
  }
  // Publish invalidation + dirty marks so post-promotion clients' result
  // caches see the replicated churn and the incremental checkpointer
  // rewrites the touched tables.
  const uint64_t cts = txns_.BeginPublish();
  {
    common::MutexLock tv(&table_versions_mu_);
    for (const std::string& name : touched) {
      dirty_tables_.insert(name);
      if (!IsPhoenixArtifactTable(name)) {
        uint64_t& version = table_versions_[name];
        if (cts > version) version = cts;
      }
    }
  }
  txns_.EndPublish(cts);
  const uint64_t end = txns.back().end_lsn;
  uint64_t cur = replicated_lsn_.load(std::memory_order_relaxed);
  while (end > cur && !replicated_lsn_.compare_exchange_weak(
                          cur, end, std::memory_order_release)) {
  }
  MaybeKickCheckpointer();
  return Status::OK();
}

Status Database::Rollback(Transaction* txn) {
  if (txn == nullptr) {
    return Status::InvalidArgument("rollback on null transaction");
  }
  if (!txn->active()) {
    return Status::InvalidArgument("rollback on non-active transaction");
  }
  for (auto it = txn->undo_.rbegin(); it != txn->undo_.rend(); ++it) {
    (*it)(this);
  }
  txn->state_ = Transaction::State::kAborted;
  std::unique_ptr<Transaction> owned = txns_.Finish(txn->id());
  locks_.ReleaseAll(txn->id());
  return Status::OK();
}

// ---------------------------------------------------------------------------
// DDL
// ---------------------------------------------------------------------------

Status Database::CreateTable(Transaction* txn, const std::string& name,
                             const common::Schema& schema,
                             const std::vector<std::string>& primary_key,
                             bool temporary, bool if_not_exists,
                             SessionId session) {
  // The fence keeps this eager catalog mutation out of a concurrent
  // checkpoint's snapshot → truncate window (see ddl_fence_).
  common::MutexLock fence(&ddl_fence_);
  common::MutexLock lock(&catalog_mu_);
  if (if_not_exists) {
    auto existing = catalog_.Resolve(name, session);
    if (existing.ok()) return Status::OK();
  }
  PHX_ASSIGN_OR_RETURN(
      TablePtr table,
      catalog_.CreateTable(name, schema, primary_key, temporary, session));
  std::string table_name = table->name();
  txn->PushUndo([table_name, session](Database* db) {
    common::MutexLock lock(&db->catalog_mu_);
    db->catalog_.DropTable(table_name, session).ok();
  });
  if (!temporary) {
    txn->RecordWrite(common::ToLower(table_name));
    WalRecord rec;
    rec.type = WalRecordType::kCreateTable;
    rec.txn = txn->id();
    rec.table_name = table_name;
    rec.schema = schema;
    rec.primary_key = primary_key;
    txn->LogRedo(std::move(rec));
  }
  return Status::OK();
}

Status Database::DropTable(Transaction* txn, const std::string& name,
                           bool if_exists, SessionId session) {
  TablePtr table;
  {
    common::MutexLock lock(&catalog_mu_);
    auto resolved = catalog_.Resolve(name, session);
    if (!resolved.ok()) {
      if (if_exists) return Status::OK();
      return resolved.status();
    }
    table = std::move(resolved).value();
  }
  // Exclude all writers before the table disappears from the catalog.
  // Snapshot readers that already resolved the table keep reading their
  // version chains through the shared_ptr — MVCC makes DROP non-blocking
  // for them. The DDL fence (taken after the lock wait so a blocked DROP
  // cannot stall a checkpoint for the lock timeout) keeps the eager catalog
  // mutation out of a concurrent checkpoint window.
  PHX_RETURN_IF_ERROR(LockTableExclusive(txn, table));
  {
    common::MutexLock fence(&ddl_fence_);
    common::MutexLock lock(&catalog_mu_);
    PHX_RETURN_IF_ERROR(catalog_.DropTable(table->name(), session));
  }
  txn->PushUndo([table, session](Database* db) {
    common::MutexLock lock(&db->catalog_mu_);
    db->catalog_.AdoptTable(table, session).ok();
  });
  if (!table->temporary()) {
    txn->RecordWrite(common::ToLower(table->name()));
    WalRecord rec;
    rec.type = WalRecordType::kDropTable;
    rec.txn = txn->id();
    rec.table_name = table->name();
    txn->LogRedo(std::move(rec));
  }
  return Status::OK();
}

Status Database::CreateProcedure(Transaction* txn, StoredProcedure proc) {
  common::MutexLock fence(&ddl_fence_);
  common::MutexLock lock(&catalog_mu_);
  std::string name = proc.name;
  WalRecord rec;
  rec.type = WalRecordType::kCreateProcedure;
  rec.txn = txn->id();
  rec.table_name = proc.name;
  rec.proc_params = proc.params;
  rec.proc_body = proc.body_sql;
  PHX_RETURN_IF_ERROR(catalog_.CreateProcedure(std::move(proc)));
  txn->PushUndo([name](Database* db) {
    common::MutexLock lock(&db->catalog_mu_);
    db->catalog_.DropProcedure(name).ok();
  });
  txn->LogRedo(std::move(rec));
  return Status::OK();
}

Status Database::DropProcedure(Transaction* txn, const std::string& name,
                               bool if_exists) {
  common::MutexLock fence(&ddl_fence_);
  common::MutexLock lock(&catalog_mu_);
  auto proc = catalog_.GetProcedure(name);
  if (!proc.ok()) {
    if (if_exists) return Status::OK();
    return proc.status();
  }
  PHX_RETURN_IF_ERROR(catalog_.DropProcedure(name));
  StoredProcedure saved = std::move(proc).value();
  txn->PushUndo([saved](Database* db) {
    common::MutexLock lock(&db->catalog_mu_);
    db->catalog_.CreateProcedure(saved).ok();
  });
  WalRecord rec;
  rec.type = WalRecordType::kDropProcedure;
  rec.txn = txn->id();
  rec.table_name = name;
  txn->LogRedo(std::move(rec));
  return Status::OK();
}

Result<TablePtr> Database::ResolveTable(const std::string& name,
                                        SessionId session) {
  common::MutexLock lock(&catalog_mu_);
  return catalog_.Resolve(name, session);
}

Result<StoredProcedure> Database::GetProcedure(const std::string& name) {
  common::MutexLock lock(&catalog_mu_);
  return catalog_.GetProcedure(name);
}

// ---------------------------------------------------------------------------
// Locking helpers
// ---------------------------------------------------------------------------

namespace {

std::string TableKey(const Table& table) {
  return common::ToLower(table.name());
}

}  // namespace

std::string Database::RowLockKey(const Table& table, const Row& row,
                                 RowId id) {
  if (table.has_primary_key()) {
    // Key-based resource names are stable across delete/re-insert, so a
    // transaction that deletes and re-creates a key keeps it locked.
    return "k:" + TableKey(table) + ":" + table.EncodePkFromRow(row);
  }
  return LockManager::RowResource(TableKey(table), id);
}

Status Database::LockTableShared(Transaction* txn, const TablePtr& table) {
  return locks_.Acquire(txn->id(), LockManager::TableResource(TableKey(*table)),
                        LockMode::kS, options_.lock_timeout);
}

Status Database::LockTableExclusive(Transaction* txn, const TablePtr& table) {
  return locks_.Acquire(txn->id(), LockManager::TableResource(TableKey(*table)),
                        LockMode::kX, options_.lock_timeout);
}

Status Database::LockRowShared(Transaction* txn, const TablePtr& table,
                               const std::string& row_key) {
  PHX_RETURN_IF_ERROR(
      locks_.Acquire(txn->id(), LockManager::TableResource(TableKey(*table)),
                     LockMode::kIS, options_.lock_timeout));
  return locks_.Acquire(txn->id(), row_key, LockMode::kS,
                        options_.lock_timeout);
}

Status Database::LockRowExclusive(Transaction* txn, const TablePtr& table,
                                  const std::string& row_key) {
  PHX_RETURN_IF_ERROR(
      locks_.Acquire(txn->id(), LockManager::TableResource(TableKey(*table)),
                     LockMode::kIX, options_.lock_timeout));
  return locks_.Acquire(txn->id(), row_key, LockMode::kX,
                        options_.lock_timeout);
}

common::Result<std::vector<std::pair<RowId, Row>>>
Database::LockAndCollectPkPrefix(Transaction* txn, const TablePtr& table,
                                 const std::vector<common::Value>& prefix,
                                 bool exclusive) {
  const std::string table_key = TableKey(*table);
  PHX_RETURN_IF_ERROR(
      locks_.Acquire(txn->id(), LockManager::TableResource(table_key),
                     exclusive ? LockMode::kIX : LockMode::kIS,
                     options_.lock_timeout));

  // Pass 1: find candidates and their (stable, key-based) lock names.
  std::vector<std::pair<RowId, std::string>> candidates;
  {
    common::MutexLock latch(&table->latch());
    PHX_ASSIGN_OR_RETURN(std::vector<RowId> ids,
                         table->ScanPkPrefix(prefix));
    candidates.reserve(ids.size());
    for (RowId id : ids) {
      candidates.emplace_back(id, RowLockKey(*table, table->GetRow(id), id));
    }
  }
  // Pass 2: lock each candidate row.
  for (const auto& [id, key] : candidates) {
    PHX_RETURN_IF_ERROR(locks_.Acquire(txn->id(), key,
                                       exclusive ? LockMode::kX : LockMode::kS,
                                       options_.lock_timeout));
  }
  // Pass 3: re-read under the latch; drop rows deleted (or whose key moved)
  // between the scan and the lock.
  std::vector<std::pair<RowId, Row>> out;
  {
    common::MutexLock latch(&table->latch());
    for (const auto& [id, key] : candidates) {
      if (!table->IsLive(id)) continue;
      if (RowLockKey(*table, table->GetRow(id), id) != key) continue;
      out.emplace_back(id, table->GetRow(id));
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// DML — writers install pending versions under their X/IX locks; commit
// stamps them (PublishCommit), rollback pops them (Table::RollbackSlot).
// ---------------------------------------------------------------------------

Status Database::InsertRow(Transaction* txn, const TablePtr& table, Row row) {
  const std::string table_key = TableKey(*table);
  if (table->has_primary_key()) {
    PHX_RETURN_IF_ERROR(
        locks_.Acquire(txn->id(), LockManager::TableResource(table_key),
                       LockMode::kIX, options_.lock_timeout));
    // Lock the key before touching the table so no legacy reader can
    // observe the uncommitted row (snapshot readers skip it by visibility).
    PHX_RETURN_IF_ERROR(locks_.Acquire(txn->id(),
                                       RowLockKey(*table, row, 0),
                                       LockMode::kX, options_.lock_timeout));
  } else {
    PHX_RETURN_IF_ERROR(
        locks_.Acquire(txn->id(), LockManager::TableResource(table_key),
                       LockMode::kX, options_.lock_timeout));
  }

  Row logged_row = row;  // full row for redo
  PHX_ASSIGN_OR_RETURN(RowId id,
                       table->InsertVersion(std::move(row), txn->id()));
  txn->AddVersionWrite(table, id);
  const TxnId txn_id = txn->id();
  txn->PushUndo([table, id, txn_id](Database*) {
    table->RollbackSlot(id, txn_id);
  });
  if (!table->temporary()) {
    txn->RecordWrite(table_key);
    WalRecord rec;
    rec.type = WalRecordType::kInsert;
    rec.txn = txn->id();
    rec.table_name = table->name();
    rec.row = std::move(logged_row);
    txn->LogRedo(std::move(rec));
  }
  return Status::OK();
}

Status Database::InsertBulk(Transaction* txn, const TablePtr& table,
                            std::vector<Row> rows) {
  PHX_RETURN_IF_ERROR(LockTableExclusive(txn, table));
  std::vector<RowId> ids;
  ids.reserve(rows.size());
  std::vector<Row> logged = rows;
  for (Row& row : rows) {
    PHX_ASSIGN_OR_RETURN(RowId id,
                         table->InsertVersion(std::move(row), txn->id()));
    ids.push_back(id);
    txn->AddVersionWrite(table, id);
  }
  const TxnId txn_id = txn->id();
  txn->PushUndo([table, ids, txn_id](Database*) {
    for (auto it = ids.rbegin(); it != ids.rend(); ++it) {
      table->RollbackSlot(*it, txn_id);
    }
  });
  if (!table->temporary()) {
    txn->RecordWrite(TableKey(*table));
    WalRecord rec;
    rec.type = WalRecordType::kBulkInsert;
    rec.txn = txn->id();
    rec.table_name = table->name();
    rec.rows = std::move(logged);
    txn->LogRedo(std::move(rec));
  }
  return Status::OK();
}

Status Database::DeleteRow(Transaction* txn, const TablePtr& table, RowId id) {
  Row old_row;
  {
    common::MutexLock latch(&table->latch());
    if (!table->IsLive(id)) return Status::NotFound("row already deleted");
    old_row = table->GetRow(id);
  }
  const std::string table_key = TableKey(*table);
  if (table->has_primary_key()) {
    PHX_RETURN_IF_ERROR(
        locks_.Acquire(txn->id(), LockManager::TableResource(table_key),
                       LockMode::kIX, options_.lock_timeout));
    PHX_RETURN_IF_ERROR(locks_.Acquire(txn->id(),
                                       RowLockKey(*table, old_row, id),
                                       LockMode::kX, options_.lock_timeout));
  } else {
    PHX_RETURN_IF_ERROR(
        locks_.Acquire(txn->id(), LockManager::TableResource(table_key),
                       LockMode::kX, options_.lock_timeout));
  }
  {
    common::MutexLock latch(&table->latch());
    // Re-check after the lock wait — a competing txn may have deleted it.
    if (!table->IsLive(id)) return Status::NotFound("row deleted concurrently");
    old_row = table->GetRow(id);
  }
  PHX_RETURN_IF_ERROR(table->DeleteVersion(id, txn->id()));
  txn->AddVersionWrite(table, id);
  const TxnId txn_id = txn->id();
  txn->PushUndo([table, id, txn_id](Database*) {
    table->RollbackSlot(id, txn_id);
  });
  if (!table->temporary()) {
    txn->RecordWrite(table_key);
    WalRecord rec;
    rec.type = WalRecordType::kDelete;
    rec.txn = txn->id();
    rec.table_name = table->name();
    if (table->has_primary_key()) {
      // Log only the PK — replay locates the victim via the index.
      for (int idx : table->pk_column_indexes()) {
        rec.row.push_back(old_row[static_cast<size_t>(idx)]);
      }
    } else {
      rec.row = old_row;
    }
    txn->LogRedo(std::move(rec));
  }
  return Status::OK();
}

Status Database::UpdateRow(Transaction* txn, const TablePtr& table, RowId id,
                           Row new_row) {
  Row old_row;
  {
    common::MutexLock latch(&table->latch());
    if (!table->IsLive(id)) return Status::NotFound("row not live");
    old_row = table->GetRow(id);
  }
  const std::string table_key = TableKey(*table);
  if (table->has_primary_key()) {
    PHX_RETURN_IF_ERROR(
        locks_.Acquire(txn->id(), LockManager::TableResource(table_key),
                       LockMode::kIX, options_.lock_timeout));
    PHX_RETURN_IF_ERROR(locks_.Acquire(txn->id(),
                                       RowLockKey(*table, old_row, id),
                                       LockMode::kX, options_.lock_timeout));
    // If the update moves the PK, lock the new key too.
    std::string new_key = RowLockKey(*table, new_row, id);
    PHX_RETURN_IF_ERROR(locks_.Acquire(txn->id(), new_key, LockMode::kX,
                                       options_.lock_timeout));
  } else {
    PHX_RETURN_IF_ERROR(
        locks_.Acquire(txn->id(), LockManager::TableResource(table_key),
                       LockMode::kX, options_.lock_timeout));
  }

  Row logged_new = new_row;
  {
    common::MutexLock latch(&table->latch());
    if (!table->IsLive(id)) return Status::NotFound("row deleted concurrently");
    old_row = table->GetRow(id);
  }

  const TxnId txn_id = txn->id();
  const bool key_moved =
      table->has_primary_key() &&
      table->EncodePkFromRow(old_row) != table->EncodePkFromRow(new_row);
  if (!key_moved) {
    PHX_RETURN_IF_ERROR(
        table->UpdateVersion(id, std::move(new_row), txn->id()));
    txn->AddVersionWrite(table, id);
    txn->PushUndo([table, id, txn_id](Database*) {
      table->RollbackSlot(id, txn_id);
    });
  } else {
    // A key-moving update is a delete of the old lineage plus an insert
    // into the new key's lineage, so snapshot readers resolve both keys
    // correctly. Both slots roll back independently.
    PHX_RETURN_IF_ERROR(table->DeleteVersion(id, txn->id()));
    txn->AddVersionWrite(table, id);
    txn->PushUndo([table, id, txn_id](Database*) {
      table->RollbackSlot(id, txn_id);
    });
    PHX_ASSIGN_OR_RETURN(RowId new_id,
                         table->InsertVersion(std::move(new_row), txn->id()));
    txn->AddVersionWrite(table, new_id);
    txn->PushUndo([table, new_id, txn_id](Database*) {
      table->RollbackSlot(new_id, txn_id);
    });
  }
  if (!table->temporary()) {
    txn->RecordWrite(table_key);
    WalRecord rec;
    rec.type = WalRecordType::kUpdate;
    rec.txn = txn->id();
    rec.table_name = table->name();
    if (table->has_primary_key()) {
      for (int idx : table->pk_column_indexes()) {
        rec.row.push_back(old_row[static_cast<size_t>(idx)]);
      }
    } else {
      rec.row = old_row;
    }
    rec.new_row = std::move(logged_new);
    txn->LogRedo(std::move(rec));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Durability
// ---------------------------------------------------------------------------

Status Database::Checkpoint() {
  // Serializes manual, background, and restart-path checkpoints and guards
  // last_manifest_. Taken before the fences so two checkpoints never
  // interleave their fence acquisition.
  common::MutexLock ckpt(&ckpt_mu_);
  // The snapshot → truncate window must not lose a commit: freeze Begin()
  // first (no new transaction can start), take the coordinator's exclusive
  // WAL lock (no in-flight group force can race the truncate), take the DDL
  // fence, and verify write quiescence — no active transaction has written
  // anything. Active readers are harmless: the image below is the newest
  // committed state, and a reader that turns writer mid-window keeps its
  // versions unstamped (invisible to the image) until its commit, which
  // blocks on the WAL fence and lands in the post-truncate log. That
  // argument covers DML only — DDL mutates the catalog eagerly, before
  // commit — so the fence makes an already-active transaction's first DDL
  // statement wait out the whole window instead of leaking an uncommitted
  // CREATE into (or hiding an uncommitted DROP from) the durable image.
  TransactionManager::BeginFreeze freeze(&txns_);
  std::unique_lock<std::mutex> wal_exclusion = group_commit_.ExclusiveWalLock();
  common::MutexLock ddl_fence(&ddl_fence_);
  if (txns_.ActiveWriterCount() > 0) {
    return Status::Aborted("checkpoint requires write quiescence (" +
                           std::to_string(txns_.ActiveWriterCount()) +
                           " active writers)");
  }
  // Test hook: a delay armed here widens the quiescence-check → snapshot
  // window so races against it become deterministic.
  PHX_FAULT_POINT("checkpoint.ddl_window");
  const Snapshot committed{Snapshot::kReadLatest, 0};
  const uint64_t generation =
      checkpoint_generation_.load(std::memory_order_relaxed) + 1;

  if (!incremental_) {
    CheckpointData data;
    {
      common::MutexLock lock(&catalog_mu_);
      if (down_.load(std::memory_order_acquire)) {
        return Status::ServerDown("checkpoint raced a crash");
      }
      for (const TablePtr& table : catalog_.PersistentTables()) {
        CheckpointData::TableSnapshot snap;
        snap.name = table->name();
        snap.schema = table->schema();
        snap.primary_key = table->primary_key();
        snap.rows = table->SnapshotRowsAsOf(committed);
        data.tables.push_back(std::move(snap));
      }
      data.procedures = catalog_.AllProcedures();
    }
    PHX_RETURN_IF_ERROR(WriteCheckpoint(CheckpointPath(), data));
    PHX_RETURN_IF_ERROR(wal_.Truncate());
    {
      // The truncate just destroyed the kReplLsn stamps; re-anchor the
      // applied-LSN in the epoch-state file so a standby restarting after a
      // local checkpoint resubscribes from the right offset.
      common::MutexLock lock(&epoch_mu_);
      PHX_RETURN_IF_ERROR(PersistEpochState());
    }
    {
      common::MutexLock lock(&table_versions_mu_);
      dirty_tables_.clear();
    }
    last_manifest_ = CheckpointManifest{};
    checkpoint_generation_.store(generation, std::memory_order_relaxed);
    return Status::OK();
  }

  // Incremental: write new segments only for tables dirtied since the last
  // checkpoint; carry the rest forward by manifest reference. The dirty set
  // is captured (not drained) up front — the fences guarantee no commit can
  // add marks during the window, and erasing exactly the captured keys
  // afterwards keeps a failed checkpoint from losing marks.
  std::unordered_set<std::string> dirty;
  {
    common::MutexLock lock(&table_versions_mu_);
    dirty = dirty_tables_;
  }
  std::unordered_map<std::string, const SegmentRef*> prev;
  for (const SegmentRef& seg : last_manifest_.segments) {
    prev[seg.table] = &seg;
  }

  CheckpointManifest manifest;
  manifest.generation = generation;
  struct PendingSegment {
    CheckpointData::TableSnapshot snap;
    SegmentRef ref;
  };
  std::vector<PendingSegment> to_write;
  {
    common::MutexLock lock(&catalog_mu_);
    if (down_.load(std::memory_order_acquire)) {
      return Status::ServerDown("checkpoint raced a crash");
    }
    for (const TablePtr& table : catalog_.PersistentTables()) {
      const std::string key = common::ToLower(table->name());
      auto it = prev.find(key);
      if (it != prev.end() && dirty.count(key) == 0) {
        manifest.segments.push_back(*it->second);  // clean: carry forward
        continue;
      }
      PendingSegment p;
      p.snap.name = table->name();
      p.snap.schema = table->schema();
      p.snap.primary_key = table->primary_key();
      p.snap.rows = table->SnapshotRowsAsOf(committed);
      p.ref.table = key;
      p.ref.generation = generation;
      p.ref.row_count = p.snap.rows.size();
      to_write.push_back(std::move(p));
    }
    manifest.procedures = catalog_.AllProcedures();
  }
  for (size_t i = 0; i < to_write.size(); ++i) {
    char file[64];
    std::snprintf(file, sizeof(file), "seg_%08llu_%03zu.phxseg",
                  static_cast<unsigned long long>(generation), i);
    to_write[i].ref.file = file;
    uint32_t crc = 0;
    PHX_RETURN_IF_ERROR(WriteTableSegment(options_.data_dir + "/" + file,
                                          to_write[i].snap, &crc));
    to_write[i].ref.crc = crc;
    manifest.segments.push_back(to_write[i].ref);
  }
  // The manifest rename is the commit point; everything before it failing
  // leaves the previous generation untouched.
  PHX_RETURN_IF_ERROR(WriteManifest(CheckpointPath(), manifest));
  PHX_RETURN_IF_ERROR(wal_.Truncate());
  {
    // See the legacy-format branch: the applied-LSN must survive truncate.
    common::MutexLock lock(&epoch_mu_);
    PHX_RETURN_IF_ERROR(PersistEpochState());
  }
  {
    common::MutexLock lock(&table_versions_mu_);
    for (const std::string& key : dirty) dirty_tables_.erase(key);
  }
  last_manifest_ = std::move(manifest);
  checkpoint_generation_.store(generation, std::memory_order_relaxed);
  CleanStaleSegments();
  return Status::OK();
}

void Database::CleanStaleSegments() {
  std::unordered_set<std::string> referenced;
  for (const SegmentRef& seg : last_manifest_.segments) {
    referenced.insert(seg.file);
  }
  DIR* dir = ::opendir(options_.data_dir.c_str());
  if (dir == nullptr) return;  // best-effort: stale segments are harmless
  std::vector<std::string> stale;
  while (struct dirent* entry = ::readdir(dir)) {
    const std::string name = entry->d_name;
    if (name.size() < 11 || name.compare(0, 4, "seg_") != 0 ||
        name.compare(name.size() - 7, 7, ".phxseg") != 0) {
      continue;
    }
    if (referenced.count(name) == 0) stale.push_back(name);
  }
  ::closedir(dir);
  for (const std::string& name : stale) {
    ::unlink((options_.data_dir + "/" + name).c_str());
  }
}

void Database::MaybeKickCheckpointer() {
  if (checkpoint_wal_bytes_ <= 0) return;
  if (wal_.durable_size() < static_cast<uint64_t>(checkpoint_wal_bytes_)) {
    return;
  }
  {
    common::MutexLock lock(&bg_mu_);
    bg_kick_ = true;
  }
  bg_cv_.NotifyOne();
}

void Database::CheckpointerLoop() {
  // Missed write-quiescence is expected under load; retry with decorrelated
  // jitter instead of giving up (the old Checkpoint() hard-abort behavior
  // stays only for explicit manual calls, which surface the status to the
  // caller). The cap bounds how long a busy workload can push the trigger
  // past its byte budget.
  common::Backoff backoff(std::chrono::milliseconds(2),
                          std::chrono::milliseconds(200),
                          /*seed=*/0x70687863);
  std::chrono::milliseconds sleep(50);
  while (true) {
    {
      common::MutexLock lock(&bg_mu_);
      bg_cv_.WaitUntil(bg_mu_, std::chrono::steady_clock::now() + sleep,
                       [this]() PHX_REQUIRES(bg_mu_) {
                         return bg_stop_ || bg_kick_;
                       });
      if (bg_stop_) return;
      bg_kick_ = false;
    }
    if (down_.load(std::memory_order_acquire)) {
      sleep = std::chrono::milliseconds(50);
      continue;
    }
    if (wal_.durable_size() <
        static_cast<uint64_t>(checkpoint_wal_bytes_)) {
      backoff.Reset();
      sleep = std::chrono::milliseconds(50);
      continue;
    }
    Status st = Checkpoint();
    if (st.ok()) {
      auto_checkpoints_.fetch_add(1, std::memory_order_relaxed);
      backoff.Reset();
      sleep = std::chrono::milliseconds(50);
    } else {
      // Aborted = missed quiescence; ServerDown = raced a crash (Recover
      // re-arms); IoError = disk trouble. All retry on backoff — the WAL
      // keeps every commit safe meanwhile, only replay time grows.
      auto_checkpoint_retries_.fetch_add(1, std::memory_order_relaxed);
      sleep = backoff.Next();
    }
  }
}

void Database::CrashVolatile() {
  // Fence the background checkpointer BEFORE wiping anything: Checkpoint()
  // re-checks this flag under catalog_mu_, so once the wipe below runs
  // under that mutex no checkpoint can image an empty catalog and truncate
  // the WAL. Recover() clears the flag when the rebuilt state is loadable.
  down_.store(true, std::memory_order_release);
  {
    // Prepared-transaction pointers die with AbandonAll below; their fate is
    // re-decided at Recover from the WAL kPrepare terminators + the
    // coordinator's durable decision log.
    common::MutexLock lock(&prepared_mu_);
    prepared_.clear();
  }
  txns_.AbandonAll();
  locks_.Reset();
  {
    // Safe to wipe: the crash kills every session, so no client connection
    // (and no client-side result cache keyed to this server's clock) can
    // survive into the recovered instance. The clock itself is not reset —
    // post-restart commits keep taking strictly larger timestamps.
    common::MutexLock lock(&table_versions_mu_);
    table_versions_.clear();
    dirty_tables_.clear();
  }
  common::MutexLock lock(&catalog_mu_);
  catalog_.Clear();
}

Status Database::ApplyWalRecord(const WalRecord& record) {
  switch (record.type) {
    case WalRecordType::kCreateTable: {
      auto created = catalog_.CreateTable(record.table_name, record.schema,
                                          record.primary_key,
                                          /*temporary=*/false,
                                          /*owner_session=*/0);
      return created.ok() ? Status::OK() : created.status();
    }
    case WalRecordType::kDropTable:
      return catalog_.DropTable(record.table_name, /*session=*/0);
    case WalRecordType::kCreateProcedure: {
      StoredProcedure proc;
      proc.name = record.table_name;
      proc.params = record.proc_params;
      proc.body_sql = record.proc_body;
      return catalog_.CreateProcedure(std::move(proc));
    }
    case WalRecordType::kDropProcedure:
      return catalog_.DropProcedure(record.table_name);
    case WalRecordType::kInsert: {
      PHX_ASSIGN_OR_RETURN(TablePtr table,
                           catalog_.Resolve(record.table_name, 0));
      PHX_ASSIGN_OR_RETURN([[maybe_unused]] RowId id,
                           table->Insert(record.row));
      return Status::OK();
    }
    case WalRecordType::kBulkInsert: {
      PHX_ASSIGN_OR_RETURN(TablePtr table,
                           catalog_.Resolve(record.table_name, 0));
      return table->InsertBulk(record.rows);
    }
    case WalRecordType::kDelete: {
      PHX_ASSIGN_OR_RETURN(TablePtr table,
                           catalog_.Resolve(record.table_name, 0));
      if (table->has_primary_key()) {
        PHX_ASSIGN_OR_RETURN(RowId id, table->LookupPk(record.row));
        return table->Delete(id);
      }
      // No PK: find the first live row with equal content.
      for (RowId id = 0; id < table->slot_count(); ++id) {
        if (!table->IsLive(id)) continue;
        if (table->GetRow(id) == record.row) return table->Delete(id);
      }
      return Status::NotFound("replay delete: row not found in '" +
                              record.table_name + "'");
    }
    case WalRecordType::kUpdate: {
      PHX_ASSIGN_OR_RETURN(TablePtr table,
                           catalog_.Resolve(record.table_name, 0));
      if (table->has_primary_key()) {
        PHX_ASSIGN_OR_RETURN(RowId id, table->LookupPk(record.row));
        return table->Update(id, record.new_row);
      }
      for (RowId id = 0; id < table->slot_count(); ++id) {
        if (!table->IsLive(id)) continue;
        if (table->GetRow(id) == record.row) {
          return table->Update(id, record.new_row);
        }
      }
      return Status::NotFound("replay update: row not found in '" +
                              record.table_name + "'");
    }
    case WalRecordType::kReplLsn: {
      // Replicated-stream position: keep the max (replay order per queue is
      // commit order, but queues drain concurrently — max is order-free).
      uint64_t cur = replicated_lsn_.load(std::memory_order_relaxed);
      while (record.value > cur &&
             !replicated_lsn_.compare_exchange_weak(
                 cur, record.value, std::memory_order_release)) {
      }
      return Status::OK();
    }
    case WalRecordType::kBegin:
    case WalRecordType::kCommit:
    case WalRecordType::kAbort:
    case WalRecordType::kEpoch:
    case WalRecordType::kPrepare:
      return Status::OK();
  }
  return Status::Internal("unhandled WAL record type");
}

namespace {

int64_t ElapsedNs(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - since)
      .count();
}

}  // namespace

Status Database::ReplayCommitted(const std::vector<const WalRecord*>& ops,
                                 size_t threads) {
  if (threads == 0) {
    // Serial legacy path: record-by-record in commit order, exactly the
    // pre-partitioning apply sequence.
    for (const WalRecord* op : ops) {
      PHX_RETURN_IF_ERROR(ApplyWalRecord(*op));
    }
    return Status::OK();
  }

  // Partitioned path. DML commutes across tables (slot assignment is
  // per-table and each table's queue preserves commit order), so per-table
  // queues drain concurrently — one worker per table at a time, so base-op
  // latching inside Table is uncontended. DDL does not commute with
  // anything (it mutates the catalog the workers resolve through), so a DDL
  // record flushes all queues and applies serially: a barrier. Every thread
  // count, 1 through N, produces byte-identical tables.
  std::vector<std::vector<const WalRecord*>> queues;
  std::unordered_map<std::string, size_t> queue_of_table;
  auto flush = [&]() -> Status {
    Status st = common::RunParallel(
        threads, queues.size(), [&](size_t i) -> Status {
          for (const WalRecord* op : queues[i]) {
            PHX_RETURN_IF_ERROR(ApplyWalRecord(*op));
          }
          return Status::OK();
        });
    queues.clear();
    queue_of_table.clear();
    return st;
  };
  for (const WalRecord* op : ops) {
    if (IsDdlRecord(op->type)) {
      PHX_RETURN_IF_ERROR(flush());
      PHX_RETURN_IF_ERROR(ApplyWalRecord(*op));
      continue;
    }
    auto [it, inserted] =
        queue_of_table.try_emplace(common::ToLower(op->table_name),
                                   queues.size());
    if (inserted) queues.emplace_back();
    queues[it->second].push_back(op);
  }
  return flush();
}

Status Database::Recover() {
  common::MutexLock ckpt(&ckpt_mu_);
  common::MutexLock lock(&catalog_mu_);
  catalog_.Clear();
  last_manifest_ = CheckpointManifest{};
  const size_t threads =
      recovery_threads_ <= 0 ? 0 : static_cast<size_t>(recovery_threads_);
  // Parallelism knob for the phases that are parallel in both modes
  // (segment loads): threads == 0 still loads serially via workers == 1.
  const size_t load_workers = threads == 0 ? 1 : threads;

  // 1. Load the last checkpoint (either format). Rows become single base
  // versions (begin_ts = Table::kBaseTs), visible to every snapshot.
  const auto load_start = std::chrono::steady_clock::now();
  PHX_ASSIGN_OR_RETURN(LoadedCheckpoint loaded,
                       ReadCheckpointAny(CheckpointPath()));
  if (loaded.is_manifest) {
    const CheckpointManifest& manifest = loaded.manifest;
    // Segment files parse on the worker pool; catalog registration and the
    // manifest's table order stay serial and deterministic.
    std::vector<CheckpointData::TableSnapshot> snaps(manifest.segments.size());
    PHX_RETURN_IF_ERROR(common::RunParallel(
        load_workers, manifest.segments.size(), [&](size_t i) -> Status {
          const SegmentRef& seg = manifest.segments[i];
          PHX_ASSIGN_OR_RETURN(
              snaps[i],
              ReadTableSegment(options_.data_dir + "/" + seg.file, seg.crc));
          if (snaps[i].rows.size() != seg.row_count) {
            return Status::IoError("segment '" + seg.file + "' row count " +
                                   std::to_string(snaps[i].rows.size()) +
                                   " != manifest " +
                                   std::to_string(seg.row_count));
          }
          return Status::OK();
        }));
    std::vector<TablePtr> tables(snaps.size());
    for (size_t i = 0; i < snaps.size(); ++i) {
      PHX_ASSIGN_OR_RETURN(
          tables[i],
          catalog_.CreateTable(snaps[i].name, snaps[i].schema,
                               snaps[i].primary_key, /*temporary=*/false,
                               /*owner_session=*/0));
    }
    PHX_RETURN_IF_ERROR(common::RunParallel(
        load_workers, snaps.size(), [&](size_t i) -> Status {
          return tables[i]->InsertBulk(std::move(snaps[i].rows));
        }));
    for (auto& proc : loaded.manifest.procedures) {
      PHX_RETURN_IF_ERROR(catalog_.CreateProcedure(proc));
    }
    last_manifest_ = std::move(loaded.manifest);
    checkpoint_generation_.store(last_manifest_.generation,
                                 std::memory_order_relaxed);
  } else {
    for (auto& table_snap : loaded.full.tables) {
      PHX_ASSIGN_OR_RETURN(
          TablePtr table,
          catalog_.CreateTable(table_snap.name, table_snap.schema,
                               table_snap.primary_key, /*temporary=*/false,
                               /*owner_session=*/0));
      PHX_RETURN_IF_ERROR(table->InsertBulk(std::move(table_snap.rows)));
    }
    for (auto& proc : loaded.full.procedures) {
      PHX_RETURN_IF_ERROR(catalog_.CreateProcedure(std::move(proc)));
    }
  }
  const int64_t load_ns = ElapsedNs(load_start);

  // 2. Replay committed transactions from the WAL as base ops — recovery
  // rebuilds exactly one version per surviving row. Records are buffered
  // per transaction and flattened into commit order when the commit record
  // is seen; transactions without a commit record (crash victims) are
  // discarded. The flattened sequence then replays serially or partitioned
  // per table (ReplayCommitted).
  const auto replay_start = std::chrono::steady_clock::now();
  PHX_ASSIGN_OR_RETURN(std::vector<WalRecord> records, ReadWalFile(WalPath()));
  std::unordered_map<TxnId, std::vector<const WalRecord*>> pending;
  /// Prepared-but-undecided transactions in prepare order: their records
  /// stay buffered in `pending`; a later kCommit/kAbort (the coordinator's
  /// durable decision reaching this WAL) settles them in-stream, otherwise
  /// the decision resolver settles them after the scan.
  std::vector<std::pair<TxnId, std::string>> dangling_prepared;
  std::vector<const WalRecord*> committed;
  for (const WalRecord& rec : records) {
    switch (rec.type) {
      case WalRecordType::kBegin:
        pending[rec.txn];
        break;
      case WalRecordType::kCommit: {
        auto it = pending.find(rec.txn);
        if (it != pending.end()) {
          committed.insert(committed.end(), it->second.begin(),
                           it->second.end());
          pending.erase(it);
        }
        break;
      }
      case WalRecordType::kAbort:
        pending.erase(rec.txn);
        break;
      case WalRecordType::kPrepare:
        // Terminates the batch without deciding it — keep the buffered
        // records and remember the gtid.
        dangling_prepared.emplace_back(rec.txn, rec.table_name);
        break;
      case WalRecordType::kEpoch: {
        // Standalone epoch stamp — outside transaction framing.
        uint64_t cur = epoch_.load(std::memory_order_relaxed);
        if (rec.value > cur) {
          epoch_.store(rec.value, std::memory_order_release);
        }
        break;
      }
      default:
        pending[rec.txn].push_back(&rec);
        break;
    }
  }
  // Settle prepares with no in-stream decision. Commit-resolved ones append
  // AFTER every decided transaction, which is sound: a prepared transaction
  // held its X locks until the decision, so no decided transaction that
  // followed it in the log can have touched the same rows. Presumed abort
  // otherwise (matches an unsharded database, which never prepares).
  size_t resolved_prepared = 0;
  for (const auto& [txn_id, gtid] : dangling_prepared) {
    auto it = pending.find(txn_id);
    if (it == pending.end()) continue;  // decided in-stream
    if (options_.prepared_resolver && options_.prepared_resolver(gtid)) {
      committed.insert(committed.end(), it->second.begin(), it->second.end());
      ++resolved_prepared;
    }
    pending.erase(it);
  }
  PHX_RETURN_IF_ERROR(ReplayCommitted(committed, threads));
  const int64_t replay_ns = ElapsedNs(replay_start);

  // The replayed tail entirely postdates the checkpoint it replays onto, so
  // every table it names is dirty with respect to that checkpoint — rebuild
  // the incremental checkpointer's work list from it (CrashVolatile wiped
  // it).
  std::unordered_set<std::string> replayed_tables;
  for (const WalRecord* op : committed) {
    if (IsTableRecord(op->type)) {
      replayed_tables.insert(common::ToLower(op->table_name));
    }
  }
  {
    common::MutexLock tv(&table_versions_mu_);
    dirty_tables_.insert(replayed_tables.begin(), replayed_tables.end());
  }

  if (obs::Enabled()) {
    obs::Registry& reg = obs::Registry::Global();
    reg.histogram("phx.recover.checkpoint_load_ns")->Record(load_ns);
    reg.histogram("phx.recover.replay_ns")->Record(replay_ns);
    reg.counter("phx.recover.records_replayed")->Add(committed.size());
    reg.counter("phx.recover.tables_replayed")->Add(replayed_tables.size());
    if (resolved_prepared > 0) {
      reg.counter("phx.recover.prepared_resolved")->Add(resolved_prepared);
    }
    reg.gauge("phx.recover.threads_used")
        ->Set(static_cast<int64_t>(threads));
  }
  // State is loadable again — re-arm the background checkpointer.
  down_.store(false, std::memory_order_release);
  return Status::OK();
}

void Database::DropSessionState(SessionId session) {
  common::MutexLock lock(&catalog_mu_);
  catalog_.DropSessionTempTables(session);
}

}  // namespace phoenix::engine
