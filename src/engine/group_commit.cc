#include "engine/group_commit.h"

#include "fault/fault.h"
#include "obs/metrics.h"

namespace phoenix::engine {

using common::Status;

Status GroupCommitCoordinator::Commit(const std::vector<WalRecord>& records) {
  if (!enabled_) {
    // Escape hatch (PHOENIX_GROUP_COMMIT=0): the pre-coordinator serialized
    // path — one append, one force, per commit — with only the tail-repair
    // bugfix applied (a failed commit must never be replayable).
    std::lock_guard<std::mutex> wal_lock(wal_mu_);
    commits_.fetch_add(1, std::memory_order_relaxed);
    forces_.fetch_add(1, std::memory_order_relaxed);
    Status st = wal_->AppendBatch(records);
    if (!st.ok()) wal_->RepairTail().ok();
    return st;
  }

  Waiter me(&records);
  std::unique_lock<std::mutex> lk(mu_);
  queue_.push_back(&me);
  // Wake a leader lingering in its max_wait_ window so it can take us.
  cv_.notify_all();
  while (!me.done && leader_active_) cv_.wait(lk);
  if (me.done) return me.status;

  // We are the leader. Optionally linger so followers can pile on — with
  // max_wait_ = 0 the group is exactly what accumulated while the previous
  // leader was forcing.
  leader_active_ = true;
  if (max_wait_.count() > 0) {
    auto deadline = std::chrono::steady_clock::now() + max_wait_;
    while (std::chrono::steady_clock::now() < deadline) {
      cv_.wait_until(lk, deadline);
    }
  }
  std::vector<Waiter*> group;
  group.swap(queue_);
  lk.unlock();

  Status st = ForceGroup(group);

  lk.lock();
  leader_active_ = false;
  for (Waiter* w : group) {
    if (w == &me) continue;
    w->status = st;
    w->done = true;
  }
  cv_.notify_all();
  lk.unlock();
  return st;
}

Status GroupCommitCoordinator::ForceGroup(const std::vector<Waiter*>& group) {
  commits_.fetch_add(group.size(), std::memory_order_relaxed);
  forces_.fetch_add(1, std::memory_order_relaxed);
  if (obs::Enabled()) {
    static obs::Histogram* const group_size =
        obs::Registry::Global().histogram("engine.wal.group_size");
    static obs::Counter* const group_forces =
        obs::Registry::Global().counter("engine.wal.group_forces");
    static obs::Counter* const forces_saved =
        obs::Registry::Global().counter("engine.wal.forces_saved");
    group_size->Record(group.size());
    group_forces->Add(1);
    if (group.size() > 1) forces_saved->Add(group.size() - 1);
  }

  auto& injector = fault::FaultInjector::Global();
  if (injector.enabled()) {
    // The group force is a single durability event: a fault here fails every
    // waiter in the group with nothing written (chaos/crash tests assert no
    // waiter is acked for a transaction recovery won't reproduce).
    Status st = injector.Inject("wal.group_force");
    if (!st.ok()) return st;
  }

  std::vector<const std::vector<WalRecord>*> batches;
  batches.reserve(group.size());
  for (const Waiter* w : group) batches.push_back(w->records);

  std::lock_guard<std::mutex> wal_lock(wal_mu_);
  Status st = wal_->AppendBatches(batches);
  if (!st.ok()) {
    // All-or-nothing: truncate whatever prefix of the group reached the file
    // before anyone learns the outcome — every waiter rolls back, so none of
    // these bytes (possibly whole batches, commit records included) may ever
    // be replayed.
    wal_->RepairTail().ok();
  }
  return st;
}

}  // namespace phoenix::engine
