#ifndef PHOENIX_ENGINE_TRANSACTION_H_
#define PHOENIX_ENGINE_TRANSACTION_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "engine/catalog.h"
#include "engine/snapshot.h"
#include "engine/table.h"
#include "engine/wal.h"

namespace phoenix::engine {

class Database;

/// Phoenix driver-internal artifact tables: per-statement persistent result
/// sets (phoenix_rs_<owner>_<n>), the update-status table, and liveness
/// probes. They sit outside the result-cache invalidation plane — no client
/// plan is ever cached against them (the server also refuses to vouch for
/// reads of them, see Session::Execute) — and every persisted query mints a
/// uniquely named result table, so tracking their writes would grow the
/// per-table version map (and every fresh connection's full-history digest)
/// without bound over server lifetime. Names reaching RecordWrite are
/// already lowercased.
inline bool IsPhoenixArtifactTable(const std::string& table) {
  return table.compare(0, 11, "phoenix_rs_") == 0 ||
         table.compare(0, 14, "phoenix_probe_") == 0 ||
         table == "phoenix_status";
}

/// An in-flight transaction: buffered redo records (written to the WAL as
/// one atomic batch at commit), an undo list (applied in reverse on
/// rollback), the slots it installed pending versions into (stamped with
/// the commit timestamp at commit), and the read snapshot it pinned.
/// Write locks are tracked by the LockManager under the TxnId.
class Transaction {
 public:
  enum class State : uint8_t { kActive, kCommitted, kAborted };

  Transaction(TxnId id, SessionId session) : id_(id), session_(session) {}
  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  TxnId id() const { return id_; }
  SessionId session() const { return session_; }
  State state() const { return state_; }
  bool active() const { return state_ == State::kActive; }

  /// Buffers a redo record for commit-time WAL append. Temp-table operations
  /// must not be logged (callers check).
  void LogRedo(WalRecord record) {
    wrote_.store(true, std::memory_order_relaxed);
    redo_.push_back(std::move(record));
  }

  /// Registers a compensating action run (in reverse order) on rollback.
  void PushUndo(std::function<void(Database*)> undo) {
    wrote_.store(true, std::memory_order_relaxed);
    undo_.push_back(std::move(undo));
  }

  /// Records a slot this transaction installed a pending version into (or
  /// marked pending-deleted); Commit stamps these, then prunes them.
  void AddVersionWrite(TablePtr table, RowId id) {
    wrote_.store(true, std::memory_order_relaxed);
    version_writes_.emplace_back(std::move(table), id);
  }

  const std::vector<WalRecord>& redo_records() const { return redo_; }
  const std::vector<std::pair<TablePtr, RowId>>& version_writes() const {
    return version_writes_;
  }
  bool has_writes() const { return !redo_.empty() || !undo_.empty(); }
  /// True once the transaction performed any write (including temp-table
  /// writes and DDL). Readable from other threads (checkpoint quiescence).
  bool wrote() const { return wrote_.load(std::memory_order_relaxed); }

  /// The read snapshot, pinned on first read (Database::ReadSnapshot).
  const SnapshotPtr& snapshot() const { return snapshot_; }

  // --- Result-cache access tracking ---------------------------------------
  // The session records which persistent tables each statement reads and
  // which the transaction has written so far; the client's result cache uses
  // the read set as the validity key and the write set to suppress hits on
  // tables dirtied inside the current explicit transaction.

  /// Records a persistent table read by the current statement. Temp-table
  /// reads are recorded separately (they poison cacheability: their contents
  /// are per-session and die with the server).
  void RecordRead(const std::string& table) { stmt_reads_.insert(table); }
  void RecordTempRead() { stmt_read_temp_ = true; }

  /// Records a persistent table mutated by this transaction (DML or DDL).
  /// Survives across statements until commit/rollback. Driver-internal
  /// artifact tables are ignored: they never appear in a cached read set,
  /// and counting them would grow the invalidation plane without bound.
  void RecordWrite(const std::string& table) {
    if (!IsPhoenixArtifactTable(table)) write_tables_.insert(table);
  }

  /// Clears the per-statement read set (called at statement start; the
  /// write set intentionally persists for the life of the transaction).
  void ResetStatementReads() {
    stmt_reads_.clear();
    stmt_read_temp_ = false;
  }

  const std::set<std::string>& statement_reads() const { return stmt_reads_; }
  bool statement_read_temp() const { return stmt_read_temp_; }
  const std::set<std::string>& write_tables() const { return write_tables_; }

 private:
  friend class Database;

  TxnId id_;
  SessionId session_;
  State state_ = State::kActive;
  std::atomic<bool> wrote_{false};
  std::vector<WalRecord> redo_;
  std::vector<std::function<void(Database*)>> undo_;
  std::vector<std::pair<TablePtr, RowId>> version_writes_;
  SnapshotPtr snapshot_;
  std::set<std::string> stmt_reads_;
  bool stmt_read_temp_ = false;
  std::set<std::string> write_tables_;
};

/// Issues transaction ids and commit timestamps from one monotonic clock,
/// tracks active transactions (crash simulation, checkpoint quiescence),
/// and maintains the set of pinned snapshot timestamps whose minimum is the
/// version-GC low watermark.
class TransactionManager {
 public:
  TransactionManager() = default;
  TransactionManager(const TransactionManager&) = delete;
  TransactionManager& operator=(const TransactionManager&) = delete;

  /// While alive, Begin() blocks. Checkpoint holds one across its whole
  /// snapshot → WAL-truncate window: combined with a verified
  /// ActiveWriterCount() == 0 it guarantees no pre-existing writer can race
  /// the snapshot, and any reader that turns writer mid-window commits
  /// behind the WAL fence (its versions stay unstamped — invisible to the
  /// snapshot — until after the truncate).
  class BeginFreeze {
   public:
    explicit BeginFreeze(TransactionManager* mgr) : mgr_(mgr) {
      common::MutexLock lock(&mgr_->mu_);
      ++mgr_->freeze_count_;
    }
    ~BeginFreeze() {
      {
        common::MutexLock lock(&mgr_->mu_);
        --mgr_->freeze_count_;
      }
      mgr_->begin_cv_.NotifyAll();
    }
    BeginFreeze(const BeginFreeze&) = delete;
    BeginFreeze& operator=(const BeginFreeze&) = delete;

   private:
    TransactionManager* mgr_;
  };

  Transaction* Begin(SessionId session) {
    common::MutexLock lock(&mu_);
    begin_cv_.Wait(mu_, [this]() PHX_REQUIRES(mu_) {
      return freeze_count_ == 0;
    });
    // Transaction ids and commit timestamps share the clock, so ids are
    // usable as unique tokens in version creator/deleter fields while
    // begin_ts/end_ts only ever hold commit timestamps.
    TxnId id = ts_.fetch_add(1, std::memory_order_relaxed) + 1;
    auto txn = std::make_unique<Transaction>(id, session);
    Transaction* ptr = txn.get();
    active_.emplace(id, std::move(txn));
    return ptr;
  }

  /// Removes the txn from the active set (after commit/abort). The unique_ptr
  /// is returned so the caller controls destruction order vs. lock release.
  std::unique_ptr<Transaction> Finish(TxnId id) {
    common::MutexLock lock(&mu_);
    auto it = active_.find(id);
    if (it == active_.end()) return nullptr;
    std::unique_ptr<Transaction> txn = std::move(it->second);
    active_.erase(it);
    return txn;
  }

  size_t ActiveCount() const {
    common::MutexLock lock(&mu_);
    return active_.size();
  }

  /// Active transactions that performed a write. Checkpoint requires this to
  /// be zero (read-only transactions may keep running under MVCC).
  size_t ActiveWriterCount() const {
    common::MutexLock lock(&mu_);
    size_t writers = 0;
    for (const auto& [id, txn] : active_) {
      if (txn->wrote()) ++writers;
    }
    return writers;
  }

  /// Abandons all active transactions without undo — exactly what a crash
  /// does (memory is being wiped anyway; the WAL never saw their commits).
  /// Pinned snapshots unpin as the Transaction objects are destroyed.
  void AbandonAll() {
    common::MutexLock lock(&mu_);
    active_.clear();
  }

  // --- MVCC clock ---------------------------------------------------------

  /// Current clock value; every commit stamped so far has cts <= this.
  uint64_t CurrentTs() const { return ts_.load(std::memory_order_relaxed); }

  /// Starts commit publication: allocates a commit timestamp and registers
  /// it as in-flight. Version stamping happens OUTSIDE publish_mu_ — the
  /// critical section is O(1), so a bulk transaction's stamping loop never
  /// serializes other commits — and EndPublish marks the stamps complete.
  /// Torn-commit protection moves to PinSnapshot, which waits out every
  /// in-flight publication at or below its chosen timestamp.
  uint64_t BeginPublish() {
    common::MutexLock publish(&publish_mu_);
    uint64_t cts = ts_.fetch_add(1, std::memory_order_relaxed) + 1;
    inflight_.insert(cts);
    return cts;
  }

  /// Marks a publication complete: every version stamp for `cts` is visible
  /// (the caller's per-table latches have been released). Wakes pinners.
  void EndPublish(uint64_t cts) {
    {
      common::MutexLock publish(&publish_mu_);
      inflight_.erase(cts);
    }
    publish_cv_.NotifyAll();
  }

  /// Pins a snapshot at the current clock for `txn`. The returned handle
  /// keeps the timestamp registered with the GC watermark until the last
  /// reference drops. Ordering vs. commits: the pin's timestamp is read
  /// under publish_mu(), then the pin waits until no in-flight publication
  /// has cts <= that timestamp — so every commit the snapshot can see is
  /// fully stamped (never a torn commit), any commit still stamping has
  /// cts > ts (invisible), and any commit that begins publication later
  /// sees the pin when it computes the prune watermark. Commits allocated
  /// after entry take higher timestamps, so the wait cannot starve.
  SnapshotPtr PinSnapshot(TxnId txn) {
    std::shared_ptr<PinRegistry> reg = pins_;
    uint64_t ts;
    {
      common::MutexLock publish(&publish_mu_);
      ts = ts_.load(std::memory_order_relaxed);
      publish_cv_.Wait(publish_mu_, [this, ts]() PHX_REQUIRES(publish_mu_) {
        return inflight_.empty() || *inflight_.begin() > ts;
      });
      common::MutexLock lock(&reg->mu);
      reg->pinned.insert(ts);
    }
    // The deleter captures the registry shared_ptr, so unpinning is safe
    // even if it runs after the TransactionManager is gone (session
    // teardown during server shutdown).
    return SnapshotPtr(new Snapshot{ts, txn},
                       [reg](const Snapshot* s) PHX_NO_THREAD_SAFETY_ANALYSIS {
                         {
                           common::MutexLock lock(&reg->mu);
                           auto it = reg->pinned.find(s->ts);
                           if (it != reg->pinned.end()) reg->pinned.erase(it);
                         }
                         delete s;
                       });
  }

  /// The highest timestamp whose commits are all fully published: every
  /// commit with cts <= StableTs() has completed stamping AND (for the
  /// invalidation plane) bumped its per-table version counters. Taken under
  /// publish_mu_, so it orders against BeginPublish: any cts allocated later
  /// is > the returned value. The invalidation digest computes this FIRST
  /// and reads the table counters AFTER — a counter bump from a commit still
  /// in flight (cts > StableTs) can only make the digest conservatively
  /// larger, never hide a change at or below the advertised clock.
  uint64_t StableTs() const {
    common::MutexLock publish(&publish_mu_);
    uint64_t ts = ts_.load(std::memory_order_relaxed);
    if (!inflight_.empty() && *inflight_.begin() <= ts) {
      return *inflight_.begin() - 1;
    }
    return ts;
  }

  /// GC low watermark: versions whose end_ts <= watermark and that are
  /// shadowed by a newer version with begin_ts <= watermark are unreachable
  /// by every pinned (and future) snapshot. Equals the oldest pinned
  /// snapshot, or the current clock when nothing is pinned. Racing pins are
  /// safe: a pin not yet visible here read its timestamp under publish_mu()
  /// after this caller's BeginPublish, so its ts >= the caller's cts. The
  /// watermark may exceed another commit's still-in-flight cts, but prune
  /// only ever touches slots the pruning transaction holds X locks on, which
  /// no in-flight publication can share.
  uint64_t LowWatermark() const {
    common::MutexLock lock(&pins_->mu);
    if (!pins_->pinned.empty()) return *pins_->pinned.begin();
    return ts_.load(std::memory_order_relaxed);
  }

 private:
  struct PinRegistry {
    common::Mutex mu;
    std::multiset<uint64_t> pinned PHX_GUARDED_BY(mu);
  };

  mutable common::Mutex mu_;
  common::CondVar begin_cv_;
  int freeze_count_ PHX_GUARDED_BY(mu_) = 0;
  std::unordered_map<TxnId, std::unique_ptr<Transaction>> active_
      PHX_GUARDED_BY(mu_);
  /// Unified txn-id / commit-timestamp clock. Starts at Table::kBaseTs so
  /// recovered base versions are visible to every snapshot.
  std::atomic<uint64_t> ts_{Table::kBaseTs};
  /// Orders commit publication against snapshot pinning. Held only for O(1)
  /// steps (never across version stamping or lock-manager calls).
  mutable common::Mutex publish_mu_;
  /// Commit timestamps allocated by BeginPublish whose stamping has not yet
  /// completed (EndPublish). PinSnapshot waits until the minimum exceeds its
  /// timestamp.
  std::set<uint64_t> inflight_ PHX_GUARDED_BY(publish_mu_);
  common::CondVar publish_cv_;
  std::shared_ptr<PinRegistry> pins_ = std::make_shared<PinRegistry>();
};

}  // namespace phoenix::engine

#endif  // PHOENIX_ENGINE_TRANSACTION_H_
