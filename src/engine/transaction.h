#ifndef PHOENIX_ENGINE_TRANSACTION_H_
#define PHOENIX_ENGINE_TRANSACTION_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "engine/catalog.h"
#include "engine/wal.h"

namespace phoenix::engine {

class Database;

/// An in-flight transaction: buffered redo records (written to the WAL as
/// one atomic batch at commit) and an undo list (applied in reverse on
/// rollback). Locks are tracked by the LockManager under the TxnId.
class Transaction {
 public:
  enum class State : uint8_t { kActive, kCommitted, kAborted };

  Transaction(TxnId id, SessionId session) : id_(id), session_(session) {}
  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  TxnId id() const { return id_; }
  SessionId session() const { return session_; }
  State state() const { return state_; }
  bool active() const { return state_ == State::kActive; }

  /// Buffers a redo record for commit-time WAL append. Temp-table operations
  /// must not be logged (callers check).
  void LogRedo(WalRecord record) { redo_.push_back(std::move(record)); }

  /// Registers a compensating action run (in reverse order) on rollback.
  void PushUndo(std::function<void(Database*)> undo) {
    undo_.push_back(std::move(undo));
  }

  const std::vector<WalRecord>& redo_records() const { return redo_; }
  bool has_writes() const { return !redo_.empty() || !undo_.empty(); }

 private:
  friend class Database;

  TxnId id_;
  SessionId session_;
  State state_ = State::kActive;
  std::vector<WalRecord> redo_;
  std::vector<std::function<void(Database*)>> undo_;
};

/// Issues transaction ids and tracks active transactions so crash simulation
/// can abandon them and checkpointing can require quiescence.
class TransactionManager {
 public:
  TransactionManager() = default;
  TransactionManager(const TransactionManager&) = delete;
  TransactionManager& operator=(const TransactionManager&) = delete;

  /// While alive, Begin() blocks. Checkpoint holds one across its whole
  /// snapshot → WAL-truncate window: combined with a verified
  /// ActiveCount() == 0 it guarantees full quiescence — no transaction can
  /// start, so no table can change and no commit can reach the WAL between
  /// the snapshot and the truncate (the lost-transaction race).
  class BeginFreeze {
   public:
    explicit BeginFreeze(TransactionManager* mgr) : mgr_(mgr) {
      std::lock_guard<std::mutex> lock(mgr_->mu_);
      ++mgr_->freeze_count_;
    }
    ~BeginFreeze() {
      {
        std::lock_guard<std::mutex> lock(mgr_->mu_);
        --mgr_->freeze_count_;
      }
      mgr_->begin_cv_.notify_all();
    }
    BeginFreeze(const BeginFreeze&) = delete;
    BeginFreeze& operator=(const BeginFreeze&) = delete;

   private:
    TransactionManager* mgr_;
  };

  Transaction* Begin(SessionId session) {
    std::unique_lock<std::mutex> lock(mu_);
    begin_cv_.wait(lock, [this] { return freeze_count_ == 0; });
    TxnId id = next_id_++;
    auto txn = std::make_unique<Transaction>(id, session);
    Transaction* ptr = txn.get();
    active_.emplace(id, std::move(txn));
    return ptr;
  }

  /// Removes the txn from the active set (after commit/abort). The unique_ptr
  /// is returned so the caller controls destruction order vs. lock release.
  std::unique_ptr<Transaction> Finish(TxnId id) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = active_.find(id);
    if (it == active_.end()) return nullptr;
    std::unique_ptr<Transaction> txn = std::move(it->second);
    active_.erase(it);
    return txn;
  }

  size_t ActiveCount() const {
    std::lock_guard<std::mutex> lock(mu_);
    return active_.size();
  }

  /// Abandons all active transactions without undo — exactly what a crash
  /// does (memory is being wiped anyway; the WAL never saw their commits).
  void AbandonAll() {
    std::lock_guard<std::mutex> lock(mu_);
    active_.clear();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable begin_cv_;
  int freeze_count_ = 0;
  TxnId next_id_ = 1;
  std::unordered_map<TxnId, std::unique_ptr<Transaction>> active_;
};

}  // namespace phoenix::engine

#endif  // PHOENIX_ENGINE_TRANSACTION_H_
