#include "engine/planner.h"

#include <algorithm>

#include "common/mutex.h"
#include "common/strings.h"

namespace phoenix::engine {

using common::Result;
using common::Row;
using common::Status;
using common::Value;
using common::ValueType;
using sql::Expr;
using sql::ExprKind;
using sql::SelectStmt;
using sql::TableRef;

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

void SplitConjuncts(const Expr* expr, std::vector<const Expr*>* out) {
  if (expr == nullptr) return;
  if (expr->kind == ExprKind::kBinary &&
      expr->binary_op == sql::BinaryOp::kAnd) {
    SplitConjuncts(expr->children[0].get(), out);
    SplitConjuncts(expr->children[1].get(), out);
    return;
  }
  out->push_back(expr);
}

namespace {

bool IsAggregateName(const std::string& upper_name) {
  return upper_name == "SUM" || upper_name == "COUNT" ||
         upper_name == "AVG" || upper_name == "MIN" || upper_name == "MAX";
}

bool HasSubquery(const Expr& expr) {
  if (expr.kind == ExprKind::kSubquery || expr.kind == ExprKind::kInSubquery) {
    return true;
  }
  for (const auto& child : expr.children) {
    if (child && HasSubquery(*child)) return true;
  }
  return false;
}

}  // namespace

Value CoerceValueTo(const Value& v, ValueType target) {
  if (v.is_null() || v.type() == target) return v;
  if (target == ValueType::kDouble && v.type() == ValueType::kInt) {
    return Value::Double(static_cast<double>(v.AsInt()));
  }
  if (target == ValueType::kInt && v.type() == ValueType::kDouble) {
    double d = v.AsDouble();
    int64_t i = static_cast<int64_t>(d);
    if (static_cast<double>(i) == d) return Value::Int(i);
  }
  if (target == ValueType::kDate && v.type() == ValueType::kInt) {
    return Value::Date(v.AsInt());
  }
  if (target == ValueType::kDate && v.type() == ValueType::kString) {
    auto parsed = Value::DateFromString(v.AsString());
    if (parsed.ok()) return parsed.value();
  }
  return v;
}

namespace {

BoundExprPtr MakeConst(Value v) {
  auto e = std::make_unique<BoundExpr>();
  e->kind = BoundExpr::Kind::kConst;
  e->type = v.type();
  e->constant = std::move(v);
  return e;
}

BoundExprPtr MakeSlot(int slot, ValueType type) {
  auto e = std::make_unique<BoundExpr>();
  e->kind = BoundExpr::Kind::kSlot;
  e->slot = slot;
  e->type = type;
  return e;
}

bool IsPureConst(const BoundExpr& e) {
  if (e.kind == BoundExpr::Kind::kConst) return true;
  if (e.kind == BoundExpr::Kind::kSlot ||
      e.kind == BoundExpr::Kind::kSubquery ||
      e.kind == BoundExpr::Kind::kInSubquery) {
    return false;
  }
  for (const auto& child : e.children) {
    if (!IsPureConst(*child)) return false;
  }
  return true;
}

/// True if a bound predicate is constant FALSE (or constant NULL): such a
/// WHERE makes the whole plan empty — the Phoenix probe case.
bool IsConstFalse(const BoundExpr& e) {
  if (e.kind != BoundExpr::Kind::kConst) return false;
  const Value& v = e.constant;
  if (v.is_null()) return true;
  return v.type() == ValueType::kBool && !v.AsBool();
}

ValueType InferBinaryType(sql::BinaryOp op, ValueType lhs, ValueType rhs) {
  using sql::BinaryOp;
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
    case BinaryOp::kAnd:
    case BinaryOp::kOr:
      return ValueType::kBool;
    case BinaryOp::kConcat:
      return ValueType::kString;
    case BinaryOp::kDiv:
      return ValueType::kDouble;
    case BinaryOp::kMod:
      return ValueType::kInt;
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
      if (lhs == ValueType::kDate && rhs == ValueType::kInt) {
        return ValueType::kDate;
      }
      if (op == BinaryOp::kSub && lhs == ValueType::kDate &&
          rhs == ValueType::kDate) {
        return ValueType::kInt;
      }
      [[fallthrough]];
    case BinaryOp::kMul:
      if (lhs == ValueType::kInt && rhs == ValueType::kInt) {
        return ValueType::kInt;
      }
      return ValueType::kDouble;
  }
  return ValueType::kDouble;
}

}  // namespace

bool ContainsAggregate(const Expr& expr) {
  if (expr.kind == ExprKind::kFunction &&
      IsAggregateName(expr.function_name)) {
    return true;
  }
  for (const auto& child : expr.children) {
    if (child && ContainsAggregate(*child)) return true;
  }
  return false;
}

Result<int> Scope::Find(const std::string& qualifier,
                        const std::string& name) const {
  int found = -1;
  std::string qual_lower = common::ToLower(qualifier);
  for (size_t i = 0; i < cols.size(); ++i) {
    if (!common::EqualsIgnoreCase(cols[i].name, name)) continue;
    if (!qual_lower.empty() && cols[i].qualifier != qual_lower) continue;
    if (found >= 0) {
      return Status::InvalidArgument("ambiguous column '" + name + "'");
    }
    found = static_cast<int>(i);
  }
  if (found < 0) {
    std::string full = qualifier.empty() ? name : qualifier + "." + name;
    return Status::NotFound("unknown column '" + full + "'");
  }
  return found;
}

// ---------------------------------------------------------------------------
// Binding
// ---------------------------------------------------------------------------

Result<std::shared_ptr<SubqueryRuntime>> Planner::PlanSubquery(
    const SelectStmt& stmt, ValueType* out_type) {
  PHX_ASSIGN_OR_RETURN(PlannedQuery sub, PlanSelect(stmt));
  if (sub.output_schema.num_columns() != 1) {
    return Status::InvalidArgument("subquery must return exactly one column");
  }
  *out_type = sub.output_schema.column(0).type;
  auto runtime = std::make_shared<SubqueryRuntime>();
  runtime->plan = std::move(sub.root);
  return runtime;
}

Result<BoundExprPtr> Planner::BindFunction(const Expr& expr,
                                           const BindContext& ctx) {
  if (IsAggregateName(expr.function_name)) {
    return Status::InvalidArgument("aggregate function " +
                                   expr.function_name +
                                   " is not allowed in this context");
  }
  static constexpr std::string_view kScalarFns[] = {
      "ABS",  "ROUND",     "UPPER",  "LOWER", "LENGTH", "LEN",
      "SUBSTRING", "SUBSTR", "YEAR", "MONTH", "DAY",    "COALESCE",
  };
  bool known = false;
  for (std::string_view fn : kScalarFns) {
    if (fn == expr.function_name) {
      known = true;
      break;
    }
  }
  if (!known) {
    return Status::InvalidArgument("unknown function '" +
                                   expr.function_name + "'");
  }
  auto bound = std::make_unique<BoundExpr>();
  bound->kind = BoundExpr::Kind::kFunction;
  bound->function_name = expr.function_name;
  for (const auto& arg : expr.children) {
    if (arg->kind == ExprKind::kStar) {
      return Status::InvalidArgument("'*' argument only valid in COUNT(*)");
    }
    PHX_ASSIGN_OR_RETURN(BoundExprPtr child, Bind(*arg, ctx));
    bound->children.push_back(std::move(child));
  }
  const std::string& fn = expr.function_name;
  if (fn == "ABS" || fn == "COALESCE") {
    bound->type = bound->children.empty() ? ValueType::kNull
                                          : bound->children[0]->type;
  } else if (fn == "ROUND") {
    bound->type = ValueType::kDouble;
  } else if (fn == "LENGTH" || fn == "LEN" || fn == "YEAR" || fn == "MONTH" ||
             fn == "DAY") {
    bound->type = ValueType::kInt;
  } else {
    bound->type = ValueType::kString;
  }
  return bound;
}

Result<BoundExprPtr> Planner::Bind(const Expr& expr, const BindContext& ctx) {
  // Post-aggregate matching: group-by expressions and aggregate calls map to
  // aggregate-output slots.
  if (ctx.agg != nullptr) {
    const AggBinding& agg = *ctx.agg;
    std::string sql_text = expr.ToSql();
    for (size_t i = 0; i < agg.group_sql.size(); ++i) {
      if (agg.group_sql[i] == sql_text) {
        return MakeSlot(static_cast<int>(i),
                        ctx.scope->cols[i].type);
      }
    }
    if (expr.kind == ExprKind::kFunction &&
        IsAggregateName(expr.function_name)) {
      for (size_t j = 0; j < agg.agg_keys.size(); ++j) {
        if (agg.agg_keys[j] == sql_text) {
          int slot = static_cast<int>(agg.group_sql.size() + j);
          return MakeSlot(slot, ctx.scope->cols[slot].type);
        }
      }
      return Status::Internal("aggregate '" + sql_text +
                              "' was not collected");
    }
    if (expr.kind == ExprKind::kColumnRef) {
      // Leniency: a bare column ref matching a grouped column (possibly
      // spelled with a different qualifier in GROUP BY).
      for (size_t i = 0; i < agg.group_ast.size(); ++i) {
        const Expr* g = agg.group_ast[i];
        if (g->kind == ExprKind::kColumnRef &&
            common::EqualsIgnoreCase(g->column_name, expr.column_name)) {
          return MakeSlot(static_cast<int>(i), ctx.scope->cols[i].type);
        }
      }
      return Status::InvalidArgument(
          "column '" + expr.column_name +
          "' must appear in GROUP BY or inside an aggregate");
    }
    // Fall through: composite expressions recurse with the same context.
  }

  switch (expr.kind) {
    case ExprKind::kLiteral:
      return MakeConst(expr.literal);

    case ExprKind::kParam: {
      if (params_ == nullptr) {
        return Status::InvalidArgument("parameter @" + expr.param_name +
                                       " with no bound parameters");
      }
      auto it = params_->find(common::ToLower(expr.param_name));
      if (it == params_->end()) {
        return Status::InvalidArgument("unbound parameter @" +
                                       expr.param_name);
      }
      return MakeConst(it->second);
    }

    case ExprKind::kColumnRef: {
      if (ctx.scope == nullptr) {
        return Status::InvalidArgument("column '" + expr.column_name +
                                       "' is not valid here");
      }
      PHX_ASSIGN_OR_RETURN(
          int slot, ctx.scope->Find(expr.table_qualifier, expr.column_name));
      return MakeSlot(slot, ctx.scope->cols[static_cast<size_t>(slot)].type);
    }

    case ExprKind::kStar:
      return Status::InvalidArgument("'*' is not valid in this context");

    case ExprKind::kUnary: {
      PHX_ASSIGN_OR_RETURN(BoundExprPtr child, Bind(*expr.children[0], ctx));
      auto bound = std::make_unique<BoundExpr>();
      bound->kind = BoundExpr::Kind::kUnary;
      bound->unary_op = expr.unary_op;
      bound->type = expr.unary_op == sql::UnaryOp::kNot ? ValueType::kBool
                                                        : child->type;
      bound->children.push_back(std::move(child));
      if (IsPureConst(*bound)) {
        Value v = EvalBound(*bound, {});
        return MakeConst(std::move(v));
      }
      return bound;
    }

    case ExprKind::kBinary: {
      PHX_ASSIGN_OR_RETURN(BoundExprPtr lhs, Bind(*expr.children[0], ctx));
      PHX_ASSIGN_OR_RETURN(BoundExprPtr rhs, Bind(*expr.children[1], ctx));
      auto bound = std::make_unique<BoundExpr>();
      bound->kind = BoundExpr::Kind::kBinary;
      bound->binary_op = expr.binary_op;
      bound->type = InferBinaryType(expr.binary_op, lhs->type, rhs->type);
      bound->children.push_back(std::move(lhs));
      bound->children.push_back(std::move(rhs));
      if (IsPureConst(*bound)) {
        Value v = EvalBound(*bound, {});
        ValueType t = bound->type;
        BoundExprPtr folded = MakeConst(std::move(v));
        folded->type = t;
        return folded;
      }
      return bound;
    }

    case ExprKind::kFunction:
      return BindFunction(expr, ctx);

    case ExprKind::kCase: {
      auto bound = std::make_unique<BoundExpr>();
      bound->kind = BoundExpr::Kind::kCase;
      bound->has_else = expr.has_else;
      for (const auto& child : expr.children) {
        PHX_ASSIGN_OR_RETURN(BoundExprPtr c, Bind(*child, ctx));
        bound->children.push_back(std::move(c));
      }
      // Result type: the first THEN branch.
      bound->type = bound->children.size() >= 2 ? bound->children[1]->type
                                                : ValueType::kNull;
      return bound;
    }

    case ExprKind::kBetween:
    case ExprKind::kInList:
    case ExprKind::kLike:
    case ExprKind::kIsNull: {
      auto bound = std::make_unique<BoundExpr>();
      switch (expr.kind) {
        case ExprKind::kBetween:
          bound->kind = BoundExpr::Kind::kBetween;
          break;
        case ExprKind::kInList:
          bound->kind = BoundExpr::Kind::kInList;
          break;
        case ExprKind::kLike:
          bound->kind = BoundExpr::Kind::kLike;
          break;
        default:
          bound->kind = BoundExpr::Kind::kIsNull;
          break;
      }
      bound->negated = expr.negated;
      bound->type = ValueType::kBool;
      for (const auto& child : expr.children) {
        PHX_ASSIGN_OR_RETURN(BoundExprPtr c, Bind(*child, ctx));
        bound->children.push_back(std::move(c));
      }
      if (IsPureConst(*bound)) {
        Value v = EvalBound(*bound, {});
        return MakeConst(std::move(v));
      }
      return bound;
    }

    case ExprKind::kInSubquery: {
      auto bound = std::make_unique<BoundExpr>();
      bound->kind = BoundExpr::Kind::kInSubquery;
      bound->negated = expr.negated;
      bound->type = ValueType::kBool;
      PHX_ASSIGN_OR_RETURN(BoundExprPtr lhs, Bind(*expr.children[0], ctx));
      bound->children.push_back(std::move(lhs));
      ValueType sub_type;
      PHX_ASSIGN_OR_RETURN(bound->subquery,
                           PlanSubquery(*expr.subquery, &sub_type));
      return bound;
    }

    case ExprKind::kSubquery: {
      auto bound = std::make_unique<BoundExpr>();
      bound->kind = BoundExpr::Kind::kSubquery;
      ValueType sub_type;
      PHX_ASSIGN_OR_RETURN(bound->subquery,
                           PlanSubquery(*expr.subquery, &sub_type));
      bound->type = sub_type;
      return bound;
    }
  }
  return Status::Internal("unhandled expression kind in binder");
}

Result<BoundExprPtr> Planner::BindAgainstSchema(const Expr& expr,
                                                const common::Schema& schema) {
  Scope scope;
  for (const auto& col : schema.columns()) {
    scope.cols.push_back(ScopeColumn{"", col.name, col.type});
  }
  BindContext ctx;
  ctx.scope = &scope;
  return Bind(expr, ctx);
}

Result<BoundExprPtr> Planner::BindConstant(const Expr& expr) {
  Scope empty;
  BindContext ctx;
  ctx.scope = &empty;
  return Bind(expr, ctx);
}

// ---------------------------------------------------------------------------
// FROM planning
// ---------------------------------------------------------------------------

Result<Planner::PlannedInput> Planner::PlanTableRef(const TableRef& ref) {
  switch (ref.kind) {
    case TableRef::Kind::kBaseTable: {
      PHX_ASSIGN_OR_RETURN(TablePtr table,
                           db_->ResolveTable(ref.table_name, session_));
      // Result-cache read set: the client validates a cached result by
      // checking these tables' invalidation counters. Temp-table reads
      // poison cacheability (their contents are per-session volatile state).
      if (table->temporary()) {
        txn_->RecordTempRead();
      } else {
        txn_->RecordRead(common::ToLower(table->name()));
      }
      // MVCC: scans read the transaction's pinned snapshot and take no
      // lock-manager locks; the legacy path keeps the table-S lock.
      if (!db_->mvcc_enabled()) {
        PHX_RETURN_IF_ERROR(db_->LockTableShared(txn_, table));
      }
      PlannedInput out;
      out.source = std::make_unique<ScanOp>(table, db_->ReadSnapshot(txn_));
      std::string qualifier =
          common::ToLower(ref.alias.empty() ? ref.table_name : ref.alias);
      for (const auto& col : table->schema().columns()) {
        out.scope.cols.push_back(ScopeColumn{qualifier, col.name, col.type});
      }
      out.lazy = true;
      return out;
    }
    case TableRef::Kind::kDerived: {
      PHX_ASSIGN_OR_RETURN(PlannedQuery sub, PlanSelect(*ref.derived));
      PlannedInput out;
      out.source = std::move(sub.root);
      std::string qualifier = common::ToLower(ref.alias);
      for (const auto& col : sub.output_schema.columns()) {
        out.scope.cols.push_back(ScopeColumn{qualifier, col.name, col.type});
      }
      out.lazy = sub.lazy;
      return out;
    }
    case TableRef::Kind::kJoin: {
      PHX_ASSIGN_OR_RETURN(PlannedInput left, PlanTableRef(*ref.left));
      PHX_ASSIGN_OR_RETURN(PlannedInput right, PlanTableRef(*ref.right));
      Scope combined = left.scope;
      combined.Append(right.scope);

      // Split the ON condition; equality conjuncts with sides separable into
      // (left-only, right-only) become hash-join keys.
      std::vector<const Expr*> on_conjuncts;
      SplitConjuncts(ref.join_condition.get(), &on_conjuncts);
      std::vector<BoundExprPtr> left_keys;
      std::vector<BoundExprPtr> right_keys;
      std::vector<BoundExprPtr> residual;

      BindContext left_ctx;
      left_ctx.scope = &left.scope;
      BindContext right_ctx;
      right_ctx.scope = &right.scope;
      BindContext combined_ctx;
      combined_ctx.scope = &combined;

      for (const Expr* conjunct : on_conjuncts) {
        bool used_as_key = false;
        if (conjunct->kind == ExprKind::kBinary &&
            conjunct->binary_op == sql::BinaryOp::kEq &&
            !HasSubquery(*conjunct)) {
          auto l_in_left = Bind(*conjunct->children[0], left_ctx);
          auto r_in_right = Bind(*conjunct->children[1], right_ctx);
          if (l_in_left.ok() && r_in_right.ok()) {
            left_keys.push_back(std::move(l_in_left).value());
            right_keys.push_back(std::move(r_in_right).value());
            used_as_key = true;
          } else {
            auto l_in_right = Bind(*conjunct->children[0], right_ctx);
            auto r_in_left = Bind(*conjunct->children[1], left_ctx);
            if (l_in_right.ok() && r_in_left.ok()) {
              left_keys.push_back(std::move(r_in_left).value());
              right_keys.push_back(std::move(l_in_right).value());
              used_as_key = true;
            }
          }
        }
        if (!used_as_key) {
          PHX_ASSIGN_OR_RETURN(BoundExprPtr bound,
                               Bind(*conjunct, combined_ctx));
          residual.push_back(std::move(bound));
        }
      }

      BoundExprPtr residual_pred;
      for (BoundExprPtr& r : residual) {
        if (residual_pred == nullptr) {
          residual_pred = std::move(r);
        } else {
          auto conj = std::make_unique<BoundExpr>();
          conj->kind = BoundExpr::Kind::kBinary;
          conj->binary_op = sql::BinaryOp::kAnd;
          conj->type = ValueType::kBool;
          conj->children.push_back(std::move(residual_pred));
          conj->children.push_back(std::move(r));
          residual_pred = std::move(conj);
        }
      }

      PlannedInput out;
      if (!left_keys.empty()) {
        out.source = std::make_unique<HashJoinOp>(
            std::move(left.source), std::move(right.source),
            std::move(left_keys), std::move(right_keys),
            std::move(residual_pred));
      } else {
        out.source = std::make_unique<NestedLoopJoinOp>(
            std::move(left.source), std::move(right.source),
            std::move(residual_pred));
      }
      out.scope = std::move(combined);
      out.lazy = false;
      return out;
    }
  }
  return Status::Internal("unhandled table ref kind");
}

Result<Planner::PlannedInput> Planner::PlanFromClause(
    const SelectStmt& stmt, std::vector<const Expr*>* conjuncts) {
  if (stmt.from.empty()) {
    // SELECT without FROM: one empty input row.
    PlannedInput out;
    out.source = std::make_unique<MaterializedOp>(
        std::vector<Row>{Row{}}, 0);
    out.lazy = false;
    return out;
  }

  std::vector<PlannedInput> inputs;
  inputs.reserve(stmt.from.size());
  for (const TableRef& ref : stmt.from) {
    PHX_ASSIGN_OR_RETURN(PlannedInput input, PlanTableRef(ref));
    inputs.push_back(std::move(input));
  }

  PlannedInput current = std::move(inputs[0]);
  std::vector<bool> joined(inputs.size(), false);
  joined[0] = true;
  size_t remaining = inputs.size() - 1;

  while (remaining > 0) {
    // Greedy: pick the first unjoined input that shares an equality conjunct
    // with the accumulated scope; fall back to a cross join.
    size_t pick = 0;
    std::vector<size_t> key_conjunct_idx;
    std::vector<BoundExprPtr> left_keys;
    std::vector<BoundExprPtr> right_keys;
    bool found = false;

    for (size_t cand = 1; cand < inputs.size() && !found; ++cand) {
      if (joined[cand]) continue;
      BindContext cur_ctx;
      cur_ctx.scope = &current.scope;
      BindContext cand_ctx;
      cand_ctx.scope = &inputs[cand].scope;
      key_conjunct_idx.clear();
      left_keys.clear();
      right_keys.clear();
      for (size_t ci = 0; ci < conjuncts->size(); ++ci) {
        const Expr* conjunct = (*conjuncts)[ci];
        if (conjunct == nullptr) continue;
        if (conjunct->kind != ExprKind::kBinary ||
            conjunct->binary_op != sql::BinaryOp::kEq ||
            HasSubquery(*conjunct)) {
          continue;
        }
        auto l_cur = Bind(*conjunct->children[0], cur_ctx);
        auto r_cand = Bind(*conjunct->children[1], cand_ctx);
        if (l_cur.ok() && r_cand.ok()) {
          left_keys.push_back(std::move(l_cur).value());
          right_keys.push_back(std::move(r_cand).value());
          key_conjunct_idx.push_back(ci);
          continue;
        }
        auto l_cand = Bind(*conjunct->children[0], cand_ctx);
        auto r_cur = Bind(*conjunct->children[1], cur_ctx);
        if (l_cand.ok() && r_cur.ok()) {
          left_keys.push_back(std::move(r_cur).value());
          right_keys.push_back(std::move(l_cand).value());
          key_conjunct_idx.push_back(ci);
        }
      }
      if (!left_keys.empty()) {
        pick = cand;
        found = true;
      }
    }

    if (!found) {
      // Cross join with the next unjoined input.
      for (size_t cand = 1; cand < inputs.size(); ++cand) {
        if (!joined[cand]) {
          pick = cand;
          break;
        }
      }
    }

    Scope combined = current.scope;
    combined.Append(inputs[pick].scope);
    if (found) {
      for (size_t ci : key_conjunct_idx) (*conjuncts)[ci] = nullptr;
      current.source = std::make_unique<HashJoinOp>(
          std::move(current.source), std::move(inputs[pick].source),
          std::move(left_keys), std::move(right_keys), nullptr);
    } else {
      current.source = std::make_unique<NestedLoopJoinOp>(
          std::move(current.source), std::move(inputs[pick].source), nullptr);
    }
    current.scope = std::move(combined);
    current.lazy = false;
    joined[pick] = true;
    --remaining;
  }

  // Compact consumed conjuncts.
  conjuncts->erase(std::remove(conjuncts->begin(), conjuncts->end(), nullptr),
                   conjuncts->end());
  return current;
}

// ---------------------------------------------------------------------------
// PK point-lookup fast path
// ---------------------------------------------------------------------------

Result<Planner::PlannedInput> Planner::TryPkLookup(
    const SelectStmt& stmt, std::vector<const Expr*>* conjuncts, bool* used) {
  *used = false;
  PlannedInput out;
  if (stmt.from.size() != 1 ||
      stmt.from[0].kind != TableRef::Kind::kBaseTable) {
    return out;
  }
  PHX_ASSIGN_OR_RETURN(TablePtr table,
                       db_->ResolveTable(stmt.from[0].table_name, session_));
  if (!table->has_primary_key()) return out;
  if (table->temporary()) {
    txn_->RecordTempRead();
  } else {
    txn_->RecordRead(common::ToLower(table->name()));
  }

  const std::string alias = common::ToLower(stmt.from[0].alias.empty()
                                                ? stmt.from[0].table_name
                                                : stmt.from[0].alias);

  // Match `col = <constant>` conjuncts against a LEADING prefix of the PK.
  std::vector<Value> key_values;
  std::vector<size_t> used_conjuncts;
  for (size_t k = 0; k < table->primary_key().size(); ++k) {
    const std::string& pk_col = table->primary_key()[k];
    bool matched = false;
    for (size_t ci = 0; ci < conjuncts->size() && !matched; ++ci) {
      const Expr* conjunct = (*conjuncts)[ci];
      if (conjunct->kind != ExprKind::kBinary ||
          conjunct->binary_op != sql::BinaryOp::kEq) {
        continue;
      }
      for (int side = 0; side < 2 && !matched; ++side) {
        const Expr* col_side = conjunct->children[side].get();
        const Expr* val_side = conjunct->children[1 - side].get();
        if (col_side->kind != ExprKind::kColumnRef) continue;
        if (!common::EqualsIgnoreCase(col_side->column_name, pk_col)) continue;
        if (!col_side->table_qualifier.empty() &&
            common::ToLower(col_side->table_qualifier) != alias) {
          continue;
        }
        if (HasSubquery(*val_side)) continue;
        auto bound = BindConstant(*val_side);
        if (!bound.ok() || bound.value()->kind != BoundExpr::Kind::kConst) {
          continue;
        }
        int col_idx = table->pk_column_indexes()[k];
        key_values.push_back(CoerceValueTo(
            bound.value()->constant,
            table->schema().column(static_cast<size_t>(col_idx)).type));
        used_conjuncts.push_back(ci);
        matched = true;
      }
    }
    if (!matched) break;  // prefix ends at the first uncovered PK column
  }
  if (key_values.empty()) return out;  // no leading-PK equality at all

  std::vector<Row> rows;
  if (db_->mvcc_enabled()) {
    // Snapshot reads: resolve the key(s) against the transaction's pinned
    // snapshot — no lock-manager traffic at all.
    SnapshotPtr snap = db_->ReadSnapshot(txn_);
    if (key_values.size() == table->primary_key().size()) {
      Row row;
      if (table->LookupPkVisible(key_values, *snap, &row)) {
        rows.push_back(std::move(row));
      }
    } else {
      PHX_ASSIGN_OR_RETURN(rows, table->ScanPkPrefixVisible(key_values, *snap));
    }
  } else if (key_values.size() == table->primary_key().size()) {
    // Full PK equality: IS + one row-S lock, point lookup, 0/1 rows.
    Row key_row(table->schema().num_columns());
    for (size_t k = 0; k < key_values.size(); ++k) {
      key_row[static_cast<size_t>(table->pk_column_indexes()[k])] =
          key_values[k];
    }
    std::string lock_key = Database::RowLockKey(*table, key_row, 0);
    PHX_RETURN_IF_ERROR(db_->LockRowShared(txn_, table, lock_key));
    common::MutexLock latch(&table->latch());
    auto id = table->LookupPk(key_values);
    if (id.ok()) rows.push_back(table->GetRow(id.value()));
  } else {
    // Partial prefix: index-range access with per-row S locks.
    PHX_ASSIGN_OR_RETURN(auto matches,
                         db_->LockAndCollectPkPrefix(
                             txn_, table, key_values, /*exclusive=*/false));
    rows.reserve(matches.size());
    for (auto& [id, row] : matches) rows.push_back(std::move(row));
  }
  out.source = std::make_unique<MaterializedOp>(
      std::move(rows), table->schema().num_columns());
  for (const auto& col : table->schema().columns()) {
    out.scope.cols.push_back(ScopeColumn{alias, col.name, col.type});
  }
  out.lazy = false;

  // Remove consumed conjuncts (descending index order).
  std::sort(used_conjuncts.rbegin(), used_conjuncts.rend());
  for (size_t ci : used_conjuncts) {
    conjuncts->erase(conjuncts->begin() + static_cast<long>(ci));
  }
  *used = true;
  return out;
}

// ---------------------------------------------------------------------------
// SELECT planning
// ---------------------------------------------------------------------------

Result<PlannedQuery> Planner::PlanSelect(const SelectStmt& stmt) {
  std::vector<const Expr*> conjuncts;
  SplitConjuncts(stmt.where.get(), &conjuncts);

  // Constant-false WHERE check (the Phoenix `WHERE 0=1` probe): detect it
  // *before* planning FROM so the probe costs only name resolution.
  bool where_is_false = false;
  for (const Expr* conjunct : conjuncts) {
    if (HasSubquery(*conjunct)) continue;
    auto bound = BindConstant(*conjunct);
    if (bound.ok() && IsConstFalse(*bound.value())) {
      where_is_false = true;
      break;
    }
  }

  bool has_aggregates = !stmt.group_by.empty();
  for (const auto& item : stmt.items) {
    if (item.expr && ContainsAggregate(*item.expr)) has_aggregates = true;
  }
  if (stmt.having && ContainsAggregate(*stmt.having)) has_aggregates = true;
  for (const auto& ob : stmt.order_by) {
    if (ContainsAggregate(*ob.expr)) has_aggregates = true;
  }

  // FROM (with the PK point/prefix fast path; it only replaces the source,
  // so aggregation/ordering above it is unaffected).
  PlannedInput input;
  bool pk_used = false;
  if (!where_is_false && stmt.from.size() == 1 &&
      stmt.from[0].kind == TableRef::Kind::kBaseTable) {
    PHX_ASSIGN_OR_RETURN(input, TryPkLookup(stmt, &conjuncts, &pk_used));
  }
  if (!pk_used) {
    PHX_ASSIGN_OR_RETURN(input, PlanFromClause(stmt, &conjuncts));
  }

  BindContext row_ctx;
  row_ctx.scope = &input.scope;

  RowSourcePtr pipeline = std::move(input.source);
  bool lazy = input.lazy;

  if (where_is_false) {
    pipeline = std::make_unique<EmptyOp>(input.scope.cols.size());
    conjuncts.clear();
    lazy = false;
  }

  // Residual WHERE conjuncts.
  if (!conjuncts.empty()) {
    BoundExprPtr pred;
    for (const Expr* conjunct : conjuncts) {
      PHX_ASSIGN_OR_RETURN(BoundExprPtr bound, Bind(*conjunct, row_ctx));
      if (bound->kind == BoundExpr::Kind::kConst &&
          !bound->constant.is_null() &&
          bound->constant.type() == ValueType::kBool &&
          bound->constant.AsBool()) {
        continue;  // constant TRUE — drop
      }
      if (pred == nullptr) {
        pred = std::move(bound);
      } else {
        auto conj = std::make_unique<BoundExpr>();
        conj->kind = BoundExpr::Kind::kBinary;
        conj->binary_op = sql::BinaryOp::kAnd;
        conj->type = ValueType::kBool;
        conj->children.push_back(std::move(pred));
        conj->children.push_back(std::move(bound));
        pred = std::move(conj);
      }
    }
    if (pred != nullptr) {
      pipeline = std::make_unique<FilterOp>(std::move(pipeline),
                                            std::move(pred));
    }
  }

  // Expand the select list ('*' and 'alias.*').
  std::vector<std::unique_ptr<Expr>> owned_exprs;
  struct FinalItem {
    const Expr* expr;
    std::string name;
  };
  std::vector<FinalItem> items;
  for (const auto& item : stmt.items) {
    if (item.expr == nullptr ||
        (item.expr->kind == ExprKind::kStar &&
         !item.expr->table_qualifier.empty())) {
      std::string want_qual =
          item.expr == nullptr
              ? std::string()
              : common::ToLower(item.expr->table_qualifier);
      bool any = false;
      for (const ScopeColumn& col : input.scope.cols) {
        if (!want_qual.empty() && col.qualifier != want_qual) continue;
        owned_exprs.push_back(
            sql::MakeColumnRef(col.qualifier, col.name));
        items.push_back(FinalItem{owned_exprs.back().get(), col.name});
        any = true;
      }
      if (!any) {
        return Status::InvalidArgument("'*' matched no columns");
      }
      continue;
    }
    std::string name = item.alias;
    if (name.empty()) {
      name = item.expr->kind == ExprKind::kColumnRef ? item.expr->column_name
                                                     : item.expr->ToSql();
    }
    items.push_back(FinalItem{item.expr.get(), std::move(name)});
  }

  // Aggregation.
  Scope agg_scope;
  AggBinding agg_binding;
  std::vector<AggregateSpec> agg_specs;
  BindContext post_ctx;

  if (has_aggregates) {
    // Bind GROUP BY expressions against the input rows.
    std::vector<BoundExprPtr> bound_groups;
    for (const auto& g : stmt.group_by) {
      PHX_ASSIGN_OR_RETURN(BoundExprPtr bound, Bind(*g, row_ctx));
      agg_binding.group_sql.push_back(g->ToSql());
      agg_binding.group_ast.push_back(g.get());
      std::string name = g->kind == ExprKind::kColumnRef ? g->column_name
                                                         : g->ToSql();
      agg_scope.cols.push_back(ScopeColumn{"", name, bound->type});
      bound_groups.push_back(std::move(bound));
    }

    // Collect aggregate calls from the select list, HAVING and ORDER BY.
    std::vector<const Expr*> agg_calls;
    std::function<void(const Expr&)> collect = [&](const Expr& e) {
      if (e.kind == ExprKind::kFunction && IsAggregateName(e.function_name)) {
        agg_calls.push_back(&e);
        return;  // aggregates do not nest
      }
      for (const auto& child : e.children) {
        if (child) collect(*child);
      }
    };
    for (const auto& item : items) collect(*item.expr);
    if (stmt.having) collect(*stmt.having);
    for (const auto& ob : stmt.order_by) collect(*ob.expr);

    for (const Expr* call : agg_calls) {
      std::string key = call->ToSql();
      bool seen = false;
      for (const std::string& existing : agg_binding.agg_keys) {
        if (existing == key) {
          seen = true;
          break;
        }
      }
      if (seen) continue;

      AggregateSpec spec;
      spec.distinct = call->distinct;
      const std::string& fn = call->function_name;
      bool star_arg = !call->children.empty() &&
                      call->children[0]->kind == ExprKind::kStar;
      if (fn == "COUNT" && (call->children.empty() || star_arg)) {
        spec.func = AggregateSpec::Func::kCountStar;
        spec.result_type = ValueType::kInt;
      } else {
        if (call->children.size() != 1 || star_arg) {
          return Status::InvalidArgument(fn +
                                         " requires exactly one argument");
        }
        PHX_ASSIGN_OR_RETURN(spec.arg, Bind(*call->children[0], row_ctx));
        if (fn == "COUNT") {
          spec.func = AggregateSpec::Func::kCount;
          spec.result_type = ValueType::kInt;
        } else if (fn == "SUM") {
          spec.func = AggregateSpec::Func::kSum;
          spec.result_type = spec.arg->type == ValueType::kInt
                                 ? ValueType::kInt
                                 : ValueType::kDouble;
        } else if (fn == "AVG") {
          spec.func = AggregateSpec::Func::kAvg;
          spec.result_type = ValueType::kDouble;
        } else if (fn == "MIN") {
          spec.func = AggregateSpec::Func::kMin;
          spec.result_type = spec.arg->type;
        } else {
          spec.func = AggregateSpec::Func::kMax;
          spec.result_type = spec.arg->type;
        }
      }
      agg_scope.cols.push_back(ScopeColumn{"", key, spec.result_type});
      agg_binding.agg_keys.push_back(std::move(key));
      agg_specs.push_back(std::move(spec));
    }

    pipeline = std::make_unique<HashAggregateOp>(
        std::move(pipeline), std::move(bound_groups), std::move(agg_specs));
    lazy = false;

    agg_binding.input_scope = &input.scope;
    post_ctx.scope = &agg_scope;
    post_ctx.agg = &agg_binding;

    if (stmt.having) {
      PHX_ASSIGN_OR_RETURN(BoundExprPtr having, Bind(*stmt.having, post_ctx));
      pipeline = std::make_unique<FilterOp>(std::move(pipeline),
                                            std::move(having));
    }
  }

  const BindContext& final_ctx = has_aggregates ? post_ctx : row_ctx;

  // ORDER BY before projection: every key either references a select item
  // (alias / ordinal / identical expression — substituted with that item's
  // expression) or binds directly against the pre-projection scope.
  if (!stmt.order_by.empty()) {
    std::vector<SortKey> keys;
    for (const auto& ob : stmt.order_by) {
      const Expr* key_expr = ob.expr.get();
      // Ordinal: ORDER BY 2.
      if (key_expr->kind == ExprKind::kLiteral &&
          key_expr->literal.type() == ValueType::kInt) {
        int64_t ordinal = key_expr->literal.AsInt();
        if (ordinal < 1 || ordinal > static_cast<int64_t>(items.size())) {
          return Status::InvalidArgument("ORDER BY ordinal out of range");
        }
        key_expr = items[static_cast<size_t>(ordinal - 1)].expr;
      } else if (key_expr->kind == ExprKind::kColumnRef &&
                 key_expr->table_qualifier.empty()) {
        // Alias reference: substitute the select item's expression if the
        // name does not resolve in the pre-projection scope.
        auto direct = final_ctx.scope->Find("", key_expr->column_name);
        if (!direct.ok()) {
          for (const FinalItem& item : items) {
            if (common::EqualsIgnoreCase(item.name, key_expr->column_name)) {
              key_expr = item.expr;
              break;
            }
          }
        }
      }
      SortKey key;
      PHX_ASSIGN_OR_RETURN(key.expr, Bind(*key_expr, final_ctx));
      key.ascending = ob.ascending;
      keys.push_back(std::move(key));
    }
    pipeline = std::make_unique<SortOp>(std::move(pipeline), std::move(keys));
    lazy = false;
  }

  // Projection.
  std::vector<BoundExprPtr> bound_items;
  common::Schema output_schema;
  for (const FinalItem& item : items) {
    PHX_ASSIGN_OR_RETURN(BoundExprPtr bound, Bind(*item.expr, final_ctx));
    ValueType type = bound->type == ValueType::kNull ? ValueType::kString
                                                     : bound->type;
    output_schema.AddColumn(common::ColumnDef(item.name, type, true));
    bound_items.push_back(std::move(bound));
  }
  pipeline = std::make_unique<ProjectOp>(std::move(pipeline),
                                         std::move(bound_items));

  if (stmt.distinct) {
    pipeline = std::make_unique<DistinctOp>(std::move(pipeline));
    lazy = false;
  }
  if (stmt.top_n >= 0) {
    pipeline = std::make_unique<LimitOp>(std::move(pipeline), stmt.top_n);
  }

  PlannedQuery out;
  out.root = std::move(pipeline);
  out.output_schema = std::move(output_schema);
  out.lazy = lazy;
  return out;
}

}  // namespace phoenix::engine
