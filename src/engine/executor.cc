#include "engine/executor.h"

#include <algorithm>

#include "common/mutex.h"
#include "common/strings.h"
#include "obs/trace.h"
#include "sql/parser.h"

namespace phoenix::engine {

using common::Result;
using common::Row;
using common::Status;
using common::Value;
using common::ValueType;
using sql::Expr;
using sql::ExprKind;

namespace {

/// Matches WHERE conjuncts of the form `pk_col = <constant>` against a
/// LEADING prefix of the primary key. Fills `key_values` with the matched
/// prefix (coerced to column types) and `used` with the consumed conjunct
/// indexes; returns how many leading PK columns were covered (0 = none).
size_t MatchPkPrefixEquality(const TablePtr& table,
                             const std::string& alias_lower,
                             const std::vector<const Expr*>& conjuncts,
                             Planner* planner,
                             std::vector<Value>* key_values,
                             std::vector<size_t>* used) {
  key_values->clear();
  used->clear();
  for (size_t k = 0; k < table->primary_key().size(); ++k) {
    const std::string& pk_col = table->primary_key()[k];
    bool matched = false;
    for (size_t ci = 0; ci < conjuncts.size() && !matched; ++ci) {
      const Expr* conjunct = conjuncts[ci];
      if (conjunct->kind != ExprKind::kBinary ||
          conjunct->binary_op != sql::BinaryOp::kEq) {
        continue;
      }
      for (int side = 0; side < 2 && !matched; ++side) {
        const Expr* col_side = conjunct->children[side].get();
        const Expr* val_side = conjunct->children[1 - side].get();
        if (col_side->kind != ExprKind::kColumnRef) continue;
        if (!common::EqualsIgnoreCase(col_side->column_name, pk_col)) {
          continue;
        }
        if (!col_side->table_qualifier.empty() &&
            common::ToLower(col_side->table_qualifier) != alias_lower) {
          continue;
        }
        auto bound = planner->BindConstant(*val_side);
        if (!bound.ok() || bound.value()->kind != BoundExpr::Kind::kConst) {
          continue;
        }
        int col_idx = table->pk_column_indexes()[k];
        key_values->push_back(CoerceValueTo(
            bound.value()->constant,
            table->schema().column(static_cast<size_t>(col_idx)).type));
        used->push_back(ci);
        matched = true;
      }
    }
    if (!matched) break;
  }
  return key_values->size();
}

Row PkPseudoRow(const TablePtr& table, const std::vector<Value>& key_values) {
  Row row(table->schema().num_columns());
  for (size_t k = 0; k < key_values.size(); ++k) {
    row[static_cast<size_t>(table->pk_column_indexes()[k])] = key_values[k];
  }
  return row;
}

}  // namespace

Result<ExecResult> Executor::Execute(Transaction* txn, SessionId session,
                                     const sql::Statement& stmt,
                                     const ParamMap* params) {
  switch (stmt.kind()) {
    case sql::StatementKind::kSelect:
      return ExecuteSelect(txn, session,
                           static_cast<const sql::SelectStmt&>(stmt), params);
    case sql::StatementKind::kInsert:
      return ExecuteInsert(txn, session,
                           static_cast<const sql::InsertStmt&>(stmt), params);
    case sql::StatementKind::kUpdate:
      return ExecuteUpdate(txn, session,
                           static_cast<const sql::UpdateStmt&>(stmt), params);
    case sql::StatementKind::kDelete:
      return ExecuteDelete(txn, session,
                           static_cast<const sql::DeleteStmt&>(stmt), params);
    case sql::StatementKind::kCreateTable: {
      const auto& create = static_cast<const sql::CreateTableStmt&>(stmt);
      PHX_RETURN_IF_ERROR(db_->CreateTable(
          txn, create.table_name, create.schema, create.primary_key,
          create.temporary, create.if_not_exists, session));
      return ExecResult{};
    }
    case sql::StatementKind::kDropTable: {
      const auto& drop = static_cast<const sql::DropTableStmt&>(stmt);
      PHX_RETURN_IF_ERROR(
          db_->DropTable(txn, drop.table_name, drop.if_exists, session));
      return ExecResult{};
    }
    case sql::StatementKind::kCreateProcedure: {
      const auto& create = static_cast<const sql::CreateProcedureStmt&>(stmt);
      StoredProcedure proc;
      proc.name = create.name;
      proc.params = create.params;
      proc.body_sql = create.body_sql;
      PHX_RETURN_IF_ERROR(db_->CreateProcedure(txn, std::move(proc)));
      return ExecResult{};
    }
    case sql::StatementKind::kDropProcedure: {
      const auto& drop = static_cast<const sql::DropProcedureStmt&>(stmt);
      PHX_RETURN_IF_ERROR(db_->DropProcedure(txn, drop.name, drop.if_exists));
      return ExecResult{};
    }
    case sql::StatementKind::kExec:
      return ExecuteExec(txn, session, static_cast<const sql::ExecStmt&>(stmt),
                         params);
    case sql::StatementKind::kBegin:
    case sql::StatementKind::kCommit:
    case sql::StatementKind::kRollback:
      return Status::Internal(
          "transaction-control statements are handled by the session layer");
  }
  return Status::Internal("unhandled statement kind");
}

Result<ExecResult> Executor::ExecuteSelect(Transaction* txn,
                                           SessionId session,
                                           const sql::SelectStmt& stmt,
                                           const ParamMap* params) {
  Planner planner(db_, txn, session, params);
  PlannedQuery plan;
  {
    OBS_SPAN("engine.plan");
    PHX_ASSIGN_OR_RETURN(plan, planner.PlanSelect(stmt));
  }
  ExecResult out;
  out.cursor = std::move(plan.root);
  out.schema = std::move(plan.output_schema);
  out.lazy = plan.lazy;
  return out;
}

Result<ExecResult> Executor::ExecuteInsert(Transaction* txn,
                                           SessionId session,
                                           const sql::InsertStmt& stmt,
                                           const ParamMap* params) {
  PHX_ASSIGN_OR_RETURN(TablePtr table,
                       db_->ResolveTable(stmt.table_name, session));
  const common::Schema& schema = table->schema();
  Planner planner(db_, txn, session, params);

  // Map statement columns to table positions (empty = positional).
  std::vector<int> positions;
  if (!stmt.columns.empty()) {
    for (const std::string& col : stmt.columns) {
      int idx = schema.FindColumn(col);
      if (idx < 0) {
        return Status::NotFound("column '" + col + "' not in table '" +
                                stmt.table_name + "'");
      }
      positions.push_back(idx);
    }
  }

  if (stmt.select != nullptr) {
    PHX_ASSIGN_OR_RETURN(PlannedQuery plan, planner.PlanSelect(*stmt.select));
    size_t expected = positions.empty() ? schema.num_columns()
                                        : positions.size();
    if (plan.output_schema.num_columns() != expected) {
      return Status::InvalidArgument(
          "INSERT ... SELECT column count mismatch");
    }
    PHX_ASSIGN_OR_RETURN(std::vector<Row> source_rows,
                         DrainRowSource(plan.root.get()));
    std::vector<Row> rows;
    rows.reserve(source_rows.size());
    for (Row& src : source_rows) {
      Row row(schema.num_columns());
      for (size_t i = 0; i < src.size(); ++i) {
        size_t target = positions.empty() ? i
                                          : static_cast<size_t>(positions[i]);
        row[target] = CoerceValueTo(src[i], schema.column(target).type);
      }
      rows.push_back(std::move(row));
    }
    int64_t n = static_cast<int64_t>(rows.size());
    PHX_RETURN_IF_ERROR(db_->InsertBulk(txn, table, std::move(rows)));
    ExecResult out;
    out.rows_affected = n;
    return out;
  }

  int64_t inserted = 0;
  for (const auto& value_exprs : stmt.rows) {
    size_t expected = positions.empty() ? schema.num_columns()
                                        : positions.size();
    if (value_exprs.size() != expected) {
      return Status::InvalidArgument("INSERT VALUES arity mismatch: got " +
                                     std::to_string(value_exprs.size()) +
                                     ", expected " + std::to_string(expected));
    }
    Row row(schema.num_columns());
    for (size_t i = 0; i < value_exprs.size(); ++i) {
      PHX_ASSIGN_OR_RETURN(BoundExprPtr bound,
                           planner.BindConstant(*value_exprs[i]));
      size_t target = positions.empty() ? i
                                        : static_cast<size_t>(positions[i]);
      row[target] =
          CoerceValueTo(EvalBound(*bound, {}), schema.column(target).type);
    }
    PHX_RETURN_IF_ERROR(db_->InsertRow(txn, table, std::move(row)));
    ++inserted;
  }
  ExecResult out;
  out.rows_affected = inserted;
  return out;
}

Result<ExecResult> Executor::ExecuteUpdate(Transaction* txn,
                                           SessionId session,
                                           const sql::UpdateStmt& stmt,
                                           const ParamMap* params) {
  PHX_ASSIGN_OR_RETURN(TablePtr table,
                       db_->ResolveTable(stmt.table_name, session));
  const common::Schema& schema = table->schema();
  Planner planner(db_, txn, session, params);

  // Bind SET expressions against the table's row.
  std::vector<std::pair<int, BoundExprPtr>> assignments;
  for (const auto& [col, expr] : stmt.assignments) {
    int idx = schema.FindColumn(col);
    if (idx < 0) {
      return Status::NotFound("column '" + col + "' not in table '" +
                              stmt.table_name + "'");
    }
    PHX_ASSIGN_OR_RETURN(BoundExprPtr bound,
                         planner.BindAgainstSchema(*expr, schema));
    assignments.emplace_back(idx, std::move(bound));
  }

  std::vector<const Expr*> conjuncts;
  SplitConjuncts(stmt.where.get(), &conjuncts);

  auto apply_to = [&](RowId id) -> Status {
    Row new_row = table->GetRow(id);
    Row old_row = new_row;
    for (const auto& [idx, bound] : assignments) {
      new_row[static_cast<size_t>(idx)] =
          CoerceValueTo(EvalBound(*bound, old_row),
                        schema.column(static_cast<size_t>(idx)).type);
    }
    return db_->UpdateRow(txn, table, id, std::move(new_row));
  };

  // PK point / prefix-range fast path (row locks only).
  if (table->has_primary_key() && stmt.where != nullptr) {
    std::vector<Value> key_values;
    std::vector<size_t> used;
    size_t prefix_len =
        MatchPkPrefixEquality(table, common::ToLower(stmt.table_name),
                              conjuncts, &planner, &key_values, &used);
    if (prefix_len > 0) {
      // Residual (non-key) conjuncts, bound once against the table schema.
      std::vector<BoundExprPtr> residual;
      for (size_t ci = 0; ci < conjuncts.size(); ++ci) {
        if (std::find(used.begin(), used.end(), ci) != used.end()) continue;
        PHX_ASSIGN_OR_RETURN(BoundExprPtr bound,
                             planner.BindAgainstSchema(*conjuncts[ci],
                                                       schema));
        residual.push_back(std::move(bound));
      }
      auto passes_residual = [&](const Row& row) {
        for (const BoundExprPtr& pred : residual) {
          if (!EvalPredicate(*pred, row)) return false;
        }
        return true;
      };

      ExecResult out;
      out.rows_affected = 0;
      if (prefix_len == table->primary_key().size()) {
        std::string lock_key =
            Database::RowLockKey(*table, PkPseudoRow(table, key_values), 0);
        PHX_RETURN_IF_ERROR(db_->LockRowExclusive(txn, table, lock_key));
        RowId id = 0;
        bool found = false;
        Row current;
        {
          common::MutexLock latch(&table->latch());
          auto lookup = table->LookupPk(key_values);
          if (lookup.ok()) {
            id = lookup.value();
            found = true;
            current = table->GetRow(id);
          }
        }
        if (!found || !passes_residual(current)) return out;
        PHX_RETURN_IF_ERROR(apply_to(id));
        out.rows_affected = 1;
        return out;
      }
      PHX_ASSIGN_OR_RETURN(auto matches,
                           db_->LockAndCollectPkPrefix(
                               txn, table, key_values, /*exclusive=*/true));
      for (const auto& [id, row] : matches) {
        if (!passes_residual(row)) continue;
        PHX_RETURN_IF_ERROR(apply_to(id));
        ++out.rows_affected;
      }
      return out;
    }
  }

  // Generic path: exclusive table lock, scan, update matches.
  PHX_RETURN_IF_ERROR(db_->LockTableExclusive(txn, table));
  BoundExprPtr where;
  if (stmt.where != nullptr) {
    PHX_ASSIGN_OR_RETURN(where, planner.BindAgainstSchema(*stmt.where,
                                                          schema));
  }
  std::vector<RowId> targets;
  const RowId slot_bound = table->slot_count();
  for (RowId id = 0; id < slot_bound; ++id) {
    if (!table->IsLive(id)) continue;
    if (where == nullptr || EvalPredicate(*where, table->GetRow(id))) {
      targets.push_back(id);
    }
  }
  for (RowId id : targets) {
    PHX_RETURN_IF_ERROR(apply_to(id));
  }
  ExecResult out;
  out.rows_affected = static_cast<int64_t>(targets.size());
  return out;
}

Result<ExecResult> Executor::ExecuteDelete(Transaction* txn,
                                           SessionId session,
                                           const sql::DeleteStmt& stmt,
                                           const ParamMap* params) {
  PHX_ASSIGN_OR_RETURN(TablePtr table,
                       db_->ResolveTable(stmt.table_name, session));
  const common::Schema& schema = table->schema();
  Planner planner(db_, txn, session, params);

  std::vector<const Expr*> conjuncts;
  SplitConjuncts(stmt.where.get(), &conjuncts);

  // PK point / prefix-range fast path.
  if (table->has_primary_key() && stmt.where != nullptr) {
    std::vector<Value> key_values;
    std::vector<size_t> used;
    size_t prefix_len =
        MatchPkPrefixEquality(table, common::ToLower(stmt.table_name),
                              conjuncts, &planner, &key_values, &used);
    if (prefix_len > 0) {
      std::vector<BoundExprPtr> residual;
      for (size_t ci = 0; ci < conjuncts.size(); ++ci) {
        if (std::find(used.begin(), used.end(), ci) != used.end()) continue;
        PHX_ASSIGN_OR_RETURN(BoundExprPtr bound,
                             planner.BindAgainstSchema(*conjuncts[ci],
                                                       schema));
        residual.push_back(std::move(bound));
      }
      auto passes_residual = [&](const Row& row) {
        for (const BoundExprPtr& pred : residual) {
          if (!EvalPredicate(*pred, row)) return false;
        }
        return true;
      };

      ExecResult out;
      out.rows_affected = 0;
      if (prefix_len == table->primary_key().size()) {
        std::string lock_key =
            Database::RowLockKey(*table, PkPseudoRow(table, key_values), 0);
        PHX_RETURN_IF_ERROR(db_->LockRowExclusive(txn, table, lock_key));
        RowId id = 0;
        bool found = false;
        Row current;
        {
          common::MutexLock latch(&table->latch());
          auto lookup = table->LookupPk(key_values);
          if (lookup.ok()) {
            id = lookup.value();
            found = true;
            current = table->GetRow(id);
          }
        }
        if (!found || !passes_residual(current)) return out;
        PHX_RETURN_IF_ERROR(db_->DeleteRow(txn, table, id));
        out.rows_affected = 1;
        return out;
      }
      PHX_ASSIGN_OR_RETURN(auto matches,
                           db_->LockAndCollectPkPrefix(
                               txn, table, key_values, /*exclusive=*/true));
      for (const auto& [id, row] : matches) {
        if (!passes_residual(row)) continue;
        PHX_RETURN_IF_ERROR(db_->DeleteRow(txn, table, id));
        ++out.rows_affected;
      }
      return out;
    }
  }

  PHX_RETURN_IF_ERROR(db_->LockTableExclusive(txn, table));
  BoundExprPtr where;
  if (stmt.where != nullptr) {
    PHX_ASSIGN_OR_RETURN(where, planner.BindAgainstSchema(*stmt.where,
                                                          schema));
  }
  std::vector<RowId> targets;
  const RowId slot_bound = table->slot_count();
  for (RowId id = 0; id < slot_bound; ++id) {
    if (!table->IsLive(id)) continue;
    if (where == nullptr || EvalPredicate(*where, table->GetRow(id))) {
      targets.push_back(id);
    }
  }
  for (RowId id : targets) {
    PHX_RETURN_IF_ERROR(db_->DeleteRow(txn, table, id));
  }
  ExecResult out;
  out.rows_affected = static_cast<int64_t>(targets.size());
  return out;
}

Result<ExecResult> Executor::ExecuteExec(Transaction* txn, SessionId session,
                                         const sql::ExecStmt& stmt,
                                         const ParamMap* params) {
  PHX_ASSIGN_OR_RETURN(StoredProcedure proc,
                       db_->GetProcedure(stmt.procedure_name));
  if (stmt.arguments.size() > proc.params.size()) {
    return Status::InvalidArgument(
        "procedure '" + proc.name + "' takes " +
        std::to_string(proc.params.size()) + " arguments, got " +
        std::to_string(stmt.arguments.size()));
  }

  Planner caller_planner(db_, txn, session, params);
  ParamMap bound_params;
  for (size_t i = 0; i < stmt.arguments.size(); ++i) {
    PHX_ASSIGN_OR_RETURN(BoundExprPtr bound,
                         caller_planner.BindConstant(*stmt.arguments[i]));
    Value v = CoerceValueTo(EvalBound(*bound, {}), proc.params[i].type);
    bound_params[common::ToLower(proc.params[i].name)] = std::move(v);
  }
  if (stmt.arguments.size() < proc.params.size()) {
    return Status::InvalidArgument("procedure '" + proc.name +
                                   "' called with too few arguments");
  }

  PHX_ASSIGN_OR_RETURN(std::vector<sql::StatementPtr> body,
                       sql::ParseScript(proc.body_sql));
  ExecResult last;
  int64_t total_affected = -1;
  for (const sql::StatementPtr& body_stmt : body) {
    switch (body_stmt->kind()) {
      case sql::StatementKind::kBegin:
      case sql::StatementKind::kCommit:
      case sql::StatementKind::kRollback:
        return Status::Unsupported(
            "transaction control inside stored procedures");
      default:
        break;
    }
    PHX_ASSIGN_OR_RETURN(last,
                         Execute(txn, session, *body_stmt, &bound_params));
    if (last.rows_affected >= 0) {
      total_affected =
          (total_affected < 0 ? 0 : total_affected) + last.rows_affected;
    }
  }
  if (!last.is_query() && total_affected >= 0) {
    last.rows_affected = total_affected;
  }
  return last;
}

}  // namespace phoenix::engine
