#ifndef PHOENIX_ENGINE_CATALOG_H_
#define PHOENIX_ENGINE_CATALOG_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/ids.h"
#include "engine/table.h"
#include "sql/ast.h"

namespace phoenix::engine {

/// A stored procedure: named, parameterized SQL text, re-parsed at EXEC time
/// with parameters bound (mirrors how Phoenix ships CREATE PROCEDURE text).
struct StoredProcedure {
  std::string name;
  std::vector<sql::ProcedureParam> params;
  std::string body_sql;
};

/// Name → table / procedure maps. Temp tables are registered under their
/// owning session and shadow persistent tables of the same name for that
/// session only — exactly the scoping Phoenix's session-liveness proxy
/// relies on (a temp table disappears with the session).
///
/// Thread safety: callers hold Database's catalog mutex.
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Creates a table. Temp tables require owner_session != 0.
  common::Result<TablePtr> CreateTable(const std::string& name,
                                       const common::Schema& schema,
                                       const std::vector<std::string>& pk,
                                       bool temporary,
                                       SessionId owner_session);

  /// Resolves a name for a session: its temp tables first, then persistent.
  common::Result<TablePtr> Resolve(const std::string& name,
                                   SessionId session) const;

  /// Drops a table (temp resolution as in Resolve).
  common::Status DropTable(const std::string& name, SessionId session);

  /// Re-registers a previously dropped/constructed table (rollback of DROP,
  /// WAL replay).
  common::Status AdoptTable(TablePtr table, SessionId owner_session);

  /// Drops every temp table owned by `session` (session termination/crash).
  void DropSessionTempTables(SessionId session);

  /// All persistent tables, sorted by name (checkpointing, SHOW TABLES).
  std::vector<TablePtr> PersistentTables() const;

  common::Status CreateProcedure(StoredProcedure proc);
  common::Result<StoredProcedure> GetProcedure(const std::string& name) const;
  common::Status DropProcedure(const std::string& name);
  std::vector<StoredProcedure> AllProcedures() const;

  /// Wipes everything (crash simulation; durable state is reloaded by
  /// recovery).
  void Clear();

 private:
  static std::string Key(const std::string& name);

  std::map<std::string, TablePtr> persistent_;
  /// session -> (name key -> table)
  std::map<SessionId, std::map<std::string, TablePtr>> temps_;
  std::map<std::string, StoredProcedure> procedures_;
};

}  // namespace phoenix::engine

#endif  // PHOENIX_ENGINE_CATALOG_H_
