#ifndef PHOENIX_ENGINE_CHECKPOINT_H_
#define PHOENIX_ENGINE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/catalog.h"

namespace phoenix::engine {

/// A checkpoint is a snapshot of the durable state: every persistent table
/// (schema, PK, live rows) and every stored procedure. Two on-disk formats
/// exist, distinguished by the leading magic:
///
///  * Legacy single-file (kCheckpointMagic): everything in one CRC'd file,
///    rewritten in full on every checkpoint. Still written when incremental
///    checkpoints are disabled, and always still loadable.
///  * Multi-generation (kManifestMagic): a manifest that names one CRC'd
///    segment file per table. Checkpoint N writes new segments only for
///    tables dirtied since checkpoint N-1 and carries the rest forward by
///    reference, so checkpoint cost is proportional to what changed, not to
///    database size. The manifest is written tmp+rename LAST, so a crash at
///    any point mid-checkpoint leaves the previous generation fully
///    loadable (new-generation segments are stray files until the manifest
///    lands, and stale segments are unlinked only after it does).
///
/// After a successful checkpoint of either format the WAL is truncated.
struct CheckpointData {
  struct TableSnapshot {
    std::string name;
    common::Schema schema;
    std::vector<std::string> primary_key;
    std::vector<common::Row> rows;
  };
  std::vector<TableSnapshot> tables;
  std::vector<StoredProcedure> procedures;
};

/// One manifest entry: a table's segment file (basename, relative to the
/// manifest's directory) plus the generation that wrote it and the CRC the
/// loader must verify.
struct SegmentRef {
  std::string table;  // lowercased table name (manifest key)
  std::string file;   // segment basename, e.g. "seg_00000007_003.phxseg"
  uint32_t crc = 0;
  uint64_t generation = 0;  // checkpoint generation that wrote the segment
  uint64_t row_count = 0;
};

/// The multi-generation checkpoint root. Procedures are small and change
/// rarely, so they live inline in the manifest rather than in segments.
struct CheckpointManifest {
  uint64_t generation = 0;
  std::vector<SegmentRef> segments;
  std::vector<StoredProcedure> procedures;
};

/// Either checkpoint format, as found on disk. A missing file yields
/// is_manifest == false with empty `full` (fresh database).
struct LoadedCheckpoint {
  bool is_manifest = false;
  CheckpointData full;          // legacy format (or fresh/empty)
  CheckpointManifest manifest;  // multi-generation format
};

/// Writes `data` atomically to `path` in the legacy single-file format.
common::Status WriteCheckpoint(const std::string& path,
                               const CheckpointData& data);

/// Loads a legacy-format checkpoint. A missing file yields an empty
/// CheckpointData (fresh database).
common::Result<CheckpointData> ReadCheckpoint(const std::string& path);

/// Writes one table's segment file (directly to its final, generation-unique
/// name; the manifest rename is the commit point) and reports the body CRC
/// the manifest must carry.
common::Status WriteTableSegment(const std::string& path,
                                 const CheckpointData::TableSnapshot& table,
                                 uint32_t* crc_out);

/// Loads and CRC-verifies one table segment. `expected_crc` must match the
/// manifest entry (a mismatch means the segment does not belong to the
/// manifest's generation lineage).
common::Result<CheckpointData::TableSnapshot> ReadTableSegment(
    const std::string& path, uint32_t expected_crc);

/// Writes the manifest atomically (tmp + rename) to `path`.
common::Status WriteManifest(const std::string& path,
                             const CheckpointManifest& manifest);

/// Reads whichever checkpoint format sits at `path`, dispatching on the
/// magic. Manifest loads return segment REFERENCES only — the caller loads
/// the segment files (in parallel, on the recovery pool).
common::Result<LoadedCheckpoint> ReadCheckpointAny(const std::string& path);

}  // namespace phoenix::engine

#endif  // PHOENIX_ENGINE_CHECKPOINT_H_
