#ifndef PHOENIX_ENGINE_CHECKPOINT_H_
#define PHOENIX_ENGINE_CHECKPOINT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "engine/catalog.h"

namespace phoenix::engine {

/// A checkpoint is a full snapshot of the durable state: every persistent
/// table (schema, PK, live rows) and every stored procedure. It is written
/// to a temp file and renamed into place so a crash mid-checkpoint leaves
/// the previous checkpoint intact. After a successful checkpoint the WAL is
/// truncated.
struct CheckpointData {
  struct TableSnapshot {
    std::string name;
    common::Schema schema;
    std::vector<std::string> primary_key;
    std::vector<common::Row> rows;
  };
  std::vector<TableSnapshot> tables;
  std::vector<StoredProcedure> procedures;
};

/// Writes `data` atomically to `path`.
common::Status WriteCheckpoint(const std::string& path,
                               const CheckpointData& data);

/// Loads a checkpoint. A missing file yields an empty CheckpointData (fresh
/// database).
common::Result<CheckpointData> ReadCheckpoint(const std::string& path);

}  // namespace phoenix::engine

#endif  // PHOENIX_ENGINE_CHECKPOINT_H_
