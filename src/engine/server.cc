#include "engine/server.h"

#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>

#include "common/strings.h"
#include "fault/fault.h"
#include "obs/metrics.h"

namespace phoenix::engine {

using common::Result;
using common::Status;

namespace {

/// Resolved shard count: explicit option wins, then PHOENIX_SHARDS, default
/// 1. Garbage/negative input falls back to 1 (clamp-to-disabled); values are
/// clamped to [1, 64] so shard masks fit a uint64.
int ResolveShards(const ServerOptions& options) {
  int64_t shards = options.shards >= 0
                       ? options.shards
                       : common::ParseNonNegativeKnob(
                             std::getenv("PHOENIX_SHARDS"), 1);
  if (shards < 1) shards = 1;
  if (shards > 64) shards = 64;
  return static_cast<int>(shards);
}

}  // namespace

Result<std::unique_ptr<SimulatedServer>> SimulatedServer::Start(
    const ServerOptions& options) {
  std::unique_ptr<SimulatedServer> server(new SimulatedServer(options));
  bool standby = false;
  if (options.standby >= 0) {
    standby = options.standby != 0;
  } else if (const char* env = std::getenv("PHOENIX_STANDBY")) {
    standby = *env != '\0' && std::string(env) != "0";
  }
  int shards = ResolveShards(options);
  if (shards == 1) {
    // Unsharded: exactly the historical code path — a single Database at
    // data_dir, plain Sessions, coordinator dark.
    PHX_ASSIGN_OR_RETURN(server->db_, Database::Open(options.db));
    server->all_shards_.push_back(server->db_.get());
  } else {
    if (standby) {
      return Status::InvalidArgument(
          "PHOENIX_SHARDS > 1 is incompatible with standby replication "
          "(per-shard WALs cannot feed the single-stream shipper)");
    }
    const std::string& base = options.db.data_dir;
    if (::mkdir(base.c_str(), 0755) != 0 && errno != EEXIST) {
      return Status::IoError("mkdir '" + base + "' failed");
    }
    // The decision log opens before any shard: each shard's Recover()
    // consults it (through prepared_resolver) to settle prepared
    // transactions left by a crash between prepare and commit.
    server->decisions_ = std::make_unique<DecisionLog>();
    PHX_RETURN_IF_ERROR(
        server->decisions_->Open(base + "/coordinator_decisions"));
    DecisionLog* decisions = server->decisions_.get();
    for (int i = 0; i < shards; ++i) {
      DatabaseOptions shard_opts = options.db;
      shard_opts.data_dir = base + "/shard_" + std::to_string(i);
      shard_opts.prepared_resolver = [decisions](const std::string& gtid) {
        return decisions->IsCommitted(gtid);
      };
      PHX_ASSIGN_OR_RETURN(auto db, Database::Open(shard_opts));
      if (i == 0) {
        server->db_ = std::move(db);
        server->all_shards_.push_back(server->db_.get());
      } else {
        server->all_shards_.push_back(db.get());
        server->extra_shards_.push_back(std::move(db));
      }
    }
    server->router_ = std::make_unique<ShardRouter>(shards);
    PHX_RETURN_IF_ERROR(server->router_->LoadFrom(base + "/shard_keys"));
    server->router_->set_sidecar_path(base + "/shard_keys");
    // Global transaction ids must never repeat across server restarts (the
    // decision log is append-only), so prefix them with the start instant.
    server->gtid_prefix_ =
        "g" +
        std::to_string(std::chrono::duration_cast<std::chrono::microseconds>(
                           std::chrono::system_clock::now().time_since_epoch())
                           .count()) +
        "-";
  }
  server->set_role(standby ? repl::Role::kStandby : repl::Role::kPrimary);
  server->up_.store(true, std::memory_order_release);
  return server;
}

SimulatedServer::~SimulatedServer() {
  // Sessions reference db_; drop them first.
  std::lock_guard<std::mutex> lock(sessions_mu_);
  sessions_.clear();
}

Status SimulatedServer::CheckUp() const {
  if (!IsUp()) {
    return Status::ConnectionFailed("server is down");
  }
  return Status::OK();
}

Result<SimulatedServer::SessionSlotPtr> SimulatedServer::FindSession(
    SessionId session) {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  auto it = sessions_.find(session);
  if (it == sessions_.end()) {
    // The session id is stale — the server restarted since it was issued.
    // This is a connection-level failure (Phoenix reconnects), not a
    // statement error.
    return Status::ConnectionFailed("unknown session " +
                                    std::to_string(session) +
                                    " (connection lost)");
  }
  return it->second;
}

Result<SessionId> SimulatedServer::Connect(const ConnectRequest& request) {
  PHX_RETURN_IF_ERROR(CheckUp());
  PHX_FAULT_POINT("server.connect");
  // Fencing-by-first-contact: note the client's epoch BEFORE deciding, so a
  // post-failover client both fences a restarted stale primary and gets the
  // typed rejection in one round trip.
  NoteClientEpoch(request.known_epoch);
  if (role() == repl::Role::kStandby) {
    return Status::ConnectionFailed(
        "server is a standby (promote it or connect to the primary)");
  }
  if (db_->fenced()) {
    return Status::StaleEpoch(
        "connect rejected: server epoch " + std::to_string(db_->epoch()) +
        " is stale (a newer primary exists)");
  }
  if (options_.require_user && request.user.empty()) {
    return Status::InvalidArgument("login failed: missing user");
  }
  std::lock_guard<std::mutex> lock(sessions_mu_);
  if (!IsUp()) return Status::ConnectionFailed("server is down");
  SessionId id = next_session_++;
  auto slot = std::make_shared<SessionSlot>();
  if (shard_count() > 1) {
    auto coord = std::make_unique<CoordinatorSession>(
        id, all_shards_, router_.get(), decisions_.get(),
        gtid_prefix_ + std::to_string(id) + "-", options_.send_buffer_bytes);
    slot->coord = coord.get();
    slot->session = std::move(coord);
  } else {
    slot->session = std::make_unique<Session>(id, db_.get(),
                                              options_.send_buffer_bytes);
  }
  sessions_.emplace(id, std::move(slot));
  return id;
}

Status SimulatedServer::Disconnect(SessionId session) {
  PHX_RETURN_IF_ERROR(CheckUp());
  SessionSlotPtr slot;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    auto it = sessions_.find(session);
    if (it == sessions_.end()) {
      return Status::NotFound("unknown session");
    }
    slot = std::move(it->second);
    sessions_.erase(it);
  }
  // Destroy the session under its own mutex so in-flight calls drain.
  std::lock_guard<std::mutex> lock(slot->mu);
  slot->session.reset();
  return Status::OK();
}

Result<StatementOutcome> SimulatedServer::Execute(SessionId session,
                                                  const std::string& sql) {
  return ExecuteWithFirstBatch(session, sql, 0, nullptr);
}

Result<StatementOutcome> SimulatedServer::ExecuteWithFirstBatch(
    SessionId session, const std::string& sql, size_t first_batch,
    FetchOutcome* first) {
  PHX_RETURN_IF_ERROR(CheckUp());
  // Fault points sit outside slot->mu: an injected hang here must not block
  // SimulatedServer::Crash()'s drain of in-flight requests.
  PHX_FAULT_POINT("server.execute.pre");
  if (sql.find("phoenix_status") != std::string::npos) {
    // The Phoenix status-table write is the paper's commit point; failing
    // exactly here produces the "did my commit happen?" ambiguity the
    // recovery protocol must resolve.
    PHX_FAULT_POINT("server.commit.pre_status");
  }
  PHX_ASSIGN_OR_RETURN(SessionSlotPtr slot, FindSession(session));
  std::lock_guard<std::mutex> lock(slot->mu);
  PHX_RETURN_IF_ERROR(CheckUp());
  if (slot->session == nullptr) {
    return Status::ConnectionFailed("connection lost");
  }
  auto outcome = slot->session->Execute(sql);
  // Post-execution window: the statement ran but the client may never learn
  // its outcome (response lost). Error faults here model exactly that.
  PHX_FAULT_POINT("server.execute.post");
  if (outcome.ok() && outcome.value().is_query && first_batch > 0 &&
      first != nullptr) {
    auto fetched = slot->session->Fetch(outcome.value().cursor, first_batch);
    if (fetched.ok()) {
      *first = std::move(fetched).value();
      // The piggybacked batch exhausted the result: nothing left for the
      // cursor to serve, so free it now. The client sees done=true on the
      // execute response and skips its close round trip entirely.
      if (first->done) {
        slot->session->CloseCursor(outcome.value().cursor).ok();
      }
    }
  }
  return outcome;
}

Result<std::vector<BundleOutcome>> SimulatedServer::ExecuteBundle(
    SessionId session, const std::vector<std::string>& statements) {
  PHX_RETURN_IF_ERROR(CheckUp());
  // Fault points sit outside slot->mu (see ExecuteWithFirstBatch).
  // "server.bundle" fires before anything runs — a crash here models the
  // whole bundle being lost in flight.
  PHX_FAULT_POINT("server.execute.pre");
  PHX_FAULT_POINT("server.bundle");
  for (const std::string& sql : statements) {
    if (sql.find("phoenix_status") != std::string::npos) {
      // Same commit-point ambiguity window as the single-statement path:
      // the bundle carries its status-table row, so faults aimed at the
      // "did my commit happen?" window fire for bundles too.
      PHX_FAULT_POINT("server.commit.pre_status");
      break;
    }
  }
  PHX_ASSIGN_OR_RETURN(SessionSlotPtr slot, FindSession(session));
  std::lock_guard<std::mutex> lock(slot->mu);
  PHX_RETURN_IF_ERROR(CheckUp());
  if (slot->session == nullptr) {
    return Status::ConnectionFailed("connection lost");
  }
  auto outcome = slot->session->ExecuteBundle(statements);
  // Post-execution window: the bundle may have committed but the client may
  // never learn it (response lost) — the retry ambiguity Phoenix resolves
  // through the status table.
  PHX_FAULT_POINT("server.execute.post");
  return outcome;
}

Result<FetchOutcome> SimulatedServer::Fetch(SessionId session,
                                            CursorId cursor,
                                            size_t max_rows) {
  PHX_RETURN_IF_ERROR(CheckUp());
  PHX_FAULT_POINT("server.fetch");
  PHX_ASSIGN_OR_RETURN(SessionSlotPtr slot, FindSession(session));
  std::lock_guard<std::mutex> lock(slot->mu);
  PHX_RETURN_IF_ERROR(CheckUp());
  if (slot->session == nullptr) {
    return Status::ConnectionFailed("connection lost");
  }
  return slot->session->Fetch(cursor, max_rows);
}

Result<uint64_t> SimulatedServer::AdvanceCursor(SessionId session,
                                                CursorId cursor, uint64_t n) {
  PHX_RETURN_IF_ERROR(CheckUp());
  PHX_ASSIGN_OR_RETURN(SessionSlotPtr slot, FindSession(session));
  std::lock_guard<std::mutex> lock(slot->mu);
  PHX_RETURN_IF_ERROR(CheckUp());
  if (slot->session == nullptr) {
    return Status::ConnectionFailed("connection lost");
  }
  return slot->session->AdvanceCursor(cursor, n);
}

Status SimulatedServer::CloseCursor(SessionId session, CursorId cursor) {
  PHX_RETURN_IF_ERROR(CheckUp());
  PHX_ASSIGN_OR_RETURN(SessionSlotPtr slot, FindSession(session));
  std::lock_guard<std::mutex> lock(slot->mu);
  PHX_RETURN_IF_ERROR(CheckUp());
  if (slot->session == nullptr) {
    return Status::ConnectionFailed("connection lost");
  }
  return slot->session->CloseCursor(cursor);
}

Status SimulatedServer::Ping() const { return CheckUp(); }

repl::ServerHealth SimulatedServer::HealthProbe() const {
  repl::ServerHealth health;
  health.epoch = db_->epoch();
  health.role = role();
  AppliedLsnProvider provider;
  {
    std::lock_guard<std::mutex> lock(repl_mu_);
    provider = applied_lsn_provider_;
  }
  health.applied_lsn = provider ? provider() : db_->replicated_lsn();
  return health;
}

void SimulatedServer::NoteClientEpoch(uint64_t known_epoch) {
  if (known_epoch == 0) return;
  // Persist failure still leaves the in-memory fence set; ignore it here —
  // the caller's own request is already being rejected either way.
  db_->NoteObservedEpoch(known_epoch).ok();
}

Result<ReplChunk> SimulatedServer::ReplFetch(uint64_t from_lsn,
                                             uint64_t applied_lsn,
                                             uint64_t max_bytes,
                                             uint64_t peer_epoch) {
  PHX_RETURN_IF_ERROR(CheckUp());
  if (all_shards_.size() > 1) {
    return Status::Unsupported(
        "replication is incompatible with PHOENIX_SHARDS > 1");
  }
  NoteClientEpoch(peer_epoch);
  if (db_->fenced()) {
    return Status::StaleEpoch("replication fetch rejected: server is fenced");
  }
  ReplFetchHandler handler;
  {
    std::lock_guard<std::mutex> lock(repl_mu_);
    handler = repl_fetch_handler_;
  }
  if (!handler) {
    return Status::Unsupported("replication is not armed on this server");
  }
  PHX_ASSIGN_OR_RETURN(ReplChunk chunk,
                       handler(from_lsn, applied_lsn, max_bytes));
  // Payload-aware fault shaping: torn ships a valid prefix (the stream heals
  // on the next fetch), corrupt flips one byte of the SHIPPED copy only (the
  // retained buffer stays clean, so the standby's CRC check + resubscribe
  // recovers the real bytes).
  auto& injector = fault::FaultInjector::Global();
  if (injector.enabled()) {
    auto action = injector.Evaluate("repl.ship", chunk.bytes.size());
    if (action.has_value()) {
      switch (action->mode) {
        case fault::FaultMode::kTorn:
          chunk.bytes.resize(
              std::min<size_t>(chunk.bytes.size(),
                               static_cast<size_t>(action->torn_bytes)));
          break;
        case fault::FaultMode::kCorrupt:
          if (!chunk.bytes.empty()) {
            chunk.bytes[action->corrupt_offset % chunk.bytes.size()] ^= 0xff;
          }
          break;
        case fault::FaultMode::kDelay:
        case fault::FaultMode::kHang:
          if (!injector.SleepMicros(action->delay_micros)) {
            return Status::Timeout("injected repl.ship stall exceeded "
                                   "deadline");
          }
          break;
        default:
          return action->error;
      }
    }
  }
  return chunk;
}

Result<uint64_t> SimulatedServer::Promote(uint64_t min_epoch) {
  PHX_RETURN_IF_ERROR(CheckUp());
  PHX_FAULT_POINT("repl.promote");
  if (role() == repl::Role::kPrimary) return db_->epoch();
  PromoteHandler handler;
  {
    std::lock_guard<std::mutex> lock(repl_mu_);
    handler = promote_handler_;
  }
  if (!handler) {
    return Status::Unsupported("standby has no promotion handler armed");
  }
  return handler(min_epoch);
}

void SimulatedServer::Crash() {
  up_.store(false, std::memory_order_release);
  // Detach all sessions, draining in-flight requests via each slot mutex,
  // then abandon them (their transactions die with the volatile state).
  std::map<SessionId, SessionSlotPtr> victims;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    victims.swap(sessions_);
  }
  for (auto& [id, slot] : victims) {
    std::lock_guard<std::mutex> lock(slot->mu);
    if (slot->session != nullptr) {
      slot->session->Abandon();
      slot->coord = nullptr;
      slot->session.reset();
    }
  }
  for (Database* db : all_shards_) db->CrashVolatile();
}

Status SimulatedServer::Restart() {
  if (IsUp()) return Status::OK();
  for (Database* db : all_shards_) {
    PHX_RETURN_IF_ERROR(db->Recover());
  }
  up_.store(true, std::memory_order_release);
  return Status::OK();
}

void SimulatedServer::CrashShard(int shard) {
  if (shard_count() == 1) {
    Crash();
    return;
  }
  if (shard < 0 || shard >= shard_count()) return;
  // Partial failure: the server (and every session) stays up. Hold ALL slot
  // mutexes while the shard's volatile state is wiped so in-flight requests
  // drain first and no new statement can race the wipe; each coordinator
  // session drops its inner session on the dying shard (poisoning any
  // transaction it participated in). Sessions whose transactions never
  // touched the shard keep their inner sessions — and notice nothing.
  std::vector<SessionSlotPtr> slots;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    slots.reserve(sessions_.size());
    for (auto& [id, slot] : sessions_) slots.push_back(slot);
  }
  std::vector<std::unique_lock<std::mutex>> held;
  held.reserve(slots.size());
  for (auto& slot : slots) {
    held.emplace_back(slot->mu);
    if (slot->coord != nullptr) slot->coord->OnShardCrash(shard);
  }
  all_shards_[shard]->CrashVolatile();
  obs::Registry::Global()
      .counter("engine.shard." + std::to_string(shard) + ".crashes")
      ->Add(1);
}

Status SimulatedServer::RestartShard(int shard) {
  if (shard < 0 || shard >= shard_count()) {
    return Status::InvalidArgument("no such shard " + std::to_string(shard));
  }
  if (shard_count() == 1) return Restart();
  if (!all_shards_[shard]->is_down()) return Status::OK();
  PHX_RETURN_IF_ERROR(all_shards_[shard]->Recover());
  obs::Registry::Global()
      .counter("engine.shard." + std::to_string(shard) + ".restarts")
      ->Add(1);
  return Status::OK();
}

Status SimulatedServer::Checkpoint() {
  for (Database* db : all_shards_) {
    PHX_RETURN_IF_ERROR(db->Checkpoint());
  }
  return Status::OK();
}

InvalidationDigest SimulatedServer::CollectInvalidation(uint64_t since) const {
  if (all_shards_.size() > 1) {
    // Sharded: per-shard commit clocks are not comparable, so no digest is
    // offered — outcomes are already scrubbed non-cacheable upstream.
    return InvalidationDigest{};
  }
  return db_->CollectInvalidation(since);
}

size_t SimulatedServer::SessionCount() const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  return sessions_.size();
}

}  // namespace phoenix::engine
