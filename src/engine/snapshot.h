#ifndef PHOENIX_ENGINE_SNAPSHOT_H_
#define PHOENIX_ENGINE_SNAPSHOT_H_

#include <cstdint>
#include <memory>

#include "engine/ids.h"

namespace phoenix::engine {

/// A read snapshot: every MVCC read (scan, PK lookup, prefix range) is
/// evaluated "as of" `ts` against the tables' version chains, with the
/// reading transaction's own uncommitted versions layered on top.
///
/// Visibility of a version v to Snapshot s:
///   created: (v.creator == s.txn && v.begin_ts == 0)       — own pending
///         or (v.begin_ts != 0 && v.begin_ts <= s.ts)       — committed <= ts
///   deleted: (v.deleter == s.txn && v.end_ts == 0)          — own pending
///         or (v.end_ts != kMaxTs && v.end_ts != 0 && v.end_ts <= s.ts)
///   visible = created && !deleted
///
/// ts == kReadLatest reads the newest committed state (plus own pending
/// writes). The legacy PHOENIX_MVCC=0 path and checkpointing use it; both
/// rely on locks / the commit fence instead of a pinned timestamp for
/// stability, so kReadLatest snapshots are never registered with the GC
/// watermark.
struct Snapshot {
  /// Reads see commits with timestamp <= ts.
  uint64_t ts = 0;
  /// Owning transaction (its uncommitted writes are visible); 0 = none.
  TxnId txn = 0;

  static constexpr uint64_t kReadLatest = ~uint64_t{0};

  bool read_latest() const { return ts == kReadLatest; }
};

/// Snapshots are shared by every operator of a statement (and by every
/// statement of an explicit transaction). MVCC snapshots are produced by
/// TransactionManager::PinSnapshot, whose deleter unregisters the timestamp
/// from the GC watermark when the last reference drops (cursor close,
/// transaction end).
using SnapshotPtr = std::shared_ptr<const Snapshot>;

}  // namespace phoenix::engine

#endif  // PHOENIX_ENGINE_SNAPSHOT_H_
