#ifndef PHOENIX_ENGINE_COORDINATOR_H_
#define PHOENIX_ENGINE_COORDINATOR_H_

#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "engine/database.h"
#include "engine/session.h"
#include "engine/shard_router.h"

namespace phoenix::engine {

/// Durable coordinator commit log for cross-shard transactions: an appended
/// (fsynced) gtid means COMMIT was decided; absence means abort (presumed
/// abort). Each shard's Recover() consults it — via the prepared_resolver
/// hook — to settle WAL batches that end in kPrepare.
class DecisionLog {
 public:
  ~DecisionLog();

  /// Opens (creating if needed) and loads the committed-gtid set.
  common::Status Open(const std::string& path);
  /// Appends the commit decision durably. Once this returns OK the
  /// transaction IS committed, whatever happens to individual shards.
  common::Status LogCommit(const std::string& gtid);
  bool IsCommitted(const std::string& gtid) const;

 private:
  mutable std::mutex mu_;
  int fd_ = -1;
  std::set<std::string> committed_;
};

/// Scatter-gather session over N engine shards (DESIGN.md §20). Implements
/// the same ServerSession surface as a plain Session; the server constructs
/// one per connection when PHOENIX_SHARDS > 1.
///
/// Routing (via ShardRouter): statements whose shard keys are bound go
/// verbatim to the owning shard (the fast path — every TPC-C body under
/// warehouse partitioning); unbound reads fan out and merge with a
/// deterministic order (shard-index concatenation, ORDER BY merge, or
/// per-shard aggregate combine); unbound writes broadcast; multi-row
/// inserts scatter. Cross-shard write transactions commit through
/// prepare/commit over the per-shard WALs with the commit decision recorded
/// in the coordinator's DecisionLog first.
///
/// Thread safety: like Session, driven by one connection at a time (the
/// server serializes per-session calls, including OnShardCrash).
class CoordinatorSession : public ServerSession {
 public:
  CoordinatorSession(SessionId id, std::vector<Database*> shards,
                     ShardRouter* router, DecisionLog* decisions,
                     std::string gtid_prefix, size_t send_buffer_bytes);
  ~CoordinatorSession() override;

  CoordinatorSession(const CoordinatorSession&) = delete;
  CoordinatorSession& operator=(const CoordinatorSession&) = delete;

  common::Result<StatementOutcome> Execute(
      const std::string& sql, const ParamMap* params = nullptr) override;
  common::Result<std::vector<BundleOutcome>> ExecuteBundle(
      const std::vector<std::string>& statements) override;
  common::Result<FetchOutcome> Fetch(CursorId cursor,
                                     size_t max_rows) override;
  common::Result<uint64_t> AdvanceCursor(CursorId cursor,
                                         uint64_t n) override;
  common::Status CloseCursor(CursorId cursor) override;
  bool in_transaction() const override { return in_txn_; }
  size_t open_cursor_count() const override { return cursors_.size(); }
  void Abandon() override;

  /// Server callback when shard `shard` crashes (called under the same
  /// per-slot lock that serializes every other call): drops the inner
  /// session and its passthrough cursors; a transaction with that shard as
  /// participant is poisoned and aborts everywhere on the next call.
  /// Materialized (fan-out) cursors survive — their rows are already here.
  void OnShardCrash(int shard);

 private:
  struct CoordCursor {
    bool merged = false;
    /// Passthrough cursor whose shard crashed: the engine cursor is gone,
    /// but the id stays valid as a tombstone answering kShardUnavailable so
    /// the driver's scoped recovery (not a hard NotFound) masks the fetch.
    bool lost = false;
    // Passthrough: the inner cursor on one shard.
    int shard = 0;
    CursorId inner = 0;
    // Merged: fully materialized at execute time.
    std::deque<common::Row> rows;
    common::Schema schema;
  };

  int shard_count() const { return static_cast<int>(dbs_.size()); }
  /// The inner engine session on a shard, created lazily; error when the
  /// shard is down.
  common::Result<Session*> ShardSession(int shard);
  common::Status EnsureBegan(int shard);
  std::string NextGtid();

  common::Result<StatementOutcome> ExecuteOne(const sql::Statement& stmt,
                                              const std::string* verbatim,
                                              const ParamMap* params);
  common::Result<StatementOutcome> ExecSingle(int shard,
                                              const sql::Statement& stmt,
                                              const std::string* verbatim,
                                              const ParamMap* params);
  common::Result<StatementOutcome> ExecFanout(const sql::SelectStmt& stmt,
                                              const RouteDecision& d,
                                              const ParamMap* params);
  common::Result<StatementOutcome> ExecBroadcast(const sql::Statement& stmt,
                                                 bool ddl,
                                                 const ParamMap* params);
  common::Result<StatementOutcome> ExecScatter(const RouteDecision& d);
  common::Result<StatementOutcome> ExecInsertSelect(
      const sql::InsertStmt& stmt, const ParamMap* params);

  /// Runs a query on one shard and drains it completely (inside the open
  /// transaction when there is one).
  common::Result<std::vector<common::Row>> CollectShardRows(
      int shard, const std::string& sql, const ParamMap* params,
      common::Schema* schema);
  /// Runs `stmt` on every shard and merges per the fan-out plan
  /// (shard-order concatenation, ORDER BY sort with shard-index ties, or
  /// per-shard aggregate combine). Used by ExecFanout and INSERT..SELECT.
  common::Status FanoutCollect(const sql::SelectStmt& stmt,
                               const RouteDecision& d, const ParamMap* params,
                               common::Schema* schema,
                               std::vector<common::Row>* rows);

  /// Commits the open coordinator transaction: plain per-shard COMMITs when
  /// at most one participant wrote; prepare / decision-log / commit when two
  /// or more did.
  common::Status CommitAll();
  common::Status RollbackAll();
  /// A statement failed on `shard` while a transaction was open: the engine
  /// there already aborted its local transaction, so the global transaction
  /// is doomed — roll back every other participant.
  void AbortGlobalTxn();
  /// Returns the poisoned-transaction error if a participating shard
  /// crashed since the last statement (and aborts the leftovers).
  common::Status CheckTxnPoisoned();
  /// Registry upkeep after a successful DDL statement.
  void NoteDdl(const sql::Statement& stmt);

  SessionId id_;
  std::vector<Database*> dbs_;
  ShardRouter* router_;
  DecisionLog* decisions_;
  std::string gtid_prefix_;
  uint64_t gtid_seq_ = 0;
  size_t send_buffer_bytes_;
  bool abandoned_ = false;

  std::vector<std::unique_ptr<Session>> inner_;  // per shard, lazy

  bool in_txn_ = false;
  std::vector<char> began_;  // per shard
  std::vector<char> wrote_;  // per shard
  int lost_shard_ = -1;      // participant crashed mid-transaction

  std::set<std::string> temp_tables_;  // lowercased, live CREATE TEMPs
  std::map<CursorId, CoordCursor> cursors_;
  CursorId next_cursor_ = 1;
};

}  // namespace phoenix::engine

#endif  // PHOENIX_ENGINE_COORDINATOR_H_
