#ifndef PHOENIX_ENGINE_PLANNER_H_
#define PHOENIX_ENGINE_PLANNER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/schema.h"
#include "common/status.h"
#include "engine/bound_expr.h"
#include "engine/database.h"
#include "engine/operators.h"
#include "engine/row_source.h"
#include "sql/ast.h"

namespace phoenix::engine {

/// Bound parameter values for @name placeholders (stored procedure
/// execution, client-bound parameters). Keys are lower-cased names.
using ParamMap = std::map<std::string, common::Value>;

/// One visible column during name resolution.
struct ScopeColumn {
  std::string qualifier;  // table alias (lower-cased); may be empty
  std::string name;       // column name (original spelling)
  common::ValueType type = common::ValueType::kNull;
};

/// Name-resolution scope: the columns of the current input row, in slot
/// order.
struct Scope {
  std::vector<ScopeColumn> cols;

  /// Finds a column; qualifier empty means unqualified lookup. Errors on
  /// ambiguity or absence.
  common::Result<int> Find(const std::string& qualifier,
                           const std::string& name) const;

  /// Appends another scope's columns (join output).
  void Append(const Scope& other) {
    cols.insert(cols.end(), other.cols.begin(), other.cols.end());
  }
};

/// A compiled SELECT: operator tree plus result-set metadata.
struct PlannedQuery {
  RowSourcePtr root;
  common::Schema output_schema;
  /// True when the plan streams (scan/filter/project/limit only): execution
  /// cost is proportional to rows *pulled*, which is what makes the paper's
  /// TOP-N/network-buffer experiment (Table 3) reproducible.
  bool lazy = false;
};

/// Plans (and binds) a SELECT statement. Table locks (S for scans, IS+row S
/// for PK point reads) are acquired against `txn` at plan time — strict 2PL.
///
/// Uncorrelated scalar/IN subqueries are planned here but executed lazily at
/// first evaluation, so a constant-false WHERE (the Phoenix metadata probe)
/// compiles the full query without executing any of it.
class Planner {
 public:
  Planner(Database* db, Transaction* txn, SessionId session,
          const ParamMap* params)
      : db_(db), txn_(txn), session_(session), params_(params) {}

  common::Result<PlannedQuery> PlanSelect(const sql::SelectStmt& stmt);

  /// Binds a scalar expression against a table's schema (UPDATE SET clauses,
  /// INSERT VALUES with column context).
  common::Result<BoundExprPtr> BindAgainstSchema(const sql::Expr& expr,
                                                 const common::Schema& schema);

  /// Binds an expression with no input row (constants, params); used for
  /// INSERT VALUES and EXEC arguments.
  common::Result<BoundExprPtr> BindConstant(const sql::Expr& expr);

 private:
  struct PlannedInput {
    RowSourcePtr source;
    Scope scope;
    bool lazy = false;
  };

  /// Post-aggregate binding info.
  struct AggBinding {
    std::vector<std::string> group_sql;  // ToSql of each GROUP BY expr
    std::vector<const sql::Expr*> group_ast;
    std::vector<std::string> agg_keys;   // canonical ToSql of each aggregate
    const Scope* input_scope = nullptr;  // scope below the aggregate
  };

  struct BindContext {
    const Scope* scope = nullptr;  // current row scope (agg output scope when
                                   // post_agg is set)
    const AggBinding* agg = nullptr;  // non-null => post-aggregate binding
  };

  common::Result<BoundExprPtr> Bind(const sql::Expr& expr,
                                    const BindContext& ctx);
  common::Result<BoundExprPtr> BindFunction(const sql::Expr& expr,
                                            const BindContext& ctx);
  common::Result<std::shared_ptr<SubqueryRuntime>> PlanSubquery(
      const sql::SelectStmt& stmt, common::ValueType* out_type);

  common::Result<PlannedInput> PlanTableRef(const sql::TableRef& ref);
  common::Result<PlannedInput> PlanFromClause(
      const sql::SelectStmt& stmt, std::vector<const sql::Expr*>* conjuncts);

  /// Attempts the PK point-lookup / prefix-range fast path (full-PK
  /// equality -> single row lock; leading-prefix equality -> index range
  /// with per-row locks); returns true via *used.
  common::Result<PlannedInput> TryPkLookup(
      const sql::SelectStmt& stmt, std::vector<const sql::Expr*>* conjuncts,
      bool* used);

  Database* db_;
  Transaction* txn_;
  SessionId session_;
  const ParamMap* params_;
};

/// Coerces a constant to a column's declared type where the conversion is
/// exact (INT<->DOUBLE with integral value, INT->DATE, ISO string -> DATE).
/// Returns the value unchanged otherwise.
common::Value CoerceValueTo(const common::Value& v, common::ValueType target);

/// Splits an expression into its top-level AND conjuncts.
void SplitConjuncts(const sql::Expr* expr,
                    std::vector<const sql::Expr*>* out);

/// True if the expression (sub)tree contains an aggregate function call.
bool ContainsAggregate(const sql::Expr& expr);

}  // namespace phoenix::engine

#endif  // PHOENIX_ENGINE_PLANNER_H_
