#ifndef PHOENIX_ENGINE_SESSION_H_
#define PHOENIX_ENGINE_SESSION_H_

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/schema.h"
#include "common/status.h"
#include "engine/database.h"
#include "engine/executor.h"
#include "engine/ids.h"

namespace phoenix::engine {

/// Result of Session::Execute for one SQL request.
struct StatementOutcome {
  bool is_query = false;
  CursorId cursor = 0;          // valid when is_query
  common::Schema schema;        // result-set metadata when is_query
  int64_t rows_affected = -1;   // writes; -1 for queries/DDL
  bool lazy = false;            // cursor streams lazily

  // --- Result-cache consistency metadata (DESIGN.md §16) ------------------
  /// True when the server judged the result safe for the client to cache:
  /// MVCC snapshot read of persistent tables only. False for legacy-mode
  /// (PHOENIX_MVCC=0) reads, temp-table reads, and non-queries.
  bool cacheable = false;
  /// The pinned snapshot the statement read as of (0 = no snapshot pinned
  /// or legacy read-latest). Inside an explicit transaction this is the
  /// transaction's snapshot — the client's hit rule keys off it.
  uint64_t snapshot_ts = 0;
  /// Persistent tables the statement's plan read (lowercased) — the cache
  /// entry's validity key.
  std::vector<std::string> read_tables;
  /// Persistent tables the enclosing transaction has written so far — the
  /// client suppresses hits on them until the transaction ends.
  std::vector<std::string> write_tables;

  /// Bitmask of engine shards this request touched (bit i = shard i),
  /// 0 = unknown/unsharded. The Phoenix driver records it per virtual
  /// statement so a single-shard outage reinstalls only the statements that
  /// depend on the crashed shard.
  uint64_t shard_mask = 0;
};

/// One Fetch call's worth of rows.
struct FetchOutcome {
  std::vector<common::Row> rows;
  bool done = false;  // no more rows after these
};

/// One bundled statement's full result: the statement outcome plus its
/// piggybacked rows. Statement-level errors ride in `status` (in-band); the
/// bundle stops at the first failing entry.
struct BundleOutcome {
  common::Status status;     // statement-level result
  StatementOutcome outcome;  // valid when status.ok()
  FetchOutcome first;        // complete result rows for queries (done=true)
};

/// The statement-driving surface the server layer runs sessions through.
/// Session (one engine) and CoordinatorSession (scatter-gather over N engine
/// shards, coordinator.h) both implement it; with PHOENIX_SHARDS=1 the
/// server constructs plain Sessions and the coordinator stays dark.
class ServerSession {
 public:
  virtual ~ServerSession() = default;

  virtual common::Result<StatementOutcome> Execute(
      const std::string& sql, const ParamMap* params = nullptr) = 0;
  virtual common::Result<std::vector<BundleOutcome>> ExecuteBundle(
      const std::vector<std::string>& statements) = 0;
  virtual common::Result<FetchOutcome> Fetch(CursorId cursor,
                                             size_t max_rows) = 0;
  virtual common::Result<uint64_t> AdvanceCursor(CursorId cursor,
                                                 uint64_t n) = 0;
  virtual common::Status CloseCursor(CursorId cursor) = 0;
  virtual bool in_transaction() const = 0;
  virtual size_t open_cursor_count() const = 0;
  /// Crash teardown: drops all cursor/transaction pointers WITHOUT touching
  /// the database (whose volatile state is being wiped wholesale).
  virtual void Abandon() = 0;
};

/// A server-side session: transaction scope, temp tables (via the catalog),
/// and open cursors. Exactly the volatile state that a server crash destroys
/// — which is why Phoenix probes a session temp table to detect crashes.
///
/// Thread safety: a session is driven by one client connection at a time
/// (the server serializes per-session calls).
class Session : public ServerSession {
 public:
  /// `send_buffer_bytes` models the server's per-cursor network output
  /// buffer: Execute eagerly produces rows into it until full (the paper's
  /// Table 3 shows native response time flatlining once this buffer fills,
  /// because the scan suspends until the client consumes rows).
  Session(SessionId id, Database* db, size_t send_buffer_bytes = 75 * 1024);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  SessionId id() const { return id_; }
  bool in_transaction() const override { return explicit_txn_ != nullptr; }

  /// Parses and executes a SQL request (single statement or ';'-batch; the
  /// result of the last statement is returned). BEGIN/COMMIT/ROLLBACK manage
  /// the explicit transaction. `EXEC sys_advance_cursor <id>, <n>` performs
  /// the server-side cursor repositioning used by Phoenix recovery.
  common::Result<StatementOutcome> Execute(
      const std::string& sql, const ParamMap* params = nullptr) override;

  /// Executes a statement pipeline: each entry of `statements` runs like one
  /// Execute call, sequentially, stopping at the first failure (the failing
  /// entry's in-band error is the last element returned; later entries never
  /// run). Atomicity rule: when the session is in autocommit, every entry is
  /// plain DML, and at least one entry modifies data, the whole bundle is
  /// wrapped in one server transaction — a mid-bundle failure (or crash)
  /// rolls back *all* of it, so Phoenix's crash-retry replays or skips the
  /// bundle exactly once. Bundles containing BEGIN/COMMIT/ROLLBACK or DDL
  /// manage transactions themselves. Query results are drained completely
  /// into each entry's FetchOutcome (done=true, cursor closed) so results
  /// survive any transaction end inside the bundle and the client never
  /// needs a follow-up fetch. Call-level (non-connection) errors mean the
  /// bundle failed as a whole with nothing applied (e.g. the wrap-commit
  /// failed or an entry failed to parse).
  common::Result<std::vector<BundleOutcome>> ExecuteBundle(
      const std::vector<std::string>& statements) override;

  /// Pulls up to `max_rows` rows from an open cursor.
  common::Result<FetchOutcome> Fetch(CursorId cursor,
                                     size_t max_rows) override;

  /// Skips up to `n` rows server-side without materializing them for the
  /// client (the paper's repositioning stored procedure). Returns the number
  /// actually skipped.
  common::Result<uint64_t> AdvanceCursor(CursorId cursor, uint64_t n) override;

  common::Status CloseCursor(CursorId cursor) override;

  size_t open_cursor_count() const override { return cursors_.size(); }

  /// Crash teardown: drops all cursor/transaction pointers WITHOUT touching
  /// the database (whose volatile state is being wiped wholesale). After
  /// this the destructor is inert.
  void Abandon() override;

  // --- Coordinator hooks (cross-shard two-phase commit) --------------------

  /// Prepares the open explicit transaction under `gtid` (Database::Prepare)
  /// and detaches it from the session exactly as COMMIT would — cursors of
  /// the transaction close, in_transaction() turns false. The coordinator
  /// later settles it via the owning Database's CommitPrepared/
  /// RollbackPrepared (the transaction no longer belongs to this session).
  common::Status PrepareTxn(const std::string& gtid);

 private:
  struct CursorState {
    RowSourcePtr source;
    common::Schema schema;
    Transaction* txn = nullptr;  // the txn whose locks keep it consistent
    bool owns_txn = false;       // auto-commit query: commit at close/end
    bool exhausted = false;      // buffer drained AND source done
    bool source_done = false;
    bool lazy = false;  // streaming plan: its pinned snapshot lives with it
    std::deque<common::Row> buffer;  // server-side send buffer
  };

  /// Produces rows from the cursor's source into its send buffer until the
  /// byte cap is reached or the source is exhausted.
  common::Status FillSendBuffer(CursorState* state);

  common::Result<StatementOutcome> ExecuteOne(const sql::Statement& stmt,
                                              const ParamMap* params);
  void CloseCursorsOfTxn(const Transaction* txn);
  void FinishCursorTxn(CursorState* state);
  /// Statement-end READ COMMITTED lock release, with the legacy
  /// (PHOENIX_MVCC=0) carve-out: while the transaction still has an open,
  /// undrained lazy cursor its table-S scan locks are the only thing keeping
  /// the cursor consistent, so they are retained until it drains. A no-op
  /// under MVCC (readers hold no lock-manager locks).
  void ReleaseStatementReadLocks(Transaction* txn);

  SessionId id_;
  Database* db_;
  size_t send_buffer_bytes_;
  bool abandoned_ = false;
  Executor executor_;
  Transaction* explicit_txn_ = nullptr;
  std::map<CursorId, CursorState> cursors_;
  CursorId next_cursor_ = 1;
};

}  // namespace phoenix::engine

#endif  // PHOENIX_ENGINE_SESSION_H_
