#include "engine/session.h"

#include <limits>

#include "common/strings.h"
#include "obs/trace.h"
#include "sql/parser.h"

namespace phoenix::engine {

using common::Result;
using common::Row;
using common::Status;
using common::Value;

Session::Session(SessionId id, Database* db, size_t send_buffer_bytes)
    : id_(id), db_(db), send_buffer_bytes_(send_buffer_bytes),
      executor_(db) {}

Status Session::FillSendBuffer(CursorState* state) {
  if (state->source_done) return Status::OK();
  size_t bytes = 0;
  for (const Row& r : state->buffer) bytes += common::ApproxRowBytes(r);
  Row row;
  while (bytes < send_buffer_bytes_) {
    PHX_ASSIGN_OR_RETURN(bool more, state->source->Next(&row));
    if (!more) {
      state->source_done = true;
      FinishCursorTxn(state);
      break;
    }
    bytes += common::ApproxRowBytes(row);
    state->buffer.push_back(std::move(row));
    row.clear();
  }
  return Status::OK();
}

Session::~Session() {
  if (abandoned_) return;
  // Close cursors first (they may own auto-commit transactions).
  for (auto& [cursor_id, state] : cursors_) {
    FinishCursorTxn(&state);
  }
  cursors_.clear();
  if (explicit_txn_ != nullptr) {
    db_->Rollback(explicit_txn_).ok();
    explicit_txn_ = nullptr;
  }
  db_->DropSessionState(id_);
}

void Session::Abandon() {
  cursors_.clear();
  explicit_txn_ = nullptr;
  abandoned_ = true;
}

void Session::FinishCursorTxn(CursorState* state) {
  if (!state->owns_txn) {
    // A cursor inside an explicit transaction stays bound to it: COMMIT/
    // ROLLBACK closes it via CloseCursorsOfTxn (SQL Server semantics).
    return;
  }
  if (state->txn != nullptr && state->txn->active()) {
    // Auto-commit query transactions hold only read locks; commit releases
    // them.
    db_->Commit(state->txn).ok();
  }
  state->txn = nullptr;
}

void Session::ReleaseStatementReadLocks(Transaction* txn) {
  if (!db_->mvcc_enabled()) {
    // Legacy locking mode: an open lazy cursor's stability comes from the
    // transaction's scan locks. Dropping shared locks now would let a writer
    // commit mid-drain and the (unpinned, read-latest) cursor would observe
    // the mutation. Retain everything until the cursor drains.
    for (const auto& [cursor_id, state] : cursors_) {
      if (state.txn == txn && state.lazy && !state.source_done) return;
    }
  }
  db_->ReleaseSharedLocks(txn);
}

void Session::CloseCursorsOfTxn(const Transaction* txn) {
  for (auto it = cursors_.begin(); it != cursors_.end();) {
    if (it->second.txn == txn) {
      it = cursors_.erase(it);
    } else {
      ++it;
    }
  }
}

Result<StatementOutcome> Session::Execute(const std::string& sql,
                                          const ParamMap* params) {
  std::vector<sql::StatementPtr> statements;
  {
    OBS_SPAN("engine.parse");
    PHX_ASSIGN_OR_RETURN(statements, sql::ParseScript(sql));
  }
  if (statements.empty()) {
    return Status::InvalidArgument("empty SQL request");
  }
  StatementOutcome last;
  for (const sql::StatementPtr& stmt : statements) {
    PHX_ASSIGN_OR_RETURN(last, ExecuteOne(*stmt, params));
  }
  return last;
}

Result<std::vector<BundleOutcome>> Session::ExecuteBundle(
    const std::vector<std::string>& statements) {
  if (statements.empty()) {
    return Status::InvalidArgument("empty statement bundle");
  }
  // Parse every entry up front: a malformed entry fails the whole bundle
  // before any statement runs (nothing to roll back, nothing half-applied).
  std::vector<std::vector<sql::StatementPtr>> parsed;
  parsed.reserve(statements.size());
  bool plain_dml_only = true;
  bool has_modification = false;
  {
    OBS_SPAN("engine.parse");
    for (const std::string& sql : statements) {
      PHX_ASSIGN_OR_RETURN(std::vector<sql::StatementPtr> stmts,
                           sql::ParseScript(sql));
      if (stmts.empty()) {
        return Status::InvalidArgument("empty SQL request in bundle");
      }
      for (const sql::StatementPtr& stmt : stmts) {
        switch (stmt->kind()) {
          case sql::StatementKind::kInsert:
          case sql::StatementKind::kUpdate:
          case sql::StatementKind::kDelete:
            has_modification = true;
            break;
          case sql::StatementKind::kSelect:
          case sql::StatementKind::kExec:
            break;
          default:
            // Txn control or DDL: the bundle manages transactions itself.
            plain_dml_only = false;
            break;
        }
      }
      parsed.push_back(std::move(stmts));
    }
  }

  // Autocommit bundles of plain DML with at least one modification get one
  // wrapping transaction so the bundle commits (or rolls back) atomically
  // with its status-table rows — the exactly-once contract.
  bool wrapped = !in_transaction() && plain_dml_only && has_modification;
  if (wrapped) explicit_txn_ = db_->Begin(id_);
  // Rolls back whatever transaction the bundle is in when a mid-bundle
  // fetch/commit error needs to abort it (ExecuteOne failures do this
  // themselves).
  auto abort_open_txn = [this] {
    if (explicit_txn_ == nullptr) return;
    Transaction* txn = explicit_txn_;
    explicit_txn_ = nullptr;
    CloseCursorsOfTxn(txn);
    db_->Rollback(txn).ok();
  };

  std::vector<BundleOutcome> out;
  out.reserve(statements.size());
  for (const std::vector<sql::StatementPtr>& entry : parsed) {
    BundleOutcome item;
    for (const sql::StatementPtr& stmt : entry) {
      auto result = ExecuteOne(*stmt, nullptr);
      if (!result.ok()) {
        item.status = result.status();
        break;
      }
      item.outcome = std::move(result).value();
    }
    if (item.status.ok() && item.outcome.is_query) {
      // Drain the result completely so it survives any transaction end later
      // in the bundle (COMMIT closes the txn's cursors) and the client needs
      // no follow-up fetch round trips.
      auto fetched =
          Fetch(item.outcome.cursor, std::numeric_limits<size_t>::max());
      if (fetched.ok()) {
        item.first = std::move(fetched).value();
        item.first.done = true;
        CloseCursor(item.outcome.cursor).ok();
      } else {
        item.status = fetched.status();
      }
    }
    if (!item.status.ok()) {
      // Stop at the first failure. In wrapped mode (or when ExecuteOne's
      // failure path already aborted an explicit transaction) nothing from
      // this bundle survives; the client learns the prefix's results plus
      // this in-band error and resyncs its transaction state.
      if (wrapped) abort_open_txn();
      out.push_back(std::move(item));
      return out;
    }
    out.push_back(std::move(item));
  }

  if (wrapped && explicit_txn_ != nullptr) {
    Transaction* txn = explicit_txn_;
    explicit_txn_ = nullptr;
    CloseCursorsOfTxn(txn);
    Status commit = db_->Commit(txn);
    // The wrap-commit is the bundle's commit point: failure means the whole
    // bundle rolled back with nothing applied, reported as a single
    // call-level (in-band) error.
    PHX_RETURN_IF_ERROR(commit);
  }
  return out;
}

Result<StatementOutcome> Session::ExecuteOne(const sql::Statement& stmt,
                                             const ParamMap* params) {
  OBS_SPAN("engine.execute");
  StatementOutcome out;

  switch (stmt.kind()) {
    case sql::StatementKind::kBegin:
      if (explicit_txn_ != nullptr) {
        return Status::InvalidArgument("transaction already in progress");
      }
      explicit_txn_ = db_->Begin(id_);
      return out;

    case sql::StatementKind::kCommit: {
      if (explicit_txn_ == nullptr) {
        return Status::InvalidArgument("COMMIT with no open transaction");
      }
      Transaction* txn = explicit_txn_;
      explicit_txn_ = nullptr;
      CloseCursorsOfTxn(txn);
      PHX_RETURN_IF_ERROR(db_->Commit(txn));
      return out;
    }

    case sql::StatementKind::kRollback: {
      // Idempotent: a ROLLBACK after an automatic abort succeeds.
      if (explicit_txn_ == nullptr) return out;
      Transaction* txn = explicit_txn_;
      explicit_txn_ = nullptr;
      CloseCursorsOfTxn(txn);
      PHX_RETURN_IF_ERROR(db_->Rollback(txn));
      return out;
    }

    case sql::StatementKind::kExec: {
      const auto& exec = static_cast<const sql::ExecStmt&>(stmt);
      if (common::EqualsIgnoreCase(exec.procedure_name,
                                   "sys_advance_cursor")) {
        if (exec.arguments.size() != 2 ||
            exec.arguments[0]->kind != sql::ExprKind::kLiteral ||
            exec.arguments[1]->kind != sql::ExprKind::kLiteral) {
          return Status::InvalidArgument(
              "usage: EXEC sys_advance_cursor <cursor_id>, <count>");
        }
        CursorId cursor =
            static_cast<CursorId>(exec.arguments[0]->literal.AsInt());
        uint64_t count =
            static_cast<uint64_t>(exec.arguments[1]->literal.AsInt());
        PHX_ASSIGN_OR_RETURN(uint64_t skipped, AdvanceCursor(cursor, count));
        out.rows_affected = static_cast<int64_t>(skipped);
        return out;
      }
      break;  // regular stored procedure — fall through to executor
    }

    default:
      break;
  }

  bool auto_txn = explicit_txn_ == nullptr;
  Transaction* txn = auto_txn ? db_->Begin(id_) : explicit_txn_;
  txn->ResetStatementReads();

  auto result = executor_.Execute(txn, id_, stmt, params);
  if (!result.ok()) {
    // Statement failure aborts the transaction (partial statement effects
    // must not survive; the application restarts the transaction, which the
    // paper treats as a normal event).
    if (auto_txn) {
      db_->Rollback(txn).ok();
    } else {
      explicit_txn_ = nullptr;
      CloseCursorsOfTxn(txn);
      db_->Rollback(txn).ok();
    }
    return result.status();
  }

  ExecResult exec = std::move(result).value();
  // Result-cache metadata, captured before the auto-commit paths below
  // release the snapshot. write_tables is reported on every statement so
  // the client learns which tables its open transaction has dirtied.
  out.write_tables.assign(txn->write_tables().begin(),
                          txn->write_tables().end());
  if (exec.is_query()) {
    out.read_tables.assign(txn->statement_reads().begin(),
                           txn->statement_reads().end());
    const SnapshotPtr& snap = txn->snapshot();
    if (snap != nullptr && snap->ts != Snapshot::kReadLatest) {
      out.snapshot_ts = snap->ts;
    }
    // Reads of driver-internal artifact tables can never be validated —
    // their writes are excluded from the invalidation counters — so the
    // server must not vouch for them.
    bool reads_artifact = false;
    for (const std::string& table : out.read_tables) {
      if (IsPhoenixArtifactTable(table)) {
        reads_artifact = true;
        break;
      }
    }
    out.cacheable = db_->mvcc_enabled() && out.snapshot_ts != 0 &&
                    !txn->statement_read_temp() && !reads_artifact;

    CursorState state;
    state.schema = exec.schema;
    state.txn = txn;
    state.owns_txn = auto_txn;
    state.lazy = exec.lazy;

    if (exec.lazy) {
      state.source = std::move(exec.cursor);
    } else {
      // Pipeline breakers run to completion at execute time — the server
      // "sends all rows immediately" for default result sets. For
      // auto-commit this also releases read locks right away.
      auto drained = DrainRowSource(exec.cursor.get());
      if (!drained.ok()) {
        if (auto_txn) db_->Rollback(txn).ok();
        return drained.status();
      }
      size_t width = exec.schema.num_columns();
      state.source = std::make_unique<MaterializedOp>(
          std::move(drained).value(), width);
      if (auto_txn) {
        PHX_RETURN_IF_ERROR(db_->Commit(txn));
        state.txn = nullptr;
        state.owns_txn = false;
      }
    }

    // Eagerly produce rows into the send buffer — the cost of this fill is
    // part of Execute's response time, exactly as in the paper's Table 3.
    PHX_RETURN_IF_ERROR(FillSendBuffer(&state));

    // READ COMMITTED: inside an explicit transaction a query releases its
    // read locks at statement end (write locks persist). Under MVCC this is
    // a no-op — readers hold no lock-manager locks; open cursors stay
    // stable by pinning their snapshot instead of retaining scan locks. On
    // the legacy path an open lazy cursor keeps the locks (see helper).
    if (!auto_txn && !exec.lazy) ReleaseStatementReadLocks(txn);

    CursorId cursor_id = next_cursor_++;
    out.is_query = true;
    out.cursor = cursor_id;
    out.schema = std::move(exec.schema);
    out.lazy = exec.lazy;
    cursors_.emplace(cursor_id, std::move(state));
    return out;
  }

  out.rows_affected = exec.rows_affected;
  if (auto_txn) {
    PHX_RETURN_IF_ERROR(db_->Commit(txn));
  } else {
    // READ COMMITTED: reads performed while locating rows to modify do not
    // keep their S locks past the statement (no-op under MVCC; legacy mode
    // retains them while a lazy cursor is still open).
    ReleaseStatementReadLocks(txn);
  }
  return out;
}

Status Session::PrepareTxn(const std::string& gtid) {
  if (explicit_txn_ == nullptr) {
    return Status::InvalidArgument("PREPARE with no open transaction");
  }
  Transaction* txn = explicit_txn_;
  explicit_txn_ = nullptr;
  CloseCursorsOfTxn(txn);
  return db_->Prepare(txn, gtid);
}

Result<FetchOutcome> Session::Fetch(CursorId cursor, size_t max_rows) {
  auto it = cursors_.find(cursor);
  if (it == cursors_.end()) {
    return Status::NotFound("cursor " + std::to_string(cursor) +
                            " is not open");
  }
  CursorState& state = it->second;
  FetchOutcome out;
  if (state.exhausted) {
    out.done = true;
    return out;
  }
  Row row;
  while (out.rows.size() < max_rows) {
    if (!state.buffer.empty()) {
      out.rows.push_back(std::move(state.buffer.front()));
      state.buffer.pop_front();
      continue;
    }
    if (state.source_done) break;
    auto more = state.source->Next(&row);
    if (!more.ok()) return more.status();
    if (!more.value()) {
      state.source_done = true;
      FinishCursorTxn(&state);
      break;
    }
    out.rows.push_back(std::move(row));
    row.clear();
  }
  if (state.buffer.empty() && state.source_done) {
    state.exhausted = true;
    out.done = true;
  }
  return out;
}

Result<uint64_t> Session::AdvanceCursor(CursorId cursor, uint64_t n) {
  auto it = cursors_.find(cursor);
  if (it == cursors_.end()) {
    return Status::NotFound("cursor " + std::to_string(cursor) +
                            " is not open");
  }
  CursorState& state = it->second;
  if (state.exhausted) return static_cast<uint64_t>(0);
  Row row;
  uint64_t skipped = 0;
  while (skipped < n) {
    if (!state.buffer.empty()) {
      state.buffer.pop_front();
      ++skipped;
      continue;
    }
    if (state.source_done) break;
    auto more = state.source->Next(&row);
    if (!more.ok()) return more.status();
    if (!more.value()) {
      state.source_done = true;
      FinishCursorTxn(&state);
      break;
    }
    ++skipped;
  }
  if (state.buffer.empty() && state.source_done) state.exhausted = true;
  return skipped;
}

Status Session::CloseCursor(CursorId cursor) {
  auto it = cursors_.find(cursor);
  if (it == cursors_.end()) {
    return Status::NotFound("cursor " + std::to_string(cursor) +
                            " is not open");
  }
  FinishCursorTxn(&it->second);
  cursors_.erase(it);
  return Status::OK();
}

}  // namespace phoenix::engine
