#ifndef PHOENIX_ENGINE_IDS_H_
#define PHOENIX_ENGINE_IDS_H_

#include <cstdint>

namespace phoenix::engine {

/// Server-side session identifier; 0 is reserved for "no session" (system
/// operations, recovery).
using SessionId = uint64_t;

/// Transaction identifier issued by the TransactionManager.
using TxnId = uint64_t;

/// Server-side open-cursor identifier, scoped to a session.
using CursorId = uint64_t;

}  // namespace phoenix::engine

#endif  // PHOENIX_ENGINE_IDS_H_
