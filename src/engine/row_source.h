#ifndef PHOENIX_ENGINE_ROW_SOURCE_H_
#define PHOENIX_ENGINE_ROW_SOURCE_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace phoenix::engine {

/// Volcano-style pull iterator. Next() fills *out and returns true, or
/// returns false at end of stream. Errors surface as Status.
///
/// Sources are single-use and forward-only — precisely the semantics of an
/// ODBC default result set, which is what server-side cursors expose.
///
/// Snapshot contract: every source that reads a base table holds the
/// SnapshotPtr it was planned with (see ScanOp) and resolves all reads
/// against that snapshot. The pointer both fixes what the cursor sees —
/// rows committed after the snapshot never appear, even if the cursor
/// drains slowly — and pins the snapshot's timestamp against version GC
/// until the source is destroyed.
class RowSource {
 public:
  virtual ~RowSource() = default;

  /// Produces the next row. `*out` is overwritten on success.
  virtual common::Result<bool> Next(common::Row* out) = 0;

  /// Number of columns each produced row has.
  virtual size_t width() const = 0;
};

using RowSourcePtr = std::unique_ptr<RowSource>;

/// Drains a source into a vector (pipeline breakers, INSERT..SELECT,
/// subquery evaluation).
common::Result<std::vector<common::Row>> DrainRowSource(RowSource* source);

}  // namespace phoenix::engine

#endif  // PHOENIX_ENGINE_ROW_SOURCE_H_
