#include "engine/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/bytes.h"
#include "common/crc32.h"
#include "fault/fault.h"
#include "obs/trace.h"

namespace phoenix::engine {

using common::BinaryReader;
using common::BinaryWriter;
using common::Result;
using common::Status;

std::vector<uint8_t> WalRecord::Serialize() const {
  BinaryWriter w;
  w.PutU8(static_cast<uint8_t>(type));
  w.PutU64(txn);
  switch (type) {
    case WalRecordType::kBegin:
    case WalRecordType::kCommit:
    case WalRecordType::kAbort:
      break;
    case WalRecordType::kCreateTable:
      w.PutString(table_name);
      w.PutSchema(schema);
      w.PutU32(static_cast<uint32_t>(primary_key.size()));
      for (const std::string& col : primary_key) w.PutString(col);
      break;
    case WalRecordType::kDropTable:
    case WalRecordType::kDropProcedure:
    case WalRecordType::kPrepare:
      w.PutString(table_name);
      break;
    case WalRecordType::kInsert:
    case WalRecordType::kDelete:
      w.PutString(table_name);
      w.PutRow(row);
      break;
    case WalRecordType::kUpdate:
      w.PutString(table_name);
      w.PutRow(row);
      w.PutRow(new_row);
      break;
    case WalRecordType::kBulkInsert:
      w.PutString(table_name);
      w.PutU32(static_cast<uint32_t>(rows.size()));
      for (const common::Row& r : rows) w.PutRow(r);
      break;
    case WalRecordType::kCreateProcedure:
      w.PutString(table_name);
      w.PutU32(static_cast<uint32_t>(proc_params.size()));
      for (const auto& p : proc_params) {
        w.PutString(p.name);
        w.PutU8(static_cast<uint8_t>(p.type));
      }
      w.PutString(proc_body);
      break;
    case WalRecordType::kEpoch:
    case WalRecordType::kReplLsn:
      w.PutU64(value);
      break;
  }
  return w.TakeData();
}

Result<WalRecord> WalRecord::Deserialize(const uint8_t* data, size_t size) {
  BinaryReader r(data, size);
  WalRecord rec;
  PHX_ASSIGN_OR_RETURN(uint8_t type_tag, r.GetU8());
  rec.type = static_cast<WalRecordType>(type_tag);
  PHX_ASSIGN_OR_RETURN(rec.txn, r.GetU64());
  switch (rec.type) {
    case WalRecordType::kBegin:
    case WalRecordType::kCommit:
    case WalRecordType::kAbort:
      break;
    case WalRecordType::kCreateTable: {
      PHX_ASSIGN_OR_RETURN(rec.table_name, r.GetString());
      PHX_ASSIGN_OR_RETURN(rec.schema, r.GetSchema());
      PHX_ASSIGN_OR_RETURN(uint32_t n, r.GetU32());
      for (uint32_t i = 0; i < n; ++i) {
        PHX_ASSIGN_OR_RETURN(std::string col, r.GetString());
        rec.primary_key.push_back(std::move(col));
      }
      break;
    }
    case WalRecordType::kDropTable:
    case WalRecordType::kDropProcedure:
    case WalRecordType::kPrepare: {
      PHX_ASSIGN_OR_RETURN(rec.table_name, r.GetString());
      break;
    }
    case WalRecordType::kInsert:
    case WalRecordType::kDelete: {
      PHX_ASSIGN_OR_RETURN(rec.table_name, r.GetString());
      PHX_ASSIGN_OR_RETURN(rec.row, r.GetRow());
      break;
    }
    case WalRecordType::kUpdate: {
      PHX_ASSIGN_OR_RETURN(rec.table_name, r.GetString());
      PHX_ASSIGN_OR_RETURN(rec.row, r.GetRow());
      PHX_ASSIGN_OR_RETURN(rec.new_row, r.GetRow());
      break;
    }
    case WalRecordType::kBulkInsert: {
      PHX_ASSIGN_OR_RETURN(rec.table_name, r.GetString());
      PHX_ASSIGN_OR_RETURN(uint32_t n, r.GetU32());
      // Each row costs at least 4 bytes on the wire; a count beyond that is
      // a corrupt frame, not a huge allocation.
      if (n > r.remaining() / 4) {
        return Status::IoError("WAL bulk row count " + std::to_string(n) +
                               " exceeds record size");
      }
      rec.rows.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        PHX_ASSIGN_OR_RETURN(common::Row row, r.GetRow());
        rec.rows.push_back(std::move(row));
      }
      break;
    }
    case WalRecordType::kCreateProcedure: {
      PHX_ASSIGN_OR_RETURN(rec.table_name, r.GetString());
      PHX_ASSIGN_OR_RETURN(uint32_t n, r.GetU32());
      for (uint32_t i = 0; i < n; ++i) {
        sql::ProcedureParam p;
        PHX_ASSIGN_OR_RETURN(p.name, r.GetString());
        PHX_ASSIGN_OR_RETURN(uint8_t t, r.GetU8());
        p.type = static_cast<common::ValueType>(t);
        rec.proc_params.push_back(std::move(p));
      }
      PHX_ASSIGN_OR_RETURN(rec.proc_body, r.GetString());
      break;
    }
    case WalRecordType::kEpoch:
    case WalRecordType::kReplLsn: {
      PHX_ASSIGN_OR_RETURN(rec.value, r.GetU64());
      break;
    }
    default:
      return Status::IoError("unknown WAL record type " +
                             std::to_string(type_tag));
  }
  if (!r.AtEnd()) {
    return Status::IoError("trailing bytes in WAL record");
  }
  return rec;
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Status WalWriter::Open(const std::string& path, WalSyncMode sync_mode) {
  if (fd_ >= 0) return Status::Internal("WalWriter already open");
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) {
    return Status::IoError("open '" + path + "': " + std::strerror(errno));
  }
  path_ = path;
  sync_mode_ = sync_mode;
  off_t end = ::lseek(fd_, 0, SEEK_END);
  good_offset_.store(end >= 0 ? static_cast<uint64_t>(end) : 0,
                     std::memory_order_relaxed);
  tail_torn_ = false;
  return Status::OK();
}

Status WalWriter::AppendBatch(const std::vector<WalRecord>& records) {
  return AppendBatches({&records});
}

Status WalWriter::AppendBatches(
    const std::vector<const std::vector<WalRecord>*>& batches) {
  if (fd_ < 0) return Status::Internal("WalWriter not open");
  OBS_SPAN("engine.wal.append");
  // Repair first: bytes past good_offset_ belong to a commit whose append
  // failed (and which Database rolled back) — replaying them would resurrect
  // an uncommitted transaction, and leaving them would hide every later
  // commit from recovery (replay stops at the first bad frame).
  PHX_RETURN_IF_ERROR(RepairTail());
  std::vector<uint8_t> buf;
  for (const std::vector<WalRecord>* records : batches) {
    for (const WalRecord& rec : *records) {
      std::vector<uint8_t> payload = rec.Serialize();
      BinaryWriter frame;
      frame.PutU32(static_cast<uint32_t>(payload.size()));
      frame.PutU32(common::Crc32(payload.data(), payload.size()));
      const auto& header = frame.data();
      buf.insert(buf.end(), header.begin(), header.end());
      buf.insert(buf.end(), payload.begin(), payload.end());
    }
  }
  if (sync_mode_ == WalSyncMode::kNone) {
    // Even kNone writes to the file (the point of a WAL); it just makes no
    // durability promise on ordering vs. the checkpoint.
  }
  auto& injector = fault::FaultInjector::Global();
  if (injector.enabled()) {
    auto action = injector.Evaluate("wal.append", buf.size());
    if (action.has_value()) {
      switch (action->mode) {
        case fault::FaultMode::kTorn: {
          // Write only a prefix, then fail the append — a torn commit. The
          // crash handler is signalled so the chaos harness restarts the
          // server over the torn tail and exercises repair + replay.
          size_t torn = static_cast<size_t>(action->torn_bytes);
          size_t off = 0;
          while (off < torn) {
            ssize_t n = ::write(fd_, buf.data() + off, torn - off);
            if (n < 0) {
              if (errno == EINTR) continue;
              break;
            }
            off += static_cast<size_t>(n);
          }
          tail_torn_ = true;
          injector.RequestCrash();
          return action->error;
        }
        case fault::FaultMode::kCorrupt:
          // Flip one byte but write the batch in full: silent media
          // corruption. Replay detects it via the frame CRC and stops.
          if (!buf.empty()) {
            buf[action->corrupt_offset % buf.size()] ^= 0xff;
          }
          break;
        case fault::FaultMode::kDelay:
        case fault::FaultMode::kHang:
          if (!injector.SleepMicros(action->delay_micros)) {
            return Status::Timeout("injected WAL stall exceeded deadline");
          }
          break;
        default:
          return action->error;
      }
    }
  }
  size_t off = 0;
  while (off < buf.size()) {
    ssize_t n = ::write(fd_, buf.data() + off, buf.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      // A partial write may be on disk; mark the tail for repair.
      tail_torn_ = off > 0;
      return Status::IoError("WAL write: " + std::string(std::strerror(errno)));
    }
    off += static_cast<size_t>(n);
  }
  bytes_written_.fetch_add(buf.size(), std::memory_order_relaxed);
  if (obs::Enabled()) {
    static obs::Counter* const wal_bytes =
        obs::Registry::Global().counter("engine.wal.bytes");
    static obs::Counter* const wal_batches =
        obs::Registry::Global().counter("engine.wal.batches");
    wal_bytes->Add(buf.size());
    wal_batches->Add(1);
  }
  if (sync_mode_ == WalSyncMode::kSync) {
    OBS_SPAN("engine.wal.fsync");
    if (injector.enabled()) {
      auto action = injector.Evaluate("wal.fsync", buf.size());
      if (action.has_value()) {
        switch (action->mode) {
          case fault::FaultMode::kDelay:
          case fault::FaultMode::kHang:
            if (!injector.SleepMicros(action->delay_micros)) {
              return Status::Timeout("injected fsync stall exceeded deadline");
            }
            break;
          default:
            // The batch reached the file but durability was not promised;
            // the commit fails and its bytes must not be replayed.
            tail_torn_ = true;
            return action->error;
        }
      }
    }
    if (::fdatasync(fd_) != 0) {
      tail_torn_ = true;
      return Status::IoError("WAL fdatasync: " +
                             std::string(std::strerror(errno)));
    }
  }
  good_offset_.fetch_add(buf.size(), std::memory_order_relaxed);
  if (append_observer_) append_observer_(buf.data(), buf.size());
  return Status::OK();
}

Status WalWriter::RepairTail() {
  if (fd_ < 0) return Status::Internal("WalWriter not open");
  if (!tail_torn_) return Status::OK();
  if (::ftruncate(
          fd_, static_cast<off_t>(good_offset_.load(
                   std::memory_order_relaxed))) != 0) {
    // Keep the torn mark: the next append (or explicit repair) retries.
    return Status::IoError("WAL tail repair: " +
                           std::string(std::strerror(errno)));
  }
  tail_torn_ = false;
  return Status::OK();
}

Status WalWriter::Truncate() {
  if (fd_ < 0) return Status::Internal("WalWriter not open");
  if (::ftruncate(fd_, 0) != 0) {
    return Status::IoError("WAL truncate: " +
                           std::string(std::strerror(errno)));
  }
  bytes_written_.store(0, std::memory_order_relaxed);
  good_offset_.store(0, std::memory_order_relaxed);
  tail_torn_ = false;
  return Status::OK();
}

Status WalWriter::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  return Status::OK();
}

Result<std::vector<WalRecord>> ReadWalFile(const std::string& path) {
  std::vector<WalRecord> out;
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return out;  // no log yet — empty history
    return Status::IoError("open '" + path + "': " + std::strerror(errno));
  }
  std::vector<uint8_t> content;
  uint8_t chunk[1 << 16];
  while (true) {
    ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::IoError("read WAL: " + std::string(std::strerror(errno)));
    }
    if (n == 0) break;
    content.insert(content.end(), chunk, chunk + n);
  }
  ::close(fd);

  size_t pos = 0;
  while (pos + 8 <= content.size()) {
    BinaryReader header(content.data() + pos, 8);
    uint32_t len = header.GetU32().value();
    uint32_t crc = header.GetU32().value();
    if (pos + 8 + len > content.size()) break;  // torn tail — stop
    const uint8_t* payload = content.data() + pos + 8;
    if (common::Crc32(payload, len) != crc) break;  // corrupt tail — stop
    auto rec = WalRecord::Deserialize(payload, len);
    if (!rec.ok()) break;  // undecodable tail — stop
    out.push_back(std::move(rec).value());
    pos += 8 + len;
  }
  return out;
}

}  // namespace phoenix::engine
