#ifndef PHOENIX_ENGINE_SERVER_H_
#define PHOENIX_ENGINE_SERVER_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/status.h"
#include "engine/database.h"
#include "engine/session.h"

namespace phoenix::engine {

/// Connection request fields (the paper's "original connection request and
/// login" that Phoenix saves and replays during recovery).
struct ConnectRequest {
  std::string user;
  std::string password;
  std::string database;  // informational; one database per server here
};

struct ServerOptions {
  DatabaseOptions db;
  /// Whether Connect authenticates (any non-empty user accepted; empty user
  /// rejected) — enough to exercise login replay during Phoenix recovery.
  bool require_user = true;
  /// Per-cursor server-side network output buffer (paper hardware: ~75 KB,
  /// about 512 LINEITEM tuples).
  size_t send_buffer_bytes = 75 * 1024;
};

/// The database server process. Owns the Database (durable state) and all
/// Sessions (volatile state). Crash() models `SHUTDOWN WITH NOWAIT`:
/// sessions, cursors, temp tables, and active transactions evaporate;
/// Restart() runs database recovery. While down, every entry point returns
/// a connection-level error.
///
/// Thread safety: safe for concurrent clients; per-session calls are
/// serialized by the session mutex.
class SimulatedServer {
 public:
  static common::Result<std::unique_ptr<SimulatedServer>> Start(
      const ServerOptions& options);
  ~SimulatedServer();

  SimulatedServer(const SimulatedServer&) = delete;
  SimulatedServer& operator=(const SimulatedServer&) = delete;

  // --- Client entry points -----------------------------------------------

  common::Result<SessionId> Connect(const ConnectRequest& request);
  common::Status Disconnect(SessionId session);
  common::Result<StatementOutcome> Execute(SessionId session,
                                           const std::string& sql);
  /// Execute plus piggybacked first fetch under a single session-lock
  /// acquisition: when the statement opens a cursor and `first_batch` > 0,
  /// up to that many rows are read into `*first` before the lock drops, so
  /// the wire layer can return them on the execute response. A
  /// statement-level fetch failure leaves `*first` empty (the client's own
  /// kFetch will surface it); only the execute outcome decides the result.
  common::Result<StatementOutcome> ExecuteWithFirstBatch(
      SessionId session, const std::string& sql, size_t first_batch,
      FetchOutcome* first);
  common::Result<FetchOutcome> Fetch(SessionId session, CursorId cursor,
                                     size_t max_rows);
  common::Result<uint64_t> AdvanceCursor(SessionId session, CursorId cursor,
                                         uint64_t n);
  common::Status CloseCursor(SessionId session, CursorId cursor);
  /// Cheap liveness check (Phoenix pings over its private connection).
  common::Status Ping() const;

  // --- Failure injection ---------------------------------------------------

  /// Kills the server: volatile state is lost, durable state preserved.
  void Crash();
  /// Brings the server back up, running recovery. Idempotent when up.
  common::Status Restart();
  bool IsUp() const { return up_.load(std::memory_order_acquire); }

  // --- Introspection --------------------------------------------------------

  Database* database() { return db_.get(); }
  size_t SessionCount() const;
  /// Quiesced checkpoint passthrough (used by workload loaders).
  common::Status Checkpoint() { return db_->Checkpoint(); }

 private:
  explicit SimulatedServer(const ServerOptions& options)
      : options_(options) {}

  struct SessionSlot {
    std::unique_ptr<Session> session;
    /// Serializes calls on one session (a real connection is a serial
    /// byte stream). Crash() also takes it before abandoning the session so
    /// in-flight requests drain first.
    std::mutex mu;
  };
  using SessionSlotPtr = std::shared_ptr<SessionSlot>;

  common::Status CheckUp() const;
  common::Result<SessionSlotPtr> FindSession(SessionId session);

  ServerOptions options_;
  std::unique_ptr<Database> db_;
  std::atomic<bool> up_{false};

  mutable std::mutex sessions_mu_;
  std::map<SessionId, SessionSlotPtr> sessions_;
  SessionId next_session_ = 1;
};

}  // namespace phoenix::engine

#endif  // PHOENIX_ENGINE_SERVER_H_
