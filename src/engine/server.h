#ifndef PHOENIX_ENGINE_SERVER_H_
#define PHOENIX_ENGINE_SERVER_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/coordinator.h"
#include "engine/database.h"
#include "engine/session.h"
#include "engine/shard_router.h"
#include "repl/repl.h"

namespace phoenix::engine {

/// Connection request fields (the paper's "original connection request and
/// login" that Phoenix saves and replays during recovery).
struct ConnectRequest {
  std::string user;
  std::string password;
  std::string database;  // informational; one database per server here
  /// Highest cluster epoch the client has seen (0 = none). A value newer
  /// than this server's epoch fences it durably and the connect is rejected
  /// with kStaleEpoch — the split-brain guard after a failover.
  uint64_t known_epoch = 0;
};

struct ServerOptions {
  DatabaseOptions db;
  /// Whether Connect authenticates (any non-empty user accepted; empty user
  /// rejected) — enough to exercise login replay during Phoenix recovery.
  bool require_user = true;
  /// Per-cursor server-side network output buffer (paper hardware: ~75 KB,
  /// about 512 LINEITEM tuples).
  size_t send_buffer_bytes = 75 * 1024;
  /// Start as a warm standby: ordinary client connects are rejected (pings,
  /// replication fetches and promote requests still answer) until the
  /// server is promoted. 1 = standby, 0 = primary, -1 = from
  /// PHOENIX_STANDBY (default primary — replication is strictly opt-in).
  int standby = -1;
  /// Engine shard count (DESIGN.md §20). 1 runs exactly the unsharded code
  /// path (plain Sessions, coordinator dark); N > 1 opens N independent
  /// Databases under data_dir/shard_<i> behind a scatter-gather coordinator.
  /// -1 = from PHOENIX_SHARDS (default 1). Clamped to [1, 64] — the
  /// per-statement shard mask reported to clients is a uint64 bitmap.
  int shards = -1;
};

/// One chunk of the primary's replication byte stream (framed WAL records in
/// monotonic ship-LSN coordinates — LSNs never reset, unlike WAL file
/// offsets, which rewind at checkpoint truncate).
struct ReplChunk {
  uint64_t start_lsn = 0;        // stream offset of bytes[0]
  uint64_t end_lsn = 0;          // primary's stream high-water mark
  bool gap = false;              // requested range no longer retained
  std::vector<uint8_t> bytes;
};

/// Seams through which the replication runtime (src/repl/, a layer above the
/// engine) plugs into the server without the engine linking it.
using ReplFetchHandler = std::function<common::Result<ReplChunk>(
    uint64_t from_lsn, uint64_t applied_lsn, uint64_t max_bytes)>;
using PromoteHandler =
    std::function<common::Result<uint64_t>(uint64_t min_epoch)>;
using AppliedLsnProvider = std::function<uint64_t()>;

/// The database server process. Owns the Database (durable state) and all
/// Sessions (volatile state). Crash() models `SHUTDOWN WITH NOWAIT`:
/// sessions, cursors, temp tables, and active transactions evaporate;
/// Restart() runs database recovery. While down, every entry point returns
/// a connection-level error.
///
/// Thread safety: safe for concurrent clients; per-session calls are
/// serialized by the session mutex.
class SimulatedServer {
 public:
  static common::Result<std::unique_ptr<SimulatedServer>> Start(
      const ServerOptions& options);
  ~SimulatedServer();

  SimulatedServer(const SimulatedServer&) = delete;
  SimulatedServer& operator=(const SimulatedServer&) = delete;

  // --- Client entry points -----------------------------------------------

  common::Result<SessionId> Connect(const ConnectRequest& request);
  common::Status Disconnect(SessionId session);
  common::Result<StatementOutcome> Execute(SessionId session,
                                           const std::string& sql);
  /// Execute plus piggybacked first fetch under a single session-lock
  /// acquisition: when the statement opens a cursor and `first_batch` > 0,
  /// up to that many rows are read into `*first` before the lock drops, so
  /// the wire layer can return them on the execute response. A
  /// statement-level fetch failure leaves `*first` empty (the client's own
  /// kFetch will surface it); only the execute outcome decides the result.
  common::Result<StatementOutcome> ExecuteWithFirstBatch(
      SessionId session, const std::string& sql, size_t first_batch,
      FetchOutcome* first);
  /// Executes a statement pipeline under one session-lock acquisition (one
  /// dispatch for the whole bundle — the wire layer's kExecuteBundle). See
  /// Session::ExecuteBundle for the atomicity contract.
  common::Result<std::vector<BundleOutcome>> ExecuteBundle(
      SessionId session, const std::vector<std::string>& statements);
  common::Result<FetchOutcome> Fetch(SessionId session, CursorId cursor,
                                     size_t max_rows);
  common::Result<uint64_t> AdvanceCursor(SessionId session, CursorId cursor,
                                         uint64_t n);
  common::Status CloseCursor(SessionId session, CursorId cursor);
  /// Cheap liveness check (Phoenix pings over its private connection).
  common::Status Ping() const;

  // --- Replication + failover (DESIGN.md §18) ------------------------------

  repl::Role role() const {
    return static_cast<repl::Role>(role_.load(std::memory_order_acquire));
  }
  void set_role(repl::Role role) {
    role_.store(static_cast<uint8_t>(role), std::memory_order_release);
  }
  /// {epoch, applied_lsn, role} piggybacked on ping/connect responses.
  /// applied_lsn is the shipper's stream high-water on a primary and the
  /// durably applied stream offset on a standby.
  repl::ServerHealth HealthProbe() const;
  /// Records an epoch a client presented (ping/fetch paths; Connect does
  /// this itself). Fences the database if the epoch is newer.
  void NoteClientEpoch(uint64_t known_epoch);
  /// Serves a replication fetch (primary side). `peer_epoch` fences like a
  /// connect; repl.ship faults shape the chunk (torn/corrupt/delay/...).
  common::Result<ReplChunk> ReplFetch(uint64_t from_lsn, uint64_t applied_lsn,
                                      uint64_t max_bytes, uint64_t peer_epoch);
  /// Promotes a standby to primary (replay-to-end, epoch bump, role flip —
  /// the armed PromoteHandler does the work). Idempotent on a primary:
  /// returns the current epoch.
  common::Result<uint64_t> Promote(uint64_t min_epoch);
  void set_repl_fetch_handler(ReplFetchHandler handler) {
    std::lock_guard<std::mutex> lock(repl_mu_);
    repl_fetch_handler_ = std::move(handler);
  }
  void set_promote_handler(PromoteHandler handler) {
    std::lock_guard<std::mutex> lock(repl_mu_);
    promote_handler_ = std::move(handler);
  }
  void set_applied_lsn_provider(AppliedLsnProvider provider) {
    std::lock_guard<std::mutex> lock(repl_mu_);
    applied_lsn_provider_ = std::move(provider);
  }

  // --- Failure injection ---------------------------------------------------

  /// Kills the server: volatile state is lost, durable state preserved.
  void Crash();
  /// Brings the server back up, running recovery. Idempotent when up.
  common::Status Restart();
  bool IsUp() const { return up_.load(std::memory_order_acquire); }
  /// Kills ONE engine shard (no-op target check; shards == 1 degenerates to
  /// Crash()). The server stays up: sessions survive, but every coordinator
  /// session drops its inner session on that shard — transactions with the
  /// shard as participant abort on their next call, sessions that never
  /// touched it observe nothing. Statements routed at the dead shard fail
  /// with kShardUnavailable until RestartShard.
  void CrashShard(int shard);
  /// Recovers one crashed shard in place (Phoenix partition-aware recovery:
  /// only the crashed partition replays). Idempotent when the shard is up.
  common::Status RestartShard(int shard);

  // --- Introspection --------------------------------------------------------

  Database* database() { return db_.get(); }
  int shard_count() const { return static_cast<int>(all_shards_.size()); }
  /// Shard i's engine (shard 0 aliases database()). Used by the partitioned
  /// TPC-C loader and shard tests.
  Database* shard_db(int shard) { return all_shards_[shard]; }
  /// Table-placement registry; nullptr on an unsharded server. Loaders that
  /// bypass the coordinator (TPC-C bulk load) use it to register DDL and to
  /// place rows exactly where routed statements will later look them up.
  ShardRouter* router() { return router_.get(); }
  size_t SessionCount() const;
  /// Quiesced checkpoint passthrough (used by workload loaders). Sharded
  /// servers checkpoint every shard.
  common::Status Checkpoint();
  /// Result-cache invalidation digest for the wire layer. Sharded servers
  /// return an empty digest with stable_ts 0: the client cache is dark at
  /// shards > 1 (outcomes are scrubbed non-cacheable), and an empty digest
  /// validates nothing.
  InvalidationDigest CollectInvalidation(uint64_t since) const;

 private:
  explicit SimulatedServer(const ServerOptions& options)
      : options_(options) {}

  struct SessionSlot {
    std::unique_ptr<ServerSession> session;
    /// Set iff session is a CoordinatorSession (shards > 1) — the typed
    /// handle CrashShard uses to deliver OnShardCrash under slot->mu.
    CoordinatorSession* coord = nullptr;
    /// Serializes calls on one session (a real connection is a serial
    /// byte stream). Crash() also takes it before abandoning the session so
    /// in-flight requests drain first.
    std::mutex mu;
  };
  using SessionSlotPtr = std::shared_ptr<SessionSlot>;

  common::Status CheckUp() const;
  common::Result<SessionSlotPtr> FindSession(SessionId session);

  ServerOptions options_;
  std::unique_ptr<Database> db_;  // shard 0 (the only shard when unsharded)
  std::vector<std::unique_ptr<Database>> extra_shards_;  // shards 1..N-1
  std::vector<Database*> all_shards_;                    // size N; [0] == db_
  std::unique_ptr<ShardRouter> router_;    // shards > 1 only
  std::unique_ptr<DecisionLog> decisions_;  // shards > 1 only
  std::string gtid_prefix_;
  std::atomic<bool> up_{false};
  std::atomic<uint8_t> role_{static_cast<uint8_t>(repl::Role::kPrimary)};
  /// Guards the replication seams (set at wiring time, read per request).
  mutable std::mutex repl_mu_;
  ReplFetchHandler repl_fetch_handler_;
  PromoteHandler promote_handler_;
  AppliedLsnProvider applied_lsn_provider_;

  mutable std::mutex sessions_mu_;
  std::map<SessionId, SessionSlotPtr> sessions_;
  SessionId next_session_ = 1;
};

}  // namespace phoenix::engine

#endif  // PHOENIX_ENGINE_SERVER_H_
