#ifndef PHOENIX_SQL_PARSER_H_
#define PHOENIX_SQL_PARSER_H_

#include <memory>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "sql/ast.h"
#include "sql/lexer.h"

namespace phoenix::sql {

/// Parses a single SQL statement (optionally terminated by ';').
common::Result<StatementPtr> ParseStatement(std::string_view sql);

/// Parses a ';'-separated script into a list of statements. Used for stored
/// procedure bodies and SQL command batches.
common::Result<std::vector<StatementPtr>> ParseScript(std::string_view sql);

/// Recursive-descent parser over the token stream. Exposed as a class so the
/// engine can re-parse procedure bodies and Phoenix can parse rewritten
/// statements without re-tokenizing helpers.
class Parser {
 public:
  /// `sql` must outlive the parser (body text of CREATE PROCEDURE is sliced
  /// from it).
  explicit Parser(std::string_view sql) : sql_(sql) {}

  common::Status Init();  // tokenizes
  common::Result<StatementPtr> ParseSingleStatement();
  common::Result<std::vector<StatementPtr>> ParseStatementList();

 private:
  using Status = common::Status;
  template <typename T>
  using Result = common::Result<T>;

  const Token& Peek(int ahead = 0) const;
  const Token& Advance();
  bool MatchKeyword(std::string_view kw);
  bool MatchSymbol(std::string_view sym);
  Status ExpectKeyword(std::string_view kw);
  Status ExpectSymbol(std::string_view sym);
  Result<std::string> ExpectIdentifier();
  Status ErrorHere(const std::string& message) const;

  Result<StatementPtr> ParseStatementInner();
  Result<std::unique_ptr<SelectStmt>> ParseSelect();
  Result<StatementPtr> ParseInsert();
  Result<StatementPtr> ParseUpdate();
  Result<StatementPtr> ParseDelete();
  Result<StatementPtr> ParseCreate();
  Result<StatementPtr> ParseDrop();
  Result<StatementPtr> ParseExec();

  Result<TableRef> ParseTableRef();
  Result<TableRef> ParsePrimaryTableRef();
  Result<common::ValueType> ParseColumnType();

  Result<ExprPtr> ParseExpr();
  Result<ExprPtr> ParseOr();
  Result<ExprPtr> ParseAnd();
  Result<ExprPtr> ParseNot();
  Result<ExprPtr> ParsePredicate();
  Result<ExprPtr> ParseAdditive();
  Result<ExprPtr> ParseMultiplicative();
  Result<ExprPtr> ParseUnary();
  Result<ExprPtr> ParsePrimary();

  std::string_view sql_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace phoenix::sql

#endif  // PHOENIX_SQL_PARSER_H_
