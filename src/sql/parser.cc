#include "sql/parser.h"

#include "common/strings.h"

namespace phoenix::sql {

using common::Result;
using common::Status;
using common::Value;
using common::ValueType;

Result<StatementPtr> ParseStatement(std::string_view sql) {
  Parser parser(sql);
  PHX_RETURN_IF_ERROR(parser.Init());
  return parser.ParseSingleStatement();
}

Result<std::vector<StatementPtr>> ParseScript(std::string_view sql) {
  Parser parser(sql);
  PHX_RETURN_IF_ERROR(parser.Init());
  return parser.ParseStatementList();
}

Status Parser::Init() {
  PHX_ASSIGN_OR_RETURN(tokens_, Tokenize(sql_));
  pos_ = 0;
  return Status::OK();
}

const Token& Parser::Peek(int ahead) const {
  size_t i = pos_ + static_cast<size_t>(ahead);
  if (i >= tokens_.size()) return tokens_.back();  // kEnd sentinel
  return tokens_[i];
}

const Token& Parser::Advance() {
  const Token& t = Peek();
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return t;
}

bool Parser::MatchKeyword(std::string_view kw) {
  if (Peek().IsKeyword(kw)) {
    Advance();
    return true;
  }
  return false;
}

bool Parser::MatchSymbol(std::string_view sym) {
  if (Peek().IsSymbol(sym)) {
    Advance();
    return true;
  }
  return false;
}

Status Parser::ExpectKeyword(std::string_view kw) {
  if (!MatchKeyword(kw)) {
    return ErrorHere("expected keyword " + std::string(kw));
  }
  return Status::OK();
}

Status Parser::ExpectSymbol(std::string_view sym) {
  if (!MatchSymbol(sym)) {
    return ErrorHere("expected '" + std::string(sym) + "'");
  }
  return Status::OK();
}

Result<std::string> Parser::ExpectIdentifier() {
  if (Peek().type != TokenType::kIdentifier) {
    return ErrorHere("expected identifier");
  }
  return Advance().text;
}

Status Parser::ErrorHere(const std::string& message) const {
  const Token& t = Peek();
  std::string got = (t.type == TokenType::kEnd) ? "<end of input>" : t.text;
  return Status::InvalidArgument(message + ", got '" + got + "' at offset " +
                                 std::to_string(t.offset));
}

Result<StatementPtr> Parser::ParseSingleStatement() {
  PHX_ASSIGN_OR_RETURN(StatementPtr stmt, ParseStatementInner());
  MatchSymbol(";");
  if (Peek().type != TokenType::kEnd) {
    return ErrorHere("unexpected trailing input");
  }
  return stmt;
}

Result<std::vector<StatementPtr>> Parser::ParseStatementList() {
  std::vector<StatementPtr> out;
  while (Peek().type != TokenType::kEnd) {
    if (MatchSymbol(";")) continue;  // allow empty statements
    PHX_ASSIGN_OR_RETURN(StatementPtr stmt, ParseStatementInner());
    out.push_back(std::move(stmt));
    if (Peek().type != TokenType::kEnd) {
      PHX_RETURN_IF_ERROR(ExpectSymbol(";"));
    }
  }
  return out;
}

Result<StatementPtr> Parser::ParseStatementInner() {
  const Token& t = Peek();
  if (t.type != TokenType::kKeyword) {
    return ErrorHere("expected statement keyword");
  }
  if (t.text == "SELECT") {
    PHX_ASSIGN_OR_RETURN(auto sel, ParseSelect());
    return StatementPtr(std::move(sel));
  }
  if (t.text == "INSERT") return ParseInsert();
  if (t.text == "UPDATE") return ParseUpdate();
  if (t.text == "DELETE") return ParseDelete();
  if (t.text == "CREATE") return ParseCreate();
  if (t.text == "DROP") return ParseDrop();
  if (t.text == "EXEC") return ParseExec();
  if (t.text == "BEGIN") {
    Advance();
    MatchKeyword("TRANSACTION");
    return StatementPtr(std::make_unique<BeginStmt>());
  }
  if (t.text == "COMMIT") {
    Advance();
    MatchKeyword("TRANSACTION");
    return StatementPtr(std::make_unique<CommitStmt>());
  }
  if (t.text == "ROLLBACK") {
    Advance();
    MatchKeyword("TRANSACTION");
    return StatementPtr(std::make_unique<RollbackStmt>());
  }
  return ErrorHere("unsupported statement '" + t.text + "'");
}

Result<std::unique_ptr<SelectStmt>> Parser::ParseSelect() {
  PHX_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
  auto stmt = std::make_unique<SelectStmt>();
  if (MatchKeyword("DISTINCT")) stmt->distinct = true;
  if (MatchKeyword("TOP")) {
    if (Peek().type != TokenType::kIntLiteral) {
      return ErrorHere("expected integer after TOP");
    }
    stmt->top_n = Advance().int_value;
  }

  // Select list.
  do {
    SelectItem item;
    if (Peek().IsSymbol("*")) {
      Advance();
      item.expr = nullptr;  // '*'
    } else {
      PHX_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (MatchKeyword("AS")) {
        PHX_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier());
      } else if (Peek().type == TokenType::kIdentifier) {
        item.alias = Advance().text;
      }
    }
    stmt->items.push_back(std::move(item));
  } while (MatchSymbol(","));

  if (MatchKeyword("FROM")) {
    do {
      PHX_ASSIGN_OR_RETURN(TableRef ref, ParseTableRef());
      stmt->from.push_back(std::move(ref));
    } while (MatchSymbol(","));
  }

  if (MatchKeyword("WHERE")) {
    PHX_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
  }
  if (MatchKeyword("GROUP")) {
    PHX_RETURN_IF_ERROR(ExpectKeyword("BY"));
    do {
      PHX_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      stmt->group_by.push_back(std::move(e));
    } while (MatchSymbol(","));
  }
  if (MatchKeyword("HAVING")) {
    PHX_ASSIGN_OR_RETURN(stmt->having, ParseExpr());
  }
  if (MatchKeyword("ORDER")) {
    PHX_RETURN_IF_ERROR(ExpectKeyword("BY"));
    do {
      OrderByItem item;
      PHX_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (MatchKeyword("DESC")) {
        item.ascending = false;
      } else {
        MatchKeyword("ASC");
      }
      stmt->order_by.push_back(std::move(item));
    } while (MatchSymbol(","));
  }
  if (MatchKeyword("LIMIT")) {
    if (Peek().type != TokenType::kIntLiteral) {
      return ErrorHere("expected integer after LIMIT");
    }
    stmt->top_n = Advance().int_value;
  }
  return stmt;
}

Result<TableRef> Parser::ParseTableRef() {
  PHX_ASSIGN_OR_RETURN(TableRef left, ParsePrimaryTableRef());
  while (true) {
    bool is_join = false;
    if (Peek().IsKeyword("JOIN")) {
      is_join = true;
      Advance();
    } else if (Peek().IsKeyword("INNER") && Peek(1).IsKeyword("JOIN")) {
      is_join = true;
      Advance();
      Advance();
    }
    if (!is_join) break;
    PHX_ASSIGN_OR_RETURN(TableRef right, ParsePrimaryTableRef());
    PHX_RETURN_IF_ERROR(ExpectKeyword("ON"));
    PHX_ASSIGN_OR_RETURN(ExprPtr cond, ParseExpr());

    TableRef joined;
    joined.kind = TableRef::Kind::kJoin;
    joined.left = std::make_unique<TableRef>(std::move(left));
    joined.right = std::make_unique<TableRef>(std::move(right));
    joined.join_condition = std::move(cond);
    left = std::move(joined);
  }
  return left;
}

Result<TableRef> Parser::ParsePrimaryTableRef() {
  TableRef ref;
  if (MatchSymbol("(")) {
    ref.kind = TableRef::Kind::kDerived;
    PHX_ASSIGN_OR_RETURN(ref.derived, ParseSelect());
    PHX_RETURN_IF_ERROR(ExpectSymbol(")"));
    MatchKeyword("AS");
    // Derived tables require an alias in standard SQL; we allow omission and
    // synthesize one at plan time.
    if (Peek().type == TokenType::kIdentifier) ref.alias = Advance().text;
    return ref;
  }
  ref.kind = TableRef::Kind::kBaseTable;
  PHX_ASSIGN_OR_RETURN(ref.table_name, ExpectIdentifier());
  if (MatchKeyword("AS")) {
    PHX_ASSIGN_OR_RETURN(ref.alias, ExpectIdentifier());
  } else if (Peek().type == TokenType::kIdentifier) {
    ref.alias = Advance().text;
  }
  return ref;
}

Result<StatementPtr> Parser::ParseInsert() {
  PHX_RETURN_IF_ERROR(ExpectKeyword("INSERT"));
  PHX_RETURN_IF_ERROR(ExpectKeyword("INTO"));
  auto stmt = std::make_unique<InsertStmt>();
  PHX_ASSIGN_OR_RETURN(stmt->table_name, ExpectIdentifier());

  if (Peek().IsSymbol("(")) {
    Advance();
    do {
      PHX_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
      stmt->columns.push_back(std::move(col));
    } while (MatchSymbol(","));
    PHX_RETURN_IF_ERROR(ExpectSymbol(")"));
  }

  if (Peek().IsKeyword("SELECT")) {
    PHX_ASSIGN_OR_RETURN(stmt->select, ParseSelect());
    return StatementPtr(std::move(stmt));
  }

  PHX_RETURN_IF_ERROR(ExpectKeyword("VALUES"));
  do {
    PHX_RETURN_IF_ERROR(ExpectSymbol("("));
    std::vector<ExprPtr> row;
    do {
      PHX_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      row.push_back(std::move(e));
    } while (MatchSymbol(","));
    PHX_RETURN_IF_ERROR(ExpectSymbol(")"));
    stmt->rows.push_back(std::move(row));
  } while (MatchSymbol(","));
  return StatementPtr(std::move(stmt));
}

Result<StatementPtr> Parser::ParseUpdate() {
  PHX_RETURN_IF_ERROR(ExpectKeyword("UPDATE"));
  auto stmt = std::make_unique<UpdateStmt>();
  PHX_ASSIGN_OR_RETURN(stmt->table_name, ExpectIdentifier());
  PHX_RETURN_IF_ERROR(ExpectKeyword("SET"));
  do {
    PHX_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
    PHX_RETURN_IF_ERROR(ExpectSymbol("="));
    PHX_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    stmt->assignments.emplace_back(std::move(col), std::move(e));
  } while (MatchSymbol(","));
  if (MatchKeyword("WHERE")) {
    PHX_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
  }
  return StatementPtr(std::move(stmt));
}

Result<StatementPtr> Parser::ParseDelete() {
  PHX_RETURN_IF_ERROR(ExpectKeyword("DELETE"));
  PHX_RETURN_IF_ERROR(ExpectKeyword("FROM"));
  auto stmt = std::make_unique<DeleteStmt>();
  PHX_ASSIGN_OR_RETURN(stmt->table_name, ExpectIdentifier());
  if (MatchKeyword("WHERE")) {
    PHX_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
  }
  return StatementPtr(std::move(stmt));
}

Result<common::ValueType> Parser::ParseColumnType() {
  const Token& t = Peek();
  ValueType type;
  if (t.IsKeyword("INTEGER")) {
    type = ValueType::kInt;
  } else if (t.IsKeyword("DOUBLE")) {
    type = ValueType::kDouble;
  } else if (t.IsKeyword("VARCHAR")) {
    type = ValueType::kString;
  } else if (t.IsKeyword("DATE")) {
    type = ValueType::kDate;
  } else if (t.IsKeyword("BOOLEAN")) {
    type = ValueType::kBool;
  } else {
    return ErrorHere("expected column type");
  }
  Advance();
  // Optional length, e.g. VARCHAR(40) — parsed and ignored (all strings are
  // variable length in this engine).
  if (MatchSymbol("(")) {
    if (Peek().type != TokenType::kIntLiteral) {
      return ErrorHere("expected length");
    }
    Advance();
    PHX_RETURN_IF_ERROR(ExpectSymbol(")"));
  }
  return type;
}

Result<StatementPtr> Parser::ParseCreate() {
  PHX_RETURN_IF_ERROR(ExpectKeyword("CREATE"));

  if (Peek().IsKeyword("PROCEDURE")) {
    Advance();
    auto stmt = std::make_unique<CreateProcedureStmt>();
    PHX_ASSIGN_OR_RETURN(stmt->name, ExpectIdentifier());
    if (MatchSymbol("(")) {
      if (!Peek().IsSymbol(")")) {
        do {
          if (Peek().type != TokenType::kParam) {
            return ErrorHere("expected @parameter");
          }
          ProcedureParam param;
          param.name = Advance().text;
          PHX_ASSIGN_OR_RETURN(param.type, ParseColumnType());
          stmt->params.push_back(std::move(param));
        } while (MatchSymbol(","));
      }
      PHX_RETURN_IF_ERROR(ExpectSymbol(")"));
    }
    PHX_RETURN_IF_ERROR(ExpectKeyword("AS"));
    // The body is the rest of the input verbatim; it is re-parsed at EXEC
    // time with parameters bound.
    size_t body_start = Peek().offset;
    stmt->body_sql = std::string(sql_.substr(body_start));
    // Validate the body parses now so CREATE fails fast on bad SQL.
    {
      Parser body_parser(stmt->body_sql);
      PHX_RETURN_IF_ERROR(body_parser.Init());
      auto body = body_parser.ParseStatementList();
      if (!body.ok()) {
        return Status::InvalidArgument("procedure body: " +
                                       body.status().message());
      }
    }
    pos_ = tokens_.size() - 1;  // consume everything
    return StatementPtr(std::move(stmt));
  }

  bool temporary = false;
  if (MatchKeyword("TEMP") || MatchKeyword("TEMPORARY")) temporary = true;
  PHX_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
  auto stmt = std::make_unique<CreateTableStmt>();
  stmt->temporary = temporary;
  if (Peek().IsKeyword("IF")) {
    Advance();
    PHX_RETURN_IF_ERROR(ExpectKeyword("NOT"));
    PHX_RETURN_IF_ERROR(ExpectKeyword("EXISTS"));
    stmt->if_not_exists = true;
  }
  PHX_ASSIGN_OR_RETURN(stmt->table_name, ExpectIdentifier());
  PHX_RETURN_IF_ERROR(ExpectSymbol("("));
  do {
    if (Peek().IsKeyword("PRIMARY")) {
      Advance();
      PHX_RETURN_IF_ERROR(ExpectKeyword("KEY"));
      PHX_RETURN_IF_ERROR(ExpectSymbol("("));
      do {
        PHX_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
        stmt->primary_key.push_back(std::move(col));
      } while (MatchSymbol(","));
      PHX_RETURN_IF_ERROR(ExpectSymbol(")"));
      continue;
    }
    common::ColumnDef col;
    PHX_ASSIGN_OR_RETURN(col.name, ExpectIdentifier());
    PHX_ASSIGN_OR_RETURN(col.type, ParseColumnType());
    while (true) {
      if (Peek().IsKeyword("NOT") && Peek(1).IsKeyword("NULL")) {
        Advance();
        Advance();
        col.nullable = false;
      } else if (Peek().IsKeyword("PRIMARY") && Peek(1).IsKeyword("KEY")) {
        Advance();
        Advance();
        stmt->primary_key.push_back(col.name);
        col.nullable = false;
      } else {
        break;
      }
    }
    stmt->schema.AddColumn(std::move(col));
  } while (MatchSymbol(","));
  PHX_RETURN_IF_ERROR(ExpectSymbol(")"));
  // Optional sharding clauses, in either order (coordinator-layer hints).
  while (true) {
    if (Peek().IsKeyword("SHARD")) {
      Advance();
      PHX_RETURN_IF_ERROR(ExpectKeyword("KEY"));
      PHX_RETURN_IF_ERROR(ExpectSymbol("("));
      do {
        PHX_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
        stmt->shard_key.push_back(std::move(col));
      } while (MatchSymbol(","));
      PHX_RETURN_IF_ERROR(ExpectSymbol(")"));
    } else if (MatchKeyword("REPLICATED")) {
      stmt->replicated = true;
    } else {
      break;
    }
  }
  return StatementPtr(std::move(stmt));
}

Result<StatementPtr> Parser::ParseDrop() {
  PHX_RETURN_IF_ERROR(ExpectKeyword("DROP"));
  if (MatchKeyword("PROCEDURE")) {
    auto stmt = std::make_unique<DropProcedureStmt>();
    if (Peek().IsKeyword("IF")) {
      Advance();
      PHX_RETURN_IF_ERROR(ExpectKeyword("EXISTS"));
      stmt->if_exists = true;
    }
    PHX_ASSIGN_OR_RETURN(stmt->name, ExpectIdentifier());
    return StatementPtr(std::move(stmt));
  }
  PHX_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
  auto stmt = std::make_unique<DropTableStmt>();
  if (Peek().IsKeyword("IF")) {
    Advance();
    PHX_RETURN_IF_ERROR(ExpectKeyword("EXISTS"));
    stmt->if_exists = true;
  }
  PHX_ASSIGN_OR_RETURN(stmt->table_name, ExpectIdentifier());
  return StatementPtr(std::move(stmt));
}

Result<StatementPtr> Parser::ParseExec() {
  PHX_RETURN_IF_ERROR(ExpectKeyword("EXEC"));
  auto stmt = std::make_unique<ExecStmt>();
  PHX_ASSIGN_OR_RETURN(stmt->procedure_name, ExpectIdentifier());
  // Arguments: EXEC p a1, a2  or  EXEC p(a1, a2).
  bool parenthesized = MatchSymbol("(");
  if (parenthesized && MatchSymbol(")")) return StatementPtr(std::move(stmt));
  if (!parenthesized &&
      (Peek().type == TokenType::kEnd || Peek().IsSymbol(";"))) {
    return StatementPtr(std::move(stmt));
  }
  do {
    PHX_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
    stmt->arguments.push_back(std::move(arg));
  } while (MatchSymbol(","));
  if (parenthesized) PHX_RETURN_IF_ERROR(ExpectSymbol(")"));
  return StatementPtr(std::move(stmt));
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

Result<ExprPtr> Parser::ParseExpr() { return ParseOr(); }

Result<ExprPtr> Parser::ParseOr() {
  PHX_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
  while (MatchKeyword("OR")) {
    PHX_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
    lhs = MakeBinary(BinaryOp::kOr, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseAnd() {
  PHX_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
  while (MatchKeyword("AND")) {
    PHX_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
    lhs = MakeBinary(BinaryOp::kAnd, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseNot() {
  if (MatchKeyword("NOT")) {
    PHX_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
    return MakeUnary(UnaryOp::kNot, std::move(operand));
  }
  return ParsePredicate();
}

Result<ExprPtr> Parser::ParsePredicate() {
  PHX_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());

  // IS [NOT] NULL.
  if (Peek().IsKeyword("IS")) {
    Advance();
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kIsNull;
    if (MatchKeyword("NOT")) e->negated = true;
    PHX_RETURN_IF_ERROR(ExpectKeyword("NULL"));
    e->children.push_back(std::move(lhs));
    return ExprPtr(std::move(e));
  }

  bool negated = false;
  if (Peek().IsKeyword("NOT") &&
      (Peek(1).IsKeyword("BETWEEN") || Peek(1).IsKeyword("IN") ||
       Peek(1).IsKeyword("LIKE"))) {
    Advance();
    negated = true;
  }

  if (MatchKeyword("BETWEEN")) {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kBetween;
    e->negated = negated;
    e->children.push_back(std::move(lhs));
    PHX_ASSIGN_OR_RETURN(ExprPtr lo, ParseAdditive());
    PHX_RETURN_IF_ERROR(ExpectKeyword("AND"));
    PHX_ASSIGN_OR_RETURN(ExprPtr hi, ParseAdditive());
    e->children.push_back(std::move(lo));
    e->children.push_back(std::move(hi));
    return ExprPtr(std::move(e));
  }

  if (MatchKeyword("IN")) {
    PHX_RETURN_IF_ERROR(ExpectSymbol("("));
    if (Peek().IsKeyword("SELECT")) {
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kInSubquery;
      e->negated = negated;
      e->children.push_back(std::move(lhs));
      PHX_ASSIGN_OR_RETURN(e->subquery, ParseSelect());
      PHX_RETURN_IF_ERROR(ExpectSymbol(")"));
      return ExprPtr(std::move(e));
    }
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kInList;
    e->negated = negated;
    e->children.push_back(std::move(lhs));
    do {
      PHX_ASSIGN_OR_RETURN(ExprPtr item, ParseExpr());
      e->children.push_back(std::move(item));
    } while (MatchSymbol(","));
    PHX_RETURN_IF_ERROR(ExpectSymbol(")"));
    return ExprPtr(std::move(e));
  }

  if (MatchKeyword("LIKE")) {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kLike;
    e->negated = negated;
    e->children.push_back(std::move(lhs));
    PHX_ASSIGN_OR_RETURN(ExprPtr pattern, ParseAdditive());
    e->children.push_back(std::move(pattern));
    return ExprPtr(std::move(e));
  }

  // Comparison operators.
  static constexpr struct {
    std::string_view sym;
    BinaryOp op;
  } kComparisons[] = {
      {"<=", BinaryOp::kLe}, {">=", BinaryOp::kGe}, {"<>", BinaryOp::kNe},
      {"!=", BinaryOp::kNe}, {"=", BinaryOp::kEq},  {"<", BinaryOp::kLt},
      {">", BinaryOp::kGt},
  };
  for (const auto& cmp : kComparisons) {
    if (Peek().IsSymbol(cmp.sym)) {
      Advance();
      PHX_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
      return MakeBinary(cmp.op, std::move(lhs), std::move(rhs));
    }
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseAdditive() {
  PHX_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
  while (true) {
    BinaryOp op;
    if (Peek().IsSymbol("+")) {
      op = BinaryOp::kAdd;
    } else if (Peek().IsSymbol("-")) {
      op = BinaryOp::kSub;
    } else if (Peek().IsSymbol("||")) {
      op = BinaryOp::kConcat;
    } else {
      break;
    }
    Advance();
    PHX_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
    lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseMultiplicative() {
  PHX_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
  while (true) {
    BinaryOp op;
    if (Peek().IsSymbol("*")) {
      op = BinaryOp::kMul;
    } else if (Peek().IsSymbol("/")) {
      op = BinaryOp::kDiv;
    } else if (Peek().IsSymbol("%")) {
      op = BinaryOp::kMod;
    } else {
      break;
    }
    Advance();
    PHX_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
    lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseUnary() {
  if (MatchSymbol("-")) {
    PHX_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
    // Constant-fold negative literals so "-5" is a literal, which the
    // planner's range analysis and Phoenix's classifier rely on.
    if (operand->kind == ExprKind::kLiteral) {
      const Value& v = operand->literal;
      if (v.type() == ValueType::kInt) {
        return MakeLiteral(Value::Int(-v.AsInt()));
      }
      if (v.type() == ValueType::kDouble) {
        return MakeLiteral(Value::Double(-v.AsDouble()));
      }
    }
    return MakeUnary(UnaryOp::kNegate, std::move(operand));
  }
  MatchSymbol("+");
  return ParsePrimary();
}

Result<ExprPtr> Parser::ParsePrimary() {
  const Token& t = Peek();

  switch (t.type) {
    case TokenType::kIntLiteral: {
      Advance();
      return MakeLiteral(Value::Int(t.int_value));
    }
    case TokenType::kFloatLiteral: {
      Advance();
      return MakeLiteral(Value::Double(t.float_value));
    }
    case TokenType::kStringLiteral: {
      std::string s = Advance().text;
      return MakeLiteral(Value::String(std::move(s)));
    }
    case TokenType::kParam: {
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kParam;
      e->param_name = Advance().text;
      return ExprPtr(std::move(e));
    }
    default:
      break;
  }

  if (t.type == TokenType::kKeyword) {
    if (t.text == "NULL") {
      Advance();
      return MakeLiteral(Value::Null());
    }
    if (t.text == "TRUE") {
      Advance();
      return MakeLiteral(Value::Bool(true));
    }
    if (t.text == "FALSE") {
      Advance();
      return MakeLiteral(Value::Bool(false));
    }
    if (t.text == "DATE") {
      Advance();
      if (Peek().type != TokenType::kStringLiteral) {
        return ErrorHere("expected date string after DATE");
      }
      std::string iso = Advance().text;
      PHX_ASSIGN_OR_RETURN(Value v, Value::DateFromString(iso));
      return MakeLiteral(std::move(v));
    }
    if (t.text == "CASE") {
      Advance();
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kCase;
      while (MatchKeyword("WHEN")) {
        PHX_ASSIGN_OR_RETURN(ExprPtr when, ParseExpr());
        PHX_RETURN_IF_ERROR(ExpectKeyword("THEN"));
        PHX_ASSIGN_OR_RETURN(ExprPtr then, ParseExpr());
        e->children.push_back(std::move(when));
        e->children.push_back(std::move(then));
      }
      if (e->children.empty()) {
        return ErrorHere("CASE requires at least one WHEN");
      }
      if (MatchKeyword("ELSE")) {
        PHX_ASSIGN_OR_RETURN(ExprPtr els, ParseExpr());
        e->children.push_back(std::move(els));
        e->has_else = true;
      }
      PHX_RETURN_IF_ERROR(ExpectKeyword("END"));
      return ExprPtr(std::move(e));
    }
    return ErrorHere("unexpected keyword in expression");
  }

  if (t.IsSymbol("(")) {
    Advance();
    if (Peek().IsKeyword("SELECT")) {
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kSubquery;
      PHX_ASSIGN_OR_RETURN(e->subquery, ParseSelect());
      PHX_RETURN_IF_ERROR(ExpectSymbol(")"));
      return ExprPtr(std::move(e));
    }
    PHX_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
    PHX_RETURN_IF_ERROR(ExpectSymbol(")"));
    return inner;
  }

  if (t.type == TokenType::kIdentifier) {
    std::string name = Advance().text;

    // Function call.
    if (Peek().IsSymbol("(")) {
      Advance();
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kFunction;
      e->function_name = common::ToUpper(name);
      if (MatchKeyword("DISTINCT")) e->distinct = true;
      if (Peek().IsSymbol("*")) {
        Advance();
        auto star = std::make_unique<Expr>();
        star->kind = ExprKind::kStar;
        e->children.push_back(std::move(star));
      } else if (!Peek().IsSymbol(")")) {
        do {
          PHX_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
          e->children.push_back(std::move(arg));
        } while (MatchSymbol(","));
      }
      PHX_RETURN_IF_ERROR(ExpectSymbol(")"));
      return ExprPtr(std::move(e));
    }

    // Qualified column: table.column or table.* (star only valid in select
    // list; the planner checks context).
    if (Peek().IsSymbol(".")) {
      Advance();
      if (Peek().IsSymbol("*")) {
        Advance();
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kStar;
        e->table_qualifier = std::move(name);
        return ExprPtr(std::move(e));
      }
      PHX_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
      return MakeColumnRef(std::move(name), std::move(col));
    }
    return MakeColumnRef("", std::move(name));
  }

  return ErrorHere("expected expression");
}

}  // namespace phoenix::sql
