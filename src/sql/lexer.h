#ifndef PHOENIX_SQL_LEXER_H_
#define PHOENIX_SQL_LEXER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace phoenix::sql {

enum class TokenType : uint8_t {
  kEnd,
  kIdentifier,   // foo, "quoted id"
  kKeyword,      // SELECT, FROM, ... (normalized upper-case in text)
  kIntLiteral,   // 123
  kFloatLiteral, // 1.5, .5, 2e3
  kStringLiteral,// 'abc' with '' escapes (text holds unescaped value)
  kParam,        // @name (text holds name without '@')
  kSymbol,       // ( ) , . ; * + - / % = < > <= >= <> != ||
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;    // keyword/symbol canonical text; literal value
  int64_t int_value = 0;
  double float_value = 0.0;
  size_t offset = 0;   // byte offset in input, for error messages

  bool IsKeyword(std::string_view kw) const {
    return type == TokenType::kKeyword && text == kw;
  }
  bool IsSymbol(std::string_view sym) const {
    return type == TokenType::kSymbol && text == sym;
  }
};

/// True if `word` (upper-cased) is a reserved SQL keyword of this dialect.
bool IsReservedKeyword(std::string_view upper_word);

/// Tokenizes a SQL string. Keywords are case-insensitive and normalized to
/// upper case; identifiers preserve their original spelling.
/// A single-pass scanner — this is the "one-pass parse" Phoenix performs on
/// every intercepted request before deciding how to handle it.
common::Result<std::vector<Token>> Tokenize(std::string_view sql);

}  // namespace phoenix::sql

#endif  // PHOENIX_SQL_LEXER_H_
