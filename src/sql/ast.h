#ifndef PHOENIX_SQL_AST_H_
#define PHOENIX_SQL_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "common/schema.h"
#include "common/value.h"

namespace phoenix::sql {

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExprKind : uint8_t {
  kLiteral,
  kColumnRef,
  kStar,        // '*' in COUNT(*) or SELECT *
  kUnary,       // -x, NOT x
  kBinary,      // arithmetic / comparison / logical / string concat
  kFunction,    // aggregates (SUM, COUNT, AVG, MIN, MAX) and scalar functions
  kCase,        // CASE WHEN ... THEN ... [ELSE ...] END
  kBetween,     // x BETWEEN lo AND hi
  kInList,      // x IN (e1, e2, ...)
  kInSubquery,  // x IN (SELECT ...)
  kLike,        // x LIKE 'pat'
  kIsNull,      // x IS [NOT] NULL
  kSubquery,    // scalar subquery (SELECT ...)
  kParam,       // @name — procedure parameter / client-bound parameter
};

enum class UnaryOp : uint8_t { kNegate, kNot };

enum class BinaryOp : uint8_t {
  kAdd, kSub, kMul, kDiv, kMod, kConcat,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
};

const char* BinaryOpName(BinaryOp op);

struct SelectStmt;  // forward: subqueries embed a select

struct Expr {
  ExprKind kind;

  // kLiteral
  common::Value literal;

  // kColumnRef
  std::string table_qualifier;  // empty if unqualified
  std::string column_name;

  // kUnary / kBinary / kFunction / kCase / kBetween / kInList / kLike /
  // kIsNull: operands in children; layout per kind documented below.
  //   kUnary:    children[0]
  //   kBinary:   children[0] op children[1]
  //   kFunction: arguments (possibly empty)
  //   kCase:     pairs (when, then)..., optional trailing else
  //   kBetween:  children[0] BETWEEN children[1] AND children[2]
  //   kInList:   children[0] IN (children[1..])
  //   kLike:     children[0] LIKE children[1]
  //   kIsNull:   children[0]
  //   kInSubquery: children[0] IN subquery
  std::vector<std::unique_ptr<Expr>> children;

  UnaryOp unary_op = UnaryOp::kNegate;
  BinaryOp binary_op = BinaryOp::kAdd;

  // kFunction
  std::string function_name;  // upper-cased
  bool distinct = false;      // COUNT(DISTINCT x)

  // kCase
  bool has_else = false;

  // kInList / kInSubquery / kIsNull / kLike
  bool negated = false;  // NOT IN / IS NOT NULL / NOT LIKE / NOT BETWEEN

  // kSubquery / kInSubquery
  std::unique_ptr<SelectStmt> subquery;

  // kParam
  std::string param_name;

  /// Renders the expression back to parseable SQL (used by Phoenix when it
  /// rewrites requests, and by tests).
  std::string ToSql() const;
};

using ExprPtr = std::unique_ptr<Expr>;

ExprPtr MakeLiteral(common::Value v);
ExprPtr MakeColumnRef(std::string qualifier, std::string column);
ExprPtr MakeBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr MakeUnary(UnaryOp op, ExprPtr operand);
ExprPtr MakeFunction(std::string name, std::vector<ExprPtr> args);

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StatementKind : uint8_t {
  kSelect,
  kInsert,
  kUpdate,
  kDelete,
  kCreateTable,
  kDropTable,
  kCreateProcedure,
  kDropProcedure,
  kExec,
  kBegin,
  kCommit,
  kRollback,
};

struct Statement {
  virtual ~Statement() = default;
  virtual StatementKind kind() const = 0;
  /// Renders back to parseable SQL.
  virtual std::string ToSql() const = 0;
};

using StatementPtr = std::unique_ptr<Statement>;

/// FROM-clause item: base table, derived table, or (INNER) JOIN tree.
struct TableRef {
  enum class Kind : uint8_t { kBaseTable, kDerived, kJoin };
  Kind kind = Kind::kBaseTable;

  // kBaseTable
  std::string table_name;

  // all kinds
  std::string alias;  // empty if none

  // kDerived
  std::unique_ptr<SelectStmt> derived;

  // kJoin: left JOIN right ON condition
  std::unique_ptr<TableRef> left;
  std::unique_ptr<TableRef> right;
  ExprPtr join_condition;

  std::string ToSql() const;
};

/// One item of a SELECT list: expression with optional alias, or '*'.
struct SelectItem {
  ExprPtr expr;         // null means '*'
  std::string alias;    // empty if none
};

struct OrderByItem {
  ExprPtr expr;
  bool ascending = true;
};

struct SelectStmt : Statement {
  bool distinct = false;
  int64_t top_n = -1;  // SELECT TOP n; -1 = unlimited
  std::vector<SelectItem> items;
  std::vector<TableRef> from;       // comma-separated refs (implicit cross)
  ExprPtr where;                    // may be null
  std::vector<ExprPtr> group_by;    // empty if none
  ExprPtr having;                   // may be null
  std::vector<OrderByItem> order_by;

  StatementKind kind() const override { return StatementKind::kSelect; }
  std::string ToSql() const override;
};

struct InsertStmt : Statement {
  std::string table_name;
  std::vector<std::string> columns;          // empty = all, in table order
  std::vector<std::vector<ExprPtr>> rows;    // VALUES form
  std::unique_ptr<SelectStmt> select;        // INSERT INTO t SELECT ... form

  StatementKind kind() const override { return StatementKind::kInsert; }
  std::string ToSql() const override;
};

struct UpdateStmt : Statement {
  std::string table_name;
  std::vector<std::pair<std::string, ExprPtr>> assignments;
  ExprPtr where;  // may be null

  StatementKind kind() const override { return StatementKind::kUpdate; }
  std::string ToSql() const override;
};

struct DeleteStmt : Statement {
  std::string table_name;
  ExprPtr where;  // may be null

  StatementKind kind() const override { return StatementKind::kDelete; }
  std::string ToSql() const override;
};

struct CreateTableStmt : Statement {
  std::string table_name;
  bool temporary = false;
  bool if_not_exists = false;
  common::Schema schema;
  std::vector<std::string> primary_key;  // column names; empty = none
  /// Sharding declarations (coordinator-layer hints; the per-shard engine
  /// ignores both). SHARD KEY (cols) names the hash-partitioning columns;
  /// REPLICATED pins a full copy on every shard (reads local, writes
  /// broadcast). Empty shard_key + !replicated = default (PK, else pinned).
  std::vector<std::string> shard_key;
  bool replicated = false;

  StatementKind kind() const override { return StatementKind::kCreateTable; }
  std::string ToSql() const override;
};

struct DropTableStmt : Statement {
  std::string table_name;
  bool if_exists = false;

  StatementKind kind() const override { return StatementKind::kDropTable; }
  std::string ToSql() const override;
};

struct ProcedureParam {
  std::string name;  // without '@'
  common::ValueType type = common::ValueType::kString;
};

struct CreateProcedureStmt : Statement {
  std::string name;
  bool or_replace = false;
  std::vector<ProcedureParam> params;
  /// Body statements are kept as SQL text and re-parsed at EXEC time with
  /// parameters bound — this matches how Phoenix ships `CREATE PROCEDURE P AS
  /// INSERT <original statement> INTO T` to the server as plain text.
  std::string body_sql;

  StatementKind kind() const override {
    return StatementKind::kCreateProcedure;
  }
  std::string ToSql() const override;
};

struct DropProcedureStmt : Statement {
  std::string name;
  bool if_exists = false;

  StatementKind kind() const override {
    return StatementKind::kDropProcedure;
  }
  std::string ToSql() const override;
};

struct ExecStmt : Statement {
  std::string procedure_name;
  std::vector<ExprPtr> arguments;

  StatementKind kind() const override { return StatementKind::kExec; }
  std::string ToSql() const override;
};

struct BeginStmt : Statement {
  StatementKind kind() const override { return StatementKind::kBegin; }
  std::string ToSql() const override { return "BEGIN TRANSACTION"; }
};

struct CommitStmt : Statement {
  StatementKind kind() const override { return StatementKind::kCommit; }
  std::string ToSql() const override { return "COMMIT"; }
};

struct RollbackStmt : Statement {
  StatementKind kind() const override { return StatementKind::kRollback; }
  std::string ToSql() const override { return "ROLLBACK"; }
};

}  // namespace phoenix::sql

#endif  // PHOENIX_SQL_AST_H_
