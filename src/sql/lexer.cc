#include "sql/lexer.h"

#include <array>
#include <cstdlib>

#include "common/strings.h"

namespace phoenix::sql {

using common::Result;
using common::Status;

namespace {

constexpr std::string_view kKeywords[] = {
    "ALL",      "AND",      "AS",        "ASC",      "BEGIN",   "BETWEEN",
    "BY",       "CASE",     "COMMIT",    "CREATE",   "CROSS",   "DATE",
    "DELETE",   "DESC",     "DISTINCT",  "DOUBLE",   "DROP",    "ELSE",
    "END",      "EXEC",     "EXISTS",    "FALSE",    "FROM",    "GROUP",
    "HAVING",   "IF",       "IN",        "INNER",    "INSERT",  "INTEGER",
    "INTO",     "IS",       "JOIN",      "KEY",      "LIKE",    "LIMIT",
    "NOT",      "NULL",     "ON",        "OR",       "ORDER",   "PRIMARY",
    "PROCEDURE","ROLLBACK", "SELECT",    "SET",      "TABLE",   "TEMP",
    "TEMPORARY","THEN",     "TOP",       "TRANSACTION", "TRUE", "UNIQUE",
    "UPDATE",   "VALUES",   "VARCHAR",   "WHEN",     "WHERE",   "BOOLEAN",
    "SHARD",    "REPLICATED",
};

bool IsIdentStart(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}

bool IsIdentChar(char c) {
  return IsIdentStart(c) || (c >= '0' && c <= '9');
}

bool IsDigit(char c) { return c >= '0' && c <= '9'; }

}  // namespace

bool IsReservedKeyword(std::string_view upper_word) {
  for (std::string_view kw : kKeywords) {
    if (kw == upper_word) return true;
  }
  return false;
}

Result<std::vector<Token>> Tokenize(std::string_view sql) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    char c = sql[i];
    // Whitespace.
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
      ++i;
      continue;
    }
    // Comments: -- to end of line, /* ... */.
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && sql[i + 1] == '*') {
      size_t close = sql.find("*/", i + 2);
      if (close == std::string_view::npos) {
        return Status::InvalidArgument("unterminated block comment");
      }
      i = close + 2;
      continue;
    }

    Token tok;
    tok.offset = i;

    // Identifier / keyword.
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < n && IsIdentChar(sql[i])) ++i;
      std::string word(sql.substr(start, i - start));
      std::string upper = common::ToUpper(word);
      if (IsReservedKeyword(upper)) {
        tok.type = TokenType::kKeyword;
        tok.text = std::move(upper);
      } else {
        tok.type = TokenType::kIdentifier;
        tok.text = std::move(word);
      }
      out.push_back(std::move(tok));
      continue;
    }

    // Quoted identifier: "name" or [name] (SQL Server style).
    if (c == '"' || c == '[') {
      char close = (c == '"') ? '"' : ']';
      size_t end = sql.find(close, i + 1);
      if (end == std::string_view::npos) {
        return Status::InvalidArgument("unterminated quoted identifier");
      }
      tok.type = TokenType::kIdentifier;
      tok.text = std::string(sql.substr(i + 1, end - i - 1));
      out.push_back(std::move(tok));
      i = end + 1;
      continue;
    }

    // Number.
    if (IsDigit(c) || (c == '.' && i + 1 < n && IsDigit(sql[i + 1]))) {
      size_t start = i;
      bool is_float = false;
      while (i < n && IsDigit(sql[i])) ++i;
      if (i < n && sql[i] == '.') {
        is_float = true;
        ++i;
        while (i < n && IsDigit(sql[i])) ++i;
      }
      if (i < n && (sql[i] == 'e' || sql[i] == 'E')) {
        size_t mark = i;
        ++i;
        if (i < n && (sql[i] == '+' || sql[i] == '-')) ++i;
        if (i < n && IsDigit(sql[i])) {
          is_float = true;
          while (i < n && IsDigit(sql[i])) ++i;
        } else {
          i = mark;  // 'e' starts an identifier, not an exponent
        }
      }
      std::string text(sql.substr(start, i - start));
      if (is_float) {
        tok.type = TokenType::kFloatLiteral;
        tok.float_value = std::strtod(text.c_str(), nullptr);
      } else {
        tok.type = TokenType::kIntLiteral;
        tok.int_value = std::strtoll(text.c_str(), nullptr, 10);
      }
      tok.text = std::move(text);
      out.push_back(std::move(tok));
      continue;
    }

    // String literal with '' escape.
    if (c == '\'') {
      std::string value;
      ++i;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {
            value.push_back('\'');
            i += 2;
          } else {
            ++i;
            closed = true;
            break;
          }
        } else {
          value.push_back(sql[i]);
          ++i;
        }
      }
      if (!closed) {
        return Status::InvalidArgument("unterminated string literal");
      }
      tok.type = TokenType::kStringLiteral;
      tok.text = std::move(value);
      out.push_back(std::move(tok));
      continue;
    }

    // Parameter: @name.
    if (c == '@') {
      size_t start = ++i;
      while (i < n && IsIdentChar(sql[i])) ++i;
      if (i == start) {
        return Status::InvalidArgument("'@' not followed by parameter name");
      }
      tok.type = TokenType::kParam;
      tok.text = std::string(sql.substr(start, i - start));
      out.push_back(std::move(tok));
      continue;
    }

    // Multi-char symbols.
    auto two = (i + 1 < n) ? sql.substr(i, 2) : std::string_view();
    if (two == "<=" || two == ">=" || two == "<>" || two == "!=" ||
        two == "||") {
      tok.type = TokenType::kSymbol;
      tok.text = std::string(two);
      out.push_back(std::move(tok));
      i += 2;
      continue;
    }

    // Single-char symbols.
    static constexpr std::string_view kSingles = "(),.;*+-/%=<>";
    if (kSingles.find(c) != std::string_view::npos) {
      tok.type = TokenType::kSymbol;
      tok.text = std::string(1, c);
      out.push_back(std::move(tok));
      ++i;
      continue;
    }

    return Status::InvalidArgument("unexpected character '" +
                                   std::string(1, c) + "' at offset " +
                                   std::to_string(i));
  }

  Token end;
  end.type = TokenType::kEnd;
  end.offset = n;
  out.push_back(std::move(end));
  return out;
}

}  // namespace phoenix::sql
