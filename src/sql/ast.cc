#include "sql/ast.h"

namespace phoenix::sql {

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMod: return "%";
    case BinaryOp::kConcat: return "||";
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNe: return "<>";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAnd: return "AND";
    case BinaryOp::kOr: return "OR";
  }
  return "?";
}

ExprPtr MakeLiteral(common::Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr MakeColumnRef(std::string qualifier, std::string column) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->table_qualifier = std::move(qualifier);
  e->column_name = std::move(column);
  return e;
}

ExprPtr MakeBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->binary_op = op;
  e->children.push_back(std::move(lhs));
  e->children.push_back(std::move(rhs));
  return e;
}

ExprPtr MakeUnary(UnaryOp op, ExprPtr operand) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kUnary;
  e->unary_op = op;
  e->children.push_back(std::move(operand));
  return e;
}

ExprPtr MakeFunction(std::string name, std::vector<ExprPtr> args) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kFunction;
  e->function_name = std::move(name);
  e->children = std::move(args);
  return e;
}

std::string Expr::ToSql() const {
  switch (kind) {
    case ExprKind::kLiteral:
      return literal.ToSqlLiteral();
    case ExprKind::kColumnRef:
      return table_qualifier.empty() ? column_name
                                     : table_qualifier + "." + column_name;
    case ExprKind::kStar:
      return "*";
    case ExprKind::kUnary:
      return (unary_op == UnaryOp::kNegate ? "-(" : "NOT (") +
             children[0]->ToSql() + ")";
    case ExprKind::kBinary:
      return "(" + children[0]->ToSql() + " " + BinaryOpName(binary_op) +
             " " + children[1]->ToSql() + ")";
    case ExprKind::kFunction: {
      std::string out = function_name + "(";
      if (distinct) out += "DISTINCT ";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += ", ";
        out += children[i]->ToSql();
      }
      out += ")";
      return out;
    }
    case ExprKind::kCase: {
      std::string out = "CASE";
      size_t pairs = (children.size() - (has_else ? 1 : 0)) / 2;
      for (size_t i = 0; i < pairs; ++i) {
        out += " WHEN " + children[2 * i]->ToSql() + " THEN " +
               children[2 * i + 1]->ToSql();
      }
      if (has_else) out += " ELSE " + children.back()->ToSql();
      out += " END";
      return out;
    }
    case ExprKind::kBetween:
      return "(" + children[0]->ToSql() + (negated ? " NOT" : "") +
             " BETWEEN " + children[1]->ToSql() + " AND " +
             children[2]->ToSql() + ")";
    case ExprKind::kInList: {
      std::string out = "(" + children[0]->ToSql() +
                        (negated ? " NOT IN (" : " IN (");
      for (size_t i = 1; i < children.size(); ++i) {
        if (i > 1) out += ", ";
        out += children[i]->ToSql();
      }
      out += "))";
      return out;
    }
    case ExprKind::kInSubquery:
      return "(" + children[0]->ToSql() + (negated ? " NOT IN (" : " IN (") +
             subquery->ToSql() + "))";
    case ExprKind::kLike:
      return "(" + children[0]->ToSql() + (negated ? " NOT LIKE " : " LIKE ") +
             children[1]->ToSql() + ")";
    case ExprKind::kIsNull:
      return "(" + children[0]->ToSql() +
             (negated ? " IS NOT NULL)" : " IS NULL)");
    case ExprKind::kSubquery:
      return "(" + subquery->ToSql() + ")";
    case ExprKind::kParam:
      return "@" + param_name;
  }
  return "?";
}

std::string TableRef::ToSql() const {
  std::string out;
  switch (kind) {
    case Kind::kBaseTable:
      out = table_name;
      break;
    case Kind::kDerived:
      out = "(" + derived->ToSql() + ")";
      break;
    case Kind::kJoin:
      out = left->ToSql() + " JOIN " + right->ToSql() + " ON " +
            join_condition->ToSql();
      break;
  }
  if (!alias.empty()) out += " " + alias;
  return out;
}

std::string SelectStmt::ToSql() const {
  std::string out = "SELECT ";
  if (distinct) out += "DISTINCT ";
  if (top_n >= 0) out += "TOP " + std::to_string(top_n) + " ";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ", ";
    out += items[i].expr ? items[i].expr->ToSql() : "*";
    if (!items[i].alias.empty()) out += " AS " + items[i].alias;
  }
  if (!from.empty()) {
    out += " FROM ";
    for (size_t i = 0; i < from.size(); ++i) {
      if (i > 0) out += ", ";
      out += from[i].ToSql();
    }
  }
  if (where) out += " WHERE " + where->ToSql();
  if (!group_by.empty()) {
    out += " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += group_by[i]->ToSql();
    }
  }
  if (having) out += " HAVING " + having->ToSql();
  if (!order_by.empty()) {
    out += " ORDER BY ";
    for (size_t i = 0; i < order_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += order_by[i].expr->ToSql();
      out += order_by[i].ascending ? " ASC" : " DESC";
    }
  }
  return out;
}

std::string InsertStmt::ToSql() const {
  std::string out = "INSERT INTO " + table_name;
  if (!columns.empty()) {
    out += " (";
    for (size_t i = 0; i < columns.size(); ++i) {
      if (i > 0) out += ", ";
      out += columns[i];
    }
    out += ")";
  }
  if (select) {
    out += " " + select->ToSql();
  } else {
    out += " VALUES ";
    for (size_t r = 0; r < rows.size(); ++r) {
      if (r > 0) out += ", ";
      out += "(";
      for (size_t i = 0; i < rows[r].size(); ++i) {
        if (i > 0) out += ", ";
        out += rows[r][i]->ToSql();
      }
      out += ")";
    }
  }
  return out;
}

std::string UpdateStmt::ToSql() const {
  std::string out = "UPDATE " + table_name + " SET ";
  for (size_t i = 0; i < assignments.size(); ++i) {
    if (i > 0) out += ", ";
    out += assignments[i].first + " = " + assignments[i].second->ToSql();
  }
  if (where) out += " WHERE " + where->ToSql();
  return out;
}

std::string DeleteStmt::ToSql() const {
  std::string out = "DELETE FROM " + table_name;
  if (where) out += " WHERE " + where->ToSql();
  return out;
}

std::string CreateTableStmt::ToSql() const {
  std::string out = "CREATE ";
  if (temporary) out += "TEMP ";
  out += "TABLE ";
  if (if_not_exists) out += "IF NOT EXISTS ";
  out += table_name + " (";
  for (size_t i = 0; i < schema.num_columns(); ++i) {
    if (i > 0) out += ", ";
    const auto& col = schema.column(i);
    out += col.name;
    out += " ";
    out += common::ValueTypeName(col.type);
    if (!col.nullable) out += " NOT NULL";
  }
  if (!primary_key.empty()) {
    out += ", PRIMARY KEY (";
    for (size_t i = 0; i < primary_key.size(); ++i) {
      if (i > 0) out += ", ";
      out += primary_key[i];
    }
    out += ")";
  }
  out += ")";
  if (!shard_key.empty()) {
    out += " SHARD KEY (";
    for (size_t i = 0; i < shard_key.size(); ++i) {
      if (i > 0) out += ", ";
      out += shard_key[i];
    }
    out += ")";
  }
  if (replicated) out += " REPLICATED";
  return out;
}

std::string DropTableStmt::ToSql() const {
  return std::string("DROP TABLE ") + (if_exists ? "IF EXISTS " : "") +
         table_name;
}

std::string CreateProcedureStmt::ToSql() const {
  std::string out = "CREATE PROCEDURE " + name;
  if (!params.empty()) {
    out += " (";
    for (size_t i = 0; i < params.size(); ++i) {
      if (i > 0) out += ", ";
      out += "@" + params[i].name + " " +
             common::ValueTypeName(params[i].type);
    }
    out += ")";
  }
  out += " AS " + body_sql;
  return out;
}

std::string DropProcedureStmt::ToSql() const {
  return std::string("DROP PROCEDURE ") + (if_exists ? "IF EXISTS " : "") +
         name;
}

std::string ExecStmt::ToSql() const {
  std::string out = "EXEC " + procedure_name;
  for (size_t i = 0; i < arguments.size(); ++i) {
    out += (i == 0) ? " " : ", ";
    out += arguments[i]->ToSql();
  }
  return out;
}

}  // namespace phoenix::sql
