#ifndef PHOENIX_TPC_TPCH_H_
#define PHOENIX_TPC_TPCH_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "engine/server.h"

namespace phoenix::tpc {

/// TPC-H-style dataset generator (dbgen stand-in). The paper ran SF 1.0
/// (ORDERS 1.5M, LINEITEM 6M rows, ~1 GB); this reproduction defaults to a
/// laptop-scale fraction with identical schema, value domains and query
/// selectivity structure.
struct TpchConfig {
  double scale_factor = 0.01;
  uint64_t seed = 20010402;  // ICDE 2001 vintage
};

class TpchGenerator {
 public:
  explicit TpchGenerator(TpchConfig config) : config_(config) {}

  /// CREATE TABLE statements for the 8 tables (REGION, NATION, SUPPLIER,
  /// PART, PARTSUPP, CUSTOMER, ORDERS, LINEITEM) with their primary keys.
  static std::vector<std::string> SchemaDdl();

  /// Generates and bulk-loads all tables directly into the engine (setup is
  /// not part of any measurement), then checkpoints so benchmark recoveries
  /// replay a short WAL.
  common::Status Load(engine::SimulatedServer* server);

  // --- Refresh functions (paper: each decomposed into two transactions,
  //     each handling one half of the key range) ---------------------------

  /// RF1: insert `orders_per_rf` new orders (SF*1500 at full scale) plus
  /// their lineitems, as two transactions of two INSERT statements each.
  /// Returns the SQL for both transactions.
  std::vector<std::vector<std::string>> Rf1Transactions();

  /// RF2: delete the oldest previously-inserted refresh orders — two
  /// transactions of two DELETE statements each.
  std::vector<std::vector<std::string>> Rf2Transactions();

  // --- Cardinalities -------------------------------------------------------

  /// Never below 4: each part needs four distinct suppliers (PK).
  int64_t SupplierCount() const {
    int64_t n = ScaleCount(10'000);
    return n < 4 ? 4 : n;
  }
  int64_t PartCount() const { return ScaleCount(200'000); }
  int64_t CustomerCount() const { return ScaleCount(150'000); }
  int64_t OrderCount() const { return ScaleCount(1'500'000); }
  int64_t RfOrderCount() const { return ScaleCount(1'500); }

  const TpchConfig& config() const { return config_; }

 private:
  int64_t ScaleCount(int64_t base) const {
    int64_t n = static_cast<int64_t>(static_cast<double>(base) *
                                     config_.scale_factor);
    return n < 1 ? 1 : n;
  }

  TpchConfig config_;
  common::Rng rng_{1};
  /// Key ranges inserted by RF1 and not yet deleted by RF2.
  std::vector<std::pair<int64_t, int64_t>> pending_rf_ranges_;
  int64_t next_rf_orderkey_ = 0;
  int64_t base_delete_cursor_ = 1;
};

/// The 22 TPC-H query templates, adapted to this engine's SQL subset
/// (correlated subqueries and outer joins rewritten with derived tables;
/// every adaptation is documented next to its definition). `q11_fraction`
/// is the Fraction parameter of paper Figure 5 — the knob that varies Q11's
/// result-set size in the recovery and overhead experiments.
std::string TpchQuery(int number, double q11_fraction = 0.0001);

/// Number of rows LINEITEM has per unit scale factor (used by benches to
/// size TOP-N sweeps).
constexpr int64_t kLineitemPerScale = 6'000'000;

}  // namespace phoenix::tpc

#endif  // PHOENIX_TPC_TPCH_H_
