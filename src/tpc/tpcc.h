#ifndef PHOENIX_TPC_TPCC_H_
#define PHOENIX_TPC_TPCC_H_

#include <array>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "engine/server.h"
#include "odbc/api.h"

namespace phoenix::tpc {

/// TPC-C-style dataset. The paper used 5 warehouses (~500 MB); default here
/// is 2 warehouses with reduced per-district cardinalities (same schema and
/// transaction profiles, scaled rows).
struct TpccConfig {
  int warehouses = 2;
  int districts_per_warehouse = 10;
  int customers_per_district = 300;   // spec: 3000
  int items = 1000;                   // spec: 100000
  int initial_orders_per_district = 300;
  uint64_t seed = 19920701;
};

class TpccGenerator {
 public:
  explicit TpccGenerator(TpccConfig config) : config_(config) {}

  /// CREATE TABLE statements for the nine tables with their primary keys.
  static std::vector<std::string> SchemaDdl();

  /// Generates and bulk-loads all nine tables directly into the engine,
  /// then checkpoints.
  common::Status Load(engine::SimulatedServer* server);

  const TpccConfig& config() const { return config_; }

 private:
  TpccConfig config_;
  common::Rng rng_{1};
};

enum class TpccTxnType : uint8_t {
  kNewOrder = 0,
  kPayment = 1,
  kOrderStatus = 2,
  kDelivery = 3,
  kStockLevel = 4,
};

const char* TpccTxnTypeName(TpccTxnType type);

/// Per-client counters for the TPM-C computation.
struct TpccClientStats {
  std::array<uint64_t, 5> committed{};
  std::array<uint64_t, 5> aborted{};  // lock-timeout / deadlock retries

  uint64_t TotalCommitted() const {
    uint64_t total = 0;
    for (uint64_t c : committed) total += c;
    return total;
  }
};

/// One emulated terminal: runs the five transaction profiles against an
/// odbc::Connection (native, Phoenix, or Phoenix+cache — the driver choice
/// is invisible here, which is the paper's transparency claim). Zero think
/// time. Aborted transactions (a normal event) are retried.
class TpccClient {
 public:
  /// `pipeline` opts into statement-pipelined transaction bodies: each body
  /// flushes as one or two wire bundles instead of a round trip per
  /// statement. The client probes the driver once — a driver without bundle
  /// support (or with PHOENIX_PIPELINE=0) falls back to the classic
  /// per-statement bodies, reproducing their trip counts exactly.
  TpccClient(odbc::Connection* conn, const TpccConfig& config, uint64_t seed,
             bool pipeline = false);

  /// Picks a transaction per the standard mix (45/43/4/4/4) and runs it to
  /// commit (retrying aborts up to `max_attempts`).
  common::Status RunOne();

  /// Runs a specific profile once (no retry) — returns kAborted on
  /// transaction failure.
  common::Status RunTransaction(TpccTxnType type);

  const TpccClientStats& stats() const { return stats_; }

  /// True when pipelined bodies are in use (pipeline requested AND the
  /// driver's bundle probe succeeded).
  bool pipelined() const { return pipeline_; }

 private:
  common::Status NewOrder();
  common::Status Payment();
  common::Status OrderStatus();
  common::Status Delivery();
  common::Status StockLevel();

  /// Pipelined variants: same SQL effects, batched into wire bundles.
  /// Delivery keeps the classic body (its per-district loop is data
  /// dependent and it is 4% of the mix).
  common::Status NewOrderPipelined();
  common::Status PaymentPipelined();
  common::Status OrderStatusPipelined();
  common::Status StockLevelPipelined();

  /// Executes one statement, returning its cursor contents (drained).
  common::Result<std::vector<common::Row>> Query(const std::string& sql);
  common::Status Exec(const std::string& sql);

  /// Flushes `stmts` as one bundle round trip.
  common::Result<std::vector<odbc::BundleStatementResult>> RunBundle(
      const std::vector<std::string>& stmts);

  odbc::Connection* conn_;
  odbc::StatementPtr stmt_;
  TpccConfig config_;
  common::Rng rng_;
  TpccClientStats stats_;
  bool pipeline_ = false;
};

}  // namespace phoenix::tpc

#endif  // PHOENIX_TPC_TPCC_H_
