#include "tpc/tpcc.h"

#include <cstdio>
#include <algorithm>
#include <thread>

#include "engine/executor.h"
#include "sql/parser.h"

namespace phoenix::tpc {

using common::Result;
using common::Row;
using common::Status;
using common::Value;

const char* TpccTxnTypeName(TpccTxnType type) {
  switch (type) {
    case TpccTxnType::kNewOrder: return "NewOrder";
    case TpccTxnType::kPayment: return "Payment";
    case TpccTxnType::kOrderStatus: return "OrderStatus";
    case TpccTxnType::kDelivery: return "Delivery";
    case TpccTxnType::kStockLevel: return "StockLevel";
  }
  return "?";
}

std::vector<std::string> TpccGenerator::SchemaDdl() {
  // Every warehouse-scoped table declares its warehouse column as the SHARD
  // KEY, so under PHOENIX_SHARDS > 1 all five transaction bodies route
  // single-shard (DESIGN.md §20); item is read-only after load and
  // REPLICATED so New-Order's item lookups stay local. On an unsharded
  // server both clauses are inert parser hints.
  return {
      "CREATE TABLE warehouse (w_id INTEGER PRIMARY KEY, w_name VARCHAR(10), "
      "w_street VARCHAR(20), w_city VARCHAR(20), w_state VARCHAR(2), "
      "w_zip VARCHAR(9), w_tax DOUBLE, w_ytd DOUBLE) SHARD KEY (w_id)",

      "CREATE TABLE district (d_w_id INTEGER, d_id INTEGER, "
      "d_name VARCHAR(10), d_street VARCHAR(20), d_city VARCHAR(20), "
      "d_state VARCHAR(2), d_zip VARCHAR(9), d_tax DOUBLE, d_ytd DOUBLE, "
      "d_next_o_id INTEGER, PRIMARY KEY (d_w_id, d_id)) SHARD KEY (d_w_id)",

      "CREATE TABLE customer (c_w_id INTEGER, c_d_id INTEGER, "
      "c_id INTEGER, c_first VARCHAR(16), c_middle VARCHAR(2), "
      "c_last VARCHAR(16), c_street VARCHAR(20), c_city VARCHAR(20), "
      "c_state VARCHAR(2), c_zip VARCHAR(9), c_phone VARCHAR(16), "
      "c_since DATE, c_credit VARCHAR(2), c_credit_lim DOUBLE, "
      "c_discount DOUBLE, c_balance DOUBLE, c_ytd_payment DOUBLE, "
      "c_payment_cnt INTEGER, c_delivery_cnt INTEGER, c_data VARCHAR(250), "
      "PRIMARY KEY (c_w_id, c_d_id, c_id)) SHARD KEY (c_w_id)",

      "CREATE TABLE history (h_id INTEGER PRIMARY KEY, h_c_id INTEGER, "
      "h_c_d_id INTEGER, h_c_w_id INTEGER, h_d_id INTEGER, h_w_id INTEGER, "
      "h_date DATE, h_amount DOUBLE, h_data VARCHAR(24)) SHARD KEY (h_w_id)",

      "CREATE TABLE new_order (no_o_id INTEGER, no_d_id INTEGER, "
      "no_w_id INTEGER, PRIMARY KEY (no_w_id, no_d_id, no_o_id)) "
      "SHARD KEY (no_w_id)",

      "CREATE TABLE orders (o_id INTEGER, o_d_id INTEGER, o_w_id INTEGER, "
      "o_c_id INTEGER, o_entry_d DATE, o_carrier_id INTEGER, "
      "o_ol_cnt INTEGER, o_all_local INTEGER, "
      "PRIMARY KEY (o_w_id, o_d_id, o_id)) SHARD KEY (o_w_id)",

      "CREATE TABLE order_line (ol_o_id INTEGER, ol_d_id INTEGER, "
      "ol_w_id INTEGER, ol_number INTEGER, ol_i_id INTEGER, "
      "ol_supply_w_id INTEGER, ol_delivery_d DATE, ol_quantity INTEGER, "
      "ol_amount DOUBLE, ol_dist_info VARCHAR(24), "
      "PRIMARY KEY (ol_w_id, ol_d_id, ol_o_id, ol_number)) "
      "SHARD KEY (ol_w_id)",

      "CREATE TABLE item (i_id INTEGER PRIMARY KEY, i_im_id INTEGER, "
      "i_name VARCHAR(24), i_price DOUBLE, i_data VARCHAR(50)) REPLICATED",

      "CREATE TABLE stock (s_i_id INTEGER, s_w_id INTEGER, "
      "s_quantity INTEGER, s_dist_01 VARCHAR(24), s_ytd INTEGER, "
      "s_order_cnt INTEGER, s_remote_cnt INTEGER, s_data VARCHAR(50), "
      "PRIMARY KEY (s_w_id, s_i_id)) SHARD KEY (s_w_id)",
  };
}

Status TpccGenerator::Load(engine::SimulatedServer* server) {
  const int shards = server->shard_count();
  rng_.Reseed(config_.seed);
  const int64_t today = common::DaysFromCivil(2001, 4, 2);

  // DDL executes on every shard (the engines are independent catalogs) and
  // registers with the router, exactly as a broadcast through the
  // coordinator would — the loader bypasses the wire for speed.
  for (const std::string& ddl : SchemaDdl()) {
    PHX_ASSIGN_OR_RETURN(sql::StatementPtr stmt, sql::ParseStatement(ddl));
    for (int s = 0; s < shards; ++s) {
      engine::Database* db = server->shard_db(s);
      engine::Executor executor(db);
      engine::Transaction* txn = db->Begin(0);
      auto result = executor.Execute(txn, 0, *stmt, nullptr);
      if (!result.ok()) {
        db->Rollback(txn).ok();
        return result.status();
      }
      PHX_RETURN_IF_ERROR(db->Commit(txn));
    }
    if (server->router() != nullptr &&
        stmt->kind() == sql::StatementKind::kCreateTable) {
      server->router()->RegisterCreate(
          static_cast<const sql::CreateTableStmt&>(*stmt));
    }
  }

  // Inserts a row batch into `table_name` on one shard.
  auto insert_on = [&](int shard, const std::string& table_name,
                       std::vector<Row> rows) -> Status {
    if (rows.empty()) return Status::OK();
    engine::Database* db = server->shard_db(shard);
    PHX_ASSIGN_OR_RETURN(engine::TablePtr table,
                         db->ResolveTable(table_name, 0));
    engine::Transaction* txn = db->Begin(0);
    Status st = db->InsertBulk(txn, table, std::move(rows));
    if (!st.ok()) {
      db->Rollback(txn).ok();
      return st;
    }
    return db->Commit(txn);
  };

  // Places each row where the router will look for it: replicated tables
  // get a full copy per shard, hash tables partition on their declared
  // shard key (the warehouse column), pinned tables land on their name
  // hash. With one shard this degenerates to the historical direct load.
  auto bulk_load = [&](const std::string& table_name,
                       std::vector<Row> rows) -> Status {
    if (shards <= 1) return insert_on(0, table_name, std::move(rows));
    engine::ShardTableInfo info;
    if (!server->router()->Lookup(table_name, &info)) {
      return Status::Internal("table " + table_name +
                              " missing from the shard router");
    }
    if (info.cls == engine::ShardTableClass::kReplicated) {
      for (int s = 0; s < shards; ++s) {
        std::vector<Row> copy = rows;
        PHX_RETURN_IF_ERROR(insert_on(s, table_name, std::move(copy)));
      }
      return Status::OK();
    }
    if (info.cls == engine::ShardTableClass::kPinned) {
      return insert_on(
          engine::ShardRouter::ShardForName(table_name, shards),
          table_name, std::move(rows));
    }
    std::vector<size_t> key_idx;
    for (const std::string& key_col : info.key_columns) {
      auto it = std::find(info.columns.begin(), info.columns.end(), key_col);
      if (it == info.columns.end()) {
        return Status::Internal("shard key column " + key_col +
                                " not in table " + table_name);
      }
      key_idx.push_back(
          static_cast<size_t>(it - info.columns.begin()));
    }
    std::vector<std::vector<Row>> per_shard(shards);
    std::vector<Value> key;
    for (Row& row : rows) {
      key.clear();
      for (size_t idx : key_idx) key.push_back(row[idx]);
      per_shard[engine::ShardRouter::ShardForKey(key, shards)].push_back(
          std::move(row));
    }
    for (int s = 0; s < shards; ++s) {
      PHX_RETURN_IF_ERROR(insert_on(s, table_name, std::move(per_shard[s])));
    }
    return Status::OK();
  };

  const int w_count = config_.warehouses;
  const int d_count = config_.districts_per_warehouse;
  const int c_count = config_.customers_per_district;
  const int i_count = config_.items;
  const int o_count = config_.initial_orders_per_district;

  // ITEM.
  {
    std::vector<Row> rows;
    for (int i = 1; i <= i_count; ++i) {
      std::string data = rng_.AlphaString(26, 50);
      if (i % 10 == 0) data = "ORIGINAL" + data.substr(8);
      rows.push_back(Row{Value::Int(i), Value::Int(rng_.Uniform(1, 10000)),
                         Value::String("item-" + std::to_string(i)),
                         Value::Double(static_cast<double>(
                                           rng_.Uniform(100, 10000)) /
                                       100.0),
                         Value::String(std::move(data))});
    }
    PHX_RETURN_IF_ERROR(bulk_load("item", std::move(rows)));
  }

  std::vector<Row> warehouses;
  std::vector<Row> districts;
  std::vector<Row> customers;
  std::vector<Row> histories;
  std::vector<Row> stocks;
  std::vector<Row> orders;
  std::vector<Row> order_lines;
  std::vector<Row> new_orders;
  int64_t history_id = 1;

  for (int w = 1; w <= w_count; ++w) {
    warehouses.push_back(
        Row{Value::Int(w), Value::String("WH" + std::to_string(w)),
            Value::String(rng_.AlphaString(10, 20)),
            Value::String(rng_.AlphaString(10, 20)), Value::String("CA"),
            Value::String(rng_.NumericString(9, 9)),
            Value::Double(static_cast<double>(rng_.Uniform(0, 2000)) /
                          10000.0),
            Value::Double(300000.0)});

    for (int i = 1; i <= i_count; ++i) {
      std::string data = rng_.AlphaString(26, 50);
      if (i % 10 == 5) data = "ORIGINAL" + data.substr(8);
      stocks.push_back(Row{Value::Int(i), Value::Int(w),
                           Value::Int(rng_.Uniform(10, 100)),
                           Value::String(rng_.AlphaString(24, 24)),
                           Value::Int(0), Value::Int(0), Value::Int(0),
                           Value::String(std::move(data))});
    }

    for (int d = 1; d <= d_count; ++d) {
      districts.push_back(
          Row{Value::Int(w), Value::Int(d),
              Value::String("D" + std::to_string(d)),
              Value::String(rng_.AlphaString(10, 20)),
              Value::String(rng_.AlphaString(10, 20)), Value::String("CA"),
              Value::String(rng_.NumericString(9, 9)),
              Value::Double(static_cast<double>(rng_.Uniform(0, 2000)) /
                            10000.0),
              Value::Double(30000.0), Value::Int(o_count + 1)});

      for (int c = 1; c <= c_count; ++c) {
        bool bad_credit = rng_.Uniform(1, 10) == 1;
        customers.push_back(Row{
            Value::Int(w), Value::Int(d), Value::Int(c),
            Value::String(rng_.AlphaString(8, 16)), Value::String("OE"),
            Value::String("CLast" + std::to_string(c % 100)),
            Value::String(rng_.AlphaString(10, 20)),
            Value::String(rng_.AlphaString(10, 20)), Value::String("CA"),
            Value::String(rng_.NumericString(9, 9)),
            Value::String(rng_.NumericString(16, 16)), Value::Date(today),
            Value::String(bad_credit ? "BC" : "GC"), Value::Double(50000.0),
            Value::Double(static_cast<double>(rng_.Uniform(0, 5000)) /
                          10000.0),
            Value::Double(-10.0), Value::Double(10.0), Value::Int(1),
            Value::Int(0), Value::String(rng_.AlphaString(100, 200))});
        histories.push_back(Row{Value::Int(history_id++), Value::Int(c),
                                Value::Int(d), Value::Int(w), Value::Int(d),
                                Value::Int(w), Value::Date(today),
                                Value::Double(10.0),
                                Value::String(rng_.AlphaString(12, 24))});
      }

      // Initial orders: the most recent 30% are undelivered (new_order).
      for (int o = 1; o <= o_count; ++o) {
        int ol_cnt = static_cast<int>(rng_.Uniform(5, 15));
        bool delivered = o <= o_count * 7 / 10;
        orders.push_back(
            Row{Value::Int(o), Value::Int(d), Value::Int(w),
                Value::Int(rng_.Uniform(1, c_count)), Value::Date(today),
                delivered ? Value::Int(rng_.Uniform(1, 10)) : Value::Null(),
                Value::Int(ol_cnt), Value::Int(1)});
        if (!delivered) {
          new_orders.push_back(Row{Value::Int(o), Value::Int(d),
                                   Value::Int(w)});
        }
        for (int ol = 1; ol <= ol_cnt; ++ol) {
          order_lines.push_back(Row{
              Value::Int(o), Value::Int(d), Value::Int(w), Value::Int(ol),
              Value::Int(rng_.Uniform(1, i_count)), Value::Int(w),
              delivered ? Value::Date(today) : Value::Null(),
              Value::Int(5),
              delivered ? Value::Double(0.0)
                        : Value::Double(static_cast<double>(
                                            rng_.Uniform(1, 999999)) /
                                        100.0),
              Value::String(rng_.AlphaString(24, 24))});
        }
      }
    }
  }

  PHX_RETURN_IF_ERROR(bulk_load("warehouse", std::move(warehouses)));
  PHX_RETURN_IF_ERROR(bulk_load("district", std::move(districts)));
  PHX_RETURN_IF_ERROR(bulk_load("customer", std::move(customers)));
  PHX_RETURN_IF_ERROR(bulk_load("history", std::move(histories)));
  PHX_RETURN_IF_ERROR(bulk_load("stock", std::move(stocks)));
  PHX_RETURN_IF_ERROR(bulk_load("orders", std::move(orders)));
  PHX_RETURN_IF_ERROR(bulk_load("order_line", std::move(order_lines)));
  PHX_RETURN_IF_ERROR(bulk_load("new_order", std::move(new_orders)));
  return server->Checkpoint();
}

// ---------------------------------------------------------------------------
// TpccClient
// ---------------------------------------------------------------------------

TpccClient::TpccClient(odbc::Connection* conn, const TpccConfig& config,
                       uint64_t seed, bool pipeline)
    : conn_(conn), config_(config), rng_(seed) {
  auto stmt = conn_->CreateStatement();
  if (stmt.ok()) stmt_ = std::move(stmt).value();
  if (pipeline && stmt_ != nullptr) {
    // One-time capability probe: drivers without bundle support (or with
    // PHOENIX_PIPELINE=0) answer kUnsupported and the client keeps the
    // classic per-statement bodies — trip counts then match the
    // pre-pipeline client exactly.
    Status probe = stmt_->BundleBegin();
    if (probe.ok()) {
      stmt_->BundleDiscard();
      pipeline_ = true;
    }
  }
}

Result<std::vector<Row>> TpccClient::Query(const std::string& sql) {
  PHX_RETURN_IF_ERROR(stmt_->ExecDirect(sql));
  PHX_ASSIGN_OR_RETURN(std::vector<Row> rows, stmt_->FetchBlock(10'000));
  stmt_->CloseCursor().ok();
  return rows;
}

Status TpccClient::Exec(const std::string& sql) {
  return stmt_->ExecDirect(sql);
}

Result<std::vector<odbc::BundleStatementResult>> TpccClient::RunBundle(
    const std::vector<std::string>& stmts) {
  PHX_RETURN_IF_ERROR(stmt_->BundleBegin());
  for (const std::string& s : stmts) {
    Status st = stmt_->BundleAdd(s);
    if (!st.ok()) {
      stmt_->BundleDiscard();
      return st;
    }
  }
  return stmt_->BundleFlush();
}

namespace {

/// First failing statement's status in a flushed bundle, or OK.
Status FirstBundleError(
    const std::vector<odbc::BundleStatementResult>& results) {
  for (const odbc::BundleStatementResult& r : results) {
    if (!r.status.ok()) return r.status;
  }
  return Status::OK();
}

}  // namespace

Status TpccClient::RunOne() {
  // Standard mix: NewOrder 45, Payment 43, OrderStatus 4, Delivery 4,
  // StockLevel 4 — background transactions are >55% of the work, matching
  // the paper's "new orders are at most 43-45% of the mix" framing.
  int64_t roll = rng_.Uniform(1, 100);
  TpccTxnType type;
  if (roll <= 45) {
    type = TpccTxnType::kNewOrder;
  } else if (roll <= 88) {
    type = TpccTxnType::kPayment;
  } else if (roll <= 92) {
    type = TpccTxnType::kOrderStatus;
  } else if (roll <= 96) {
    type = TpccTxnType::kDelivery;
  } else {
    type = TpccTxnType::kStockLevel;
  }

  constexpr int kMaxAttempts = 500;
  Status st = Status::OK();
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    st = RunTransaction(type);
    if (st.ok()) {
      ++stats_.committed[static_cast<size_t>(type)];
      return st;
    }
    ++stats_.aborted[static_cast<size_t>(type)];
    if (st.code() != common::StatusCode::kAborted &&
        st.code() != common::StatusCode::kTimeout) {
      return st;  // real error, not a deadlock/abort retry
    }
    Exec("ROLLBACK").ok();  // ensure a clean session before retrying
    // Randomized exponential backoff (capped) defuses repeat collisions
    // between zero-think-time terminals hammering the same district.
    int64_t cap = std::min<int64_t>(20'000, 500 * (attempt + 1));
    std::this_thread::sleep_for(
        std::chrono::microseconds(rng_.Uniform(100, cap)));
  }
  return st;
}

Status TpccClient::RunTransaction(TpccTxnType type) {
  switch (type) {
    case TpccTxnType::kNewOrder: return NewOrder();
    case TpccTxnType::kPayment: return Payment();
    case TpccTxnType::kOrderStatus: return OrderStatus();
    case TpccTxnType::kDelivery: return Delivery();
    case TpccTxnType::kStockLevel: return StockLevel();
  }
  return Status::Internal("unknown transaction type");
}

namespace {

std::string WD(int64_t w, int64_t d) {
  return " = " + std::to_string(w) + " AND d_id = " + std::to_string(d);
}

}  // namespace

Status TpccClient::NewOrder() {
  if (pipeline_) return NewOrderPipelined();
  int64_t w = rng_.Uniform(1, config_.warehouses);
  int64_t d = rng_.Uniform(1, config_.districts_per_warehouse);
  int64_t c = rng_.NURand(1023, 1, config_.customers_per_district, 259);
  int item_count = static_cast<int>(rng_.Uniform(5, 15));

  PHX_RETURN_IF_ERROR(Exec("BEGIN TRANSACTION"));

  PHX_ASSIGN_OR_RETURN(std::vector<Row> wrow,
                       Query("SELECT w_tax FROM warehouse WHERE w_id = " +
                             std::to_string(w)));
  if (wrow.empty()) {
    Exec("ROLLBACK").ok();
    return Status::NotFound("warehouse missing");
  }

  // Increment-first: the UPDATE takes (and keeps) the X lock on the
  // district row, serializing order-id allocation; the SELECT then reads
  // the post-increment value under our own lock. Read-then-update would
  // race under READ COMMITTED (two terminals allocating the same o_id).
  PHX_RETURN_IF_ERROR(
      Exec("UPDATE district SET d_next_o_id = d_next_o_id + 1 "
           "WHERE d_w_id" + WD(w, d)));
  PHX_ASSIGN_OR_RETURN(
      std::vector<Row> drow,
      Query("SELECT d_tax, d_next_o_id FROM district WHERE d_w_id" +
            WD(w, d)));
  if (drow.empty()) {
    Exec("ROLLBACK").ok();
    return Status::NotFound("district missing");
  }
  int64_t o_id = drow[0][1].AsInt() - 1;

  PHX_ASSIGN_OR_RETURN(
      std::vector<Row> crow,
      Query("SELECT c_discount, c_last, c_credit FROM customer "
            "WHERE c_w_id = " +
            std::to_string(w) + " AND c_d_id = " + std::to_string(d) +
            " AND c_id = " + std::to_string(c)));
  if (crow.empty()) {
    Exec("ROLLBACK").ok();
    return Status::NotFound("customer missing");
  }

  PHX_RETURN_IF_ERROR(Exec(
      "INSERT INTO orders VALUES (" + std::to_string(o_id) + ", " +
      std::to_string(d) + ", " + std::to_string(w) + ", " +
      std::to_string(c) + ", DATE '2001-04-02', NULL, " +
      std::to_string(item_count) + ", 1)"));
  PHX_RETURN_IF_ERROR(Exec("INSERT INTO new_order VALUES (" +
                           std::to_string(o_id) + ", " + std::to_string(d) +
                           ", " + std::to_string(w) + ")"));

  for (int line = 1; line <= item_count; ++line) {
    int64_t item = rng_.NURand(8191, 1, config_.items, 7911);
    int64_t qty = rng_.Uniform(1, 10);

    PHX_ASSIGN_OR_RETURN(std::vector<Row> irow,
                         Query("SELECT i_price FROM item WHERE i_id = " +
                               std::to_string(item)));
    if (irow.empty()) {
      // 1% of new-order transactions roll back on an unused item per spec;
      // NURand keys are always valid here, so treat as data error.
      Exec("ROLLBACK").ok();
      return Status::NotFound("item missing");
    }
    double price = irow[0][0].AsDouble();

    PHX_ASSIGN_OR_RETURN(
        std::vector<Row> srow,
        Query("SELECT s_quantity FROM stock WHERE s_w_id = " +
              std::to_string(w) + " AND s_i_id = " + std::to_string(item)));
    if (srow.empty()) {
      Exec("ROLLBACK").ok();
      return Status::NotFound("stock missing");
    }
    int64_t squant = srow[0][0].AsInt();
    int64_t new_quant = squant >= qty + 10 ? squant - qty
                                           : squant - qty + 91;
    PHX_RETURN_IF_ERROR(
        Exec("UPDATE stock SET s_quantity = " + std::to_string(new_quant) +
             ", s_ytd = s_ytd + " + std::to_string(qty) +
             ", s_order_cnt = s_order_cnt + 1 WHERE s_w_id = " +
             std::to_string(w) + " AND s_i_id = " + std::to_string(item)));

    double amount = static_cast<double>(qty) * price;
    PHX_RETURN_IF_ERROR(Exec(
        "INSERT INTO order_line VALUES (" + std::to_string(o_id) + ", " +
        std::to_string(d) + ", " + std::to_string(w) + ", " +
        std::to_string(line) + ", " + std::to_string(item) + ", " +
        std::to_string(w) + ", NULL, " + std::to_string(qty) + ", " +
        std::to_string(amount) + ", 'dist-info-------------')"));
  }

  return Exec("COMMIT");
}

Status TpccClient::Payment() {
  if (pipeline_) return PaymentPipelined();
  int64_t w = rng_.Uniform(1, config_.warehouses);
  int64_t d = rng_.Uniform(1, config_.districts_per_warehouse);
  int64_t c = rng_.NURand(1023, 1, config_.customers_per_district, 259);
  double amount = static_cast<double>(rng_.Uniform(100, 500000)) / 100.0;

  PHX_RETURN_IF_ERROR(Exec("BEGIN TRANSACTION"));

  PHX_RETURN_IF_ERROR(Exec("UPDATE warehouse SET w_ytd = w_ytd + " +
                           std::to_string(amount) +
                           " WHERE w_id = " + std::to_string(w)));
  PHX_ASSIGN_OR_RETURN(std::vector<Row> wrow,
                       Query("SELECT w_name FROM warehouse WHERE w_id = " +
                             std::to_string(w)));

  PHX_RETURN_IF_ERROR(Exec("UPDATE district SET d_ytd = d_ytd + " +
                           std::to_string(amount) + " WHERE d_w_id" +
                           WD(w, d)));
  PHX_ASSIGN_OR_RETURN(std::vector<Row> drow,
                       Query("SELECT d_name FROM district WHERE d_w_id" +
                             WD(w, d)));
  if (wrow.empty() || drow.empty()) {
    Exec("ROLLBACK").ok();
    return Status::NotFound("warehouse/district missing");
  }

  PHX_RETURN_IF_ERROR(Exec(
      "UPDATE customer SET c_balance = c_balance - " +
      std::to_string(amount) + ", c_ytd_payment = c_ytd_payment + " +
      std::to_string(amount) +
      ", c_payment_cnt = c_payment_cnt + 1 WHERE c_w_id = " +
      std::to_string(w) + " AND c_d_id = " + std::to_string(d) +
      " AND c_id = " + std::to_string(c)));

  static std::atomic<int64_t> history_seq{1'000'000'000};
  PHX_RETURN_IF_ERROR(Exec(
      "INSERT INTO history VALUES (" +
      std::to_string(history_seq.fetch_add(1)) + ", " + std::to_string(c) +
      ", " + std::to_string(d) + ", " + std::to_string(w) + ", " +
      std::to_string(d) + ", " + std::to_string(w) +
      ", DATE '2001-04-02', " + std::to_string(amount) + ", 'payment')"));

  return Exec("COMMIT");
}

Status TpccClient::OrderStatus() {
  if (pipeline_) return OrderStatusPipelined();
  int64_t w = rng_.Uniform(1, config_.warehouses);
  int64_t d = rng_.Uniform(1, config_.districts_per_warehouse);
  int64_t c = rng_.NURand(1023, 1, config_.customers_per_district, 259);

  PHX_RETURN_IF_ERROR(Exec("BEGIN TRANSACTION"));

  PHX_ASSIGN_OR_RETURN(
      std::vector<Row> crow,
      Query("SELECT c_balance, c_first, c_middle, c_last FROM customer "
            "WHERE c_w_id = " +
            std::to_string(w) + " AND c_d_id = " + std::to_string(d) +
            " AND c_id = " + std::to_string(c)));

  PHX_ASSIGN_OR_RETURN(
      std::vector<Row> orow,
      Query("SELECT MAX(o_id) FROM orders WHERE o_w_id = " +
            std::to_string(w) + " AND o_d_id = " + std::to_string(d) +
            " AND o_c_id = " + std::to_string(c)));
  if (!orow.empty() && !orow[0][0].is_null()) {
    int64_t o_id = orow[0][0].AsInt();
    PHX_ASSIGN_OR_RETURN(
        std::vector<Row> lines,
        Query("SELECT ol_i_id, ol_supply_w_id, ol_quantity, ol_amount, "
              "ol_delivery_d FROM order_line WHERE ol_w_id = " +
              std::to_string(w) + " AND ol_d_id = " + std::to_string(d) +
              " AND ol_o_id = " + std::to_string(o_id)));
    (void)lines;
  }
  (void)crow;
  return Exec("COMMIT");
}

Status TpccClient::Delivery() {
  int64_t w = rng_.Uniform(1, config_.warehouses);
  int64_t carrier = rng_.Uniform(1, 10);

  PHX_RETURN_IF_ERROR(Exec("BEGIN TRANSACTION"));

  for (int64_t d = 1; d <= config_.districts_per_warehouse; ++d) {
    PHX_ASSIGN_OR_RETURN(
        std::vector<Row> no_row,
        Query("SELECT MIN(no_o_id) FROM new_order WHERE no_w_id = " +
              std::to_string(w) + " AND no_d_id = " + std::to_string(d)));
    if (no_row.empty() || no_row[0][0].is_null()) continue;
    int64_t o_id = no_row[0][0].AsInt();

    PHX_RETURN_IF_ERROR(
        Exec("DELETE FROM new_order WHERE no_w_id = " + std::to_string(w) +
             " AND no_d_id = " + std::to_string(d) +
             " AND no_o_id = " + std::to_string(o_id)));

    PHX_ASSIGN_OR_RETURN(
        std::vector<Row> orow,
        Query("SELECT o_c_id FROM orders WHERE o_w_id = " +
              std::to_string(w) + " AND o_d_id = " + std::to_string(d) +
              " AND o_id = " + std::to_string(o_id)));
    if (orow.empty()) continue;
    int64_t c = orow[0][0].AsInt();

    PHX_RETURN_IF_ERROR(
        Exec("UPDATE orders SET o_carrier_id = " + std::to_string(carrier) +
             " WHERE o_w_id = " + std::to_string(w) +
             " AND o_d_id = " + std::to_string(d) +
             " AND o_id = " + std::to_string(o_id)));
    PHX_RETURN_IF_ERROR(
        Exec("UPDATE order_line SET ol_delivery_d = DATE '2001-04-02' "
             "WHERE ol_w_id = " +
             std::to_string(w) + " AND ol_d_id = " + std::to_string(d) +
             " AND ol_o_id = " + std::to_string(o_id)));

    PHX_ASSIGN_OR_RETURN(
        std::vector<Row> amount_row,
        Query("SELECT SUM(ol_amount) FROM order_line WHERE ol_w_id = " +
              std::to_string(w) + " AND ol_d_id = " + std::to_string(d) +
              " AND ol_o_id = " + std::to_string(o_id)));
    double amount = amount_row.empty() || amount_row[0][0].is_null()
                        ? 0.0
                        : amount_row[0][0].AsDouble();

    PHX_RETURN_IF_ERROR(
        Exec("UPDATE customer SET c_balance = c_balance + " +
             std::to_string(amount) +
             ", c_delivery_cnt = c_delivery_cnt + 1 WHERE c_w_id = " +
             std::to_string(w) + " AND c_d_id = " + std::to_string(d) +
             " AND c_id = " + std::to_string(c)));
  }
  return Exec("COMMIT");
}

Status TpccClient::StockLevel() {
  if (pipeline_) return StockLevelPipelined();
  int64_t w = rng_.Uniform(1, config_.warehouses);
  int64_t d = rng_.Uniform(1, config_.districts_per_warehouse);
  int64_t threshold = rng_.Uniform(10, 20);

  PHX_RETURN_IF_ERROR(Exec("BEGIN TRANSACTION"));

  PHX_ASSIGN_OR_RETURN(
      std::vector<Row> drow,
      Query("SELECT d_next_o_id FROM district WHERE d_w_id" + WD(w, d)));
  if (drow.empty()) {
    Exec("ROLLBACK").ok();
    return Status::NotFound("district missing");
  }
  int64_t next_o = drow[0][0].AsInt();

  PHX_ASSIGN_OR_RETURN(
      std::vector<Row> counts,
      Query("SELECT COUNT(DISTINCT s_i_id) FROM order_line, stock "
            "WHERE ol_w_id = " +
            std::to_string(w) + " AND ol_d_id = " + std::to_string(d) +
            " AND ol_o_id >= " + std::to_string(next_o - 20) +
            " AND ol_o_id < " + std::to_string(next_o) +
            " AND s_w_id = ol_w_id AND s_i_id = ol_i_id AND s_quantity < " +
            std::to_string(threshold)));
  (void)counts;
  return Exec("COMMIT");
}

// ---------------------------------------------------------------------------
// Pipelined transaction bodies
// ---------------------------------------------------------------------------
// Same SQL effects as the classic bodies, regrouped into wire bundles. Two
// rules drive the grouping: (1) statements whose inputs come from earlier
// statements in the SAME transaction force a bundle boundary; (2) the
// baseline's read-compute-write on stock is rewritten as two complementary
// single-statement UPDATEs (exactly one predicate matches), eliminating the
// data dependency so the whole order-placement half fits one bundle.

Status TpccClient::NewOrderPipelined() {
  int64_t w = rng_.Uniform(1, config_.warehouses);
  int64_t d = rng_.Uniform(1, config_.districts_per_warehouse);
  int64_t c = rng_.NURand(1023, 1, config_.customers_per_district, 259);
  int item_count = static_cast<int>(rng_.Uniform(5, 15));
  struct Line {
    int64_t item;
    int64_t qty;
  };
  std::vector<Line> lines;
  lines.reserve(item_count);
  for (int i = 0; i < item_count; ++i) {
    lines.push_back({rng_.NURand(8191, 1, config_.items, 7911),
                     rng_.Uniform(1, 10)});
  }

  // Bundle A: open the transaction and gather every input the order
  // placement needs (o_id allocation included — the district UPDATE keeps
  // its X lock exactly as in the classic body).
  std::vector<std::string> a;
  a.reserve(5 + lines.size());
  a.push_back("BEGIN TRANSACTION");
  a.push_back("SELECT w_tax FROM warehouse WHERE w_id = " +
              std::to_string(w));
  a.push_back("UPDATE district SET d_next_o_id = d_next_o_id + 1 "
              "WHERE d_w_id" + WD(w, d));
  a.push_back("SELECT d_tax, d_next_o_id FROM district WHERE d_w_id" +
              WD(w, d));
  a.push_back("SELECT c_discount, c_last, c_credit FROM customer "
              "WHERE c_w_id = " + std::to_string(w) +
              " AND c_d_id = " + std::to_string(d) +
              " AND c_id = " + std::to_string(c));
  for (const Line& line : lines) {
    a.push_back("SELECT i_price FROM item WHERE i_id = " +
                std::to_string(line.item));
  }
  PHX_ASSIGN_OR_RETURN(std::vector<odbc::BundleStatementResult> ra,
                       RunBundle(a));
  PHX_RETURN_IF_ERROR(FirstBundleError(ra));
  if (ra[1].rows.empty()) {
    Exec("ROLLBACK").ok();
    return Status::NotFound("warehouse missing");
  }
  if (ra[3].rows.empty()) {
    Exec("ROLLBACK").ok();
    return Status::NotFound("district missing");
  }
  int64_t o_id = ra[3].rows[0][1].AsInt() - 1;
  if (ra[4].rows.empty()) {
    Exec("ROLLBACK").ok();
    return Status::NotFound("customer missing");
  }
  std::vector<double> prices;
  prices.reserve(lines.size());
  for (size_t i = 0; i < lines.size(); ++i) {
    if (ra[5 + i].rows.empty()) {
      Exec("ROLLBACK").ok();
      return Status::NotFound("item missing");
    }
    prices.push_back(ra[5 + i].rows[0][0].AsDouble());
  }

  // Bundle B: place the order and commit, all in one trip.
  std::vector<std::string> b;
  b.reserve(3 + 3 * lines.size());
  b.push_back("INSERT INTO orders VALUES (" + std::to_string(o_id) + ", " +
              std::to_string(d) + ", " + std::to_string(w) + ", " +
              std::to_string(c) + ", DATE '2001-04-02', NULL, " +
              std::to_string(item_count) + ", 1)");
  b.push_back("INSERT INTO new_order VALUES (" + std::to_string(o_id) +
              ", " + std::to_string(d) + ", " + std::to_string(w) + ")");
  for (size_t i = 0; i < lines.size(); ++i) {
    const Line& line = lines[i];
    const std::string key = " WHERE s_w_id = " + std::to_string(w) +
                            " AND s_i_id = " + std::to_string(line.item);
    // Replenish rule (spec 2.4.2.2) without the client-side s_quantity
    // read: quantity >= qty+10 decrements by qty, else wraps up by 91-qty.
    b.push_back("UPDATE stock SET s_quantity = s_quantity - " +
                std::to_string(line.qty) + ", s_ytd = s_ytd + " +
                std::to_string(line.qty) +
                ", s_order_cnt = s_order_cnt + 1" + key +
                " AND s_quantity >= " + std::to_string(line.qty + 10));
    b.push_back("UPDATE stock SET s_quantity = s_quantity + " +
                std::to_string(91 - line.qty) + ", s_ytd = s_ytd + " +
                std::to_string(line.qty) +
                ", s_order_cnt = s_order_cnt + 1" + key +
                " AND s_quantity < " + std::to_string(line.qty + 10));
    double amount = static_cast<double>(line.qty) * prices[i];
    b.push_back("INSERT INTO order_line VALUES (" + std::to_string(o_id) +
                ", " + std::to_string(d) + ", " + std::to_string(w) + ", " +
                std::to_string(i + 1) + ", " + std::to_string(line.item) +
                ", " + std::to_string(w) + ", NULL, " +
                std::to_string(line.qty) + ", " + std::to_string(amount) +
                ", 'dist-info-------------')");
  }
  b.push_back("COMMIT");
  PHX_ASSIGN_OR_RETURN(std::vector<odbc::BundleStatementResult> rb,
                       RunBundle(b));
  return FirstBundleError(rb);
}

Status TpccClient::PaymentPipelined() {
  int64_t w = rng_.Uniform(1, config_.warehouses);
  int64_t d = rng_.Uniform(1, config_.districts_per_warehouse);
  int64_t c = rng_.NURand(1023, 1, config_.customers_per_district, 259);
  double amount = static_cast<double>(rng_.Uniform(100, 500000)) / 100.0;

  static std::atomic<int64_t> history_seq{2'000'000'000};
  std::vector<std::string> stmts;
  stmts.reserve(8);
  stmts.push_back("BEGIN TRANSACTION");
  stmts.push_back("UPDATE warehouse SET w_ytd = w_ytd + " +
                  std::to_string(amount) +
                  " WHERE w_id = " + std::to_string(w));
  stmts.push_back("SELECT w_name FROM warehouse WHERE w_id = " +
                  std::to_string(w));
  stmts.push_back("UPDATE district SET d_ytd = d_ytd + " +
                  std::to_string(amount) + " WHERE d_w_id" + WD(w, d));
  stmts.push_back("SELECT d_name FROM district WHERE d_w_id" + WD(w, d));
  stmts.push_back("UPDATE customer SET c_balance = c_balance - " +
                  std::to_string(amount) +
                  ", c_ytd_payment = c_ytd_payment + " +
                  std::to_string(amount) +
                  ", c_payment_cnt = c_payment_cnt + 1 WHERE c_w_id = " +
                  std::to_string(w) + " AND c_d_id = " + std::to_string(d) +
                  " AND c_id = " + std::to_string(c));
  stmts.push_back("INSERT INTO history VALUES (" +
                  std::to_string(history_seq.fetch_add(1)) + ", " +
                  std::to_string(c) + ", " + std::to_string(d) + ", " +
                  std::to_string(w) + ", " + std::to_string(d) + ", " +
                  std::to_string(w) + ", DATE '2001-04-02', " +
                  std::to_string(amount) + ", 'payment')");
  stmts.push_back("COMMIT");

  PHX_ASSIGN_OR_RETURN(std::vector<odbc::BundleStatementResult> r,
                       RunBundle(stmts));
  PHX_RETURN_IF_ERROR(FirstBundleError(r));
  // result_lost marks the exactly-once skip path: the transaction is
  // durably committed, only the SELECT payloads went down with the crashed
  // response — not a data error.
  if ((r[2].rows.empty() && !r[2].result_lost) ||
      (r[4].rows.empty() && !r[4].result_lost)) {
    return Status::NotFound("warehouse/district missing");
  }
  return Status::OK();
}

Status TpccClient::OrderStatusPipelined() {
  int64_t w = rng_.Uniform(1, config_.warehouses);
  int64_t d = rng_.Uniform(1, config_.districts_per_warehouse);
  int64_t c = rng_.NURand(1023, 1, config_.customers_per_district, 259);

  PHX_ASSIGN_OR_RETURN(
      std::vector<odbc::BundleStatementResult> ra,
      RunBundle({"BEGIN TRANSACTION",
                 "SELECT c_balance, c_first, c_middle, c_last FROM customer "
                 "WHERE c_w_id = " + std::to_string(w) +
                     " AND c_d_id = " + std::to_string(d) +
                     " AND c_id = " + std::to_string(c),
                 "SELECT MAX(o_id) FROM orders WHERE o_w_id = " +
                     std::to_string(w) +
                     " AND o_d_id = " + std::to_string(d) +
                     " AND o_c_id = " + std::to_string(c)}));
  PHX_RETURN_IF_ERROR(FirstBundleError(ra));

  std::vector<std::string> b;
  if (!ra[2].rows.empty() && !ra[2].rows[0][0].is_null()) {
    int64_t o_id = ra[2].rows[0][0].AsInt();
    b.push_back("SELECT ol_i_id, ol_supply_w_id, ol_quantity, ol_amount, "
                "ol_delivery_d FROM order_line WHERE ol_w_id = " +
                std::to_string(w) + " AND ol_d_id = " + std::to_string(d) +
                " AND ol_o_id = " + std::to_string(o_id));
  }
  b.push_back("COMMIT");
  PHX_ASSIGN_OR_RETURN(std::vector<odbc::BundleStatementResult> rb,
                       RunBundle(b));
  return FirstBundleError(rb);
}

Status TpccClient::StockLevelPipelined() {
  int64_t w = rng_.Uniform(1, config_.warehouses);
  int64_t d = rng_.Uniform(1, config_.districts_per_warehouse);
  int64_t threshold = rng_.Uniform(10, 20);

  PHX_ASSIGN_OR_RETURN(
      std::vector<odbc::BundleStatementResult> ra,
      RunBundle({"BEGIN TRANSACTION",
                 "SELECT d_next_o_id FROM district WHERE d_w_id" +
                     WD(w, d)}));
  PHX_RETURN_IF_ERROR(FirstBundleError(ra));
  if (ra[1].rows.empty()) {
    Exec("ROLLBACK").ok();
    return Status::NotFound("district missing");
  }
  int64_t next_o = ra[1].rows[0][0].AsInt();

  PHX_ASSIGN_OR_RETURN(
      std::vector<odbc::BundleStatementResult> rb,
      RunBundle({"SELECT COUNT(DISTINCT s_i_id) FROM order_line, stock "
                 "WHERE ol_w_id = " + std::to_string(w) +
                     " AND ol_d_id = " + std::to_string(d) +
                     " AND ol_o_id >= " + std::to_string(next_o - 20) +
                     " AND ol_o_id < " + std::to_string(next_o) +
                     " AND s_w_id = ol_w_id AND s_i_id = ol_i_id "
                     "AND s_quantity < " + std::to_string(threshold),
                 "COMMIT"}));
  return FirstBundleError(rb);
}

}  // namespace phoenix::tpc
