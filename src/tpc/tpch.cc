#include "tpc/tpch.h"

#include <algorithm>
#include <array>
#include <cstdio>

#include "engine/executor.h"
#include "sql/parser.h"

namespace phoenix::tpc {

using common::Result;
using common::Row;
using common::Status;
using common::Value;

namespace {

// --- Value domains (dbgen-compatible shapes, reduced word lists) ----------

constexpr const char* kRegions[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                                    "MIDDLE EAST"};

struct NationDef {
  const char* name;
  int region;
};
constexpr NationDef kNations[] = {
    {"ALGERIA", 0},      {"ARGENTINA", 1}, {"BRAZIL", 1},
    {"CANADA", 1},       {"EGYPT", 4},     {"ETHIOPIA", 0},
    {"FRANCE", 3},       {"GERMANY", 3},   {"INDIA", 2},
    {"INDONESIA", 2},    {"IRAN", 4},      {"IRAQ", 4},
    {"JAPAN", 2},        {"JORDAN", 4},    {"KENYA", 0},
    {"MOROCCO", 0},      {"MOZAMBIQUE", 0},{"PERU", 1},
    {"CHINA", 2},        {"ROMANIA", 3},   {"SAUDI ARABIA", 4},
    {"VIETNAM", 2},      {"RUSSIA", 3},    {"UNITED KINGDOM", 3},
    {"UNITED STATES", 1},
};

constexpr const char* kColors[] = {
    "almond", "antique", "aquamarine", "azure",  "beige",  "bisque",
    "black",  "blanched", "blue",      "blush",  "brown",  "burlywood",
    "chiffon", "chocolate", "coral",   "cornflower", "cream", "cyan",
    "dark",   "deep",     "dim",       "dodger", "drab",   "firebrick",
    "forest", "frosted",  "gainsboro", "ghost",  "goldenrod", "green",
    "grey",   "honeydew", "hot",       "indian", "ivory",  "khaki",
};

constexpr const char* kTypes1[] = {"STANDARD", "SMALL",   "MEDIUM",
                                   "LARGE",    "ECONOMY", "PROMO"};
constexpr const char* kTypes2[] = {"ANODIZED", "BURNISHED", "PLATED",
                                   "POLISHED", "BRUSHED"};
constexpr const char* kTypes3[] = {"TIN", "NICKEL", "BRASS", "STEEL",
                                   "COPPER"};
constexpr const char* kContainers1[] = {"SM", "MED", "LG", "JUMBO", "WRAP"};
constexpr const char* kContainers2[] = {"CASE", "BOX", "BAG", "PACK", "PKG"};
constexpr const char* kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE",
                                     "MACHINERY", "HOUSEHOLD"};
constexpr const char* kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                                       "4-NOT SPECIFIED", "5-LOW"};
constexpr const char* kShipModes[] = {"REG AIR", "AIR",  "RAIL", "SHIP",
                                      "TRUCK",   "MAIL", "FOB"};
constexpr const char* kInstructions[] = {"DELIVER IN PERSON", "COLLECT COD",
                                         "NONE", "TAKE BACK RETURN"};

int64_t StartDate() { return common::DaysFromCivil(1992, 1, 1); }
int64_t EndDate() { return common::DaysFromCivil(1998, 8, 2); }
int64_t CurrentDate() { return common::DaysFromCivil(1995, 6, 17); }

std::string Pick(common::Rng& rng, const char* const* list, size_t n) {
  return list[rng.Next64() % n];
}

std::string PartName(common::Rng& rng) {
  std::string out;
  for (int i = 0; i < 5; ++i) {
    if (i > 0) out += " ";
    out += kColors[rng.Next64() % (sizeof(kColors) / sizeof(kColors[0]))];
  }
  return out;
}

std::string Phone(common::Rng& rng, int64_t nationkey) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%02d-%03d-%03d-%04d",
                static_cast<int>(10 + nationkey),
                static_cast<int>(rng.Uniform(100, 999)),
                static_cast<int>(rng.Uniform(100, 999)),
                static_cast<int>(rng.Uniform(1000, 9999)));
  return buf;
}

double Money(common::Rng& rng, double lo, double hi) {
  double cents = static_cast<double>(
      rng.Uniform(static_cast<int64_t>(lo * 100),
                  static_cast<int64_t>(hi * 100)));
  return cents / 100.0;
}

double RetailPrice(int64_t partkey) {
  return (90000.0 + static_cast<double>((partkey / 10) % 20001) +
          100.0 * static_cast<double>(partkey % 1000)) /
         100.0;
}

/// dbgen's partsupp supplier-scatter formula, with linear probing against
/// the keys already assigned to this part — at small scale factors the raw
/// formula collides within a part's four suppliers, and (ps_partkey,
/// ps_suppkey) is the table's primary key. Deterministic in (partkey, s).
std::array<int64_t, 4> PartSuppliers(int64_t partkey, int64_t s) {
  std::array<int64_t, 4> out{};
  for (int i = 0; i < 4; ++i) {
    int64_t key = (partkey + (i * (s / 4 + (partkey - 1) / s))) % s + 1;
    bool collided = true;
    while (collided) {
      collided = false;
      for (int j = 0; j < i; ++j) {
        if (out[j] == key) {
          key = key % s + 1;  // probe forward, wrapping
          collided = true;
          break;
        }
      }
    }
    out[i] = key;
  }
  return out;
}

int64_t PsSuppkey(int64_t partkey, int i, int64_t supplier_count) {
  return PartSuppliers(partkey, supplier_count)[i];
}

}  // namespace

std::vector<std::string> TpchGenerator::SchemaDdl() {
  return {
      "CREATE TABLE region (r_regionkey INTEGER PRIMARY KEY, "
      "r_name VARCHAR(25), r_comment VARCHAR(152))",

      "CREATE TABLE nation (n_nationkey INTEGER PRIMARY KEY, "
      "n_name VARCHAR(25), n_regionkey INTEGER, n_comment VARCHAR(152))",

      "CREATE TABLE supplier (s_suppkey INTEGER PRIMARY KEY, "
      "s_name VARCHAR(25), s_address VARCHAR(40), s_nationkey INTEGER, "
      "s_phone VARCHAR(15), s_acctbal DOUBLE, s_comment VARCHAR(101))",

      "CREATE TABLE part (p_partkey INTEGER PRIMARY KEY, "
      "p_name VARCHAR(55), p_mfgr VARCHAR(25), p_brand VARCHAR(10), "
      "p_type VARCHAR(25), p_size INTEGER, p_container VARCHAR(10), "
      "p_retailprice DOUBLE, p_comment VARCHAR(23))",

      "CREATE TABLE partsupp (ps_partkey INTEGER, ps_suppkey INTEGER, "
      "ps_availqty INTEGER, ps_supplycost DOUBLE, ps_comment VARCHAR(199), "
      "PRIMARY KEY (ps_partkey, ps_suppkey))",

      "CREATE TABLE customer (c_custkey INTEGER PRIMARY KEY, "
      "c_name VARCHAR(25), c_address VARCHAR(40), c_nationkey INTEGER, "
      "c_phone VARCHAR(15), c_acctbal DOUBLE, c_mktsegment VARCHAR(10), "
      "c_comment VARCHAR(117))",

      "CREATE TABLE orders (o_orderkey INTEGER PRIMARY KEY, "
      "o_custkey INTEGER, o_orderstatus VARCHAR(1), o_totalprice DOUBLE, "
      "o_orderdate DATE, o_orderpriority VARCHAR(15), o_clerk VARCHAR(15), "
      "o_shippriority INTEGER, o_comment VARCHAR(79))",

      "CREATE TABLE lineitem (l_orderkey INTEGER, l_partkey INTEGER, "
      "l_suppkey INTEGER, l_linenumber INTEGER, l_quantity DOUBLE, "
      "l_extendedprice DOUBLE, l_discount DOUBLE, l_tax DOUBLE, "
      "l_returnflag VARCHAR(1), l_linestatus VARCHAR(1), l_shipdate DATE, "
      "l_commitdate DATE, l_receiptdate DATE, l_shipinstruct VARCHAR(25), "
      "l_shipmode VARCHAR(10), l_comment VARCHAR(44), "
      "PRIMARY KEY (l_orderkey, l_linenumber))",
  };
}

Status TpchGenerator::Load(engine::SimulatedServer* server) {
  engine::Database* db = server->database();
  engine::Executor executor(db);
  rng_.Reseed(config_.seed);

  // DDL.
  for (const std::string& ddl : SchemaDdl()) {
    PHX_ASSIGN_OR_RETURN(sql::StatementPtr stmt, sql::ParseStatement(ddl));
    engine::Transaction* txn = db->Begin(0);
    auto result = executor.Execute(txn, 0, *stmt, nullptr);
    if (!result.ok()) {
      db->Rollback(txn).ok();
      return result.status();
    }
    PHX_RETURN_IF_ERROR(db->Commit(txn));
  }

  auto bulk_load = [&](const std::string& table_name,
                       std::vector<Row> rows) -> Status {
    PHX_ASSIGN_OR_RETURN(engine::TablePtr table,
                         db->ResolveTable(table_name, 0));
    engine::Transaction* txn = db->Begin(0);
    Status st = db->InsertBulk(txn, table, std::move(rows));
    if (!st.ok()) {
      db->Rollback(txn).ok();
      return st;
    }
    return db->Commit(txn);
  };

  const int64_t suppliers = SupplierCount();
  const int64_t parts = PartCount();
  const int64_t customers = CustomerCount();
  const int64_t orders = OrderCount();

  // REGION / NATION.
  {
    std::vector<Row> rows;
    for (int i = 0; i < 5; ++i) {
      rows.push_back(Row{Value::Int(i), Value::String(kRegions[i]),
                         Value::String(rng_.AlphaString(20, 60))});
    }
    PHX_RETURN_IF_ERROR(bulk_load("region", std::move(rows)));
  }
  {
    std::vector<Row> rows;
    for (int i = 0; i < 25; ++i) {
      rows.push_back(Row{Value::Int(i), Value::String(kNations[i].name),
                         Value::Int(kNations[i].region),
                         Value::String(rng_.AlphaString(20, 60))});
    }
    PHX_RETURN_IF_ERROR(bulk_load("nation", std::move(rows)));
  }

  // SUPPLIER. A sprinkle of "Customer Complaints" comments feeds Q16.
  {
    std::vector<Row> rows;
    rows.reserve(static_cast<size_t>(suppliers));
    for (int64_t k = 1; k <= suppliers; ++k) {
      char name[32];
      std::snprintf(name, sizeof(name), "Supplier#%09lld",
                    static_cast<long long>(k));
      // Cycle the first 25 suppliers through all nations so every nation
      // has at least one supplier even at tiny scale factors (Q5/Q7/Q11/
      // Q20/Q21 filter on specific nations).
      int64_t nation = k <= 25 ? k - 1 : rng_.Uniform(0, 24);
      std::string comment = rng_.AlphaString(25, 80);
      if (k % 50 == 7) comment += " Customer Complaints ";
      rows.push_back(Row{Value::Int(k), Value::String(name),
                         Value::String(rng_.AlphaString(10, 30)),
                         Value::Int(nation),
                         Value::String(Phone(rng_, nation)),
                         Value::Double(Money(rng_, -999.99, 9999.99)),
                         Value::String(std::move(comment))});
    }
    PHX_RETURN_IF_ERROR(bulk_load("supplier", std::move(rows)));
  }

  // PART.
  {
    std::vector<Row> rows;
    rows.reserve(static_cast<size_t>(parts));
    for (int64_t k = 1; k <= parts; ++k) {
      int m = static_cast<int>(rng_.Uniform(1, 5));
      int b = static_cast<int>(rng_.Uniform(1, 5));
      char mfgr[32], brand[16];
      std::snprintf(mfgr, sizeof(mfgr), "Manufacturer#%d", m);
      std::snprintf(brand, sizeof(brand), "Brand#%d%d", m, b);
      std::string type = Pick(rng_, kTypes1, 6) + " " +
                         Pick(rng_, kTypes2, 5) + " " + Pick(rng_, kTypes3, 5);
      std::string container =
          Pick(rng_, kContainers1, 5) + " " + Pick(rng_, kContainers2, 5);
      rows.push_back(Row{Value::Int(k), Value::String(PartName(rng_)),
                         Value::String(mfgr), Value::String(brand),
                         Value::String(std::move(type)),
                         Value::Int(rng_.Uniform(1, 50)),
                         Value::String(std::move(container)),
                         Value::Double(RetailPrice(k)),
                         Value::String(rng_.AlphaString(5, 22))});
    }
    PHX_RETURN_IF_ERROR(bulk_load("part", std::move(rows)));
  }

  // PARTSUPP: 4 suppliers per part, scattered per the dbgen formula.
  {
    std::vector<Row> rows;
    rows.reserve(static_cast<size_t>(parts * 4));
    for (int64_t pk = 1; pk <= parts; ++pk) {
      for (int i = 0; i < 4; ++i) {
        rows.push_back(Row{Value::Int(pk),
                           Value::Int(PsSuppkey(pk, i, suppliers)),
                           Value::Int(rng_.Uniform(1, 9999)),
                           Value::Double(Money(rng_, 1.00, 1000.00)),
                           Value::String(rng_.AlphaString(10, 40))});
      }
    }
    PHX_RETURN_IF_ERROR(bulk_load("partsupp", std::move(rows)));
  }

  // CUSTOMER. "special requests" comments feed Q13's NOT LIKE filter.
  {
    std::vector<Row> rows;
    rows.reserve(static_cast<size_t>(customers));
    for (int64_t k = 1; k <= customers; ++k) {
      char name[32];
      std::snprintf(name, sizeof(name), "Customer#%09lld",
                    static_cast<long long>(k));
      int64_t nation = k <= 25 ? k - 1 : rng_.Uniform(0, 24);
      rows.push_back(Row{Value::Int(k), Value::String(name),
                         Value::String(rng_.AlphaString(10, 30)),
                         Value::Int(nation),
                         Value::String(Phone(rng_, nation)),
                         Value::Double(Money(rng_, -999.99, 9999.99)),
                         Value::String(Pick(rng_, kSegments, 5)),
                         Value::String(rng_.AlphaString(29, 80))});
    }
    PHX_RETURN_IF_ERROR(bulk_load("customer", std::move(rows)));
  }

  // ORDERS + LINEITEM (1..7 lineitems per order).
  {
    std::vector<Row> order_rows;
    std::vector<Row> line_rows;
    order_rows.reserve(static_cast<size_t>(orders));
    line_rows.reserve(static_cast<size_t>(orders * 4));
    for (int64_t ok = 1; ok <= orders; ++ok) {
      // As in dbgen, a third of customers never place orders (custkey % 3
      // == 0), which Q13's zero-bucket and Q22's NOT IN depend on.
      int64_t custkey = rng_.Uniform(1, customers);
      while (customers >= 3 && custkey % 3 == 0) {
        custkey = rng_.Uniform(1, customers);
      }
      int64_t orderdate = rng_.Uniform(StartDate(), EndDate() - 151);
      int lines = static_cast<int>(rng_.Uniform(1, 7));
      double total = 0.0;
      bool all_filled = true;
      for (int ln = 1; ln <= lines; ++ln) {
        int64_t partkey = rng_.Uniform(1, parts);
        int64_t suppkey =
            PsSuppkey(partkey, static_cast<int>(rng_.Uniform(0, 3)),
                      suppliers);
        double qty = static_cast<double>(rng_.Uniform(1, 50));
        double price = qty * RetailPrice(partkey) / 10.0;
        double discount = static_cast<double>(rng_.Uniform(0, 10)) / 100.0;
        double tax = static_cast<double>(rng_.Uniform(0, 8)) / 100.0;
        int64_t shipdate = orderdate + rng_.Uniform(1, 121);
        int64_t commitdate = orderdate + rng_.Uniform(30, 90);
        int64_t receiptdate = shipdate + rng_.Uniform(1, 30);
        std::string returnflag =
            receiptdate <= CurrentDate()
                ? (rng_.Next64() % 2 == 0 ? "R" : "A")
                : "N";
        std::string linestatus = shipdate > CurrentDate() ? "O" : "F";
        if (linestatus == "O") all_filled = false;
        total += price * (1.0 + tax) * (1.0 - discount);
        line_rows.push_back(
            Row{Value::Int(ok), Value::Int(partkey), Value::Int(suppkey),
                Value::Int(ln), Value::Double(qty), Value::Double(price),
                Value::Double(discount), Value::Double(tax),
                Value::String(std::move(returnflag)),
                Value::String(std::move(linestatus)), Value::Date(shipdate),
                Value::Date(commitdate), Value::Date(receiptdate),
                Value::String(Pick(rng_, kInstructions, 4)),
                Value::String(Pick(rng_, kShipModes, 7)),
                Value::String(rng_.AlphaString(10, 43))});
      }
      std::string status = all_filled ? "F" : "O";
      if (!all_filled && rng_.Next64() % 20 == 0) status = "P";
      char clerk[24];
      std::snprintf(clerk, sizeof(clerk), "Clerk#%09lld",
                    static_cast<long long>(rng_.Uniform(1, 1000)));
      std::string comment = rng_.AlphaString(19, 78);
      if (ok % 10 == 3) comment += " special requests ";
      order_rows.push_back(
          Row{Value::Int(ok), Value::Int(custkey), Value::String(status),
              Value::Double(total), Value::Date(orderdate),
              Value::String(Pick(rng_, kPriorities, 5)), Value::String(clerk),
              Value::Int(0), Value::String(std::move(comment))});
    }
    PHX_RETURN_IF_ERROR(bulk_load("orders", std::move(order_rows)));
    PHX_RETURN_IF_ERROR(bulk_load("lineitem", std::move(line_rows)));
  }

  next_rf_orderkey_ = orders + 1;
  pending_rf_ranges_.clear();
  return server->Checkpoint();
}

std::vector<std::vector<std::string>> TpchGenerator::Rf1Transactions() {
  const int64_t count = RfOrderCount();
  const int64_t first = next_rf_orderkey_;
  next_rf_orderkey_ += count;
  pending_rf_ranges_.emplace_back(first, first + count - 1);

  const int64_t customers = CustomerCount();
  const int64_t parts = PartCount();
  const int64_t suppliers = SupplierCount();

  // Two transactions, each receiving one half of the key range; each
  // transaction submits two INSERT requests (orders, lineitems).
  std::vector<std::vector<std::string>> txns;
  int64_t half = count / 2;
  for (int t = 0; t < 2; ++t) {
    int64_t lo = first + (t == 0 ? 0 : half);
    int64_t hi = (t == 0) ? first + half - 1 : first + count - 1;
    if (hi < lo) hi = lo;

    std::string orders_sql = "INSERT INTO orders VALUES ";
    std::string lines_sql = "INSERT INTO lineitem VALUES ";
    bool first_order = true;
    bool first_line = true;
    for (int64_t ok = lo; ok <= hi; ++ok) {
      int64_t orderdate = rng_.Uniform(StartDate(), EndDate() - 151);
      int lines = static_cast<int>(rng_.Uniform(1, 7));
      double total = 0.0;
      for (int ln = 1; ln <= lines; ++ln) {
        int64_t partkey = rng_.Uniform(1, parts);
        int64_t suppkey = PsSuppkey(
            partkey, static_cast<int>(rng_.Uniform(0, 3)), suppliers);
        double qty = static_cast<double>(rng_.Uniform(1, 50));
        double price = qty * RetailPrice(partkey) / 10.0;
        total += price;
        int64_t shipdate = orderdate + rng_.Uniform(1, 121);
        if (!first_line) lines_sql += ",";
        first_line = false;
        lines_sql += "(" + std::to_string(ok) + "," +
                     std::to_string(partkey) + "," + std::to_string(suppkey) +
                     "," + std::to_string(ln) + "," + std::to_string(qty) +
                     "," + std::to_string(price) + ",0.05,0.04,'N','O'," +
                     Value::Date(shipdate).ToSqlLiteral() + "," +
                     Value::Date(orderdate + 45).ToSqlLiteral() + "," +
                     Value::Date(shipdate + 7).ToSqlLiteral() +
                     ",'NONE','MAIL','rf1')";
      }
      int64_t custkey = rng_.Uniform(1, customers);
      while (customers >= 3 && custkey % 3 == 0) {
        custkey = rng_.Uniform(1, customers);
      }
      if (!first_order) orders_sql += ",";
      first_order = false;
      orders_sql += "(" + std::to_string(ok) + "," +
                    std::to_string(custkey) + ",'O'," +
                    std::to_string(total) + "," +
                    Value::Date(orderdate).ToSqlLiteral() +
                    ",'3-MEDIUM','Clerk#000000001',0,'rf1')";
    }
    txns.push_back({orders_sql, lines_sql});
  }
  return txns;
}

std::vector<std::vector<std::string>> TpchGenerator::Rf2Transactions() {
  int64_t first;
  int64_t last;
  if (!pending_rf_ranges_.empty()) {
    // Remove the oldest refresh batch.
    first = pending_rf_ranges_.front().first;
    last = pending_rf_ranges_.front().second;
    pending_rf_ranges_.erase(pending_rf_ranges_.begin());
  } else {
    // No refresh batch pending: delete (and effectively retire) the lowest
    // live base keys, as dbgen's delete stream does.
    first = base_delete_cursor_;
    last = first + RfOrderCount() - 1;
    base_delete_cursor_ = last + 1;
  }
  int64_t half = (last - first + 1) / 2;
  std::vector<std::vector<std::string>> txns;
  for (int t = 0; t < 2; ++t) {
    int64_t lo = first + (t == 0 ? 0 : half);
    int64_t hi = (t == 0) ? first + half - 1 : last;
    if (hi < lo) hi = lo;
    txns.push_back(
        {"DELETE FROM orders WHERE o_orderkey BETWEEN " + std::to_string(lo) +
             " AND " + std::to_string(hi),
         "DELETE FROM lineitem WHERE l_orderkey BETWEEN " +
             std::to_string(lo) + " AND " + std::to_string(hi)});
  }
  return txns;
}

// ---------------------------------------------------------------------------
// The 22 queries
// ---------------------------------------------------------------------------

std::string TpchQuery(int number, double q11_fraction) {
  switch (number) {
    case 1:  // Pricing summary report.
      return
          "SELECT l_returnflag, l_linestatus, SUM(l_quantity) AS sum_qty, "
          "SUM(l_extendedprice) AS sum_base_price, "
          "SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price, "
          "SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS "
          "sum_charge, AVG(l_quantity) AS avg_qty, "
          "AVG(l_extendedprice) AS avg_price, AVG(l_discount) AS avg_disc, "
          "COUNT(*) AS count_order "
          "FROM lineitem WHERE l_shipdate <= DATE '1998-09-02' "
          "GROUP BY l_returnflag, l_linestatus "
          "ORDER BY l_returnflag, l_linestatus";

    case 2:  // Minimum cost supplier. Adaptation: the correlated MIN
             // subquery is rewritten as a per-part derived aggregate.
      return
          "SELECT TOP 100 s_acctbal, s_name, n_name, p_partkey, p_mfgr, "
          "s_address, s_phone, s_comment "
          "FROM part, supplier, partsupp, nation, region, "
          "(SELECT ps_partkey AS mn_partkey, MIN(ps_supplycost) AS mn_cost "
          " FROM partsupp, supplier, nation, region "
          " WHERE s_suppkey = ps_suppkey AND s_nationkey = n_nationkey "
          " AND n_regionkey = r_regionkey AND r_name = 'EUROPE' "
          " GROUP BY ps_partkey) m "
          "WHERE p_partkey = ps_partkey AND s_suppkey = ps_suppkey "
          "AND p_size = 15 AND p_type LIKE '%BRASS' "
          "AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey "
          "AND r_name = 'EUROPE' AND ps_partkey = mn_partkey "
          "AND ps_supplycost = mn_cost "
          "ORDER BY s_acctbal DESC, n_name, s_name, p_partkey";

    case 3:  // Shipping priority.
      return
          "SELECT TOP 10 l_orderkey, "
          "SUM(l_extendedprice * (1 - l_discount)) AS revenue, o_orderdate, "
          "o_shippriority "
          "FROM customer, orders, lineitem "
          "WHERE c_mktsegment = 'BUILDING' AND c_custkey = o_custkey "
          "AND l_orderkey = o_orderkey AND o_orderdate < DATE '1995-03-15' "
          "AND l_shipdate > DATE '1995-03-15' "
          "GROUP BY l_orderkey, o_orderdate, o_shippriority "
          "ORDER BY revenue DESC, o_orderdate";

    case 4:  // Order priority checking. Adaptation: EXISTS rewritten as IN.
      return
          "SELECT o_orderpriority, COUNT(*) AS order_count FROM orders "
          "WHERE o_orderdate >= DATE '1993-07-01' "
          "AND o_orderdate < DATE '1993-10-01' "
          "AND o_orderkey IN (SELECT l_orderkey FROM lineitem "
          " WHERE l_commitdate < l_receiptdate) "
          "GROUP BY o_orderpriority ORDER BY o_orderpriority";

    case 5:  // Local supplier volume.
      return
          "SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue "
          "FROM customer, orders, lineitem, supplier, nation, region "
          "WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey "
          "AND l_suppkey = s_suppkey AND c_nationkey = s_nationkey "
          "AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey "
          "AND r_name = 'ASIA' AND o_orderdate >= DATE '1994-01-01' "
          "AND o_orderdate < DATE '1995-01-01' "
          "GROUP BY n_name ORDER BY revenue DESC";

    case 6:  // Forecasting revenue change.
      return
          "SELECT SUM(l_extendedprice * l_discount) AS revenue "
          "FROM lineitem WHERE l_shipdate >= DATE '1994-01-01' "
          "AND l_shipdate < DATE '1995-01-01' "
          "AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24";

    case 7:  // Volume shipping. Adaptation: select aliases spelled out in
             // GROUP BY (this dialect groups by expressions, not aliases).
      return
          "SELECT n1.n_name AS supp_nation, n2.n_name AS cust_nation, "
          "YEAR(l_shipdate) AS l_year, "
          "SUM(l_extendedprice * (1 - l_discount)) AS revenue "
          "FROM supplier, lineitem, orders, customer, nation n1, nation n2 "
          "WHERE s_suppkey = l_suppkey AND o_orderkey = l_orderkey "
          "AND c_custkey = o_custkey AND s_nationkey = n1.n_nationkey "
          "AND c_nationkey = n2.n_nationkey "
          "AND ((n1.n_name = 'FRANCE' AND n2.n_name = 'GERMANY') "
          " OR (n1.n_name = 'GERMANY' AND n2.n_name = 'FRANCE')) "
          "AND l_shipdate BETWEEN DATE '1995-01-01' AND DATE '1996-12-31' "
          "GROUP BY n1.n_name, n2.n_name, YEAR(l_shipdate) "
          "ORDER BY supp_nation, cust_nation, l_year";

    case 8:  // National market share.
      return
          "SELECT o_year, "
          "SUM(CASE WHEN nation = 'BRAZIL' THEN volume ELSE 0.0 END) / "
          "SUM(volume) AS mkt_share "
          "FROM (SELECT YEAR(o_orderdate) AS o_year, "
          " l_extendedprice * (1 - l_discount) AS volume, "
          " n2.n_name AS nation "
          " FROM part, supplier, lineitem, orders, customer, "
          " nation n1, nation n2, region "
          " WHERE p_partkey = l_partkey AND s_suppkey = l_suppkey "
          " AND l_orderkey = o_orderkey AND o_custkey = c_custkey "
          " AND c_nationkey = n1.n_nationkey "
          " AND n1.n_regionkey = r_regionkey AND r_name = 'AMERICA' "
          " AND s_nationkey = n2.n_nationkey "
          " AND o_orderdate BETWEEN DATE '1995-01-01' AND DATE '1996-12-31' "
          " AND p_type = 'ECONOMY ANODIZED STEEL') all_nations "
          "GROUP BY o_year ORDER BY o_year";

    case 9:  // Product type profit measure.
      return
          "SELECT nation, o_year, SUM(amount) AS sum_profit "
          "FROM (SELECT n_name AS nation, YEAR(o_orderdate) AS o_year, "
          " l_extendedprice * (1 - l_discount) - "
          " ps_supplycost * l_quantity AS amount "
          " FROM part, supplier, lineitem, partsupp, orders, nation "
          " WHERE s_suppkey = l_suppkey AND ps_suppkey = l_suppkey "
          " AND ps_partkey = l_partkey AND p_partkey = l_partkey "
          " AND o_orderkey = l_orderkey AND s_nationkey = n_nationkey "
          " AND p_name LIKE '%green%') profit "
          "GROUP BY nation, o_year ORDER BY nation, o_year DESC";

    case 10:  // Returned item reporting.
      return
          "SELECT TOP 20 c_custkey, c_name, "
          "SUM(l_extendedprice * (1 - l_discount)) AS revenue, c_acctbal, "
          "n_name, c_address, c_phone, c_comment "
          "FROM customer, orders, lineitem, nation "
          "WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey "
          "AND o_orderdate >= DATE '1993-10-01' "
          "AND o_orderdate < DATE '1994-01-01' AND l_returnflag = 'R' "
          "AND c_nationkey = n_nationkey "
          "GROUP BY c_custkey, c_name, c_acctbal, c_phone, n_name, "
          "c_address, c_comment "
          "ORDER BY revenue DESC";

    case 11: {  // Important stock identification — exactly paper Figure 5,
                // with the Fraction parameter varying result-set size.
      char fraction[32];
      std::snprintf(fraction, sizeof(fraction), "%.10f", q11_fraction);
      return std::string(
                 "SELECT ps_partkey, "
                 "SUM(ps_supplycost * ps_availqty) AS value "
                 "FROM partsupp, supplier, nation "
                 "WHERE ps_suppkey = s_suppkey "
                 "AND s_nationkey = n_nationkey AND n_name = 'GERMANY' "
                 "GROUP BY ps_partkey "
                 "HAVING SUM(ps_supplycost * ps_availqty) > "
                 "(SELECT SUM(ps_supplycost * ps_availqty) * ") +
             fraction +
             " FROM partsupp, supplier, nation "
             "WHERE ps_suppkey = s_suppkey "
             "AND s_nationkey = n_nationkey AND n_name = 'GERMANY') "
             "ORDER BY value DESC";
    }

    case 12:  // Shipping modes and order priority.
      return
          "SELECT l_shipmode, "
          "SUM(CASE WHEN o_orderpriority = '1-URGENT' "
          " OR o_orderpriority = '2-HIGH' THEN 1 ELSE 0 END) AS "
          "high_line_count, "
          "SUM(CASE WHEN o_orderpriority <> '1-URGENT' "
          " AND o_orderpriority <> '2-HIGH' THEN 1 ELSE 0 END) AS "
          "low_line_count "
          "FROM orders, lineitem "
          "WHERE o_orderkey = l_orderkey AND l_shipmode IN ('MAIL', 'SHIP') "
          "AND l_commitdate < l_receiptdate AND l_shipdate < l_commitdate "
          "AND l_receiptdate >= DATE '1994-01-01' "
          "AND l_receiptdate < DATE '1995-01-01' "
          "GROUP BY l_shipmode ORDER BY l_shipmode";

    case 13:  // Customer distribution. Adaptation: the LEFT OUTER JOIN is
              // replaced by an inner join, so the zero-order bucket is
              // omitted (documented in DESIGN.md).
      return
          "SELECT c_count, COUNT(*) AS custdist "
          "FROM (SELECT c_custkey AS ck, COUNT(o_orderkey) AS c_count "
          " FROM customer, orders WHERE c_custkey = o_custkey "
          " AND o_comment NOT LIKE '%special%requests%' "
          " GROUP BY c_custkey) c_orders "
          "GROUP BY c_count ORDER BY custdist DESC, c_count DESC";

    case 14:  // Promotion effect.
      return
          "SELECT 100.00 * SUM(CASE WHEN p_type LIKE 'PROMO%' "
          "THEN l_extendedprice * (1 - l_discount) ELSE 0.0 END) / "
          "SUM(l_extendedprice * (1 - l_discount)) AS promo_revenue "
          "FROM lineitem, part WHERE l_partkey = p_partkey "
          "AND l_shipdate >= DATE '1995-09-01' "
          "AND l_shipdate < DATE '1995-10-01'";

    case 15:  // Top supplier. Adaptation: the revenue view becomes two
              // copies of a derived table (no CREATE VIEW in this dialect).
      return
          "SELECT s_suppkey, s_name, s_address, s_phone, total_revenue "
          "FROM supplier, "
          "(SELECT l_suppkey AS rs_suppkey, "
          " SUM(l_extendedprice * (1 - l_discount)) AS total_revenue "
          " FROM lineitem WHERE l_shipdate >= DATE '1996-01-01' "
          " AND l_shipdate < DATE '1996-04-01' GROUP BY l_suppkey) revenue "
          "WHERE s_suppkey = rs_suppkey AND total_revenue = "
          "(SELECT MAX(tr) FROM (SELECT "
          " SUM(l_extendedprice * (1 - l_discount)) AS tr "
          " FROM lineitem WHERE l_shipdate >= DATE '1996-01-01' "
          " AND l_shipdate < DATE '1996-04-01' GROUP BY l_suppkey) mx) "
          "ORDER BY s_suppkey";

    case 16:  // Parts/supplier relationship.
      return
          "SELECT p_brand, p_type, p_size, "
          "COUNT(DISTINCT ps_suppkey) AS supplier_cnt "
          "FROM partsupp, part WHERE p_partkey = ps_partkey "
          "AND p_brand <> 'Brand#45' AND p_type NOT LIKE 'MEDIUM POLISHED%' "
          "AND p_size IN (49, 14, 23, 45, 19, 3, 36, 9) "
          "AND ps_suppkey NOT IN (SELECT s_suppkey FROM supplier "
          " WHERE s_comment LIKE '%Customer%Complaints%') "
          "GROUP BY p_brand, p_type, p_size "
          "ORDER BY supplier_cnt DESC, p_brand, p_type, p_size";

    case 17:  // Small-quantity-order revenue. Adaptation: correlated AVG
              // becomes a per-part derived aggregate.
      return
          "SELECT SUM(l_extendedprice) / 7.0 AS avg_yearly "
          "FROM lineitem, part, "
          "(SELECT l_partkey AS ap, 0.2 * AVG(l_quantity) AS avg_qty "
          " FROM lineitem GROUP BY l_partkey) part_avg "
          "WHERE p_partkey = l_partkey AND p_brand = 'Brand#23' "
          "AND p_container = 'MED BOX' AND l_partkey = ap "
          "AND l_quantity < avg_qty";

    case 18:  // Large volume customer.
      return
          "SELECT TOP 100 c_name, c_custkey, o_orderkey, o_orderdate, "
          "o_totalprice, SUM(l_quantity) AS total_qty "
          "FROM customer, orders, lineitem "
          "WHERE o_orderkey IN (SELECT l_orderkey FROM lineitem "
          " GROUP BY l_orderkey HAVING SUM(l_quantity) > 212) "
          "AND c_custkey = o_custkey AND o_orderkey = l_orderkey "
          "GROUP BY c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice "
          "ORDER BY o_totalprice DESC, o_orderdate";

    case 19:  // Discounted revenue. Adaptation: the join predicate is
              // hoisted out of the OR branches (standard rewrite).
      return
          "SELECT SUM(l_extendedprice * (1 - l_discount)) AS revenue "
          "FROM lineitem, part WHERE p_partkey = l_partkey "
          "AND ((p_brand = 'Brand#12' "
          " AND p_container IN ('SM CASE', 'SM BOX', 'SM PACK', 'SM PKG') "
          " AND l_quantity >= 1 AND l_quantity <= 11 "
          " AND p_size BETWEEN 1 AND 5) "
          "OR (p_brand = 'Brand#23' "
          " AND p_container IN ('MED BAG', 'MED BOX', 'MED PKG', 'MED PACK') "
          " AND l_quantity >= 10 AND l_quantity <= 20 "
          " AND p_size BETWEEN 1 AND 10) "
          "OR (p_brand = 'Brand#34' "
          " AND p_container IN ('LG CASE', 'LG BOX', 'LG PACK', 'LG PKG') "
          " AND l_quantity >= 20 AND l_quantity <= 30 "
          " AND p_size BETWEEN 1 AND 15)) "
          "AND l_shipmode IN ('AIR', 'REG AIR') "
          "AND l_shipinstruct = 'DELIVER IN PERSON'";

    case 20:  // Potential part promotion. Adaptation: correlated half-sum
              // subquery becomes a derived per-(part,supplier) aggregate.
      return
          "SELECT s_name, s_address FROM supplier, nation "
          "WHERE s_suppkey IN "
          "(SELECT ps_suppkey FROM partsupp, "
          " (SELECT l_partkey AS lp, l_suppkey AS ls, "
          "  0.5 * SUM(l_quantity) AS half_qty FROM lineitem "
          "  WHERE l_shipdate >= DATE '1994-01-01' "
          "  AND l_shipdate < DATE '1995-01-01' "
          "  GROUP BY l_partkey, l_suppkey) shipped "
          " WHERE ps_partkey IN (SELECT p_partkey FROM part "
          "  WHERE p_name LIKE 'forest%') "
          " AND ps_partkey = lp AND ps_suppkey = ls "
          " AND ps_availqty > half_qty) "
          "AND s_nationkey = n_nationkey AND n_name = 'CANADA' "
          "ORDER BY s_name";

    case 21:  // Suppliers who kept orders waiting. Adaptation: the
              // EXISTS/NOT EXISTS pair becomes per-order supplier counts.
      return
          "SELECT TOP 100 s_name, COUNT(*) AS numwait "
          "FROM supplier, lineitem, orders, nation, "
          "(SELECT l_orderkey AS all_ok, "
          " COUNT(DISTINCT l_suppkey) AS nsupp FROM lineitem "
          " GROUP BY l_orderkey) all_supp, "
          "(SELECT l_orderkey AS late_ok, "
          " COUNT(DISTINCT l_suppkey) AS nlate FROM lineitem "
          " WHERE l_receiptdate > l_commitdate GROUP BY l_orderkey) "
          "late_supp "
          "WHERE s_suppkey = l_suppkey AND o_orderkey = l_orderkey "
          "AND o_orderstatus = 'F' AND l_receiptdate > l_commitdate "
          "AND s_nationkey = n_nationkey AND n_name = 'SAUDI ARABIA' "
          "AND l_orderkey = all_ok AND l_orderkey = late_ok "
          "AND nsupp > 1 AND nlate = 1 "
          "GROUP BY s_name ORDER BY numwait DESC, s_name";

    case 22:  // Global sales opportunity. Adaptation: NOT EXISTS becomes
              // NOT IN.
      return
          "SELECT cntrycode, COUNT(*) AS numcust, "
          "SUM(bal) AS totacctbal "
          "FROM (SELECT SUBSTRING(c_phone, 1, 2) AS cntrycode, "
          " c_acctbal AS bal FROM customer "
          " WHERE SUBSTRING(c_phone, 1, 2) IN "
          " ('13', '31', '23', '29', '30', '18', '17') "
          " AND c_acctbal > (SELECT AVG(c_acctbal) FROM customer "
          "  WHERE c_acctbal > 0.0 AND SUBSTRING(c_phone, 1, 2) IN "
          "  ('13', '31', '23', '29', '30', '18', '17')) "
          " AND c_custkey NOT IN (SELECT o_custkey FROM orders)) custsale "
          "GROUP BY cntrycode ORDER BY cntrycode";

    default:
      return "";
  }
}

}  // namespace phoenix::tpc
