#ifndef PHOENIX_ODBC_CAPI_H_
#define PHOENIX_ODBC_CAPI_H_

/// A C-style ODBC shim over the C++ driver-manager stack, mirroring the
/// classic ODBC 3.0 entry points (SQLAllocHandle, SQLDriverConnect,
/// SQLExecDirect, SQLFetch, SQLGetData, SQLGetDiagRec, ...). Existing
/// ODBC-shaped application code ports with search-and-replace; whether the
/// connection goes through the native driver or Phoenix is decided purely
/// by the DRIVER= attribute of the connection string — the paper's
/// deployment story.
///
/// Handles are opaque integers managed by a process-wide registry; the
/// environment handle carries the DriverManager. Return codes follow ODBC:
/// SQL_SUCCESS, SQL_ERROR, SQL_NO_DATA; diagnostics via SQLGetDiagRec.
///
/// Thread safety: handle allocation/free is thread-safe; a single handle
/// must not be used from two threads at once (as in ODBC).

#include <cstdint>

#include "common/schema.h"
#include "odbc/driver_manager.h"

namespace phoenix::odbc::capi {

using SQLRETURN = int16_t;
using SQLHANDLE = uint64_t;
using SQLSMALLINT = int16_t;
using SQLINTEGER = int32_t;
using SQLLEN = int64_t;

constexpr SQLRETURN SQL_SUCCESS = 0;
constexpr SQLRETURN SQL_ERROR = -1;
constexpr SQLRETURN SQL_NO_DATA = 100;
constexpr SQLRETURN SQL_INVALID_HANDLE = -2;

constexpr SQLSMALLINT SQL_HANDLE_ENV = 1;
constexpr SQLSMALLINT SQL_HANDLE_DBC = 2;
constexpr SQLSMALLINT SQL_HANDLE_STMT = 3;

/// Statement attributes (SQLSetStmtAttr).
constexpr SQLINTEGER SQL_ATTR_ROW_ARRAY_SIZE = 27;

/// Registers the DriverManager that environment handles bind to. Call once
/// at startup (tests/applications own the manager's lifetime; it must
/// outlive all handles).
void SetProcessDriverManager(DriverManager* dm);

SQLRETURN SQLAllocHandle(SQLSMALLINT handle_type, SQLHANDLE input_handle,
                         SQLHANDLE* output_handle);
SQLRETURN SQLFreeHandle(SQLSMALLINT handle_type, SQLHANDLE handle);

/// Connects a DBC handle using a full connection string
/// ("DRIVER=phoenix;UID=...").
SQLRETURN SQLDriverConnect(SQLHANDLE dbc, const char* conn_str);
SQLRETURN SQLDisconnect(SQLHANDLE dbc);

SQLRETURN SQLExecDirect(SQLHANDLE stmt, const char* sql);
SQLRETURN SQLFetch(SQLHANDLE stmt);
SQLRETURN SQLNumResultCols(SQLHANDLE stmt, SQLSMALLINT* count);
SQLRETURN SQLDescribeCol(SQLHANDLE stmt, SQLSMALLINT column,
                         char* name_buffer, SQLSMALLINT buffer_length,
                         common::ValueType* type, SQLSMALLINT* nullable);
SQLRETURN SQLRowCount(SQLHANDLE stmt, SQLLEN* count);
SQLRETURN SQLCloseCursor(SQLHANDLE stmt);
SQLRETURN SQLSetStmtAttr(SQLHANDLE stmt, SQLINTEGER attribute,
                         SQLLEN value);

/// Retrieves column `column` (1-based) of the current fetched row.
SQLRETURN SQLGetData(SQLHANDLE stmt, SQLSMALLINT column,
                     common::Value* value);

/// Last diagnostic for a handle; `record` must be 1 (one record kept).
SQLRETURN SQLGetDiagRec(SQLSMALLINT handle_type, SQLHANDLE handle,
                        SQLSMALLINT record, char* message_buffer,
                        SQLSMALLINT buffer_length,
                        common::StatusCode* code);

/// Test/teardown helper: frees every outstanding handle.
void ResetAllHandlesForTesting();

}  // namespace phoenix::odbc::capi

#endif  // PHOENIX_ODBC_CAPI_H_
