#include "odbc/capi.h"

#include <cstring>
#include <map>
#include <memory>
#include <mutex>

namespace phoenix::odbc::capi {

namespace {

struct EnvState {
  DriverManager* dm = nullptr;
  common::Status last_error;
};

struct DbcState {
  SQLHANDLE env = 0;
  ConnectionPtr conn;
  common::Status last_error;
};

struct StmtState {
  SQLHANDLE dbc = 0;
  StatementPtr stmt;
  common::Row current_row;
  bool row_valid = false;
  common::Status last_error;
};

struct Registry {
  std::mutex mu;
  DriverManager* process_dm = nullptr;
  SQLHANDLE next_handle = 1;
  std::map<SQLHANDLE, std::unique_ptr<EnvState>> envs;
  std::map<SQLHANDLE, std::unique_ptr<DbcState>> dbcs;
  std::map<SQLHANDLE, std::unique_ptr<StmtState>> stmts;
};

Registry& registry() {
  static Registry* instance = new Registry();
  return *instance;
}

EnvState* FindEnv(SQLHANDLE handle) {
  auto it = registry().envs.find(handle);
  return it == registry().envs.end() ? nullptr : it->second.get();
}

DbcState* FindDbc(SQLHANDLE handle) {
  auto it = registry().dbcs.find(handle);
  return it == registry().dbcs.end() ? nullptr : it->second.get();
}

StmtState* FindStmt(SQLHANDLE handle) {
  auto it = registry().stmts.find(handle);
  return it == registry().stmts.end() ? nullptr : it->second.get();
}

}  // namespace

void SetProcessDriverManager(DriverManager* dm) {
  std::lock_guard<std::mutex> lock(registry().mu);
  registry().process_dm = dm;
}

void ResetAllHandlesForTesting() {
  std::lock_guard<std::mutex> lock(registry().mu);
  registry().stmts.clear();
  registry().dbcs.clear();
  registry().envs.clear();
  registry().process_dm = nullptr;
}

SQLRETURN SQLAllocHandle(SQLSMALLINT handle_type, SQLHANDLE input_handle,
                         SQLHANDLE* output_handle) {
  if (output_handle == nullptr) return SQL_ERROR;
  std::lock_guard<std::mutex> lock(registry().mu);
  switch (handle_type) {
    case SQL_HANDLE_ENV: {
      if (registry().process_dm == nullptr) return SQL_ERROR;
      auto env = std::make_unique<EnvState>();
      env->dm = registry().process_dm;
      SQLHANDLE handle = registry().next_handle++;
      registry().envs.emplace(handle, std::move(env));
      *output_handle = handle;
      return SQL_SUCCESS;
    }
    case SQL_HANDLE_DBC: {
      if (FindEnv(input_handle) == nullptr) return SQL_INVALID_HANDLE;
      auto dbc = std::make_unique<DbcState>();
      dbc->env = input_handle;
      SQLHANDLE handle = registry().next_handle++;
      registry().dbcs.emplace(handle, std::move(dbc));
      *output_handle = handle;
      return SQL_SUCCESS;
    }
    case SQL_HANDLE_STMT: {
      DbcState* dbc = FindDbc(input_handle);
      if (dbc == nullptr) return SQL_INVALID_HANDLE;
      if (dbc->conn == nullptr) {
        dbc->last_error =
            common::Status::InvalidArgument("DBC is not connected");
        return SQL_ERROR;
      }
      auto created = dbc->conn->CreateStatement();
      if (!created.ok()) {
        dbc->last_error = created.status();
        return SQL_ERROR;
      }
      auto stmt = std::make_unique<StmtState>();
      stmt->dbc = input_handle;
      stmt->stmt = std::move(created).value();
      SQLHANDLE handle = registry().next_handle++;
      registry().stmts.emplace(handle, std::move(stmt));
      *output_handle = handle;
      return SQL_SUCCESS;
    }
    default:
      return SQL_ERROR;
  }
}

SQLRETURN SQLFreeHandle(SQLSMALLINT handle_type, SQLHANDLE handle) {
  std::lock_guard<std::mutex> lock(registry().mu);
  switch (handle_type) {
    case SQL_HANDLE_ENV: {
      // ODBC requires children to be freed first; enforce it.
      for (const auto& [h, dbc] : registry().dbcs) {
        if (dbc->env == handle) return SQL_ERROR;
      }
      return registry().envs.erase(handle) > 0 ? SQL_SUCCESS
                                               : SQL_INVALID_HANDLE;
    }
    case SQL_HANDLE_DBC: {
      for (const auto& [h, stmt] : registry().stmts) {
        if (stmt->dbc == handle) return SQL_ERROR;
      }
      return registry().dbcs.erase(handle) > 0 ? SQL_SUCCESS
                                               : SQL_INVALID_HANDLE;
    }
    case SQL_HANDLE_STMT:
      return registry().stmts.erase(handle) > 0 ? SQL_SUCCESS
                                                : SQL_INVALID_HANDLE;
    default:
      return SQL_ERROR;
  }
}

SQLRETURN SQLDriverConnect(SQLHANDLE dbc_handle, const char* conn_str) {
  std::lock_guard<std::mutex> lock(registry().mu);
  DbcState* dbc = FindDbc(dbc_handle);
  if (dbc == nullptr) return SQL_INVALID_HANDLE;
  EnvState* env = FindEnv(dbc->env);
  if (env == nullptr || conn_str == nullptr) return SQL_ERROR;
  auto conn = env->dm->Connect(conn_str);
  if (!conn.ok()) {
    dbc->last_error = conn.status();
    return SQL_ERROR;
  }
  dbc->conn = std::move(conn).value();
  dbc->last_error = common::Status::OK();
  return SQL_SUCCESS;
}

SQLRETURN SQLDisconnect(SQLHANDLE dbc_handle) {
  std::lock_guard<std::mutex> lock(registry().mu);
  DbcState* dbc = FindDbc(dbc_handle);
  if (dbc == nullptr) return SQL_INVALID_HANDLE;
  if (dbc->conn == nullptr) return SQL_ERROR;
  common::Status st = dbc->conn->Disconnect();
  dbc->conn.reset();
  if (!st.ok()) {
    dbc->last_error = st;
    return SQL_ERROR;
  }
  return SQL_SUCCESS;
}

SQLRETURN SQLExecDirect(SQLHANDLE stmt_handle, const char* sql) {
  std::lock_guard<std::mutex> lock(registry().mu);
  StmtState* stmt = FindStmt(stmt_handle);
  if (stmt == nullptr) return SQL_INVALID_HANDLE;
  if (sql == nullptr) return SQL_ERROR;
  stmt->row_valid = false;
  common::Status st = stmt->stmt->ExecDirect(sql);
  if (!st.ok()) {
    stmt->last_error = st;
    return SQL_ERROR;
  }
  stmt->last_error = common::Status::OK();
  return SQL_SUCCESS;
}

SQLRETURN SQLFetch(SQLHANDLE stmt_handle) {
  std::lock_guard<std::mutex> lock(registry().mu);
  StmtState* stmt = FindStmt(stmt_handle);
  if (stmt == nullptr) return SQL_INVALID_HANDLE;
  auto more = stmt->stmt->Fetch(&stmt->current_row);
  if (!more.ok()) {
    stmt->last_error = more.status();
    stmt->row_valid = false;
    return SQL_ERROR;
  }
  stmt->row_valid = *more;
  return *more ? SQL_SUCCESS : SQL_NO_DATA;
}

SQLRETURN SQLNumResultCols(SQLHANDLE stmt_handle, SQLSMALLINT* count) {
  std::lock_guard<std::mutex> lock(registry().mu);
  StmtState* stmt = FindStmt(stmt_handle);
  if (stmt == nullptr) return SQL_INVALID_HANDLE;
  if (count == nullptr) return SQL_ERROR;
  *count = stmt->stmt->HasResultSet()
               ? static_cast<SQLSMALLINT>(
                     stmt->stmt->ResultSchema().num_columns())
               : 0;
  return SQL_SUCCESS;
}

SQLRETURN SQLDescribeCol(SQLHANDLE stmt_handle, SQLSMALLINT column,
                         char* name_buffer, SQLSMALLINT buffer_length,
                         common::ValueType* type, SQLSMALLINT* nullable) {
  std::lock_guard<std::mutex> lock(registry().mu);
  StmtState* stmt = FindStmt(stmt_handle);
  if (stmt == nullptr) return SQL_INVALID_HANDLE;
  if (!stmt->stmt->HasResultSet()) return SQL_ERROR;
  const common::Schema& schema = stmt->stmt->ResultSchema();
  if (column < 1 || static_cast<size_t>(column) > schema.num_columns()) {
    return SQL_ERROR;
  }
  const common::ColumnDef& col =
      schema.column(static_cast<size_t>(column - 1));
  if (name_buffer != nullptr && buffer_length > 0) {
    std::strncpy(name_buffer, col.name.c_str(),
                 static_cast<size_t>(buffer_length - 1));
    name_buffer[buffer_length - 1] = '\0';
  }
  if (type != nullptr) *type = col.type;
  if (nullable != nullptr) *nullable = col.nullable ? 1 : 0;
  return SQL_SUCCESS;
}

SQLRETURN SQLRowCount(SQLHANDLE stmt_handle, SQLLEN* count) {
  std::lock_guard<std::mutex> lock(registry().mu);
  StmtState* stmt = FindStmt(stmt_handle);
  if (stmt == nullptr) return SQL_INVALID_HANDLE;
  if (count == nullptr) return SQL_ERROR;
  *count = stmt->stmt->RowCount();
  return SQL_SUCCESS;
}

SQLRETURN SQLCloseCursor(SQLHANDLE stmt_handle) {
  std::lock_guard<std::mutex> lock(registry().mu);
  StmtState* stmt = FindStmt(stmt_handle);
  if (stmt == nullptr) return SQL_INVALID_HANDLE;
  stmt->row_valid = false;
  common::Status st = stmt->stmt->CloseCursor();
  if (!st.ok()) {
    stmt->last_error = st;
    return SQL_ERROR;
  }
  return SQL_SUCCESS;
}

SQLRETURN SQLSetStmtAttr(SQLHANDLE stmt_handle, SQLINTEGER attribute,
                         SQLLEN value) {
  std::lock_guard<std::mutex> lock(registry().mu);
  StmtState* stmt = FindStmt(stmt_handle);
  if (stmt == nullptr) return SQL_INVALID_HANDLE;
  if (attribute == SQL_ATTR_ROW_ARRAY_SIZE && value > 0) {
    stmt->stmt->attrs().row_array_size = static_cast<uint64_t>(value);
    return SQL_SUCCESS;
  }
  return SQL_ERROR;
}

SQLRETURN SQLGetData(SQLHANDLE stmt_handle, SQLSMALLINT column,
                     common::Value* value) {
  std::lock_guard<std::mutex> lock(registry().mu);
  StmtState* stmt = FindStmt(stmt_handle);
  if (stmt == nullptr) return SQL_INVALID_HANDLE;
  if (value == nullptr || !stmt->row_valid) return SQL_ERROR;
  if (column < 1 ||
      static_cast<size_t>(column) > stmt->current_row.size()) {
    return SQL_ERROR;
  }
  *value = stmt->current_row[static_cast<size_t>(column - 1)];
  return SQL_SUCCESS;
}

SQLRETURN SQLGetDiagRec(SQLSMALLINT handle_type, SQLHANDLE handle,
                        SQLSMALLINT record, char* message_buffer,
                        SQLSMALLINT buffer_length,
                        common::StatusCode* code) {
  if (record != 1) return SQL_NO_DATA;
  std::lock_guard<std::mutex> lock(registry().mu);
  const common::Status* st = nullptr;
  switch (handle_type) {
    case SQL_HANDLE_ENV: {
      EnvState* env = FindEnv(handle);
      if (env == nullptr) return SQL_INVALID_HANDLE;
      st = &env->last_error;
      break;
    }
    case SQL_HANDLE_DBC: {
      DbcState* dbc = FindDbc(handle);
      if (dbc == nullptr) return SQL_INVALID_HANDLE;
      st = &dbc->last_error;
      break;
    }
    case SQL_HANDLE_STMT: {
      StmtState* stmt = FindStmt(handle);
      if (stmt == nullptr) return SQL_INVALID_HANDLE;
      st = &stmt->last_error;
      break;
    }
    default:
      return SQL_ERROR;
  }
  if (st->ok()) return SQL_NO_DATA;
  if (code != nullptr) *code = st->code();
  if (message_buffer != nullptr && buffer_length > 0) {
    std::strncpy(message_buffer, st->message().c_str(),
                 static_cast<size_t>(buffer_length - 1));
    message_buffer[buffer_length - 1] = '\0';
  }
  return SQL_SUCCESS;
}

}  // namespace phoenix::odbc::capi
