#ifndef PHOENIX_ODBC_DRIVER_MANAGER_H_
#define PHOENIX_ODBC_DRIVER_MANAGER_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "odbc/api.h"

namespace phoenix::odbc {

/// Routes SQLDriverConnect-style requests ("DRIVER=<name>;...") to the
/// registered driver — the ODBC Driver Manager of the paper's Figure 1.
/// The Phoenix-enhanced manager is this same class with the Phoenix wrapper
/// driver registered under its own DRIVER= name, wrapping a native driver.
class DriverManager {
 public:
  DriverManager() = default;
  DriverManager(const DriverManager&) = delete;
  DriverManager& operator=(const DriverManager&) = delete;

  common::Status RegisterDriver(DriverPtr driver);
  common::Result<DriverPtr> GetDriver(const std::string& name) const;

  /// Connects using the DRIVER= attribute of the connection string.
  common::Result<ConnectionPtr> Connect(const std::string& conn_str) const;
  common::Result<ConnectionPtr> Connect(const ConnectionString& conn_str) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, DriverPtr> drivers_;
};

}  // namespace phoenix::odbc

#endif  // PHOENIX_ODBC_DRIVER_MANAGER_H_
