#ifndef PHOENIX_ODBC_API_H_
#define PHOENIX_ODBC_API_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cache/invalidation.h"
#include "common/schema.h"
#include "common/status.h"
#include "repl/repl.h"

namespace phoenix::odbc {

/// Parsed ODBC connection string: "DRIVER=native;UID=sa;PWD=x;DATABASE=tpch;
/// PHOENIX_CACHE=65536". Keys are upper-cased.
///
/// Multi-endpoint strings name a failover cluster:
/// "SERVER=primary;FAILOVER=standby1,standby2". Each FAILOVER entry is a
/// bare server name or host:port (port 1..65535); malformed entries are
/// rejected at Parse with a typed [08001]-tagged diagnostic.
class ConnectionString {
 public:
  ConnectionString() = default;
  static common::Result<ConnectionString> Parse(const std::string& text);

  /// Returns the attribute value or `fallback`.
  std::string Get(const std::string& key, const std::string& fallback = "") const;
  bool Has(const std::string& key) const;
  void Set(const std::string& key, const std::string& value);
  int64_t GetInt(const std::string& key, int64_t fallback) const;

  /// Re-renders as "KEY=value;..." (stable order).
  std::string ToText() const;

  /// Every endpoint of the cluster in preference order: SERVER first, then
  /// the FAILOVER list. Empty when neither attribute is present (the
  /// transport factory then decides where to connect).
  std::vector<std::string> Endpoints() const;

 private:
  std::map<std::string, std::string> attrs_;
};

/// Statement attributes an application can set before execution — the ODBC
/// statement options the paper mentions ("determined by statement options
/// specified prior to executing a SELECT").
struct StatementAttrs {
  /// Rows the driver requests from the server per fetch round trip
  /// (SQL_ATTR_ROW_ARRAY_SIZE). 0 = use the driver's configured default
  /// batch (PHOENIX_FETCH_BATCH, 64 unless overridden); 1 = classic
  /// row-at-a-time fetching.
  uint64_t row_array_size = 0;
};

/// One queued statement's result from a BundleFlush. Statement-level errors
/// ride in `status`; the flush stops at the first failing statement, so the
/// vector holds the successful prefix plus (possibly) one failing entry.
struct BundleStatementResult {
  common::Status status;         // this statement's in-band outcome
  bool is_query = false;
  common::Schema schema;         // result-set metadata when is_query
  std::vector<common::Row> rows; // the complete result set when is_query
  bool done = false;             // rows are the full result (no cursor left)
  int64_t rows_affected = -1;    // writes; -1 for queries/DDL
  /// Set by recovery-aware drivers (Phoenix) on the exactly-once skip path:
  /// the bundle provably committed before a server failure, but this
  /// query's result set was lost with the response. status is OK — the
  /// statement's effects are durable — and rows is empty. Callers that need
  /// the rows must treat this as "committed, re-read if you care".
  bool result_lost = false;
  /// Bitmap of engine shards this statement touched (bit i = shard i);
  /// 0 = unknown or unsharded server.
  uint64_t shard_mask = 0;
};

/// A statement handle (HSTMT). Forward-only default result sets.
class Statement {
 public:
  virtual ~Statement() = default;

  /// Executes a SQL string (SQLExecDirect). On success either a result set
  /// is open (HasResultSet) or RowCount reports affected rows.
  virtual common::Status ExecDirect(const std::string& sql) = 0;

  virtual bool HasResultSet() const = 0;

  /// Result-set metadata (SQLNumResultCols / SQLDescribeCol).
  virtual const common::Schema& ResultSchema() const = 0;

  /// Fetches the next row (SQLFetch). Returns false at end of data.
  virtual common::Result<bool> Fetch(common::Row* out) = 0;

  /// Block-cursor read (SQLFetchScroll with an array): up to `max_rows`
  /// rows in one driver call. Used by Phoenix's client result cache to pull
  /// an entire result in a single read.
  virtual common::Result<std::vector<common::Row>> FetchBlock(
      size_t max_rows) = 0;

  /// Rows affected by the last statement (SQLRowCount); -1 for queries/DDL.
  virtual int64_t RowCount() const = 0;

  /// Closes the open cursor, if any (SQLCloseCursor). Idempotent.
  virtual common::Status CloseCursor() = 0;

  /// Driver-specific extension: advances the server-side cursor by `n` rows
  /// without transferring them to the client (the paper's repositioning
  /// stored procedure). Drivers without server support return kUnsupported
  /// and callers fall back to fetch-and-discard.
  virtual common::Result<uint64_t> SkipRows(uint64_t n) {
    (void)n;
    return common::Status::Unsupported("SkipRows not supported");
  }

  // --- Statement pipelining (SQLBundleBegin / SQLBundleFlush style) --------
  // The application queues statements client-side, then flushes them as one
  // wire round trip; the server executes them sequentially and returns every
  // result in one response. Drivers without protocol support return
  // kUnsupported from BundleBegin and callers fall back to per-statement
  // ExecDirect.

  /// Starts queuing. Fails if a bundle is already open on this handle.
  virtual common::Status BundleBegin() {
    return common::Status::Unsupported("statement bundles not supported");
  }
  /// Queues one statement into the open bundle (no wire traffic).
  virtual common::Status BundleAdd(const std::string& sql) {
    (void)sql;
    return common::Status::Unsupported("statement bundles not supported");
  }
  /// Sends the queued statements as one bundle and returns the per-statement
  /// results (successful prefix plus at most one failing entry — execution
  /// stops at the first failure). An error Status means a connection-level
  /// failure or a whole-bundle failure with nothing applied. The bundle is
  /// closed either way.
  virtual common::Result<std::vector<BundleStatementResult>> BundleFlush() {
    return common::Status::Unsupported("statement bundles not supported");
  }
  /// Drops any queued statements without sending them. Idempotent.
  virtual void BundleDiscard() {}

  virtual StatementAttrs& attrs() = 0;

  /// Result-cache consistency metadata the server attached to the last
  /// ExecDirect on this handle (snapshot timestamp, read set, cacheable
  /// verdict). nullptr when the driver has no invalidation support — callers
  /// (the Phoenix result cache) then treat nothing as cacheable.
  virtual const cache::ResponseConsistency* consistency() const {
    return nullptr;
  }

  /// Bitmap of engine shards the last ExecDirect on this handle touched
  /// (bit i = shard i), from the server's shard-routing response group. 0 =
  /// unknown or unsharded server. Phoenix uses it to scope recovery after a
  /// partial (single-shard) server failure.
  virtual uint64_t LastShardMask() const { return 0; }

  /// Last error recorded on this handle (SQLGetDiagRec equivalent).
  virtual const common::Status& LastError() const = 0;
};

using StatementPtr = std::unique_ptr<Statement>;

/// A connection handle (HDBC).
class Connection {
 public:
  virtual ~Connection() = default;

  virtual common::Result<StatementPtr> CreateStatement() = 0;
  virtual common::Status Disconnect() = 0;

  /// Cheap server liveness probe; drivers map it to a protocol ping.
  virtual common::Status Ping() = 0;

  /// The connection string this connection was established with (Phoenix
  /// saves it to replay the login at recovery).
  virtual const ConnectionString& connection_string() const = 0;

  /// Per-connection invalidation ledger fed by the digests the server
  /// piggybacks on every response (DESIGN.md §16). nullptr when the driver
  /// does not speak the invalidation protocol.
  virtual cache::InvalidationState* invalidation() { return nullptr; }
};

using ConnectionPtr = std::unique_ptr<Connection>;

/// A driver: everything reachable from SQLDriverConnect for one DRIVER= name.
class Driver {
 public:
  virtual ~Driver() = default;
  virtual std::string name() const = 0;
  virtual common::Result<ConnectionPtr> Connect(
      const ConnectionString& conn_str) = 0;

  /// Sessionless health probe of the endpoint `conn_str` points at:
  /// {epoch, applied_lsn, role} from a single ping round trip. The probe
  /// presents PHOENIX_KNOWN_EPOCH, so probing a stale ex-primary also
  /// fences it. Drivers without protocol support return kUnsupported and
  /// failover degrades to single-endpoint behavior.
  virtual common::Result<repl::ServerHealth> Probe(
      const ConnectionString& conn_str) {
    (void)conn_str;
    return common::Status::Unsupported("driver has no health probe");
  }

  /// Asks the endpoint to promote itself from standby to primary
  /// (replay-to-end, epoch bump past `known_epoch`, serve). Returns the new
  /// cluster epoch. Idempotent against a server that is already primary.
  virtual common::Result<uint64_t> Promote(const ConnectionString& conn_str,
                                           uint64_t known_epoch) {
    (void)conn_str;
    (void)known_epoch;
    return common::Status::Unsupported("driver cannot request promotion");
  }
};

using DriverPtr = std::shared_ptr<Driver>;

}  // namespace phoenix::odbc

#endif  // PHOENIX_ODBC_API_H_
