#include "common/strings.h"
#include "odbc/api.h"

namespace phoenix::odbc {

using common::Result;
using common::Status;

namespace {

// A failover endpoint is a bare server name ("standby") or host:port. Bare
// names are resolved by the transport factory; host:port must have a
// non-empty host and a numeric port in 1..65535.
Status ValidateEndpoint(std::string_view endpoint) {
  if (endpoint.empty()) {
    return Status::InvalidArgument(
        "[08001] malformed FAILOVER endpoint: empty entry");
  }
  size_t colon = endpoint.find(':');
  if (colon == std::string_view::npos) return Status::OK();
  std::string_view host = endpoint.substr(0, colon);
  std::string_view port = endpoint.substr(colon + 1);
  auto bad = [&](const char* why) {
    return Status::InvalidArgument("[08001] malformed FAILOVER endpoint '" +
                                   std::string(endpoint) + "': " + why);
  };
  if (host.empty()) return bad("empty host");
  if (port.empty()) return bad("empty port");
  if (port.find(':') != std::string_view::npos) {
    return bad("more than one ':'");
  }
  uint64_t value = 0;
  for (char c : port) {
    if (c < '0' || c > '9') return bad("port is not a number");
    value = value * 10 + static_cast<uint64_t>(c - '0');
    if (value > 65535) return bad("port out of range 1..65535");
  }
  if (value == 0) return bad("port out of range 1..65535");
  return Status::OK();
}

}  // namespace

Result<ConnectionString> ConnectionString::Parse(const std::string& text) {
  ConnectionString out;
  for (const std::string& part : common::Split(text, ';')) {
    std::string_view trimmed = common::Trim(part);
    if (trimmed.empty()) continue;
    size_t eq = trimmed.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument("bad connection string near '" +
                                     std::string(trimmed) + "'");
    }
    std::string key = common::ToUpper(common::Trim(trimmed.substr(0, eq)));
    std::string value{common::Trim(trimmed.substr(eq + 1))};
    if (key.empty()) {
      return Status::InvalidArgument("empty attribute name");
    }
    out.attrs_[std::move(key)] = std::move(value);
  }
  auto failover = out.attrs_.find("FAILOVER");
  if (failover != out.attrs_.end()) {
    for (const std::string& entry : common::Split(failover->second, ',')) {
      PHX_RETURN_IF_ERROR(ValidateEndpoint(common::Trim(entry)));
    }
  }
  return out;
}

std::string ConnectionString::Get(const std::string& key,
                                  const std::string& fallback) const {
  auto it = attrs_.find(common::ToUpper(key));
  return it == attrs_.end() ? fallback : it->second;
}

bool ConnectionString::Has(const std::string& key) const {
  return attrs_.count(common::ToUpper(key)) > 0;
}

void ConnectionString::Set(const std::string& key, const std::string& value) {
  attrs_[common::ToUpper(key)] = value;
}

int64_t ConnectionString::GetInt(const std::string& key,
                                 int64_t fallback) const {
  auto it = attrs_.find(common::ToUpper(key));
  if (it == attrs_.end() || it->second.empty()) return fallback;
  char* end = nullptr;
  long long v = std::strtoll(it->second.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return fallback;
  return v;
}

std::vector<std::string> ConnectionString::Endpoints() const {
  std::vector<std::string> out;
  auto server = attrs_.find("SERVER");
  if (server != attrs_.end() && !server->second.empty()) {
    out.push_back(server->second);
  }
  auto failover = attrs_.find("FAILOVER");
  if (failover != attrs_.end()) {
    for (const std::string& entry : common::Split(failover->second, ',')) {
      std::string trimmed{common::Trim(entry)};
      if (!trimmed.empty()) out.push_back(std::move(trimmed));
    }
  }
  return out;
}

std::string ConnectionString::ToText() const {
  std::string out;
  for (const auto& [key, value] : attrs_) {
    if (!out.empty()) out += ";";
    out += key;
    out += "=";
    out += value;
  }
  return out;
}

}  // namespace phoenix::odbc
