#include "common/strings.h"
#include "odbc/api.h"

namespace phoenix::odbc {

using common::Result;
using common::Status;

Result<ConnectionString> ConnectionString::Parse(const std::string& text) {
  ConnectionString out;
  for (const std::string& part : common::Split(text, ';')) {
    std::string_view trimmed = common::Trim(part);
    if (trimmed.empty()) continue;
    size_t eq = trimmed.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument("bad connection string near '" +
                                     std::string(trimmed) + "'");
    }
    std::string key = common::ToUpper(common::Trim(trimmed.substr(0, eq)));
    std::string value{common::Trim(trimmed.substr(eq + 1))};
    if (key.empty()) {
      return Status::InvalidArgument("empty attribute name");
    }
    out.attrs_[std::move(key)] = std::move(value);
  }
  return out;
}

std::string ConnectionString::Get(const std::string& key,
                                  const std::string& fallback) const {
  auto it = attrs_.find(common::ToUpper(key));
  return it == attrs_.end() ? fallback : it->second;
}

bool ConnectionString::Has(const std::string& key) const {
  return attrs_.count(common::ToUpper(key)) > 0;
}

void ConnectionString::Set(const std::string& key, const std::string& value) {
  attrs_[common::ToUpper(key)] = value;
}

int64_t ConnectionString::GetInt(const std::string& key,
                                 int64_t fallback) const {
  auto it = attrs_.find(common::ToUpper(key));
  if (it == attrs_.end() || it->second.empty()) return fallback;
  char* end = nullptr;
  long long v = std::strtoll(it->second.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return fallback;
  return v;
}

std::string ConnectionString::ToText() const {
  std::string out;
  for (const auto& [key, value] : attrs_) {
    if (!out.empty()) out += ";";
    out += key;
    out += "=";
    out += value;
  }
  return out;
}

}  // namespace phoenix::odbc
