#ifndef PHOENIX_ODBC_NATIVE_DRIVER_H_
#define PHOENIX_ODBC_NATIVE_DRIVER_H_

#include <deque>
#include <functional>
#include <memory>
#include <string>

#include "engine/ids.h"
#include "odbc/api.h"
#include "wire/transport.h"

namespace phoenix::odbc {

/// Creates a fresh channel to the server for one connection.
using TransportFactory =
    std::function<wire::ClientTransportPtr(const ConnectionString&)>;

/// The vendor-supplied ODBC driver of the paper: speaks the wire protocol,
/// knows nothing about persistence or recovery. Phoenix wraps it unchanged.
class NativeDriver : public Driver {
 public:
  /// `name` lets tests register several instances ("native", "native2").
  NativeDriver(std::string name, TransportFactory transport_factory)
      : name_(std::move(name)),
        transport_factory_(std::move(transport_factory)) {}

  std::string name() const override { return name_; }
  common::Result<ConnectionPtr> Connect(
      const ConnectionString& conn_str) override;

 private:
  std::string name_;
  TransportFactory transport_factory_;
};

class NativeConnection : public Connection {
 public:
  NativeConnection(wire::ClientTransportPtr transport,
                   engine::SessionId session, ConnectionString conn_str)
      : transport_(std::move(transport)),
        session_(session),
        conn_str_(std::move(conn_str)) {}
  ~NativeConnection() override;

  common::Result<StatementPtr> CreateStatement() override;
  common::Status Disconnect() override;
  common::Status Ping() override;
  const ConnectionString& connection_string() const override {
    return conn_str_;
  }

  engine::SessionId session() const { return session_; }
  const wire::ClientTransportPtr& transport() const { return transport_; }

 private:
  wire::ClientTransportPtr transport_;
  engine::SessionId session_;
  ConnectionString conn_str_;
  bool disconnected_ = false;
};

class NativeStatement : public Statement {
 public:
  NativeStatement(wire::ClientTransportPtr transport,
                  engine::SessionId session)
      : transport_(std::move(transport)), session_(session) {}
  ~NativeStatement() override;

  common::Status ExecDirect(const std::string& sql) override;
  bool HasResultSet() const override { return has_result_; }
  const common::Schema& ResultSchema() const override { return schema_; }
  common::Result<bool> Fetch(common::Row* out) override;
  common::Result<std::vector<common::Row>> FetchBlock(
      size_t max_rows) override;
  int64_t RowCount() const override { return rows_affected_; }
  common::Status CloseCursor() override;
  common::Result<uint64_t> SkipRows(uint64_t n) override;
  StatementAttrs& attrs() override { return attrs_; }
  const common::Status& LastError() const override { return last_error_; }

  /// Driver-specific: the server-side cursor id backing this statement's
  /// result set. Phoenix recovery passes it to EXEC sys_advance_cursor.
  engine::CursorId server_cursor() const { return cursor_; }

 private:
  common::Status Record(common::Status status) {
    last_error_ = status;
    return status;
  }

  wire::ClientTransportPtr transport_;
  engine::SessionId session_;
  StatementAttrs attrs_;

  bool has_result_ = false;
  engine::CursorId cursor_ = 0;
  common::Schema schema_;
  int64_t rows_affected_ = -1;
  std::deque<common::Row> client_buffer_;  // rows received, not yet consumed
  bool server_done_ = false;
  common::Status last_error_;
};

}  // namespace phoenix::odbc

#endif  // PHOENIX_ODBC_NATIVE_DRIVER_H_
