#ifndef PHOENIX_ODBC_NATIVE_DRIVER_H_
#define PHOENIX_ODBC_NATIVE_DRIVER_H_

#include <deque>
#include <functional>
#include <memory>
#include <string>

#include "cache/invalidation.h"
#include "engine/ids.h"
#include "odbc/api.h"
#include "wire/transport.h"

namespace phoenix::odbc {

/// Creates a fresh channel to the server for one connection.
using TransportFactory =
    std::function<wire::ClientTransportPtr(const ConnectionString&)>;

/// Result-delivery tuning, resolved once per connection. The fast path is on
/// by default: executes piggyback the first batch and the driver keeps one
/// read-ahead fetch in flight while the application drains the buffer.
struct DeliveryOptions {
  /// Piggybacked first batches + pipelined read-ahead. Off reproduces the
  /// classic two-step execute/fetch protocol round trip for round trip.
  bool prefetch = true;
  /// Batch size used when the statement leaves row_array_size at 0.
  uint64_t fetch_batch = 64;
  /// Per-roundtrip deadline applied to the connection's transport
  /// (PHOENIX_RT_TIMEOUT_MS); 0 waits forever. This is the failure detector
  /// for hung/partitioned servers: an overdue response surfaces as kTimeout,
  /// which Phoenix treats as a recoverable connection-level failure.
  uint64_t roundtrip_timeout_ms = 0;
  /// Statement pipelining (PHOENIX_PIPELINE): BundleFlush sends the queued
  /// statements as one kExecuteBundle frame. Off makes BundleBegin report
  /// kUnsupported, so bundle-aware callers fall back to per-statement
  /// ExecDirect and round-trip counts reproduce the pre-pipeline driver
  /// exactly.
  bool pipeline = true;
};

/// Resolves DeliveryOptions from the connection string, falling back to the
/// PHOENIX_PREFETCH / PHOENIX_FETCH_BATCH environment variables so legacy
/// delivery can be forced without touching application code. When prefetch
/// is disabled and no batch is given, the batch defaults to 1 so round-trip
/// counts match the pre-fast-path driver exactly.
DeliveryOptions ParseDeliveryOptions(const ConnectionString& conn_str);

/// The vendor-supplied ODBC driver of the paper: speaks the wire protocol,
/// knows nothing about persistence or recovery. Phoenix wraps it unchanged.
class NativeDriver : public Driver {
 public:
  /// `name` lets tests register several instances ("native", "native2").
  NativeDriver(std::string name, TransportFactory transport_factory)
      : name_(std::move(name)),
        transport_factory_(std::move(transport_factory)) {}

  std::string name() const override { return name_; }
  common::Result<ConnectionPtr> Connect(
      const ConnectionString& conn_str) override;

  /// One sessionless ping round trip returning the endpoint's
  /// {epoch, applied_lsn, role}. Rides the same transport factory as
  /// Connect, so SERVER=/FAILOVER= routing applies.
  common::Result<repl::ServerHealth> Probe(
      const ConnectionString& conn_str) override;

  /// kPromote round trip: the endpoint replays its shipped tail, bumps its
  /// epoch past `known_epoch`, and starts serving as primary.
  common::Result<uint64_t> Promote(const ConnectionString& conn_str,
                                   uint64_t known_epoch) override;

 private:
  std::string name_;
  TransportFactory transport_factory_;
};

class NativeConnection : public Connection {
 public:
  NativeConnection(wire::ClientTransportPtr transport,
                   engine::SessionId session, ConnectionString conn_str,
                   DeliveryOptions delivery,
                   std::shared_ptr<cache::InvalidationState> invalidation)
      : transport_(std::move(transport)),
        session_(session),
        conn_str_(std::move(conn_str)),
        delivery_(delivery),
        invalidation_(std::move(invalidation)) {}
  ~NativeConnection() override;

  common::Result<StatementPtr> CreateStatement() override;
  common::Status Disconnect() override;
  common::Status Ping() override;
  const ConnectionString& connection_string() const override {
    return conn_str_;
  }
  cache::InvalidationState* invalidation() override {
    return invalidation_.get();
  }

  engine::SessionId session() const { return session_; }
  const wire::ClientTransportPtr& transport() const { return transport_; }
  const DeliveryOptions& delivery() const { return delivery_; }

 private:
  wire::ClientTransportPtr transport_;
  engine::SessionId session_;
  ConnectionString conn_str_;
  DeliveryOptions delivery_;
  /// Shared with every statement on this connection: they stamp its clock
  /// into requests and fold response digests back in.
  std::shared_ptr<cache::InvalidationState> invalidation_;
  bool disconnected_ = false;
};

class NativeStatement : public Statement {
 public:
  NativeStatement(wire::ClientTransportPtr transport,
                  engine::SessionId session, DeliveryOptions delivery,
                  std::shared_ptr<cache::InvalidationState> invalidation)
      : transport_(std::move(transport)),
        session_(session),
        delivery_(delivery),
        invalidation_(std::move(invalidation)) {}
  ~NativeStatement() override;

  common::Status ExecDirect(const std::string& sql) override;
  bool HasResultSet() const override { return has_result_; }
  const common::Schema& ResultSchema() const override { return schema_; }
  common::Result<bool> Fetch(common::Row* out) override;
  common::Result<std::vector<common::Row>> FetchBlock(
      size_t max_rows) override;
  int64_t RowCount() const override { return rows_affected_; }
  common::Status CloseCursor() override;
  common::Result<uint64_t> SkipRows(uint64_t n) override;
  common::Status BundleBegin() override;
  common::Status BundleAdd(const std::string& sql) override;
  common::Result<std::vector<BundleStatementResult>> BundleFlush() override;
  void BundleDiscard() override;
  StatementAttrs& attrs() override { return attrs_; }
  const cache::ResponseConsistency* consistency() const override {
    return &consistency_;
  }
  const common::Status& LastError() const override { return last_error_; }
  uint64_t LastShardMask() const override { return shard_mask_; }

  /// Driver-specific: the server-side cursor id backing this statement's
  /// result set. Phoenix recovery passes it to EXEC sys_advance_cursor.
  engine::CursorId server_cursor() const { return cursor_; }

 private:
  common::Status Record(common::Status status) {
    last_error_ = status;
    return status;
  }
  /// Rows to request per fetch: the statement attribute when set, else the
  /// connection's default batch.
  uint64_t EffectiveFetchCount() const {
    return attrs_.row_array_size != 0 ? attrs_.row_array_size
                                      : delivery_.fetch_batch;
  }
  /// Waits for the in-flight read-ahead (if any) and appends its rows to
  /// client_buffer_. Must run before any other request touches this cursor —
  /// responses on one cursor have to stay ordered.
  common::Status AbsorbPrefetch();
  /// Drains and drops the in-flight read-ahead (cursor is being closed or
  /// abandoned; the rows are no longer wanted).
  void DiscardPrefetch();
  /// Launches the next read-ahead fetch if the fast path is on, the cursor
  /// is still open, and none is already in flight.
  void MaybeStartPrefetch(uint64_t count);
  /// Classic synchronous fetch of `count` rows into client_buffer_.
  common::Status FetchIntoBuffer(uint64_t count);
  /// Stamps the connection ledger's clock into the request so the server's
  /// digest is incremental.
  void StampClock(wire::Request* request) const;
  /// Folds a response's invalidation digest into the connection ledger.
  void ApplyDigest(const wire::Response& response);

  wire::ClientTransportPtr transport_;
  engine::SessionId session_;
  DeliveryOptions delivery_;
  std::shared_ptr<cache::InvalidationState> invalidation_;
  /// Consistency metadata from the last ExecDirect response on this handle.
  cache::ResponseConsistency consistency_;
  StatementAttrs attrs_;

  bool has_result_ = false;
  /// Shard bitmap from the last execute/bundle response (0 = unsharded).
  uint64_t shard_mask_ = 0;
  engine::CursorId cursor_ = 0;
  common::Schema schema_;
  int64_t rows_affected_ = -1;
  std::deque<common::Row> client_buffer_;  // rows received, not yet consumed
  bool server_done_ = false;
  /// True when the execute response carried the whole result (done=true):
  /// the server already freed the cursor, so CloseCursor is client-local.
  bool server_closed_cursor_ = false;
  common::Status last_error_;
  /// Open statement bundle (BundleBegin..BundleFlush), queued client-side.
  bool bundle_open_ = false;
  std::vector<std::string> bundle_;
  /// In-flight read-ahead. Declared after transport_ so destruction drains
  /// the worker (which holds a raw transport pointer) before the transport
  /// reference can drop.
  wire::PendingResponsePtr prefetch_;
};

}  // namespace phoenix::odbc

#endif  // PHOENIX_ODBC_NATIVE_DRIVER_H_
