#include "odbc/native_driver.h"

#include "obs/trace.h"

namespace phoenix::odbc {

using common::Result;
using common::Row;
using common::Status;
using wire::Request;
using wire::RequestType;
using wire::Response;

namespace {

/// Copies the calling thread's trace context into the request's wire header
/// so server-side spans correlate with this client-side statement.
void StampTrace(Request* request) {
  obs::TraceContext ctx = obs::CurrentTrace();
  request->trace_id = ctx.trace_id;
  request->span_id = ctx.span_id;
}

}  // namespace

Result<ConnectionPtr> NativeDriver::Connect(const ConnectionString& conn_str) {
  wire::ClientTransportPtr transport = transport_factory_(conn_str);
  if (transport == nullptr) {
    return Status::ConnectionFailed("no transport available");
  }
  Request request;
  request.type = RequestType::kConnect;
  request.user = conn_str.Get("UID");
  request.password = conn_str.Get("PWD");
  request.database = conn_str.Get("DATABASE");
  StampTrace(&request);
  PHX_ASSIGN_OR_RETURN(Response response, transport->Roundtrip(request));
  if (!response.ok()) return response.ToStatus();
  return ConnectionPtr(std::make_unique<NativeConnection>(
      std::move(transport), response.session, conn_str));
}

NativeConnection::~NativeConnection() {
  if (!disconnected_) Disconnect().ok();
}

Result<StatementPtr> NativeConnection::CreateStatement() {
  if (disconnected_) {
    return Status::InvalidArgument("connection is closed");
  }
  return StatementPtr(std::make_unique<NativeStatement>(transport_, session_));
}

Status NativeConnection::Disconnect() {
  if (disconnected_) return Status::OK();
  disconnected_ = true;
  Request request;
  request.type = RequestType::kDisconnect;
  request.session = session_;
  StampTrace(&request);
  auto response = transport_->Roundtrip(request);
  if (!response.ok()) return response.status();
  return response.value().ToStatus();
}

Status NativeConnection::Ping() {
  Request request;
  request.type = RequestType::kPing;
  request.session = session_;
  StampTrace(&request);
  auto response = transport_->Roundtrip(request);
  if (!response.ok()) return response.status();
  return response.value().ToStatus();
}

NativeStatement::~NativeStatement() { CloseCursor().ok(); }

Status NativeStatement::ExecDirect(const std::string& sql) {
  PHX_RETURN_IF_ERROR(Record(CloseCursor()));

  OBS_SPAN("odbc.execute");
  Request request;
  request.type = RequestType::kExecute;
  request.session = session_;
  request.sql = sql;
  StampTrace(&request);
  auto response = transport_->Roundtrip(request);
  if (!response.ok()) return Record(response.status());
  if (!response.value().ok()) return Record(response.value().ToStatus());

  const Response& r = response.value();
  has_result_ = r.is_query;
  cursor_ = r.cursor;
  schema_ = r.schema;
  rows_affected_ = r.rows_affected;
  client_buffer_.clear();
  server_done_ = false;
  return Record(Status::OK());
}

Result<bool> NativeStatement::Fetch(Row* out) {
  if (!has_result_) {
    return Status::InvalidArgument("no open result set");
  }
  if (client_buffer_.empty() && !server_done_) {
    OBS_SPAN("odbc.fetch");
    Request request;
    request.type = RequestType::kFetch;
    request.session = session_;
    request.cursor = cursor_;
    request.count = attrs_.row_array_size == 0 ? 1 : attrs_.row_array_size;
    StampTrace(&request);
    auto response = transport_->Roundtrip(request);
    if (!response.ok()) {
      Record(response.status());
      return response.status();
    }
    if (!response.value().ok()) {
      Record(response.value().ToStatus());
      return response.value().ToStatus();
    }
    Response& r = response.value();
    for (Row& row : r.rows) client_buffer_.push_back(std::move(row));
    server_done_ = r.done;
  }
  if (client_buffer_.empty()) return false;
  *out = std::move(client_buffer_.front());
  client_buffer_.pop_front();
  return true;
}

Result<std::vector<Row>> NativeStatement::FetchBlock(size_t max_rows) {
  if (!has_result_) {
    return Status::InvalidArgument("no open result set");
  }
  std::vector<Row> out;
  while (!client_buffer_.empty() && out.size() < max_rows) {
    out.push_back(std::move(client_buffer_.front()));
    client_buffer_.pop_front();
  }
  if (out.size() < max_rows && !server_done_) {
    OBS_SPAN("odbc.fetch");
    Request request;
    request.type = RequestType::kFetch;
    request.session = session_;
    request.cursor = cursor_;
    request.count = max_rows - out.size();
    StampTrace(&request);
    auto response = transport_->Roundtrip(request);
    if (!response.ok()) {
      Record(response.status());
      return response.status();
    }
    if (!response.value().ok()) {
      Record(response.value().ToStatus());
      return response.value().ToStatus();
    }
    Response& r = response.value();
    for (Row& row : r.rows) out.push_back(std::move(row));
    server_done_ = r.done;
  }
  return out;
}

Result<uint64_t> NativeStatement::SkipRows(uint64_t n) {
  if (!has_result_) {
    return Status::InvalidArgument("no open result set");
  }
  // Consume the client-side buffer first; only the remainder is skipped on
  // the server.
  uint64_t skipped = 0;
  while (!client_buffer_.empty() && skipped < n) {
    client_buffer_.pop_front();
    ++skipped;
  }
  if (skipped == n || server_done_) return skipped;

  OBS_SPAN("odbc.skip_rows");
  Request request;
  request.type = RequestType::kAdvanceCursor;
  request.session = session_;
  request.cursor = cursor_;
  request.count = n - skipped;
  StampTrace(&request);
  auto response = transport_->Roundtrip(request);
  if (!response.ok()) {
    Record(response.status());
    return response.status();
  }
  if (!response.value().ok()) {
    Record(response.value().ToStatus());
    return response.value().ToStatus();
  }
  return skipped + static_cast<uint64_t>(response.value().rows_affected);
}

Status NativeStatement::CloseCursor() {
  if (!has_result_) return Status::OK();
  has_result_ = false;
  client_buffer_.clear();
  Request request;
  request.type = RequestType::kCloseCursor;
  request.session = session_;
  request.cursor = cursor_;
  cursor_ = 0;
  StampTrace(&request);
  auto response = transport_->Roundtrip(request);
  if (!response.ok()) return response.status();
  // "cursor not open" after a server restart is not an application error.
  const Response& r = response.value();
  if (!r.ok() && r.code != common::StatusCode::kNotFound) {
    return r.ToStatus();
  }
  return Status::OK();
}

}  // namespace phoenix::odbc
