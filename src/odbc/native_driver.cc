#include "odbc/native_driver.h"

#include <cstdlib>

#include "common/strings.h"
#include "fault/fault.h"
#include "obs/trace.h"

namespace phoenix::odbc {

using common::Result;
using common::Row;
using common::Status;
using wire::Request;
using wire::RequestType;
using wire::Response;

namespace {

/// Copies the calling thread's trace context into the request's wire header
/// so server-side spans correlate with this client-side statement.
void StampTrace(Request* request) {
  obs::TraceContext ctx = obs::CurrentTrace();
  request->trace_id = ctx.trace_id;
  request->span_id = ctx.span_id;
}

}  // namespace

DeliveryOptions ParseDeliveryOptions(const ConnectionString& conn_str) {
  DeliveryOptions opts;
  // Connection-string attribute wins; the environment variable is the
  // deployment-wide fallback.
  const char* env_prefetch = std::getenv("PHOENIX_PREFETCH");
  if (conn_str.Has("PHOENIX_PREFETCH")) {
    opts.prefetch = conn_str.GetInt("PHOENIX_PREFETCH", 1) != 0;
  } else if (env_prefetch != nullptr) {
    // Clamp-to-disabled rule for every knob: garbage or negative input means
    // "keep the default", never a sign-wrapped surprise.
    opts.prefetch =
        common::ParseNonNegativeKnob(env_prefetch, opts.prefetch ? 1 : 0) != 0;
  }
  const char* env_batch = std::getenv("PHOENIX_FETCH_BATCH");
  int64_t batch = -1;
  if (conn_str.Has("PHOENIX_FETCH_BATCH")) {
    batch = conn_str.GetInt("PHOENIX_FETCH_BATCH", 64);
  } else if (env_batch != nullptr) {
    batch = common::ParseNonNegativeKnob(env_batch, -1);
  }
  if (batch > 0) {
    opts.fetch_batch = static_cast<uint64_t>(batch);
  } else if (batch < 0 && !opts.prefetch) {
    // No explicit batch and the fast path is off: fall back to the classic
    // row-at-a-time default so round-trip counts match the legacy driver.
    opts.fetch_batch = 1;
  }
  // Clamp-to-disabled rule: garbage and negatives mean "no deadline" (0),
  // never an unsigned wrap into a multi-century timeout.
  const char* env_timeout = std::getenv("PHOENIX_RT_TIMEOUT_MS");
  if (conn_str.Has("PHOENIX_RT_TIMEOUT_MS")) {
    opts.roundtrip_timeout_ms = static_cast<uint64_t>(
        common::ParseNonNegativeKnob(conn_str.Get("PHOENIX_RT_TIMEOUT_MS"),
                                     0));
  } else if (env_timeout != nullptr) {
    opts.roundtrip_timeout_ms =
        static_cast<uint64_t>(common::ParseNonNegativeKnob(env_timeout, 0));
  }
  const char* env_pipeline = std::getenv("PHOENIX_PIPELINE");
  if (conn_str.Has("PHOENIX_PIPELINE")) {
    opts.pipeline = conn_str.GetInt("PHOENIX_PIPELINE", 1) != 0;
  } else if (env_pipeline != nullptr) {
    opts.pipeline =
        common::ParseNonNegativeKnob(env_pipeline, opts.pipeline ? 1 : 0) != 0;
  }
  return opts;
}

Result<ConnectionPtr> NativeDriver::Connect(const ConnectionString& conn_str) {
  wire::ClientTransportPtr transport = transport_factory_(conn_str);
  if (transport == nullptr) {
    return Status::ConnectionFailed("no transport available");
  }
  // Connection-string fault schedule (chaos runs without recompiling).
  // Applied at most once per (spec, seed): Phoenix reconnects re-present the
  // same attributes on every recovery and must not reset fire counters.
  if (conn_str.Has("PHOENIX_FAULTS")) {
    fault::FaultInjector::Global()
        .ArmSpecOnce(conn_str.Get("PHOENIX_FAULTS"),
                     static_cast<uint64_t>(
                         conn_str.GetInt("PHOENIX_FAULT_SEED", 1)))
        .ok();
  }
  DeliveryOptions delivery = ParseDeliveryOptions(conn_str);
  // Arm the deadline before the connect round trip: a hung server must be
  // detected during (re)connection too, not only on established sessions.
  transport->set_roundtrip_timeout_ms(delivery.roundtrip_timeout_ms);
  // Fresh ledger per connection: it starts at clock 0, so the connect
  // response's digest seeds it with the server's current stable clock.
  auto invalidation = std::make_shared<cache::InvalidationState>();
  Request request;
  request.type = RequestType::kConnect;
  request.user = conn_str.Get("UID");
  request.password = conn_str.Get("PWD");
  request.database = conn_str.Get("DATABASE");
  request.cache_clock = invalidation->clock();
  // The highest cluster epoch this client has observed; a fenced ex-primary
  // rejects the login instead of accepting writes it can no longer durably
  // own (split-brain guard).
  request.known_epoch =
      static_cast<uint64_t>(conn_str.GetInt("PHOENIX_KNOWN_EPOCH", 0));
  StampTrace(&request);
  PHX_ASSIGN_OR_RETURN(Response response, transport->Roundtrip(request));
  if (!response.ok()) return response.ToStatus();
  cache::ResponseConsistency digest;
  digest.stable_ts = response.stable_ts;
  digest.invalidated = std::move(response.invalidated);
  invalidation->Apply(digest);
  return ConnectionPtr(std::make_unique<NativeConnection>(
      std::move(transport), response.session, conn_str, delivery,
      std::move(invalidation)));
}

NativeConnection::~NativeConnection() {
  if (!disconnected_) Disconnect().ok();
}

Result<StatementPtr> NativeConnection::CreateStatement() {
  if (disconnected_) {
    return Status::InvalidArgument("connection is closed");
  }
  return StatementPtr(std::make_unique<NativeStatement>(
      transport_, session_, delivery_, invalidation_));
}

Status NativeConnection::Disconnect() {
  if (disconnected_) return Status::OK();
  disconnected_ = true;
  Request request;
  request.type = RequestType::kDisconnect;
  request.session = session_;
  StampTrace(&request);
  auto response = transport_->Roundtrip(request);
  if (!response.ok()) return response.status();
  return response.value().ToStatus();
}

Status NativeConnection::Ping() {
  Request request;
  request.type = RequestType::kPing;
  request.session = session_;
  request.known_epoch =
      static_cast<uint64_t>(conn_str_.GetInt("PHOENIX_KNOWN_EPOCH", 0));
  StampTrace(&request);
  auto response = transport_->Roundtrip(request);
  if (!response.ok()) return response.status();
  return response.value().ToStatus();
}

Result<repl::ServerHealth> NativeDriver::Probe(
    const ConnectionString& conn_str) {
  wire::ClientTransportPtr transport = transport_factory_(conn_str);
  if (transport == nullptr) {
    return Status::ConnectionFailed("no transport available");
  }
  DeliveryOptions delivery = ParseDeliveryOptions(conn_str);
  transport->set_roundtrip_timeout_ms(delivery.roundtrip_timeout_ms);
  Request request;
  request.type = RequestType::kPing;
  request.known_epoch =
      static_cast<uint64_t>(conn_str.GetInt("PHOENIX_KNOWN_EPOCH", 0));
  StampTrace(&request);
  PHX_ASSIGN_OR_RETURN(Response response, transport->Roundtrip(request));
  // A fenced endpoint still reports its health; ignore the in-band status
  // and read the piggybacked probe fields.
  repl::ServerHealth health;
  health.epoch = response.epoch;
  health.applied_lsn = response.applied_lsn;
  health.role = static_cast<repl::Role>(response.role);
  return health;
}

Result<uint64_t> NativeDriver::Promote(const ConnectionString& conn_str,
                                       uint64_t known_epoch) {
  wire::ClientTransportPtr transport = transport_factory_(conn_str);
  if (transport == nullptr) {
    return Status::ConnectionFailed("no transport available");
  }
  DeliveryOptions delivery = ParseDeliveryOptions(conn_str);
  transport->set_roundtrip_timeout_ms(delivery.roundtrip_timeout_ms);
  Request request;
  request.type = RequestType::kPromote;
  request.known_epoch = known_epoch;
  StampTrace(&request);
  PHX_ASSIGN_OR_RETURN(Response response, transport->Roundtrip(request));
  if (!response.ok()) return response.ToStatus();
  return response.epoch;
}

NativeStatement::~NativeStatement() { CloseCursor().ok(); }

void NativeStatement::StampClock(Request* request) const {
  if (invalidation_ != nullptr) {
    request->cache_clock = invalidation_->clock();
  }
}

void NativeStatement::ApplyDigest(const Response& response) {
  if (invalidation_ == nullptr) return;
  cache::ResponseConsistency digest;
  digest.stable_ts = response.stable_ts;
  digest.invalidated = response.invalidated;
  invalidation_->Apply(digest);
}

Status NativeStatement::ExecDirect(const std::string& sql) {
  PHX_RETURN_IF_ERROR(Record(CloseCursor()));

  OBS_SPAN("odbc.execute");
  Request request;
  request.type = RequestType::kExecute;
  request.session = session_;
  request.sql = sql;
  // Fast path: ask the server to piggyback the first batch so small results
  // complete in this round trip.
  if (delivery_.prefetch) request.first_batch = EffectiveFetchCount();
  StampClock(&request);
  StampTrace(&request);
  auto response = transport_->Roundtrip(request);
  if (!response.ok()) return Record(response.status());
  // Digests ride even statement-level errors; apply before bailing.
  ApplyDigest(response.value());
  if (!response.value().ok()) return Record(response.value().ToStatus());

  Response& r = response.value();
  consistency_.stable_ts = r.stable_ts;
  consistency_.snapshot_ts = r.snapshot_ts;
  consistency_.cacheable = r.cacheable;
  consistency_.read_tables = std::move(r.read_tables);
  consistency_.write_tables = std::move(r.write_tables);
  consistency_.invalidated = std::move(r.invalidated);
  has_result_ = r.is_query;
  shard_mask_ = r.shard_mask;
  cursor_ = r.cursor;
  schema_ = std::move(r.schema);
  rows_affected_ = r.rows_affected;
  client_buffer_.clear();
  for (Row& row : r.rows) client_buffer_.push_back(std::move(row));
  server_done_ = r.done;
  // done on an execute response means the server piggybacked the entire
  // result and auto-closed the cursor; no close round trip is owed.
  server_closed_cursor_ = r.done;
  if (!r.rows.empty() && obs::Enabled()) {
    static obs::Counter* const piggybacked =
        obs::Registry::Global().counter("odbc.piggybacked_rows");
    piggybacked->Add(r.rows.size());
  }
  // Overlap the next batch's network time with the application draining the
  // piggybacked one.
  MaybeStartPrefetch(EffectiveFetchCount());
  return Record(Status::OK());
}

Status NativeStatement::AbsorbPrefetch() {
  if (prefetch_ == nullptr) return Status::OK();
  wire::PendingResponsePtr pending = std::move(prefetch_);
  auto response = pending->Wait();
  if (!response.ok()) return Record(response.status());
  ApplyDigest(response.value());
  if (!response.value().ok()) return Record(response.value().ToStatus());
  Response& r = response.value();
  for (Row& row : r.rows) client_buffer_.push_back(std::move(row));
  server_done_ = r.done;
  return Status::OK();
}

void NativeStatement::DiscardPrefetch() {
  if (prefetch_ == nullptr) return;
  wire::PendingResponsePtr pending = std::move(prefetch_);
  pending->Wait().ok();
}

void NativeStatement::MaybeStartPrefetch(uint64_t count) {
  if (!delivery_.prefetch || prefetch_ != nullptr) return;
  if (!has_result_ || server_done_) return;
  OBS_SPAN("odbc.prefetch.launch");
  Request request;
  request.type = RequestType::kFetch;
  request.session = session_;
  request.cursor = cursor_;
  request.count = count;
  StampClock(&request);
  StampTrace(&request);
  prefetch_ = transport_->AsyncRoundtrip(request);
  if (obs::Enabled()) {
    static obs::Counter* const launches =
        obs::Registry::Global().counter("odbc.prefetch.launched");
    launches->Add(1);
  }
}

Status NativeStatement::FetchIntoBuffer(uint64_t count) {
  OBS_SPAN("odbc.fetch");
  Request request;
  request.type = RequestType::kFetch;
  request.session = session_;
  request.cursor = cursor_;
  request.count = count;
  StampClock(&request);
  StampTrace(&request);
  auto response = transport_->Roundtrip(request);
  if (!response.ok()) return Record(response.status());
  ApplyDigest(response.value());
  if (!response.value().ok()) return Record(response.value().ToStatus());
  Response& r = response.value();
  for (Row& row : r.rows) client_buffer_.push_back(std::move(row));
  server_done_ = r.done;
  return Status::OK();
}

Result<bool> NativeStatement::Fetch(Row* out) {
  if (!has_result_) {
    return Status::InvalidArgument("no open result set");
  }
  if (client_buffer_.empty()) {
    PHX_RETURN_IF_ERROR(AbsorbPrefetch());
  }
  if (client_buffer_.empty() && !server_done_) {
    PHX_RETURN_IF_ERROR(FetchIntoBuffer(EffectiveFetchCount()));
  }
  if (client_buffer_.empty()) return false;
  *out = std::move(client_buffer_.front());
  client_buffer_.pop_front();
  MaybeStartPrefetch(EffectiveFetchCount());
  return true;
}

Result<std::vector<Row>> NativeStatement::FetchBlock(size_t max_rows) {
  if (!has_result_) {
    return Status::InvalidArgument("no open result set");
  }
  // In-flight read-ahead rows precede anything we would fetch now.
  PHX_RETURN_IF_ERROR(AbsorbPrefetch());
  std::vector<Row> out;
  while (!client_buffer_.empty() && out.size() < max_rows) {
    out.push_back(std::move(client_buffer_.front()));
    client_buffer_.pop_front();
  }
  if (out.size() < max_rows && !server_done_) {
    OBS_SPAN("odbc.fetch");
    Request request;
    request.type = RequestType::kFetch;
    request.session = session_;
    request.cursor = cursor_;
    request.count = max_rows - out.size();
    StampClock(&request);
    StampTrace(&request);
    auto response = transport_->Roundtrip(request);
    if (!response.ok()) {
      Record(response.status());
      return response.status();
    }
    ApplyDigest(response.value());
    if (!response.value().ok()) {
      Record(response.value().ToStatus());
      return response.value().ToStatus();
    }
    Response& r = response.value();
    for (Row& row : r.rows) out.push_back(std::move(row));
    server_done_ = r.done;
  }
  // Keep the pipeline primed for the caller's next block.
  MaybeStartPrefetch(max_rows);
  return out;
}

Result<uint64_t> NativeStatement::SkipRows(uint64_t n) {
  if (!has_result_) {
    return Status::InvalidArgument("no open result set");
  }
  // Rows already in flight count as received: fold them into the buffer so
  // they are skipped client-side rather than double-skipped on the server.
  PHX_RETURN_IF_ERROR(AbsorbPrefetch());
  // Consume the client-side buffer first; only the remainder is skipped on
  // the server.
  uint64_t skipped = 0;
  while (!client_buffer_.empty() && skipped < n) {
    client_buffer_.pop_front();
    ++skipped;
  }
  if (skipped == n || server_done_) return skipped;

  OBS_SPAN("odbc.skip_rows");
  Request request;
  request.type = RequestType::kAdvanceCursor;
  request.session = session_;
  request.cursor = cursor_;
  request.count = n - skipped;
  StampClock(&request);
  StampTrace(&request);
  auto response = transport_->Roundtrip(request);
  if (!response.ok()) {
    Record(response.status());
    return response.status();
  }
  ApplyDigest(response.value());
  if (!response.value().ok()) {
    Record(response.value().ToStatus());
    return response.value().ToStatus();
  }
  return skipped + static_cast<uint64_t>(response.value().rows_affected);
}

Status NativeStatement::BundleBegin() {
  if (!delivery_.pipeline) {
    // Pipelining is switched off: report no support so callers fall back to
    // per-statement ExecDirect and trip counts match the classic protocol.
    return Status::Unsupported("statement pipelining is disabled "
                               "(PHOENIX_PIPELINE=0)");
  }
  if (bundle_open_) {
    return Record(Status::InvalidArgument("a bundle is already open"));
  }
  bundle_open_ = true;
  bundle_.clear();
  return Status::OK();
}

Status NativeStatement::BundleAdd(const std::string& sql) {
  if (!bundle_open_) {
    return Record(Status::InvalidArgument("no open bundle (BundleBegin?)"));
  }
  bundle_.push_back(sql);
  return Status::OK();
}

void NativeStatement::BundleDiscard() {
  bundle_open_ = false;
  bundle_.clear();
}

Result<std::vector<BundleStatementResult>> NativeStatement::BundleFlush() {
  if (!bundle_open_) {
    return Status::InvalidArgument("no open bundle (BundleBegin?)");
  }
  std::vector<std::string> statements = std::move(bundle_);
  BundleDiscard();
  if (statements.empty()) {
    return Status::InvalidArgument("empty bundle");
  }
  // A bundle replaces whatever result set this handle had open.
  PHX_RETURN_IF_ERROR(Record(CloseCursor()));

  OBS_SPAN("odbc.execute_bundle");
  Request request;
  request.type = RequestType::kExecuteBundle;
  request.session = session_;
  request.bundle = std::move(statements);
  StampClock(&request);
  StampTrace(&request);
  auto response = transport_->Roundtrip(request);
  if (!response.ok()) return Record(response.status());
  ApplyDigest(response.value());
  if (!response.value().ok()) {
    // Whole-bundle failure (e.g. the wrap-commit failed): nothing applied.
    return Record(response.value().ToStatus());
  }
  Response& r = response.value();
  shard_mask_ = r.shard_mask;
  std::vector<BundleStatementResult> out;
  out.reserve(r.bundle_results.size());
  for (size_t i = 0; i < r.bundle_results.size(); ++i) {
    wire::BundleItem& item = r.bundle_results[i];
    BundleStatementResult result;
    result.status = item.ToStatus();
    result.is_query = item.is_query;
    result.schema = std::move(item.schema);
    result.rows = std::move(item.rows);
    result.done = item.done;
    result.rows_affected = item.rows_affected;
    if (i < r.bundle_shard_masks.size()) {
      result.shard_mask = r.bundle_shard_masks[i];
    }
    out.push_back(std::move(result));
  }
  // Bundles deliver complete results inline — the handle holds no open
  // cursor afterwards. rows_affected reports the last successful statement.
  for (auto it = out.rbegin(); it != out.rend(); ++it) {
    if (it->status.ok()) {
      rows_affected_ = it->rows_affected;
      break;
    }
  }
  Record(Status::OK());
  return out;
}

Status NativeStatement::CloseCursor() {
  // Drain any read-ahead first: its response belongs to the cursor being
  // closed and must not arrive after the close (or after a reconnect).
  DiscardPrefetch();
  if (!has_result_) return Status::OK();
  has_result_ = false;
  client_buffer_.clear();
  if (server_closed_cursor_) {
    server_closed_cursor_ = false;
    cursor_ = 0;
    return Status::OK();
  }
  Request request;
  request.type = RequestType::kCloseCursor;
  request.session = session_;
  request.cursor = cursor_;
  cursor_ = 0;
  StampClock(&request);
  StampTrace(&request);
  auto response = transport_->Roundtrip(request);
  if (!response.ok()) return response.status();
  ApplyDigest(response.value());
  // "cursor not open" after a server restart is not an application error.
  const Response& r = response.value();
  if (!r.ok() && r.code != common::StatusCode::kNotFound) {
    return r.ToStatus();
  }
  return Status::OK();
}

}  // namespace phoenix::odbc
