#include "odbc/driver_manager.h"

#include "common/strings.h"

namespace phoenix::odbc {

using common::Result;
using common::Status;

Status DriverManager::RegisterDriver(DriverPtr driver) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string key = common::ToLower(driver->name());
  if (drivers_.count(key)) {
    return Status::AlreadyExists("driver '" + driver->name() +
                                 "' already registered");
  }
  drivers_.emplace(std::move(key), std::move(driver));
  return Status::OK();
}

Result<DriverPtr> DriverManager::GetDriver(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = drivers_.find(common::ToLower(name));
  if (it == drivers_.end()) {
    return Status::NotFound("no driver registered as '" + name + "'");
  }
  return it->second;
}

Result<ConnectionPtr> DriverManager::Connect(
    const std::string& conn_str) const {
  PHX_ASSIGN_OR_RETURN(ConnectionString parsed,
                       ConnectionString::Parse(conn_str));
  return Connect(parsed);
}

Result<ConnectionPtr> DriverManager::Connect(
    const ConnectionString& conn_str) const {
  std::string driver_name = conn_str.Get("DRIVER");
  if (driver_name.empty()) {
    return Status::InvalidArgument(
        "connection string is missing the DRIVER attribute");
  }
  PHX_ASSIGN_OR_RETURN(DriverPtr driver, GetDriver(driver_name));
  return driver->Connect(conn_str);
}

}  // namespace phoenix::odbc
