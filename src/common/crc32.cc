#include "common/crc32.h"

#include <array>

namespace phoenix::common {

namespace {

std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(const uint8_t* data, size_t size) {
  static const std::array<uint32_t, 256> kTable = BuildTable();
  uint32_t crc = 0xffffffffu;
  for (size_t i = 0; i < size; ++i) {
    crc = kTable[(crc ^ data[i]) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

}  // namespace phoenix::common
