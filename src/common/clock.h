#ifndef PHOENIX_COMMON_CLOCK_H_
#define PHOENIX_COMMON_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace phoenix::common {

/// Monotonic nanosecond timestamp. Stands in for the paper's Pentium 64-bit
/// cycle counter as the fine-grained elapsed-time source.
inline int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Simple stopwatch for per-step timing of Phoenix request processing
/// (parse, metadata probe, create-table, load, reopen — the breakdown in
/// paper Section 3.5).
class Stopwatch {
 public:
  Stopwatch() : start_(NowNanos()) {}

  void Restart() { start_ = NowNanos(); }

  int64_t ElapsedNanos() const { return NowNanos() - start_; }
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) * 1e-9;
  }
  double ElapsedMillis() const {
    return static_cast<double>(ElapsedNanos()) * 1e-6;
  }

 private:
  int64_t start_;
};

}  // namespace phoenix::common

#endif  // PHOENIX_COMMON_CLOCK_H_
