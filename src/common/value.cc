#include "common/value.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <functional>

namespace phoenix::common {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kBool:
      return "BOOLEAN";
    case ValueType::kInt:
      return "INTEGER";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "VARCHAR";
    case ValueType::kDate:
      return "DATE";
  }
  return "?";
}

Value Value::Bool(bool v) {
  Value out;
  out.type_ = ValueType::kBool;
  out.data_ = v;
  return out;
}

Value Value::Int(int64_t v) {
  Value out;
  out.type_ = ValueType::kInt;
  out.data_ = v;
  return out;
}

Value Value::Double(double v) {
  Value out;
  out.type_ = ValueType::kDouble;
  out.data_ = v;
  return out;
}

Value Value::String(std::string v) {
  Value out;
  out.type_ = ValueType::kString;
  out.data_ = std::move(v);
  return out;
}

Value Value::Date(int64_t days_since_epoch) {
  Value out;
  out.type_ = ValueType::kDate;
  out.data_ = days_since_epoch;
  return out;
}

Result<Value> Value::DateFromString(const std::string& iso) {
  int year = 0, month = 0, day = 0;
  if (std::sscanf(iso.c_str(), "%d-%d-%d", &year, &month, &day) != 3 ||
      month < 1 || month > 12 || day < 1 || day > 31) {
    return Status::InvalidArgument("bad date literal: '" + iso + "'");
  }
  return Value::Date(DaysFromCivil(year, month, day));
}

bool Value::AsBool() const {
  assert(type_ == ValueType::kBool);
  return std::get<bool>(data_);
}

int64_t Value::AsInt() const {
  assert(type_ == ValueType::kInt || type_ == ValueType::kDate);
  return std::get<int64_t>(data_);
}

double Value::AsDouble() const {
  switch (type_) {
    case ValueType::kDouble:
      return std::get<double>(data_);
    case ValueType::kInt:
    case ValueType::kDate:
      return static_cast<double>(std::get<int64_t>(data_));
    case ValueType::kBool:
      return std::get<bool>(data_) ? 1.0 : 0.0;
    default:
      assert(false && "AsDouble on non-numeric value");
      return 0.0;
  }
}

const std::string& Value::AsString() const {
  assert(type_ == ValueType::kString);
  return std::get<std::string>(data_);
}

int64_t Value::AsDate() const {
  assert(type_ == ValueType::kDate);
  return std::get<int64_t>(data_);
}

namespace {

bool IsNumeric(ValueType t) {
  return t == ValueType::kInt || t == ValueType::kDouble ||
         t == ValueType::kBool || t == ValueType::kDate;
}

}  // namespace

bool Value::SqlEquals(const Value& other) const {
  if (is_null() || other.is_null()) return false;
  return Compare(other) == 0;
}

int Value::Compare(const Value& other) const {
  // NULLs first.
  if (is_null() && other.is_null()) return 0;
  if (is_null()) return -1;
  if (other.is_null()) return 1;

  if (type_ == ValueType::kString && other.type_ == ValueType::kString) {
    const std::string& a = AsString();
    const std::string& b = other.AsString();
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  if (IsNumeric(type_) && IsNumeric(other.type_)) {
    // Fast path: both integer-backed (int/date) — avoids double rounding.
    bool a_int = type_ != ValueType::kDouble && type_ != ValueType::kBool;
    bool b_int =
        other.type_ != ValueType::kDouble && other.type_ != ValueType::kBool;
    if (a_int && b_int) {
      int64_t a = std::get<int64_t>(data_);
      int64_t b = std::get<int64_t>(other.data_);
      if (a < b) return -1;
      if (a > b) return 1;
      return 0;
    }
    double a = AsDouble();
    double b = other.AsDouble();
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  // Heterogeneous (string vs numeric): order by type tag. The planner rejects
  // such comparisons; this branch only keeps sorting total.
  if (type_ < other.type_) return -1;
  if (type_ > other.type_) return 1;
  return 0;
}

bool Value::ExactlyEquals(const Value& other) const {
  if (is_null() || other.is_null()) return is_null() && other.is_null();
  return Compare(other) == 0;
}

size_t Value::Hash() const {
  switch (type_) {
    case ValueType::kNull:
      return 0x9e3779b97f4a7c15ULL;
    case ValueType::kString:
      return std::hash<std::string>{}(AsString());
    default: {
      // Hash all numerics by double value so Int(3) == Double(3.0) buckets
      // collide, matching SqlEquals.
      double d = AsDouble();
      if (d == 0.0) d = 0.0;  // normalize -0.0
      return std::hash<double>{}(d);
    }
  }
}

std::string Value::ToSqlLiteral() const {
  switch (type_) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kBool:
      return AsBool() ? "TRUE" : "FALSE";
    case ValueType::kInt:
      return std::to_string(std::get<int64_t>(data_));
    case ValueType::kDouble: {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.17g", std::get<double>(data_));
      return buf;
    }
    case ValueType::kString: {
      std::string out = "'";
      for (char c : AsString()) {
        if (c == '\'') out += "''";
        else out += c;
      }
      out += "'";
      return out;
    }
    case ValueType::kDate: {
      int y, m, d;
      CivilFromDays(std::get<int64_t>(data_), &y, &m, &d);
      char buf[24];
      std::snprintf(buf, sizeof(buf), "DATE '%04d-%02d-%02d'", y, m, d);
      return buf;
    }
  }
  return "?";
}

std::string Value::ToDisplayString() const {
  switch (type_) {
    case ValueType::kString:
      return AsString();
    case ValueType::kDate: {
      int y, m, d;
      CivilFromDays(std::get<int64_t>(data_), &y, &m, &d);
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", y, m, d);
      return buf;
    }
    case ValueType::kDouble: {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.6f", std::get<double>(data_));
      return buf;
    }
    default:
      return ToSqlLiteral();
  }
}

// Howard Hinnant's days-from-civil algorithm.
int64_t DaysFromCivil(int y, int m, int d) {
  y -= m <= 2;
  const int era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097LL + static_cast<int64_t>(doe) - 719468;
}

void CivilFromDays(int64_t z, int* year, int* month, int* day) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t y = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;
  const unsigned m = mp + (mp < 10 ? 3 : -9);
  *year = static_cast<int>(y + (m <= 2));
  *month = static_cast<int>(m);
  *day = static_cast<int>(d);
}

}  // namespace phoenix::common
