#ifndef PHOENIX_COMMON_VALUE_H_
#define PHOENIX_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/status.h"

namespace phoenix::common {

/// SQL data types supported by the engine.
///
/// kDate is stored as days since 1970-01-01 (int32 range), which keeps date
/// arithmetic ("+ 90 days" style predicates in TPC-H) trivial.
enum class ValueType : uint8_t {
  kNull = 0,
  kBool = 1,
  kInt = 2,     // 64-bit signed
  kDouble = 3,  // stands in for SQL DECIMAL as in many embedded engines
  kString = 4,  // VARCHAR
  kDate = 5,    // days since epoch, stored as int64
};

/// Returns the SQL-ish spelling, e.g. "INTEGER", "VARCHAR".
const char* ValueTypeName(ValueType type);

/// A dynamically typed SQL value (the cell of a row).
///
/// Values order NULL first (SQL Server semantics for ORDER BY), and compare
/// across numeric types (INT vs DOUBLE) by promoting to double. Equality with
/// NULL is false except via ExactlyEquals, mirroring three-valued logic where
/// the executor needs it.
class Value {
 public:
  /// Constructs SQL NULL.
  Value() : type_(ValueType::kNull) {}

  static Value Null() { return Value(); }
  static Value Bool(bool v);
  static Value Int(int64_t v);
  static Value Double(double v);
  static Value String(std::string v);
  static Value Date(int64_t days_since_epoch);

  /// Parses "YYYY-MM-DD" into a date value.
  static Result<Value> DateFromString(const std::string& iso);

  ValueType type() const { return type_; }
  bool is_null() const { return type_ == ValueType::kNull; }

  /// Typed accessors; calling the wrong one is a programming error (asserts).
  bool AsBool() const;
  int64_t AsInt() const;
  double AsDouble() const;  // also valid on kInt/kDate (promotes)
  const std::string& AsString() const;
  int64_t AsDate() const;

  /// True if both are non-null and equal under SQL comparison, with numeric
  /// promotion. NULL == anything -> false.
  bool SqlEquals(const Value& other) const;

  /// Three-way SQL comparison: <0, 0, >0. NULLs sort first. Mixed numeric
  /// types compare as double. Comparing string with number is an error caught
  /// at plan time, here it falls back to type ordering.
  int Compare(const Value& other) const;

  /// Structural equality (NULL equals NULL). Used by tests and containers.
  bool ExactlyEquals(const Value& other) const;

  /// Hash consistent with ExactlyEquals; numeric kinds hash by double value
  /// so that Int(3) and Double(3.0) can land in the same join-hash bucket.
  size_t Hash() const;

  /// SQL literal rendering: strings quoted and escaped, dates as YYYY-MM-DD.
  std::string ToSqlLiteral() const;

  /// Display rendering (no quotes).
  std::string ToDisplayString() const;

 private:
  ValueType type_;
  std::variant<std::monostate, bool, int64_t, double, std::string> data_;
};

inline bool operator==(const Value& a, const Value& b) {
  return a.ExactlyEquals(b);
}

using Row = std::vector<Value>;

/// Converts a (year, month, day) triple to days since 1970-01-01.
/// Valid for years 1600..9999 (proleptic Gregorian).
int64_t DaysFromCivil(int year, int month, int day);

/// Inverse of DaysFromCivil.
void CivilFromDays(int64_t days, int* year, int* month, int* day);

}  // namespace phoenix::common

#endif  // PHOENIX_COMMON_VALUE_H_
