#ifndef PHOENIX_COMMON_STATUS_H_
#define PHOENIX_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace phoenix::common {

/// Canonical error codes used across all phoenix_odbc libraries.
///
/// The subset is deliberately small; what matters for Phoenix recovery logic
/// is distinguishing *connection-level* failures (kConnectionFailed,
/// kServerDown, kTimeout — candidates for transparent recovery) from
/// *statement-level* errors (kInvalidArgument, kNotFound, ... — surfaced to
/// the application unchanged).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // bad SQL, bad handle usage, bad parameter
  kNotFound,          // missing table/column/procedure/row
  kAlreadyExists,     // duplicate table/procedure/key
  kConnectionFailed,  // could not reach the server
  kServerDown,        // server crashed mid-request / connection dropped
  kTimeout,           // request or lock wait timed out
  kAborted,           // transaction aborted (deadlock victim, crash rollback)
  kConstraintViolation,
  kIoError,           // WAL / checkpoint file problems
  kInternal,          // invariant violation; always a bug
  kUnsupported,       // feature outside the implemented SQL subset
  kClientCacheOverflow,  // client-side result cache budget exceeded; caller
                         // falls back to the persisted-result path
  kStaleEpoch,        // server fenced: a newer primary epoch exists; writes
                      // and connects are rejected deterministically
  kShardUnavailable,  // one engine shard is down; the connection (and every
                      // other shard) keeps serving. Message names the shard:
                      // "shard <i> unavailable". Deliberately NOT
                      // connection-level — transports must not tear down the
                      // whole session for a partial outage; the Phoenix
                      // driver runs scoped recovery against that shard only.
};

/// Returns a stable human-readable name, e.g. "NotFound".
const char* StatusCodeName(StatusCode code);

/// Result of an operation: a code plus a context message.
///
/// Follows the RocksDB/Arrow idiom: no exceptions cross library boundaries;
/// every fallible operation returns Status or Result<T>.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ConnectionFailed(std::string msg) {
    return Status(StatusCode::kConnectionFailed, std::move(msg));
  }
  static Status ServerDown(std::string msg) {
    return Status(StatusCode::kServerDown, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status ConstraintViolation(std::string msg) {
    return Status(StatusCode::kConstraintViolation, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status ClientCacheOverflow(std::string msg) {
    return Status(StatusCode::kClientCacheOverflow, std::move(msg));
  }
  static Status StaleEpoch(std::string msg) {
    return Status(StatusCode::kStaleEpoch, std::move(msg));
  }
  static Status ShardUnavailable(std::string msg) {
    return Status(StatusCode::kShardUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// True when a client-side result cache refused the result for size;
  /// strictly a client-local signal (never crosses the wire).
  bool IsClientCacheOverflow() const {
    return code_ == StatusCode::kClientCacheOverflow;
  }

  /// True for failures that indicate the server (not the request) is in
  /// trouble; these are the failures Phoenix recovery masks.
  bool IsConnectionLevel() const {
    return code_ == StatusCode::kConnectionFailed ||
           code_ == StatusCode::kServerDown || code_ == StatusCode::kTimeout;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code() && a.message() == b.message();
}

/// A Status or a value of type T.
///
/// Minimal StatusOr: use `ok()` / `status()` / `value()`. `value()` on a
/// non-OK result aborts (it is a programming error, like dereferencing a
/// disengaged optional).
template <typename T>
class Result {
 public:
  /// Implicit from value and from error Status, so functions can
  /// `return MakeThing();` or `return Status::NotFound(...)`.
  Result(T value) : value_(std::move(value)) {}
  Result(Status status) : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() & { return value_.value(); }
  const T& value() const& { return value_.value(); }
  T&& value() && { return std::move(value_).value(); }

  T& operator*() & { return value_.value(); }
  const T& operator*() const& { return value_.value(); }
  T* operator->() { return &value_.value(); }
  const T* operator->() const { return &value_.value(); }

 private:
  Status status_;  // OK iff value_ engaged
  std::optional<T> value_;
};

/// Propagates a non-OK Status from an expression.
#define PHX_RETURN_IF_ERROR(expr)                 \
  do {                                            \
    ::phoenix::common::Status _phx_st = (expr);   \
    if (!_phx_st.ok()) return _phx_st;            \
  } while (0)

/// Evaluates a Result<T> expression; on error returns its Status, otherwise
/// moves the value into `lhs` (declare lhs in the macro argument).
#define PHX_ASSIGN_OR_RETURN(lhs, expr)          \
  PHX_ASSIGN_OR_RETURN_IMPL(                     \
      PHX_STATUS_CONCAT(_phx_res, __LINE__), lhs, expr)

#define PHX_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).value()

#define PHX_STATUS_CONCAT_IMPL(a, b) a##b
#define PHX_STATUS_CONCAT(a, b) PHX_STATUS_CONCAT_IMPL(a, b)

}  // namespace phoenix::common

#endif  // PHOENIX_COMMON_STATUS_H_
