#include "common/rng.h"

namespace phoenix::common {

std::string Rng::AlphaString(int min_len, int max_len) {
  static constexpr char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
  int len = static_cast<int>(Uniform(min_len, max_len));
  std::string out;
  out.reserve(len);
  for (int i = 0; i < len; ++i) {
    out.push_back(kAlphabet[Next64() % (sizeof(kAlphabet) - 1)]);
  }
  return out;
}

std::string Rng::NumericString(int min_len, int max_len) {
  int len = static_cast<int>(Uniform(min_len, max_len));
  std::string out;
  out.reserve(len);
  for (int i = 0; i < len; ++i) {
    out.push_back(static_cast<char>('0' + Next64() % 10));
  }
  return out;
}

}  // namespace phoenix::common
