#ifndef PHOENIX_COMMON_THREAD_ANNOTATIONS_H_
#define PHOENIX_COMMON_THREAD_ANNOTATIONS_H_

/// Clang thread-safety-analysis attributes (-Wthread-safety). GCC compiles
/// them away, so annotated code builds everywhere; only Clang builds (the
/// PHOENIX_THREAD_SAFETY=ON CMake option) enforce them. Annotate with the
/// macros, not the raw attributes, so the intent survives compiler changes.
///
/// Conventions in this codebase:
///  * data members guarded by a mutex carry PHX_GUARDED_BY(mu_);
///  * private helpers that assume the lock carry PHX_REQUIRES(mu_);
///  * the annotated common::Mutex / common::MutexLock wrappers (mutex.h)
///    give the analysis its lock/unlock events.

#if defined(__clang__)
#define PHX_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define PHX_THREAD_ANNOTATION(x)
#endif

#define PHX_CAPABILITY(x) PHX_THREAD_ANNOTATION(capability(x))
#define PHX_SCOPED_CAPABILITY PHX_THREAD_ANNOTATION(scoped_lockable)
#define PHX_GUARDED_BY(x) PHX_THREAD_ANNOTATION(guarded_by(x))
#define PHX_PT_GUARDED_BY(x) PHX_THREAD_ANNOTATION(pt_guarded_by(x))
#define PHX_REQUIRES(...) \
  PHX_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define PHX_ACQUIRE(...) PHX_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define PHX_RELEASE(...) PHX_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define PHX_EXCLUDES(...) PHX_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define PHX_RETURN_CAPABILITY(x) PHX_THREAD_ANNOTATION(lock_returned(x))
#define PHX_NO_THREAD_SAFETY_ANALYSIS \
  PHX_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // PHOENIX_COMMON_THREAD_ANNOTATIONS_H_
