#include "common/bytes.h"

namespace phoenix::common {

void BinaryWriter::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void BinaryWriter::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void BinaryWriter::PutDouble(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void BinaryWriter::PutString(std::string_view s) {
  PutU32(static_cast<uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void BinaryWriter::PutValue(const Value& v) {
  PutU8(static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kBool:
      PutU8(v.AsBool() ? 1 : 0);
      break;
    case ValueType::kInt:
      PutI64(v.AsInt());
      break;
    case ValueType::kDouble:
      PutDouble(v.AsDouble());
      break;
    case ValueType::kString:
      PutString(v.AsString());
      break;
    case ValueType::kDate:
      PutI64(v.AsDate());
      break;
  }
}

void BinaryWriter::PutRow(const Row& row) {
  PutU32(static_cast<uint32_t>(row.size()));
  for (const Value& v : row) PutValue(v);
}

void BinaryWriter::PutSchema(const Schema& schema) {
  PutU32(static_cast<uint32_t>(schema.num_columns()));
  for (const ColumnDef& col : schema.columns()) {
    PutString(col.name);
    PutU8(static_cast<uint8_t>(col.type));
    PutU8(col.nullable ? 1 : 0);
  }
}

Status BinaryReader::Need(size_t n) {
  if (pos_ + n > size_) {
    return Status::IoError("truncated record: need " + std::to_string(n) +
                           " bytes at offset " + std::to_string(pos_) +
                           ", have " + std::to_string(size_ - pos_));
  }
  return Status::OK();
}

Result<uint8_t> BinaryReader::GetU8() {
  PHX_RETURN_IF_ERROR(Need(1));
  return data_[pos_++];
}

Result<uint32_t> BinaryReader::GetU32() {
  PHX_RETURN_IF_ERROR(Need(4));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  return v;
}

Result<uint64_t> BinaryReader::GetU64() {
  PHX_RETURN_IF_ERROR(Need(8));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  return v;
}

Result<int64_t> BinaryReader::GetI64() {
  PHX_ASSIGN_OR_RETURN(uint64_t v, GetU64());
  return static_cast<int64_t>(v);
}

Result<double> BinaryReader::GetDouble() {
  PHX_ASSIGN_OR_RETURN(uint64_t bits, GetU64());
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

Result<std::string> BinaryReader::GetString() {
  PHX_ASSIGN_OR_RETURN(uint32_t len, GetU32());
  PHX_RETURN_IF_ERROR(Need(len));
  std::string s(reinterpret_cast<const char*>(data_ + pos_), len);
  pos_ += len;
  return s;
}

Result<Value> BinaryReader::GetValue() {
  PHX_ASSIGN_OR_RETURN(uint8_t tag, GetU8());
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull:
      return Value::Null();
    case ValueType::kBool: {
      PHX_ASSIGN_OR_RETURN(uint8_t b, GetU8());
      return Value::Bool(b != 0);
    }
    case ValueType::kInt: {
      PHX_ASSIGN_OR_RETURN(int64_t v, GetI64());
      return Value::Int(v);
    }
    case ValueType::kDouble: {
      PHX_ASSIGN_OR_RETURN(double v, GetDouble());
      return Value::Double(v);
    }
    case ValueType::kString: {
      PHX_ASSIGN_OR_RETURN(std::string s, GetString());
      return Value::String(std::move(s));
    }
    case ValueType::kDate: {
      PHX_ASSIGN_OR_RETURN(int64_t v, GetI64());
      return Value::Date(v);
    }
  }
  return Status::IoError("corrupt value tag " + std::to_string(tag));
}

Result<Row> BinaryReader::GetRow() {
  PHX_ASSIGN_OR_RETURN(uint32_t n, GetU32());
  // Every value costs at least its one-byte type tag; a larger count is a
  // corrupt buffer and must not drive a giant reserve.
  if (n > remaining()) {
    return Status::IoError("row value count " + std::to_string(n) +
                           " exceeds buffer size");
  }
  Row row;
  row.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    PHX_ASSIGN_OR_RETURN(Value v, GetValue());
    row.push_back(std::move(v));
  }
  return row;
}

Result<Schema> BinaryReader::GetSchema() {
  PHX_ASSIGN_OR_RETURN(uint32_t n, GetU32());
  // Each column costs at least 6 bytes (name length, type, nullable).
  if (n > remaining() / 6) {
    return Status::IoError("schema column count " + std::to_string(n) +
                           " exceeds buffer size");
  }
  std::vector<ColumnDef> cols;
  cols.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    ColumnDef col;
    PHX_ASSIGN_OR_RETURN(col.name, GetString());
    PHX_ASSIGN_OR_RETURN(uint8_t tag, GetU8());
    col.type = static_cast<ValueType>(tag);
    PHX_ASSIGN_OR_RETURN(uint8_t nullable, GetU8());
    col.nullable = nullable != 0;
    cols.push_back(std::move(col));
  }
  return Schema(std::move(cols));
}

}  // namespace phoenix::common
