#include "common/strings.h"

#include <cerrno>
#include <cstdlib>

namespace phoenix::common {

char AsciiToUpper(char c) {
  return (c >= 'a' && c <= 'z') ? static_cast<char>(c - 'a' + 'A') : c;
}

char AsciiToLower(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = AsciiToUpper(c);
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = AsciiToLower(c);
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (AsciiToLower(a[i]) != AsciiToLower(b[i])) return false;
  }
  return true;
}

std::string_view Trim(std::string_view s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && (s[begin] == ' ' || s[begin] == '\t' ||
                         s[begin] == '\n' || s[begin] == '\r')) {
    ++begin;
  }
  while (end > begin && (s[end - 1] == ' ' || s[end - 1] == '\t' ||
                         s[end - 1] == '\n' || s[end - 1] == '\r')) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWithIgnoreCase(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() &&
         EqualsIgnoreCase(s.substr(0, prefix.size()), prefix);
}

bool SqlLikeMatch(std::string_view text, std::string_view pattern) {
  // Iterative two-pointer match with backtracking on the last '%'.
  size_t t = 0, p = 0;
  size_t star_p = std::string_view::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

std::string SqlQuoteLiteral(std::string_view value) {
  std::string out;
  out.reserve(value.size() + 2);
  out.push_back('\'');
  for (char c : value) {
    if (c == '\'') out.push_back('\'');
    out.push_back(c);
  }
  out.push_back('\'');
  return out;
}

int64_t ParseNonNegativeKnob(const char* text, int64_t fallback) {
  if (text == nullptr || *text == '\0') return fallback;
  char* end = nullptr;
  errno = 0;
  long long v = std::strtoll(text, &end, 10);
  // Partial parses ("64k", "12; DROP") are garbage, not a prefix to honor,
  // and overflow saturates rather than wrapping — also garbage.
  if (end == nullptr || *end != '\0') return fallback;
  if (errno == ERANGE || v < 0) return fallback;
  return static_cast<int64_t>(v);
}

int64_t ParseNonNegativeKnob(const std::string& text, int64_t fallback) {
  return ParseNonNegativeKnob(text.c_str(), fallback);
}

}  // namespace phoenix::common
