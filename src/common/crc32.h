#ifndef PHOENIX_COMMON_CRC32_H_
#define PHOENIX_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace phoenix::common {

/// CRC-32 (IEEE 802.3 polynomial). Used for WAL record integrity so replay
/// can detect torn tail writes after a crash.
uint32_t Crc32(const uint8_t* data, size_t size);

}  // namespace phoenix::common

#endif  // PHOENIX_COMMON_CRC32_H_
