#ifndef PHOENIX_COMMON_BYTES_H_
#define PHOENIX_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/schema.h"
#include "common/status.h"
#include "common/value.h"

namespace phoenix::common {

/// Appends little-endian fixed-width and length-prefixed variable-width
/// fields into a byte buffer. Used by both the WAL record format and the
/// wire protocol so the two share one tested codec.
class BinaryWriter {
 public:
  BinaryWriter() = default;
  /// Adopts `reuse` (cleared, capacity kept) so hot paths can recycle one
  /// allocation across serializations instead of growing a fresh vector
  /// each time. TakeData() hands the buffer back for the next round.
  explicit BinaryWriter(std::vector<uint8_t> reuse) : buf_(std::move(reuse)) {
    buf_.clear();
  }

  /// Grows capacity to at least `n` bytes up front; callers with a size
  /// estimate (schema-derived row sizes) avoid repeated reallocation.
  void Reserve(size_t n) { buf_.reserve(n); }

  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutDouble(double v);
  void PutString(std::string_view s);  // u32 length prefix + bytes
  void PutValue(const Value& v);
  void PutRow(const Row& row);
  void PutSchema(const Schema& schema);

  const std::vector<uint8_t>& data() const { return buf_; }
  std::vector<uint8_t> TakeData() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  std::vector<uint8_t> buf_;
};

/// Reads back what BinaryWriter wrote. All getters return an error Status on
/// truncated or corrupt input instead of reading out of bounds — WAL replay
/// after a crash can legitimately see a torn tail record.
class BinaryReader {
 public:
  BinaryReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit BinaryReader(const std::vector<uint8_t>& buf)
      : data_(buf.data()), size_(buf.size()) {}

  Result<uint8_t> GetU8();
  Result<uint32_t> GetU32();
  Result<uint64_t> GetU64();
  Result<int64_t> GetI64();
  Result<double> GetDouble();
  Result<std::string> GetString();
  Result<Value> GetValue();
  Result<Row> GetRow();
  Result<Schema> GetSchema();

  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }
  size_t position() const { return pos_; }

 private:
  Status Need(size_t n);

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace phoenix::common

#endif  // PHOENIX_COMMON_BYTES_H_
