#ifndef PHOENIX_COMMON_SCHEMA_H_
#define PHOENIX_COMMON_SCHEMA_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace phoenix::common {

/// One column of a table or result set.
struct ColumnDef {
  std::string name;
  ValueType type = ValueType::kNull;
  bool nullable = true;

  ColumnDef() = default;
  ColumnDef(std::string n, ValueType t, bool null_ok = true)
      : name(std::move(n)), type(t), nullable(null_ok) {}
};

bool operator==(const ColumnDef& a, const ColumnDef& b);

/// An ordered list of columns describing a table or a result set.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> columns)
      : columns_(std::move(columns)) {}

  const std::vector<ColumnDef>& columns() const { return columns_; }
  size_t num_columns() const { return columns_.size(); }
  const ColumnDef& column(size_t i) const { return columns_[i]; }

  void AddColumn(ColumnDef col) { columns_.push_back(std::move(col)); }

  /// Case-insensitive column lookup; -1 if absent.
  int FindColumn(const std::string& name) const;

  /// Checks that `row` has the right arity and types compatible with each
  /// column (NULL allowed only if nullable; INT accepted for DOUBLE).
  Status ValidateRow(const Row& row) const;

  /// "(name TYPE [NOT NULL], ...)" — usable in a CREATE TABLE statement.
  std::string ToDdlColumnList() const;

  bool operator==(const Schema& other) const {
    return columns_ == other.columns_;
  }

 private:
  std::vector<ColumnDef> columns_;
};

/// Approximate serialized size of a row in bytes (send buffers, client
/// result cache accounting).
size_t ApproxRowBytes(const Row& row);

/// A fully materialized query result: schema + rows. This is the unit moved
/// across the wire protocol and cached by Phoenix's client result cache.
struct ResultSet {
  Schema schema;
  std::vector<Row> rows;
  /// For INSERT/UPDATE/DELETE: number of rows affected (-1 for queries).
  int64_t rows_affected = -1;

  bool IsQueryResult() const { return rows_affected < 0; }
};

}  // namespace phoenix::common

#endif  // PHOENIX_COMMON_SCHEMA_H_
