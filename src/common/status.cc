#include "common/status.h"

namespace phoenix::common {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kConnectionFailed:
      return "ConnectionFailed";
    case StatusCode::kServerDown:
      return "ServerDown";
    case StatusCode::kTimeout:
      return "Timeout";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kConstraintViolation:
      return "ConstraintViolation";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kClientCacheOverflow:
      return "ClientCacheOverflow";
    case StatusCode::kStaleEpoch:
      return "StaleEpoch";
    case StatusCode::kShardUnavailable:
      return "ShardUnavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace phoenix::common
