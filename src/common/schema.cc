#include "common/schema.h"

#include "common/strings.h"

namespace phoenix::common {

bool operator==(const ColumnDef& a, const ColumnDef& b) {
  return a.name == b.name && a.type == b.type && a.nullable == b.nullable;
}

int Schema::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (EqualsIgnoreCase(columns_[i].name, name)) return static_cast<int>(i);
  }
  return -1;
}

Status Schema::ValidateRow(const Row& row) const {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        "row has " + std::to_string(row.size()) + " values, table has " +
        std::to_string(columns_.size()) + " columns");
  }
  for (size_t i = 0; i < row.size(); ++i) {
    const Value& v = row[i];
    const ColumnDef& col = columns_[i];
    if (v.is_null()) {
      if (!col.nullable) {
        return Status::ConstraintViolation("NULL in NOT NULL column '" +
                                           col.name + "'");
      }
      continue;
    }
    bool ok = false;
    switch (col.type) {
      case ValueType::kInt:
        ok = v.type() == ValueType::kInt;
        break;
      case ValueType::kDouble:
        // Accept int literals for double columns (SQL numeric promotion).
        ok = v.type() == ValueType::kDouble || v.type() == ValueType::kInt;
        break;
      case ValueType::kString:
        ok = v.type() == ValueType::kString;
        break;
      case ValueType::kDate:
        ok = v.type() == ValueType::kDate;
        break;
      case ValueType::kBool:
        ok = v.type() == ValueType::kBool;
        break;
      case ValueType::kNull:
        ok = true;
        break;
    }
    if (!ok) {
      return Status::InvalidArgument("type mismatch in column '" + col.name +
                                     "': expected " +
                                     ValueTypeName(col.type) + ", got " +
                                     ValueTypeName(v.type()));
    }
  }
  return Status::OK();
}

size_t ApproxRowBytes(const Row& row) {
  size_t total = 8;
  for (const Value& v : row) {
    total += 9;
    if (v.type() == ValueType::kString) total += v.AsString().size();
  }
  return total;
}

std::string Schema::ToDdlColumnList() const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    // Quote: result-set column names may be arbitrary expressions, e.g.
    // "SUM(ps_supplycost * ps_availqty)".
    out += "\"" + columns_[i].name + "\"";
    out += " ";
    out += ValueTypeName(columns_[i].type);
    if (!columns_[i].nullable) out += " NOT NULL";
  }
  out += ")";
  return out;
}

}  // namespace phoenix::common
