#ifndef PHOENIX_COMMON_MUTEX_H_
#define PHOENIX_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace phoenix::common {

/// std::mutex with thread-safety-analysis capability annotations so
/// PHX_GUARDED_BY / PHX_REQUIRES declarations are enforced under Clang's
/// -Wthread-safety (see thread_annotations.h). Same cost as std::mutex.
class PHX_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() PHX_ACQUIRE() { mu_.lock(); }
  void Unlock() PHX_RELEASE() { mu_.unlock(); }

  /// For condition_variable_any waits and std adapters. Waiting releases and
  /// reacquires the mutex, which the static analysis cannot follow; the wait
  /// call sites carry PHX_NO_THREAD_SAFETY_ANALYSIS or re-assert.
  std::mutex& native() PHX_RETURN_CAPABILITY(this) { return mu_; }

 private:
  std::mutex mu_;
};

/// RAII scoped lock over common::Mutex (annotated std::lock_guard).
class PHX_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) PHX_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() PHX_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// Condition variable usable with common::Mutex. Wait() is annotated as
/// requiring the mutex; the analysis treats the wait as keeping it held,
/// which matches the caller-visible contract.
class CondVar {
 public:
  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

  template <typename Predicate>
  void Wait(Mutex& mu, Predicate pred) PHX_REQUIRES(mu) {
    WaitImpl(mu, std::move(pred));
  }

  template <typename Predicate>
  bool WaitUntil(Mutex& mu,
                 const std::chrono::steady_clock::time_point& deadline,
                 Predicate pred) PHX_REQUIRES(mu) {
    return WaitUntilImpl(mu, deadline, std::move(pred));
  }

  /// Predicate-free timed wait (callers re-check state themselves).
  std::cv_status WaitUntil(
      Mutex& mu, const std::chrono::steady_clock::time_point& deadline)
      PHX_REQUIRES(mu) {
    return WaitUntilNoPredImpl(mu, deadline);
  }

 private:
  template <typename Predicate>
  void WaitImpl(Mutex& mu, Predicate pred) PHX_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> lock(mu.native(), std::adopt_lock);
    cv_.wait(lock, std::move(pred));
    lock.release();
  }

  std::cv_status WaitUntilNoPredImpl(
      Mutex& mu, const std::chrono::steady_clock::time_point& deadline)
      PHX_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> lock(mu.native(), std::adopt_lock);
    std::cv_status status = cv_.wait_until(lock, deadline);
    lock.release();
    return status;
  }

  template <typename Predicate>
  bool WaitUntilImpl(Mutex& mu,
                     const std::chrono::steady_clock::time_point& deadline,
                     Predicate pred) PHX_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> lock(mu.native(), std::adopt_lock);
    bool ok = cv_.wait_until(lock, deadline, std::move(pred));
    lock.release();
    return ok;
  }

  std::condition_variable cv_;
};

}  // namespace phoenix::common

#endif  // PHOENIX_COMMON_MUTEX_H_
