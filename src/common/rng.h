#ifndef PHOENIX_COMMON_RNG_H_
#define PHOENIX_COMMON_RNG_H_

#include <cstdint>
#include <string>

namespace phoenix::common {

/// Deterministic, seedable PRNG (splitmix64 + xoshiro-style step) used by the
/// TPC data generators and the crash-point fuzzers, so every experiment is
/// reproducible from its seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5deece66dULL) { Reseed(seed); }

  void Reseed(uint64_t seed) {
    // splitmix64 to spread the seed across state.
    state_ = seed + 0x9e3779b97f4a7c15ULL;
    (void)Next64();
  }

  uint64_t Next64() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t Uniform(int64_t lo, int64_t hi) {
    if (hi <= lo) return lo;
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(Next64() % span);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// TPC-C NURand non-uniform random, per clause 2.1.6.
  int64_t NURand(int64_t a, int64_t x, int64_t y, int64_t c_const) {
    return (((Uniform(0, a) | Uniform(x, y)) + c_const) % (y - x + 1)) + x;
  }

  /// Random alphanumeric string with length in [min_len, max_len].
  std::string AlphaString(int min_len, int max_len);

  /// Random numeric string with length in [min_len, max_len].
  std::string NumericString(int min_len, int max_len);

 private:
  uint64_t state_ = 0;
};

}  // namespace phoenix::common

#endif  // PHOENIX_COMMON_RNG_H_
