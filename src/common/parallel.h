#ifndef PHOENIX_COMMON_PARALLEL_H_
#define PHOENIX_COMMON_PARALLEL_H_

#include <atomic>
#include <cstddef>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace phoenix::common {

/// Runs task(0) .. task(n-1) on up to `threads` workers (the calling thread
/// participates, so `threads` is the total concurrency, not the spawn
/// count). Tasks are claimed from a shared atomic counter, so uneven task
/// costs balance automatically. Returns the first failure observed; later
/// tasks are skipped once any task fails (in-flight ones still finish).
/// With threads <= 1 (or n <= 1) everything runs inline on the caller —
/// identical task order, no thread is spawned.
///
/// `task` must be safe to call concurrently for distinct indexes; the
/// recovery path uses one index per table so no two workers ever touch the
/// same table.
template <typename Fn>
Status RunParallel(size_t threads, size_t n, const Fn& task) {
  if (n == 0) return Status::OK();
  const size_t workers = std::min(threads, n);
  if (workers <= 1) {
    for (size_t i = 0; i < n; ++i) {
      PHX_RETURN_IF_ERROR(task(i));
    }
    return Status::OK();
  }

  std::atomic<size_t> next{0};
  std::atomic<bool> failed{false};
  std::mutex err_mu;
  Status first_error = Status::OK();
  auto worker = [&]() {
    while (!failed.load(std::memory_order_relaxed)) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      Status st = task(i);
      if (!st.ok()) {
        std::lock_guard<std::mutex> lock(err_mu);
        if (first_error.ok()) first_error = std::move(st);
        failed.store(true, std::memory_order_relaxed);
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (size_t w = 0; w + 1 < workers; ++w) pool.emplace_back(worker);
  worker();
  for (std::thread& t : pool) t.join();

  std::lock_guard<std::mutex> lock(err_mu);
  return first_error;
}

}  // namespace phoenix::common

#endif  // PHOENIX_COMMON_PARALLEL_H_
