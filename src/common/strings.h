#ifndef PHOENIX_COMMON_STRINGS_H_
#define PHOENIX_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace phoenix::common {

/// ASCII-only case folding (SQL identifiers are ASCII in this engine).
char AsciiToUpper(char c);
char AsciiToLower(char c);
std::string ToUpper(std::string_view s);
std::string ToLower(std::string_view s);

/// Case-insensitive ASCII comparison, the collation for identifiers.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Trims ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

/// Splits on a single character; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `s` starts with `prefix`, ignoring ASCII case.
bool StartsWithIgnoreCase(std::string_view s, std::string_view prefix);

/// SQL LIKE with % and _ wildcards (case-sensitive, as SQL Server default
/// collation is case-insensitive but our engine documents case-sensitive
/// LIKE; TPC-H predicates use exact-case literals).
bool SqlLikeMatch(std::string_view text, std::string_view pattern);

}  // namespace phoenix::common

#endif  // PHOENIX_COMMON_STRINGS_H_
