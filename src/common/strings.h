#ifndef PHOENIX_COMMON_STRINGS_H_
#define PHOENIX_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace phoenix::common {

/// ASCII-only case folding (SQL identifiers are ASCII in this engine).
char AsciiToUpper(char c);
char AsciiToLower(char c);
std::string ToUpper(std::string_view s);
std::string ToLower(std::string_view s);

/// Case-insensitive ASCII comparison, the collation for identifiers.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Trims ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

/// Splits on a single character; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `s` starts with `prefix`, ignoring ASCII case.
bool StartsWithIgnoreCase(std::string_view s, std::string_view prefix);

/// SQL LIKE with % and _ wildcards (case-sensitive, as SQL Server default
/// collation is case-insensitive but our engine documents case-sensitive
/// LIKE; TPC-H predicates use exact-case literals).
bool SqlLikeMatch(std::string_view text, std::string_view pattern);

/// Renders `value` as a SQL string literal, doubling embedded single quotes
/// ('O''Brien'). Every piece of SQL this codebase builds by concatenation
/// MUST route string values through here — a value with an embedded quote
/// must never be able to break out of the literal and splice statements.
std::string SqlQuoteLiteral(std::string_view value);

/// Shared parser for non-negative numeric tuning knobs (connection-string
/// attributes and their environment fallbacks). Returns `fallback` for
/// empty/garbage/partial input AND for negative values — negatives must be
/// rejected before any unsigned cast, never wrapped into a huge positive
/// (the clamp-to-disabled rule). nullptr input returns `fallback` too, so
/// getenv results feed in directly.
int64_t ParseNonNegativeKnob(const char* text, int64_t fallback);
int64_t ParseNonNegativeKnob(const std::string& text, int64_t fallback);

}  // namespace phoenix::common

#endif  // PHOENIX_COMMON_STRINGS_H_
