#ifndef PHOENIX_COMMON_BACKOFF_H_
#define PHOENIX_COMMON_BACKOFF_H_

#include <algorithm>
#include <chrono>
#include <cstdint>

#include "common/rng.h"

namespace phoenix::common {

/// Capped exponential backoff with decorrelated jitter (the AWS
/// architecture-blog variant): each sleep is drawn uniformly from
/// [base, min(cap, 3 * previous)]. Decorrelation keeps a fleet of
/// reconnecting clients from stampeding the recovering server in lockstep,
/// while the cap bounds worst-case detection latency.
class Backoff {
 public:
  Backoff(std::chrono::milliseconds base, std::chrono::milliseconds cap,
          uint64_t seed)
      : base_(std::max<int64_t>(1, base.count())),
        cap_(std::max(base_, cap.count())),
        prev_(base_),
        rng_(seed) {}

  /// Next sleep duration; grows (jittered) toward the cap across calls.
  std::chrono::milliseconds Next() {
    int64_t hi = prev_ > cap_ / 3 ? cap_ : prev_ * 3;
    prev_ = std::min(cap_, rng_.Uniform(base_, std::max(base_, hi)));
    return std::chrono::milliseconds(prev_);
  }

  /// Back to the base interval (call after a successful reconnect).
  void Reset() { prev_ = base_; }

 private:
  int64_t base_;
  int64_t cap_;
  int64_t prev_;
  Rng rng_;
};

}  // namespace phoenix::common

#endif  // PHOENIX_COMMON_BACKOFF_H_
