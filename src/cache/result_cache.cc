#include "cache/result_cache.h"

#include <cctype>

namespace phoenix::cache {

namespace {

void BumpRegistry(const char* name, uint64_t n = 1) {
  if (!obs::Enabled()) return;
  obs::Registry::Global().counter(name)->Add(n);
}

}  // namespace

std::string ResultCache::NormalizeKey(const std::string& sql) {
  std::string out;
  out.reserve(sql.size());
  bool pending_space = false;
  char quote = '\0';  // open quote char while inside a literal/identifier
  for (size_t i = 0; i < sql.size(); ++i) {
    const char c = sql[i];
    if (quote != '\0') {
      // Whitespace inside a quoted span is data ('a  b' != 'a b'): copy
      // verbatim. A doubled quote is the SQL escape for the quote char
      // itself and keeps the span open.
      out.push_back(c);
      if (c == quote) {
        if (i + 1 < sql.size() && sql[i + 1] == quote) {
          out.push_back(sql[++i]);
        } else {
          quote = '\0';
        }
      }
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      pending_space = !out.empty();
      continue;
    }
    if (pending_space) {
      out.push_back(' ');
      pending_space = false;
    }
    out.push_back(c);
    if (c == '\'' || c == '"') quote = c;
  }
  return out;
}

std::shared_ptr<const CachedResult> ResultCache::Lookup(
    const std::string& key, const InvalidationState& ledger,
    const TxnView& txn) {
  common::MutexLock lock(&mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    stats_.misses.fetch_add(1, std::memory_order_relaxed);
    BumpRegistry("phx.rcache.misses");
    return nullptr;
  }
  const std::shared_ptr<const CachedResult>& entry = it->second->result;
  const uint64_t fill_ts = entry->fill_ts;
  // One atomic (clock, newest change) read — the cross-snapshot rule below
  // relates the two, and a digest applied between separate reads could
  // advance the clock past a change the change-ts read never saw.
  const InvalidationState::ReadView view = ledger.View(entry->read_tables);
  const uint64_t newest_change = view.max_change_ts;

  bool valid = false;
  bool permanently_stale = false;
  if (txn.in_txn) {
    bool dirty = false;
    if (txn.dirty_tables != nullptr) {
      for (const std::string& table : entry->read_tables) {
        if (txn.dirty_tables->count(table) > 0) {
          dirty = true;
          break;
        }
      }
    }
    if (!txn.snapshot_known) {
      // The transaction's pinned snapshot is not known yet; a hit could be
      // newer or older than it. Deny — the resulting miss executes for real
      // and teaches us the snapshot. Keep the entry: it may still match.
    } else if (dirty) {
      // The transaction wrote a read table; the cache holds pre-write state
      // and must not shadow read-your-writes. Keep the entry — it becomes
      // valid again if the transaction rolls back.
    } else if (fill_ts == txn.snapshot_ts) {
      // Exact pinned-snapshot match. Commits after S are invisible to the
      // transaction, so even a newest_change > fill_ts cannot disqualify
      // the entry — it is bitwise what re-execution would return.
      valid = true;
    } else {
      // Cross-snapshot reuse: sound only when the ledger proves no read
      // table changed between the two snapshots (change <= min, clock >=
      // max covers the whole interval).
      const uint64_t snap = txn.snapshot_ts;
      const uint64_t lo = fill_ts < snap ? fill_ts : snap;
      const uint64_t hi = fill_ts < snap ? snap : fill_ts;
      valid = view.clock >= hi && newest_change <= lo;
      // Invalid here with a change past the fill snapshot: no future
      // snapshot can match either (this txn's is fixed, future ones only
      // grow) — the entry is dead.
      permanently_stale = !valid && newest_change > fill_ts;
    }
  } else {
    // Autocommit: valid iff every read table is unchanged since the fill
    // snapshot. A newer committed change can never un-happen, so failure
    // here is permanent.
    valid = newest_change <= fill_ts;
    permanently_stale = !valid;
  }

  if (!valid) {
    stats_.misses.fetch_add(1, std::memory_order_relaxed);
    BumpRegistry("phx.rcache.misses");
    if (permanently_stale) {
      EraseLocked(it->second);
      stats_.invalidations.fetch_add(1, std::memory_order_relaxed);
      BumpRegistry("phx.rcache.invalidations");
    }
    return nullptr;
  }

  // Move to MRU position.
  lru_.splice(lru_.begin(), lru_, it->second);
  stats_.hits.fetch_add(1, std::memory_order_relaxed);
  BumpRegistry("phx.rcache.hits");
  if (obs::Enabled()) {
    // Hit age in clock ticks: how far the server clock has advanced past
    // the entry's fill snapshot. Large values = long-lived hot entries.
    static obs::Histogram* const age =
        obs::Registry::Global().histogram("phx.rcache.hit_age");
    age->Record(view.clock > fill_ts ? view.clock - fill_ts : 0);
  }
  return entry;
}

void ResultCache::Insert(const std::string& key, CachedResult result) {
  size_t bytes = key.size() + 64;
  for (const common::Row& row : result.rows) {
    bytes += common::ApproxRowBytes(row);
  }
  for (const std::string& table : result.read_tables) bytes += table.size();
  result.bytes = bytes;
  if (bytes > max_bytes_) return;  // would evict everything and still not fit

  common::MutexLock lock(&mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) EraseLocked(it->second);
  while (bytes_ + bytes > max_bytes_ && !lru_.empty()) {
    EraseLocked(std::prev(lru_.end()));
    stats_.evictions.fetch_add(1, std::memory_order_relaxed);
    BumpRegistry("phx.rcache.evictions");
  }
  lru_.push_front(LruSlot{
      key, std::make_shared<const CachedResult>(std::move(result))});
  entries_[key] = lru_.begin();
  bytes_ += bytes;
  stats_.insertions.fetch_add(1, std::memory_order_relaxed);
  BumpRegistry("phx.rcache.insertions");
  PublishBytesLocked();
}

void ResultCache::Clear() {
  common::MutexLock lock(&mu_);
  lru_.clear();
  entries_.clear();
  bytes_ = 0;
  PublishBytesLocked();
}

void ResultCache::EraseLocked(LruList::iterator it) {
  bytes_ -= it->result->bytes;
  entries_.erase(it->key);
  lru_.erase(it);
  PublishBytesLocked();
}

void ResultCache::PublishBytesLocked() {
  if (!obs::Enabled()) return;
  static obs::Gauge* const gauge =
      obs::Registry::Global().gauge("phx.rcache.bytes");
  gauge->Set(static_cast<int64_t>(bytes_));
}

}  // namespace phoenix::cache
