#ifndef PHOENIX_CACHE_RESULT_CACHE_H_
#define PHOENIX_CACHE_RESULT_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/invalidation.h"
#include "common/mutex.h"
#include "common/schema.h"
#include "common/value.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"

namespace phoenix::cache {

/// One cached result set: the rows, the snapshot they were read at, and the
/// tables whose invalidation counters gate their reuse.
struct CachedResult {
  common::Schema schema;
  std::vector<common::Row> rows;
  /// Pinned snapshot timestamp the result was read as of.
  uint64_t fill_ts = 0;
  /// Persistent tables the plan read (lowercased) — the validity key.
  std::vector<std::string> read_tables;
  /// Approximate footprint, fixed at insert time (LRU accounting).
  size_t bytes = 0;
};

/// The transaction context a lookup runs under (all defaults = autocommit).
struct TxnView {
  /// Inside an explicit transaction.
  bool in_txn = false;
  /// The transaction's pinned snapshot timestamp is known (it is learned
  /// from the first read's response; until then every lookup misses —
  /// serving a hit against an unknown snapshot could be newer OR older than
  /// what the pinned snapshot would return).
  bool snapshot_known = false;
  uint64_t snapshot_ts = 0;
  /// Tables the transaction has written so far; hits on them are suppressed
  /// (the cache never holds read-your-writes state).
  const std::set<std::string>* dirty_tables = nullptr;
};

/// Local + registry dual-write counters for the result cache, mirroring the
/// phx::EventCounter pattern: the locals feed per-connection stats()
/// assertions regardless of whether obs is enabled; the registry names feed
/// the shared exporter.
struct ResultCacheStats {
  std::atomic<uint64_t> hits{0};
  std::atomic<uint64_t> misses{0};
  std::atomic<uint64_t> invalidations{0};  // entries dropped as stale
  std::atomic<uint64_t> insertions{0};
  std::atomic<uint64_t> evictions{0};      // LRU pressure, not staleness
};

/// A byte-bounded, LRU-evicting client result cache that survives across
/// statements and transactions (Pfeifer & Lockemann's transactional method
/// cache, keyed by normalized SQL). Consistency is delegated to the
/// invalidation ledger: a hit is served only when every table the cached
/// plan read is provably unchanged since the entry's fill snapshot — and,
/// inside an explicit transaction, only when the entry is provably equal to
/// what the pinned snapshot would return (never newer, never older).
///
/// Thread safety: fully synchronized.
class ResultCache {
 public:
  explicit ResultCache(size_t max_bytes) : max_bytes_(max_bytes) {}
  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Collapses insignificant whitespace so trivial formatting differences
  /// share one entry ("SELECT  *  FROM t" == "SELECT * FROM t"). Quote-aware:
  /// whitespace inside single-quoted literals and double-quoted identifiers
  /// (including doubled-quote escapes) is preserved verbatim, so
  /// "WHERE name='a  b'" and "WHERE name='a b'" never share a key.
  static std::string NormalizeKey(const std::string& sql);

  /// Returns the entry for `key` iff it is valid under the ledger and
  /// transaction context; nullptr otherwise (counted as a miss; entries
  /// proven permanently stale are dropped and counted as invalidations).
  ///
  /// Validity (DESIGN.md §16), with F = entry fill snapshot, L = ledger
  /// clock, change(t) = newest known change of read table t:
  ///  - autocommit:            ∀t change(t) <= F
  ///  - explicit txn pinned S: F == S (commits after S are invisible to the
  ///                           pinned snapshot, so the entry matches even if
  ///                           a read table changed since), or
  ///                           L >= max(F,S) and ∀t change(t) <= min(F,S)
  ///    (the second form proves no read table changed between the two
  ///    snapshots, so the results are identical); additionally the snapshot
  ///    must be known and no read table dirty in this transaction.
  std::shared_ptr<const CachedResult> Lookup(const std::string& key,
                                             const InvalidationState& ledger,
                                             const TxnView& txn);

  /// Inserts (or replaces) an entry, evicting LRU entries to fit. An entry
  /// alone exceeding the byte budget is refused.
  void Insert(const std::string& key, CachedResult result);

  /// Drops everything (crash recovery: the paper's contract — a crash
  /// simply drops the cache and re-executes).
  void Clear();

  size_t bytes() const {
    common::MutexLock lock(&mu_);
    return bytes_;
  }
  size_t entries() const {
    common::MutexLock lock(&mu_);
    return entries_.size();
  }
  size_t max_bytes() const { return max_bytes_; }
  const ResultCacheStats& stats() const { return stats_; }

 private:
  struct LruSlot {
    std::string key;
    std::shared_ptr<const CachedResult> result;
  };
  using LruList = std::list<LruSlot>;

  void EraseLocked(LruList::iterator it) PHX_REQUIRES(mu_);
  void PublishBytesLocked() PHX_REQUIRES(mu_);

  const size_t max_bytes_;
  mutable common::Mutex mu_;
  LruList lru_ PHX_GUARDED_BY(mu_);  // front = most recently used
  std::unordered_map<std::string, LruList::iterator> entries_
      PHX_GUARDED_BY(mu_);
  size_t bytes_ PHX_GUARDED_BY(mu_) = 0;
  ResultCacheStats stats_;
};

}  // namespace phoenix::cache

#endif  // PHOENIX_CACHE_RESULT_CACHE_H_
