#ifndef PHOENIX_CACHE_INVALIDATION_H_
#define PHOENIX_CACHE_INVALIDATION_H_

#include <cstdint>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace phoenix::cache {

/// One wire response's worth of result-cache consistency metadata — the
/// trailing invalidation group the server piggybacks on every response,
/// already decoded out of the frame (the driver copies it over so this
/// library stays independent of the wire layer).
struct ResponseConsistency {
  /// Server clock the digest is current through.
  uint64_t stable_ts = 0;
  /// Execute responses: pinned snapshot the statement read as of (0=none).
  uint64_t snapshot_ts = 0;
  /// Execute responses: server judged the result safe to cache.
  bool cacheable = false;
  /// Execute responses: persistent tables the plan read.
  std::vector<std::string> read_tables;
  /// Execute responses: tables the session's open txn has written so far.
  std::vector<std::string> write_tables;
  /// Tables changed since the request's cache_clock: name → commit ts.
  std::vector<std::pair<std::string, uint64_t>> invalidated;
};

/// The client half of the invalidation protocol (DESIGN.md §16): a ledger,
/// one per server connection, of (a) the highest stable clock the server has
/// advertised and (b) per table, the commit timestamp of the newest change
/// the server has reported. Both only ever grow; applying digests out of
/// order (prefetch pipelining) is therefore safe — a late digest can only
/// re-assert already-known change timestamps.
///
/// Soundness invariant the cache leans on: after Apply() of a response whose
/// digest was computed since clock C, every table change with
/// C < cts <= clock() is recorded in the ledger. A cached result filled at
/// snapshot F with change_ts(t) <= F for every table t it read is therefore
/// current — no committed change to those tables can hide between F and the
/// clock.
///
/// Thread safety: fully synchronized (prefetch absorption and statement
/// execution may touch it from different call paths).
class InvalidationState {
 public:
  /// Folds one response's digest into the ledger.
  void Apply(const ResponseConsistency& response) {
    common::MutexLock lock(&mu_);
    for (const auto& [table, cts] : response.invalidated) {
      uint64_t& known = change_ts_[table];
      if (cts > known) known = cts;
    }
    // Clock advances only after the digest that justifies it is applied
    // (same critical section).
    if (response.stable_ts > clock_) clock_ = response.stable_ts;
  }

  /// Highest stable server clock applied so far; stamped into every request
  /// so the server's next digest is incremental.
  uint64_t clock() const {
    common::MutexLock lock(&mu_);
    return clock_;
  }

  /// Commit timestamp of the newest known change to `table` (0 = no change
  /// ever reported).
  uint64_t ChangeTs(const std::string& table) const {
    common::MutexLock lock(&mu_);
    auto it = change_ts_.find(table);
    return it == change_ts_.end() ? 0 : it->second;
  }

  /// Max ChangeTs over a read set (0 for an empty set).
  uint64_t MaxChangeTs(const std::vector<std::string>& tables) const {
    common::MutexLock lock(&mu_);
    return MaxChangeTsLocked(tables);
  }

  /// A mutually consistent (clock, max change ts) pair for a read set.
  struct ReadView {
    uint64_t clock = 0;
    uint64_t max_change_ts = 0;
  };

  /// Reads the clock and the read set's newest change under ONE lock
  /// acquisition. Validity checks that relate the two (cross-snapshot reuse:
  /// clock >= hi and change <= lo) must use this: with separate clock() /
  /// MaxChangeTs() calls a concurrently applied digest can advance the clock
  /// past hi after the change timestamps were read, hiding a change in
  /// (lo, hi] and validating a stale entry. Apply() updates change
  /// timestamps and clock in one critical section, so a single acquisition
  /// here always sees whole digests.
  ReadView View(const std::vector<std::string>& tables) const {
    common::MutexLock lock(&mu_);
    ReadView view;
    view.max_change_ts = MaxChangeTsLocked(tables);
    view.clock = clock_;
    return view;
  }

 private:
  uint64_t MaxChangeTsLocked(const std::vector<std::string>& tables) const
      PHX_REQUIRES(mu_) {
    uint64_t max_ts = 0;
    for (const std::string& table : tables) {
      auto it = change_ts_.find(table);
      if (it != change_ts_.end() && it->second > max_ts) max_ts = it->second;
    }
    return max_ts;
  }

  mutable common::Mutex mu_;
  uint64_t clock_ PHX_GUARDED_BY(mu_) = 0;
  std::unordered_map<std::string, uint64_t> change_ts_ PHX_GUARDED_BY(mu_);
};

}  // namespace phoenix::cache

#endif  // PHOENIX_CACHE_INVALIDATION_H_
