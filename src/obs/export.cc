#include "obs/export.h"

#include <cinttypes>
#include <cstdio>

#include "obs/trace.h"

namespace phoenix::obs {

namespace {

std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size() + 2);
  for (char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string U64(uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

std::string I64(int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  return buf;
}

std::string F64(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  return buf;
}

}  // namespace

std::string DumpText(Registry& registry) {
  std::string out;
  char line[256];

  auto counters = registry.Counters();
  if (!counters.empty()) {
    out += "--- counters ---\n";
    for (const auto& [name, c] : counters) {
      std::snprintf(line, sizeof(line), "%-36s %20" PRIu64 "\n", name.c_str(),
                    c->Value());
      out += line;
    }
  }
  auto gauges = registry.Gauges();
  if (!gauges.empty()) {
    out += "--- gauges ---\n";
    for (const auto& [name, g] : gauges) {
      std::snprintf(line, sizeof(line), "%-36s %20" PRId64 "\n", name.c_str(),
                    g->Value());
      out += line;
    }
  }
  auto histograms = registry.Histograms();
  if (!histograms.empty()) {
    out += "--- histograms (ns) ---\n";
    std::snprintf(line, sizeof(line), "%-36s %10s %12s %12s %12s %12s\n",
                  "name", "count", "p50", "p90", "p99", "max");
    out += line;
    for (const auto& [name, h] : histograms) {
      HistogramSnapshot snap = h->Snapshot();
      if (snap.count == 0) continue;
      std::snprintf(line, sizeof(line),
                    "%-36s %10" PRIu64 " %12.0f %12.0f %12.0f %12" PRIu64
                    "\n",
                    name.c_str(), snap.count, snap.Quantile(0.50),
                    snap.Quantile(0.90), snap.Quantile(0.99), snap.max);
      out += line;
    }
  }
  return out;
}

std::string DumpJson(Registry& registry, const Metadata& meta) {
  std::string out = "{\n  \"meta\": {";
  bool first = true;
  for (const auto& [key, value] : meta) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + JsonEscape(key) + "\": \"" + JsonEscape(value) + "\"";
  }
  out += "},\n  \"counters\": {";

  first = true;
  for (const auto& [name, c] : registry.Counters()) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + JsonEscape(name) + "\": " + U64(c->Value());
  }
  out += "},\n  \"gauges\": {";

  first = true;
  for (const auto& [name, g] : registry.Gauges()) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + JsonEscape(name) + "\": " + I64(g->Value());
  }
  out += "},\n  \"histograms\": {";

  first = true;
  for (const auto& [name, h] : registry.Histograms()) {
    HistogramSnapshot snap = h->Snapshot();
    if (!first) out += ",";
    first = false;
    out += "\n    \"" + JsonEscape(name) + "\": {";
    out += "\"count\": " + U64(snap.count);
    out += ", \"sum_ns\": " + U64(snap.sum);
    out += ", \"max_ns\": " + U64(snap.max);
    out += ", \"mean_ns\": " + F64(snap.Mean());
    out += ", \"p50_ns\": " + F64(snap.Quantile(0.50));
    out += ", \"p90_ns\": " + F64(snap.Quantile(0.90));
    out += ", \"p99_ns\": " + F64(snap.Quantile(0.99));
    out += "}";
  }
  out += "\n  },\n  \"trace_events\": [";

  first = true;
  for (const TraceEvent& e : TraceEvents()) {
    if (!first) out += ",";
    first = false;
    out += "\n    {\"trace\": \"" + U64(e.trace_id) + "\"";
    out += ", \"span\": \"" + U64(e.span_id) + "\"";
    out += ", \"parent\": \"" + U64(e.parent_span_id) + "\"";
    out += ", \"name\": \"" + JsonEscape(e.name) + "\"";
    out += ", \"start_ns\": " + I64(e.start_nanos);
    out += ", \"dur_ns\": " + U64(e.duration_nanos);
    out += "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

bool WriteJsonFile(const std::string& path, Registry& registry,
                   const Metadata& meta) {
  std::string json = DumpJson(registry, meta);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  bool ok = written == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace phoenix::obs
