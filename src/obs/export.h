#ifndef PHOENIX_OBS_EXPORT_H_
#define PHOENIX_OBS_EXPORT_H_

#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace phoenix::obs {

/// Key/value run metadata stamped into every export (git sha, bench name,
/// config flags — the satellite "BENCH_*.json trajectories" contract).
using Metadata = std::vector<std::pair<std::string, std::string>>;

/// Human-oriented dump: counters, gauges, and histogram quantiles in a
/// fixed-width table.
std::string DumpText(Registry& registry);

/// Machine-oriented dump: {"meta":{...}, "counters":{...}, "gauges":{...},
/// "histograms":{name:{count,sum_ns,max_ns,mean_ns,p50_ns,p90_ns,p99_ns}},
/// "trace_events":[{trace,span,parent,name,start_ns,dur_ns},...]}.
std::string DumpJson(Registry& registry, const Metadata& meta = {});

/// DumpJson straight to a file; returns false (and writes nothing useful)
/// on I/O failure.
bool WriteJsonFile(const std::string& path, Registry& registry,
                   const Metadata& meta = {});

}  // namespace phoenix::obs

#endif  // PHOENIX_OBS_EXPORT_H_
