#ifndef PHOENIX_OBS_TRACE_H_
#define PHOENIX_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace phoenix::obs {

/// One application statement gets one trace id; it is carried across the
/// wire protocol so client-side Phoenix steps and server-side engine steps
/// correlate. Span ids form the parent/child tree within a trace.
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;  // innermost open span on this thread
};

/// The calling thread's current context ({0,0} when no trace is active).
TraceContext CurrentTrace();

uint64_t NewTraceId();
uint64_t NewSpanId();

/// Separate switch for the trace-event ring: histograms can stay on while
/// per-span event capture is off (events cost a mutex push each).
bool TraceEventsEnabled();
void SetTraceEventsEnabled(bool enabled);

/// RAII install of a trace context on the current thread. Used at the two
/// trace boundaries: statement start on the client (fresh trace id) and
/// request dispatch on the server (id propagated in the wire header).
class TraceScope {
 public:
  TraceScope(uint64_t trace_id, uint64_t parent_span_id);
  ~TraceScope();
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  TraceContext saved_;
};

/// A completed span, as stored in the bounded in-memory ring.
struct TraceEvent {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
  const char* name = "";  // string literal at every call site
  int64_t start_nanos = 0;
  uint64_t duration_nanos = 0;
};

/// Appends a completed-span event under the thread's current trace (no-op
/// when tracing is off or no trace is active). `name` must be a string
/// literal (events store the pointer).
void EmitEvent(const char* name, int64_t start_nanos, uint64_t duration_nanos,
               uint64_t span_id, uint64_t parent_span_id);

/// Convenience: measure-only call sites (PhoenixStats step timers) that know
/// a duration but did not open a Span. Allocates a span id under the current
/// context.
void EmitStepEvent(const char* name, uint64_t duration_nanos);

std::vector<TraceEvent> TraceEvents();
std::vector<TraceEvent> TraceEventsForTrace(uint64_t trace_id);
void ClearTraceEvents();

/// RAII span: on destruction records elapsed nanoseconds into the registry
/// histogram named `name` and appends a trace event. While open it is the
/// parent of any span opened below it on the same thread.
class Span {
 public:
  explicit Span(const char* name);
  Span(const char* name, Histogram* hist);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  void Open(const char* name, Histogram* hist);

  const char* name_ = "";
  Histogram* hist_ = nullptr;
  int64_t start_ = 0;
  uint64_t span_id_ = 0;
  uint64_t parent_span_id_ = 0;
  bool armed_ = false;
};

#define PHX_OBS_CONCAT2(a, b) a##b
#define PHX_OBS_CONCAT(a, b) PHX_OBS_CONCAT2(a, b)

/// Compile-out-able scoped span. `name` must be a string literal.
#if defined(PHOENIX_OBS_DISABLED)
#define OBS_SPAN(name)
#else
#define OBS_SPAN(name) \
  ::phoenix::obs::Span PHX_OBS_CONCAT(phx_obs_span_, __LINE__)(name)
#endif

}  // namespace phoenix::obs

#endif  // PHOENIX_OBS_TRACE_H_
