#include "obs/metrics.h"

#include <bit>

namespace phoenix::obs {

namespace {
std::atomic<bool> g_enabled{true};

/// Round-robin shard assignment, fixed per thread for its lifetime.
size_t NextShardSlot() {
  static std::atomic<size_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }
void SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

size_t Counter::ShardIndex() {
  thread_local size_t idx = NextShardSlot() % kShards;
  return idx;
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

Histogram::Histogram() : shards_(new Shard[kShards]()) {}

size_t Histogram::ShardIndex() {
  thread_local size_t idx = NextShardSlot() % kShards;
  return idx;
}

size_t Histogram::BucketIndex(uint64_t value) {
  if (value < kSubBuckets) return static_cast<size_t>(value);
  int msb = 63 - std::countl_zero(value);
  size_t sub = static_cast<size_t>(
      (value >> (msb - static_cast<int>(kSubBits))) & (kSubBuckets - 1));
  return static_cast<size_t>(msb) * kSubBuckets + sub;
}

uint64_t Histogram::BucketLowerBound(size_t index) {
  if (index < kSubBuckets) return index;
  uint64_t octave = index >> kSubBits;
  uint64_t sub = index & (kSubBuckets - 1);
  // Base 2^octave plus `sub` sub-bucket widths of 2^octave / kSubBuckets.
  return (uint64_t{1} << octave) +
         sub * ((uint64_t{1} << octave) >> kSubBits);
}

uint64_t Histogram::BucketUpperBound(size_t index) {
  // Exact buckets hold a single value each. Indices between the exact range
  // and the first log-scale octave (kSubBuckets..msb*kSubBuckets) are never
  // produced by BucketIndex, so deriving the bound from index + 1 would walk
  // into that dead zone and return garbage.
  if (index < kSubBuckets) return index;
  if (index + 1 >= kBuckets) return ~uint64_t{0};
  uint64_t next = BucketLowerBound(index + 1);
  return next == 0 ? ~uint64_t{0} : next - 1;
}

void Histogram::Record(uint64_t value) {
  if (!Enabled()) return;
  Shard& shard = shards_[ShardIndex()];
  shard.buckets[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(value, std::memory_order_relaxed);
  uint64_t seen = shard.max.load(std::memory_order_relaxed);
  while (value > seen &&
         !shard.max.compare_exchange_weak(seen, value,
                                          std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.buckets.assign(kBuckets, 0);
  for (size_t s = 0; s < kShards; ++s) {
    const Shard& shard = shards_[s];
    for (size_t b = 0; b < kBuckets; ++b) {
      snap.buckets[b] += shard.buckets[b].load(std::memory_order_relaxed);
    }
    snap.count += shard.count.load(std::memory_order_relaxed);
    snap.sum += shard.sum.load(std::memory_order_relaxed);
    uint64_t m = shard.max.load(std::memory_order_relaxed);
    if (m > snap.max) snap.max = m;
  }
  return snap;
}

void Histogram::Reset() {
  for (size_t s = 0; s < kShards; ++s) {
    Shard& shard = shards_[s];
    for (size_t b = 0; b < kBuckets; ++b) {
      shard.buckets[b].store(0, std::memory_order_relaxed);
    }
    shard.count.store(0, std::memory_order_relaxed);
    shard.sum.store(0, std::memory_order_relaxed);
    shard.max.store(0, std::memory_order_relaxed);
  }
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target sample among `count` sorted samples.
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count - 1));
  uint64_t seen = 0;
  for (size_t b = 0; b < buckets.size(); ++b) {
    seen += buckets[b];
    if (seen > rank) {
      uint64_t lo = Histogram::BucketLowerBound(b);
      uint64_t hi = Histogram::BucketUpperBound(b);
      double mid = (static_cast<double>(lo) + static_cast<double>(hi)) / 2.0;
      // Never report beyond the exact observed maximum.
      return mid > static_cast<double>(max) ? static_cast<double>(max) : mid;
    }
  }
  return static_cast<double>(max);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

Registry& Registry::Global() {
  static Registry* instance = new Registry();  // never destroyed
  return *instance;
}

Counter* Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

void Registry::ResetMetrics() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

std::vector<std::pair<std::string, Counter*>> Registry::Counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, Counter*>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c.get());
  return out;
}

std::vector<std::pair<std::string, Gauge*>> Registry::Gauges() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, Gauge*>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.emplace_back(name, g.get());
  return out;
}

std::vector<std::pair<std::string, Histogram*>> Registry::Histograms() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, Histogram*>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) out.emplace_back(name, h.get());
  return out;
}

}  // namespace phoenix::obs
