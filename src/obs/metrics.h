#ifndef PHOENIX_OBS_METRICS_H_
#define PHOENIX_OBS_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace phoenix::obs {

/// Master runtime switch. When false every recording entry point (Counter,
/// Histogram, Span, trace events) is a single relaxed atomic load — the
/// subsystem must cost < 1% on bench_tpcc when disabled.
bool Enabled();
void SetEnabled(bool enabled);

/// Sharded monotonic counter. Each thread lands on a fixed shard, so the hot
/// path is one relaxed fetch_add with no cross-core cache-line ping-pong
/// beyond the shard population.
class Counter {
 public:
  static constexpr size_t kShards = 8;

  void Add(uint64_t n = 1) {
    if (!Enabled()) return;
    shards_[ShardIndex()].value.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.value.load(std::memory_order_relaxed);
    }
    return total;
  }
  void Reset() {
    for (Shard& s : shards_) s.value.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };
  static size_t ShardIndex();

  Shard shards_[kShards];
};

/// Last-writer-wins instantaneous value (open cursors, live sessions, ...).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) {
    if (!Enabled()) return;
    value_.fetch_add(d, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Point-in-time merged view of a Histogram (all shards summed).
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;   // sum of recorded values (nanoseconds by convention)
  uint64_t max = 0;   // exact largest recorded value
  std::vector<uint64_t> buckets;

  /// Estimated value at quantile q in [0,1]; bounded by the log-scale bucket
  /// resolution (<= 1/16 relative error above the linear range).
  double Quantile(double q) const;
  double Mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
};

/// Fixed-bucket log-scale latency histogram. Values (nanoseconds by
/// convention) land in one of 512 buckets: exact below 8, then 8 log-linear
/// sub-buckets per power of two, covering the full uint64 range. Recording
/// is lock-free (relaxed atomics on a per-thread shard); shards merge at
/// snapshot time.
class Histogram {
 public:
  static constexpr size_t kSubBits = 3;
  static constexpr size_t kSubBuckets = size_t{1} << kSubBits;  // 8
  static constexpr size_t kBuckets = 64 * kSubBuckets;          // 512
  static constexpr size_t kShards = 8;

  Histogram();

  void Record(uint64_t value);
  HistogramSnapshot Snapshot() const;
  void Reset();

  static size_t BucketIndex(uint64_t value);
  static uint64_t BucketLowerBound(size_t index);
  static uint64_t BucketUpperBound(size_t index);  // inclusive

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> buckets[kBuckets];
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> max{0};
  };
  static size_t ShardIndex();

  std::unique_ptr<Shard[]> shards_;
};

/// Process-wide named-metric registry. Metric objects are created on first
/// use and never destroyed, so callers may cache the returned pointers
/// (function-local statics on hot paths). Reset() zeroes values in place —
/// cached pointers stay valid.
class Registry {
 public:
  static Registry& Global();

  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name);

  /// Zeroes every metric (bench warm-up discard). Pointers remain valid.
  void ResetMetrics();

  /// Stable-ordered copies of the name → metric tables (exporters).
  std::vector<std::pair<std::string, Counter*>> Counters() const;
  std::vector<std::pair<std::string, Gauge*>> Gauges() const;
  std::vector<std::pair<std::string, Histogram*>> Histograms() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace phoenix::obs

#endif  // PHOENIX_OBS_METRICS_H_
