#include "obs/trace.h"

#include <mutex>

#include "common/clock.h"

namespace phoenix::obs {

namespace {

std::atomic<bool> g_trace_events_enabled{true};

thread_local TraceContext tls_context;

/// splitmix64 finisher — decorrelates the sequential id counter so trace ids
/// do not collide with span ids or look guessable across processes.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t NextId() {
  static std::atomic<uint64_t> counter{0};
  static const uint64_t seed =
      static_cast<uint64_t>(common::NowNanos());
  uint64_t id = Mix(seed + counter.fetch_add(1, std::memory_order_relaxed));
  return id == 0 ? 1 : id;  // 0 means "no trace"
}

/// Bounded ring of completed spans. Guarded by a mutex: events fire once per
/// span (a handful per statement), not per row, so contention is negligible
/// next to the round-trip costs being measured.
constexpr size_t kRingCapacity = 16384;

struct EventRing {
  std::mutex mu;
  std::vector<TraceEvent> events;
  size_t next = 0;
  bool wrapped = false;
};

EventRing& Ring() {
  static EventRing* ring = new EventRing();  // never destroyed
  return *ring;
}

}  // namespace

TraceContext CurrentTrace() { return tls_context; }

uint64_t NewTraceId() { return NextId(); }
uint64_t NewSpanId() { return NextId(); }

bool TraceEventsEnabled() {
  return g_trace_events_enabled.load(std::memory_order_relaxed);
}
void SetTraceEventsEnabled(bool enabled) {
  g_trace_events_enabled.store(enabled, std::memory_order_relaxed);
}

TraceScope::TraceScope(uint64_t trace_id, uint64_t parent_span_id)
    : saved_(tls_context) {
  tls_context.trace_id = trace_id;
  tls_context.span_id = parent_span_id;
}

TraceScope::~TraceScope() { tls_context = saved_; }

void EmitEvent(const char* name, int64_t start_nanos,
               uint64_t duration_nanos, uint64_t span_id,
               uint64_t parent_span_id) {
  if (!Enabled() || !TraceEventsEnabled()) return;
  if (tls_context.trace_id == 0) return;
  TraceEvent event;
  event.trace_id = tls_context.trace_id;
  event.span_id = span_id;
  event.parent_span_id = parent_span_id;
  event.name = name;
  event.start_nanos = start_nanos;
  event.duration_nanos = duration_nanos;

  EventRing& ring = Ring();
  std::lock_guard<std::mutex> lock(ring.mu);
  if (ring.events.size() < kRingCapacity) {
    ring.events.push_back(event);
  } else {
    ring.events[ring.next] = event;
    ring.wrapped = true;
  }
  ring.next = (ring.next + 1) % kRingCapacity;
}

void EmitStepEvent(const char* name, uint64_t duration_nanos) {
  if (!Enabled() || !TraceEventsEnabled()) return;
  if (tls_context.trace_id == 0) return;
  int64_t now = common::NowNanos();
  EmitEvent(name, now - static_cast<int64_t>(duration_nanos), duration_nanos,
            NewSpanId(), tls_context.span_id);
}

std::vector<TraceEvent> TraceEvents() {
  EventRing& ring = Ring();
  std::lock_guard<std::mutex> lock(ring.mu);
  if (!ring.wrapped) return ring.events;
  // Oldest-first across the wrap point.
  std::vector<TraceEvent> out;
  out.reserve(ring.events.size());
  for (size_t i = 0; i < ring.events.size(); ++i) {
    out.push_back(ring.events[(ring.next + i) % ring.events.size()]);
  }
  return out;
}

std::vector<TraceEvent> TraceEventsForTrace(uint64_t trace_id) {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : TraceEvents()) {
    if (e.trace_id == trace_id) out.push_back(e);
  }
  return out;
}

void ClearTraceEvents() {
  EventRing& ring = Ring();
  std::lock_guard<std::mutex> lock(ring.mu);
  ring.events.clear();
  ring.next = 0;
  ring.wrapped = false;
}

// ---------------------------------------------------------------------------
// Span
// ---------------------------------------------------------------------------

void Span::Open(const char* name, Histogram* hist) {
  if (!Enabled()) return;
  armed_ = true;
  name_ = name;
  hist_ = hist;
  start_ = common::NowNanos();
  parent_span_id_ = tls_context.span_id;
  span_id_ = NewSpanId();
  tls_context.span_id = span_id_;
}

Span::Span(const char* name) {
  Open(name, Enabled() ? Registry::Global().histogram(name) : nullptr);
}

Span::Span(const char* name, Histogram* hist) { Open(name, hist); }

Span::~Span() {
  if (!armed_) return;
  uint64_t elapsed =
      static_cast<uint64_t>(common::NowNanos() - start_);
  if (hist_ != nullptr) hist_->Record(elapsed);
  EmitEvent(name_, start_, elapsed, span_id_, parent_span_id_);
  tls_context.span_id = parent_span_id_;
}

}  // namespace phoenix::obs
