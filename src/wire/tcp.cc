#include "wire/tcp.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/trace.h"
#include "wire/endpoint.h"

namespace phoenix::wire {

using common::Result;
using common::Status;

namespace {

Status WriteAll(int fd, const uint8_t* data, size_t size) {
  size_t off = 0;
  while (off < size) {
    ssize_t n = ::send(fd, data + off, size - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::ConnectionFailed("send: " +
                                      std::string(std::strerror(errno)));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status ReadAll(int fd, uint8_t* data, size_t size) {
  size_t off = 0;
  while (off < size) {
    ssize_t n = ::recv(fd, data + off, size - off, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::ConnectionFailed("recv: " +
                                      std::string(std::strerror(errno)));
    }
    if (n == 0) {
      return Status::ConnectionFailed("connection closed by peer");
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status WriteFrame(int fd, const std::vector<uint8_t>& payload) {
  uint32_t len = static_cast<uint32_t>(payload.size());
  uint8_t header[4] = {
      static_cast<uint8_t>(len), static_cast<uint8_t>(len >> 8),
      static_cast<uint8_t>(len >> 16), static_cast<uint8_t>(len >> 24)};
  PHX_RETURN_IF_ERROR(WriteAll(fd, header, 4));
  return WriteAll(fd, payload.data(), payload.size());
}

Result<std::vector<uint8_t>> ReadFrame(int fd) {
  uint8_t header[4];
  PHX_RETURN_IF_ERROR(ReadAll(fd, header, 4));
  uint32_t len = static_cast<uint32_t>(header[0]) |
                 (static_cast<uint32_t>(header[1]) << 8) |
                 (static_cast<uint32_t>(header[2]) << 16) |
                 (static_cast<uint32_t>(header[3]) << 24);
  if (len > (1u << 30)) {
    return Status::ConnectionFailed("oversized frame");
  }
  std::vector<uint8_t> payload(len);
  if (len > 0) PHX_RETURN_IF_ERROR(ReadAll(fd, payload.data(), len));
  return payload;
}

}  // namespace

// ---------------------------------------------------------------------------
// Server host
// ---------------------------------------------------------------------------

Result<std::unique_ptr<TcpServerHost>> TcpServerHost::Start(
    engine::SimulatedServer* server, uint16_t port) {
  std::unique_ptr<TcpServerHost> host(new TcpServerHost(server));
  host->listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (host->listen_fd_ < 0) {
    return Status::IoError("socket: " + std::string(std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(host->listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(host->listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return Status::IoError("bind: " + std::string(std::strerror(errno)));
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(host->listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                &addr_len);
  host->port_ = ntohs(addr.sin_port);
  if (::listen(host->listen_fd_, 64) != 0) {
    return Status::IoError("listen: " + std::string(std::strerror(errno)));
  }
  host->accept_thread_ = std::thread([raw = host.get()] { raw->AcceptLoop(); });
  return host;
}

TcpServerHost::~TcpServerHost() { Stop(); }

void TcpServerHost::Stop() {
  if (stopping_.exchange(true)) return;
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(workers_mu_);
    workers.swap(workers_);
    // Unblock workers parked in recv() on connections the clients have not
    // closed yet.
    for (int fd : live_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  for (std::thread& t : workers) {
    if (t.joinable()) t.join();
  }
}

void TcpServerHost::AcceptLoop() {
  while (!stopping_.load()) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load()) break;
      if (errno == EINTR) continue;
      break;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard<std::mutex> lock(workers_mu_);
    live_fds_.push_back(fd);
    workers_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

void TcpServerHost::ServeConnection(int fd) {
  // One send buffer per connection, recycled across responses so steady-state
  // fetch traffic serializes without allocating.
  std::vector<uint8_t> send_buffer;
  while (!stopping_.load()) {
    auto frame = ReadFrame(fd);
    if (!frame.ok()) break;
    auto request = Request::Deserialize(frame.value().data(),
                                        frame.value().size());
    if (!request.ok()) break;
    auto response = HandleRequest(server_, request.value());
    if (!response.ok()) {
      // Connection-level failure (server down): drop the socket, exactly
      // like a killed process.
      break;
    }
    send_buffer = response.value().Serialize(std::move(send_buffer));
    if (!WriteFrame(fd, send_buffer).ok()) break;
  }
  ::close(fd);
  std::lock_guard<std::mutex> lock(workers_mu_);
  for (auto it = live_fds_.begin(); it != live_fds_.end(); ++it) {
    if (*it == fd) {
      live_fds_.erase(it);
      break;
    }
  }
}

// ---------------------------------------------------------------------------
// Client transport
// ---------------------------------------------------------------------------

TcpClientTransport::~TcpClientTransport() { CloseSocket(); }

void TcpClientTransport::CloseSocket() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status TcpClientTransport::EnsureConnected() {
  if (fd_ >= 0) return Status::OK();
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::ConnectionFailed("socket: " +
                                    std::string(std::strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host address '" + host_ + "'");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::ConnectionFailed("connect: " +
                                    std::string(std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  return Status::OK();
}

Result<Response> TcpClientTransport::Roundtrip(const Request& request) {
  OBS_SPAN("wire.tcp.rtt");
  std::lock_guard<std::mutex> lock(mu_);
  PHX_RETURN_IF_ERROR(EnsureConnected());

  std::vector<uint8_t> payload = request.Serialize();
  Status st = WriteFrame(fd_, payload);
  if (!st.ok()) {
    CloseSocket();
    return st;
  }
  auto frame = ReadFrame(fd_);
  if (!frame.ok()) {
    CloseSocket();
    return frame.status();
  }
  stats_.round_trips.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_sent.fetch_add(payload.size() + 4, std::memory_order_relaxed);
  stats_.bytes_received.fetch_add(frame.value().size() + 4,
                                  std::memory_order_relaxed);
  if (obs::Enabled()) {
    static obs::Counter* const trips =
        obs::Registry::Global().counter("wire.tcp.round_trips");
    static obs::Counter* const sent =
        obs::Registry::Global().counter("wire.tcp.bytes_sent");
    static obs::Counter* const received =
        obs::Registry::Global().counter("wire.tcp.bytes_received");
    trips->Add(1);
    sent->Add(payload.size() + 4);
    received->Add(frame.value().size() + 4);
  }
  return Response::Deserialize(frame.value().data(), frame.value().size());
}

PendingResponsePtr TcpClientTransport::AsyncRoundtrip(const Request& request) {
  return StartPipelinedRoundtrip(this, request);
}

}  // namespace phoenix::wire
