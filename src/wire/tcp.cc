#include "wire/tcp.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <optional>

#include "fault/fault.h"
#include "obs/trace.h"
#include "wire/endpoint.h"

namespace phoenix::wire {

using common::Result;
using common::Status;

namespace {

using Deadline = std::optional<std::chrono::steady_clock::time_point>;

Status WriteAll(int fd, const uint8_t* data, size_t size) {
  size_t off = 0;
  while (off < size) {
    ssize_t n = ::send(fd, data + off, size - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::ConnectionFailed("send: " +
                                      std::string(std::strerror(errno)));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

/// Reads exactly `size` bytes. With a deadline, poll(2) gates every recv so
/// a hung or partitioned peer surfaces as kTimeout instead of blocking the
/// caller forever — this is the client's failure-detection primitive.
Status ReadAll(int fd, uint8_t* data, size_t size, const Deadline& deadline) {
  size_t off = 0;
  while (off < size) {
    if (deadline.has_value()) {
      auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
          *deadline - std::chrono::steady_clock::now());
      if (remaining.count() <= 0) {
        return Status::Timeout("roundtrip deadline exceeded waiting for peer");
      }
      pollfd pfd{};
      pfd.fd = fd;
      pfd.events = POLLIN;
      int ready = ::poll(&pfd, 1, static_cast<int>(remaining.count()));
      if (ready < 0) {
        if (errno == EINTR) continue;
        return Status::ConnectionFailed("poll: " +
                                        std::string(std::strerror(errno)));
      }
      if (ready == 0) continue;  // re-check the deadline, then report timeout
    }
    ssize_t n = ::recv(fd, data + off, size - off, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::ConnectionFailed("recv: " +
                                      std::string(std::strerror(errno)));
    }
    if (n == 0) {
      return Status::ConnectionFailed("connection closed by peer");
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status WriteFrame(int fd, const std::vector<uint8_t>& payload) {
  uint8_t header[kFrameHeaderBytes];
  EncodeFrameHeader(payload.data(), payload.size(), header);
  PHX_RETURN_IF_ERROR(WriteAll(fd, header, kFrameHeaderBytes));
  return WriteAll(fd, payload.data(), payload.size());
}

Result<std::vector<uint8_t>> ReadFrame(int fd, const Deadline& deadline) {
  uint8_t header_bytes[kFrameHeaderBytes];
  PHX_RETURN_IF_ERROR(ReadAll(fd, header_bytes, kFrameHeaderBytes, deadline));
  auto header = DecodeFrameHeader(header_bytes, kFrameHeaderBytes);
  if (!header.ok()) {
    // A garbage length means the stream is unframeable from here on.
    return Status::ConnectionFailed(header.status().message());
  }
  std::vector<uint8_t> payload(header.value().payload_bytes);
  if (!payload.empty()) {
    PHX_RETURN_IF_ERROR(
        ReadAll(fd, payload.data(), payload.size(), deadline));
  }
  Status crc = VerifyFramePayload(header.value(), payload.data());
  if (!crc.ok()) return Status::ConnectionFailed(crc.message());
  return payload;
}

}  // namespace

// ---------------------------------------------------------------------------
// Server host
// ---------------------------------------------------------------------------

Result<std::unique_ptr<TcpServerHost>> TcpServerHost::Start(
    engine::SimulatedServer* server, uint16_t port) {
  std::unique_ptr<TcpServerHost> host(new TcpServerHost(server));
  host->listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (host->listen_fd_ < 0) {
    return Status::IoError("socket: " + std::string(std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(host->listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(host->listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return Status::IoError("bind: " + std::string(std::strerror(errno)));
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(host->listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                &addr_len);
  host->port_ = ntohs(addr.sin_port);
  if (::listen(host->listen_fd_, 64) != 0) {
    return Status::IoError("listen: " + std::string(std::strerror(errno)));
  }
  host->accept_thread_ = std::thread([raw = host.get()] { raw->AcceptLoop(); });
  return host;
}

TcpServerHost::~TcpServerHost() { Stop(); }

void TcpServerHost::Stop() {
  if (stopping_.exchange(true)) return;
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(workers_mu_);
    workers.swap(workers_);
    // Unblock workers parked in recv() on connections the clients have not
    // closed yet.
    for (int fd : live_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  for (std::thread& t : workers) {
    if (t.joinable()) t.join();
  }
}

void TcpServerHost::AcceptLoop() {
  while (!stopping_.load()) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load()) break;
      if (errno == EINTR) continue;
      break;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard<std::mutex> lock(workers_mu_);
    live_fds_.push_back(fd);
    workers_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

void TcpServerHost::ServeConnection(int fd) {
  // One send buffer per connection, recycled across responses so steady-state
  // fetch traffic serializes without allocating.
  std::vector<uint8_t> send_buffer;
  while (!stopping_.load()) {
    auto frame = ReadFrame(fd, std::nullopt);
    if (!frame.ok()) break;
    auto request = Request::Deserialize(frame.value().data(),
                                        frame.value().size());
    if (!request.ok()) break;
    auto response = HandleRequest(server_, request.value());
    if (!response.ok()) {
      // Connection-level failure (server down): drop the socket, exactly
      // like a killed process.
      break;
    }
    send_buffer = response.value().Serialize(std::move(send_buffer));
    auto& injector = fault::FaultInjector::Global();
    if (injector.enabled()) {
      auto action = injector.Evaluate("tcp.server.send", send_buffer.size());
      if (action.has_value()) {
        if (action->mode == fault::FaultMode::kDelay ||
            action->mode == fault::FaultMode::kHang) {
          // Stall the response; the client's poll deadline must notice.
          injector.SleepMicros(action->delay_micros);
        } else {
          // Drop between request and response: the statement ran but its
          // outcome never reaches the client. Reap the session — as a real
          // server does when it sees the connection die — so the client's
          // liveness probe fails and recovery takes the status-table path
          // instead of blind retry.
          server_->Disconnect(request.value().session).ok();
          break;
        }
      }
    }
    if (!WriteFrame(fd, send_buffer).ok()) break;
  }
  ::close(fd);
  std::lock_guard<std::mutex> lock(workers_mu_);
  for (auto it = live_fds_.begin(); it != live_fds_.end(); ++it) {
    if (*it == fd) {
      live_fds_.erase(it);
      break;
    }
  }
}

// ---------------------------------------------------------------------------
// Client transport
// ---------------------------------------------------------------------------

TcpClientTransport::~TcpClientTransport() { CloseSocket(); }

void TcpClientTransport::CloseSocket() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status TcpClientTransport::EnsureConnected() {
  if (fd_ >= 0) return Status::OK();
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::ConnectionFailed("socket: " +
                                    std::string(std::strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host address '" + host_ + "'");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::ConnectionFailed("connect: " +
                                    std::string(std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  return Status::OK();
}

Result<Response> TcpClientTransport::Roundtrip(const Request& request) {
  OBS_SPAN("wire.tcp.rtt");
  std::lock_guard<std::mutex> lock(mu_);
  if (poisoned_) {
    return Status::ConnectionFailed("connection aborted (poisoned transport)");
  }
  uint64_t timeout = roundtrip_timeout_ms();
  Deadline deadline;
  if (timeout > 0) {
    deadline = std::chrono::steady_clock::now() +
               std::chrono::milliseconds(timeout);
  }
  // Injected client-side stalls honor the same deadline as the socket reads.
  std::optional<fault::ScopedDeadline> scoped;
  if (deadline.has_value()) scoped.emplace(*deadline);

  PHX_RETURN_IF_ERROR(EnsureConnected());

  std::vector<uint8_t> payload = request.Serialize();
  bool frame_sent = false;
  auto& injector = fault::FaultInjector::Global();
  if (injector.enabled()) {
    auto action = injector.Evaluate("tcp.send", payload.size());
    if (action.has_value()) {
      switch (action->mode) {
        case fault::FaultMode::kDelay:
        case fault::FaultMode::kHang:
          if (!injector.SleepMicros(action->delay_micros)) {
            Poison();
            return Status::Timeout(
                "roundtrip deadline exceeded (injected stall at tcp.send)");
          }
          break;
        case fault::FaultMode::kCorrupt: {
          // Compute the header CRC over the clean payload, then flip a byte:
          // the frame arrives CRC-inconsistent and the server rejects it on
          // arrival without dispatching the request.
          uint8_t header[kFrameHeaderBytes];
          EncodeFrameHeader(payload.data(), payload.size(), header);
          if (!payload.empty()) {
            payload[action->corrupt_offset % payload.size()] ^= 0xff;
          }
          Status wst = WriteAll(fd_, header, kFrameHeaderBytes);
          if (wst.ok()) wst = WriteAll(fd_, payload.data(), payload.size());
          if (!wst.ok()) {
            CloseSocket();
            return wst;
          }
          frame_sent = true;
          break;
        }
        case fault::FaultMode::kTorn: {
          // Mid-frame connection drop: header plus a prefix of the payload,
          // then the socket dies. The request never reaches dispatch, so
          // the (safe) transient-retry recovery path handles it.
          uint8_t header[kFrameHeaderBytes];
          EncodeFrameHeader(payload.data(), payload.size(), header);
          WriteAll(fd_, header, kFrameHeaderBytes).ok();
          WriteAll(fd_, payload.data(),
                   static_cast<size_t>(action->torn_bytes)).ok();
          CloseSocket();
          return Status::ConnectionFailed(
              "injected mid-frame connection drop at tcp.send");
        }
        default:
          CloseSocket();
          return action->error;
      }
    }
  }
  if (!frame_sent) {
    Status st = WriteFrame(fd_, payload);
    if (!st.ok()) {
      CloseSocket();
      return st;
    }
  }
  if (injector.enabled()) {
    Status recv_fault = injector.Inject("tcp.recv");
    if (!recv_fault.ok()) {
      // Any receive-side fault lands after the request may have executed;
      // poison so recovery re-establishes the session and consults the
      // status table rather than retrying blind.
      Poison();
      return recv_fault;
    }
  }
  auto frame = ReadFrame(fd_, deadline);
  if (!frame.ok()) {
    if (frame.status().code() == common::StatusCode::kTimeout) {
      // The server did not answer within the deadline — hung, partitioned,
      // or dead. The channel's response stream is ambiguous now; poison it.
      Poison();
    } else {
      CloseSocket();
    }
    return frame.status();
  }
  stats_.round_trips.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_sent.fetch_add(payload.size() + kFrameHeaderBytes,
                              std::memory_order_relaxed);
  stats_.bytes_received.fetch_add(frame.value().size() + kFrameHeaderBytes,
                                  std::memory_order_relaxed);
  if (obs::Enabled()) {
    static obs::Counter* const trips =
        obs::Registry::Global().counter("wire.tcp.round_trips");
    static obs::Counter* const sent =
        obs::Registry::Global().counter("wire.tcp.bytes_sent");
    static obs::Counter* const received =
        obs::Registry::Global().counter("wire.tcp.bytes_received");
    trips->Add(1);
    sent->Add(payload.size() + kFrameHeaderBytes);
    received->Add(frame.value().size() + kFrameHeaderBytes);
  }
  return Response::Deserialize(frame.value().data(), frame.value().size());
}

void TcpClientTransport::Poison() {
  CloseSocket();
  poisoned_ = true;
}

PendingResponsePtr TcpClientTransport::AsyncRoundtrip(const Request& request) {
  return StartPipelinedRoundtrip(this, request);
}

}  // namespace phoenix::wire
