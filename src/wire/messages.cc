#include "wire/messages.h"

#include "common/bytes.h"
#include "common/crc32.h"

namespace phoenix::wire {

using common::BinaryReader;
using common::BinaryWriter;
using common::Result;
using common::Status;

void EncodeFrameHeader(const uint8_t* payload, size_t payload_bytes,
                       uint8_t out[kFrameHeaderBytes]) {
  BinaryWriter w;
  w.PutU32(static_cast<uint32_t>(payload_bytes));
  w.PutU32(common::Crc32(payload, payload_bytes));
  const std::vector<uint8_t>& bytes = w.data();
  for (size_t i = 0; i < kFrameHeaderBytes; ++i) out[i] = bytes[i];
}

Result<FrameHeader> DecodeFrameHeader(const uint8_t* header,
                                      size_t header_bytes) {
  if (header_bytes < kFrameHeaderBytes) {
    return Status::IoError("truncated frame header (" +
                           std::to_string(header_bytes) + " bytes)");
  }
  BinaryReader r(header, header_bytes);
  FrameHeader out;
  PHX_ASSIGN_OR_RETURN(out.payload_bytes, r.GetU32());
  PHX_ASSIGN_OR_RETURN(out.crc, r.GetU32());
  if (out.payload_bytes > kMaxFramePayloadBytes) {
    return Status::IoError("frame length " +
                           std::to_string(out.payload_bytes) +
                           " exceeds limit");
  }
  return out;
}

Status VerifyFramePayload(const FrameHeader& header, const uint8_t* payload) {
  uint32_t actual = common::Crc32(payload, header.payload_bytes);
  if (actual != header.crc) {
    return Status::IoError("frame CRC mismatch (corrupted in flight)");
  }
  return Status::OK();
}

std::vector<uint8_t> Request::Serialize() const {
  BinaryWriter w;
  size_t bundle_bytes = 4;
  for (const std::string& stmt : bundle) bundle_bytes += 4 + stmt.size();
  w.Reserve(73 + sql.size() + user.size() + password.size() +
            database.size() + bundle_bytes);
  w.PutU8(static_cast<uint8_t>(type));
  w.PutU64(session);
  w.PutU64(cursor);
  w.PutU64(count);
  w.PutString(sql);
  w.PutString(user);
  w.PutString(password);
  w.PutString(database);
  w.PutU64(trace_id);
  w.PutU64(span_id);
  w.PutU64(first_batch);
  w.PutU64(cache_clock);
  w.PutU64(known_epoch);
  w.PutU64(repl_from_lsn);
  w.PutU64(repl_applied_lsn);
  w.PutU64(repl_max_bytes);
  // Statement-pipeline group (all-or-nothing trailing fields).
  w.PutU32(static_cast<uint32_t>(bundle.size()));
  for (const std::string& stmt : bundle) w.PutString(stmt);
  return w.TakeData();
}

Result<Request> Request::Deserialize(const uint8_t* data, size_t size) {
  BinaryReader r(data, size);
  Request out;
  PHX_ASSIGN_OR_RETURN(uint8_t type_tag, r.GetU8());
  out.type = static_cast<RequestType>(type_tag);
  PHX_ASSIGN_OR_RETURN(out.session, r.GetU64());
  PHX_ASSIGN_OR_RETURN(out.cursor, r.GetU64());
  PHX_ASSIGN_OR_RETURN(out.count, r.GetU64());
  PHX_ASSIGN_OR_RETURN(out.sql, r.GetString());
  PHX_ASSIGN_OR_RETURN(out.user, r.GetString());
  PHX_ASSIGN_OR_RETURN(out.password, r.GetString());
  PHX_ASSIGN_OR_RETURN(out.database, r.GetString());
  if (!r.AtEnd()) {
    // Trace header (optional — absent in frames from pre-obs clients).
    PHX_ASSIGN_OR_RETURN(out.trace_id, r.GetU64());
    PHX_ASSIGN_OR_RETURN(out.span_id, r.GetU64());
  }
  if (!r.AtEnd()) {
    // First-batch hint (optional — absent in pre-piggyback clients).
    PHX_ASSIGN_OR_RETURN(out.first_batch, r.GetU64());
  }
  if (!r.AtEnd()) {
    // Result-cache clock (optional — absent in pre-result-cache clients).
    PHX_ASSIGN_OR_RETURN(out.cache_clock, r.GetU64());
  }
  if (!r.AtEnd()) {
    // Replication / failover group (optional — absent in pre-repl clients).
    PHX_ASSIGN_OR_RETURN(out.known_epoch, r.GetU64());
    PHX_ASSIGN_OR_RETURN(out.repl_from_lsn, r.GetU64());
    PHX_ASSIGN_OR_RETURN(out.repl_applied_lsn, r.GetU64());
    PHX_ASSIGN_OR_RETURN(out.repl_max_bytes, r.GetU64());
  }
  if (!r.AtEnd()) {
    // Statement-pipeline group (optional — absent in pre-bundle clients).
    // Every bundled statement costs at least its 4-byte length prefix.
    PHX_ASSIGN_OR_RETURN(uint32_t num_stmts, r.GetU32());
    if (num_stmts > r.remaining() / 4) {
      return Status::IoError("bundle statement count " +
                             std::to_string(num_stmts) +
                             " exceeds frame size");
    }
    out.bundle.reserve(num_stmts);
    for (uint32_t i = 0; i < num_stmts; ++i) {
      PHX_ASSIGN_OR_RETURN(std::string stmt, r.GetString());
      out.bundle.push_back(std::move(stmt));
    }
  }
  if (!r.AtEnd()) return Status::IoError("trailing bytes in request");
  return out;
}

namespace {

/// Encoded size of one row of `schema` on the wire: 4-byte column count,
/// then per value a 1-byte tag plus the payload. Strings are unbounded, so
/// they get a working guess; Reserve only needs to be close, not exact.
size_t EstimateRowWireBytes(const common::Schema& schema) {
  size_t bytes = 4;
  for (const common::ColumnDef& col : schema.columns()) {
    switch (col.type) {
      case common::ValueType::kNull:
        bytes += 1;
        break;
      case common::ValueType::kBool:
        bytes += 2;
        break;
      case common::ValueType::kInt:
      case common::ValueType::kDouble:
      case common::ValueType::kDate:
        bytes += 9;
        break;
      case common::ValueType::kString:
        bytes += 5 + 24;
        break;
    }
  }
  return bytes;
}

}  // namespace

size_t Response::EstimateWireSize() const {
  size_t per_row = 0;
  if (schema.num_columns() > 0) {
    per_row = EstimateRowWireBytes(schema);
  } else if (!rows.empty()) {
    per_row = 4 + common::ApproxRowBytes(rows.front());
  }
  size_t schema_bytes = 4;
  for (const common::ColumnDef& col : schema.columns()) {
    schema_bytes += 6 + col.name.size();
  }
  size_t invalidation_bytes = 29;  // stable_ts + snapshot_ts + flags + counts
  for (const std::string& name : read_tables) {
    invalidation_bytes += 4 + name.size();
  }
  for (const std::string& name : write_tables) {
    invalidation_bytes += 4 + name.size();
  }
  for (const auto& [name, cts] : invalidated) {
    invalidation_bytes += 12 + name.size();
  }
  size_t repl_bytes = 46 + repl_payload.size();  // health + repl group
  size_t bundle_bytes = 4;
  for (const BundleItem& item : bundle_results) {
    size_t item_per_row = item.schema.num_columns() > 0
                              ? EstimateRowWireBytes(item.schema)
                              : (item.rows.empty()
                                     ? 0
                                     : 4 + common::ApproxRowBytes(
                                               item.rows.front()));
    bundle_bytes += 48 + item.error_message.size();
    for (const common::ColumnDef& col : item.schema.columns()) {
      bundle_bytes += 6 + col.name.size();
    }
    for (const std::string& name : item.read_tables) {
      bundle_bytes += 4 + name.size();
    }
    for (const std::string& name : item.write_tables) {
      bundle_bytes += 4 + name.size();
    }
    bundle_bytes += item.rows.size() * item_per_row;
  }
  size_t shard_bytes = 12 + 8 * bundle_shard_masks.size();
  return 32 + error_message.size() + schema_bytes + invalidation_bytes +
         repl_bytes + bundle_bytes + shard_bytes + rows.size() * per_row;
}

void Response::SerializeInto(BinaryWriter* w) const {
  w->Reserve(EstimateWireSize());
  w->PutU8(static_cast<uint8_t>(code));
  w->PutString(error_message);
  w->PutU64(session);
  w->PutU8(is_query ? 1 : 0);
  w->PutU64(cursor);
  w->PutSchema(schema);
  w->PutI64(rows_affected);
  w->PutU8(done ? 1 : 0);
  w->PutU32(static_cast<uint32_t>(rows.size()));
  for (const common::Row& row : rows) w->PutRow(row);
  // Result-cache invalidation group (all-or-nothing trailing fields).
  w->PutU64(stable_ts);
  w->PutU64(snapshot_ts);
  w->PutU8(cacheable ? 1 : 0);
  w->PutU32(static_cast<uint32_t>(read_tables.size()));
  for (const std::string& name : read_tables) w->PutString(name);
  w->PutU32(static_cast<uint32_t>(write_tables.size()));
  for (const std::string& name : write_tables) w->PutString(name);
  w->PutU32(static_cast<uint32_t>(invalidated.size()));
  for (const auto& [name, cts] : invalidated) {
    w->PutString(name);
    w->PutU64(cts);
  }
  // Replication / health group (all-or-nothing trailing fields).
  w->PutU64(epoch);
  w->PutU64(applied_lsn);
  w->PutU8(role);
  w->PutU64(repl_start_lsn);
  w->PutU64(repl_end_lsn);
  w->PutU8(repl_gap);
  w->PutString(std::string_view(
      reinterpret_cast<const char*>(repl_payload.data()),
      repl_payload.size()));
  // Statement-pipeline group (all-or-nothing trailing fields).
  w->PutU32(static_cast<uint32_t>(bundle_results.size()));
  for (const BundleItem& item : bundle_results) {
    w->PutU8(static_cast<uint8_t>(item.code));
    w->PutString(item.error_message);
    w->PutU8(item.is_query ? 1 : 0);
    w->PutU64(item.cursor);
    w->PutSchema(item.schema);
    w->PutI64(item.rows_affected);
    w->PutU8(item.done ? 1 : 0);
    w->PutU32(static_cast<uint32_t>(item.rows.size()));
    for (const common::Row& row : item.rows) w->PutRow(row);
    w->PutU64(item.snapshot_ts);
    w->PutU8(item.cacheable ? 1 : 0);
    w->PutU32(static_cast<uint32_t>(item.read_tables.size()));
    for (const std::string& name : item.read_tables) w->PutString(name);
    w->PutU32(static_cast<uint32_t>(item.write_tables.size()));
    for (const std::string& name : item.write_tables) w->PutString(name);
  }
  // Shard-routing group (all-or-nothing trailing fields).
  w->PutU64(shard_mask);
  w->PutU32(static_cast<uint32_t>(bundle_shard_masks.size()));
  for (uint64_t mask : bundle_shard_masks) w->PutU64(mask);
}

std::vector<uint8_t> Response::Serialize() const {
  BinaryWriter w;
  SerializeInto(&w);
  return w.TakeData();
}

std::vector<uint8_t> Response::Serialize(std::vector<uint8_t> reuse) const {
  BinaryWriter w(std::move(reuse));
  SerializeInto(&w);
  return w.TakeData();
}

Result<Response> Response::Deserialize(const uint8_t* data, size_t size) {
  BinaryReader r(data, size);
  Response out;
  PHX_ASSIGN_OR_RETURN(uint8_t code_tag, r.GetU8());
  out.code = static_cast<common::StatusCode>(code_tag);
  PHX_ASSIGN_OR_RETURN(out.error_message, r.GetString());
  PHX_ASSIGN_OR_RETURN(out.session, r.GetU64());
  PHX_ASSIGN_OR_RETURN(uint8_t is_query, r.GetU8());
  out.is_query = is_query != 0;
  PHX_ASSIGN_OR_RETURN(out.cursor, r.GetU64());
  PHX_ASSIGN_OR_RETURN(out.schema, r.GetSchema());
  PHX_ASSIGN_OR_RETURN(out.rows_affected, r.GetI64());
  PHX_ASSIGN_OR_RETURN(uint8_t done, r.GetU8());
  out.done = done != 0;
  PHX_ASSIGN_OR_RETURN(uint32_t num_rows, r.GetU32());
  // Every row costs at least 4 bytes on the wire; a larger count is a
  // corrupt frame and must not drive a giant allocation.
  if (num_rows > r.remaining() / 4) {
    return Status::IoError("response row count " + std::to_string(num_rows) +
                           " exceeds frame size");
  }
  out.rows.reserve(num_rows);
  for (uint32_t i = 0; i < num_rows; ++i) {
    PHX_ASSIGN_OR_RETURN(common::Row row, r.GetRow());
    out.rows.push_back(std::move(row));
  }
  if (!r.AtEnd()) {
    // Result-cache invalidation group (optional — absent in pre-result-cache
    // frames; present means complete). Counts are bounded against the frame
    // so a corrupt value cannot drive a giant allocation (every encoded
    // string costs at least its 4-byte length prefix).
    PHX_ASSIGN_OR_RETURN(out.stable_ts, r.GetU64());
    PHX_ASSIGN_OR_RETURN(out.snapshot_ts, r.GetU64());
    PHX_ASSIGN_OR_RETURN(uint8_t cacheable, r.GetU8());
    out.cacheable = cacheable != 0;
    PHX_ASSIGN_OR_RETURN(uint32_t num_reads, r.GetU32());
    if (num_reads > r.remaining() / 4) {
      return Status::IoError("read-table count exceeds frame size");
    }
    out.read_tables.reserve(num_reads);
    for (uint32_t i = 0; i < num_reads; ++i) {
      PHX_ASSIGN_OR_RETURN(std::string name, r.GetString());
      out.read_tables.push_back(std::move(name));
    }
    PHX_ASSIGN_OR_RETURN(uint32_t num_writes, r.GetU32());
    if (num_writes > r.remaining() / 4) {
      return Status::IoError("write-table count exceeds frame size");
    }
    out.write_tables.reserve(num_writes);
    for (uint32_t i = 0; i < num_writes; ++i) {
      PHX_ASSIGN_OR_RETURN(std::string name, r.GetString());
      out.write_tables.push_back(std::move(name));
    }
    PHX_ASSIGN_OR_RETURN(uint32_t num_invalidated, r.GetU32());
    if (num_invalidated > r.remaining() / 12) {
      return Status::IoError("invalidation count exceeds frame size");
    }
    out.invalidated.reserve(num_invalidated);
    for (uint32_t i = 0; i < num_invalidated; ++i) {
      PHX_ASSIGN_OR_RETURN(std::string name, r.GetString());
      PHX_ASSIGN_OR_RETURN(uint64_t cts, r.GetU64());
      out.invalidated.emplace_back(std::move(name), cts);
    }
  }
  if (!r.AtEnd()) {
    // Replication / health group (optional — absent in pre-repl frames).
    PHX_ASSIGN_OR_RETURN(out.epoch, r.GetU64());
    PHX_ASSIGN_OR_RETURN(out.applied_lsn, r.GetU64());
    PHX_ASSIGN_OR_RETURN(out.role, r.GetU8());
    PHX_ASSIGN_OR_RETURN(out.repl_start_lsn, r.GetU64());
    PHX_ASSIGN_OR_RETURN(out.repl_end_lsn, r.GetU64());
    PHX_ASSIGN_OR_RETURN(out.repl_gap, r.GetU8());
    PHX_ASSIGN_OR_RETURN(std::string payload, r.GetString());
    out.repl_payload.assign(payload.begin(), payload.end());
  }
  if (!r.AtEnd()) {
    // Statement-pipeline group (optional — absent in pre-bundle frames).
    // Each encoded item costs well over 4 bytes; bound the count so a
    // corrupt frame cannot drive a giant allocation.
    PHX_ASSIGN_OR_RETURN(uint32_t num_items, r.GetU32());
    if (num_items > r.remaining() / 4) {
      return Status::IoError("bundle result count " +
                             std::to_string(num_items) +
                             " exceeds frame size");
    }
    out.bundle_results.reserve(num_items);
    for (uint32_t i = 0; i < num_items; ++i) {
      BundleItem item;
      PHX_ASSIGN_OR_RETURN(uint8_t item_code, r.GetU8());
      item.code = static_cast<common::StatusCode>(item_code);
      PHX_ASSIGN_OR_RETURN(item.error_message, r.GetString());
      PHX_ASSIGN_OR_RETURN(uint8_t item_is_query, r.GetU8());
      item.is_query = item_is_query != 0;
      PHX_ASSIGN_OR_RETURN(item.cursor, r.GetU64());
      PHX_ASSIGN_OR_RETURN(item.schema, r.GetSchema());
      PHX_ASSIGN_OR_RETURN(item.rows_affected, r.GetI64());
      PHX_ASSIGN_OR_RETURN(uint8_t item_done, r.GetU8());
      item.done = item_done != 0;
      PHX_ASSIGN_OR_RETURN(uint32_t item_rows, r.GetU32());
      if (item_rows > r.remaining() / 4) {
        return Status::IoError("bundle item row count exceeds frame size");
      }
      item.rows.reserve(item_rows);
      for (uint32_t j = 0; j < item_rows; ++j) {
        PHX_ASSIGN_OR_RETURN(common::Row row, r.GetRow());
        item.rows.push_back(std::move(row));
      }
      PHX_ASSIGN_OR_RETURN(item.snapshot_ts, r.GetU64());
      PHX_ASSIGN_OR_RETURN(uint8_t item_cacheable, r.GetU8());
      item.cacheable = item_cacheable != 0;
      PHX_ASSIGN_OR_RETURN(uint32_t item_reads, r.GetU32());
      if (item_reads > r.remaining() / 4) {
        return Status::IoError("bundle read-table count exceeds frame size");
      }
      item.read_tables.reserve(item_reads);
      for (uint32_t j = 0; j < item_reads; ++j) {
        PHX_ASSIGN_OR_RETURN(std::string name, r.GetString());
        item.read_tables.push_back(std::move(name));
      }
      PHX_ASSIGN_OR_RETURN(uint32_t item_writes, r.GetU32());
      if (item_writes > r.remaining() / 4) {
        return Status::IoError("bundle write-table count exceeds frame size");
      }
      item.write_tables.reserve(item_writes);
      for (uint32_t j = 0; j < item_writes; ++j) {
        PHX_ASSIGN_OR_RETURN(std::string name, r.GetString());
        item.write_tables.push_back(std::move(name));
      }
      out.bundle_results.push_back(std::move(item));
    }
  }
  if (!r.AtEnd()) {
    // Shard-routing group (optional — absent in pre-shard frames).
    PHX_ASSIGN_OR_RETURN(out.shard_mask, r.GetU64());
    PHX_ASSIGN_OR_RETURN(uint32_t num_masks, r.GetU32());
    if (num_masks > r.remaining() / 8) {
      return Status::IoError("shard-mask count exceeds frame size");
    }
    out.bundle_shard_masks.reserve(num_masks);
    for (uint32_t i = 0; i < num_masks; ++i) {
      PHX_ASSIGN_OR_RETURN(uint64_t mask, r.GetU64());
      out.bundle_shard_masks.push_back(mask);
    }
  }
  if (!r.AtEnd()) return Status::IoError("trailing bytes in response");
  return out;
}

}  // namespace phoenix::wire
