#include "wire/messages.h"

#include "common/bytes.h"

namespace phoenix::wire {

using common::BinaryReader;
using common::BinaryWriter;
using common::Result;
using common::Status;

std::vector<uint8_t> Request::Serialize() const {
  BinaryWriter w;
  w.PutU8(static_cast<uint8_t>(type));
  w.PutU64(session);
  w.PutU64(cursor);
  w.PutU64(count);
  w.PutString(sql);
  w.PutString(user);
  w.PutString(password);
  w.PutString(database);
  w.PutU64(trace_id);
  w.PutU64(span_id);
  return w.TakeData();
}

Result<Request> Request::Deserialize(const uint8_t* data, size_t size) {
  BinaryReader r(data, size);
  Request out;
  PHX_ASSIGN_OR_RETURN(uint8_t type_tag, r.GetU8());
  out.type = static_cast<RequestType>(type_tag);
  PHX_ASSIGN_OR_RETURN(out.session, r.GetU64());
  PHX_ASSIGN_OR_RETURN(out.cursor, r.GetU64());
  PHX_ASSIGN_OR_RETURN(out.count, r.GetU64());
  PHX_ASSIGN_OR_RETURN(out.sql, r.GetString());
  PHX_ASSIGN_OR_RETURN(out.user, r.GetString());
  PHX_ASSIGN_OR_RETURN(out.password, r.GetString());
  PHX_ASSIGN_OR_RETURN(out.database, r.GetString());
  if (!r.AtEnd()) {
    // Trace header (optional — absent in frames from pre-obs clients).
    PHX_ASSIGN_OR_RETURN(out.trace_id, r.GetU64());
    PHX_ASSIGN_OR_RETURN(out.span_id, r.GetU64());
  }
  if (!r.AtEnd()) return Status::IoError("trailing bytes in request");
  return out;
}

std::vector<uint8_t> Response::Serialize() const {
  BinaryWriter w;
  w.PutU8(static_cast<uint8_t>(code));
  w.PutString(error_message);
  w.PutU64(session);
  w.PutU8(is_query ? 1 : 0);
  w.PutU64(cursor);
  w.PutSchema(schema);
  w.PutI64(rows_affected);
  w.PutU8(done ? 1 : 0);
  w.PutU32(static_cast<uint32_t>(rows.size()));
  for (const common::Row& row : rows) w.PutRow(row);
  return w.TakeData();
}

Result<Response> Response::Deserialize(const uint8_t* data, size_t size) {
  BinaryReader r(data, size);
  Response out;
  PHX_ASSIGN_OR_RETURN(uint8_t code_tag, r.GetU8());
  out.code = static_cast<common::StatusCode>(code_tag);
  PHX_ASSIGN_OR_RETURN(out.error_message, r.GetString());
  PHX_ASSIGN_OR_RETURN(out.session, r.GetU64());
  PHX_ASSIGN_OR_RETURN(uint8_t is_query, r.GetU8());
  out.is_query = is_query != 0;
  PHX_ASSIGN_OR_RETURN(out.cursor, r.GetU64());
  PHX_ASSIGN_OR_RETURN(out.schema, r.GetSchema());
  PHX_ASSIGN_OR_RETURN(out.rows_affected, r.GetI64());
  PHX_ASSIGN_OR_RETURN(uint8_t done, r.GetU8());
  out.done = done != 0;
  PHX_ASSIGN_OR_RETURN(uint32_t num_rows, r.GetU32());
  out.rows.reserve(num_rows);
  for (uint32_t i = 0; i < num_rows; ++i) {
    PHX_ASSIGN_OR_RETURN(common::Row row, r.GetRow());
    out.rows.push_back(std::move(row));
  }
  if (!r.AtEnd()) return Status::IoError("trailing bytes in response");
  return out;
}

}  // namespace phoenix::wire
