#ifndef PHOENIX_WIRE_MESSAGES_H_
#define PHOENIX_WIRE_MESSAGES_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/schema.h"
#include "common/status.h"
#include "engine/ids.h"

namespace phoenix::wire {

/// Client→server message kinds (a tiny TDS stand-in).
enum class RequestType : uint8_t {
  kConnect = 1,
  kDisconnect = 2,
  kExecute = 3,
  kFetch = 4,
  kAdvanceCursor = 5,
  kCloseCursor = 6,
  kPing = 7,
  kReplFetch = 8,  // standby pulling durable WAL bytes from the primary
  kPromote = 9,    // promote a standby (replay-to-end, epoch bump, serve)
  kExecuteBundle = 10,  // pipelined statements, one dispatch, all results
};

struct Request {
  RequestType type = RequestType::kPing;
  engine::SessionId session = 0;
  engine::CursorId cursor = 0;
  uint64_t count = 0;   // kFetch: max rows; kAdvanceCursor: rows to skip
  std::string sql;      // kExecute
  // kConnect:
  std::string user;
  std::string password;
  std::string database;
  // Observability header: the client's trace context, propagated so
  // server-side spans correlate with the application statement that caused
  // them (0 = no active trace). Absent in pre-obs frames; Deserialize
  // tolerates both layouts.
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  // kExecute: ask the server to piggyback up to this many rows of the first
  // batch onto the execute response (0 = classic two-step execute/fetch).
  // Optional trailing field like the trace header: absent in pre-piggyback
  // frames, and old servers that stop reading before it are unaffected
  // because the client then simply fetches the first batch explicitly.
  uint64_t first_batch = 0;
  // Result-cache invalidation clock: the highest stable_ts this client has
  // applied to its cache (0 = no cache / fresh connection). The server's
  // piggybacked digest reports tables changed since this value. Optional
  // trailing field; absent in pre-result-cache frames.
  uint64_t cache_clock = 0;
  // --- Replication / failover group (one optional trailing group, same
  // all-or-nothing framing as the groups above) -----------------------------
  /// Highest cluster epoch the sender has seen (0 = none). On kConnect /
  /// kPing / kReplFetch this is the fencing handshake; on kPromote it is the
  /// epoch the promotion must exceed.
  uint64_t known_epoch = 0;
  /// kReplFetch: resume the stream from this ship-LSN.
  uint64_t repl_from_lsn = 0;
  /// kReplFetch: stream offset durably applied by the sender (lets the
  /// primary trim its retained buffer safely).
  uint64_t repl_applied_lsn = 0;
  /// kReplFetch: chunk size cap (0 = server default).
  uint64_t repl_max_bytes = 0;
  // --- Statement-pipeline group (one optional trailing group after the
  // repl group, same all-or-nothing framing) --------------------------------
  /// kExecuteBundle: the queued statements, executed sequentially inside one
  /// dispatch. `first_batch` above applies to every query in the bundle.
  std::vector<std::string> bundle;

  std::vector<uint8_t> Serialize() const;
  static common::Result<Request> Deserialize(const uint8_t* data,
                                             size_t size);
};

/// Per-statement result of one entry in a kExecuteBundle request: the
/// statement outcome plus its first-batch piggyback, exactly what a
/// standalone kExecute response would carry for that statement. Statement
/// errors travel in-band here; the server stops at the first failure and
/// the failing statement's item is the last one present.
struct BundleItem {
  common::StatusCode code = common::StatusCode::kOk;
  std::string error_message;
  bool is_query = false;
  engine::CursorId cursor = 0;
  common::Schema schema;
  int64_t rows_affected = -1;
  std::vector<common::Row> rows;  // first-batch piggyback
  bool done = false;              // piggyback exhausted the cursor
  /// Result-cache metadata, per statement (mirrors the response-level group).
  uint64_t snapshot_ts = 0;
  bool cacheable = false;
  std::vector<std::string> read_tables;
  std::vector<std::string> write_tables;

  bool ok() const { return code == common::StatusCode::kOk; }
  common::Status ToStatus() const {
    if (ok()) return common::Status::OK();
    return common::Status(code, error_message);
  }
};

struct Response {
  /// Statement-level status travels in-band; connection-level failures are
  /// reported by the transport itself (a dead server cannot answer).
  common::StatusCode code = common::StatusCode::kOk;
  std::string error_message;

  engine::SessionId session = 0;        // kConnect
  bool is_query = false;                // kExecute
  engine::CursorId cursor = 0;          // kExecute
  common::Schema schema;                // kExecute
  int64_t rows_affected = -1;           // kExecute / kAdvanceCursor result
  std::vector<common::Row> rows;        // kFetch
  bool done = false;                    // kFetch: cursor exhausted

  // --- Result-cache invalidation metadata (one optional trailing group,
  // PR-2 framing: old frames without it still parse, and a reader that
  // sees any of it sees all of it) ------------------------------------------
  /// Server clock the digest is current through; the client advances its
  /// cache clock to this after applying `invalidated`.
  uint64_t stable_ts = 0;
  /// kExecute: pinned snapshot the statement read as of (0 = none).
  uint64_t snapshot_ts = 0;
  /// kExecute: server judged the result safe for the client to cache.
  bool cacheable = false;
  /// kExecute: persistent tables the plan read (the cache validity key).
  std::vector<std::string> read_tables;
  /// kExecute: tables the session's open transaction has written so far.
  std::vector<std::string> write_tables;
  /// Tables changed since the request's cache_clock: name → commit ts.
  std::vector<std::pair<std::string, uint64_t>> invalidated;

  // --- Replication / health group (one optional trailing group after the
  // invalidation group, same all-or-nothing framing) ------------------------
  /// Server epoch + role + applied-LSN: the health probe piggybacked on
  /// ping/connect responses (and every repl response).
  uint64_t epoch = 0;
  uint64_t applied_lsn = 0;
  uint8_t role = 0;  // repl::Role
  /// kReplFetch: stream offset of repl_payload[0] / primary high-water mark.
  uint64_t repl_start_lsn = 0;
  uint64_t repl_end_lsn = 0;
  /// kReplFetch: the requested range is no longer retained — the standby
  /// cannot catch up incrementally from repl_from_lsn.
  uint8_t repl_gap = 0;
  /// kReplFetch: raw framed WAL bytes ([len][crc][record]*, possibly ending
  /// mid-frame — the standby buffers partial tails).
  std::vector<uint8_t> repl_payload;

  // --- Statement-pipeline group (one optional trailing group after the
  // repl/health group, same all-or-nothing framing) -------------------------
  /// kExecuteBundle: one item per executed statement, in request order. If
  /// a statement failed, execution stopped there: the prefix's items report
  /// success and the last item carries the in-band error.
  std::vector<BundleItem> bundle_results;

  // --- Shard-routing group (one optional trailing group after the bundle
  // group, same all-or-nothing framing) -------------------------------------
  /// kExecute: bitmap of engine shards the statement touched (bit i = shard
  /// i). 0 = unknown or unsharded server. Phoenix drivers use it to scope
  /// recovery to sessions that actually touched a crashed shard.
  uint64_t shard_mask = 0;
  /// kExecuteBundle: per-item shard masks, parallel to bundle_results
  /// (kept out of BundleItem so the bundle group's item framing is stable).
  std::vector<uint64_t> bundle_shard_masks;

  bool ok() const { return code == common::StatusCode::kOk; }
  common::Status ToStatus() const {
    if (ok()) return common::Status::OK();
    return common::Status(code, error_message);
  }

  std::vector<uint8_t> Serialize() const;
  /// Serializes into `reuse` (cleared first, capacity recycled) and returns
  /// it — lets a connection reuse one send buffer across responses.
  std::vector<uint8_t> Serialize(std::vector<uint8_t> reuse) const;
  /// Wire-size estimate used to pre-reserve the serialize buffer: derived
  /// from the schema's per-row encoded size when present (execute responses),
  /// else from the first row (fetch responses carry no schema).
  size_t EstimateWireSize() const;
  static common::Result<Response> Deserialize(const uint8_t* data,
                                              size_t size);

 private:
  void SerializeInto(common::BinaryWriter* w) const;
};

/// Frame envelope shared by the TCP transport and the frame-hardening tests:
/// [u32 payload length][u32 crc32(payload)] then the payload. The CRC lets
/// the receiver reject corrupted-in-flight frames with a clean error instead
/// of feeding garbage to the message decoders.
inline constexpr size_t kFrameHeaderBytes = 8;
inline constexpr uint32_t kMaxFramePayloadBytes = 1u << 30;

struct FrameHeader {
  uint32_t payload_bytes = 0;
  uint32_t crc = 0;
};

/// Encodes the header for `payload` into out[0..kFrameHeaderBytes).
void EncodeFrameHeader(const uint8_t* payload, size_t payload_bytes,
                       uint8_t out[kFrameHeaderBytes]);

/// Validates and decodes a header. Rejects short headers and lengths beyond
/// kMaxFramePayloadBytes (a garbage length must not drive the receiver into
/// a giant allocation or an endless read).
common::Result<FrameHeader> DecodeFrameHeader(const uint8_t* header,
                                              size_t header_bytes);

/// Checks the payload against the header's CRC.
common::Status VerifyFramePayload(const FrameHeader& header,
                                  const uint8_t* payload);

}  // namespace phoenix::wire

#endif  // PHOENIX_WIRE_MESSAGES_H_
