#ifndef PHOENIX_WIRE_IN_PROCESS_H_
#define PHOENIX_WIRE_IN_PROCESS_H_

#include <memory>

#include "engine/server.h"
#include "wire/endpoint.h"
#include "wire/transport.h"

namespace phoenix::wire {

/// Client transport to an in-process SimulatedServer with an explicit
/// network cost model. Requests and responses are genuinely serialized and
/// deserialized so wire sizes (and therefore the bandwidth term) are honest.
class InProcessTransport : public ClientTransport {
 public:
  InProcessTransport(engine::SimulatedServer* server, NetworkModel model)
      : server_(server), model_(model) {}

  common::Result<Response> Roundtrip(const Request& request) override;
  /// Pipelined: the round trip (including the modeled network sleep) runs on
  /// a worker thread. Safe because Roundtrip touches only atomics here and
  /// the server serializes per-session calls.
  PendingResponsePtr AsyncRoundtrip(const Request& request) override;

  const TransportStats& stats() const override { return stats_; }
  const NetworkModel& model() const { return model_; }

 private:
  /// Kills the channel after a lost/corrupt/timed-out frame: poisons this
  /// transport (later calls fail fast, like writes on a closed socket) and
  /// reaps the server-side session so its open transaction rolls back and
  /// Phoenix recovery cannot blind-retry into a double execution. Returns
  /// the generic poisoned-connection error.
  common::Status Abandon(engine::SessionId session);

  engine::SimulatedServer* server_;
  NetworkModel model_;
  TransportStats stats_;
  std::atomic<bool> poisoned_{false};
};

}  // namespace phoenix::wire

#endif  // PHOENIX_WIRE_IN_PROCESS_H_
