#include "wire/endpoint.h"

#include "obs/trace.h"

namespace phoenix::wire {

using common::Result;
using common::Status;
using engine::FetchOutcome;
using engine::SimulatedServer;
using engine::StatementOutcome;

namespace {

/// Folds a statement-level failure into the response; propagates
/// connection-level failures as transport errors.
template <typename T>
Result<bool> IntoResponse(const common::Result<T>& result,
                          Response* response) {
  if (result.ok()) return true;
  const Status& st = result.status();
  if (st.IsConnectionLevel()) return st;
  response->code = st.code();
  response->error_message = st.message();
  return false;
}

const char* RequestSpanName(RequestType type) {
  switch (type) {
    case RequestType::kConnect:
      return "server.connect";
    case RequestType::kDisconnect:
      return "server.disconnect";
    case RequestType::kExecute:
      return "server.execute";
    case RequestType::kFetch:
      return "server.fetch";
    case RequestType::kAdvanceCursor:
      return "server.advance_cursor";
    case RequestType::kCloseCursor:
      return "server.close_cursor";
    case RequestType::kPing:
      return "server.ping";
    case RequestType::kReplFetch:
      return "server.repl_fetch";
    case RequestType::kPromote:
      return "server.promote";
    case RequestType::kExecuteBundle:
      return "server.execute_bundle";
  }
  return "server.unknown";
}

}  // namespace

Result<Response> HandleRequest(SimulatedServer* server,
                               const Request& request) {
  // Adopt the client's trace context for the duration of this request so
  // every engine-side span lands under the statement that caused it.
  obs::TraceScope trace(request.trace_id, request.span_id);
  OBS_SPAN(RequestSpanName(request.type));
  Response response;
  // Piggybacks the invalidation digest for the client result cache: tables
  // changed since the client's last-applied clock. Computed AFTER the
  // operation ran so the client immediately learns about churn the statement
  // itself caused. Attached even to statement-level errors (the clock must
  // keep advancing), never to connection-level ones (those carry no frame).
  auto attach_invalidation = [server, &request, &response]() {
    engine::InvalidationDigest digest =
        server->CollectInvalidation(request.cache_clock);
    response.stable_ts = digest.stable_ts;
    response.invalidated = std::move(digest.changed);
  };
  // Health probe piggyback: {epoch, applied_lsn, role} rides every ping /
  // connect / replication response so the failover driver can pick an
  // endpoint without a dedicated probe message.
  auto attach_health = [server, &response]() {
    repl::ServerHealth health = server->HealthProbe();
    response.epoch = health.epoch;
    response.applied_lsn = health.applied_lsn;
    response.role = static_cast<uint8_t>(health.role);
  };
  switch (request.type) {
    case RequestType::kPing: {
      PHX_RETURN_IF_ERROR(server->Ping());
      // Pings carry the client's known epoch too: a post-failover health
      // probe against a restarted stale primary fences it on first contact.
      server->NoteClientEpoch(request.known_epoch);
      attach_health();
      return response;
    }
    case RequestType::kConnect: {
      engine::ConnectRequest connect;
      connect.user = request.user;
      connect.password = request.password;
      connect.database = request.database;
      connect.known_epoch = request.known_epoch;
      auto result = server->Connect(connect);
      PHX_ASSIGN_OR_RETURN(bool ok, IntoResponse(result, &response));
      if (ok) response.session = result.value();
      attach_invalidation();
      attach_health();
      return response;
    }
    case RequestType::kReplFetch: {
      auto result = server->ReplFetch(request.repl_from_lsn,
                                      request.repl_applied_lsn,
                                      request.repl_max_bytes,
                                      request.known_epoch);
      PHX_ASSIGN_OR_RETURN(bool ok, IntoResponse(result, &response));
      if (ok) {
        engine::ReplChunk& chunk = result.value();
        response.repl_start_lsn = chunk.start_lsn;
        response.repl_end_lsn = chunk.end_lsn;
        response.repl_gap = chunk.gap ? 1 : 0;
        response.repl_payload = std::move(chunk.bytes);
      }
      attach_health();
      return response;
    }
    case RequestType::kPromote: {
      auto result = server->Promote(request.known_epoch);
      PHX_ASSIGN_OR_RETURN(bool ok, IntoResponse(result, &response));
      if (ok) response.epoch = result.value();
      attach_health();
      return response;
    }
    case RequestType::kDisconnect: {
      Status st = server->Disconnect(request.session);
      if (st.IsConnectionLevel()) return st;
      if (!st.ok()) {
        response.code = st.code();
        response.error_message = st.message();
      }
      return response;
    }
    case RequestType::kExecute: {
      FetchOutcome first;
      auto result = server->ExecuteWithFirstBatch(
          request.session, request.sql,
          static_cast<size_t>(request.first_batch), &first);
      PHX_ASSIGN_OR_RETURN(bool ok, IntoResponse(result, &response));
      if (ok) {
        StatementOutcome& outcome = result.value();
        response.is_query = outcome.is_query;
        response.cursor = outcome.cursor;
        response.schema = std::move(outcome.schema);
        response.rows_affected = outcome.rows_affected;
        response.snapshot_ts = outcome.snapshot_ts;
        response.cacheable = outcome.cacheable;
        response.read_tables = std::move(outcome.read_tables);
        response.write_tables = std::move(outcome.write_tables);
        response.shard_mask = outcome.shard_mask;
        // Piggybacked first batch: rows move straight from the engine into
        // the response (no copy); `done` on an execute response means the
        // whole result fit in one round trip.
        response.rows = std::move(first.rows);
        response.done = first.done;
        if (!response.rows.empty() && obs::Enabled()) {
          static obs::Counter* const piggybacked =
              obs::Registry::Global().counter("server.execute.piggybacked_rows");
          piggybacked->Add(response.rows.size());
        }
      }
      attach_invalidation();
      return response;
    }
    case RequestType::kExecuteBundle: {
      auto result = server->ExecuteBundle(request.session, request.bundle);
      PHX_ASSIGN_OR_RETURN(bool ok, IntoResponse(result, &response));
      if (ok) {
        size_t piggybacked = 0;
        response.bundle_results.reserve(result.value().size());
        response.bundle_shard_masks.reserve(result.value().size());
        for (engine::BundleOutcome& item : result.value()) {
          BundleItem out;
          response.bundle_shard_masks.push_back(item.outcome.shard_mask);
          response.shard_mask |= item.outcome.shard_mask;
          if (!item.status.ok()) {
            out.code = item.status.code();
            out.error_message = item.status.message();
          } else {
            out.is_query = item.outcome.is_query;
            out.cursor = item.outcome.cursor;
            out.schema = std::move(item.outcome.schema);
            out.rows_affected = item.outcome.rows_affected;
            out.snapshot_ts = item.outcome.snapshot_ts;
            out.cacheable = item.outcome.cacheable;
            out.read_tables = std::move(item.outcome.read_tables);
            out.write_tables = std::move(item.outcome.write_tables);
            out.rows = std::move(item.first.rows);
            out.done = item.first.done;
            piggybacked += out.rows.size();
          }
          response.bundle_results.push_back(std::move(out));
        }
        if (piggybacked > 0 && obs::Enabled()) {
          static obs::Counter* const counter = obs::Registry::Global().counter(
              "server.execute.piggybacked_rows");
          counter->Add(piggybacked);
        }
      }
      attach_invalidation();
      return response;
    }
    case RequestType::kFetch: {
      auto result = server->Fetch(request.session, request.cursor,
                                  static_cast<size_t>(request.count));
      PHX_ASSIGN_OR_RETURN(bool ok, IntoResponse(result, &response));
      if (ok) {
        // Move, don't copy: the engine's batch is dead after this response.
        FetchOutcome& outcome = result.value();
        response.rows = std::move(outcome.rows);
        response.done = outcome.done;
      }
      attach_invalidation();
      return response;
    }
    case RequestType::kAdvanceCursor: {
      auto result = server->AdvanceCursor(request.session, request.cursor,
                                          request.count);
      PHX_ASSIGN_OR_RETURN(bool ok, IntoResponse(result, &response));
      if (ok) response.rows_affected = static_cast<int64_t>(result.value());
      attach_invalidation();
      return response;
    }
    case RequestType::kCloseCursor: {
      Status st = server->CloseCursor(request.session, request.cursor);
      if (st.IsConnectionLevel()) return st;
      if (!st.ok()) {
        response.code = st.code();
        response.error_message = st.message();
      }
      attach_invalidation();
      return response;
    }
  }
  return Status::InvalidArgument("unknown request type");
}

}  // namespace phoenix::wire
