#ifndef PHOENIX_WIRE_ENDPOINT_H_
#define PHOENIX_WIRE_ENDPOINT_H_

#include "engine/server.h"
#include "wire/messages.h"

namespace phoenix::wire {

/// Server-side request dispatch, shared by the in-process and TCP hosts.
/// Statement-level failures are encoded into the Response; connection-level
/// failures (server down) are returned as an error Status so the transport
/// can model a dead socket.
common::Result<Response> HandleRequest(engine::SimulatedServer* server,
                                       const Request& request);

}  // namespace phoenix::wire

#endif  // PHOENIX_WIRE_ENDPOINT_H_
