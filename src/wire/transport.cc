#include "wire/transport.h"

#include <future>
#include <utility>

#include "obs/trace.h"

namespace phoenix::wire {

using common::Result;

namespace {

/// The default shim: the round trip already happened by the time the handle
/// exists; Wait() just hands the stored result over.
class CompletedResponse : public PendingResponse {
 public:
  explicit CompletedResponse(Result<Response> result)
      : result_(std::move(result)) {}
  Result<Response> Wait() override { return std::move(result_); }

 private:
  Result<Response> result_;
};

/// A genuinely pipelined round trip running on a worker thread. The future
/// from std::async blocks in its destructor, which gives the documented
/// drain-on-destroy guarantee for free.
class InFlightResponse : public PendingResponse {
 public:
  InFlightResponse(ClientTransport* transport, Request request) {
    future_ = std::async(std::launch::async,
                         [transport, request = std::move(request)]() {
                           // Re-install the statement's trace context: the
                           // thread-local one does not cross the async hop.
                           obs::TraceScope trace(request.trace_id,
                                                 request.span_id);
                           return transport->Roundtrip(request);
                         });
  }
  Result<Response> Wait() override { return future_.get(); }

 private:
  std::future<Result<Response>> future_;
};

}  // namespace

PendingResponsePtr ClientTransport::AsyncRoundtrip(const Request& request) {
  return std::make_unique<CompletedResponse>(Roundtrip(request));
}

PendingResponsePtr StartPipelinedRoundtrip(ClientTransport* transport,
                                           const Request& request) {
  return std::make_unique<InFlightResponse>(transport, request);
}

}  // namespace phoenix::wire
