#include "wire/in_process.h"

#include <chrono>
#include <thread>

#include "obs/trace.h"

namespace phoenix::wire {

using common::Result;

Result<Response> InProcessTransport::Roundtrip(const Request& request) {
  OBS_SPAN("wire.inproc.rtt");
  // Serialize/deserialize both directions so byte counts are real.
  std::vector<uint8_t> request_bytes = request.Serialize();
  PHX_ASSIGN_OR_RETURN(
      Request server_view,
      Request::Deserialize(request_bytes.data(), request_bytes.size()));

  PHX_ASSIGN_OR_RETURN(Response response,
                       HandleRequest(server_, server_view));

  // Recycle one serialize buffer per calling thread (prefetch worker threads
  // may run Roundtrip concurrently with the application thread, so the
  // scratch buffer cannot live on the transport itself).
  static thread_local std::vector<uint8_t> send_buffer;
  send_buffer = response.Serialize(std::move(send_buffer));
  const std::vector<uint8_t>& response_bytes = send_buffer;
  PHX_ASSIGN_OR_RETURN(
      Response client_view,
      Response::Deserialize(response_bytes.data(), response_bytes.size()));

  stats_.round_trips.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_sent.fetch_add(request_bytes.size(),
                              std::memory_order_relaxed);
  stats_.bytes_received.fetch_add(response_bytes.size(),
                                  std::memory_order_relaxed);
  if (obs::Enabled()) {
    static obs::Counter* const trips =
        obs::Registry::Global().counter("wire.inproc.round_trips");
    static obs::Counter* const sent =
        obs::Registry::Global().counter("wire.inproc.bytes_sent");
    static obs::Counter* const received =
        obs::Registry::Global().counter("wire.inproc.bytes_received");
    trips->Add(1);
    sent->Add(request_bytes.size());
    received->Add(response_bytes.size());
  }

  uint64_t micros =
      model_.round_trip_micros +
      model_.TransferMicros(request_bytes.size() + response_bytes.size());
  if (micros > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(micros));
  }
  return client_view;
}

PendingResponsePtr InProcessTransport::AsyncRoundtrip(const Request& request) {
  return StartPipelinedRoundtrip(this, request);
}

}  // namespace phoenix::wire
