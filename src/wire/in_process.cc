#include "wire/in_process.h"

#include <chrono>
#include <thread>

#include "fault/fault.h"
#include "obs/trace.h"

namespace phoenix::wire {

using common::Result;
using common::Status;

namespace {

/// Applies a transport-level fault to a serialized frame in flight. Returns
/// OK when nothing fired (possibly after a completed delay), kTimeout when
/// an injected hang was truncated by the roundtrip deadline, and a
/// connection-level error for drop/torn/error modes. kCorrupt flips a byte
/// in place and returns OK — the receiver's decoder is expected to notice.
Status ApplyTransportFault(const char* point, std::vector<uint8_t>* frame) {
  auto& injector = fault::FaultInjector::Global();
  if (!injector.enabled()) return Status::OK();
  auto action = injector.Evaluate(point, frame->size());
  if (!action.has_value()) return Status::OK();
  switch (action->mode) {
    case fault::FaultMode::kDelay:
    case fault::FaultMode::kHang:
      if (!injector.SleepMicros(action->delay_micros)) {
        return Status::Timeout("roundtrip deadline exceeded (injected stall " +
                               std::string("at ") + point + ")");
      }
      return Status::OK();
    case fault::FaultMode::kCorrupt:
      if (!frame->empty()) {
        (*frame)[action->corrupt_offset % frame->size()] ^= 0xff;
      }
      return Status::OK();
    default:
      return action->error;
  }
}

}  // namespace

Status InProcessTransport::Abandon(engine::SessionId session) {
  // The response stream is unusable (frame lost, corrupted, or timed out).
  // Poison the channel like a closed socket, and reap the server-side
  // session so any open transaction rolls back and Phoenix's probe fails —
  // recovery must then go through the status-table exactly-once machinery
  // rather than blind retry.
  poisoned_.store(true, std::memory_order_release);
  if (session != 0) server_->Disconnect(session).ok();
  return Status::ConnectionFailed("connection aborted (frame lost)");
}

Result<Response> InProcessTransport::Roundtrip(const Request& request) {
  OBS_SPAN("wire.inproc.rtt");
  if (poisoned_.load(std::memory_order_acquire)) {
    return Status::ConnectionFailed("connection aborted (poisoned transport)");
  }
  uint64_t timeout = roundtrip_timeout_ms();
  std::optional<fault::ScopedDeadline> deadline;
  auto deadline_at = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(timeout);
  if (timeout > 0) deadline.emplace(deadline_at);

  // Serialize/deserialize both directions so byte counts are real.
  std::vector<uint8_t> request_bytes = request.Serialize();
  {
    Status st = ApplyTransportFault("inproc.request", &request_bytes);
    if (!st.ok()) {
      Abandon(request.session);
      return st;
    }
  }
  auto server_view =
      Request::Deserialize(request_bytes.data(), request_bytes.size());
  if (!server_view.ok()) {
    Abandon(request.session);
    return Status::ConnectionFailed("request frame rejected: " +
                                    server_view.status().message());
  }

  auto handled = HandleRequest(server_, server_view.value());
  if (!handled.ok() && handled.status().IsConnectionLevel()) {
    // A connection-level dispatch failure kills the channel, exactly as it
    // would a real socket (a timeout additionally means the response, if it
    // ever comes, can no longer be matched to this call). Reaping the
    // session here matters for correctness: the dispatch may have died
    // mid-bundle with a transaction open, and a later reconnect must not
    // inherit that state.
    Abandon(request.session);
    return handled.status();
  }
  PHX_ASSIGN_OR_RETURN(Response response, std::move(handled));

  // Recycle one serialize buffer per calling thread (prefetch worker threads
  // may run Roundtrip concurrently with the application thread, so the
  // scratch buffer cannot live on the transport itself).
  static thread_local std::vector<uint8_t> send_buffer;
  send_buffer = response.Serialize(std::move(send_buffer));
  {
    Status st = ApplyTransportFault("inproc.response", &send_buffer);
    if (!st.ok()) {
      Abandon(request.session);
      return st;
    }
  }
  const std::vector<uint8_t>& response_bytes = send_buffer;
  auto client_view =
      Response::Deserialize(response_bytes.data(), response_bytes.size());
  if (!client_view.ok()) {
    Abandon(request.session);
    return Status::ConnectionFailed("response frame rejected: " +
                                    client_view.status().message());
  }

  stats_.round_trips.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_sent.fetch_add(request_bytes.size(),
                              std::memory_order_relaxed);
  stats_.bytes_received.fetch_add(response_bytes.size(),
                                  std::memory_order_relaxed);
  if (obs::Enabled()) {
    static obs::Counter* const trips =
        obs::Registry::Global().counter("wire.inproc.round_trips");
    static obs::Counter* const sent =
        obs::Registry::Global().counter("wire.inproc.bytes_sent");
    static obs::Counter* const received =
        obs::Registry::Global().counter("wire.inproc.bytes_received");
    trips->Add(1);
    sent->Add(request_bytes.size());
    received->Add(response_bytes.size());
  }

  uint64_t micros =
      model_.round_trip_micros +
      model_.TransferMicros(request_bytes.size() + response_bytes.size());
  if (micros > 0) {
    auto wake = std::chrono::steady_clock::now() +
                std::chrono::microseconds(micros);
    if (timeout > 0 && deadline_at < wake) {
      // Even the modeled network honors the deadline: sleeping past it is
      // exactly the hung-link case the timeout exists to bound.
      std::this_thread::sleep_until(deadline_at);
      Abandon(request.session);
      return Status::Timeout("roundtrip deadline exceeded on modeled link");
    }
    std::this_thread::sleep_until(wake);
  }
  return std::move(client_view).value();
}

PendingResponsePtr InProcessTransport::AsyncRoundtrip(const Request& request) {
  return StartPipelinedRoundtrip(this, request);
}

}  // namespace phoenix::wire
