#ifndef PHOENIX_WIRE_TCP_H_
#define PHOENIX_WIRE_TCP_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/server.h"
#include "wire/transport.h"

namespace phoenix::wire {

/// Hosts a SimulatedServer on a TCP port (frame format: u32 length +
/// payload, both directions). Used by the failover example to demonstrate
/// Phoenix recovery across a real socket, including process-level restarts.
///
/// When the underlying server is down (Crash()), connections are closed —
/// clients observe a dead socket exactly as with a killed process.
class TcpServerHost {
 public:
  /// Binds and starts the accept loop. Port 0 picks a free port (see
  /// port()).
  static common::Result<std::unique_ptr<TcpServerHost>> Start(
      engine::SimulatedServer* server, uint16_t port);
  ~TcpServerHost();

  TcpServerHost(const TcpServerHost&) = delete;
  TcpServerHost& operator=(const TcpServerHost&) = delete;

  uint16_t port() const { return port_; }
  void Stop();

 private:
  TcpServerHost(engine::SimulatedServer* server) : server_(server) {}
  void AcceptLoop();
  void ServeConnection(int fd);

  engine::SimulatedServer* server_;
  /// Atomic: Stop() invalidates it while AcceptLoop is (re-)reading it.
  std::atomic<int> listen_fd_{-1};
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::mutex workers_mu_;
  std::vector<std::thread> workers_;
  /// Open connection sockets, shut down by Stop() so blocked reads unwind.
  std::vector<int> live_fds_;
};

/// Client transport over a TCP connection. Reconnects lazily: each
/// Roundtrip establishes the connection if needed, so Phoenix's reconnect
/// loop simply retries Roundtrip until the server listens again.
class TcpClientTransport : public ClientTransport {
 public:
  TcpClientTransport(std::string host, uint16_t port)
      : host_(std::move(host)), port_(port) {}
  ~TcpClientTransport() override;

  common::Result<Response> Roundtrip(const Request& request) override;
  /// Pipelined: the round trip runs on a worker thread; the socket mutex
  /// already serializes concurrent frames on the connection.
  PendingResponsePtr AsyncRoundtrip(const Request& request) override;
  const TransportStats& stats() const override { return stats_; }

 private:
  common::Status EnsureConnected();
  void CloseSocket();
  /// Marks the channel unusable after a timeout or receive-side fault: the
  /// request may have executed but its response is lost, so reusing the
  /// session would risk replaying a completed statement. Every later
  /// Roundtrip fails fast; Phoenix recovery builds a fresh transport.
  void Poison();

  std::string host_;
  uint16_t port_;
  int fd_ = -1;
  std::mutex mu_;
  bool poisoned_ = false;
  TransportStats stats_;
};

}  // namespace phoenix::wire

#endif  // PHOENIX_WIRE_TCP_H_
