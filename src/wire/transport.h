#ifndef PHOENIX_WIRE_TRANSPORT_H_
#define PHOENIX_WIRE_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/status.h"
#include "wire/messages.h"

namespace phoenix::wire {

/// Cost model for the client-server link. Defaults approximate the paper's
/// testbed: two machines on a 100 Mbit/s LAN (~0.2 ms request round-trip
/// latency, 12.5 MB/s payload bandwidth).
struct NetworkModel {
  /// Fixed round-trip latency applied to every Roundtrip, microseconds.
  uint64_t round_trip_micros = 200;
  /// Payload bandwidth in bytes/second; 0 disables the bandwidth term.
  uint64_t bytes_per_second = 12'500'000;

  /// A zero-cost model for unit tests.
  static NetworkModel None() { return NetworkModel{0, 0}; }

  /// Microseconds to move `bytes` across the link (both directions summed
  /// by the caller).
  uint64_t TransferMicros(uint64_t bytes) const {
    if (bytes_per_second == 0) return 0;
    return bytes * 1'000'000 / bytes_per_second;
  }
};

/// Running traffic counters (benchmark reporting).
struct TransportStats {
  std::atomic<uint64_t> round_trips{0};
  std::atomic<uint64_t> bytes_sent{0};
  std::atomic<uint64_t> bytes_received{0};
};

/// A client's channel to one server. Implementations: in-process with a
/// simulated network (deterministic benchmarks) and TCP (real deployments /
/// process-kill demos).
///
/// Connection-level failures (server down/crashed) surface as error Status;
/// statement-level errors travel inside the Response.
/// Handle to one in-flight AsyncRoundtrip. Wait() blocks until the response
/// arrives and consumes the result — call it exactly once. Destroying an
/// unwaited handle drains the round trip first (the response is discarded),
/// so a pending prefetch can never outlive its transport or race a
/// reconnect.
class PendingResponse {
 public:
  virtual ~PendingResponse() = default;
  virtual common::Result<Response> Wait() = 0;
};

using PendingResponsePtr = std::unique_ptr<PendingResponse>;

class ClientTransport {
 public:
  virtual ~ClientTransport() = default;

  virtual common::Result<Response> Roundtrip(const Request& request) = 0;

  /// Per-roundtrip deadline in milliseconds; 0 (default) blocks forever.
  /// When a round trip exceeds it, the transport returns kTimeout, poisons
  /// itself (every later call fails fast with kConnectionFailed — the
  /// response stream is unusable, exactly like a closed socket), and Phoenix
  /// recovery builds a fresh transport. TCP enforces it with poll(2) on the
  /// receive path; the in-process transport applies it to injected and
  /// modeled sleeps via fault::ScopedDeadline.
  void set_roundtrip_timeout_ms(uint64_t ms) {
    timeout_ms_.store(ms, std::memory_order_relaxed);
  }
  uint64_t roundtrip_timeout_ms() const {
    return timeout_ms_.load(std::memory_order_relaxed);
  }

  /// Starts a round trip without blocking the caller; the response is
  /// collected via PendingResponse::Wait(). The base implementation is a
  /// synchronous shim (it performs the round trip inline and hands back the
  /// finished result) so every transport supports the interface; pipelined
  /// transports override it to genuinely overlap network time with client
  /// work. Implementations capture the caller's trace context so spans
  /// recorded on the transfer thread still land under the right statement.
  virtual PendingResponsePtr AsyncRoundtrip(const Request& request);

  /// Traffic counters; never null.
  virtual const TransportStats& stats() const = 0;

 protected:
  std::atomic<uint64_t> timeout_ms_{0};
};

using ClientTransportPtr = std::shared_ptr<ClientTransport>;

/// Shared pipelined implementation for transports whose Roundtrip is safe to
/// call from a second thread (in-process: server serializes per session;
/// TCP: the client socket mutex serializes frames). Runs the round trip on a
/// detached-from-caller thread with the request's trace context installed.
PendingResponsePtr StartPipelinedRoundtrip(ClientTransport* transport,
                                           const Request& request);

}  // namespace phoenix::wire

#endif  // PHOENIX_WIRE_TRANSPORT_H_
