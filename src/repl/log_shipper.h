#ifndef PHOENIX_REPL_LOG_SHIPPER_H_
#define PHOENIX_REPL_LOG_SHIPPER_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "engine/server.h"

namespace phoenix::repl {

struct LogShipperOptions {
  /// Retained-stream backstop: when the buffer exceeds this, the oldest
  /// bytes are dropped even if no standby has applied them yet — a slow or
  /// dead standby must not pin unbounded memory on the primary. A standby
  /// whose resume point falls below the retained base gets `gap = true`
  /// (tests shrink this to force the gap/resubscribe path).
  size_t max_buffer_bytes = 64u << 20;
  /// Chunk size served when the fetch request asks for 0 bytes.
  size_t default_chunk_bytes = 256u << 10;
};

/// Primary-side replication source. Hooks the WAL's durable-append observer,
/// retains the fsynced byte stream in memory under monotonic ship-LSN
/// coordinates (LSNs never reset, unlike WAL file offsets, which rewind at
/// checkpoint truncate), and serves ReplFetch chunks from it.
///
/// Only bytes past the group-commit fsync ever enter the buffer, so a
/// standby can never apply a transaction the primary might still lose.
///
/// Bootstrap contract: Attach() before the first write. The stream starts at
/// LSN 0 == "empty database"; a standby must start from the same empty state
/// (seeding a standby from a checkpoint image is a documented non-goal,
/// DESIGN.md §18).
///
/// Lifetime: Attach installs callbacks that reference this object; the
/// shipper must outlive the server (or the server must stop before the
/// shipper is destroyed).
class LogShipper {
 public:
  explicit LogShipper(LogShipperOptions options = {}) : options_(options) {}

  LogShipper(const LogShipper&) = delete;
  LogShipper& operator=(const LogShipper&) = delete;

  /// Installs the WAL append observer on the server's database and arms the
  /// server's ReplFetch handler + applied-LSN provider (a primary reports
  /// its stream high-water mark as "applied").
  void Attach(engine::SimulatedServer* server);

  /// Serves one chunk starting at `from_lsn`. `applied_lsn` is the
  /// requester's durably applied offset; retained bytes below it are freed.
  common::Result<engine::ReplChunk> Fetch(uint64_t from_lsn,
                                          uint64_t applied_lsn,
                                          uint64_t max_bytes);

  /// Stream high-water mark (total durable bytes observed).
  uint64_t end_lsn() const;
  /// Oldest retained stream offset (fetches below it report a gap).
  uint64_t base_lsn() const;

 private:
  /// WalAppendObserver body — runs on the group-commit leader's thread.
  void OnDurableAppend(const uint8_t* data, size_t size);
  void TrimLocked();

  const LogShipperOptions options_;
  mutable std::mutex mu_;
  /// Bytes [base_lsn_, base_lsn_ + buffer_.size()) of the ship stream.
  std::vector<uint8_t> buffer_;
  uint64_t base_lsn_ = 0;
  /// Highest applied offset any standby has reported (trim watermark).
  uint64_t applied_watermark_ = 0;
};

}  // namespace phoenix::repl

#endif  // PHOENIX_REPL_LOG_SHIPPER_H_
