#ifndef PHOENIX_REPL_STANDBY_H_
#define PHOENIX_REPL_STANDBY_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "engine/server.h"
#include "engine/wal.h"
#include "wire/transport.h"

namespace phoenix::repl {

struct StandbyOptions {
  /// Applier poll cadence when the last fetch returned no new bytes.
  uint64_t poll_interval_ms = 2;
  /// Chunk size requested per fetch (0 = primary's default).
  uint64_t max_fetch_bytes = 256u << 10;
  /// Fetch round-trip deadline; a hung primary must not wedge the applier.
  uint64_t fetch_timeout_ms = 2000;
};

/// Warm-standby applier. Pulls the primary's durable WAL byte stream over
/// the wire (kReplFetch), reassembles framed records across chunk
/// boundaries, groups them into committed transactions, and applies each in
/// primary commit order through Database::ApplyReplicated — which re-logs
/// them locally with a kReplLsn stamp so the applied position survives
/// standby restarts.
///
/// Self-healing: any stream anomaly — transport failure, CRC mismatch on a
/// frame (e.g. a corrupt shipped copy), an unparseable record, a fetch that
/// does not start where the last one ended, or a primary-reported retention
/// gap — drops all unapplied buffered bytes and resubscribes from the
/// durably applied LSN. Torn chunks need no special handling: the partial
/// frame simply waits in the reassembly buffer for the next fetch.
///
/// Promotion (the armed PromoteHandler): stops the pull loop, applies every
/// already-complete buffered transaction (replay-to-end; incomplete tails
/// are uncommitted and dropped), bumps the epoch past everything seen from
/// the old primary, and flips the server role to primary. Idempotent.
class StandbyNode {
 public:
  /// `standby` is the local server this node applies into (must have been
  /// started with ServerOptions::standby = 1). `primary_factory` builds a
  /// fresh transport to the current primary endpoint; it is re-invoked after
  /// every transport-level failure.
  StandbyNode(engine::SimulatedServer* standby,
              std::function<wire::ClientTransportPtr()> primary_factory,
              StandbyOptions options = {});
  ~StandbyNode();

  StandbyNode(const StandbyNode&) = delete;
  StandbyNode& operator=(const StandbyNode&) = delete;

  /// Arms the promote handler and starts the applier thread.
  common::Status Start();
  /// Stops the applier thread (no-op if not running or already promoted).
  void Stop();

  /// Promotes in-process (what the server's PromoteHandler calls; also
  /// reachable directly from tests/benches). Returns the new epoch.
  common::Result<uint64_t> Promote(uint64_t min_epoch);

  // --- Introspection -------------------------------------------------------

  /// Durably applied primary-stream offset.
  uint64_t applied_lsn() const;
  uint64_t resubscribes() const {
    return resubscribes_.load(std::memory_order_relaxed);
  }
  uint64_t crc_errors() const {
    return crc_errors_.load(std::memory_order_relaxed);
  }
  uint64_t txns_applied() const {
    return txns_applied_.load(std::memory_order_relaxed);
  }
  /// Highest epoch stamped into the stream by the primary (0 = none seen).
  uint64_t last_primary_epoch() const {
    return primary_epoch_.load(std::memory_order_relaxed);
  }
  bool promoted() const { return promoted_.load(std::memory_order_acquire); }

 private:
  void ApplierLoop();
  /// One fetch + parse + apply round. A returned error means "rebuild the
  /// transport"; stream anomalies resubscribe internally and return OK.
  common::Status PollOnce(wire::ClientTransport* transport);
  /// Parses complete frames out of pending_, groups records into
  /// transactions, and applies every newly completed transaction. Holds no
  /// locks (the applier thread is the only mutator of parse state).
  common::Status DrainCompleteTxns();
  /// Drops all unapplied parse state and resumes from the applied LSN.
  void Resubscribe();

  engine::SimulatedServer* const server_;
  const std::function<wire::ClientTransportPtr()> primary_factory_;
  const StandbyOptions options_;

  // Parse state — touched only by the applier thread (and by Promote after
  // the thread has been joined).
  std::vector<uint8_t> pending_;   // unparsed stream tail (may end mid-frame)
  uint64_t pending_base_ = 0;      // stream offset of pending_[0]
  /// In-flight transaction groups keyed by txn id (a transaction's frames
  /// can span many chunks).
  std::map<engine::TxnId, std::vector<engine::WalRecord>> groups_;

  std::atomic<uint64_t> resubscribes_{0};
  std::atomic<uint64_t> crc_errors_{0};
  std::atomic<uint64_t> txns_applied_{0};
  std::atomic<uint64_t> primary_epoch_{0};
  std::atomic<bool> promoted_{false};

  std::mutex lifecycle_mu_;  // serializes Start/Stop/Promote
  std::thread applier_;
  std::atomic<bool> stop_{false};
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
};

}  // namespace phoenix::repl

#endif  // PHOENIX_REPL_STANDBY_H_
