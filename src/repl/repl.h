#ifndef PHOENIX_REPL_REPL_H_
#define PHOENIX_REPL_REPL_H_

#include <cstdint>

// Shared replication vocabulary. Header-only and dependency-free so every
// layer (engine, wire, odbc, phoenix) can speak epochs/roles/LSNs without
// linking the replication runtime in src/repl/.

namespace phoenix::repl {

/// What a server is right now. A standby answers pings, replication fetches
/// and promote requests, but rejects ordinary client connects until promoted.
enum class Role : uint8_t { kPrimary = 0, kStandby = 1 };

inline const char* RoleName(Role role) {
  return role == Role::kStandby ? "standby" : "primary";
}

/// Cheap health probe payload piggybacked on ping/connect responses so
/// clients and tests can distinguish "down" (no response at all), "standby
/// still catching up" (role=standby, applied_lsn behind), and "promoted"
/// (role=primary, higher epoch) without inferring from connect errors.
struct ServerHealth {
  uint64_t epoch = 0;
  uint64_t applied_lsn = 0;  // primary: durable ship-LSN; standby: applied
  Role role = Role::kPrimary;
};

}  // namespace phoenix::repl

#endif  // PHOENIX_REPL_REPL_H_
