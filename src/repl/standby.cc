#include "repl/standby.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/bytes.h"
#include "common/crc32.h"
#include "fault/fault.h"
#include "wire/messages.h"

namespace phoenix::repl {

using common::Result;
using common::Status;

StandbyNode::StandbyNode(
    engine::SimulatedServer* standby,
    std::function<wire::ClientTransportPtr()> primary_factory,
    StandbyOptions options)
    : server_(standby),
      primary_factory_(std::move(primary_factory)),
      options_(options) {}

StandbyNode::~StandbyNode() { Stop(); }

Status StandbyNode::Start() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (applier_.joinable()) {
    return Status::InvalidArgument("standby node already started");
  }
  if (promoted_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("standby node was already promoted");
  }
  // Resume where the last incarnation durably left off (recovered from the
  // kReplLsn stamps / epoch-state file).
  pending_.clear();
  groups_.clear();
  pending_base_ = server_->database()->replicated_lsn();
  server_->set_promote_handler(
      [this](uint64_t min_epoch) { return Promote(min_epoch); });
  stop_.store(false, std::memory_order_release);
  applier_ = std::thread(&StandbyNode::ApplierLoop, this);
  return Status::OK();
}

void StandbyNode::Stop() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  stop_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> wake(wake_mu_);
  }
  wake_cv_.notify_all();
  if (applier_.joinable()) applier_.join();
}

uint64_t StandbyNode::applied_lsn() const {
  return server_->database()->replicated_lsn();
}

void StandbyNode::ApplierLoop() {
  wire::ClientTransportPtr transport;
  auto nap = [this](uint64_t ms) {
    std::unique_lock<std::mutex> wake(wake_mu_);
    wake_cv_.wait_for(wake, std::chrono::milliseconds(ms), [this]() {
      return stop_.load(std::memory_order_acquire);
    });
  };
  while (!stop_.load(std::memory_order_acquire)) {
    if (!transport) {
      transport = primary_factory_();
      if (!transport) {
        nap(options_.poll_interval_ms);
        continue;
      }
      transport->set_roundtrip_timeout_ms(options_.fetch_timeout_ms);
    }
    const uint64_t before = pending_base_ + pending_.size();
    Status st = PollOnce(transport.get());
    if (!st.ok()) {
      // Transport-level failure (primary down, timeout, poisoned channel):
      // drop the channel and rebuild on the next round.
      transport.reset();
      nap(options_.poll_interval_ms);
      continue;
    }
    if (pending_base_ + pending_.size() == before) {
      // Nothing new shipped; idle-poll.
      nap(options_.poll_interval_ms);
    }
  }
}

Status StandbyNode::PollOnce(wire::ClientTransport* transport) {
  wire::Request request;
  request.type = wire::RequestType::kReplFetch;
  request.repl_from_lsn = pending_base_ + pending_.size();
  request.repl_applied_lsn = applied_lsn();
  request.repl_max_bytes = options_.max_fetch_bytes;
  request.known_epoch =
      std::max(server_->database()->epoch(),
               primary_epoch_.load(std::memory_order_relaxed));
  PHX_ASSIGN_OR_RETURN(wire::Response response,
                       transport->Roundtrip(request));
  if (!response.ok()) {
    // Statement-level rejection (shipper not armed yet, fenced primary...):
    // nothing to apply, keep polling — promotion or re-arming resolves it.
    return Status::OK();
  }
  uint64_t seen = primary_epoch_.load(std::memory_order_relaxed);
  while (response.epoch > seen &&
         !primary_epoch_.compare_exchange_weak(seen, response.epoch,
                                               std::memory_order_relaxed)) {
  }
  if (response.repl_gap) {
    // The primary no longer retains our resume point. Re-anchor at the
    // durably applied LSN; if even that is gone the stream is unrecoverable
    // and this keeps reporting gaps (visible via resubscribes()).
    Resubscribe();
    return Status::OK();
  }
  if (response.repl_payload.empty()) return Status::OK();
  if (response.repl_start_lsn != pending_base_ + pending_.size()) {
    Resubscribe();
    return Status::OK();
  }
  pending_.insert(pending_.end(), response.repl_payload.begin(),
                  response.repl_payload.end());
  Status applied = DrainCompleteTxns();
  if (!applied.ok()) {
    // Apply-side failure (injected repl.apply fault, local WAL error):
    // nothing past the durable applied-LSN survives, so rewind to it.
    Resubscribe();
  }
  return Status::OK();
}

Status StandbyNode::DrainCompleteTxns() {
  size_t offset = 0;
  std::vector<engine::Database::ReplicatedTxn> completed;
  while (pending_.size() - offset >= wire::kFrameHeaderBytes) {
    common::BinaryReader header(pending_.data() + offset,
                                wire::kFrameHeaderBytes);
    const uint32_t len = header.GetU32().value();
    const uint32_t crc = header.GetU32().value();
    if (len > wire::kMaxFramePayloadBytes) {
      // Garbage length: the stream is desynchronized beyond repair here.
      Resubscribe();
      return Status::OK();
    }
    if (pending_.size() - offset < wire::kFrameHeaderBytes + len) {
      break;  // partial tail — wait for the next chunk
    }
    const uint8_t* payload = pending_.data() + offset + wire::kFrameHeaderBytes;
    if (common::Crc32(payload, len) != crc) {
      crc_errors_.fetch_add(1, std::memory_order_relaxed);
      Resubscribe();
      return Status::OK();
    }
    auto parsed = engine::WalRecord::Deserialize(payload, len);
    if (!parsed.ok()) {
      Resubscribe();
      return Status::OK();
    }
    const uint64_t frame_end =
        pending_base_ + offset + wire::kFrameHeaderBytes + len;
    engine::WalRecord record = std::move(parsed).value();
    switch (record.type) {
      case engine::WalRecordType::kEpoch: {
        uint64_t seen = primary_epoch_.load(std::memory_order_relaxed);
        while (record.value > seen &&
               !primary_epoch_.compare_exchange_weak(
                   seen, record.value, std::memory_order_relaxed)) {
        }
        break;
      }
      case engine::WalRecordType::kReplLsn:
        // Only a standby-of-a-standby would see these; the stamp is local
        // bookkeeping of the sender, not part of the transaction.
        break;
      case engine::WalRecordType::kAbort:
        groups_.erase(record.txn);
        break;
      case engine::WalRecordType::kCommit: {
        auto it = groups_.find(record.txn);
        if (it != groups_.end()) {
          it->second.push_back(std::move(record));
          engine::Database::ReplicatedTxn txn;
          txn.records = std::move(it->second);
          txn.end_lsn = frame_end;
          completed.push_back(std::move(txn));
          groups_.erase(it);
        }
        break;
      }
      default:
        groups_[record.txn].push_back(std::move(record));
        break;
    }
    offset += wire::kFrameHeaderBytes + len;
  }
  pending_.erase(pending_.begin(),
                 pending_.begin() + static_cast<ptrdiff_t>(offset));
  pending_base_ += offset;
  if (!completed.empty()) {
    PHX_FAULT_POINT("repl.apply");
    const size_t count = completed.size();
    PHX_RETURN_IF_ERROR(
        server_->database()->ApplyReplicated(std::move(completed)));
    txns_applied_.fetch_add(count, std::memory_order_relaxed);
  }
  return Status::OK();
}

void StandbyNode::Resubscribe() {
  pending_.clear();
  groups_.clear();
  pending_base_ = applied_lsn();
  resubscribes_.fetch_add(1, std::memory_order_relaxed);
}

Result<uint64_t> StandbyNode::Promote(uint64_t min_epoch) {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  engine::Database* db = server_->database();
  if (promoted_.load(std::memory_order_acquire)) return db->epoch();
  // Stop pulling first: promotion must not race new chunks into the parse
  // state it is about to finalize.
  stop_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> wake(wake_mu_);
  }
  wake_cv_.notify_all();
  if (applier_.joinable()) applier_.join();
  // Replay-to-end: everything complete in the buffer is a transaction the
  // old primary committed — apply it. Incomplete groups and a partial frame
  // tail are uncommitted by definition and are dropped.
  PHX_RETURN_IF_ERROR(DrainCompleteTxns());
  PHX_ASSIGN_OR_RETURN(
      uint64_t epoch,
      db->BumpEpoch(std::max(
          min_epoch, primary_epoch_.load(std::memory_order_relaxed))));
  server_->set_role(Role::kPrimary);
  promoted_.store(true, std::memory_order_release);
  return epoch;
}

}  // namespace phoenix::repl
