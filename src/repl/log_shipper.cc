#include "repl/log_shipper.h"

#include <algorithm>

namespace phoenix::repl {

using common::Result;

void LogShipper::Attach(engine::SimulatedServer* server) {
  server->database()->SetWalAppendObserver(
      [this](const uint8_t* data, size_t size) {
        OnDurableAppend(data, size);
      });
  server->set_repl_fetch_handler(
      [this](uint64_t from, uint64_t applied, uint64_t max_bytes) {
        return Fetch(from, applied, max_bytes);
      });
  server->set_applied_lsn_provider([this]() { return end_lsn(); });
}

void LogShipper::OnDurableAppend(const uint8_t* data, size_t size) {
  if (size == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  buffer_.insert(buffer_.end(), data, data + size);
  TrimLocked();
}

void LogShipper::TrimLocked() {
  // Free everything every standby has durably applied; then enforce the
  // memory backstop (which may open a gap for a lagging standby).
  uint64_t keep_from = applied_watermark_;
  const uint64_t end = base_lsn_ + buffer_.size();
  if (buffer_.size() > options_.max_buffer_bytes) {
    keep_from = std::max(keep_from, end - options_.max_buffer_bytes);
  }
  if (keep_from > base_lsn_) {
    const size_t drop = static_cast<size_t>(
        std::min<uint64_t>(keep_from - base_lsn_, buffer_.size()));
    buffer_.erase(buffer_.begin(), buffer_.begin() + drop);
    base_lsn_ += drop;
  }
}

Result<engine::ReplChunk> LogShipper::Fetch(uint64_t from_lsn,
                                            uint64_t applied_lsn,
                                            uint64_t max_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  applied_watermark_ = std::max(applied_watermark_, applied_lsn);
  TrimLocked();

  engine::ReplChunk chunk;
  const uint64_t end = base_lsn_ + buffer_.size();
  chunk.end_lsn = end;
  if (from_lsn < base_lsn_ || from_lsn > end) {
    // Below the retained base (trimmed away) or past our high-water mark
    // (the standby outlived a primary whose stream restarted): either way
    // the standby cannot catch up incrementally from here.
    chunk.start_lsn = base_lsn_;
    chunk.gap = true;
    return chunk;
  }
  size_t limit = max_bytes == 0 ? options_.default_chunk_bytes
                                : static_cast<size_t>(max_bytes);
  const size_t offset = static_cast<size_t>(from_lsn - base_lsn_);
  const size_t take = std::min(limit, buffer_.size() - offset);
  chunk.start_lsn = from_lsn;
  chunk.bytes.assign(buffer_.begin() + offset,
                     buffer_.begin() + offset + take);
  return chunk;
}

uint64_t LogShipper::end_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return base_lsn_ + buffer_.size();
}

uint64_t LogShipper::base_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return base_lsn_;
}

}  // namespace phoenix::repl
